// Package mcq defines the benchmark data model: the question record of the
// paper's Figure 2 and the reasoning-trace record of Figure 3, plus
// validation, quality filtering, and JSONL persistence.
//
// Every question retains lineage to the chunk and source file it was
// generated from (chunk_id + file path), and carries the relevance and
// quality checks that gate admission to the benchmark (threshold 7/10 in
// the paper, filtering 173,318 candidates down to 16,680).
package mcq

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Provenance links a question to its source chunk and document, the
// lineage block of the paper's Figure 2 schema.
type Provenance struct {
	ChunkID  string `json:"chunk_id"`
	DocID    string `json:"doc_id"`
	FilePath string `json:"file_path"`
	// FactID is reproduction-specific ground truth: the knowledge-base fact
	// the question tests. The paper's pipeline has no such oracle; we carry
	// it so retrieval quality can be *measured* instead of assumed. It is
	// never shown to evaluated models.
	FactID string `json:"fact_id,omitempty"`
}

// Rubric holds the four per-dimension scores of the paper's quality
// prompt: "a second prompt evaluates question clarity, accuracy,
// distractor plausibility, and educational value (score 1-10)".
type Rubric struct {
	Clarity     float64 `json:"clarity"`
	Accuracy    float64 `json:"accuracy"`
	Distractors float64 `json:"distractor_plausibility"`
	Educational float64 `json:"educational_value"`
}

// Overall aggregates the rubric into the admission score (equal weights).
func (r Rubric) Overall() float64 {
	return (r.Clarity + r.Accuracy + r.Distractors + r.Educational) / 4
}

// Checks holds the generation-time quality-control results (Figure 2's
// relevance and quality checks).
type Checks struct {
	Relevant     bool    `json:"relevant"`
	QualityScore float64 `json:"quality_score"` // 1-10 overall rubric score
	Rubric       Rubric  `json:"rubric"`
	JudgeModel   string  `json:"judge_model"`
	Rationale    string  `json:"rationale,omitempty"`
}

// Question is one benchmark record (paper Figure 2).
type Question struct {
	ID       string     `json:"question_id"`
	Question string     `json:"question"`
	Options  []string   `json:"options"`
	Answer   int        `json:"answer"`          // index into Options
	Type     string     `json:"type"`            // e.g. "factual", "mechanism", "dose"
	Topic    string     `json:"topic,omitempty"` // sub-domain label (paper §5)
	Chunk    string     `json:"original_chunk"`
	Prov     Provenance `json:"provenance"`
	Checks   Checks     `json:"checks"`
	// Math marks questions requiring mathematical reasoning (the Astro
	// exam's GPT-5 split uses this).
	Math bool `json:"math"`
}

// AnswerText returns the correct option string.
func (q *Question) AnswerText() string {
	if q.Answer < 0 || q.Answer >= len(q.Options) {
		return ""
	}
	return q.Options[q.Answer]
}

// Validate checks structural integrity; the generation pipeline rejects
// invalid records before they reach the benchmark.
func (q *Question) Validate() error {
	switch {
	case q.ID == "":
		return errors.New("mcq: empty question id")
	case strings.TrimSpace(q.Question) == "":
		return fmt.Errorf("mcq: %s: empty question text", q.ID)
	case len(q.Options) < 2:
		return fmt.Errorf("mcq: %s: %d options", q.ID, len(q.Options))
	case q.Answer < 0 || q.Answer >= len(q.Options):
		return fmt.Errorf("mcq: %s: answer index %d out of range", q.ID, q.Answer)
	}
	seen := make(map[string]bool, len(q.Options))
	for i, o := range q.Options {
		if strings.TrimSpace(o) == "" {
			return fmt.Errorf("mcq: %s: option %d empty", q.ID, i)
		}
		if seen[o] {
			return fmt.Errorf("mcq: %s: duplicate option %q", q.ID, o)
		}
		seen[o] = true
	}
	lower := strings.ToLower(q.Question)
	for _, banned := range []string{"the text", "the passage", "the excerpt", "according to the chunk"} {
		if strings.Contains(lower, banned) {
			return fmt.Errorf("mcq: %s: question references source text", q.ID)
		}
	}
	return nil
}

// ReasoningMode is one of the three trace styles of the paper's Figure 3.
type ReasoningMode string

const (
	// ModeDetailed is option-level analysis of every choice.
	ModeDetailed ReasoningMode = "detailed"
	// ModeFocused states the governing principle then eliminates.
	ModeFocused ReasoningMode = "focused"
	// ModeEfficient is a compact high-level rationale.
	ModeEfficient ReasoningMode = "efficient"
)

// AllModes lists the trace modes in the paper's order.
var AllModes = []ReasoningMode{ModeDetailed, ModeFocused, ModeEfficient}

// Trace is one reasoning-trace record (paper Figure 3). The paper stores
// one FAISS database per mode; we mirror that with one vector store per
// mode keyed by trace id.
type Trace struct {
	ID         string        `json:"trace_id"`
	QuestionID string        `json:"question_id"`
	Mode       ReasoningMode `json:"mode"`
	Model      string        `json:"model"` // teacher, e.g. "gpt-4.1-sim"
	Reasoning  string        `json:"reasoning"`
	// AnswerExcluded is always true: the teacher's final answer is stripped
	// to prevent leakage, as the paper's prompt mandates.
	AnswerExcluded bool `json:"answer_excluded"`
}

// Validate checks trace integrity, including the leakage guard.
func (tr *Trace) Validate(answerText string) error {
	switch {
	case tr.ID == "":
		return errors.New("mcq: empty trace id")
	case tr.QuestionID == "":
		return fmt.Errorf("mcq: trace %s: no question id", tr.ID)
	case tr.Mode != ModeDetailed && tr.Mode != ModeFocused && tr.Mode != ModeEfficient:
		return fmt.Errorf("mcq: trace %s: unknown mode %q", tr.ID, tr.Mode)
	case strings.TrimSpace(tr.Reasoning) == "":
		return fmt.Errorf("mcq: trace %s: empty reasoning", tr.ID)
	case !tr.AnswerExcluded:
		return fmt.Errorf("mcq: trace %s: answer_excluded not set", tr.ID)
	}
	if answerText != "" {
		low := strings.ToLower(tr.Reasoning)
		for _, leak := range []string{
			"the correct answer is " + strings.ToLower(answerText),
			"answer: " + strings.ToLower(answerText),
		} {
			if strings.Contains(low, leak) {
				return fmt.Errorf("mcq: trace %s: leaks the final answer", tr.ID)
			}
		}
	}
	return nil
}

// FilterByQuality returns the questions whose quality score meets the
// threshold and which pass validation — the paper's 7/10 admission gate.
func FilterByQuality(qs []*Question, threshold float64) []*Question {
	out := make([]*Question, 0, len(qs))
	for _, q := range qs {
		if q.Checks.QualityScore >= threshold && q.Checks.Relevant && q.Validate() == nil {
			out = append(out, q)
		}
	}
	return out
}

// SaveQuestions writes questions as JSONL (one record per line).
func SaveQuestions(path string, qs []*Question) error {
	return saveJSONL(path, len(qs), func(i int) any { return qs[i] })
}

// LoadQuestions reads a JSONL question file.
func LoadQuestions(path string) ([]*Question, error) {
	var out []*Question
	err := loadJSONL(path, func(line []byte) error {
		var q Question
		if err := json.Unmarshal(line, &q); err != nil {
			return err
		}
		out = append(out, &q)
		return nil
	})
	return out, err
}

// SaveTraces writes traces as JSONL.
func SaveTraces(path string, trs []*Trace) error {
	return saveJSONL(path, len(trs), func(i int) any { return trs[i] })
}

// LoadTraces reads a JSONL trace file.
func LoadTraces(path string) ([]*Trace, error) {
	var out []*Trace
	err := loadJSONL(path, func(line []byte) error {
		var tr Trace
		if err := json.Unmarshal(line, &tr); err != nil {
			return err
		}
		out = append(out, &tr)
		return nil
	})
	return out, err
}

func saveJSONL(path string, n int, record func(int) any) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err = enc.Encode(record(i)); err != nil {
			f.Close()
			return err
		}
	}
	if err = w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func loadJSONL(path string, each func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := each([]byte(line)); err != nil {
			return fmt.Errorf("mcq: %s line %d: %w", path, lineNo, err)
		}
	}
	return sc.Err()
}
