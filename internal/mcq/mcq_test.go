package mcq

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validQuestion() *Question {
	return &Question{
		ID:       "q-0001",
		Question: "Which pathway predominantly repairs double-strand breaks in G1?",
		Options:  []string{"non-homologous end joining", "homologous recombination", "base excision repair", "mismatch repair", "single-strand annealing", "nucleotide excision repair", "translesion synthesis"},
		Answer:   0,
		Type:     "factual",
		Chunk:    "Double-strand breaks in G1 are predominantly repaired by non-homologous end joining.",
		Prov: Provenance{
			ChunkID:  "chunk-abc",
			DocID:    "paper-000001",
			FilePath: "corpus/paper-000001.spdf",
			FactID:   "fact-001-002",
		},
		Checks: Checks{Relevant: true, QualityScore: 8.5, JudgeModel: "gpt-4.1-sim"},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validQuestion().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Question)
	}{
		{"empty id", func(q *Question) { q.ID = "" }},
		{"empty text", func(q *Question) { q.Question = "  " }},
		{"one option", func(q *Question) { q.Options = q.Options[:1] }},
		{"answer out of range", func(q *Question) { q.Answer = 99 }},
		{"negative answer", func(q *Question) { q.Answer = -1 }},
		{"empty option", func(q *Question) { q.Options[3] = "" }},
		{"duplicate option", func(q *Question) { q.Options[1] = q.Options[0] }},
		{"references text", func(q *Question) { q.Question = "According to the passage, what is X? the text says" }},
	}
	for _, tc := range cases {
		q := validQuestion()
		tc.mutate(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestAnswerText(t *testing.T) {
	q := validQuestion()
	if q.AnswerText() != "non-homologous end joining" {
		t.Fatalf("AnswerText = %q", q.AnswerText())
	}
	q.Answer = 42
	if q.AnswerText() != "" {
		t.Fatal("out-of-range answer returned text")
	}
}

func TestSchemaJSONShape(t *testing.T) {
	// Golden structural test for the paper's Figure 2 schema: lineage and
	// quality checks must serialise under the documented keys.
	data, err := json.Marshal(validQuestion())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"question_id", "question", "options", "answer", "type", "original_chunk", "provenance", "checks"} {
		if _, ok := m[key]; !ok {
			t.Errorf("schema missing key %q", key)
		}
	}
	prov := m["provenance"].(map[string]any)
	for _, key := range []string{"chunk_id", "doc_id", "file_path"} {
		if _, ok := prov[key]; !ok {
			t.Errorf("provenance missing %q", key)
		}
	}
	checks := m["checks"].(map[string]any)
	for _, key := range []string{"relevant", "quality_score", "judge_model"} {
		if _, ok := checks[key]; !ok {
			t.Errorf("checks missing %q", key)
		}
	}
}

func validTrace() *Trace {
	return &Trace{
		ID:             "tr-q-0001-focused",
		QuestionID:     "q-0001",
		Mode:           ModeFocused,
		Model:          "gpt-4.1-sim",
		Reasoning:      "The governing principle is cell-cycle dependence of repair pathway choice. Homologous recombination requires a sister chromatid, absent in G1, eliminating it and related options.",
		AnswerExcluded: true,
	}
}

func TestTraceValidateOK(t *testing.T) {
	if err := validTrace().Validate("non-homologous end joining"); err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"empty id", func(tr *Trace) { tr.ID = "" }},
		{"no question", func(tr *Trace) { tr.QuestionID = "" }},
		{"bad mode", func(tr *Trace) { tr.Mode = "verbose" }},
		{"empty reasoning", func(tr *Trace) { tr.Reasoning = " " }},
		{"answer included", func(tr *Trace) { tr.AnswerExcluded = false }},
		{"leaks answer", func(tr *Trace) {
			tr.Reasoning = "Clearly the correct answer is non-homologous end joining."
		}},
	}
	for _, tc := range cases {
		tr := validTrace()
		tc.mutate(tr)
		if err := tr.Validate("non-homologous end joining"); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestTraceSchemaJSONShape(t *testing.T) {
	// Golden structural test for Figure 3: the three reasoning modes and
	// the answer-exclusion flag.
	data, err := json.Marshal(validTrace())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trace_id", "question_id", "mode", "model", "reasoning", "answer_excluded"} {
		if _, ok := m[key]; !ok {
			t.Errorf("trace schema missing %q", key)
		}
	}
	if len(AllModes) != 3 {
		t.Fatalf("AllModes = %v", AllModes)
	}
}

func TestFilterByQuality(t *testing.T) {
	qs := []*Question{validQuestion(), validQuestion(), validQuestion(), validQuestion()}
	qs[0].Checks.QualityScore = 9
	qs[1].Checks.QualityScore = 6.9 // below threshold
	qs[2].Checks.QualityScore = 7   // exactly at threshold
	qs[2].ID = "q-0002"
	qs[3].Checks.QualityScore = 10
	qs[3].Checks.Relevant = false // irrelevant
	got := FilterByQuality(qs, 7)
	if len(got) != 2 {
		t.Fatalf("filtered to %d, want 2", len(got))
	}
}

func TestFilterRejectsInvalid(t *testing.T) {
	q := validQuestion()
	q.Answer = -5
	got := FilterByQuality([]*Question{q}, 0)
	if len(got) != 0 {
		t.Fatal("invalid question passed filter")
	}
}

func TestQuestionsJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qs.jsonl")
	qs := []*Question{validQuestion(), validQuestion()}
	qs[1].ID = "q-0002"
	qs[1].Math = true
	if err := SaveQuestions(path, qs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQuestions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("loaded %d", len(back))
	}
	if back[0].ID != "q-0001" || back[1].ID != "q-0002" {
		t.Fatal("ids scrambled")
	}
	if !back[1].Math {
		t.Fatal("math flag lost")
	}
	if back[0].Prov.ChunkID != "chunk-abc" {
		t.Fatal("provenance lost")
	}
	if back[0].Checks.QualityScore != 8.5 {
		t.Fatal("checks lost")
	}
}

func TestTracesJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trs.jsonl")
	trs := []*Trace{validTrace()}
	if err := SaveTraces(path, trs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTraces(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Mode != ModeFocused || !back[0].AnswerExcluded {
		t.Fatalf("round trip: %+v", back[0])
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadQuestions(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadMalformedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	content := "{\"question_id\":\"ok\"}\nnot json at all\n"
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	_, err := LoadQuestions(path)
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blank.jsonl")
	if err := writeFile(path, "\n{\"question_id\":\"a\"}\n\n{\"question_id\":\"b\"}\n"); err != nil {
		t.Fatal(err)
	}
	qs, err := LoadQuestions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("loaded %d", len(qs))
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
