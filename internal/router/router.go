// Package router is the fault-tolerant shard-scatter/gather tier in front
// of a fleet of ragserve backends: the corpus is partitioned across N
// shards (corpusgen-style modulo split), every incoming search is
// coalesced into a micro-batch, scattered to all shards concurrently and
// merged back into the exact global top-k — the scan.go segment-merge
// discipline lifted across the network.
//
// The headline is the robustness layer wrapped around every shard call:
//
//   - a per-shard deadline, context-propagated end to end (router attempt
//     ctx → HTTP request → backend handler → backend coalescer);
//   - bounded retries with the shared internal/retry backoff policy
//     (exponential, deterministic jitter), 5xx and transport errors only;
//   - a per-shard circuit breaker (consecutive-failure trip, cooldown,
//     half-open probe driven by the background health prober);
//   - graceful degradation: when a shard is down, tripped or timing out,
//     clients get the exact merged top-k over the surviving shards with
//     degraded:true and shards_ok/shards_total on the wire — never a 5xx
//     while at least one shard answers.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/serve"
)

// Config parameterises a Router.
type Config struct {
	// Shards are the backend base URLs ("http://host:port"), one per
	// corpus partition. Order defines the shard names (shard0, shard1, …).
	Shards []string
	// Routes are the route names the router serves; every shard must
	// mount all of them (default: just "chunks").
	Routes []string
	// MaxBatch caps the coalesced micro-batch scattered per shard call
	// (default 32); MaxDelay is the admission window (default 1ms).
	MaxBatch int
	MaxDelay time.Duration
	// DefaultK / MaxK bound the retrieval depth as on the backends.
	DefaultK int
	MaxK     int
	// MaxBatchQueries bounds one explicit batch request (default 1024).
	MaxBatchQueries int
	// ShardTimeout is the per-attempt deadline of one shard call
	// (default 2s). It propagates to the backend as the request context.
	ShardTimeout time.Duration
	// Retry is the per-shard retry policy (5xx/transport errors only);
	// zero value takes the retry defaults (3 retries, 1ms base backoff).
	Retry retry.Policy
	// Breaker is the per-shard circuit-breaker configuration.
	Breaker BreakerConfig
	// ProbeInterval is the health prober's period (default 500ms). The
	// prober polls every shard's /healthz and is what closes a tripped
	// breaker again once the shard reports "ok".
	ProbeInterval time.Duration
	// SlowLog is the per-route retention of slowest traces served at
	// GET /debug/slowlog/<route> (0 selects obs.DefaultSlowLogSize).
	SlowLog int
	// Debug mounts net/http/pprof under /debug/pprof/ (opt-in).
	Debug bool
	// Registry receives the router's metrics; nil creates a private one.
	Registry *metrics.Registry
	// HTTPClient is shared by all shard clients; nil gets the serve
	// client default (30s timeout, pooled transport).
	HTTPClient *http.Client
}

func (c *Config) fill() {
	if len(c.Routes) == 0 {
		c.Routes = []string{serve.RouteChunks}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 5
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 1024
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	c.Retry = c.Retry.Fill()
	c.Breaker.fill()
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
}

// errAllShardsFailed is the only condition the router answers with a 5xx:
// not one shard produced results for the batch.
var errAllShardsFailed = errors.New("router: all shards failed")

// errShardTripped marks a call skipped because the shard's breaker is
// open — not an attempt, so it neither retries nor re-records a failure.
var errShardTripped = errors.New("router: shard breaker open")

// shard is one backend and its failure-handling state.
type shard struct {
	name   string
	url    string
	client *serve.Client
	br     *breaker

	probe   atomic.Value // string: ok | degraded | unreachable | unknown
	lastErr atomic.Value // lastError

	mRequests, mFailures, mRetries, mRejects *metrics.Counter
	gState, gTrips                           *metrics.Gauge
	hLatency                                 *metrics.Histogram
}

// lastError is a shard's most recent failure as /healthz reports it:
// bounded text plus when it happened, so an operator can tell a fresh
// outage from one the breaker recovered from minutes ago.
type lastError struct {
	msg string
	at  time.Time
}

// maxLastErrLen bounds the error text retained per shard — wrapped
// transport errors repeat the full URL per attempt and would otherwise
// bloat every /healthz reply.
const maxLastErrLen = 200

// setLastErr records a failure, truncating on a rune boundary.
func (sh *shard) setLastErr(err error) {
	msg := err.Error()
	if len(msg) > maxLastErrLen {
		cut := maxLastErrLen
		for cut > 0 && !utf8.RuneStart(msg[cut]) {
			cut--
		}
		msg = msg[:cut] + "…"
	}
	sh.lastErr.Store(lastError{msg: msg, at: time.Now()})
}

// route is the per-route serving state: its own coalescer and metrics,
// mirroring the backend design so one route's traffic cannot stall
// another's.
type route struct {
	name string
	co   *batch.Coalescer[job, result]
	slow *obs.SlowLog

	mRequests, mDegraded, mErrors           *metrics.Counter
	mBatches, mBatchedQueries               *metrics.Counter
	hLatency                                *metrics.Histogram
	hBatch                                  *metrics.Histogram
	hStageQueue, hStageScatter, hStageMerge *metrics.Histogram
	hStageEncode                            *metrics.Histogram
}

type job struct {
	query   string
	k       int
	exclude string

	// Tracing mirrors the serve tier: enq starts the queue span, tr lets
	// the batch function attribute the shared scatter/merge stages back to
	// every member request (nil for untraced programmatic callers).
	enq time.Time
	tr  *obs.Trace
}

type result struct {
	results     []serve.SearchResult
	degraded    bool
	shardsOK    int
	shardsTotal int
	err         error
}

// Router is the scatter/gather front-end over a static shard map.
type Router struct {
	cfg    Config
	reg    *metrics.Registry
	shards []*shard
	routes map[string]*route

	ctx        context.Context
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	proberOnce sync.Once

	httpSrv *http.Server
	ln      net.Listener
}

// MetricPrefix returns a route's metrics namespace ("router.<name>." with
// path separators mapped to dots), mirroring serve.MetricPrefix.
func MetricPrefix(routeName string) string {
	return "router." + strings.ReplaceAll(routeName, "/", ".") + "."
}

// ShardMetricPrefix returns a shard's metrics namespace
// ("router.shard.<name>.").
func ShardMetricPrefix(shardName string) string {
	return "router.shard." + shardName + "."
}

// New builds a router over cfg.Shards. It does not contact the shards;
// the health prober starts with Start (or Handler) and the breakers start
// closed.
func New(cfg Config) (*Router, error) {
	cfg.fill()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{cfg: cfg, reg: reg, routes: make(map[string]*route, len(cfg.Routes)), ctx: ctx, cancel: cancel}
	for i, url := range cfg.Shards {
		name := fmt.Sprintf("shard%d", i)
		p := ShardMetricPrefix(name)
		sh := &shard{
			name:      name,
			url:       url,
			client:    serve.NewClient(url, cfg.HTTPClient),
			br:        newBreaker(cfg.Breaker),
			mRequests: reg.Counter(p + "requests"),
			mFailures: reg.Counter(p + "failures"),
			mRetries:  reg.Counter(p + "retries"),
			mRejects:  reg.Counter(p + "breaker.rejects"),
			gState:    reg.Gauge(p + "breaker.state"),
			gTrips:    reg.Gauge(p + "breaker.trips"),
			hLatency:  reg.Histogram(p + "latency"),
		}
		sh.probe.Store("unknown")
		r.shards = append(r.shards, sh)
	}
	for _, name := range cfg.Routes {
		p := MetricPrefix(name)
		rt := &route{
			name:            name,
			slow:            obs.NewSlowLog(cfg.SlowLog),
			mRequests:       reg.Counter(p + "requests"),
			mDegraded:       reg.Counter(p + "degraded"),
			mErrors:         reg.Counter(p + "errors"),
			mBatches:        reg.Counter(p + "batches"),
			mBatchedQueries: reg.Counter(p + "batch.queries"),
			hLatency:        reg.Histogram(p + "latency"),
			hBatch:          reg.SizeHistogram(p + "batch.size"),
			hStageQueue:     reg.Histogram(p + "stage.queue"),
			hStageScatter:   reg.Histogram(p + "stage.scatter"),
			hStageMerge:     reg.Histogram(p + "stage.merge"),
			hStageEncode:    reg.Histogram(p + "stage.encode"),
		}
		rt.co = batch.New(batch.Config{MaxBatch: cfg.MaxBatch, MaxDelay: cfg.MaxDelay}, func(jobs []job) []result {
			return r.runBatch(rt, jobs)
		})
		r.routes[name] = rt
	}
	return r, nil
}

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *metrics.Registry { return r.reg }

// Routes lists the served route names, sorted.
func (r *Router) Routes() []string {
	out := make([]string, 0, len(r.routes))
	for name := range r.routes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Shards reports the shard map (name → URL) in shard order.
func (r *Router) Shards() []string {
	out := make([]string, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.url
	}
	return out
}

// BreakerTrips sums the trip count across all shards (the bench
// harness's breaker accounting).
func (r *Router) BreakerTrips() int64 {
	var n int64
	for _, sh := range r.shards {
		n += sh.br.Trips()
	}
	return n
}

// runBatch is a route's coalescer batch function: scatter the whole
// micro-batch to every shard concurrently, then merge per query.
func (r *Router) runBatch(rt *route, jobs []job) []result {
	t0 := time.Now()
	queries := make([]string, len(jobs))
	var excludes []string
	maxK := 0
	// The fan-out leader is the first traced member: its id rides the
	// X-Trace-Id header to every shard, and the shards' span timelines are
	// grafted back onto its trace. The other members still get the shared
	// queue/scatter/merge spans — they did wait for the same fan-out.
	var lead *obs.Trace
	for i, j := range jobs {
		queries[i] = j.query
		if j.k > maxK {
			maxK = j.k
		}
		if j.exclude != "" && excludes == nil {
			excludes = make([]string, len(jobs))
		}
		if !j.enq.IsZero() {
			wait := t0.Sub(j.enq)
			rt.hStageQueue.Observe(wait)
			j.tr.AddSpan("queue", j.enq, wait)
		}
		if lead == nil && j.tr != nil {
			lead = j.tr
		}
	}
	if excludes != nil {
		for i, j := range jobs {
			excludes[i] = j.exclude
		}
	}
	scatterStart := time.Now()
	perShard, okFlags, timings := r.scatter(rt, queries, maxK, excludes, lead)
	scatterDur := time.Since(scatterStart)
	rt.hStageScatter.Observe(scatterDur)
	for _, j := range jobs {
		j.tr.AddSpan("scatter", scatterStart, scatterDur)
	}
	r.attachShardTimings(lead, scatterStart, timings)
	ok := 0
	for _, f := range okFlags {
		if f {
			ok++
		}
	}
	outs := make([]result, len(jobs))
	if ok == 0 {
		for i := range outs {
			outs[i] = result{err: errAllShardsFailed, shardsTotal: len(r.shards)}
		}
		return outs
	}
	degraded := ok < len(r.shards)
	mergeStart := time.Now()
	lists := make([][]serve.SearchResult, 0, ok)
	for qi := range jobs {
		lists = lists[:0]
		for si := range r.shards {
			if okFlags[si] {
				lists = append(lists, perShard[si][qi])
			}
		}
		outs[qi] = result{
			results:     MergeTopK(lists, jobs[qi].k),
			degraded:    degraded,
			shardsOK:    ok,
			shardsTotal: len(r.shards),
		}
	}
	mergeDur := time.Since(mergeStart)
	rt.hStageMerge.Observe(mergeDur)
	for _, j := range jobs {
		j.tr.AddSpan("merge", mergeStart, mergeDur)
	}
	return outs
}

// attachShardTimings grafts the ok shards' remote span timelines onto the
// fan-out leader's trace, anchored at the instant the scatter began —
// clock skew between router and shard cannot reorder the merged timeline.
func (r *Router) attachShardTimings(lead *obs.Trace, at time.Time, timings []*serve.TimingInfo) {
	if lead == nil {
		return
	}
	for si, ti := range timings {
		if ti != nil {
			lead.AttachAt(r.shards[si].name+".", at, ti.Spans)
		}
	}
}

// scatter issues one batch-search per shard concurrently and returns each
// shard's per-query result lists, a per-shard success flag, and each ok
// shard's span timeline (nil when the shard failed). tr is the fan-out
// leader's trace; its id propagates to every shard call.
func (r *Router) scatter(rt *route, queries []string, k int, excludes []string, tr *obs.Trace) ([][][]serve.SearchResult, []bool, []*serve.TimingInfo) {
	rt.mBatches.Inc()
	rt.mBatchedQueries.Add(int64(len(queries)))
	rt.hBatch.ObserveN(int64(len(queries)))
	perShard := make([][][]serve.SearchResult, len(r.shards))
	okFlags := make([]bool, len(r.shards))
	timings := make([]*serve.TimingInfo, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			resp, err := r.callShard(sh, rt.name, queries, k, excludes, tr)
			if err == nil {
				perShard[i], okFlags[i], timings[i] = resp.Results, true, resp.Timing
			}
		}(i, sh)
	}
	wg.Wait()
	return perShard, okFlags, timings
}

// callShard runs one shard call under the robustness stack: breaker
// admission, per-attempt deadline, bounded retry on transient failures.
// The shard is always asked for timing — a few hundred extra bytes per
// micro-batch buys the cross-tier span timeline unconditionally, so the
// slowlog never misses the shard-side breakdown of a slow fan-out.
func (r *Router) callShard(sh *shard, routeName string, queries []string, k int, excludes []string, tr *obs.Trace) (serve.BatchSearchResponse, error) {
	if !sh.br.Allow() {
		sh.mRejects.Inc()
		return serve.BatchSearchResponse{}, errShardTripped
	}
	sh.mRequests.Inc()
	start := time.Now()
	var resp serve.BatchSearchResponse
	attempts := 0
	err := r.cfg.Retry.Do(obs.WithTrace(r.ctx, tr), func(ctx context.Context) error {
		if attempts > 0 {
			sh.mRetries.Inc()
		}
		attempts++
		actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
		defer cancel()
		var e error
		resp, e = sh.client.SearchRouteBatchReqCtx(actx, routeName,
			serve.BatchSearchRequest{Queries: queries, K: k, Exclude: excludes, Timing: true})
		return e
	}, retryableError)
	sh.hLatency.Observe(time.Since(start))
	if err == nil && len(resp.Results) != len(queries) {
		err = fmt.Errorf("router: shard %s returned %d result sets for %d queries", sh.name, len(resp.Results), len(queries))
	}
	if err != nil {
		sh.mFailures.Inc()
		sh.setLastErr(err)
		sh.br.Record(false)
		r.publishShardGauges(sh)
		return serve.BatchSearchResponse{}, err
	}
	sh.br.Record(true)
	r.publishShardGauges(sh)
	return resp, nil
}

func (r *Router) publishShardGauges(sh *shard) {
	sh.gState.Set(int64(sh.br.State()))
	sh.gTrips.Set(sh.br.Trips())
}

// retryableError classifies a shard error: 5xx and transport failures
// (connection refused, per-attempt deadline) are transient and worth the
// backoff; a 4xx is the router's own malformed request, and a cancelled
// parent context means the router is shutting down — neither retries.
func retryableError(err error) bool {
	var se *serve.StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return !errors.Is(err, context.Canceled)
}

// probeLoop polls every shard's /healthz each ProbeInterval. It is the
// recovery path of the breaker state machine: when a breaker has cooled
// into half-open, the probe is the single admitted trial, so client
// traffic never pays the latency of poking a possibly-still-dead shard —
// degraded responses continue until a probe proves the shard back.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
		}
		for _, sh := range r.shards {
			r.probeShard(sh)
		}
	}
}

// probeShard fetches one shard's /healthz and, when the breaker is open
// past its cooldown, uses the outcome as the half-open probe. A shard
// reporting "degraded" (a route with zero vectors) counts as a failed
// probe: it is alive but cannot serve its slice of the corpus.
func (r *Router) probeShard(sh *shard) {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.ProbeInterval)
	hz, err := sh.client.HealthzCtx(ctx)
	cancel()
	status := "unreachable"
	if err == nil {
		status = hz.Status
	}
	sh.probe.Store(status)
	if err != nil {
		sh.setLastErr(err)
	}
	if sh.br.AllowProbe() {
		sh.br.Record(err == nil && status == "ok")
	}
	r.publishShardGauges(sh)
}

// search answers one query through the route's coalescer.
func (r *Router) search(ctx context.Context, rt *route, query string, k int, exclude string) (result, error) {
	if k <= 0 {
		k = r.cfg.DefaultK
	}
	if k > r.cfg.MaxK {
		k = r.cfg.MaxK
	}
	rt.mRequests.Inc()
	start := time.Now()
	defer func() { rt.hLatency.Observe(time.Since(start)) }()
	out, err := rt.co.Do(ctx, job{query: query, k: k, exclude: exclude, enq: time.Now(), tr: obs.FromContext(ctx)})
	if err != nil {
		return result{}, err
	}
	if out.err != nil {
		return result{}, out.err
	}
	if out.degraded {
		rt.mDegraded.Inc()
	}
	return out, nil
}

// Handler returns the HTTP API. Per configured route <name>:
//
//	POST /v1/<name>/search        → {"results","degraded","shards_ok","shards_total","route"}
//	POST /v1/<name>/search/batch  → {"results":[[…],…],"degraded",…}
//
// plus the chunks-route legacy aliases /v1/search and /v1/search/batch
// (when "chunks" is routed) and the shared endpoints:
//
//	GET /healthz   per-shard breaker state, probe status, trip counts
//	GET /metrics   text exposition of the registry
//
// and the debug surface:
//
//	GET /debug/slowlog/<route>   {"route","slowest":[trace records]}
//	GET /debug/pprof/...         net/http/pprof (only with Config.Debug)
//
// Calling Handler (or Start) also starts the background health prober.
func (r *Router) Handler() http.Handler {
	r.startProber()
	mux := http.NewServeMux()
	for name, rt := range r.routes {
		mux.HandleFunc("POST /v1/"+name+"/search", r.searchHandler(rt))
		mux.HandleFunc("POST /v1/"+name+"/search/batch", r.batchHandler(rt))
	}
	if rt, ok := r.routes[serve.RouteChunks]; ok {
		mux.HandleFunc("POST /v1/search", r.searchHandler(rt))
		mux.HandleFunc("POST /v1/search/batch", r.batchHandler(rt))
	}
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog/{route...}", r.handleSlowlog)
	if r.cfg.Debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleSlowlog serves a route's retained slowest traces.
func (r *Router) handleSlowlog(w http.ResponseWriter, req *http.Request) {
	name := req.PathValue("route")
	rt, ok := r.routes[name]
	if !ok {
		http.Error(w, fmt.Sprintf("router: unknown route %q (routed: %s)", name, strings.Join(r.Routes(), ", ")),
			http.StatusNotFound)
		return
	}
	writeJSON(w, obs.SlowLogPage{Route: rt.name, Slowest: rt.slow.Snapshot()})
}

func (r *Router) startProber() {
	// Guarded per router, not globally: Handler may be called once for
	// Start and once directly in tests.
	r.proberOnce.Do(func() {
		r.wg.Add(1)
		go r.probeLoop()
	})
}

// Start binds addr and serves in the background until Shutdown.
func (r *Router) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	r.ln = ln
	r.httpSrv = &http.Server{Handler: r.Handler(), ReadTimeout: 30 * time.Second}
	go r.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Shutdown
	return nil
}

// Addr returns the bound address (after Start).
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Shutdown drains gracefully: stop accepting, finish in-flight requests
// within ctx, then stop the prober, the coalescers and any pending
// shard-call backoffs (the lifecycle context aborts their sleeps).
func (r *Router) Shutdown(ctx context.Context) error {
	var err error
	if r.httpSrv != nil {
		err = r.httpSrv.Shutdown(ctx)
	}
	r.cancel()
	for _, rt := range r.routes {
		rt.co.Close()
	}
	r.wg.Wait()
	return err
}

// Close is Shutdown with a bounded drain window.
func (r *Router) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return r.Shutdown(ctx)
}

// Wire types.

// SearchResponse is the router's single-query reply: the backend reply
// shape plus the degradation contract — degraded is set when any shard
// did not contribute, and shards_ok/shards_total say how partial the
// top-k is.
type SearchResponse struct {
	Results     []serve.SearchResult `json:"results"`
	Degraded    bool                 `json:"degraded,omitempty"`
	ShardsOK    int                  `json:"shards_ok"`
	ShardsTotal int                  `json:"shards_total"`
	Route       string               `json:"route,omitempty"`
	Timing      *serve.TimingInfo    `json:"timing,omitempty"`
}

// BatchSearchResponse is the router's batch reply, per-query results in
// request order, with the same degradation contract for the whole batch.
type BatchSearchResponse struct {
	Results     [][]serve.SearchResult `json:"results"`
	Degraded    bool                   `json:"degraded,omitempty"`
	ShardsOK    int                    `json:"shards_ok"`
	ShardsTotal int                    `json:"shards_total"`
	Route       string                 `json:"route,omitempty"`
	Timing      *serve.TimingInfo      `json:"timing,omitempty"`
}

// ShardHealth is one shard's entry in the router's /healthz reply.
type ShardHealth struct {
	URL string `json:"url"`
	// Breaker is the circuit state: closed | open | half-open.
	Breaker string `json:"breaker"`
	// Probe is the last /healthz poll outcome: ok | degraded |
	// unreachable | unknown (not yet probed).
	Probe            string `json:"probe"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	Trips            int64  `json:"trips"`
	// LastError is the shard's most recent failure, truncated to a bounded
	// length; LastErrorAt is when it happened (RFC 3339, UTC).
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// Healthz is the router's /healthz reply.
type Healthz struct {
	// Status is "ok" when every breaker is closed, "degraded" otherwise.
	Status      string                 `json:"status"`
	ShardsOK    int                    `json:"shards_ok"`
	ShardsTotal int                    `json:"shards_total"`
	Routes      []string               `json:"routes"`
	Shards      map[string]ShardHealth `json:"shards"`
}

func (r *Router) searchHandler(rt *route) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var sr serve.SearchRequest
		if !r.decode(rt, w, req, &sr) {
			return
		}
		if sr.Query == "" {
			rt.mErrors.Inc()
			http.Error(w, "empty query", http.StatusBadRequest)
			return
		}
		// Adopt the caller's trace id or mint one; either way it propagates
		// to the shards when this request leads its micro-batch's fan-out.
		tr := obs.NewTrace(req.Header.Get(obs.TraceHeader))
		out, err := r.search(obs.WithTrace(req.Context(), tr), rt, sr.Query, sr.K, sr.Exclude)
		if err != nil {
			rt.mErrors.Inc()
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		resp := SearchResponse{
			Results:     out.results,
			Degraded:    out.degraded,
			ShardsOK:    out.shardsOK,
			ShardsTotal: out.shardsTotal,
			Route:       rt.name,
		}
		if sr.Timing {
			resp.Timing = &serve.TimingInfo{TraceID: tr.ID(), TotalUS: tr.Since().Microseconds(), Spans: tr.Spans()}
		}
		rt.encodeTraced(w, tr, resp)
		rt.slow.Record(tr, "search", sr.Query)
	}
}

// encodeTraced writes the JSON response under an "encode" span and the
// encode-stage histogram, mirroring the serve tier.
func (rt *route) encodeTraced(w http.ResponseWriter, tr *obs.Trace, v any) {
	start := time.Now()
	writeJSON(w, v)
	d := time.Since(start)
	rt.hStageEncode.Observe(d)
	tr.AddSpan("encode", start, d)
}

// batchHandler serves an explicit batch as its own micro-batch: it
// bypasses the coalescer and scatters directly, exactly like the
// backends' batch endpoints bypass theirs.
func (r *Router) batchHandler(rt *route) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var br serve.BatchSearchRequest
		if !r.decode(rt, w, req, &br) {
			return
		}
		if len(br.Queries) == 0 {
			rt.mErrors.Inc()
			http.Error(w, "empty queries", http.StatusBadRequest)
			return
		}
		if len(br.Queries) > r.cfg.MaxBatchQueries {
			rt.mErrors.Inc()
			http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(br.Queries), r.cfg.MaxBatchQueries),
				http.StatusRequestEntityTooLarge)
			return
		}
		if len(br.Exclude) != 0 && len(br.Exclude) != len(br.Queries) {
			rt.mErrors.Inc()
			http.Error(w, fmt.Sprintf("exclude has %d entries for %d queries", len(br.Exclude), len(br.Queries)),
				http.StatusBadRequest)
			return
		}
		k := br.K
		if k <= 0 {
			k = r.cfg.DefaultK
		}
		if k > r.cfg.MaxK {
			k = r.cfg.MaxK
		}
		rt.mRequests.Add(int64(len(br.Queries)))
		tr := obs.NewTrace(req.Header.Get(obs.TraceHeader))
		scatterStart := time.Now()
		perShard, okFlags, timings := r.scatter(rt, br.Queries, k, br.Exclude, tr)
		scatterDur := time.Since(scatterStart)
		rt.hStageScatter.Observe(scatterDur)
		tr.AddSpan("scatter", scatterStart, scatterDur)
		r.attachShardTimings(tr, scatterStart, timings)
		ok := 0
		for _, f := range okFlags {
			if f {
				ok++
			}
		}
		if ok == 0 {
			rt.mErrors.Inc()
			http.Error(w, errAllShardsFailed.Error(), http.StatusServiceUnavailable)
			return
		}
		resp := BatchSearchResponse{
			Results:     make([][]serve.SearchResult, len(br.Queries)),
			Degraded:    ok < len(r.shards),
			ShardsOK:    ok,
			ShardsTotal: len(r.shards),
			Route:       rt.name,
		}
		mergeStart := time.Now()
		lists := make([][]serve.SearchResult, 0, ok)
		for qi := range br.Queries {
			lists = lists[:0]
			for si := range r.shards {
				if okFlags[si] {
					lists = append(lists, perShard[si][qi])
				}
			}
			resp.Results[qi] = MergeTopK(lists, k)
		}
		mergeDur := time.Since(mergeStart)
		rt.hStageMerge.Observe(mergeDur)
		tr.AddSpan("merge", mergeStart, mergeDur)
		if resp.Degraded {
			rt.mDegraded.Add(int64(len(br.Queries)))
		}
		if br.Timing {
			resp.Timing = &serve.TimingInfo{TraceID: tr.ID(), TotalUS: tr.Since().Microseconds(), Spans: tr.Spans()}
		}
		rt.encodeTraced(w, tr, resp)
		rt.slow.Record(tr, "search/batch", br.Queries[0])
	}
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	hz := Healthz{
		Status:      "ok",
		ShardsTotal: len(r.shards),
		Routes:      r.Routes(),
		Shards:      make(map[string]ShardHealth, len(r.shards)),
	}
	for _, sh := range r.shards {
		state := sh.br.State()
		if state == BreakerClosed {
			hz.ShardsOK++
		} else {
			hz.Status = "degraded"
		}
		entry := ShardHealth{
			URL:              sh.url,
			Breaker:          state.String(),
			Probe:            sh.probe.Load().(string),
			ConsecutiveFails: sh.br.ConsecutiveFails(),
			Trips:            sh.br.Trips(),
		}
		if le, ok := sh.lastErr.Load().(lastError); ok {
			entry.LastError = le.msg
			entry.LastErrorAt = le.at.UTC().Format(time.RFC3339)
		}
		hz.Shards[sh.name] = entry
	}
	writeJSON(w, hz)
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.reg.WriteTo(w) //nolint:errcheck // client went away
}

func (r *Router) decode(rt *route, w http.ResponseWriter, req *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		rt.mErrors.Inc()
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}
