package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func getSlowlog(t *testing.T, baseURL, route string) obs.SlowLogPage {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/slowlog/" + route)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog %s: status %d", baseURL, resp.StatusCode)
	}
	var page obs.SlowLogPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func findRecord(page obs.SlowLogPage, traceID string) *obs.TraceRecord {
	for i := range page.Slowest {
		if page.Slowest[i].TraceID == traceID {
			return &page.Slowest[i]
		}
	}
	return nil
}

// TestTracePropagationEndToEnd is the acceptance check for the tracing
// tentpole: one trace id, supplied by the client, names the request in the
// router's merged response, in the router's slowlog, and in every shard's
// slowlog — and the merged timeline carries both router stages and
// shardN.-prefixed remote spans.
func TestTracePropagationEndToEnd(t *testing.T) {
	f := testFleet(t, 3, 48)
	c := testRouter(t, f)

	const traceID = "e2e-router-trace-7"
	ctx := obs.WithTrace(context.Background(), obs.NewTrace(traceID))
	resp, err := c.SearchRouteReqCtx(ctx, serve.RouteChunks, serve.SearchRequest{
		Query: f.corpus[5].Text, K: 3, Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.Results[0].ID != f.corpus[5].ID {
		t.Fatalf("unexpected response %+v", resp)
	}
	if resp.Timing == nil {
		t.Fatal("timing requested but response.timing is nil")
	}
	if resp.Timing.TraceID != traceID {
		t.Fatalf("router did not adopt the client trace id: got %q", resp.Timing.TraceID)
	}

	names := make(map[string]bool)
	shardSpans := 0
	for _, sp := range resp.Timing.Spans {
		names[sp.Name] = true
		if strings.HasPrefix(sp.Name, "shard") && strings.Contains(sp.Name, ".") {
			shardSpans++
		}
	}
	for _, want := range []string{"queue", "scatter", "merge"} {
		if !names[want] {
			t.Fatalf("merged timeline lacks router %q span: %+v", want, resp.Timing.Spans)
		}
	}
	if shardSpans == 0 {
		t.Fatalf("merged timeline has no shardN.-prefixed remote spans: %+v", resp.Timing.Spans)
	}

	// Router slowlog retains the same id with a non-empty timeline.
	rpage := getSlowlog(t, c.BaseURL(), serve.RouteChunks)
	rrec := findRecord(rpage, traceID)
	if rrec == nil {
		t.Fatalf("trace %q not in router slowlog: %+v", traceID, rpage.Slowest)
	}
	if len(rrec.Spans) == 0 {
		t.Fatalf("router slowlog record has empty timeline: %+v", rrec)
	}

	// Every shard adopted the propagated id: the same trace id appears in
	// each shard's own slowlog with its local (unprefixed) span timeline.
	for si, url := range f.urls {
		spage := getSlowlog(t, url, serve.RouteChunks)
		srec := findRecord(spage, traceID)
		if srec == nil {
			t.Fatalf("trace %q not in shard %d slowlog: %+v", traceID, si, spage.Slowest)
		}
		if len(srec.Spans) == 0 {
			t.Fatalf("shard %d slowlog record has empty timeline: %+v", si, srec)
		}
	}
}

// TestRouterTimingOptIn: no timing flag, no timing payload — the opt-in
// contract holds through the router tier too.
func TestRouterTimingOptIn(t *testing.T) {
	f := testFleet(t, 2, 32)
	c := testRouter(t, f)
	resp, err := c.Search(f.corpus[3].Text, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Timing != nil {
		t.Fatalf("timing not requested but present: %+v", resp.Timing)
	}
}
