package router

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// closes the breaker again or re-opens it for another cooldown.
	BreakerHalfOpen
)

// String names the state for health output and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterises a shard's circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long a tripped breaker rejects before admitting a
	// half-open probe (default 500ms).
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
}

// breaker is the per-shard consecutive-failure circuit breaker:
//
//	closed --(Threshold consecutive failures)--> open
//	open   --(Cooldown elapsed)--> half-open, one probe admitted
//	half-open --(probe ok)--> closed        (probe fail)--> open
//
// It deliberately trips on *consecutive* failures, not a rate: one slow
// request in a healthy stream must not shed a shard (that would silently
// lose its slice of the corpus), while a dead shard fails every call and
// trips within Threshold batches.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg.fill()
	return &breaker{cfg: cfg, now: time.Now}
}

// Allow reports whether live traffic may proceed: only in the closed
// state. Open and half-open both reject, so client batches never pay the
// latency of poking a possibly-still-dead shard — recovery is the health
// prober's job via AllowProbe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// AllowProbe reports whether a half-open probe may proceed. In the open
// state it transitions to half-open once the cooldown has elapsed and
// admits a single probe; concurrent probes are rejected until the one in
// flight Records its outcome.
func (b *breaker) AllowProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports a request outcome. Only callers that got true from Allow
// should Record, and exactly once per allowed request.
func (b *breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.fails = 0
		} else {
			b.trip()
		}
	case BreakerOpen:
		// A late Record from a request admitted before the trip; the
		// breaker has already made its decision.
	}
}

// trip moves to open; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.trips++
}

// State returns the current state, applying the open→half-open transition
// lazily so health output doesn't report a stale "open" past the cooldown.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has tripped.
func (b *breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ConsecutiveFails reports the current closed-state failure streak.
func (b *breaker) ConsecutiveFails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
