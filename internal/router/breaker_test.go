package router

import (
	"testing"
	"time"
)

// clockBreaker returns a breaker on a manual clock.
func clockBreaker(cfg BreakerConfig) (*breaker, *time.Time) {
	b := newBreaker(cfg)
	clk := time.Unix(1000, 0)
	b.now = func() time.Time { return clk }
	return b, &clk
}

func TestBreakerTripsOnConsecutiveFailuresOnly(t *testing.T) {
	b, _ := clockBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})
	// Interleaved successes keep resetting the streak: never trips.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected live traffic at %d", i)
		}
		b.Record(false)
		b.Record(false)
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after interleaved failures, want closed", got)
	}
	if b.Trips() != 0 {
		t.Fatalf("trips %d, want 0", b.Trips())
	}
	// Three consecutive failures trip it.
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted live traffic")
	}
	if b.AllowProbe() {
		t.Fatal("open breaker admitted a probe before cooldown")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips %d, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := clockBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	b.Record(false)
	b.Record(false)
	// Cooldown elapses: exactly one probe is admitted; live traffic and
	// concurrent probes stay out.
	*clk = clk.Add(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v past cooldown, want half-open", got)
	}
	if !b.AllowProbe() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.AllowProbe() {
		t.Fatal("second concurrent probe admitted")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted live traffic during probe")
	}
	// Probe success closes the circuit.
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after good probe, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected live traffic after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := clockBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	b.Record(false)
	b.Record(false)
	*clk = clk.Add(time.Second)
	if !b.AllowProbe() {
		t.Fatal("probe rejected")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips %d, want 2 (initial + failed probe)", b.Trips())
	}
	// The cooldown restarted at the failed probe: no probe admitted yet.
	if b.AllowProbe() {
		t.Fatal("probe admitted before the restarted cooldown elapsed")
	}
	*clk = clk.Add(time.Second)
	if !b.AllowProbe() {
		t.Fatal("probe rejected after restarted cooldown")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v, want closed", got)
	}
}

func TestBreakerLateRecordIgnored(t *testing.T) {
	b, _ := clockBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	b.Record(false)
	b.Record(false) // trips
	// A straggler request admitted before the trip reports back late;
	// the breaker's decision stands.
	b.Record(true)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after late records, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips %d, want 1", b.Trips())
	}
}
