package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Client is a typed JSON client for the router API, decoding the
// degradation contract (degraded, shards_ok/shards_total) alongside the
// results. The load harness and tests drive a router fleet through it.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the router at baseURL; a nil httpClient
// gets the serve-client default (30s timeout, pooled transport).
func NewClient(baseURL string, httpClient *http.Client) *Client {
	// Reuse the serve client purely for its transport defaults.
	sc := serve.NewClient(baseURL, httpClient)
	return &Client{base: sc.BaseURL(), hc: sc.HTTPClient()}
}

// BaseURL returns the router base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate a context trace's id so the router adopts it — the same
	// contract the router itself uses toward its shards.
	if tr := obs.FromContext(ctx); tr != nil {
		hreq.Header.Set(obs.TraceHeader, tr.ID())
	}
	hr, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hr.Body, 64<<20))
	if err != nil {
		return err
	}
	if hr.StatusCode != http.StatusOK {
		return &serve.StatusError{Path: path, Status: hr.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	return json.Unmarshal(data, resp)
}

// Search runs one query on the chunks route via the legacy alias.
func (c *Client) Search(query string, k int) (SearchResponse, error) {
	return c.SearchRouteCtx(context.Background(), serve.RouteChunks, query, k, "")
}

// SearchRouteCtx runs one query on the named route.
func (c *Client) SearchRouteCtx(ctx context.Context, route, query string, k int, exclude string) (SearchResponse, error) {
	var resp SearchResponse
	err := c.post(ctx, "/v1/"+route+"/search", serve.SearchRequest{Query: query, K: k, Exclude: exclude}, &resp)
	return resp, err
}

// SearchRouteReqCtx runs one query on the named route from a full request
// body — the way to set opt-in fields like Timing that the positional
// helpers don't carry.
func (c *Client) SearchRouteReqCtx(ctx context.Context, route string, req serve.SearchRequest) (SearchResponse, error) {
	var resp SearchResponse
	err := c.post(ctx, "/v1/"+route+"/search", req, &resp)
	return resp, err
}

// SearchBatch runs an explicit batch on the chunks route.
func (c *Client) SearchBatch(queries []string, k int) (BatchSearchResponse, error) {
	return c.SearchRouteBatchCtx(context.Background(), serve.RouteChunks, queries, k, nil)
}

// SearchRouteBatchCtx runs an explicit batch on the named route.
func (c *Client) SearchRouteBatchCtx(ctx context.Context, route string, queries []string, k int, exclude []string) (BatchSearchResponse, error) {
	var resp BatchSearchResponse
	err := c.post(ctx, "/v1/"+route+"/search/batch", serve.BatchSearchRequest{Queries: queries, K: k, Exclude: exclude}, &resp)
	return resp, err
}

// Healthz fetches the router health report.
func (c *Client) Healthz() (Healthz, error) {
	return c.HealthzCtx(context.Background())
}

// HealthzCtx fetches the router health report under ctx.
func (c *Client) HealthzCtx(ctx context.Context) (Healthz, error) {
	var hz Healthz
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return hz, err
	}
	hr, err := c.hc.Do(req)
	if err != nil {
		return hz, err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hr.Body, 1<<20))
	if err != nil {
		return hz, err
	}
	if hr.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("router: /healthz: status %d", hr.StatusCode)
	}
	return hz, json.Unmarshal(data, &hz)
}
