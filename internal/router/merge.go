package router

import "repro/internal/serve"

// MergeTopK merges per-shard result lists into the exact global top-k.
//
// Each input list must already be in the stores' total order — score
// descending, id ascending on ties — which every shard guarantees because
// it is the order the vecstore scan kernels emit (see scan.go's
// mergeHeaps: the per-segment heap merge relies on the same total order,
// and this function is that associative merge lifted across the network).
// Scores are comparable across shards: every shard embeds queries with
// the same deterministic encoder and scores against its own disjoint
// slice of the corpus, so a document's score is bit-identical wherever it
// lives. The merged prefix of any subset S of shards therefore equals the
// exact top-k over the union of S's corpora.
//
// A duplicate id (possible only from a misconfigured shard map that
// assigned one document twice) is kept once, at its first — i.e. best —
// position in the total order.
func MergeTopK(lists [][]serve.SearchResult, k int) []serve.SearchResult {
	if k <= 0 {
		return nil
	}
	heads := make([]int, len(lists))
	var seen map[string]bool
	out := make([]serve.SearchResult, 0, k)
	for len(out) < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || less(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break // every list exhausted: k exceeds the union size
		}
		r := lists[best][heads[best]]
		heads[best]++
		if seen[r.ID] {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool, k)
		}
		seen[r.ID] = true
		out = append(out, r)
	}
	return out
}

// less is the total order of merged results: score descending, id
// ascending on exact ties — the same order the scan kernels emit, so the
// cross-shard merge is exact and ties break deterministically.
func less(a, b serve.SearchResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}
