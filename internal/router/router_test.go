package router

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/rag"
	"repro/internal/retry"
	"repro/internal/serve"
)

// fleet is a set of in-process fault-injectable shard backends over a
// modulo-partitioned corpus.
type fleet struct {
	gates  []*serve.FaultGate
	urls   []string
	parts  [][]chunk.Chunk
	corpus []chunk.Chunk
}

func testFleet(t testing.TB, nShards, nChunks int) *fleet {
	t.Helper()
	corpus := testCorpus(nChunks)
	f := &fleet{parts: partition(corpus, nShards), corpus: corpus}
	for _, part := range f.parts {
		s := serve.New(rag.BuildChunkStore(nil, part, 0), serve.DefaultConfig())
		gate, err := s.StartFaulty("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		f.gates = append(f.gates, gate)
		f.urls = append(f.urls, "http://"+s.Addr())
	}
	return f
}

// testRouter starts a router over the fleet with timings tight enough
// that trip/probe/recovery all happen within a test run.
func testRouter(t testing.TB, f *fleet) *Client {
	t.Helper()
	r, err := New(Config{
		Shards:        f.urls,
		ShardTimeout:  2 * time.Second,
		Retry:         retry.Policy{MaxRetries: 1, BaseBackoff: time.Millisecond},
		Breaker:       BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		ProbeInterval: 20 * time.Millisecond,
		MaxDelay:      500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return NewClient("http://"+r.Addr(), nil)
}

func TestRouterEndToEnd(t *testing.T) {
	f := testFleet(t, 3, 48)
	c := testRouter(t, f)

	// Healthy fleet: full fan-out, not degraded, and the router's merged
	// answer equals a single unsharded store's, bit for bit.
	resp, err := c.Search(f.corpus[5].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.ShardsOK != 3 || resp.ShardsTotal != 3 {
		t.Fatalf("healthy response marked degraded: %+v", resp)
	}
	if resp.Results[0].ID != f.corpus[5].ID {
		t.Fatalf("self-query missed: %+v", resp.Results)
	}

	queries := []string{f.corpus[0].Text, f.corpus[31].Text, "supernova decay calibration"}
	want := storeSearch(f.corpus, queries, 10)
	bresp, err := c.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Degraded {
		t.Fatalf("healthy batch marked degraded: ok=%d", bresp.ShardsOK)
	}
	for qi := range queries {
		if !reflect.DeepEqual(bresp.Results[qi], want[qi]) {
			t.Fatalf("query %d:\nrouter: %+v\nexact:  %+v", qi, bresp.Results[qi], want[qi])
		}
	}

	hz, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.ShardsOK != 3 || len(hz.Shards) != 3 {
		t.Fatalf("healthz %+v", hz)
	}

	// Kill shard1 cold. Every response from here to recovery must be a
	// 200 — degraded with the exact top-k over the survivors, never a 5xx.
	f.gates[1].Set(serve.FaultDown)
	survivors := append(append([]chunk.Chunk(nil), f.parts[0]...), f.parts[2]...)
	wantDeg := storeSearch(survivors, []string{f.corpus[1].Text}, 5)[0]
	deadline := time.Now().Add(5 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		resp, err := c.SearchRouteCtx(t.Context(), serve.RouteChunks, f.corpus[1].Text, 5, "")
		if err != nil {
			t.Fatalf("outage must degrade, not error: %v", err)
		}
		if !resp.Degraded || resp.ShardsOK != 2 || resp.ShardsTotal != 3 {
			t.Fatalf("response during outage: %+v", resp)
		}
		if !reflect.DeepEqual(resp.Results, wantDeg) {
			t.Fatalf("degraded results not exact over survivors:\ngot:  %+v\nwant: %+v", resp.Results, wantDeg)
		}
		hz, err = c.Healthz()
		if err != nil {
			t.Fatal(err)
		}
		if sh := hz.Shards["shard1"]; sh.Trips >= 1 {
			tripped = true
			if hz.Status != "degraded" {
				t.Fatalf("healthz status %q with tripped shard", hz.Status)
			}
			if sh.Breaker == "closed" {
				t.Fatalf("shard1 breaker %q after trip", sh.Breaker)
			}
			break
		}
	}
	if !tripped {
		t.Fatal("shard1 breaker never tripped")
	}

	// Revive the shard: the health prober's half-open probe must close the
	// breaker and restore full-recall responses without client traffic
	// paying for the recovery.
	f.gates[1].Clear()
	recovered := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		hz, err = c.Healthz()
		if err != nil {
			t.Fatal(err)
		}
		if hz.Status == "ok" && hz.ShardsOK == 3 {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("breaker never closed after revival: %+v", hz)
	}
	resp, err = c.Search(f.corpus[1].Text, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.ShardsOK != 3 {
		t.Fatalf("post-recovery response: %+v", resp)
	}
	if resp.Results[0].ID != f.corpus[1].ID {
		t.Fatalf("revived shard's chunk missing: %+v", resp.Results)
	}
}

func TestRouterAllShardsFailed(t *testing.T) {
	f := testFleet(t, 2, 16)
	c := testRouter(t, f)
	for _, g := range f.gates {
		g.Set(serve.FaultError)
	}
	// Not one shard answered: the only case the router 5xxes.
	_, err := c.Search(f.corpus[0].Text, 3)
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Status != 503 {
		t.Fatalf("err=%v, want router 503", err)
	}
	if _, err := c.SearchBatch([]string{f.corpus[0].Text}, 3); !errors.As(err, &se) || se.Status != 503 {
		t.Fatalf("batch err=%v, want router 503", err)
	}
	// The two failed requests tripped both breakers (threshold 2), so the
	// fleet heals via half-open probes after Clear, not instantly.
	for _, g := range f.gates {
		g.Clear()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Search(f.corpus[0].Text, 3)
		if err == nil && !resp.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered: err=%v resp=%+v", err, resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterRequestValidation(t *testing.T) {
	f := testFleet(t, 2, 16)
	c := testRouter(t, f)
	var se *serve.StatusError
	if _, err := c.Search("", 3); !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("empty query: err=%v, want 400", err)
	}
	big := make([]string, 2000)
	for i := range big {
		big[i] = "q"
	}
	if _, err := c.SearchBatch(big, 3); !errors.As(err, &se) || se.Status != 413 {
		t.Fatalf("oversized batch: err=%v, want 413", err)
	}
	if _, err := c.SearchRouteBatchCtx(t.Context(), serve.RouteChunks, []string{"a", "b"}, 3, []string{"only-one"}); !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("mismatched exclude: err=%v, want 400", err)
	}
}
