package router

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chunk"
	"repro/internal/rag"
	"repro/internal/serve"
)

// testCorpus mirrors the serve test corpus: synthetic chunks with enough
// lexical spread that retrieval produces distinct score profiles.
func testCorpus(n int) []chunk.Chunk {
	topics := []string{"galaxy rotation curves", "stellar nucleosynthesis yields",
		"exoplanet transit photometry", "cosmic microwave background anisotropy",
		"interstellar dust extinction", "supernova light curve decay"}
	out := make([]chunk.Chunk, n)
	for i := range out {
		out[i] = chunk.Chunk{
			ID:    fmt.Sprintf("c%04d", i),
			DocID: fmt.Sprintf("d%03d", i/8),
			Index: i % 8,
			Text: fmt.Sprintf("%s measurement series %d with calibration run %d and residual %d",
				topics[i%len(topics)], i, i*7%13, i*3%11),
			Tokens: 12,
		}
	}
	return out
}

// partition splits a corpus across nShards modulo the chunk index, the
// corpusgen sharding scheme.
func partition(chunks []chunk.Chunk, nShards int) [][]chunk.Chunk {
	parts := make([][]chunk.Chunk, nShards)
	for i, c := range chunks {
		parts[i%nShards] = append(parts[i%nShards], c)
	}
	return parts
}

// storeSearch builds a fresh store over chunks and retrieves every query
// at depth k, converted to wire results — the reference answer a single
// unsharded backend would give.
func storeSearch(chunks []chunk.Chunk, queries []string, k int) [][]serve.SearchResult {
	f := rag.NewChunkFacade(rag.BuildChunkStore(nil, chunks, 0))
	res := f.RetrieveBatch(queries, k, nil)
	out := make([][]serve.SearchResult, len(res))
	for i, hits := range res {
		out[i] = make([]serve.SearchResult, len(hits))
		for j, h := range hits {
			out[i][j] = serve.SearchResult{ID: h.ID, Group: h.Group, Text: h.Text, Score: h.Score}
		}
	}
	return out
}

// TestMergeSubsetProperty is the exactness property the degraded-recall
// contract stands on: for ANY subset S of shards, merging the per-shard
// top-k lists equals the exact top-k of a single store built over the
// union of S's corpora — bit-identical scores, same order. So a degraded
// response (some shards missing) is still the exact answer over the
// surviving corpus, not an approximation.
func TestMergeSubsetProperty(t *testing.T) {
	const nShards = 3
	corpus := testCorpus(48)
	parts := partition(corpus, nShards)
	queries := []string{
		corpus[0].Text, corpus[17].Text, corpus[46].Text,
		"supernova decay residual calibration",
		"cosmic dust photometry",
	}
	for _, k := range []int{1, 3, 10, 200} { // 200 > any union size
		// Per-shard reference lists at depth k.
		shardLists := make([][][]serve.SearchResult, nShards)
		for si, part := range parts {
			shardLists[si] = storeSearch(part, queries, k)
		}
		// Every non-empty subset of shards.
		for mask := 1; mask < 1<<nShards; mask++ {
			var union []chunk.Chunk
			for si := 0; si < nShards; si++ {
				if mask&(1<<si) != 0 {
					union = append(union, parts[si]...)
				}
			}
			want := storeSearch(union, queries, k)
			for qi := range queries {
				var lists [][]serve.SearchResult
				for si := 0; si < nShards; si++ {
					if mask&(1<<si) != 0 {
						lists = append(lists, shardLists[si][qi])
					}
				}
				got := MergeTopK(lists, k)
				if len(got) == 0 && len(want[qi]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want[qi]) {
					t.Fatalf("subset %03b k=%d query %d:\nmerged: %+v\nexact:  %+v", mask, k, qi, got, want[qi])
				}
			}
		}
	}
}

// TestMergeTieOrder: exact score ties break by ascending id regardless of
// which shard holds which document.
func TestMergeTieOrder(t *testing.T) {
	lists := [][]serve.SearchResult{
		{{ID: "x", Score: 0.5}, {ID: "a", Score: 0.25}},
		{{ID: "m", Score: 0.5}, {ID: "b", Score: 0.25}},
	}
	got := MergeTopK(lists, 4)
	wantIDs := []string{"m", "x", "a", "b"}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("tie order: got %+v, want ids %v", got, wantIDs)
		}
	}
}

// TestMergeDuplicateID: a doc double-assigned by a bad shard map appears
// once, at its best-ranked position.
func TestMergeDuplicateID(t *testing.T) {
	lists := [][]serve.SearchResult{
		{{ID: "a", Score: 0.9}, {ID: "dup", Score: 0.6}},
		{{ID: "dup", Score: 0.5}, {ID: "b", Score: 0.4}},
	}
	got := MergeTopK(lists, 4)
	wantIDs := []string{"a", "dup", "b"}
	if len(got) != len(wantIDs) {
		t.Fatalf("got %+v, want ids %v", got, wantIDs)
	}
	for i, w := range wantIDs {
		if got[i].ID != w {
			t.Fatalf("got %+v, want ids %v", got, wantIDs)
		}
	}
	if got[1].Score != 0.6 {
		t.Fatalf("duplicate kept score %v, want the better 0.6", got[1].Score)
	}
}

// TestMergeEdgeCases: k<=0, empty lists, nil input.
func TestMergeEdgeCases(t *testing.T) {
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("nil lists: %+v", got)
	}
	if got := MergeTopK([][]serve.SearchResult{{{ID: "a", Score: 1}}}, 0); len(got) != 0 {
		t.Fatalf("k=0: %+v", got)
	}
	if got := MergeTopK([][]serve.SearchResult{nil, {}, {{ID: "a", Score: 1}}}, 5); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("sparse lists: %+v", got)
	}
}
