// Package pipeline is the workflow-execution substrate standing in for
// Parsl in the paper's HPC pipeline: data-parallel map stages with worker
// pools and futures, plus a checkpointing DAG engine that skips completed
// stages on restart — the execution model the paper relies on to process
// 22,548 documents and 173,318 chunks on ALCF machines.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Future is a single-assignment result slot.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// NewFuture returns an unresolved future.
func NewFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// Resolve sets the result exactly once; later calls are ignored.
func (f *Future[T]) Resolve(val T, err error) {
	select {
	case <-f.done:
	default:
		f.val, f.err = val, err
		close(f.done)
	}
}

// Get blocks until resolution or context cancellation.
func (f *Future[T]) Get(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Go runs fn asynchronously and returns its future. A panic in fn resolves
// the future with an error instead of crashing the program (per-task fault
// isolation, as a workflow engine must provide).
func Go[T any](fn func() (T, error)) *Future[T] {
	f := NewFuture[T]()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				f.Resolve(zero, fmt.Errorf("pipeline: task panic: %v", r))
			}
		}()
		f.Resolve(fn())
	}()
	return f
}

// MapError aggregates per-item failures from a Map stage.
type MapError struct {
	Failures map[int]error // item index → error
}

func (e *MapError) Error() string {
	return fmt.Sprintf("pipeline: %d item(s) failed", len(e.Failures))
}

// Map applies fn to every item with the given parallelism, preserving
// order. Item failures (including panics) are isolated: all items are
// attempted, successes are returned, and a *MapError reports the failures.
// workers <= 0 selects GOMAXPROCS. Cancellation stops dispatch of new
// items; in-flight items finish.
func Map[I, O any](ctx context.Context, items []I, workers int, fn func(context.Context, I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]O, len(items))
	failures := make(map[int]error)
	var mu sync.Mutex
	var next int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(items) {
					return
				}
				v, err := runItem(ctx, items[i], fn)
				if err != nil {
					mu.Lock()
					failures[i] = err
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if len(failures) > 0 {
		return out, &MapError{Failures: failures}
	}
	return out, nil
}

func runItem[I, O any](ctx context.Context, item I, fn func(context.Context, I) (O, error)) (v O, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: item panic: %v", r)
		}
	}()
	return fn(ctx, item)
}

// ForEach is Map without collected outputs.
func ForEach[I any](ctx context.Context, items []I, workers int, fn func(context.Context, I) error) error {
	_, err := Map(ctx, items, workers, func(ctx context.Context, it I) (struct{}, error) {
		return struct{}{}, fn(ctx, it)
	})
	return err
}
