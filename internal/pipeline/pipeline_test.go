package pipeline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Map / futures ---

func TestMapOrderPreserved(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), items, 8, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrorIsolation(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	out, err := Map(context.Background(), items, 3, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("odd %d", i)
		}
		return i * 10, nil
	})
	var merr *MapError
	if !errors.As(err, &merr) {
		t.Fatalf("error type %T", err)
	}
	if len(merr.Failures) != 3 {
		t.Fatalf("%d failures", len(merr.Failures))
	}
	// Successful items are still present.
	if out[0] != 0 || out[2] != 20 || out[4] != 40 {
		t.Fatalf("successes lost: %v", out)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	items := []int{1, 2, 3}
	_, err := Map(context.Background(), items, 2, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	var merr *MapError
	if !errors.As(err, &merr) {
		t.Fatalf("panic not converted: %v", err)
	}
	if len(merr.Failures) != 1 || !strings.Contains(merr.Failures[1].Error(), "panic") {
		t.Fatalf("failures: %v", merr.Failures)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	items := make([]int, 1000)
	_, err := Map(ctx, items, 2, func(ctx context.Context, i int) (int, error) {
		if atomic.AddInt32(&started, 1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if atomic.LoadInt32(&started) > 100 {
		t.Fatalf("cancellation did not stop dispatch: %d started", started)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), []int(nil), 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	err := ForEach(context.Background(), []int{1, 2, 3, 4}, 2, func(_ context.Context, i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	})
	if err != nil || sum != 10 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
}

func TestFutureResolveOnce(t *testing.T) {
	f := NewFuture[int]()
	f.Resolve(1, nil)
	f.Resolve(2, nil)
	v, err := f.Get(context.Background())
	if v != 1 || err != nil {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestFutureContextCancel(t *testing.T) {
	f := NewFuture[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Get(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestGoPanicBecomesError(t *testing.T) {
	f := Go(func() (int, error) { panic("kaboom") })
	_, err := f.Get(context.Background())
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v", err)
	}
}

// --- Engine / DAG ---

func TestEngineTopologicalOrder(t *testing.T) {
	e := NewEngine("")
	var mu sync.Mutex
	var order []string
	mk := func(name string, deps ...string) *Task {
		return &Task{Name: name, Deps: deps, Run: func(context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}}
	}
	e.MustAdd(mk("parse"))
	e.MustAdd(mk("chunk", "parse"))
	e.MustAdd(mk("embed", "chunk"))
	e.MustAdd(mk("generate", "chunk"))
	e.MustAdd(mk("traces", "generate"))
	if err := e.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	checks := [][2]string{{"parse", "chunk"}, {"chunk", "embed"}, {"chunk", "generate"}, {"generate", "traces"}}
	for _, c := range checks {
		if pos[c[0]] > pos[c[1]] {
			t.Fatalf("%s ran after %s: %v", c[0], c[1], order)
		}
	}
}

func TestEngineParallelIndependentTasks(t *testing.T) {
	e := NewEngine("")
	var concurrent, peak int32
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("t%d", i)
		e.MustAdd(&Task{Name: name, Run: func(context.Context) error {
			c := atomic.AddInt32(&concurrent, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			atomic.AddInt32(&concurrent, -1)
			return nil
		}})
	}
	if err := e.Run(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Fatalf("independent tasks did not overlap (peak %d)", peak)
	}
}

func TestEngineErrorStopsDependents(t *testing.T) {
	e := NewEngine("")
	ran := make(map[string]bool)
	var mu sync.Mutex
	e.MustAdd(&Task{Name: "a", Run: func(context.Context) error { return errors.New("fail") }})
	e.MustAdd(&Task{Name: "b", Deps: []string{"a"}, Run: func(context.Context) error {
		mu.Lock()
		ran["b"] = true
		mu.Unlock()
		return nil
	}})
	err := e.Run(context.Background(), 2)
	if err == nil || !strings.Contains(err.Error(), `task "a"`) {
		t.Fatalf("err = %v", err)
	}
	if ran["b"] {
		t.Fatal("dependent ran after failure")
	}
}

func TestEngineUnknownDep(t *testing.T) {
	e := NewEngine("")
	e.MustAdd(&Task{Name: "a", Deps: []string{"ghost"}, Run: func(context.Context) error { return nil }})
	if err := e.Run(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineCycleDetection(t *testing.T) {
	e := NewEngine("")
	e.MustAdd(&Task{Name: "a", Deps: []string{"b"}, Run: func(context.Context) error { return nil }})
	e.MustAdd(&Task{Name: "b", Deps: []string{"a"}, Run: func(context.Context) error { return nil }})
	if err := e.Run(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineDuplicateTask(t *testing.T) {
	e := NewEngine("")
	e.MustAdd(&Task{Name: "a", Run: func(context.Context) error { return nil }})
	if err := e.Add(&Task{Name: "a", Run: func(context.Context) error { return nil }}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestEnginePanicInTask(t *testing.T) {
	e := NewEngine("")
	e.MustAdd(&Task{Name: "p", Run: func(context.Context) error { panic("task exploded") }})
	err := e.Run(context.Background(), 1)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v", err)
	}
}

func TestEngineCheckpointSkip(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "out.txt")
	runs := 0
	mkEngine := func() *Engine {
		e := NewEngine(filepath.Join(dir, "ckpt"))
		e.MustAdd(&Task{
			Name:    "produce",
			Outputs: []string{artifact},
			Run: func(context.Context) error {
				runs++
				return os.WriteFile(artifact, []byte("data"), 0o644)
			},
		})
		return e
	}
	if err := mkEngine().Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := mkEngine().Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("task ran %d times, want 1 (checkpoint skip)", runs)
	}
}

func TestEngineCheckpointInvalidatedByMissingOutput(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "out.txt")
	runs := 0
	mkEngine := func() *Engine {
		e := NewEngine(filepath.Join(dir, "ckpt"))
		e.MustAdd(&Task{
			Name:    "produce",
			Outputs: []string{artifact},
			Run: func(context.Context) error {
				runs++
				return os.WriteFile(artifact, []byte("data"), 0o644)
			},
		})
		return e
	}
	if err := mkEngine().Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	os.Remove(artifact) // artifact lost → must re-run
	if err := mkEngine().Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("task ran %d times, want 2 after artifact loss", runs)
	}
}

func TestEngineReset(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	e := NewEngine(filepath.Join(dir, "ckpt"))
	e.MustAdd(&Task{Name: "a", Run: func(context.Context) error { runs++; return nil }})
	if err := e.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d after Reset", runs)
	}
}

func TestEngineMetricsAndReport(t *testing.T) {
	e := NewEngine("")
	e.MustAdd(&Task{Name: "ok", Run: func(context.Context) error { return nil }})
	e.MustAdd(&Task{Name: "bad", Run: func(context.Context) error { return errors.New("x") }})
	_ = e.Run(context.Background(), 2)
	ms := e.Metrics()
	if len(ms) != 2 {
		t.Fatalf("%d metrics", len(ms))
	}
	report := e.Report()
	if !strings.Contains(report, "ok") || !strings.Contains(report, "FAILED") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestEngineContextCancel(t *testing.T) {
	e := NewEngine("")
	ctx, cancel := context.WithCancel(context.Background())
	e.MustAdd(&Task{Name: "a", Run: func(context.Context) error { cancel(); return nil }})
	e.MustAdd(&Task{Name: "b", Deps: []string{"a"}, Run: func(context.Context) error { return nil }})
	err := e.Run(ctx, 1)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

func BenchmarkMapThroughput(b *testing.B) {
	items := make([]int, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Map(context.Background(), items, 0, func(_ context.Context, v int) (int, error) {
			return v + 1, nil
		})
	}
}
