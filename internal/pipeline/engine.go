package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Task is one named stage of a workflow DAG.
type Task struct {
	Name string
	// Deps are names of tasks that must complete first.
	Deps []string
	// Outputs are artifact paths this task produces; on restart the task is
	// skipped only if its completion marker and all outputs exist.
	Outputs []string
	// Run performs the work.
	Run func(ctx context.Context) error
}

// StageMetrics records one task's execution accounting.
type StageMetrics struct {
	Name     string
	Started  time.Time
	Duration time.Duration
	Skipped  bool
	Err      error
}

// Engine executes a task DAG with bounded parallelism and marker-file
// checkpointing (the Parsl restart model: completed stages are skipped when
// their artifacts survive).
type Engine struct {
	checkpointDir string // empty disables checkpointing
	tasks         map[string]*Task
	order         []string // insertion order, for stable reporting

	mu      sync.Mutex
	metrics []StageMetrics
}

// NewEngine returns an engine; checkpointDir may be empty to disable
// restart markers.
func NewEngine(checkpointDir string) *Engine {
	return &Engine{checkpointDir: checkpointDir, tasks: make(map[string]*Task)}
}

// Add registers a task. Duplicate names are an error.
func (e *Engine) Add(t *Task) error {
	if t.Name == "" {
		return fmt.Errorf("pipeline: task with empty name")
	}
	if t.Run == nil {
		return fmt.Errorf("pipeline: task %q has no Run", t.Name)
	}
	if _, dup := e.tasks[t.Name]; dup {
		return fmt.Errorf("pipeline: duplicate task %q", t.Name)
	}
	e.tasks[t.Name] = t
	e.order = append(e.order, t.Name)
	return nil
}

// MustAdd is Add panicking on error, for static DAG construction.
func (e *Engine) MustAdd(t *Task) {
	if err := e.Add(t); err != nil {
		panic(err)
	}
}

// markerPath returns the completion marker for a task.
func (e *Engine) markerPath(name string) string {
	safe := strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
			return r
		}
		return '_'
	}, name)
	return filepath.Join(e.checkpointDir, safe+".done")
}

// isComplete reports whether a task can be skipped on restart.
func (e *Engine) isComplete(t *Task) bool {
	if e.checkpointDir == "" {
		return false
	}
	if _, err := os.Stat(e.markerPath(t.Name)); err != nil {
		return false
	}
	for _, out := range t.Outputs {
		if _, err := os.Stat(out); err != nil {
			return false
		}
	}
	return true
}

func (e *Engine) markComplete(t *Task) error {
	if e.checkpointDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.checkpointDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(e.markerPath(t.Name), []byte(time.Now().UTC().Format(time.RFC3339)+"\n"), 0o644)
}

// Reset removes all completion markers, forcing a full re-run.
func (e *Engine) Reset() error {
	if e.checkpointDir == "" {
		return nil
	}
	for name := range e.tasks {
		if err := os.Remove(e.markerPath(name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Run executes the DAG with at most parallelism concurrent tasks
// (<= 0 means unbounded). It validates dependencies and rejects cycles.
// The first task error cancels dispatch of dependents; independent
// in-flight tasks finish.
func (e *Engine) Run(ctx context.Context, parallelism int) error {
	// Validate deps.
	for _, t := range e.tasks {
		for _, d := range t.Deps {
			if _, ok := e.tasks[d]; !ok {
				return fmt.Errorf("pipeline: task %q depends on unknown %q", t.Name, d)
			}
		}
	}
	if cycle := e.findCycle(); cycle != "" {
		return fmt.Errorf("pipeline: dependency cycle involving %q", cycle)
	}

	type result struct {
		name string
		err  error
	}
	done := make(map[string]bool, len(e.tasks))
	running := make(map[string]bool)
	results := make(chan result)
	var firstErr error
	sem := make(chan struct{}, maxInt(parallelism, len(e.tasks)))

	ready := func() []string {
		var out []string
		for _, name := range e.order {
			if done[name] || running[name] {
				continue
			}
			ok := true
			for _, d := range e.tasks[name].Deps {
				if !done[d] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, name)
			}
		}
		return out
	}

	launch := func(name string) {
		running[name] = true
		t := e.tasks[name]
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			m := StageMetrics{Name: name, Started: time.Now()}
			if e.isComplete(t) {
				m.Skipped = true
				e.record(m)
				results <- result{name, nil}
				return
			}
			err := runTask(ctx, t)
			m.Duration = time.Since(m.Started)
			m.Err = err
			if err == nil {
				err = e.markComplete(t)
				m.Err = err
			}
			e.record(m)
			results <- result{name, err}
		}()
	}

	for _, name := range ready() {
		launch(name)
	}
	for len(done) < len(e.tasks) {
		if len(running) == 0 {
			// No progress possible: either error or blocked dependents.
			break
		}
		res := <-results
		delete(running, res.name)
		done[res.name] = true
		if res.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pipeline: task %q: %w", res.name, res.err)
		}
		if firstErr == nil && ctx.Err() == nil {
			for _, name := range ready() {
				launch(name)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(done) < len(e.tasks) {
		return fmt.Errorf("pipeline: %d task(s) never became runnable", len(e.tasks)-len(done))
	}
	return nil
}

func runTask(ctx context.Context, t *Task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	return t.Run(ctx)
}

// findCycle returns the name of a task on a dependency cycle, or "".
func (e *Engine) findCycle() string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(e.tasks))
	var visit func(string) string
	visit = func(n string) string {
		color[n] = gray
		for _, d := range e.tasks[n].Deps {
			switch color[d] {
			case gray:
				return d
			case white:
				if c := visit(d); c != "" {
					return c
				}
			}
		}
		color[n] = black
		return ""
	}
	names := make([]string, 0, len(e.tasks))
	for n := range e.tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white {
			if c := visit(n); c != "" {
				return c
			}
		}
	}
	return ""
}

func (e *Engine) record(m StageMetrics) {
	e.mu.Lock()
	e.metrics = append(e.metrics, m)
	e.mu.Unlock()
}

// Metrics returns a copy of the per-stage execution records in completion
// order.
func (e *Engine) Metrics() []StageMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]StageMetrics, len(e.metrics))
	copy(out, e.metrics)
	return out
}

// Report renders a human-readable stage table (the workflow summary the
// pipeline binaries print, echoing the paper's Figure 1 DAG).
func (e *Engine) Report() string {
	var b strings.Builder
	b.WriteString("stage                          status      duration\n")
	for _, m := range e.Metrics() {
		status := "ok"
		switch {
		case m.Skipped:
			status = "skipped"
		case m.Err != nil:
			status = "FAILED"
		}
		fmt.Fprintf(&b, "%-30s %-10s %10s\n", m.Name, status, m.Duration.Round(time.Millisecond))
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a <= 0 {
		return b
	}
	if a > b {
		return b
	}
	return a
}
