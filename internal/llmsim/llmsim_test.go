package llmsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/corpus"
	"repro/internal/mcq"
	"repro/internal/rng"
)

// --- calibration ---

func TestExpectedAccuracyMonotone(t *testing.T) {
	prev := 0.0
	for z := -8.0; z <= 8; z += 0.5 {
		acc := expectedAccuracy(z)
		if acc < prev {
			t.Fatalf("expectedAccuracy not monotone at z=%v", z)
		}
		prev = acc
	}
	if expectedAccuracy(0) < 0.49 || expectedAccuracy(0) > 0.51 {
		t.Fatalf("expectedAccuracy(0) = %v, want ~0.5", expectedAccuracy(0))
	}
}

func TestSolveAbilityInverts(t *testing.T) {
	for _, target := range []float64{0.089, 0.176, 0.38, 0.5, 0.745, 0.916, 0.99} {
		z := solveAbility(target)
		got := expectedAccuracy(z)
		want := target
		if want < 0.005 {
			want = 0.005
		}
		if want > 0.995 {
			want = 0.995
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("solveAbility(%v): expectedAccuracy(z)=%v", target, got)
		}
	}
}

func TestSolveAbilityClamps(t *testing.T) {
	if z := solveAbility(-0.5); math.IsInf(z, 0) || math.IsNaN(z) {
		t.Fatal("negative target produced non-finite ability")
	}
	if z := solveAbility(1.5); math.IsInf(z, 0) || math.IsNaN(z) {
		t.Fatal("overshoot target produced non-finite ability")
	}
}

// Monte-Carlo check: simulated accuracy over N(0,1) difficulties matches
// the analytic calibration.
func TestCalibrationMonteCarlo(t *testing.T) {
	r := rng.New(99)
	for _, target := range []float64{0.2, 0.45, 0.8} {
		z := solveAbility(target)
		hits := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if r.Bool(sigmoid(z - r.Normal(0, 1))) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-target) > 0.01 {
			t.Fatalf("target %v: MC accuracy %v", target, got)
		}
	}
}

// --- profiles ---

func TestProfilesRoster(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("%d profiles, want 8", len(ps))
	}
	// Spot-check Table 1 metadata.
	byName := map[string]*Profile{}
	for _, p := range ps {
		byName[p.Name] = p
	}
	if byName["OLMo-7B"].ContextWindow != 2048 {
		t.Fatal("OLMo context window")
	}
	if byName["Gemma 3 4B-IT"].ContextWindow != 128000 || byName["Gemma 3 4B-IT"].ReleaseYear != 2025 {
		t.Fatal("Gemma metadata")
	}
	if byName["Qwen-1.5-14B-Chat"].ParamsB != 14 {
		t.Fatal("Qwen params")
	}
}

func TestProfilesCompleteTargets(t *testing.T) {
	for _, p := range Profiles() {
		for _, cond := range AllConditions {
			for _, tgt := range []Targets{p.Synthetic, p.AstroAll, p.AstroNoMath} {
				v, ok := tgt[cond]
				if !ok {
					t.Fatalf("%s: missing %s", p.Name, cond)
				}
				if v <= 0 || v >= 1 {
					t.Fatalf("%s %s: target %v out of (0,1)", p.Name, cond, v)
				}
			}
		}
	}
}

func TestPaperShapeInvariantsInTargets(t *testing.T) {
	// The qualitative claims of the paper hold in the calibration targets:
	// on the synthetic benchmark, chunks > baseline and best-RT > chunks
	// for every model.
	for _, p := range Profiles() {
		if p.Synthetic[CondChunks] <= p.Synthetic[CondBaseline] {
			t.Fatalf("%s: chunks not above baseline", p.Name)
		}
		bestRT := math.Max(p.Synthetic[CondRTDetail],
			math.Max(p.Synthetic[CondRTFocused], p.Synthetic[CondRTEfficient]))
		if bestRT <= p.Synthetic[CondChunks] {
			t.Fatalf("%s: best RT %v not above chunks %v", p.Name, bestRT, p.Synthetic[CondChunks])
		}
		// BestMode is consistent with the synthetic table.
		if p.Synthetic[TraceCondition(p.BestMode)] < bestRT-1e-9 {
			t.Fatalf("%s: BestMode %s is not the argmax", p.Name, p.BestMode)
		}
	}
}

func TestAstroChunksCanHurt(t *testing.T) {
	// Table 3's notable finding: chunk retrieval is below baseline for
	// OLMo-7B and RT below baseline for Llama-3-8B. The profiles encode it.
	p, err := ProfileByName("OLMo-7B")
	if err != nil {
		t.Fatal(err)
	}
	if p.AstroAll[CondChunks] >= p.AstroAll[CondBaseline] {
		t.Fatal("OLMo Astro chunk drop not encoded")
	}
	l3, _ := ProfileByName("Llama-3-8B-Instruct")
	best := l3.AstroAll[TraceCondition(l3.BestMode)]
	if best >= l3.AstroAll[CondBaseline] {
		t.Fatal("Llama-3-8B Astro RT regression not encoded")
	}
}

func TestAstroMathTargetsDerivation(t *testing.T) {
	p, _ := ProfileByName("OLMo-7B")
	m := p.AstroMathTargets()
	// math = (335*all - 189*nomath)/146 for the baseline column.
	want := (335*0.446 - 189*0.471) / 146
	if math.Abs(m[CondBaseline]-want) > 1e-9 {
		t.Fatalf("math baseline %v, want %v", m[CondBaseline], want)
	}
	// Mixture identity: (189*nomath + 146*math)/335 == all.
	for cond, all := range p.AstroAll {
		mixed := (189*p.AstroNoMath[cond] + 146*m[cond]) / 335
		if math.Abs(mixed-all) > 0.02 { // clamping can shift slightly
			t.Fatalf("%s: mixture %v vs all %v", cond, mixed, all)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("GPT-17"); err == nil {
		t.Fatal("unknown model found")
	}
}

func TestGPT4Profile(t *testing.T) {
	p := GPT4Profile()
	if p.AstroAll[CondBaseline] != GPT4AstroBaseline {
		t.Fatal("GPT-4 baseline mismatch")
	}
	s := NewStudent(p)
	if s.Supports(BenchAstro, CondChunks) {
		t.Fatal("GPT-4 should be baseline-only")
	}
	if !s.Supports(BenchAstro, CondBaseline) {
		t.Fatal("GPT-4 lacks baseline")
	}
}

// --- student ---

func mkQuestion(id string, math bool) *mcq.Question {
	return &mcq.Question{
		ID:       id,
		Question: "Which pathway repairs double-strand breaks in G1?",
		Options:  []string{"NHEJ", "HR", "BER", "MMR", "NER", "SSA", "TLS"},
		Answer:   0,
		Math:     math,
	}
}

func TestStudentBaselineAccuracyMatchesTarget(t *testing.T) {
	p, _ := ProfileByName("OLMo-7B")
	s := NewStudent(p)
	r := rng.New(7)
	hits, n := 0, 60000
	for i := 0; i < n; i++ {
		q := mkQuestion(questionID(i), false)
		resp := s.Answer(q, BenchSynthetic, CondBaseline, 0, 0, r)
		if resp.Choice == q.Answer {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.380) > 0.01 {
		t.Fatalf("OLMo synthetic baseline %v, want ~0.380", got)
	}
}

func questionID(i int) string {
	return "q-test-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+(i/17576)%10))
}

func TestStudentConditionAccuracyAtFullUtility(t *testing.T) {
	p, _ := ProfileByName("TinyLlama-1.1B-Chat")
	s := NewStudent(p)
	r := rng.New(8)
	hits, n := 0, 60000
	for i := 0; i < n; i++ {
		q := mkQuestion(questionID(i), false)
		// u == uMean: published condition accuracy should be recovered.
		resp := s.Answer(q, BenchSynthetic, CondRTDetail, 0.85, 0.85, r)
		if resp.Choice == q.Answer {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.710) > 0.012 {
		t.Fatalf("TinyLlama RT-detail %v, want ~0.710", got)
	}
}

func TestStudentZeroUtilityCollapsesToBaseline(t *testing.T) {
	// The sabotage invariant: if retrieval returns nothing useful, every
	// RAG condition degenerates to baseline.
	p, _ := ProfileByName("SmolLM3-3B")
	s := NewStudent(p)
	q := mkQuestion("q-sabotage", false)
	base := s.AnswerProb(q, BenchSynthetic, CondBaseline, 0, 0)
	for _, cond := range []Condition{CondChunks, CondRTDetail, CondRTFocused, CondRTEfficient} {
		got := s.AnswerProb(q, BenchSynthetic, cond, 0, 0.85)
		if math.Abs(got-base) > 1e-9 {
			t.Fatalf("%s with u=0: prob %v != baseline %v", cond, got, base)
		}
	}
}

func TestStudentUtilityMonotone(t *testing.T) {
	p, _ := ProfileByName("SmolLM3-3B")
	s := NewStudent(p)
	q := mkQuestion("q-mono", false)
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		got := s.AnswerProb(q, BenchSynthetic, CondChunks, u, 0.8)
		if got < prev {
			t.Fatalf("accuracy not monotone in utility at u=%v", u)
		}
		prev = got
	}
}

func TestStudentNegativeGainDirection(t *testing.T) {
	// OLMo on Astro: chunks hurt, so more retrieval utility must *lower*
	// the answer probability.
	p, _ := ProfileByName("OLMo-7B")
	s := NewStudent(p)
	q := mkQuestion("q-neg", false)
	withRetrieval := s.AnswerProb(q, BenchAstro, CondChunks, 0.8, 0.8)
	without := s.AnswerProb(q, BenchAstro, CondChunks, 0, 0.8)
	if withRetrieval >= without {
		t.Fatalf("OLMo Astro chunks: retrieval should hurt (%v >= %v)", withRetrieval, without)
	}
}

func TestStudentProbabilityClamped(t *testing.T) {
	p, _ := ProfileByName("SmolLM3-3B")
	s := NewStudent(p)
	for i := 0; i < 200; i++ {
		q := mkQuestion(questionID(i), false)
		// An extreme utility ratio must not drive p outside the clamp.
		got := s.AnswerProb(q, BenchSynthetic, CondChunks, 100, 0.1)
		if got < probFloor || got > probCeil {
			t.Fatalf("probability %v escaped clamp", got)
		}
	}
}

func TestDifficultyStableAndSpread(t *testing.T) {
	if Difficulty("q-1") != Difficulty("q-1") {
		t.Fatal("difficulty unstable")
	}
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := Difficulty(questionID(i))
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(sd-1) > 0.05 {
		t.Fatalf("difficulty distribution mean %v sd %v", mean, sd)
	}
}

func TestMathQuestionsUseMathRow(t *testing.T) {
	p, _ := ProfileByName("TinyLlama-1.1B-Chat")
	s := NewStudent(p)
	qm := mkQuestion("q-math", true)
	qn := mkQuestion("q-math", false) // same id → same difficulty
	pm := s.AnswerProb(qm, BenchAstro, CondBaseline, 0, 0)
	pn := s.AnswerProb(qn, BenchAstro, CondBaseline, 0, 0)
	if pm >= pn {
		t.Fatalf("math questions should be harder for TinyLlama: %v vs %v", pm, pn)
	}
}

func TestAnswerResponseFormat(t *testing.T) {
	p, _ := ProfileByName("OLMo-7B")
	s := NewStudent(p)
	r := rng.New(3)
	q := mkQuestion("q-fmt", false)
	resp := s.Answer(q, BenchSynthetic, CondBaseline, 0, 0, r)
	if resp.Choice < 0 || resp.Choice >= len(q.Options) {
		t.Fatalf("choice %d out of range", resp.Choice)
	}
	if !strings.HasPrefix(resp.Text, "Answer: ") {
		t.Fatalf("response text %q", resp.Text)
	}
}

// --- teacher ---

func teacherFixture(t testing.TB) (*Teacher, *corpus.KB, []chunk.Chunk, *corpus.Document) {
	t.Helper()
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	d := g.GenerateDoc(corpus.FullPaper, 0)
	chunks := chunk.New(chunk.DefaultConfig(), nil).Split(d.ID, d.Text())
	return NewTeacher(kb), kb, chunks, d
}

func TestGenerateMCQGrounded(t *testing.T) {
	teacher, kb, chunks, d := teacherFixture(t)
	r := rng.New(1)
	var grounded *mcq.Question
	for _, ch := range chunks {
		q := teacher.GenerateMCQ(ch, d.Facts, "corpus/"+d.ID+".spdf", r)
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid question: %v", err)
		}
		if q.Prov.FactID != "" {
			grounded = q
			break
		}
	}
	if grounded == nil {
		t.Fatal("no grounded question generated from a fact-bearing paper")
	}
	if len(grounded.Options) != 7 {
		t.Fatalf("%d options, want 7", len(grounded.Options))
	}
	f := kb.Fact(corpus.FactID(grounded.Prov.FactID))
	if grounded.AnswerText() != f.Object {
		t.Fatalf("keyed answer %q != fact object %q", grounded.AnswerText(), f.Object)
	}
	if grounded.Prov.ChunkID == "" || grounded.Prov.DocID != d.ID {
		t.Fatal("provenance incomplete")
	}
	if grounded.Math != f.Math {
		t.Fatal("math flag not propagated")
	}
}

func TestGenerateMCQDeterministicID(t *testing.T) {
	teacher, _, chunks, d := teacherFixture(t)
	a := teacher.GenerateMCQ(chunks[0], d.Facts, "f", rng.New(1))
	b := teacher.GenerateMCQ(chunks[0], d.Facts, "f", rng.New(1))
	if a.ID != b.ID || a.Question != b.Question || a.Answer != b.Answer {
		t.Fatal("generation not deterministic")
	}
}

func TestGenerateMCQUngrounded(t *testing.T) {
	teacher, _, _, _ := teacherFixture(t)
	ch := chunk.Chunk{ID: "chunk-x", DocID: "d", Text: "These findings were consistent across all replicates examined. Further validation remains warranted."}
	q := teacher.GenerateMCQ(ch, nil, "f", rng.New(2))
	if q.Prov.FactID != "" {
		t.Fatal("ungrounded chunk produced grounded question")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Type != "comprehension" {
		t.Fatalf("type %q", q.Type)
	}
}

func TestJudgeQualitySeparatesGroundedness(t *testing.T) {
	teacher, _, chunks, d := teacherFixture(t)
	r := rng.New(3)
	groundedPass, groundedTotal := 0, 0
	ungroundedPass, ungroundedTotal := 0, 0
	for trial := 0; trial < 300; trial++ {
		for _, ch := range chunks {
			q := teacher.GenerateMCQ(ch, d.Facts, "f", r)
			c := teacher.JudgeQuality(q, r)
			if c.QualityScore < 1 || c.QualityScore > 10 {
				t.Fatalf("score %v out of rubric", c.QualityScore)
			}
			if q.Prov.FactID != "" {
				groundedTotal++
				if c.QualityScore >= 7 && c.Relevant {
					groundedPass++
				}
			} else {
				ungroundedTotal++
				if c.QualityScore >= 7 && c.Relevant {
					ungroundedPass++
				}
			}
		}
	}
	if groundedTotal == 0 || ungroundedTotal == 0 {
		t.Skip("fixture lacks one class")
	}
	gRate := float64(groundedPass) / float64(groundedTotal)
	uRate := float64(ungroundedPass) / float64(ungroundedTotal)
	if gRate < 0.2 || gRate > 0.7 {
		t.Fatalf("grounded pass rate %v implausible", gRate)
	}
	if uRate > 0.02 {
		t.Fatalf("ungrounded pass rate %v too high", uRate)
	}
}

func TestGenerateTracesAllModes(t *testing.T) {
	teacher, _, chunks, d := teacherFixture(t)
	r := rng.New(4)
	var q *mcq.Question
	for _, ch := range chunks {
		cand := teacher.GenerateMCQ(ch, d.Facts, "f", r)
		if cand.Prov.FactID != "" {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no grounded question")
	}
	traces := teacher.GenerateTraces(q)
	if len(traces) != 3 {
		t.Fatalf("%d traces", len(traces))
	}
	seen := map[mcq.ReasoningMode]bool{}
	for _, tr := range traces {
		if err := tr.Validate(q.AnswerText()); err != nil {
			t.Fatalf("trace invalid: %v", err)
		}
		if tr.QuestionID != q.ID {
			t.Fatal("trace question link broken")
		}
		if !strings.Contains(tr.Reasoning, q.Question) {
			t.Fatal("trace does not restate the question")
		}
		seen[tr.Mode] = true
	}
	if len(seen) != 3 {
		t.Fatalf("modes %v", seen)
	}
	// Detailed mode is the longest; efficient the shortest.
	var detail, efficient string
	for _, tr := range traces {
		switch tr.Mode {
		case mcq.ModeDetailed:
			detail = tr.Reasoning
		case mcq.ModeEfficient:
			efficient = tr.Reasoning
		}
	}
	if len(detail) <= len(efficient) {
		t.Fatal("detailed trace not longer than efficient")
	}
}

func TestTraceNeverAssertsAnswer(t *testing.T) {
	teacher, _, chunks, d := teacherFixture(t)
	r := rng.New(5)
	for _, ch := range chunks {
		q := teacher.GenerateMCQ(ch, d.Facts, "f", r)
		for _, tr := range teacher.GenerateTraces(q) {
			low := strings.ToLower(tr.Reasoning)
			if strings.Contains(low, "correct answer is") {
				t.Fatalf("trace asserts the answer: %q", tr.Reasoning)
			}
			if !tr.AnswerExcluded {
				t.Fatal("answer_excluded unset")
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	teacher, _, _, _ := teacherFixture(t)
	s := teacher.Summarize("Radiation damages DNA. Repair follows. Cells survive.")
	if !strings.Contains(s, "Radiation damages DNA.") || !strings.Contains(s, "3 statements") {
		t.Fatalf("summary %q", s)
	}
	if teacher.Summarize("") != "" {
		t.Fatal("empty text summarised")
	}
}

// --- judge ---

func TestJudgeParsesFormats(t *testing.T) {
	q := mkQuestion("q-j", false)
	j := NewJudge()
	cases := []struct {
		reply string
		want  int
	}{
		{"Answer: A — NHEJ is canonical in G1.", 0},
		{"answer is b", 1},
		{"C) because of sister chromatids", 2},
		{"(d)", 3},
		{"E.", 4},
		{"I believe the answer is F, given the assay.", 5},
		{"The correct choice is NHEJ.", 0}, // verbatim option text
		{"mumble mumble no idea", -1},
	}
	for _, tc := range cases {
		g := j.GradeResponse(q, tc.reply)
		if g.ParsedChoice != tc.want {
			t.Errorf("reply %q: parsed %d, want %d", tc.reply, g.ParsedChoice, tc.want)
		}
		if g.Reasoning == "" {
			t.Errorf("reply %q: no judge reasoning", tc.reply)
		}
	}
}

func TestJudgeCorrectness(t *testing.T) {
	q := mkQuestion("q-j2", false)
	j := NewJudge()
	if !j.GradeResponse(q, "Answer: A").Correct {
		t.Fatal("correct answer graded wrong")
	}
	if j.GradeResponse(q, "Answer: B").Correct {
		t.Fatal("wrong answer graded correct")
	}
	if j.GradeResponse(q, "???").Correct {
		t.Fatal("unparseable graded correct")
	}
}

func TestJudgeLongestOptionMatch(t *testing.T) {
	q := &mcq.Question{
		ID: "q-j3", Question: "pick", Answer: 1,
		Options: []string{"end joining", "non-homologous end joining", "recombination"},
	}
	g := NewJudge().GradeResponse(q, "It must be non-homologous end joining.")
	if g.ParsedChoice != 1 {
		t.Fatalf("parsed %d, want longest option 1", g.ParsedChoice)
	}
}

func TestStudentAnswerGradedByJudge(t *testing.T) {
	// End-to-end: student emits text, judge parses it back to the choice.
	p, _ := ProfileByName("Mistral-7B-Instruct-v0.3")
	s := NewStudent(p)
	j := NewJudge()
	r := rng.New(11)
	for i := 0; i < 200; i++ {
		q := mkQuestion(questionID(i), false)
		resp := s.Answer(q, BenchSynthetic, CondBaseline, 0, 0, r)
		g := j.GradeResponse(q, resp.Text)
		if g.ParsedChoice != resp.Choice {
			t.Fatalf("judge parsed %d, student chose %d (text %q)", g.ParsedChoice, resp.Choice, resp.Text)
		}
		if g.Correct != (resp.Choice == q.Answer) {
			t.Fatal("judge correctness mismatch")
		}
	}
}

func BenchmarkAnswerProb(b *testing.B) {
	p, _ := ProfileByName("SmolLM3-3B")
	s := NewStudent(p)
	q := mkQuestion("q-bench", false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.AnswerProb(q, BenchSynthetic, CondRTFocused, 0.8, 0.8)
	}
}

func BenchmarkGenerateMCQ(b *testing.B) {
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	d := g.GenerateDoc(corpus.FullPaper, 0)
	chunks := chunk.New(chunk.DefaultConfig(), nil).Split(d.ID, d.Text())
	teacher := NewTeacher(kb)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = teacher.GenerateMCQ(chunks[i%len(chunks)], d.Facts, "f", r)
	}
}
