package llmsim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mcq"
	"repro/internal/rng"
)

// The grading judge must never panic and must always emit an in-range (or
// -1) parsed choice, whatever a model replies with — including control
// characters, unicode, and adversarial strings that mention several
// options.

func TestJudgeNeverPanics(t *testing.T) {
	q := &mcq.Question{
		ID: "q-fuzz", Question: "pick one", Answer: 1,
		Options: []string{"alpha option", "beta option", "gamma option", "delta"},
	}
	j := NewJudge()
	f := func(reply string) bool {
		g := j.GradeResponse(q, reply)
		if g.ParsedChoice < -1 || g.ParsedChoice >= len(q.Options) {
			return false
		}
		if g.Correct && g.ParsedChoice != q.Answer {
			return false
		}
		return g.Reasoning != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestJudgeAdversarialReplies(t *testing.T) {
	q := &mcq.Question{
		ID: "q-adv", Question: "pick", Answer: 0,
		Options: []string{"homologous recombination", "non-homologous end joining", "mismatch repair"},
	}
	j := NewJudge()
	cases := []struct {
		reply string
		want  int
	}{
		// Mentions several options: the explicit marker wins.
		{"Both homologous recombination and mismatch repair matter, but Answer: B.", 1},
		// Only option mentions, longest must win.
		{"non-homologous end joining, not homologous recombination", 1},
		// Letter marker with trailing unicode dash.
		{"Answer: A — because of sister chromatids", 0},
		// Empty reply.
		{"", -1},
		// Letters beyond the option count are not choices.
		{"Z", -1},
		// Control characters.
		{"\x00\x01Answer: c\x02", 2},
	}
	for _, tc := range cases {
		if got := j.GradeResponse(q, tc.reply).ParsedChoice; got != tc.want {
			t.Errorf("reply %q: parsed %d, want %d", tc.reply, got, tc.want)
		}
	}
}

func TestJudgeParsesGeneratedReplies(t *testing.T) {
	// Replies produced by the student's two format paths (structured and
	// free-form drift) must always parse back to the sampled choice.
	p, err := ProfileByName("TinyLlama-1.1B-Chat") // lowest format reliability
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudent(p)
	j := NewJudge()
	r := rng.New(31)
	q := mkQuestion("q-gen", false)
	freeform := 0
	for i := 0; i < 500; i++ {
		resp := s.Answer(q, BenchSynthetic, CondBaseline, 0, 0, r)
		if !strings.HasPrefix(resp.Text, "Answer: ") {
			freeform++
		}
		g := j.GradeResponse(q, resp.Text)
		if g.ParsedChoice != resp.Choice {
			t.Fatalf("judge parsed %d for choice %d (reply %q)", g.ParsedChoice, resp.Choice, resp.Text)
		}
	}
	// TinyLlama drifts ~20% of the time; both paths must actually occur.
	if freeform < 50 || freeform > 150 {
		t.Fatalf("free-form replies %d/500, want ~100", freeform)
	}
}
