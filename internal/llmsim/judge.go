package llmsim

import (
	"fmt"
	"strings"

	"repro/internal/mcq"
)

// Grade is the output of the grading judge: the parsed choice, whether it
// matches the gold answer, and the judge's reasoning — the paper's workflow
// ends with "an arbitrary LLM judge performs the grading and provides a
// reasoning".
type Grade struct {
	ParsedChoice int    `json:"parsed_choice"` // -1 when unparseable
	Correct      bool   `json:"correct"`
	Reasoning    string `json:"reasoning"`
}

// Judge grades free-text model responses against the gold answer.
type Judge struct {
	Name string
}

// NewJudge returns the default grading judge.
func NewJudge() *Judge { return &Judge{Name: "judge-sim"} }

// GradeResponse parses the model's reply and compares it to the gold
// option. The parser is deliberately tolerant — real SLM replies range from
// a bare letter to full sentences — and mirrors LLM-judge robustness:
// it accepts "Answer: C", "C)", "(c)", "the answer is c", or a verbatim
// option string anywhere in the reply.
func (j *Judge) GradeResponse(q *mcq.Question, reply string) Grade {
	choice := parseChoice(reply, q.Options)
	g := Grade{ParsedChoice: choice}
	switch {
	case choice < 0:
		g.Reasoning = "no option letter or option text could be identified in the reply"
	case choice == q.Answer:
		g.Correct = true
		g.Reasoning = fmt.Sprintf("reply selects option %c, which matches the keyed answer %q",
			rune('A'+choice), q.AnswerText())
	default:
		g.Reasoning = fmt.Sprintf("reply selects option %c (%q) but the keyed answer is %c (%q)",
			rune('A'+choice), q.Options[choice], rune('A'+q.Answer), q.AnswerText())
	}
	return g
}

// parseChoice extracts an option index from a free-text reply, or -1.
func parseChoice(reply string, options []string) int {
	low := strings.ToLower(reply)

	// 1) Explicit markers: "answer: c", "answer is c".
	for _, marker := range []string{"answer:", "answer is"} {
		if i := strings.Index(low, marker); i >= 0 {
			if c := firstLetterChoice(low[i+len(marker):], len(options)); c >= 0 {
				return c
			}
		}
	}
	// 2) Leading letter forms: "C", "C)", "(c)", "c.", "c —".
	trimmed := strings.TrimLeft(low, " \t(")
	if c := firstLetterChoice(trimmed, len(options)); c >= 0 {
		if len(trimmed) == 1 || isDelim(trimmed[1]) {
			return c
		}
	}
	// 3) Verbatim option text (longest match wins, so a reply quoting a
	// superstring option is not misattributed to a substring option).
	best, bestLen := -1, 0
	for i, opt := range options {
		o := strings.ToLower(opt)
		if strings.Contains(low, o) && len(o) > bestLen {
			best, bestLen = i, len(o)
		}
	}
	return best
}

func firstLetterChoice(s string, n int) int {
	s = strings.TrimLeft(s, " \t(")
	if s == "" {
		return -1
	}
	c := s[0]
	if c >= 'a' && int(c-'a') < n {
		if len(s) == 1 || isDelim(s[1]) {
			return int(c - 'a')
		}
	}
	return -1
}

// isDelim reports whether b terminates a bare option letter: anything that
// cannot continue a word does (punctuation, whitespace, control bytes,
// UTF-8 lead bytes of dashes), so "c)", "c.", "c —" and "c\x02" all parse.
func isDelim(b byte) bool {
	if b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' {
		return false
	}
	return true
}
