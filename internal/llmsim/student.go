package llmsim

import (
	"fmt"
	"sync"

	"repro/internal/mcq"
	"repro/internal/rng"
)

// Benchmark identifies which published accuracy row calibrates the student.
type Benchmark string

const (
	// BenchSynthetic is the paper's 16,680-question generated benchmark.
	BenchSynthetic Benchmark = "synthetic"
	// BenchAstro is the 2023 ASTRO Radiation and Cancer Biology exam.
	BenchAstro Benchmark = "astro"
)

// Student is a simulated evaluated model. Given a question, a condition,
// and the *measured* retrieval utility for that question, it answers with a
// probability interpolated between its baseline and condition response
// curves by the utility ratio:
//
//	p_q = σ(z_base − b_q) + (σ(z_cond − b_q) − σ(z_base − b_q)) · u/ū
//
// clamped to [probFloor, probCeil], where z_base/z_cond are abilities
// inverted from the published baseline and condition accuracies, u is this
// question's retrieval utility, ū the run's mean utility (per math/no-math
// subset, supplied by the harness), and b_q the question's latent N(0,1)
// difficulty. The interpolation is linear in the ratio, so E[p] equals the
// published condition accuracy whenever E[u/ū] = 1 regardless of how
// skewed the utility distribution is — and it preserves sign for
// conditions where retrieval *hurts* (negative published deltas, e.g.
// OLMo's Astro chunk drop). With retrieval intact u≈ū and accuracy matches
// the published row; with retrieval sabotaged u→0 and the model falls back
// to baseline.
type Student struct {
	Profile *Profile

	mu        sync.Mutex
	abilities map[string]float64 // (bench|math|cond) → z
}

// probFloor/probCeil keep per-question probabilities away from the
// degenerate endpoints when an outlier utility ratio overshoots the
// interpolation (a model never answers with certainty either way).
const (
	probFloor = 0.005
	probCeil  = 0.995
)

// NewStudent wraps a profile in a responder.
func NewStudent(p *Profile) *Student {
	return &Student{Profile: p, abilities: make(map[string]float64)}
}

// targetsFor selects the published accuracy row for a benchmark/subset.
func (s *Student) targetsFor(bench Benchmark, math bool) Targets {
	switch bench {
	case BenchSynthetic:
		return s.Profile.Synthetic
	case BenchAstro:
		if math {
			return s.Profile.AstroMathTargets()
		}
		return s.Profile.AstroNoMath
	}
	panic("llmsim: unknown benchmark " + string(bench))
}

// ability returns the calibrated logit ability for a (bench, math subset,
// condition) cell, caching the bisection result.
func (s *Student) ability(bench Benchmark, math bool, cond Condition) (float64, bool) {
	key := fmt.Sprintf("%s|%t|%s", bench, math, cond)
	s.mu.Lock()
	defer s.mu.Unlock()
	if z, ok := s.abilities[key]; ok {
		return z, true
	}
	t := s.targetsFor(bench, math)
	target, ok := t[cond]
	if !ok {
		return 0, false
	}
	z := solveAbility(target)
	s.abilities[key] = z
	return z, true
}

// Supports reports whether the profile has a published row for the
// condition on this benchmark (GPT-4 is baseline-only).
func (s *Student) Supports(bench Benchmark, cond Condition) bool {
	_, ok := s.ability(bench, false, cond)
	return ok
}

// Difficulty returns the latent N(0,1) difficulty of a question, a stable
// function of its id shared by every model (as in real benchmarks, the same
// items are hard for everyone).
func Difficulty(questionID string) float64 {
	return rng.New(rng.HashString("difficulty|"+questionID)).Normal(0, 1)
}

// AnswerProb computes the probability this student answers the question
// correctly under the given condition with measured retrieval utility u and
// run-mean utility uMean.
func (s *Student) AnswerProb(q *mcq.Question, bench Benchmark, cond Condition, u, uMean float64) float64 {
	zBase, ok := s.ability(bench, q.Math, CondBaseline)
	if !ok {
		panic("llmsim: profile lacks baseline row for " + string(bench))
	}
	b := Difficulty(q.ID)
	pBase := sigmoid(zBase - b)
	if cond == CondBaseline {
		return pBase
	}
	zCond, ok := s.ability(bench, q.Math, cond)
	if !ok {
		panic(fmt.Sprintf("llmsim: %s lacks %s row for %s", s.Profile.Name, cond, bench))
	}
	ratio := 0.0
	if uMean > 0 {
		ratio = u / uMean
		if ratio < 0 {
			ratio = 0
		}
	}
	pCond := sigmoid(zCond - b)
	p := pBase + (pCond-pBase)*ratio
	if p < probFloor {
		p = probFloor
	}
	if p > probCeil {
		p = probCeil
	}
	return p
}

// Response is one simulated answer: the chosen option plus the short
// free-text reply the grading judge parses.
type Response struct {
	Choice int
	Text   string
}

// FormatReliability is the probability a model follows the requested
// "Answer: <letter>" format. Small instruction-weak models drift into
// free-form replies more often; the judge must still recover the choice
// (by quoting the option text), exactly the robustness a real LLM-judge
// grading stage provides. Correctness is unaffected — only the reply
// surface varies.
func (s *Student) FormatReliability() float64 {
	switch {
	case s.Profile.ParamsB < 2:
		return 0.80
	case s.Profile.ParamsB < 5:
		return 0.90
	default:
		return 0.97
	}
}

// Answer samples the student's response. Most replies follow the requested
// format ("Answer: <letter> — …"); a model-dependent fraction answer
// free-form, quoting the chosen option instead, which the LLM judge in
// judge.go parses by option-text matching.
func (s *Student) Answer(q *mcq.Question, bench Benchmark, cond Condition, u, uMean float64, r *rng.Source) Response {
	p := s.AnswerProb(q, bench, cond, u, uMean)
	choice := q.Answer
	if !r.Bool(p) {
		// Uniform over the wrong options.
		w := r.Intn(len(q.Options) - 1)
		if w >= q.Answer {
			w++
		}
		choice = w
	}
	var text string
	if r.Bool(s.FormatReliability()) {
		text = fmt.Sprintf("Answer: %c — %s", rune('A'+choice), shortRationale(q, choice, cond))
	} else {
		// Free-form drift: the option is quoted verbatim, no letter.
		variants := []string{
			"I believe the best choice here is %q given the mechanism involved.",
			"Considering the stem, %q fits best.",
			"The most consistent option appears to be %q.",
		}
		text = fmt.Sprintf(variants[r.Intn(len(variants))], q.Options[choice])
	}
	return Response{Choice: choice, Text: text}
}

func shortRationale(q *mcq.Question, choice int, cond Condition) string {
	opt := q.Options[choice]
	switch cond {
	case CondBaseline:
		return fmt.Sprintf("from prior knowledge, %q is the most consistent option.", opt)
	case CondChunks:
		return fmt.Sprintf("the retrieved literature excerpts support %q.", opt)
	default:
		return fmt.Sprintf("the retrieved reasoning indicates %q fits the governing principle.", opt)
	}
}
