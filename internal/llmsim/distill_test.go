package llmsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mcq"
)

func TestTraceCoverage(t *testing.T) {
	kb := corpus.Build(42, 5) // small KB
	facts := kb.AllFacts()
	qf := map[string]string{
		"q1": string(facts[0].ID),
		"q2": string(facts[1].ID),
		"q3": string(facts[0].ID), // duplicate fact
	}
	traces := []*mcq.Trace{
		{ID: "t1", QuestionID: "q1", Mode: mcq.ModeFocused},
		{ID: "t2", QuestionID: "q2", Mode: mcq.ModeFocused},
		{ID: "t3", QuestionID: "q3", Mode: mcq.ModeFocused},
		{ID: "t4", QuestionID: "q-unknown", Mode: mcq.ModeFocused},
	}
	got := TraceCoverage(kb, traces, qf)
	want := 2.0 / float64(kb.NumFacts())
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("coverage %v, want %v", got, want)
	}
	if TraceCoverage(kb, nil, nil) != 0 {
		t.Fatal("empty corpus coverage nonzero")
	}
}

func TestDistillMovesBaselineTowardRT(t *testing.T) {
	p, _ := ProfileByName("TinyLlama-1.1B-Chat")
	d := DistillOnTraces(p, 0.9)
	before := p.Synthetic[CondBaseline]
	after := d.Synthetic[CondBaseline]
	if after <= before {
		t.Fatalf("distillation did not raise baseline: %v -> %v", before, after)
	}
	// Never exceeds the best RT row.
	best := 0.0
	for cond, v := range p.Synthetic {
		if cond != CondBaseline && v > best {
			best = v
		}
	}
	if after >= best {
		t.Fatalf("distilled baseline %v exceeds RT ceiling %v", after, best)
	}
	// RAG rows unchanged.
	for _, cond := range []Condition{CondChunks, CondRTDetail, CondRTFocused, CondRTEfficient} {
		if d.Synthetic[cond] != p.Synthetic[cond] {
			t.Fatalf("%s row changed by distillation", cond)
		}
	}
	if !strings.Contains(d.Name, "trace-distilled") {
		t.Fatalf("name %q", d.Name)
	}
}

func TestDistillZeroCoverageNoChange(t *testing.T) {
	p, _ := ProfileByName("SmolLM3-3B")
	d := DistillOnTraces(p, 0)
	if d.Synthetic[CondBaseline] != p.Synthetic[CondBaseline] {
		t.Fatal("zero coverage changed the baseline")
	}
}

func TestDistillOriginalUntouched(t *testing.T) {
	p, _ := ProfileByName("SmolLM3-3B")
	before := p.Synthetic[CondBaseline]
	_ = DistillOnTraces(p, 1)
	if p.Synthetic[CondBaseline] != before {
		t.Fatal("DistillOnTraces mutated the input profile")
	}
}

func TestDistillCapacityOrdering(t *testing.T) {
	// At equal coverage, a larger model absorbs a larger share of its own
	// headroom.
	tiny, _ := ProfileByName("TinyLlama-1.1B-Chat")
	qwen, _ := ProfileByName("Qwen-1.5-14B-Chat")
	share := func(p *Profile) float64 {
		d := DistillOnTraces(p, 0.8)
		best := 0.0
		for cond, v := range p.Synthetic {
			if cond != CondBaseline && v > best {
				best = v
			}
		}
		return (d.Synthetic[CondBaseline] - p.Synthetic[CondBaseline]) /
			(best - p.Synthetic[CondBaseline])
	}
	if share(qwen) <= share(tiny) {
		t.Fatalf("capacity ordering violated: qwen %.3f vs tiny %.3f", share(qwen), share(tiny))
	}
}

func TestDistillCoverageClamped(t *testing.T) {
	p, _ := ProfileByName("SmolLM3-3B")
	over := DistillOnTraces(p, 5)
	at1 := DistillOnTraces(p, 1)
	if over.Synthetic[CondBaseline] != at1.Synthetic[CondBaseline] {
		t.Fatal("coverage not clamped to 1")
	}
	neg := DistillOnTraces(p, -3)
	if neg.Synthetic[CondBaseline] != p.Synthetic[CondBaseline] {
		t.Fatal("negative coverage not clamped to 0")
	}
}

func TestDistillAllReports(t *testing.T) {
	profiles := Profiles()
	distilled, reports := DistillAll(profiles, 0.7)
	if len(distilled) != len(profiles) || len(reports) != len(profiles) {
		t.Fatal("length mismatch")
	}
	for i, rep := range reports {
		if rep.BaselineAfter <= rep.BaselineBefore {
			t.Fatalf("%s: no gain reported", rep.Model)
		}
		if rep.BaselineAfter >= rep.BestRTReference {
			t.Fatalf("%s: gain exceeds RT ceiling", rep.Model)
		}
		if !strings.Contains(rep.String(), profiles[i].Name) {
			t.Fatalf("report string %q", rep.String())
		}
	}
}

func TestDistilledProfileStillEvaluates(t *testing.T) {
	p, _ := ProfileByName("OLMo-7B")
	d := DistillOnTraces(p, 0.8)
	s := NewStudent(d)
	q := mkQuestion("q-dist", false)
	probBefore := NewStudent(p).AnswerProb(q, BenchSynthetic, CondBaseline, 0, 0)
	probAfter := s.AnswerProb(q, BenchSynthetic, CondBaseline, 0, 0)
	if probAfter <= probBefore {
		t.Fatalf("distilled answer prob %v not above original %v", probAfter, probBefore)
	}
}

func TestGPT4ProfileDistillNoSyntheticRow(t *testing.T) {
	// GPT-4 has no synthetic targets; distillation must not panic and must
	// leave the empty row empty.
	d := DistillOnTraces(GPT4Profile(), 0.9)
	if len(d.Synthetic) != 0 {
		t.Fatal("empty row grew")
	}
	if d.AstroAll[CondBaseline] <= GPT4AstroBaseline-1e-9 {
		t.Fatal("astro baseline fell") // baseline-only row: best == base, unchanged
	}
}
