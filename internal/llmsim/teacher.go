package llmsim

import (
	"fmt"
	"strings"

	"repro/internal/chunk"
	"repro/internal/corpus"
	"repro/internal/mcq"
	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// TeacherName identifies the simulated GPT-4.1 across artifacts.
const TeacherName = "gpt-4.1-sim"

// Teacher is the simulated large model the pipeline calls for chunk
// summarisation, MCQ synthesis, quality judging, and reasoning-trace
// distillation (the GPT-4.1 role behind the Argo gateway in the paper).
type Teacher struct {
	KB *corpus.KB
	// NumOptions is the option count of generated questions (the paper
	// generates seven options per question).
	NumOptions int
}

// NewTeacher returns a teacher over the knowledge base with the paper's
// seven-option format.
func NewTeacher(kb *corpus.KB) *Teacher {
	return &Teacher{KB: kb, NumOptions: 7}
}

// Summarize produces the teacher's summary-and-expansion of a chunk, the
// first step of the paper's structured generation prompt.
func (t *Teacher) Summarize(text string) string {
	sentences := tokenizer.SplitSentences(text)
	if len(sentences) == 0 {
		return ""
	}
	head := sentences[0]
	return fmt.Sprintf("%s In summary, the passage develops this observation and its experimental support across %d statements.", head, len(sentences))
}

// FactsInChunk returns the subset of candidate facts whose canonical
// sentence appears verbatim in the chunk text, in candidate order.
func (t *Teacher) FactsInChunk(ch chunk.Chunk, candidates []corpus.FactID) []*corpus.Fact {
	var out []*corpus.Fact
	for _, id := range candidates {
		f := t.KB.Fact(id)
		if f != nil && strings.Contains(ch.Text, f.Sentence()) {
			out = append(out, f)
		}
	}
	return out
}

// questionType maps a relation to the question taxonomy stored in the
// schema's type field.
func questionType(rel corpus.Relation) string {
	switch rel {
	case corpus.RelDoseOf:
		return "dose"
	case corpus.RelMechanismOf, corpus.RelCauses:
		return "mechanism"
	case corpus.RelMeasuredBy:
		return "methods"
	case corpus.RelTreats, corpus.RelSensitizes, corpus.RelProtects:
		return "clinical"
	default:
		return "factual"
	}
}

// GenerateMCQ synthesises one candidate question from a chunk. candidates
// lists the facts of the source document; the teacher grounds the question
// in a fact whose sentence the chunk actually contains. Chunks with no
// grounded fact still yield a candidate (as the paper generates one per
// chunk) but of generic type that the quality judge scores low. filePath is
// the source container path recorded in provenance.
func (t *Teacher) GenerateMCQ(ch chunk.Chunk, candidates []corpus.FactID, filePath string, r *rng.Source) *mcq.Question {
	facts := t.FactsInChunk(ch, candidates)
	q := &mcq.Question{
		ID:    fmt.Sprintf("q-%016x", rng.HashStrings("question", ch.ID)),
		Chunk: ch.Text,
		Prov: mcq.Provenance{
			ChunkID:  ch.ID,
			DocID:    ch.DocID,
			FilePath: filePath,
		},
	}
	if len(facts) == 0 {
		// Ungrounded candidate: a vague comprehension stem with generic
		// options. Kept so the quality filter has realistic rejects.
		words := tokenizer.Words(ch.Text)
		topic := "the reported findings"
		if len(words) > 3 {
			topic = strings.Join(words[2:min(6, len(words))], " ")
		}
		q.Question = fmt.Sprintf("Which statement best characterizes %s?", topic)
		q.Type = "comprehension"
		q.Options = genericOptions(t.NumOptions, r)
		q.Answer = r.Intn(len(q.Options))
		return q
	}
	f := facts[r.Intn(len(facts))]
	q.Prov.FactID = string(f.ID)
	q.Question = f.QuestionStem()
	q.Type = questionType(f.Relation)
	q.Topic = t.KB.Topics[f.Topic].Name
	q.Math = f.Math

	distractors := t.KB.Distractors(f, t.NumOptions-1, r)
	options := append([]string{f.Object}, distractors...)
	// Shuffle options, tracking the correct index.
	correct := 0
	r.Shuffle(len(options), func(i, j int) {
		options[i], options[j] = options[j], options[i]
		switch correct {
		case i:
			correct = j
		case j:
			correct = i
		}
	})
	q.Options = options
	q.Answer = correct
	return q
}

func genericOptions(n int, r *rng.Source) []string {
	pool := []string{
		"The effect was uniformly absent across conditions",
		"The observation replicates prior null results",
		"A dose-independent plateau was recorded",
		"The finding applies only to in vitro systems",
		"No mechanistic interpretation was offered",
		"The result contradicts the prevailing model",
		"An artifact of the assay cannot be excluded",
		"The measurement lacked statistical power",
		"The outcome reflects selection bias alone",
	}
	idx := r.SampleK(len(pool), n)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// JudgeQuality scores a candidate question on the paper's 1-10 rubric —
// clarity, accuracy, distractor plausibility, educational value, each
// scored separately and averaged — and sets the relevance flag. Grounded
// questions with a full distractor slate score high; ungrounded or thin
// candidates score low, so the 7/10 threshold reproduces the paper's
// ~10:1 candidate-to-benchmark filtering.
func (t *Teacher) JudgeQuality(q *mcq.Question, r *rng.Source) mcq.Checks {
	grounded := q.Prov.FactID != ""
	// Per-dimension means chosen so the equal-weight overall keeps the
	// calibrated acceptance regime; dimensions get correlated noise (one
	// shared judge-disposition draw plus per-dimension jitter).
	var mu mcq.Rubric
	switch {
	case !grounded:
		mu = mcq.Rubric{Clarity: 4.4, Accuracy: 2.4, Distractors: 2.8, Educational: 3.2}
	case len(q.Options) < t.NumOptions:
		// Thin distractor slate: penalised but sometimes acceptable.
		mu = mcq.Rubric{Clarity: 6.6, Accuracy: 6.8, Distractors: 4.0, Educational: 5.8}
	default:
		mu = mcq.Rubric{Clarity: 6.7, Accuracy: 6.5, Distractors: 5.7, Educational: 5.9}
	}
	disposition := r.Normal(0, 1.05)
	dim := func(mean float64) float64 {
		s := mean + disposition + r.Normal(0, 0.85)
		if s < 1 {
			s = 1
		}
		if s > 10 {
			s = 10
		}
		return round1(s)
	}
	rubric := mcq.Rubric{
		Clarity:     dim(mu.Clarity),
		Accuracy:    dim(mu.Accuracy),
		Distractors: dim(mu.Distractors),
		Educational: dim(mu.Educational),
	}
	score := round1(rubric.Overall())
	rationale := "distractors share the answer category; stem is self-contained"
	if !grounded {
		rationale = "stem is not anchored to a verifiable statement in the chunk"
	}
	return mcq.Checks{
		Relevant:     grounded && score >= 4,
		QualityScore: score,
		Rubric:       rubric,
		JudgeModel:   TeacherName,
		Rationale:    rationale,
	}
}

func round1(x float64) float64 {
	return float64(int(x*10+0.5)) / 10
}

// GenerateTrace distils the teacher's reasoning for a question in one of
// the paper's three modes (Figure 3): detailed option-level analysis,
// focused principle-plus-elimination, or an efficient compact rationale.
// The final answer is excluded, per the paper's leakage guard; the trace
// discusses the governing relationship and eliminates option categories
// without asserting the correct choice.
func (t *Teacher) GenerateTrace(q *mcq.Question, mode mcq.ReasoningMode) *mcq.Trace {
	f := (*corpus.Fact)(nil)
	if q.Prov.FactID != "" {
		f = t.KB.Fact(corpus.FactID(q.Prov.FactID))
	}
	var b strings.Builder
	// Restate the question so trace embeddings sit near question
	// embeddings — that proximity is what makes trace retrieval work.
	fmt.Fprintf(&b, "Question under analysis: %s ", q.Question)
	switch mode {
	case mcq.ModeDetailed:
		b.WriteString("Consider each option in turn. ")
		for i, opt := range q.Options {
			fmt.Fprintf(&b, "Option %c, %q: ", rune('A'+i), opt)
			if f != nil {
				fmt.Fprintf(&b, "weigh this against the established behaviour of %s in %s. ",
					f.Subject, relationDomain(f.Relation))
			} else {
				b.WriteString("assess internal consistency with the stem. ")
			}
		}
		if f != nil {
			fmt.Fprintf(&b, "The decisive consideration is the documented relationship of %s via %s; options inconsistent with that relationship can be excluded.",
				f.Subject, relationPhrase(f.Relation))
		} else {
			b.WriteString("Prefer the option that makes a specific, verifiable claim.")
		}
	case mcq.ModeFocused:
		if f != nil {
			fmt.Fprintf(&b, "The governing principle: %s %s exactly one of the listed candidates, a relationship documented in the %s literature. ",
				f.Subject, relationVerb(f.Relation), t.KB.Topics[f.Topic].Name)
			b.WriteString("Eliminate options belonging to unrelated pathways or modalities; one candidate uniquely satisfies the principle.")
		} else {
			b.WriteString("The governing principle is specificity: eliminate options that hedge or generalise beyond the stem.")
		}
	case mcq.ModeEfficient:
		if f != nil {
			fmt.Fprintf(&b, "Recall the canonical pairing for %s under %s and eliminate the rest.",
				f.Subject, relationPhrase(f.Relation))
		} else {
			b.WriteString("Pick the most specific, mechanistically grounded option.")
		}
	default:
		panic("llmsim: unknown trace mode " + string(mode))
	}
	return &mcq.Trace{
		ID:             fmt.Sprintf("tr-%s-%s", q.ID, mode),
		QuestionID:     q.ID,
		Mode:           mode,
		Model:          TeacherName,
		Reasoning:      b.String(),
		AnswerExcluded: true,
	}
}

// GenerateTraces produces all three modes for a question, as the paper
// generates the modes simultaneously in one teacher call.
func (t *Teacher) GenerateTraces(q *mcq.Question) []*mcq.Trace {
	out := make([]*mcq.Trace, 0, len(mcq.AllModes))
	for _, m := range mcq.AllModes {
		out = append(out, t.GenerateTrace(q, m))
	}
	return out
}

func relationDomain(rel corpus.Relation) string {
	switch rel {
	case corpus.RelActivates, corpus.RelInhibits, corpus.RelRegulates:
		return "signaling"
	case corpus.RelRepairedBy, corpus.RelCauses, corpus.RelMechanismOf:
		return "DNA damage and repair"
	case corpus.RelTreats, corpus.RelSensitizes, corpus.RelProtects, corpus.RelDoseOf:
		return "clinical radiotherapy"
	case corpus.RelMeasuredBy, corpus.RelMarkerOf:
		return "assay methodology"
	default:
		return "radiation biology"
	}
}

func relationPhrase(rel corpus.Relation) string {
	return strings.ReplaceAll(string(rel), "_", " ")
}

func relationVerb(rel corpus.Relation) string {
	switch rel {
	case corpus.RelActivates:
		return "activates"
	case corpus.RelInhibits:
		return "inhibits"
	case corpus.RelCauses:
		return "causes"
	case corpus.RelRepairedBy:
		return "is repaired by"
	case corpus.RelMarkerOf:
		return "marks"
	case corpus.RelTreats:
		return "treats"
	case corpus.RelSensitizes:
		return "sensitizes cells to"
	case corpus.RelProtects:
		return "protects against"
	case corpus.RelMeasuredBy:
		return "is measured by"
	case corpus.RelRegulates:
		return "regulates"
	case corpus.RelDoseOf:
		return "is dosed at"
	case corpus.RelMechanismOf:
		return "operates through"
	default:
		return "relates to"
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
