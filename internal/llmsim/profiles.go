package llmsim

import (
	"fmt"

	"repro/internal/mcq"
)

// Condition names the five evaluation settings of the paper's Table 2 (the
// Astro tables use the first two plus the best reasoning-trace mode).
type Condition string

const (
	CondBaseline    Condition = "baseline"
	CondChunks      Condition = "rag-chunks"
	CondRTDetail    Condition = "rag-rt-detailed"
	CondRTFocused   Condition = "rag-rt-focused"
	CondRTEfficient Condition = "rag-rt-efficient"
)

// AllConditions lists the synthetic-benchmark conditions in table order.
var AllConditions = []Condition{CondBaseline, CondChunks, CondRTDetail, CondRTFocused, CondRTEfficient}

// TraceCondition maps a reasoning mode to its evaluation condition.
func TraceCondition(m mcq.ReasoningMode) Condition {
	switch m {
	case mcq.ModeDetailed:
		return CondRTDetail
	case mcq.ModeFocused:
		return CondRTFocused
	case mcq.ModeEfficient:
		return CondRTEfficient
	}
	panic("llmsim: unknown reasoning mode " + string(m))
}

// Targets is a per-condition published-accuracy row for one benchmark.
type Targets map[Condition]float64

// Profile is the behavioural spec of one evaluated model: the roster
// metadata of the paper's Table 1 plus the accuracy rows of Tables 2-4 that
// the IRT calibration inverts (see DESIGN.md §4 for why published numbers
// are the legitimate parameterisation of a simulated model).
type Profile struct {
	Name          string
	Params        string // human-readable parameter count, e.g. "7 B"
	ParamsB       float64
	ReleaseYear   int
	ContextWindow int

	// Synthetic holds the model's Table 2 row.
	Synthetic Targets
	// AstroAll and AstroNoMath hold the Table 3 and Table 4 rows; the three
	// RT modes are spread around the published RT-best with BestMode on top.
	AstroAll    Targets
	AstroNoMath Targets
	// BestMode is the reasoning mode this model peaks on (from Table 2).
	BestMode mcq.ReasoningMode
}

// astroRow expands a published (baseline, chunks, rtBest) triple into the
// five-condition Targets map, ranking the model's BestMode at the published
// best value and the other two modes slightly below it — the paper reports
// only the best RT mode for Astro, and §3.1.3 finds inter-mode spread
// "modest".
func astroRow(baseline, chunks, rtBest float64, best mcq.ReasoningMode) Targets {
	t := Targets{
		CondBaseline: baseline,
		CondChunks:   chunks,
	}
	for _, m := range mcq.AllModes {
		c := TraceCondition(m)
		switch {
		case m == best:
			t[c] = rtBest
		case (m == mcq.ModeDetailed) != (best == mcq.ModeDetailed):
			t[c] = rtBest - 0.020
		default:
			t[c] = rtBest - 0.035
		}
	}
	return t
}

// Profiles returns the paper's eight evaluated SLMs in Table 1/2 order.
// All numbers are transcribed from the paper (Tables 1-4).
func Profiles() []*Profile {
	return []*Profile{
		{
			Name: "OLMo-7B", Params: "7 B", ParamsB: 7, ReleaseYear: 2024, ContextWindow: 2048,
			Synthetic: Targets{
				CondBaseline: 0.380, CondChunks: 0.443,
				CondRTDetail: 0.709, CondRTFocused: 0.736, CondRTEfficient: 0.720,
			},
			BestMode:    mcq.ModeFocused,
			AstroAll:    astroRow(0.446, 0.269, 0.563, mcq.ModeFocused),
			AstroNoMath: astroRow(0.471, 0.238, 0.587, mcq.ModeFocused),
		},
		{
			Name: "TinyLlama-1.1B-Chat", Params: "1.1 B", ParamsB: 1.1, ReleaseYear: 2024, ContextWindow: 2048,
			Synthetic: Targets{
				CondBaseline: 0.176, CondChunks: 0.434,
				CondRTDetail: 0.710, CondRTFocused: 0.699, CondRTEfficient: 0.581,
			},
			BestMode:    mcq.ModeDetailed,
			AstroAll:    astroRow(0.089, 0.263, 0.319, mcq.ModeDetailed),
			AstroNoMath: astroRow(0.138, 0.259, 0.312, mcq.ModeDetailed),
		},
		{
			Name: "Gemma 3 4B-IT", Params: "4 B", ParamsB: 4, ReleaseYear: 2025, ContextWindow: 128000,
			Synthetic: Targets{
				CondBaseline: 0.745, CondChunks: 0.837,
				CondRTDetail: 0.860, CondRTFocused: 0.878, CondRTEfficient: 0.873,
			},
			BestMode:    mcq.ModeFocused,
			AstroAll:    astroRow(0.484, 0.551, 0.605, mcq.ModeFocused),
			AstroNoMath: astroRow(0.540, 0.640, 0.804, mcq.ModeFocused),
		},
		{
			Name: "SmolLM3-3B", Params: "3 B", ParamsB: 3, ReleaseYear: 2025, ContextWindow: 32768,
			Synthetic: Targets{
				CondBaseline: 0.471, CondChunks: 0.803,
				CondRTDetail: 0.826, CondRTFocused: 0.854, CondRTEfficient: 0.856,
			},
			BestMode:    mcq.ModeEfficient,
			AstroAll:    astroRow(0.377, 0.706, 0.772, mcq.ModeEfficient),
			AstroNoMath: astroRow(0.466, 0.751, 0.894, mcq.ModeEfficient),
		},
		{
			Name: "Mistral-7B-Instruct-v0.3", Params: "7 B", ParamsB: 7, ReleaseYear: 2024, ContextWindow: 4096,
			Synthetic: Targets{
				CondBaseline: 0.737, CondChunks: 0.839,
				CondRTDetail: 0.886, CondRTFocused: 0.889, CondRTEfficient: 0.882,
			},
			BestMode:    mcq.ModeFocused,
			AstroAll:    astroRow(0.494, 0.542, 0.575, mcq.ModeFocused),
			AstroNoMath: astroRow(0.598, 0.614, 0.757, mcq.ModeFocused),
		},
		{
			Name: "Llama-3-8B-Instruct", Params: "8 B", ParamsB: 8, ReleaseYear: 2024, ContextWindow: 8192,
			Synthetic: Targets{
				CondBaseline: 0.830, CondChunks: 0.864,
				CondRTDetail: 0.875, CondRTFocused: 0.892, CondRTEfficient: 0.897,
			},
			BestMode:    mcq.ModeEfficient,
			AstroAll:    astroRow(0.665, 0.674, 0.542, mcq.ModeEfficient),
			AstroNoMath: astroRow(0.757, 0.730, 0.804, mcq.ModeEfficient),
		},
		{
			Name: "Llama-3.1-8B-Instruct", Params: "8 B", ParamsB: 8, ReleaseYear: 2024, ContextWindow: 32768,
			Synthetic: Targets{
				CondBaseline: 0.819, CondChunks: 0.900,
				CondRTDetail: 0.915, CondRTFocused: 0.902, CondRTEfficient: 0.916,
			},
			BestMode:    mcq.ModeEfficient,
			AstroAll:    astroRow(0.644, 0.704, 0.686, mcq.ModeEfficient),
			AstroNoMath: astroRow(0.762, 0.783, 0.857, mcq.ModeEfficient),
		},
		{
			Name: "Qwen-1.5-14B-Chat", Params: "14 B", ParamsB: 14, ReleaseYear: 2024, ContextWindow: 32768,
			Synthetic: Targets{
				CondBaseline: 0.776, CondChunks: 0.853,
				CondRTDetail: 0.913, CondRTFocused: 0.908, CondRTEfficient: 0.914,
			},
			BestMode:    mcq.ModeEfficient,
			AstroAll:    astroRow(0.560, 0.587, 0.602, mcq.ModeEfficient),
			AstroNoMath: astroRow(0.667, 0.667, 0.825, mcq.ModeEfficient),
		},
	}
}

// GPT4AstroBaseline is the GPT-4 comparator's Astro accuracy. The paper
// states several SLMs with trace retrieval surpass a GPT-4 baseline [its
// ref. 5] but does not tabulate the number; we fix it between the strongest
// SLM baselines (see DESIGN.md §5) so the crossover claim is testable.
const GPT4AstroBaseline = 0.672

// GPT4Profile returns the GPT-4 comparator evaluated baseline-only on the
// Astro exam.
func GPT4Profile() *Profile {
	return &Profile{
		Name: "GPT-4", Params: "~1.8 T (reported)", ParamsB: 1800, ReleaseYear: 2023,
		ContextWindow: 8192,
		AstroAll:      Targets{CondBaseline: GPT4AstroBaseline},
		AstroNoMath:   Targets{CondBaseline: GPT4AstroBaseline + 0.04},
		BestMode:      mcq.ModeFocused,
	}
}

// ProfileByName returns the evaluated profile with the given name.
func ProfileByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("llmsim: unknown model %q", name)
}

// AstroMathTargets derives the math-subset accuracy row implied by the
// published all-questions (Table 3) and no-math (Table 4) rows:
// all = (189·noMath + 146·math)/335, so math = (335·all − 189·noMath)/146.
// Values are clamped to [0.01, 0.99]; TinyLlama's implied math accuracy is
// near zero, consistent with the paper's remark that these SLMs lack
// arithmetic tool use.
func (p *Profile) AstroMathTargets() Targets {
	const nAll, nNoMath, nMath = 335.0, 189.0, 146.0
	out := Targets{}
	for cond, all := range p.AstroAll {
		noMath, ok := p.AstroNoMath[cond]
		if !ok {
			continue
		}
		m := (nAll*all - nNoMath*noMath) / nMath
		if m < 0.01 {
			m = 0.01
		}
		if m > 0.99 {
			m = 0.99
		}
		out[cond] = m
	}
	return out
}
