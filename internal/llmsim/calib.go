// Package llmsim is the language-model substrate of the reproduction. It
// provides (i) a simulated teacher standing in for GPT-4.1 — chunk
// summarisation, MCQ synthesis with distractors, rubric quality judging,
// and three-mode reasoning-trace generation — and (ii) behavioural profiles
// of the paper's eight evaluated SLMs plus a GPT-4 comparator.
//
// Student models follow a logistic item-response model whose per-condition
// ability offsets are calibrated against the paper's published accuracy
// tables (the behavioural spec of each model; see DESIGN.md §4). Retrieval
// quality enters mechanistically: the evaluation harness measures, per
// question, how much answer-relevant signal retrieval actually returned,
// and the model's logit interpolates between its baseline and its
// calibrated RAG ability by that measured utility. Sabotaging the retrieval
// stack therefore collapses every RAG condition to baseline — an invariant
// the tests assert.
package llmsim

import "math"

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// quadrature nodes for E_{b~N(0,1)}[f(b)]: midpoint rule over [-8, 8],
// precomputed once. 4096 nodes give ~1e-9 accuracy for the smooth logistic
// integrand, ample for three-decimal accuracy targets.
var (
	quadB []float64
	quadW []float64
)

func init() {
	const n = 4096
	const lo, hi = -8.0, 8.0
	h := (hi - lo) / n
	quadB = make([]float64, n)
	quadW = make([]float64, n)
	norm := 1 / math.Sqrt(2*math.Pi)
	var total float64
	for i := 0; i < n; i++ {
		b := lo + (float64(i)+0.5)*h
		w := norm * math.Exp(-b*b/2) * h
		quadB[i] = b
		quadW[i] = w
		total += w
	}
	// Renormalise the truncated-tail mass so weights integrate to 1.
	for i := range quadW {
		quadW[i] /= total
	}
}

// expectedAccuracy evaluates E_{b~N(0,1)}[σ(z − b)]: the population
// accuracy of a responder with ability z over a standard-normal difficulty
// distribution.
func expectedAccuracy(z float64) float64 {
	var acc float64
	for i, b := range quadB {
		acc += quadW[i] * sigmoid(z-b)
	}
	return acc
}

// solveAbility inverts expectedAccuracy by bisection: it returns z such
// that a responder with ability z scores the target accuracy on
// N(0,1)-difficulty items. Targets are clamped to (0.005, 0.995), wide
// enough for every published table value (TinyLlama's 0.089 Astro baseline
// included).
func solveAbility(target float64) float64 {
	if target < 0.005 {
		target = 0.005
	}
	if target > 0.995 {
		target = 0.995
	}
	lo, hi := -12.0, 12.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if expectedAccuracy(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
