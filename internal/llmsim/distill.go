package llmsim

import (
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/mcq"
)

// Reasoning-trace distillation by weight update — the paper's §5 future
// work ("we will explore pretraining LLMs on reasoning traces to
// systematically compare their performance"). We simulate the hypothesis
// the paper sets up: continual pretraining on the distilled trace corpus
// internalises part of the knowledge a model would otherwise need to
// retrieve, moving its *retrieval-free* accuracy toward its
// retrieval-augmented accuracy.
//
// The simulation is deliberately conservative and mechanistic:
//
//   - Coverage is measured, not assumed: the fraction of knowledge-base
//     facts that appear in the trace corpus (via each trace's source
//     question). Facts never distilled cannot be learned.
//   - Transfer efficiency grows with model capacity (log-parameters,
//     normalised to the roster), reflecting that larger students absorb
//     more from the same distillation corpus.
//   - The distilled baseline can approach but never exceed the model's
//     best retrieval-augmented accuracy — training on traces cannot beat
//     having the right trace in context.
//
// DistillOnTraces returns a new Profile; the original is unmodified.

// TransferEfficiency is the fraction of the retrieval-augmented headroom a
// maximally-covered, maximum-capacity student internalises. The value is a
// modelling assumption (no published number exists; the paper leaves this
// as future work) and is surfaced as a parameter so ablations can sweep it.
const TransferEfficiency = 0.55

// TraceCoverage measures the fraction of knowledge-base facts represented
// in the trace corpus, given the question→fact map of the benchmark the
// traces were distilled from.
func TraceCoverage(kb *corpus.KB, traces []*mcq.Trace, questionFact map[string]string) float64 {
	if kb.NumFacts() == 0 {
		return 0
	}
	covered := make(map[string]bool)
	for _, tr := range traces {
		if f := questionFact[tr.QuestionID]; f != "" {
			covered[f] = true
		}
	}
	return float64(len(covered)) / float64(kb.NumFacts())
}

// capacityFactor maps parameter count to a [0.5, 1] absorption multiplier
// across the roster's 1.1B–14B range.
func capacityFactor(paramsB float64) float64 {
	if paramsB <= 0 {
		return 0.5
	}
	lo, hi := math.Log(1.1), math.Log(14)
	x := (math.Log(paramsB) - lo) / (hi - lo)
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return 0.5 + 0.5*x
}

// DistillOnTraces returns the profile of the student after simulated
// continual pretraining on a trace corpus with the given measured fact
// coverage ∈ [0, 1]. Each benchmark row's baseline moves toward the row's
// best retrieval-augmented value by coverage × capacity × efficiency; RAG
// rows are left unchanged (retrieval on top of a distilled model is the
// paper's follow-up question, not answered here).
func DistillOnTraces(p *Profile, coverage float64) *Profile {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	gain := coverage * capacityFactor(p.ParamsB) * TransferEfficiency
	out := *p
	out.Name = p.Name + " (trace-distilled)"
	out.Synthetic = distillRow(p.Synthetic, gain)
	out.AstroAll = distillRow(p.AstroAll, gain)
	out.AstroNoMath = distillRow(p.AstroNoMath, gain)
	return &out
}

func distillRow(t Targets, gain float64) Targets {
	if len(t) == 0 {
		return t
	}
	base, ok := t[CondBaseline]
	if !ok {
		return t
	}
	best := base
	for cond, v := range t {
		if cond != CondBaseline && v > best {
			best = v
		}
	}
	out := make(Targets, len(t))
	for cond, v := range t {
		out[cond] = v
	}
	out[CondBaseline] = base + (best-base)*gain
	return out
}

// DistillReport summarises a distillation experiment row for reporting.
type DistillReport struct {
	Model           string
	Coverage        float64
	BaselineBefore  float64
	BaselineAfter   float64
	BestRTReference float64
}

// String renders one report line.
func (d DistillReport) String() string {
	return fmt.Sprintf("%-28s coverage %.2f: baseline %.3f → %.3f (RT ceiling %.3f)",
		d.Model, d.Coverage, d.BaselineBefore, d.BaselineAfter, d.BestRTReference)
}

// DistillAll applies DistillOnTraces to every profile and reports the
// synthetic-benchmark movement.
func DistillAll(profiles []*Profile, coverage float64) ([]*Profile, []DistillReport) {
	out := make([]*Profile, len(profiles))
	reports := make([]DistillReport, len(profiles))
	for i, p := range profiles {
		d := DistillOnTraces(p, coverage)
		out[i] = d
		best := p.Synthetic[CondBaseline]
		for cond, v := range p.Synthetic {
			if cond != CondBaseline && v > best {
				best = v
			}
		}
		reports[i] = DistillReport{
			Model:           p.Name,
			Coverage:        coverage,
			BaselineBefore:  p.Synthetic[CondBaseline],
			BaselineAfter:   d.Synthetic[CondBaseline],
			BestRTReference: best,
		}
	}
	return out, reports
}
