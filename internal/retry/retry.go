// Package retry is the shared bounded-retry policy of the repo's two
// network tiers: the argo model-API gateway and the router shard fan-out.
// Both need the same semantics — exponential backoff with deterministic
// jitter (no wall-clock randomness, so runs stay reproducible) and sleeps
// that abort the moment the caller's context is cancelled, so a closing
// gateway or a departed client never waits out a full backoff schedule.
package retry

import (
	"context"
	"time"
)

// Policy bounds a retry loop: how many re-attempts after the first try,
// and how the delay between them grows.
type Policy struct {
	// MaxRetries is the number of re-attempts after the initial one
	// (default 3). 0 after Fill means "use the default"; use a negative
	// value for "never retry".
	MaxRetries int
	// BaseBackoff is the delay before the first retry (default 1ms); it
	// doubles per attempt, plus deterministic jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps a single delay; 0 leaves it uncapped.
	MaxBackoff time.Duration
}

// Fill applies the defaults, returning the effective policy. A negative
// MaxRetries normalises to 0 (no retries).
func (p Policy) Fill() Policy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	} else if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	return p
}

// Backoff returns the delay before retry number attempt+1 (attempt counts
// from 0): BaseBackoff << attempt plus a deterministic jitter derived from
// the attempt number — the exact schedule the argo gateway has always used,
// now shared with the router.
func (p Policy) Backoff(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	// Clamp the shift so a pathological attempt count cannot overflow.
	shift := uint(attempt)
	if shift > 30 {
		shift = 30
	}
	delay := p.BaseBackoff << shift
	delay += time.Duration(attempt*7%5) * p.BaseBackoff / 4
	if p.MaxBackoff > 0 && delay > p.MaxBackoff {
		delay = p.MaxBackoff
	}
	return delay
}

// Sleep blocks for d or until ctx is done, whichever comes first, and
// reports why it woke: nil after a full sleep, ctx.Err() on cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn up to 1+MaxRetries times, sleeping the backoff schedule
// between attempts. retryable decides whether an error is worth another
// attempt (nil means every error is); terminal errors and exhaustion both
// surface the last error. A cancelled ctx aborts the backoff sleep
// immediately and returns the attempt's error (which usually already
// carries the cancellation).
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error, retryable func(error) bool) error {
	p = p.Fill()
	var err error
	for attempt := 0; ; attempt++ {
		err = fn(ctx)
		if err == nil {
			return nil
		}
		if attempt >= p.MaxRetries || (retryable != nil && !retryable(err)) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if serr := Sleep(ctx, p.Backoff(attempt)); serr != nil {
			return err
		}
	}
}
