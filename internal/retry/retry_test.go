package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicAndMonotoneBase(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond}.Fill()
	// The schedule is a pure function of the attempt number: same inputs,
	// same delays, run after run.
	for attempt := 0; attempt < 8; attempt++ {
		a, b := p.Backoff(attempt), p.Backoff(attempt)
		if a != b {
			t.Fatalf("attempt %d: non-deterministic backoff %v vs %v", attempt, a, b)
		}
		if a < time.Millisecond<<uint(attempt) {
			t.Fatalf("attempt %d: delay %v below exponential base", attempt, a)
		}
	}
	if p.Backoff(-1) != p.Backoff(0) {
		t.Fatal("negative attempt not clamped")
	}
}

func TestBackoffCapAndOverflowClamp(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}.Fill()
	if d := p.Backoff(20); d != 10*time.Millisecond {
		t.Fatalf("capped delay %v, want 10ms", d)
	}
	uncapped := Policy{BaseBackoff: time.Millisecond}.Fill()
	if d := uncapped.Backoff(1 << 20); d <= 0 {
		t.Fatalf("overflowed delay %v", d)
	}
}

func TestFillDefaultsAndNegativeRetries(t *testing.T) {
	p := Policy{}.Fill()
	if p.MaxRetries != 3 || p.BaseBackoff != time.Millisecond {
		t.Fatalf("defaults %+v", p)
	}
	if p := (Policy{MaxRetries: -1}).Fill(); p.MaxRetries != 0 {
		t.Fatalf("negative MaxRetries → %d, want 0", p.MaxRetries)
	}
}

func TestSleepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled sleep took %v", elapsed)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := Policy{MaxRetries: 3, BaseBackoff: time.Microsecond}.Do(context.Background(),
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		}, nil)
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoTerminalErrorSkipsRetry(t *testing.T) {
	terminal := errors.New("terminal")
	calls := 0
	err := Policy{MaxRetries: 5, BaseBackoff: time.Microsecond}.Do(context.Background(),
		func(context.Context) error { calls++; return terminal },
		func(err error) bool { return !errors.Is(err, terminal) })
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want terminal after 1 call", err, calls)
	}
}

func TestDoExhaustionReturnsLastError(t *testing.T) {
	last := errors.New("still failing")
	calls := 0
	err := Policy{MaxRetries: 2, BaseBackoff: time.Microsecond}.Do(context.Background(),
		func(context.Context) error { calls++; return last }, nil)
	if !errors.Is(err, last) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want last error after 3 calls", err, calls)
	}
}

func TestDoCancelledContextStopsWithinOneTick(t *testing.T) {
	// A cancelled caller must not wait out the remaining backoff schedule:
	// with a 10s base delay, Do has to return as soon as the context dies.
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Policy{MaxRetries: 4, BaseBackoff: 10 * time.Second}.Do(ctx,
			func(context.Context) error {
				select {
				case <-started:
				default:
					close(started)
				}
				return boom
			}, nil)
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err=%v, want the attempt error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do still sleeping after cancellation")
	}
}
