package vecstore

import (
	"os"
	"testing"

	"repro/internal/rng"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func readFile(path string) ([]byte, error)     { return os.ReadFile(path) }

func buildIVF(t testing.TB, n, dim, nlist, nprobe int) (*IVF, [][]float32) {
	t.Helper()
	r := rng.New(11)
	vecs := randomUnit(r, n, dim)
	ix := NewIVF(IVFConfig{Dim: dim, NList: nlist, NProbe: nprobe, Seed: 1})
	for _, v := range vecs {
		ix.Add(v, "")
	}
	ix.Train()
	return ix, vecs
}

func TestIVFSelfRetrievalHighRecall(t *testing.T) {
	ix, vecs := buildIVF(t, 500, 32, 16, 4)
	hits := 0
	for i := 0; i < len(vecs); i += 7 {
		res := ix.Search(vecs[i], 1)
		if len(res) == 1 && res[0].ID == i {
			hits++
		}
	}
	total := (len(vecs) + 6) / 7
	if float64(hits)/float64(total) < 0.9 {
		t.Fatalf("self-retrieval recall %d/%d too low", hits, total)
	}
}

func TestIVFRecallIncreasesWithNProbe(t *testing.T) {
	ix, _ := buildIVF(t, 800, 32, 20, 1)
	r := rng.New(13)
	queries := randomUnit(r, 30, 32)
	ix.SetNProbe(1)
	r1 := ix.Recall(queries, 5)
	ix.SetNProbe(20)
	rAll := ix.Recall(queries, 5)
	if rAll < 0.999 {
		t.Fatalf("nprobe=nlist recall %v, want ~1", rAll)
	}
	if r1 > rAll {
		t.Fatalf("recall decreased with more probes: %v > %v", r1, rAll)
	}
}

func TestIVFFullProbeMatchesFlat(t *testing.T) {
	ix, vecs := buildIVF(t, 300, 24, 10, 10)
	flat := NewFlat(24)
	for _, v := range vecs {
		flat.Add(v, "")
	}
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		q := randomUnit(r, 1, 24)[0]
		a := ix.Search(q, 5)
		b := flat.Search(q, 5)
		for i := range b {
			if a[i].ID != b[i].ID {
				t.Fatalf("trial %d rank %d: IVF %d vs Flat %d", trial, i, a[i].ID, b[i].ID)
			}
		}
	}
}

func TestIVFAutoNListAndNProbe(t *testing.T) {
	r := rng.New(19)
	ix := NewIVF(IVFConfig{Dim: 16, Seed: 2})
	for _, v := range randomUnit(r, 400, 16) {
		ix.Add(v, "")
	}
	ix.Train()
	if ix.NList() != 20 { // sqrt(400)
		t.Fatalf("auto NList = %d, want 20", ix.NList())
	}
	if ix.NProbe() < 1 {
		t.Fatalf("auto NProbe = %d", ix.NProbe())
	}
}

func TestIVFAddAfterTrain(t *testing.T) {
	ix, _ := buildIVF(t, 200, 16, 8, 8)
	r := rng.New(23)
	v := randomUnit(r, 1, 16)[0]
	id := ix.Add(v, "late")
	res := ix.Search(v, 1)
	if res[0].ID != id || res[0].Key != "late" {
		t.Fatalf("late-added vector not retrievable: %+v", res[0])
	}
}

func TestIVFSearchUntrainedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ix := NewIVF(IVFConfig{Dim: 8})
	ix.Add(make([]float32, 8), "")
	ix.Search(make([]float32, 8), 1)
}

func TestIVFTrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewIVF(IVFConfig{Dim: 8}).Train()
}

func TestIVFDeterministicTraining(t *testing.T) {
	a, _ := buildIVF(t, 300, 16, 10, 3)
	b, _ := buildIVF(t, 300, 16, 10, 3)
	r := rng.New(29)
	q := randomUnit(r, 1, 16)[0]
	ra := a.Search(q, 5)
	rb := b.Search(q, 5)
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatal("IVF training not deterministic")
		}
	}
}

func TestFlatToIVF(t *testing.T) {
	r := rng.New(31)
	flat := NewFlat(16)
	vecs := randomUnit(r, 250, 16)
	for i, v := range vecs {
		flat.Add(v, "k"+string(rune('a'+i%26)))
	}
	ivf := flat.ToIVF(IVFConfig{NList: 8, NProbe: 8, Seed: 3})
	if ivf.Len() != flat.Len() {
		t.Fatalf("ToIVF lost vectors: %d vs %d", ivf.Len(), flat.Len())
	}
	q := randomUnit(r, 1, 16)[0]
	a := flat.Search(q, 3)
	b := ivf.Search(q, 3)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Key != b[i].Key {
			t.Fatalf("ToIVF full-probe mismatch at %d", i)
		}
	}
}

func TestKMeansClusterSeparation(t *testing.T) {
	// Two well-separated blobs must end in distinct clusters.
	r := rng.New(37)
	const dim = 8
	var vecs [][]float32
	for i := 0; i < 100; i++ {
		v := make([]float32, dim)
		v[0] = 1 + float32(r.Normal(0, 0.05))
		vecs = append(vecs, unit(v))
	}
	for i := 0; i < 100; i++ {
		v := make([]float32, dim)
		v[1] = 1 + float32(r.Normal(0, 0.05))
		vecs = append(vecs, unit(v))
	}
	km := &KMeans{K: 2, Seed: 5}
	km.Train(vecs)
	c0 := km.Nearest(vecs[0])
	for i := 1; i < 100; i++ {
		if km.Nearest(vecs[i]) != c0 {
			t.Fatal("blob A split across clusters")
		}
	}
	c1 := km.Nearest(vecs[100])
	if c1 == c0 {
		t.Fatal("blobs merged")
	}
	for i := 101; i < 200; i++ {
		if km.Nearest(vecs[i]) != c1 {
			t.Fatal("blob B split across clusters")
		}
	}
}

func unit(v []float32) []float32 {
	var n float32
	for _, x := range v {
		n += x * x
	}
	if n > 0 {
		inv := 1 / sqrt32(n)
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

func sqrt32(x float32) float32 {
	// Newton iterations suffice for test usage.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestKMeansFewerVectorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	km := &KMeans{K: 5, Seed: 1}
	km.Train([][]float32{{1, 0}})
}

func TestKMeansNearestN(t *testing.T) {
	km := &KMeans{K: 3, Seed: 1}
	km.Centroids = [][]float32{{1, 0}, {0, 1}, {-1, 0}}
	got := km.NearestN([]float32{0.9, 0.1}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("NearestN = %v", got)
	}
	all := km.NearestN([]float32{1, 0}, 10)
	if len(all) != 3 {
		t.Fatalf("NearestN clamp failed: %v", all)
	}
}

func BenchmarkIVFSearch10k(b *testing.B) {
	ix, _ := buildIVF(b, 10000, 128, 100, 8)
	r := rng.New(1)
	q := randomUnit(r, 1, 128)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 5)
	}
}

func BenchmarkIVFTrain(b *testing.B) {
	r := rng.New(1)
	vecs := randomUnit(r, 3000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := NewIVF(IVFConfig{Dim: 64, NList: 50, Seed: 1})
		for _, v := range vecs {
			ix.Add(v, "")
		}
		ix.Train()
	}
}
