package vecstore

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/rng"
)

// PQ parity suite, in the style of parity_test.go: the LUT-based
// asymmetric-distance scan (pooled, segment-parallel) must reproduce the
// retained reference scalar scan bit-for-bit on the quantized
// representation, and the generic tile-decode kernel running over pqBlock
// (DecodeTile + Dot) must produce the very same scores — the three scoring
// paths share one accumulation order by construction.

// pqParityM picks an M that exercises ragged subspace bounds where the
// dimension allows it (dim=7, M=3 → subspace widths 3/2/2).
func pqParityM(dim int) int {
	switch dim {
	case 1:
		return 1
	case 7:
		return 3
	default:
		return dim / 8
	}
}

func buildParityPQ(t *testing.T, dim, n int) *PQ {
	t.Helper()
	vecs, keys := parityVectors(t, dim, n)
	ix := NewPQ(PQConfig{Dim: dim, M: pqParityM(dim), Seed: 41})
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	return ix
}

func TestPQKernelParity(t *testing.T) {
	for _, dim := range parityDims {
		// Above 2×segmentMinRows for small dims so the segment-parallel
		// path engages; smaller at dim 384 to keep training quick.
		n := 1500
		if dim < 64 {
			n = 2*segmentMinRows + 37
		}
		ix := buildParityPQ(t, dim, n)
		r := rng.New(171)
		for _, k := range parityKs {
			for trial := 0; trial < 5; trial++ {
				q := randomUnit(r, 1, dim)[0]
				want := ix.searchReference(q, k)
				checkSameResults(t, "pq dim="+itoaTest(dim)+" k="+itoaTest(k),
					ix.Search(q, k), want)
				// The generic tile-decode kernel over pqBlock must agree
				// too: DecodeTile+Dot pin the same accumulation order as
				// the LUT path.
				kk := k
				if kk > ix.Len() {
					kk = ix.Len()
				}
				got := searchBlock(ix.block(), q, kk, ix.keys, nil)
				checkSameResults(t, "pq generic kernel dim="+itoaTest(dim)+" k="+itoaTest(k),
					got, want)
			}
		}
	}
}

func TestPQSearchBatchParity(t *testing.T) {
	for _, dim := range parityDims {
		n := 1200
		if dim < 64 {
			n = segmentMinRows + 13
		}
		ix := buildParityPQ(t, dim, n)
		queries := randomUnit(rng.New(173), 17, dim)
		for _, k := range parityKs {
			batch := ix.SearchBatch(queries, k)
			if len(batch) != len(queries) {
				t.Fatalf("dim=%d: %d batch results", dim, len(batch))
			}
			for qi, q := range queries {
				checkSameResults(t, "pq batch dim="+itoaTest(dim)+" k="+itoaTest(k),
					batch[qi], ix.searchReference(q, k))
			}
		}
	}
}

func TestPQLifecyclePanics(t *testing.T) {
	ix := NewPQ(PQConfig{Dim: 8})
	mustPanic(t, "Search before Train", func() { ix.Search(make([]float32, 8), 1) })
	ix.Add(make([]float32, 8), "a")
	ix.Train()
	mustPanic(t, "Add after Train", func() { ix.Add(make([]float32, 8), "b") })
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", label)
		}
	}()
	fn()
}

func TestIVFPQKernelParity(t *testing.T) {
	for _, dim := range parityDims {
		const n = 1200
		vecs, keys := parityVectors(t, dim, n)
		ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 16, NProbe: 4, M: pqParityM(dim), Seed: 43})
		for i, v := range vecs {
			ix.Add(v, keys[i])
		}
		ix.Train()
		r := rng.New(177)
		for _, k := range parityKs {
			for trial := 0; trial < 5; trial++ {
				q := randomUnit(r, 1, dim)[0]
				checkSameResults(t, "ivfpq dim="+itoaTest(dim)+" k="+itoaTest(k),
					ix.Search(q, k), ix.searchReference(q, k))
			}
		}
		queries := randomUnit(r, 9, dim)
		batch := ix.SearchBatch(queries, 10)
		for qi, q := range queries {
			checkSameResults(t, "ivfpq batch dim="+itoaTest(dim),
				batch[qi], ix.searchReference(q, 10))
		}
	}
}

// TestIVFPQPostTrainAdd checks that vectors added after training are
// encoded, routed, and retrievable.
func TestIVFPQPostTrainAdd(t *testing.T) {
	const dim, n = 16, 600
	vecs, keys := parityVectors(t, dim, n)
	ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 8, NProbe: 8, M: 8, Seed: 45})
	for i, v := range vecs[:n-50] {
		ix.Add(v, keys[i])
	}
	ix.Train()
	for i, v := range vecs[n-50:] {
		ix.Add(v, keys[n-50+i])
	}
	if ix.Len() != n {
		t.Fatalf("Len %d after post-train adds", ix.Len())
	}
	hits := 0
	for i := n - 50; i < n; i++ {
		for _, r := range ix.Search(vecs[i], 3) {
			if r.ID == i {
				hits++
				break
			}
		}
	}
	if hits < 45 {
		t.Fatalf("only %d/50 post-train vectors self-retrieve in top-3", hits)
	}
}

// TestIVFPQRecallRegression pins the IVF-PQ recall/latency/memory
// trade-off on a fixed fixture: fine sub-quantization (dsub=2) plus half
// probing must keep recall@10 against the exact FP16 scan at or above the
// regression floor, and the memory footprint must stay at M bytes/vector
// plus the amortised codebook.
func TestIVFPQRecallRegression(t *testing.T) {
	const dim, n = 32, 2000
	r := rng.New(211)
	vecs := randomUnit(r, n, dim)
	ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 32, NProbe: 24, M: 16, Seed: 7})
	for _, v := range vecs {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 40, dim)
	// Measured 0.885 when IVF-PQ landed (random unit vectors are both
	// clusterless — hard on the coarse probe — and structure-free — hard
	// on PQ — so this is a worst-case fixture; clustered embedding data
	// does better on both axes). Floor 0.85 is the acceptance bar.
	if got := ix.Recall(vecs, queries, 10); got < 0.85 {
		t.Fatalf("recall@10 nprobe=24 m=16: %.3f, below regression floor 0.85", got)
	}
	// Full probing isolates pure PQ quantization loss (measured 0.885:
	// at nprobe=24 the coarse probe already contributes no further loss).
	ix.SetNProbe(32)
	if got := ix.Recall(vecs, queries, 10); got < 0.87 {
		t.Fatalf("recall@10 nprobe=nlist: %.3f, below full-probe floor 0.87", got)
	}
}

// TestPQBytesPerVector pins the acceptance memory claim at the benchmark
// dimension: PQ at M=48 stores ≤ 1/4 the bytes-per-vector of SQ8
// (codebook amortised over the benchmark row count).
func TestPQBytesPerVector(t *testing.T) {
	const dim, n = 384, 2000
	vecs, keys := parityVectors(t, dim, n)
	pq := NewPQ(PQConfig{Dim: dim, M: 48, Seed: 1})
	sq := NewSQ8(dim)
	for i, v := range vecs {
		pq.Add(v, keys[i])
		sq.Add(v, keys[i])
	}
	pq.Train()
	sq.Train()
	pqStats, sqStats := StatsOf(pq), StatsOf(sq)
	// Amortise at the benchmark scale (100k rows), not the test's 2k.
	pqPer := float64(48) + float64(pqStats.Bytes-int64(n*48))/float64(benchN)
	if sqPer := sqStats.BytesPerVector(); pqPer > sqPer/4 {
		t.Fatalf("PQ %.1f bytes/vector at n=%d, want ≤ %.1f (SQ8/4)", pqPer, benchN, sqPer/4)
	}
	if !strings.HasPrefix(pqStats.Kind, "PQ(") || !strings.HasPrefix(sqStats.Kind, "SQ8") {
		t.Fatalf("StatsOf kinds: %q %q", pqStats.Kind, sqStats.Kind)
	}
}

// TestPQSaveLoadVSF3 round-trips a trained PQ index through the VSF3
// format: codebook, codes, and keys must survive byte-for-byte, searches
// must match bit-for-bit, and the format dispatchers must route each magic
// to the right loader.
func TestPQSaveLoadVSF3(t *testing.T) {
	const dim, n = 24, 300
	vecs, keys := parityVectors(t, dim, n)
	ix := NewPQ(PQConfig{Dim: dim, M: 6, Seed: 47})
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	path := t.TempDir() + "/index.vsf3"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPQ(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n || loaded.Dim() != dim || loaded.M() != 6 {
		t.Fatalf("loaded shape %d/%d/m=%d", loaded.Len(), loaded.Dim(), loaded.M())
	}
	for i := range keys {
		if loaded.Key(i) != ix.Key(i) {
			t.Fatalf("key %d mismatch", i)
		}
	}
	for i, c := range ix.codes {
		if loaded.codes[i] != c {
			t.Fatalf("code byte %d mismatch", i)
		}
	}
	for i, v := range ix.cb.cents {
		if loaded.cb.cents[i] != v {
			t.Fatalf("codebook float %d mismatch", i)
		}
	}
	r := rng.New(181)
	for trial := 0; trial < 3; trial++ {
		q := randomUnit(r, 1, dim)[0]
		checkSameResults(t, "vsf3 load", loaded.Search(q, 5), ix.Search(q, 5))
	}

	// Load dispatches on magic: VSF3 → *PQ.
	anyIx, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := anyIx.(*PQ); !ok {
		t.Fatalf("Load returned %T for VSF3", anyIx)
	}
	// LoadFlat refuses VSF3 with a typed error.
	if _, err := LoadFlat(path); err == nil {
		t.Fatal("LoadFlat accepted a VSF3 file")
	}

	// And the other direction: a VSF2 file loads via Load as *Flat and is
	// refused by LoadPQ.
	flat := NewFlat(dim)
	for i, v := range vecs {
		flat.Add(v, keys[i])
	}
	fpath := t.TempDir() + "/index.vsf"
	if err := flat.Save(fpath); err != nil {
		t.Fatal(err)
	}
	anyIx, err = Load(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := anyIx.(*Flat); !ok {
		t.Fatalf("Load returned %T for VSF2", anyIx)
	}
	if _, err := LoadPQ(fpath); err == nil {
		t.Fatal("LoadPQ accepted a VSF2 file")
	}
}

// TestPQLoadRejectsOutOfRangeCode: when ksub < 256 a corrupt code byte
// must fail at load time with ErrBadFormat, not panic or mis-score at
// search time.
func TestPQLoadRejectsOutOfRangeCode(t *testing.T) {
	const dim, n = 8, 50 // ksub = n = 50 < 256
	vecs, keys := parityVectors(t, dim, n)
	ix := NewPQ(PQConfig{Dim: dim, M: 4, Seed: 51})
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	path := t.TempDir() + "/corrupt.vsf3"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] = 255 // last code byte: centroid 255 of 50
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPQ(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt code byte: got %v, want ErrBadFormat", err)
	}
}

// TestStatsOfUntrainedPQ: the stats path must not panic on a
// not-yet-trained quantized index (it reports the staging buffer).
func TestStatsOfUntrainedPQ(t *testing.T) {
	pq := NewPQ(PQConfig{Dim: 8})
	pq.Add(make([]float32, 8), "a")
	if st := StatsOf(pq); st.Bytes != 16 {
		t.Fatalf("untrained PQ stats bytes %d, want 16 (FP16 staging)", st.Bytes)
	}
	ivfpq := NewIVFPQ(IVFPQConfig{Dim: 8, M: 4})
	ivfpq.Add(make([]float32, 8), "a")
	if st := StatsOf(ivfpq); st.Bytes != 16 {
		t.Fatalf("untrained IVFPQ stats bytes %d, want 16 (FP16 staging)", st.Bytes)
	}
}

// TestPQReconstruct checks that Reconstruct returns exactly the centroid
// concatenation the codes select.
func TestPQReconstruct(t *testing.T) {
	const dim, n = 12, 200
	vecs, keys := parityVectors(t, dim, n)
	ix := NewPQ(PQConfig{Dim: dim, M: 4, Seed: 49})
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	for id := 0; id < n; id += 17 {
		got := ix.Reconstruct(id)
		code := ix.codes[id*ix.cb.m : (id+1)*ix.cb.m]
		for s, c := range code {
			cent := ix.cb.centroid(s, int(c))
			for j, v := range cent {
				if got[ix.cb.bounds[s]+j] != v {
					t.Fatalf("id %d subspace %d dim %d: %v != %v", id, s, j, got[ix.cb.bounds[s]+j], v)
				}
			}
		}
	}
}
