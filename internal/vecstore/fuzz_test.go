package vecstore

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoad hammers the VSF magic dispatch and header/section parsing with
// arbitrary bytes: whatever Load is fed, it must either return a usable
// index or a clean error — never panic, and never size an allocation from
// header fields the file cannot physically back (the size-budget checks
// in readFlat/readPQ/readIVFPQ exist because early fuzzing found corrupt
// 12-byte headers driving multi-gigabyte makes). Seeds are real files of
// every on-disk generation plus their truncated prefixes; the corrupt
// header corpus lives in testdata/fuzz/FuzzLoad.
func FuzzLoad(f *testing.F) {
	dir := f.TempDir()
	seed := func(name string, save func(path string) error) {
		path := filepath.Join(dir, name)
		if err := save(path); err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(data)
		// Truncations probe every io.ReadFull error path mid-section.
		for _, cut := range []int{4, len(data) / 2, len(data) - 1} {
			if cut > 0 && cut < len(data) {
				f.Add(data[:cut])
			}
		}
	}

	flat := NewFlat(8)
	for i := 0; i < 40; i++ {
		vec := make([]float32, 8)
		for d := range vec {
			vec[d] = float32(i*8+d) / 320
		}
		flat.Add(vec, string(rune('a'+i%26)))
	}
	seed("flat.vsf", flat.Save)
	seed("pq.vsf", flat.ToPQ(PQConfig{M: 4}).Save)
	seed("ivfpq.vsf", flat.ToIVFPQ(IVFPQConfig{NList: 4, NProbe: 4, M: 4, Residual: true, OPQ: true}).Save)
	seed("hnsw.vsf", flat.ToHNSW(HNSWConfig{M: 4, EfConstruction: 16, Seed: 9}).Save)
	f.Add([]byte("VSF1"))
	f.Add([]byte("VSF2\x08\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	// VSF5 header bomb: plausible dim/M but a count the payload can't back.
	f.Add([]byte("VSF5\x08\x00\x00\x00\x04\x00\x00\x00\x10\x00\x00\x00\x10\x00\x00\x00" +
		"\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00" +
		"\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		path := filepath.Join(t.TempDir(), "fuzz.vsf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := Load(path)
		if err != nil {
			return
		}
		// A successfully loaded index must honour the Index contract well
		// enough to be searched within the file's own bounds.
		if ix.Dim() <= 0 || ix.Len() < 0 {
			t.Fatalf("loaded index with dim=%d len=%d", ix.Dim(), ix.Len())
		}
		query := make([]float32, ix.Dim())
		for d := range query {
			query[d] = 1
		}
		res := ix.Search(query, 3)
		if len(res) > 3 {
			t.Fatalf("Search(k=3) returned %d results", len(res))
		}
		for _, r := range res {
			if r.ID < 0 || r.ID >= ix.Len() {
				t.Fatalf("result id %d outside [0,%d)", r.ID, ix.Len())
			}
		}
	})
}
