// Package vecstore is the vector-database substrate standing in for FAISS.
//
// The paper stores 173,318 PubMedBERT chunk embeddings as FP16 in FAISS and
// three additional stores of reasoning-trace embeddings. This package
// provides the same capabilities in pure Go:
//
//   - Flat: exact inner-product / cosine search (FAISS IndexFlatIP),
//   - IVF: inverted-file index with a k-means coarse quantizer and nprobe
//     search (FAISS IndexIVFFlat), trading recall for throughput,
//   - HNSW: graph-based approximate search (FAISS IndexHNSWFlat),
//   - SQ8: 8-bit scalar quantization (FAISS IndexScalarQuantizer),
//   - PQ: product quantization with LUT-based asymmetric distance (FAISS
//     IndexPQ) — M bytes per vector instead of 2 per dimension,
//   - IVFPQ: the coarse probe composed with PQ cells (FAISS IndexIVFPQ),
//     with optional residual encoding (codes quantize x − anchor(cell),
//     scored through per-cell shifted LUTs) and an optional learned OPQ
//     rotation (FAISS OPQMatrix) ahead of the subspace split,
//   - attached per-vector metadata payloads (ids, provenance),
//   - binary persistence, and parallel single- and multi-query batch search.
//
// docs/ARCHITECTURE.md describes the index zoo and when to pick which
// index; docs/VSF_FORMAT.md is the byte-level persistence specification.
//
// # Storage layout and scan kernel
//
// All code-based indexes use FAISS's contiguous-block layout: one flat
// array holds every row, with row i at codes[i*stride:(i+1)*stride] (Flat,
// SQ8 and PQ globally; IVF and IVFPQ as one contiguous block per inverted
// list). There are no per-vector slice headers and no pointer dereferences
// on the scan path. FP16 and int8 searches run through a blocked kernel
// (scan.go): a tile of scanTileRows (64) rows is decoded into a pooled
// FP32 scratch buffer once, then scored with the 4-way-unrolled float32
// dot product. Blocks with at least segmentMinRows (4096) rows of work per
// core are split into GOMAXPROCS segments scanned concurrently with
// per-segment top-k heaps merged exactly at the end — a single query
// saturates the machine, not just the query-level fan-out of BatchSearch.
//
// PQ searches skip tile decoding entirely: a per-query M×256 look-up
// table of sub-query·centroid dot products is built once, after which
// scoring a row is one table lookup and add per subspace (asymmetric
// distance computation). The LUT kernels share the segment-parallel
// plumbing and pooled scratch of the decode kernels.
//
// SearchBatch is the multi-query kernel: each decoded tile (or, for PQ,
// each per-query LUT and cache-resident code segment) is reused across the
// whole query batch, amortising decode bandwidth the way a GEMM amortises
// operand loads. BatchSearch delegates to it whenever the index implements
// BatchSearcher.
//
// Scores are bit-for-bit identical to the reference scalar scans (decode
// one row, one dot product at a time; for PQ, one LUT row-sum at a time):
// binary16→float32 decoding is exact, the accumulation trees match, and
// top-k selection uses the total order (score descending, id ascending),
// making segment merges associative. parity_test.go and pq_test.go pin
// this down.
//
// All indexes are safe for concurrent Search after construction; Add is not
// concurrent with Search.
package vecstore
