package vecstore

import (
	"math"
	"testing"

	"repro/internal/f16"
	"repro/internal/rng"
)

func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Kernel benchmarks for the BENCH trajectory. All report ns/vector (time
// per stored vector scanned, the layout-independent figure of merit) and
// allocations. benchN/benchDim match the acceptance config of the
// contiguous-layout rewrite: dim=384 (the PubMedBERT stand-in), n=100k
// (within 2× of the paper's 173k-chunk store).

const (
	benchDim = 384
	benchN   = 100_000
)

func buildBenchFlat(b *testing.B, n, dim int) (*Flat, [][]float32) {
	b.Helper()
	r := rng.New(1)
	ix := NewFlat(dim)
	for _, v := range randomUnit(r, n, dim) {
		ix.Add(v, "")
	}
	queries := randomUnit(r, 64, dim)
	return ix, queries
}

// jaggedFlat emulates the pre-rewrite storage and scan: one heap-allocated
// []uint16 per vector, scored with the seed's branchy per-element widening
// conversion (frozen here so later f16 improvements — e.g. the lookup-table
// decode — don't silently inflate the baseline). Retained so the contiguous
// kernel's speedup stays measurable against its true baseline.
type jaggedFlat struct {
	dim  int
	vecs [][]uint16
	keys []string
}

// seedToFloat32 is the seed's bit-manipulation binary16→float32 conversion
// (identical output to f16.ToFloat32, pre-lookup-table cost profile).
func seedToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	man := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if man == 0 {
			return mathFloat32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return mathFloat32frombits(sign | e<<23 | man<<13)
	case 0x1F:
		if man == 0 {
			return mathFloat32frombits(sign | 0x7F800000)
		}
		return mathFloat32frombits(sign | 0x7FC00000 | man<<13)
	default:
		return mathFloat32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

func seedDot(h []uint16, q []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(h); i += 4 {
		s0 += seedToFloat32(h[i]) * q[i]
		s1 += seedToFloat32(h[i+1]) * q[i+1]
		s2 += seedToFloat32(h[i+2]) * q[i+2]
		s3 += seedToFloat32(h[i+3]) * q[i+3]
	}
	for ; i < len(h); i++ {
		s0 += seedToFloat32(h[i]) * q[i]
	}
	return s0 + s1 + s2 + s3
}

func (ix *jaggedFlat) search(query []float32, k int) []Result {
	h := newTopK(k)
	for id, v := range ix.vecs {
		h.push(id, seedDot(v, query))
	}
	return h.results(ix.keys)
}

func BenchmarkFlatSearch(b *testing.B) {
	ix, queries := buildBenchFlat(b, benchN, benchDim)
	var dst []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.SearchInto(queries[i%len(queries)], 10, dst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN), "ns/vector")
	reportBytesPerVector(b, ix)
}

// BenchmarkFlatSearchJagged is the pre-rewrite baseline (jagged [][]uint16
// storage, per-vector f16.Dot): compare with BenchmarkFlatSearch for the
// contiguous-kernel speedup.
func BenchmarkFlatSearchJagged(b *testing.B) {
	r := rng.New(1)
	ix := &jaggedFlat{dim: benchDim}
	for _, v := range randomUnit(r, benchN, benchDim) {
		ix.vecs = append(ix.vecs, f16.Encode(v))
		ix.keys = append(ix.keys, "")
	}
	queries := randomUnit(r, 64, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN), "ns/vector")
}

// BenchmarkFlatSearchSerial pins the single-threaded kernel (tile decode +
// blocked dot, no segment parallelism) by staying under the parallel
// threshold; ns/vector here isolates the layout win from the parallel win.
func BenchmarkFlatSearchSerial(b *testing.B) {
	n := segmentMinRows
	ix, queries := buildBenchFlat(b, n, benchDim)
	var dst []Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.SearchInto(queries[i%len(queries)], 10, dst)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/vector")
}

func BenchmarkFlatSearchBatch(b *testing.B) {
	ix, queries := buildBenchFlat(b, benchN, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.SearchBatch(queries, 10)
	}
	b.ReportMetric(
		float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN)/float64(len(queries)),
		"ns/vector")
}

// BenchmarkFlatBatchFanout is the query-level fan-out BatchSearch used
// before the multi-query kernel existed; compare with
// BenchmarkFlatSearchBatch for the tile-amortisation win.
func BenchmarkFlatBatchFanout(b *testing.B) {
	ix, queries := buildBenchFlat(b, benchN, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([][]Result, len(queries))
		parallelFor(len(queries), 0, func(qi int) {
			out[qi] = ix.SearchInto(queries[qi], 10, nil)
		})
	}
	b.ReportMetric(
		float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN)/float64(len(queries)),
		"ns/vector")
}

// benchPQM is the PQ operating point of the acceptance config: 48
// subspaces of 8 dims → 48 bytes/vector, 1/8 of SQ8's 384 and 1/16 of
// FP16's 768.
const benchPQM = 48

// reportBytesPerVector adds the storage figure of merit next to ns/vector
// so the recall/memory/QPS table in docs/ARCHITECTURE.md reads off one
// bench run.
func reportBytesPerVector(b *testing.B, ix Index) {
	b.Helper()
	b.ReportMetric(StatsOf(ix).BytesPerVector(), "bytes/vector")
}

// BenchmarkSQ8Search is the int8 contiguous-scan baseline the PQ
// asymmetric-LUT scan must beat (compare ns/vector with
// BenchmarkPQSearch).
func BenchmarkSQ8Search(b *testing.B) {
	r := rng.New(1)
	ix := NewSQ8(benchDim)
	for _, v := range randomUnit(r, benchN, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN), "ns/vector")
	reportBytesPerVector(b, ix)
}

func buildBenchPQ(b *testing.B, n int) (*PQ, [][]float32) {
	b.Helper()
	r := rng.New(1)
	ix := NewPQ(PQConfig{Dim: benchDim, M: benchPQM, Seed: 1})
	for _, v := range randomUnit(r, n, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	return ix, queries
}

// BenchmarkPQSearch is the asymmetric-distance scan: per query one M×256
// LUT build, then one lookup+add per subspace per row — no FP32 decode in
// the hot loop.
func BenchmarkPQSearch(b *testing.B) {
	ix, queries := buildBenchPQ(b, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN), "ns/vector")
	reportBytesPerVector(b, ix)
}

// BenchmarkPQSearchSerial pins the single-threaded LUT kernel by staying
// under the parallel threshold (compare with BenchmarkFlatSearchSerial for
// the per-core decode-free win).
func BenchmarkPQSearchSerial(b *testing.B) {
	n := segmentMinRows
	ix, queries := buildBenchPQ(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/vector")
}

// BenchmarkPQSearchBatch amortises LUT construction across the batch and
// re-streams each cache-resident code segment once per query.
func BenchmarkPQSearchBatch(b *testing.B) {
	ix, queries := buildBenchPQ(b, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.SearchBatch(queries, 10)
	}
	b.ReportMetric(
		float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchN)/float64(len(queries)),
		"ns/vector")
}

// BenchmarkIVFPQSearch composes the coarse probe with PQ cells: ns/vector
// is per row actually scanned (n × nprobe/nlist), the figure to compare
// with BenchmarkIVFSearch's FP16 cells.
func BenchmarkIVFPQSearch(b *testing.B) {
	r := rng.New(1)
	ix := NewIVFPQ(IVFPQConfig{Dim: benchDim, NList: 256, NProbe: 8, M: benchPQM, Seed: 1})
	const n = 20_000
	for _, v := range randomUnit(r, n, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	scanned := float64(n) * float64(ix.NProbe()) / float64(ix.NList())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/scanned, "ns/vector")
	reportBytesPerVector(b, ix)
}

// buildBenchIVFPQ builds the IVF-PQ bench fixture at the acceptance
// operating point (nlist=256, nprobe=8, M=48) for one encoding variant.
func buildBenchIVFPQ(b *testing.B, cfg IVFPQConfig) (*IVFPQ, [][]float32, float64) {
	b.Helper()
	r := rng.New(1)
	cfg.Dim, cfg.NList, cfg.NProbe, cfg.M, cfg.Seed = benchDim, 256, 8, benchPQM, 1
	ix := NewIVFPQ(cfg)
	const n = 20_000
	for _, v := range randomUnit(r, n, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	scanned := float64(n) * float64(ix.NProbe()) / float64(ix.NList())
	return ix, queries, scanned
}

// BenchmarkIVFPQResidualSearch measures the residual-encoding LUT-cost
// trade-off: the same scan as BenchmarkIVFPQSearch plus one O(dim+M·ksub)
// LUT shift per probed cell. Compare ns/vector with BenchmarkIVFPQSearch
// for the per-cell overhead residual recall is bought with.
func BenchmarkIVFPQResidualSearch(b *testing.B) {
	ix, queries, scanned := buildBenchIVFPQ(b, IVFPQConfig{Residual: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/scanned, "ns/vector")
	reportBytesPerVector(b, ix)
}

// BenchmarkIVFPQResidualSearchBatch amortises base-LUT construction across
// the batch; the per-(cell,query) shift is the remaining residual cost.
func BenchmarkIVFPQResidualSearchBatch(b *testing.B) {
	ix, queries, scanned := buildBenchIVFPQ(b, IVFPQConfig{Residual: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.SearchBatch(queries, 10)
	}
	b.ReportMetric(
		float64(b.Elapsed().Nanoseconds())/float64(b.N)/scanned/float64(len(queries)),
		"ns/vector")
}

// BenchmarkIVFPQAdd is the post-train insert hot path: route, residual
// subtract, encode into the tail of the cell's contiguous block. Compare
// allocs/op with BenchmarkIVFPQAddNaive (the pre-fix per-insert buffer).
func BenchmarkIVFPQAdd(b *testing.B) {
	ix, queries, _ := buildBenchIVFPQ(b, IVFPQConfig{Residual: true})
	vecs := randomUnit(rng.New(3), 256, benchDim)
	_ = queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Add(vecs[i%len(vecs)], "")
	}
}

// BenchmarkIVFPQAddNaive is the frozen pre-fix Add path — a fresh
// make([]byte, m) per insert, encoded against the shared codebook, then
// copied into the cell block — retained so the allocation win of the
// in-place tail encode stays measurable against its true baseline.
func BenchmarkIVFPQAddNaive(b *testing.B) {
	ix, _, _ := buildBenchIVFPQ(b, IVFPQConfig{})
	vecs := randomUnit(rng.New(3), 256, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := vecs[i%len(vecs)]
		id := len(ix.keys)
		ix.keys = append(ix.keys, "")
		c := ix.km.Nearest(vec)
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		code := make([]byte, ix.cb.m)
		ix.cb.encode(vec, code)
		ix.cellCodes[c] = append(ix.cellCodes[c], code...)
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	r := rng.New(1)
	ix := NewIVF(IVFConfig{Dim: benchDim, NList: 256, NProbe: 8, Seed: 1})
	const n = 20_000 // IVF training at 100k dominates bench setup; 20k cells scan identically
	for _, v := range randomUnit(r, n, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	scanned := float64(n) * float64(ix.NProbe()) / float64(ix.NList())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(queries[i%len(queries)], 10)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/scanned, "ns/vector")
}

func BenchmarkIVFSearchBatch(b *testing.B) {
	r := rng.New(1)
	ix := NewIVF(IVFConfig{Dim: benchDim, NList: 256, NProbe: 8, Seed: 1})
	const n = 20_000
	for _, v := range randomUnit(r, n, benchDim) {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 64, benchDim)
	scanned := float64(n) * float64(ix.NProbe()) / float64(ix.NList())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.SearchBatch(queries, 10)
	}
	b.ReportMetric(
		float64(b.Elapsed().Nanoseconds())/float64(b.N)/scanned/float64(len(queries)),
		"ns/vector")
}
