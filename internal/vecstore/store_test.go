package vecstore

import (
	"errors"
	"io"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/f16"
	"repro/internal/rng"
)

// randomUnit returns n random unit vectors of the given dim.
func randomUnit(r *rng.Source, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.Normal(0, 1))
		}
		f16.Normalize(v)
		out[i] = v
	}
	return out
}

func TestFlatExactTopK(t *testing.T) {
	r := rng.New(1)
	const dim, n = 32, 200
	vecs := randomUnit(r, n, dim)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, "")
		_ = i
	}
	for trial := 0; trial < 20; trial++ {
		q := randomUnit(r, 1, dim)[0]
		got := ix.Search(q, 5)
		if len(got) != 5 {
			t.Fatalf("got %d results", len(got))
		}
		// Brute-force reference using the same FP16 scores.
		type pair struct {
			id    int
			score float32
		}
		best := make([]pair, 0, n)
		for id := range vecs {
			best = append(best, pair{id, f16.Dot(f16.Encode(vecs[id]), q)})
		}
		for i := 0; i < 5; i++ {
			maxIdx := i
			for j := i + 1; j < n; j++ {
				if best[j].score > best[maxIdx].score {
					maxIdx = j
				}
			}
			best[i], best[maxIdx] = best[maxIdx], best[i]
			if math.Abs(float64(got[i].Score-best[i].score)) > 1e-5 {
				t.Fatalf("trial %d rank %d: score %v want %v", trial, i, got[i].Score, best[i].score)
			}
		}
	}
}

func TestFlatDescendingOrder(t *testing.T) {
	r := rng.New(2)
	ix := NewFlat(16)
	for _, v := range randomUnit(r, 100, 16) {
		ix.Add(v, "")
	}
	q := randomUnit(r, 1, 16)[0]
	res := ix.Search(q, 10)
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not descending at %d", i)
		}
	}
}

func TestFlatKeys(t *testing.T) {
	ix := NewFlat(4)
	id := ix.Add([]float32{1, 0, 0, 0}, "chunk-42")
	if ix.Key(id) != "chunk-42" {
		t.Fatalf("Key = %q", ix.Key(id))
	}
	res := ix.Search([]float32{1, 0, 0, 0}, 1)
	if res[0].Key != "chunk-42" {
		t.Fatalf("result key = %q", res[0].Key)
	}
}

func TestFlatSelfRetrieval(t *testing.T) {
	r := rng.New(3)
	const dim, n = 48, 300
	vecs := randomUnit(r, n, dim)
	ix := NewFlat(dim)
	for _, v := range vecs {
		ix.Add(v, "")
	}
	for i := 0; i < n; i += 17 {
		res := ix.Search(vecs[i], 1)
		if res[0].ID != i {
			t.Fatalf("self-retrieval of %d returned %d", i, res[0].ID)
		}
	}
}

func TestFlatKLargerThanN(t *testing.T) {
	ix := NewFlat(4)
	ix.Add([]float32{1, 0, 0, 0}, "a")
	ix.Add([]float32{0, 1, 0, 0}, "b")
	res := ix.Search([]float32{1, 0, 0, 0}, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
}

func TestFlatEmptyAndZeroK(t *testing.T) {
	ix := NewFlat(4)
	if res := ix.Search([]float32{1, 0, 0, 0}, 3); res != nil {
		t.Fatal("empty index returned results")
	}
	ix.Add([]float32{1, 0, 0, 0}, "a")
	if res := ix.Search([]float32{1, 0, 0, 0}, 0); res != nil {
		t.Fatal("k=0 returned results")
	}
}

func TestFlatDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	NewFlat(4).Add([]float32{1, 2}, "x")
}

func TestFlatMemoryBytes(t *testing.T) {
	ix := NewFlat(384)
	v := make([]float32, 384)
	v[0] = 1
	for i := 0; i < 10; i++ {
		ix.Add(v, "")
	}
	if got := ix.MemoryBytes(); got != 10*768 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestBatchSearchMatchesSequential(t *testing.T) {
	r := rng.New(5)
	const dim = 24
	ix := NewFlat(dim)
	for _, v := range randomUnit(r, 150, dim) {
		ix.Add(v, "")
	}
	queries := randomUnit(r, 40, dim)
	batch := BatchSearch(ix, queries, 3, 4)
	for i, q := range queries {
		seq := ix.Search(q, 3)
		if len(batch[i]) != len(seq) {
			t.Fatalf("query %d: length mismatch", i)
		}
		for j := range seq {
			if batch[i][j].ID != seq[j].ID {
				t.Fatalf("query %d rank %d: %d vs %d", i, j, batch[i][j].ID, seq[j].ID)
			}
		}
	}
}

func TestBatchSearchEmpty(t *testing.T) {
	ix := NewFlat(4)
	ix.Add([]float32{1, 0, 0, 0}, "")
	if out := BatchSearch(ix, nil, 3, 2); len(out) != 0 {
		t.Fatal("nil queries gave output")
	}
}

// Property: the heap keeps exactly the k best scores for arbitrary input.
func TestQuickTopKHeap(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		r := rng.New(seed)
		n := 5 + r.Intn(100)
		scores := make([]float32, n)
		for i := range scores {
			scores[i] = float32(r.Normal(0, 1))
		}
		h := newTopK(k)
		for i, s := range scores {
			h.push(i, s)
		}
		res := h.results(make([]string, n))
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		// Every returned score must be >= every non-returned score.
		inRes := make(map[int]bool)
		minRes := float32(math.Inf(1))
		for _, x := range res {
			inRes[x.ID] = true
			if x.Score < minRes {
				minRes = x.Score
			}
		}
		for i, s := range scores {
			if !inRes[i] && s > minRes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(7)
	const dim = 20
	ix := NewFlat(dim)
	keys := []string{"alpha", "beta", "gamma with spaces", ""}
	for i, v := range randomUnit(r, 4, dim) {
		ix.Add(v, keys[i])
	}
	path := filepath.Join(t.TempDir(), "index.vsf")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.Dim() != ix.Dim() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", loaded.Len(), loaded.Dim(), ix.Len(), ix.Dim())
	}
	for i := 0; i < ix.Len(); i++ {
		if loaded.Key(i) != ix.Key(i) {
			t.Fatalf("key %d mismatch", i)
		}
		a, b := loaded.Vector(i), ix.Vector(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("vector %d dim %d mismatch", i, j)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.vsf")
	if err := writeFile(path, []byte("not an index at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFlat(path); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	r := rng.New(9)
	ix := NewFlat(8)
	for _, v := range randomUnit(r, 10, 8) {
		ix.Add(v, "key")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "full.vsf")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.vsf")
	if err := writeFile(trunc, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFlat(trunc); err == nil {
		t.Fatal("truncated file loaded without error")
	}
}

// TestLoadErrorWrapsCause pins the %w discipline the errwrap lint rule
// enforces: a load failure must expose BOTH the format sentinel and the
// underlying I/O cause through errors.Is, so callers can distinguish
// "corrupt index" from "disk fell over" without string matching.
func TestLoadErrorWrapsCause(t *testing.T) {
	r := rng.New(11)
	ix := NewFlat(8)
	for _, v := range randomUnit(r, 3, 8) {
		ix.Add(v, "k")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "full.vsf")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the dim field: 4 magic bytes + 2 of 4 header
	// bytes. The loader's binary.Read sees io.ErrUnexpectedEOF and must
	// wrap it under ErrBadFormat, not flatten it into the message.
	trunc := filepath.Join(dir, "trunc.vsf")
	if err := writeFile(trunc, data[:6]); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFlat(trunc)
	if err == nil {
		t.Fatal("truncated header loaded without error")
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("errors.Is(err, ErrBadFormat) = false; err = %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("errors.Is(err, io.ErrUnexpectedEOF) = false; load errors must wrap the I/O cause with %%w; err = %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadFlat(filepath.Join(t.TempDir(), "missing.vsf")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func BenchmarkFlatSearch10k(b *testing.B) {
	r := rng.New(1)
	const dim = 384
	ix := NewFlat(dim)
	for _, v := range randomUnit(r, 10000, dim) {
		ix.Add(v, "")
	}
	q := randomUnit(r, 1, dim)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 5)
	}
}

func BenchmarkBatchSearch(b *testing.B) {
	r := rng.New(1)
	const dim = 128
	ix := NewFlat(dim)
	for _, v := range randomUnit(r, 5000, dim) {
		ix.Add(v, "")
	}
	queries := randomUnit(r, 64, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BatchSearch(ix, queries, 5, 0)
	}
}
