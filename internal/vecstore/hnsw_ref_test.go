package vecstore

import (
	"math"
	"sort"
	"testing"

	"repro/internal/f16"
	"repro/internal/rng"
)

// hnswRef is the seed-era jagged HNSW implementation — [][]uint16 rows,
// map[int][]int adjacency — retained verbatim as the oracle for the
// flattened index: given the same seed and insertion order the CSR
// implementation must build the identical graph and return bit-identical
// results (see hnsw_parity_test.go).
type hnswRef struct {
	dim            int
	m              int
	efConstruction int
	efSearch       int

	vecs   [][]uint16
	keys   []string
	levels []int
	links  []map[int][]int
	entry  int
	maxLv  int
	rand   *rng.Source
}

func newHNSWRef(cfg HNSWConfig) *hnswRef {
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 64
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 32
	}
	return &hnswRef{
		dim:            cfg.Dim,
		m:              cfg.M,
		efConstruction: cfg.EfConstruction,
		efSearch:       cfg.EfSearch,
		entry:          -1,
		maxLv:          -1,
		rand:           rng.New(cfg.Seed).Split("hnsw"),
	}
}

func (h *hnswRef) randomLevel() int {
	u := h.rand.Float64()
	for u == 0 {
		u = h.rand.Float64()
	}
	return int(-math.Log(u) / math.Log(float64(h.m)))
}

func (h *hnswRef) score(id int, q []float32) float32 {
	return f16.Dot(h.vecs[id], q)
}

func (h *hnswRef) add(vec []float32, key string) int {
	id := len(h.vecs)
	h.vecs = append(h.vecs, f16.Encode(vec))
	h.keys = append(h.keys, key)
	level := h.randomLevel()
	h.levels = append(h.levels, level)
	for len(h.links) <= level {
		h.links = append(h.links, make(map[int][]int))
	}

	if h.entry < 0 {
		h.entry, h.maxLv = id, level
		return id
	}

	cur := h.entry
	for lv := h.maxLv; lv > level; lv-- {
		cur = h.greedyClosest(vec, cur, lv)
	}
	for lv := min(level, h.maxLv); lv >= 0; lv-- {
		cands := h.searchLayer(vec, cur, h.efConstruction, lv)
		neighbours := h.selectNeighbours(cands, h.maxLinks(lv))
		h.links[lv][id] = neighbours
		for _, n := range neighbours {
			h.links[lv][n] = append(h.links[lv][n], id)
			if cap := h.maxLinks(lv); len(h.links[lv][n]) > cap {
				h.links[lv][n] = h.pruneNeighbours(n, lv, cap)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].id
		}
	}
	if level > h.maxLv {
		h.entry, h.maxLv = id, level
	}
	return id
}

func (h *hnswRef) maxLinks(level int) int {
	if level == 0 {
		return 2 * h.m
	}
	return h.m
}

func (h *hnswRef) greedyClosest(q []float32, start, lv int) int {
	cur := start
	curScore := h.score(cur, q)
	for {
		improved := false
		for _, n := range h.links[lv][cur] {
			if s := h.score(n, q); s > curScore {
				cur, curScore = n, s
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (h *hnswRef) searchLayer(q []float32, start, ef, lv int) []scored {
	visited := map[int]bool{start: true}
	startS := scored{start, h.score(start, q)}
	cands := []scored{startS}
	results := []scored{startS}
	for len(cands) > 0 {
		c := cands[0]
		cands = cands[1:]
		worst := results[len(results)-1]
		if c.score < worst.score && len(results) >= ef {
			break
		}
		for _, n := range h.links[lv][c.id] {
			if visited[n] {
				continue
			}
			visited[n] = true
			s := scored{n, h.score(n, q)}
			if len(results) < ef || s.score > results[len(results)-1].score {
				cands = insertSorted(cands, s)
				results = insertSorted(results, s)
				if len(results) > ef {
					results = results[:ef]
				}
			}
		}
	}
	return results
}

func (h *hnswRef) selectNeighbours(cands []scored, n int) []int {
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

func (h *hnswRef) pruneNeighbours(node, lv, cap int) []int {
	vec := f16.Decode(h.vecs[node])
	links := h.links[lv][node]
	cands := make([]scored, 0, len(links))
	for _, n := range links {
		cands = append(cands, scored{n, h.score(n, vec)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	return h.selectNeighbours(cands, cap)
}

func (h *hnswRef) search(query []float32, k int) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	cur := h.entry
	for lv := h.maxLv; lv > 0; lv-- {
		cur = h.greedyClosest(query, cur, lv)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, cur, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Score: c.score, Key: h.keys[c.id]}
	}
	return out
}

// Before/after benchmarks behind the "HNSW modernisation" table in
// docs/ARCHITECTURE.md: the retained jagged reference against the CSR
// rewrite, same corpus, same queries. Both graphs are bit-identical (the
// parity tests pin that), so any delta is purely the layout and the
// gather-decode kernel.

func benchRefHNSW(b *testing.B, n, dim int, cfg HNSWConfig) (*hnswRef, [][]float32) {
	b.Helper()
	cfg.Dim = dim
	r := rng.New(2)
	vecs := randomUnit(r, n, dim)
	h := newHNSWRef(cfg)
	for i, v := range vecs {
		h.add(v, benchKey(i))
	}
	return h, vecs
}

func benchKey(i int) string { return "k" + string(rune('a'+i%26)) }

func BenchmarkHNSWRefSearch10k(b *testing.B) {
	h, _ := benchRefHNSW(b, 10000, 128, HNSWConfig{Seed: 1})
	q := randomUnit(rng.New(1), 1, 128)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.search(q, 5)
	}
}

func BenchmarkHNSWRefBuild2k(b *testing.B) {
	r := rng.New(2)
	vecs := randomUnit(r, 2000, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := newHNSWRef(HNSWConfig{Dim: 128, Seed: 1})
		for j, v := range vecs {
			h.add(v, benchKey(j))
		}
	}
}

func BenchmarkHNSWBuild2k(b *testing.B) {
	r := rng.New(2)
	vecs := randomUnit(r, 2000, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHNSW(HNSWConfig{Dim: 128, Seed: 1})
		for j, v := range vecs {
			h.Add(v, benchKey(j))
		}
	}
}
