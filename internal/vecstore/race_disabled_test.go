//go:build !race

package vecstore

const raceEnabled = false
