package vecstore

import (
	"fmt"
	"math"

	"repro/internal/f16"
)

// SQ8 is a scalar-quantized exact index (FAISS IndexScalarQuantizer with
// QT_8bit): each dimension is linearly mapped to an int8 code using
// per-dimension min/max learned from the data, quartering memory relative
// to FP16 at a small recall cost. Train must be called after the final Add
// and before Search (codes are derived from the training statistics).
type SQ8 struct {
	dim     int
	raw     [][]uint16 // FP16 staging until Train
	codes   [][]int8
	keys    []string
	lo, hi  []float32 // per-dimension quantization range
	scale   []float32 // (hi-lo)/255
	trained bool
}

// NewSQ8 returns an empty scalar-quantized index.
func NewSQ8(dim int) *SQ8 {
	if dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &SQ8{dim: dim}
}

// Add implements Index (staging vectors until Train).
func (ix *SQ8) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to SQ8 of dim %d", len(vec), ix.dim))
	}
	if ix.trained {
		panic("vecstore: SQ8 Add after Train")
	}
	ix.raw = append(ix.raw, f16.Encode(vec))
	ix.keys = append(ix.keys, key)
	return len(ix.raw) - 1
}

// Train learns per-dimension ranges and quantizes all staged vectors.
func (ix *SQ8) Train() {
	if len(ix.raw) == 0 {
		panic("vecstore: Train on empty SQ8")
	}
	ix.lo = make([]float32, ix.dim)
	ix.hi = make([]float32, ix.dim)
	for d := range ix.lo {
		ix.lo[d] = float32(math.Inf(1))
		ix.hi[d] = float32(math.Inf(-1))
	}
	for _, h := range ix.raw {
		for d := 0; d < ix.dim; d++ {
			v := f16.ToFloat32(h[d])
			if v < ix.lo[d] {
				ix.lo[d] = v
			}
			if v > ix.hi[d] {
				ix.hi[d] = v
			}
		}
	}
	ix.scale = make([]float32, ix.dim)
	for d := range ix.scale {
		r := ix.hi[d] - ix.lo[d]
		if r <= 0 {
			r = 1
		}
		ix.scale[d] = r / 255
	}
	ix.codes = make([][]int8, len(ix.raw))
	for i, h := range ix.raw {
		code := make([]int8, ix.dim)
		for d := 0; d < ix.dim; d++ {
			v := f16.ToFloat32(h[d])
			q := (v - ix.lo[d]) / ix.scale[d]
			if q < 0 {
				q = 0
			}
			if q > 255 {
				q = 255
			}
			code[d] = int8(int(q+0.5) - 128)
		}
		ix.codes[i] = code
	}
	ix.raw = nil
	ix.trained = true
}

// Trained reports whether codes have been built.
func (ix *SQ8) Trained() bool { return ix.trained }

// decode reconstructs dimension d of a code.
func (ix *SQ8) decode(code []int8, d int) float32 {
	return ix.lo[d] + (float32(int(code[d])+128)+0.5)*ix.scale[d]
}

// Len implements Index.
func (ix *SQ8) Len() int {
	if ix.trained {
		return len(ix.codes)
	}
	return len(ix.raw)
}

// Dim implements Index.
func (ix *SQ8) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *SQ8) Key(id int) string { return ix.keys[id] }

// Search implements Index with an exact scan over quantized codes.
func (ix *SQ8) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: SQ8 Search before Train")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.codes) == 0 {
		return nil
	}
	h := newTopK(k)
	for id, code := range ix.codes {
		var s float32
		for d := 0; d < ix.dim; d++ {
			s += ix.decode(code, d) * query[d]
		}
		h.push(id, s)
	}
	return h.results(ix.keys)
}

// MemoryBytes reports code storage (1 byte/dimension plus ranges).
func (ix *SQ8) MemoryBytes() int64 {
	return int64(ix.Len())*int64(ix.dim) + int64(8*ix.dim)
}

// Recall measures SQ8 recall against an exact FP16 scan of the same data.
// Callable only before the staged FP16 copies are dropped? No — codes are
// decoded, so it works after Train by reconstructing from codes; the
// reference is the decoded data itself scanned exactly, so this measures
// ranking fidelity of the quantized scores against full-precision scores
// of the *original* vectors when originals are provided.
func (ix *SQ8) Recall(originals [][]float32, queries [][]float32, k int) float64 {
	if len(queries) == 0 || len(originals) != ix.Len() {
		return 0
	}
	flat := NewFlat(ix.dim)
	for i, v := range originals {
		flat.Add(v, ix.keys[i])
	}
	var hits, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		got := map[int]bool{}
		for _, r := range ix.Search(q, k) {
			got[r.ID] = true
		}
		for _, r := range exact {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	return float64(hits) / float64(total)
}
