package vecstore

import (
	"fmt"
	"math"

	"repro/internal/f16"
)

// SQ8 is a scalar-quantized exact index (FAISS IndexScalarQuantizer with
// QT_8bit): each dimension is linearly mapped to an int8 code using
// per-dimension min/max learned from the data, quartering memory relative
// to FP16 at a small recall cost. Codes live in one contiguous []int8
// block (row i at codes[i*dim:(i+1)*dim]) and searches run through the
// same blocked scan kernel as Flat, reconstructing a tile of rows into
// FP32 scratch before the dot products. Train must be called after the
// final Add and before Search (codes are derived from the training
// statistics).
type SQ8 struct {
	dim     int
	staged  []uint16 // contiguous FP16 staging until Train
	codes   []int8   // contiguous codes after Train
	keys    []string
	lo, hi  []float32 // per-dimension quantization range
	scale   []float32 // (hi-lo)/255
	trained bool
}

// NewSQ8 returns an empty scalar-quantized index.
func NewSQ8(dim int) *SQ8 {
	if dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &SQ8{dim: dim}
}

// Add implements Index (staging vectors until Train).
func (ix *SQ8) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to SQ8 of dim %d", len(vec), ix.dim))
	}
	if ix.trained {
		panic("vecstore: SQ8 Add after Train")
	}
	ix.staged = f16.AppendEncoded(ix.staged, vec)
	ix.keys = append(ix.keys, key)
	return len(ix.keys) - 1
}

// Train learns per-dimension ranges and quantizes all staged vectors into
// the contiguous code block.
func (ix *SQ8) Train() {
	n := len(ix.keys)
	if n == 0 {
		panic("vecstore: Train on empty SQ8")
	}
	ix.lo = make([]float32, ix.dim)
	ix.hi = make([]float32, ix.dim)
	for d := range ix.lo {
		ix.lo[d] = float32(math.Inf(1))
		ix.hi[d] = float32(math.Inf(-1))
	}
	for i := 0; i < n; i++ {
		row := ix.staged[i*ix.dim : (i+1)*ix.dim]
		for d, h := range row {
			v := f16.ToFloat32(h)
			if v < ix.lo[d] {
				ix.lo[d] = v
			}
			if v > ix.hi[d] {
				ix.hi[d] = v
			}
		}
	}
	ix.scale = make([]float32, ix.dim)
	for d := range ix.scale {
		r := ix.hi[d] - ix.lo[d]
		if r <= 0 {
			r = 1
		}
		ix.scale[d] = r / 255
	}
	ix.codes = make([]int8, n*ix.dim)
	for i := 0; i < n; i++ {
		row := ix.staged[i*ix.dim : (i+1)*ix.dim]
		out := ix.codes[i*ix.dim : (i+1)*ix.dim]
		for d, h := range row {
			v := f16.ToFloat32(h)
			q := (v - ix.lo[d]) / ix.scale[d]
			if q < 0 {
				q = 0
			}
			if q > 255 {
				q = 255
			}
			out[d] = int8(int(q+0.5) - 128)
		}
	}
	ix.staged = nil
	ix.trained = true
}

// Trained reports whether codes have been built.
func (ix *SQ8) Trained() bool { return ix.trained }

// block wraps the contiguous codes for the scan kernel.
func (ix *SQ8) block() sq8Block {
	return sq8Block{codes: ix.codes, lo: ix.lo, scale: ix.scale, dim: ix.dim}
}

// Len implements Index.
func (ix *SQ8) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *SQ8) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *SQ8) Key(id int) string { return ix.keys[id] }

// Search implements Index with an exact blocked scan over quantized codes.
func (ix *SQ8) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: SQ8 Search before Train")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	return searchBlock(ix.block(), query, k, ix.keys, nil)
}

// SearchBatch implements BatchSearcher with the tile-amortised multi-query
// kernel (each reconstructed tile is scored against the whole batch).
func (ix *SQ8) SearchBatch(queries [][]float32, k int) [][]Result {
	if !ix.trained {
		panic("vecstore: SQ8 Search before Train")
	}
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	if k <= 0 || len(ix.keys) == 0 {
		return make([][]Result, len(queries))
	}
	return searchBlockBatch(ix.block(), queries, k, ix.keys)
}

// searchReference is the retained reference scalar scan — the seed's exact
// loop: reconstruct each dimension and accumulate the products into a
// single sum, one row at a time. The blocked kernel preserves this
// accumulation order (sq8Block.Dot) so scores match bit-for-bit (see
// parity_test.go).
func (ix *SQ8) searchReference(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: SQ8 Search before Train")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	h := newTopK(k)
	for id := 0; id < len(ix.keys); id++ {
		code := ix.codes[id*ix.dim : (id+1)*ix.dim]
		var s float32
		for d, c := range code {
			s += (ix.lo[d] + (float32(int(c)+128)+0.5)*ix.scale[d]) * query[d]
		}
		h.push(id, s)
	}
	return h.results(ix.keys)
}

// MemoryBytes reports code storage (1 byte/dimension plus ranges).
func (ix *SQ8) MemoryBytes() int64 {
	return int64(ix.Len())*int64(ix.dim) + int64(8*ix.dim)
}

// Recall measures SQ8 ranking fidelity against an exact FP16 scan of the
// original full-precision vectors, when those are provided.
func (ix *SQ8) Recall(originals [][]float32, queries [][]float32, k int) float64 {
	if len(queries) == 0 || len(originals) != ix.Len() {
		return 0
	}
	flat := NewFlat(ix.dim)
	for i, v := range originals {
		flat.Add(v, ix.keys[i])
	}
	var hits, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		got := map[int]bool{}
		for _, r := range ix.Search(q, k) {
			got[r.ID] = true
		}
		for _, r := range exact {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	return float64(hits) / float64(total)
}
