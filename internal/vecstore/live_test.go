package vecstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randVec fills deterministic pseudo-random vectors for the live tests.
func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestLiveMatchesFlatUnion pins the merge-exactness property: a Live index
// (Flat base + memtable) answers bit-identically to one Flat index over
// the union corpus — same ids, same FP16 scores, same tie-breaks — across
// memtable fills of 0, 1, half and full, and k below, at and above the
// corpus size. This is the subset-merge argument from the router tier
// applied to the mutable layer: both tiers score through the same FP16
// kernel and merge under the same total order (score desc, id asc).
func TestLiveMatchesFlatUnion(t *testing.T) {
	const dim, nBase, nMem = 24, 60, 40
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float32, nBase+nMem)
	for i := range vecs {
		vecs[i] = randVec(rng, dim)
	}
	queries := make([][]float32, 9)
	for i := range queries {
		queries[i] = randVec(rng, dim)
	}

	for _, fill := range []int{0, 1, nMem / 2, nMem} {
		n := nBase + fill
		base := NewFlat(dim)
		union := NewFlat(dim)
		for i := 0; i < nBase; i++ {
			base.Add(vecs[i], fmt.Sprintf("k%03d", i))
			union.Add(vecs[i], fmt.Sprintf("k%03d", i))
		}
		live := NewLive(base, nil)
		for i := nBase; i < n; i++ {
			id := live.Add(vecs[i], fmt.Sprintf("k%03d", i))
			if id != i {
				t.Fatalf("fill=%d: Add assigned id %d, want %d", fill, id, i)
			}
			union.Add(vecs[i], fmt.Sprintf("k%03d", i))
		}
		for _, k := range []int{1, 3, 10, n, 2 * n} {
			for qi, q := range queries {
				want := union.Search(q, k)
				got := live.Search(q, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("fill=%d k=%d query=%d:\n live %v\nunion %v", fill, k, qi, got, want)
				}
			}
			gotB := live.SearchBatch(queries, k)
			wantB := union.SearchBatch(queries, k)
			for qi := range queries {
				// Search/SearchBatch normalise empties differently across
				// index families; per-query contents are the contract.
				if len(gotB[qi]) == 0 && len(wantB[qi]) == 0 {
					continue
				}
				if !reflect.DeepEqual(gotB[qi], wantB[qi]) {
					t.Fatalf("fill=%d k=%d batch query=%d:\n live %v\nunion %v", fill, k, qi, gotB[qi], wantB[qi])
				}
			}
		}
	}
}

// TestLiveCompactionPreservesResults drains the memtable in two steps
// (partial cut, then the rest) and checks after each publish that ids are
// stable and searches still answer bit-identically to the flat union —
// compaction must be invisible to readers beyond the Stats kind.
func TestLiveCompactionPreservesResults(t *testing.T) {
	const dim, nBase, nMem = 16, 30, 20
	rng := rand.New(rand.NewSource(11))
	base := NewFlat(dim)
	union := NewFlat(dim)
	for i := 0; i < nBase; i++ {
		v := randVec(rng, dim)
		base.Add(v, fmt.Sprintf("b%02d", i))
		union.Add(v, fmt.Sprintf("b%02d", i))
	}
	live := NewLive(base, nil)
	ids := make(map[string]int)
	for i := 0; i < nMem; i++ {
		v := randVec(rng, dim)
		key := fmt.Sprintf("m%02d", i)
		ids[key] = live.Add(v, key)
		union.Add(v, key)
	}
	q := randVec(rng, dim)

	for _, cut := range []int{nMem / 3, nMem - nMem/3} {
		newBase, err := live.CompactBase(cut)
		if err != nil {
			t.Fatalf("CompactBase(%d): %v", cut, err)
		}
		live = live.Rotate(newBase, cut)
		if live.Len() != nBase+nMem {
			t.Fatalf("after rotate: Len=%d, want %d", live.Len(), nBase+nMem)
		}
		for key, id := range ids {
			if got := live.Key(id); got != key {
				t.Fatalf("after rotate at %d: Key(%d)=%q, want %q", cut, id, got, key)
			}
		}
		if got, want := live.Search(q, nBase+nMem), union.Search(q, nBase+nMem); !reflect.DeepEqual(got, want) {
			t.Fatalf("after rotate at %d: results diverged\n live %v\nunion %v", cut, got, want)
		}
	}
	if live.MemLen() != 0 {
		t.Fatalf("after full drain: MemLen=%d, want 0", live.MemLen())
	}
}

// TestLiveCompactIntoIVFPQ exercises the production compaction target: the
// memtable drains into a trained IVF-PQ base through the post-train
// residual Add path. With every cell probed the scan is exhaustive, so
// every inserted key must be retrievable at k=Len after the drain.
func TestLiveCompactIntoIVFPQ(t *testing.T) {
	const dim, nBase, nMem = 16, 80, 12
	rng := rand.New(rand.NewSource(13))
	flat := NewFlat(dim)
	for i := 0; i < nBase; i++ {
		flat.Add(randVec(rng, dim), fmt.Sprintf("b%02d", i))
	}
	base := flat.ToIVFPQ(IVFPQConfig{NList: 4, NProbe: 4, M: 4, Residual: true})
	live := NewLive(base, nil)
	memVecs := make(map[string][]float32, nMem)
	for i := 0; i < nMem; i++ {
		key := fmt.Sprintf("m%02d", i)
		v := randVec(rng, dim)
		memVecs[key] = v
		live.Add(v, key)
	}
	newBase, err := live.CompactBase(nMem)
	if err != nil {
		t.Fatalf("CompactBase: %v", err)
	}
	live = live.Rotate(newBase, nMem)
	if live.MemLen() != 0 || live.Len() != nBase+nMem {
		t.Fatalf("after drain: MemLen=%d Len=%d", live.MemLen(), live.Len())
	}
	// The original base must be undisturbed by the clone's appends.
	if base.Len() != nBase {
		t.Fatalf("original base grew to %d rows", base.Len())
	}
	for key, v := range memVecs {
		found := false
		for _, r := range live.Search(v, live.Len()) {
			if r.Key == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %q not retrievable after compaction into IVF-PQ", key)
		}
	}
}

// TestLiveCompactIntoHNSW exercises the modernised graph index as the
// compaction target: the memtable drains into an HNSW base through
// CloneForAppend + incremental Add — the sub-linear mutable-base path the
// HNSW modernisation gives the live tier. Wide beams make the graph
// near-exact, so every inserted key must be retrievable at k=Len after
// the drain and the original base must be untouched.
func TestLiveCompactIntoHNSW(t *testing.T) {
	const dim, nBase, nMem = 16, 80, 12
	rng := rand.New(rand.NewSource(17))
	base := NewHNSW(HNSWConfig{Dim: dim, EfSearch: 256, EfConstruction: 128, Seed: 5})
	for i := 0; i < nBase; i++ {
		base.Add(randVec(rng, dim), fmt.Sprintf("b%02d", i))
	}
	live := NewLive(base, nil)
	memVecs := make(map[string][]float32, nMem)
	for i := 0; i < nMem; i++ {
		key := fmt.Sprintf("m%02d", i)
		v := randVec(rng, dim)
		memVecs[key] = v
		live.Add(v, key)
	}
	newBase, err := live.CompactBase(nMem)
	if err != nil {
		t.Fatalf("CompactBase: %v", err)
	}
	live = live.Rotate(newBase, nMem)
	if live.MemLen() != 0 || live.Len() != nBase+nMem {
		t.Fatalf("after drain: MemLen=%d Len=%d", live.MemLen(), live.Len())
	}
	if base.Len() != nBase {
		t.Fatalf("original base grew to %d rows", base.Len())
	}
	for key, v := range memVecs {
		found := false
		for _, r := range live.Search(v, live.Len()) {
			if r.Key == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %q not retrievable after compaction into HNSW", key)
		}
	}
}

// TestLiveCompactBaseRejects pins the error paths: a cut outside the
// memtable, and a base family without CloneForAppend.
func TestLiveCompactBaseRejects(t *testing.T) {
	live := NewLive(NewFlat(4), nil)
	live.Add([]float32{1, 0, 0, 0}, "a")
	if _, err := live.CompactBase(2); err == nil {
		t.Fatal("CompactBase beyond memtable length succeeded")
	}
	if _, err := live.CompactBase(-1); err == nil {
		t.Fatal("CompactBase(-1) succeeded")
	}
	sq := NewSQ8(4)
	sq.Add([]float32{1, 0, 0, 0}, "a")
	liveSQ := NewLive(sq, nil)
	if _, err := liveSQ.CompactBase(0); err == nil {
		t.Fatal("CompactBase on a non-cloneable base succeeded")
	}
}
