package vecstore

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/f16"
)

// IVF is an inverted-file index (FAISS IndexIVFFlat equivalent): vectors are
// partitioned into NList cells by a spherical k-means quantizer; a query
// scans only the NProbe nearest cells. Each cell's codes live in their own
// contiguous FP16 block (FAISS's inverted-list layout), so probing a cell is
// a pure streaming scan through the blocked kernel. Recall/latency trade-off
// is tested in ivf_test.go and swept by the ablation benchmarks.
type IVF struct {
	dim    int
	nprobe int
	km     *KMeans
	keys   []string
	// staged buffers codes contiguously in insertion order until Train.
	staged []uint16
	// After Train: per-cell contiguous code blocks and id postings. Row j
	// of cellCodes[c] belongs to insertion id cellIDs[c][j].
	cellIDs   [][]int
	cellCodes [][]uint16
	loc       []vecLoc // id → (cell, row), for decoding by id
	trained   bool
}

// vecLoc locates one vector inside the per-cell blocks.
type vecLoc struct {
	cell, row int32
}

// IVFConfig parameterises index construction.
type IVFConfig struct {
	Dim    int
	NList  int    // number of cells; 0 → sqrt(n) at Train time
	NProbe int    // cells scanned per query; 0 → max(1, NList/16)
	Seed   uint64 // quantizer training seed
}

// NewIVF returns an untrained IVF index. Vectors may be added before
// training; Train must be called before Search.
func NewIVF(cfg IVFConfig) *IVF {
	if cfg.Dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &IVF{
		dim:    cfg.Dim,
		nprobe: cfg.NProbe,
		km:     &KMeans{K: cfg.NList, Seed: cfg.Seed},
	}
}

// Add implements Index. Vectors added after training are routed to their
// cell immediately; before training they are only buffered.
func (ix *IVF) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to IVF of dim %d", len(vec), ix.dim))
	}
	id := len(ix.keys)
	ix.keys = append(ix.keys, key)
	if ix.trained {
		c := ix.km.Nearest(vec)
		ix.loc = append(ix.loc, vecLoc{cell: int32(c), row: int32(len(ix.cellIDs[c]))})
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		ix.cellCodes[c] = f16.AppendEncoded(ix.cellCodes[c], vec)
	} else {
		ix.staged = f16.AppendEncoded(ix.staged, vec)
	}
	return id
}

// rowCodes returns the FP16 codes of insertion id.
func (ix *IVF) rowCodes(id int) []uint16 {
	if !ix.trained {
		return ix.staged[id*ix.dim : (id+1)*ix.dim]
	}
	l := ix.loc[id]
	return ix.cellCodes[l.cell][int(l.row)*ix.dim : (int(l.row)+1)*ix.dim]
}

// Train fits the coarse quantizer on all buffered vectors and assigns them
// to per-cell contiguous blocks. It panics if the index is empty.
func (ix *IVF) Train() {
	n := len(ix.keys)
	if n == 0 {
		panic("vecstore: Train on empty IVF")
	}
	if ix.km.K <= 0 {
		ix.km.K = int(math.Sqrt(float64(n)))
		if ix.km.K < 1 {
			ix.km.K = 1
		}
	}
	if ix.km.K > n {
		ix.km.K = n
	}
	if ix.nprobe <= 0 {
		ix.nprobe = ix.km.K / 16
		if ix.nprobe < 1 {
			ix.nprobe = 1
		}
	} else if ix.nprobe > ix.km.K {
		// A SetNProbe before Train may exceed an auto-sized or shrunk K.
		ix.nprobe = ix.km.K
	}
	full := make([][]float32, n)
	for i := range full {
		full[i] = f16.Decode(ix.staged[i*ix.dim : (i+1)*ix.dim])
	}
	ix.km.Train(full)
	// Assign, then pack each cell's codes into one contiguous block.
	assign := make([]int, n)
	counts := make([]int, ix.km.K)
	for id, v := range full {
		c := ix.km.Nearest(v)
		assign[id] = c
		counts[c]++
	}
	ix.cellIDs = make([][]int, ix.km.K)
	ix.cellCodes = make([][]uint16, ix.km.K)
	for c, cnt := range counts {
		ix.cellIDs[c] = make([]int, 0, cnt)
		ix.cellCodes[c] = make([]uint16, 0, cnt*ix.dim)
	}
	ix.loc = make([]vecLoc, n)
	for id := 0; id < n; id++ {
		c := assign[id]
		ix.loc[id] = vecLoc{cell: int32(c), row: int32(len(ix.cellIDs[c]))}
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		ix.cellCodes[c] = append(ix.cellCodes[c], ix.staged[id*ix.dim:(id+1)*ix.dim]...)
	}
	ix.staged = nil
	ix.trained = true
}

// Trained reports whether the quantizer has been fitted.
func (ix *IVF) Trained() bool { return ix.trained }

// SetNProbe adjusts the number of cells scanned per query (recall knob).
func (ix *IVF) SetNProbe(n int) {
	if n < 1 {
		n = 1
	}
	if ix.trained && n > ix.km.K {
		n = ix.km.K
	}
	ix.nprobe = n
}

// NProbe returns the current probe count.
func (ix *IVF) NProbe() int { return ix.nprobe }

// NList returns the number of cells (0 before training when auto-sized).
func (ix *IVF) NList() int { return ix.km.K }

// Len implements Index.
func (ix *IVF) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *IVF) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *IVF) Key(id int) string { return ix.keys[id] }

// Search implements Index by streaming the nprobe nearest cells through the
// blocked scan kernel.
func (ix *IVF) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVF")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	probes := ix.km.NearestN(query, ix.nprobe)
	h := getTopK(k)
	for _, c := range probes {
		scanTopK(halfBlock{codes: ix.cellCodes[c], dim: ix.dim}, query, h, ix.cellIDs[c], 0)
	}
	res := h.results(ix.keys)
	putTopK(h)
	return res
}

// SearchBatch implements BatchSearcher: queries are grouped by probed cell
// so each cell's block is decoded once per tile for every query probing it,
// and cells are scanned in parallel.
func (ix *IVF) SearchBatch(queries [][]float32, k int) [][]Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVF")
	}
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	out := make([][]Result, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	// Probe assignment, fanned out over queries.
	probes := make([][]int, len(queries))
	parallelFor(len(queries), 0, func(qi int) {
		probes[qi] = ix.km.NearestN(queries[qi], ix.nprobe)
	})
	// Invert: cell → indices of the queries probing it.
	perCell := make([][]int32, ix.km.K)
	for qi, ps := range probes {
		for _, c := range ps {
			perCell[c] = append(perCell[c], int32(qi))
		}
	}
	work := make([]int, 0, ix.km.K)
	for c, qs := range perCell {
		if len(qs) > 0 && len(ix.cellIDs[c]) > 0 {
			work = append(work, c)
		}
	}
	// Scan cells in parallel; each produces one partial heap per
	// interested query, merged per query afterwards.
	partial := make([][]*topK, len(work))
	parallelFor(len(work), 0, func(wi int) {
		c := work[wi]
		qs := perCell[c]
		qsub := make([][]float32, len(qs))
		hs := make([]*topK, len(qs))
		for i, qi := range qs {
			qsub[i] = queries[qi]
			hs[i] = getTopK(k)
		}
		scanBatchTopK(halfBlock{codes: ix.cellCodes[c], dim: ix.dim}, qsub, hs, ix.cellIDs[c], 0)
		partial[wi] = hs
	})
	final := make([]*topK, len(queries))
	for wi, c := range work {
		for i, qi := range perCell[c] {
			h := partial[wi][i]
			if final[qi] == nil {
				final[qi] = h
				continue
			}
			f := final[qi]
			for j, id := range h.ids {
				f.push(id, h.scores[j])
			}
			putTopK(h)
		}
	}
	for qi := range out {
		if final[qi] == nil {
			// All probed cells were empty; Search returns a non-nil empty
			// slice in this case, so match it.
			out[qi] = []Result{}
			continue
		}
		out[qi] = final[qi].results(ix.keys)
		putTopK(final[qi])
	}
	return out
}

// searchReference is the retained reference scalar scan over the probed
// cells (see parity_test.go).
func (ix *IVF) searchReference(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVF")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	probes := ix.km.NearestN(query, ix.nprobe)
	h := newTopK(k)
	for _, c := range probes {
		block := ix.cellCodes[c]
		for row, id := range ix.cellIDs[c] {
			h.push(id, f16.Dot(block[row*ix.dim:(row+1)*ix.dim], query))
		}
	}
	return h.results(ix.keys)
}

// parallelFor runs fn(i) for i in [0,n) across workers goroutines with an
// atomic work counter; workers <= 0 selects GOMAXPROCS. It is the shared
// query/cell fan-out used by SearchBatch and the BatchSearch fallback.
func parallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MemoryBytes reports approximate vector storage size.
func (ix *IVF) MemoryBytes() int64 {
	return int64(len(ix.keys)) * int64(f16.BytesPerVector(ix.dim))
}

// Recall measures the fraction of exact top-k neighbours (per a Flat scan of
// the same data) that the IVF search returns, averaged over the queries.
// Used by tests and the ablation bench to quantify the recall/latency
// trade-off.
func (ix *IVF) Recall(queries [][]float32, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	flat := NewFlat(ix.dim)
	buf := make([]float32, ix.dim)
	for id := range ix.keys {
		f16.DecodeInto(buf, ix.rowCodes(id))
		flat.Add(buf, ix.keys[id])
	}
	var hits, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		approx := ix.Search(q, k)
		got := make(map[int]bool, len(approx))
		for _, r := range approx {
			got[r.ID] = true
		}
		for _, r := range exact {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
