package vecstore

import (
	"fmt"
	"math"

	"repro/internal/f16"
)

// IVF is an inverted-file index (FAISS IndexIVFFlat equivalent): vectors are
// partitioned into NList cells by a spherical k-means quantizer; a query
// scans only the NProbe nearest cells. Recall/latency trade-off is tested in
// ivf_test.go and swept by the ablation benchmarks.
type IVF struct {
	dim    int
	nprobe int
	km     *KMeans
	// Per-cell postings.
	cells [][]int // vector ids per cell
	vecs  [][]uint16
	keys  []string
	// Pending vectors added before Train; flushed at Train time.
	trained bool
}

// IVFConfig parameterises index construction.
type IVFConfig struct {
	Dim    int
	NList  int    // number of cells; 0 → sqrt(n) at Train time
	NProbe int    // cells scanned per query; 0 → max(1, NList/16)
	Seed   uint64 // quantizer training seed
}

// NewIVF returns an untrained IVF index. Vectors may be added before
// training; Train must be called before Search.
func NewIVF(cfg IVFConfig) *IVF {
	if cfg.Dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &IVF{
		dim:    cfg.Dim,
		nprobe: cfg.NProbe,
		km:     &KMeans{K: cfg.NList, Seed: cfg.Seed},
	}
}

// Add implements Index. Vectors added after training are routed to their
// cell immediately; before training they are only buffered.
func (ix *IVF) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to IVF of dim %d", len(vec), ix.dim))
	}
	id := len(ix.vecs)
	ix.vecs = append(ix.vecs, f16.Encode(vec))
	ix.keys = append(ix.keys, key)
	if ix.trained {
		c := ix.km.Nearest(vec)
		ix.cells[c] = append(ix.cells[c], id)
	}
	return id
}

// Train fits the coarse quantizer on all buffered vectors and assigns them
// to cells. It panics if the index is empty.
func (ix *IVF) Train() {
	if len(ix.vecs) == 0 {
		panic("vecstore: Train on empty IVF")
	}
	if ix.km.K <= 0 {
		ix.km.K = int(math.Sqrt(float64(len(ix.vecs))))
		if ix.km.K < 1 {
			ix.km.K = 1
		}
	}
	if ix.km.K > len(ix.vecs) {
		ix.km.K = len(ix.vecs)
	}
	if ix.nprobe <= 0 {
		ix.nprobe = ix.km.K / 16
		if ix.nprobe < 1 {
			ix.nprobe = 1
		}
	}
	full := make([][]float32, len(ix.vecs))
	for i, h := range ix.vecs {
		full[i] = f16.Decode(h)
	}
	ix.km.Train(full)
	ix.cells = make([][]int, ix.km.K)
	for id, v := range full {
		c := ix.km.Nearest(v)
		ix.cells[c] = append(ix.cells[c], id)
	}
	ix.trained = true
}

// Trained reports whether the quantizer has been fitted.
func (ix *IVF) Trained() bool { return ix.trained }

// SetNProbe adjusts the number of cells scanned per query (recall knob).
func (ix *IVF) SetNProbe(n int) {
	if n < 1 {
		n = 1
	}
	if ix.trained && n > ix.km.K {
		n = ix.km.K
	}
	ix.nprobe = n
}

// NProbe returns the current probe count.
func (ix *IVF) NProbe() int { return ix.nprobe }

// NList returns the number of cells (0 before training when auto-sized).
func (ix *IVF) NList() int { return ix.km.K }

// Len implements Index.
func (ix *IVF) Len() int { return len(ix.vecs) }

// Dim implements Index.
func (ix *IVF) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *IVF) Key(id int) string { return ix.keys[id] }

// Search implements Index by probing the nprobe nearest cells.
func (ix *IVF) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVF")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	probes := ix.km.NearestN(query, ix.nprobe)
	h := newTopK(k)
	for _, c := range probes {
		for _, id := range ix.cells[c] {
			h.push(id, f16.Dot(ix.vecs[id], query))
		}
	}
	return h.results(ix.keys)
}

// MemoryBytes reports approximate vector storage size.
func (ix *IVF) MemoryBytes() int64 {
	return int64(len(ix.vecs)) * int64(f16.BytesPerVector(ix.dim))
}

// Recall measures the fraction of exact top-k neighbours (per a Flat scan of
// the same data) that the IVF search returns, averaged over the queries.
// Used by tests and the ablation bench to quantify the recall/latency
// trade-off.
func (ix *IVF) Recall(queries [][]float32, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	flat := NewFlat(ix.dim)
	for id, h := range ix.vecs {
		flat.Add(f16.Decode(h), ix.keys[id])
	}
	var hits, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		approx := ix.Search(q, k)
		got := make(map[int]bool, len(approx))
		for _, r := range approx {
			got[r.ID] = true
		}
		for _, r := range exact {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
