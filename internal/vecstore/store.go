// Package vecstore is the vector-database substrate standing in for FAISS.
//
// The paper stores 173,318 PubMedBERT chunk embeddings as FP16 in FAISS and
// three additional stores of reasoning-trace embeddings. This package
// provides the same capabilities in pure Go:
//
//   - Flat: exact inner-product / cosine search (FAISS IndexFlatIP),
//   - IVF: inverted-file index with a k-means coarse quantizer and nprobe
//     search (FAISS IndexIVFFlat), trading recall for throughput,
//   - FP16 vector storage (internal/f16), halving memory as in the paper's
//     747 MB store,
//   - attached per-vector metadata payloads (ids, provenance),
//   - binary persistence, and parallel batch search.
//
// All indexes are safe for concurrent Search after construction; Add is not
// concurrent with Search.
package vecstore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/f16"
)

// Result is one search hit.
type Result struct {
	ID    int     // position of the vector in insertion order
	Score float32 // inner product with the query (cosine for unit vectors)
	Key   string  // the metadata key attached at Add time
}

// Index is the common interface of Flat and IVF indexes.
type Index interface {
	// Add appends a vector with an associated metadata key. The vector is
	// copied into FP16 storage. Returns the assigned id.
	Add(vec []float32, key string) int
	// Search returns the top-k vectors by inner product with the query,
	// in descending score order.
	Search(query []float32, k int) []Result
	// Len reports the number of stored vectors.
	Len() int
	// Dim reports the vector dimensionality.
	Dim() int
}

// Flat is an exact exhaustive-scan index.
type Flat struct {
	dim  int
	vecs [][]uint16
	keys []string
}

// NewFlat returns an empty exact index of the given dimensionality.
func NewFlat(dim int) *Flat {
	if dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &Flat{dim: dim}
}

// Add implements Index.
func (ix *Flat) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to index of dim %d", len(vec), ix.dim))
	}
	ix.vecs = append(ix.vecs, f16.Encode(vec))
	ix.keys = append(ix.keys, key)
	return len(ix.vecs) - 1
}

// Len implements Index.
func (ix *Flat) Len() int { return len(ix.vecs) }

// Dim implements Index.
func (ix *Flat) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *Flat) Key(id int) string { return ix.keys[id] }

// Vector decodes and returns the stored vector for id.
func (ix *Flat) Vector(id int) []float32 { return f16.Decode(ix.vecs[id]) }

// Search implements Index with an exact scan.
func (ix *Flat) Search(query []float32, k int) []Result {
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.vecs) == 0 {
		return nil
	}
	h := newTopK(k)
	for id, v := range ix.vecs {
		h.push(id, f16.Dot(v, query))
	}
	return h.results(ix.keys)
}

// MemoryBytes reports the approximate size of vector storage, for
// dataset-statistics reporting (the paper quotes 747 MB FP16).
func (ix *Flat) MemoryBytes() int64 {
	return int64(len(ix.vecs)) * int64(f16.BytesPerVector(ix.dim))
}

// topK is a bounded min-heap of (id, score) keeping the k largest scores.
type topK struct {
	k      int
	ids    []int
	scores []float32
}

func newTopK(k int) *topK {
	return &topK{k: k, ids: make([]int, 0, k+1), scores: make([]float32, 0, k+1)}
}

func (h *topK) push(id int, score float32) {
	if len(h.ids) < h.k {
		h.ids = append(h.ids, id)
		h.scores = append(h.scores, score)
		h.up(len(h.ids) - 1)
		return
	}
	if score <= h.scores[0] {
		return
	}
	h.ids[0], h.scores[0] = id, score
	h.down(0)
}

func (h *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.scores[p] <= h.scores[i] {
			break
		}
		h.scores[p], h.scores[i] = h.scores[i], h.scores[p]
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		i = p
	}
}

func (h *topK) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.scores[l] < h.scores[small] {
			small = l
		}
		if r < n && h.scores[r] < h.scores[small] {
			small = r
		}
		if small == i {
			return
		}
		h.scores[small], h.scores[i] = h.scores[i], h.scores[small]
		h.ids[small], h.ids[i] = h.ids[i], h.ids[small]
		i = small
	}
}

// results drains the heap into descending-score order and attaches keys.
func (h *topK) results(keys []string) []Result {
	out := make([]Result, len(h.ids))
	for i := range out {
		out[i] = Result{ID: h.ids[i], Score: h.scores[i], Key: keys[h.ids[i]]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// BatchSearch runs many queries against an index in parallel, preserving
// query order. workers <= 0 selects GOMAXPROCS. This is the retrieval fan-out
// used by the evaluation harness (16,680 questions × 5 conditions).
func BatchSearch(ix Index, queries [][]float32, k, workers int) [][]Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]Result, len(queries))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(queries) {
					return
				}
				out[i] = ix.Search(queries[i], k)
			}
		}()
	}
	wg.Wait()
	return out
}
