package vecstore

import (
	"fmt"
	"sort"

	"repro/internal/f16"
)

// Result is one search hit.
type Result struct {
	ID    int     // position of the vector in insertion order
	Score float32 // inner product with the query (cosine for unit vectors)
	Key   string  // the metadata key attached at Add time
}

// Index is the common interface of the package's indexes.
type Index interface {
	// Add appends a vector with an associated metadata key. The vector is
	// copied into FP16 storage. Returns the assigned id.
	Add(vec []float32, key string) int
	// Search returns the top-k vectors by inner product with the query,
	// in descending score order.
	Search(query []float32, k int) []Result
	// Len reports the number of stored vectors.
	Len() int
	// Dim reports the vector dimensionality.
	Dim() int
}

// BatchSearcher is implemented by indexes with a native multi-query scan
// kernel that amortises code decoding across a whole batch of queries
// (Flat, IVF, SQ8). BatchSearch delegates to it when available.
type BatchSearcher interface {
	Index
	// SearchBatch answers all queries at once, returning per-query results
	// in query order. Each result slice is identical to what Search would
	// return for that query.
	SearchBatch(queries [][]float32, k int) [][]Result
}

// Flat is an exact exhaustive-scan index over one contiguous FP16 code
// block.
type Flat struct {
	dim   int
	codes []uint16 // row i at codes[i*dim:(i+1)*dim]
	keys  []string
}

// NewFlat returns an empty exact index of the given dimensionality.
func NewFlat(dim int) *Flat {
	if dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &Flat{dim: dim}
}

// Add implements Index.
func (ix *Flat) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to index of dim %d", len(vec), ix.dim))
	}
	ix.codes = f16.AppendEncoded(ix.codes, vec)
	ix.keys = append(ix.keys, key)
	return len(ix.keys) - 1
}

// Len implements Index.
func (ix *Flat) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *Flat) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *Flat) Key(id int) string { return ix.keys[id] }

// row returns the FP16 codes of row id.
func (ix *Flat) row(id int) []uint16 { return ix.codes[id*ix.dim : (id+1)*ix.dim] }

// Vector decodes and returns the stored vector for id. Hot readers should
// prefer VectorInto, which reuses a caller-supplied buffer.
func (ix *Flat) Vector(id int) []float32 {
	out := make([]float32, ix.dim)
	ix.VectorInto(out, id)
	return out
}

// VectorInto decodes the stored vector for id into dst, whose length must
// equal Dim. It performs no allocation.
func (ix *Flat) VectorInto(dst []float32, id int) {
	f16.DecodeInto(dst, ix.row(id))
}

// Search implements Index with an exact blocked scan (segment-parallel for
// large indexes).
func (ix *Flat) Search(query []float32, k int) []Result {
	return ix.SearchInto(query, k, nil)
}

// SearchInto is Search appending into dst[:0], letting steady-state callers
// reuse one result buffer across queries for a zero-allocation search path.
func (ix *Flat) SearchInto(query []float32, k int, dst []Result) []Result {
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return dst[:0]
	}
	return searchBlock(halfBlock{codes: ix.codes, dim: ix.dim}, query, k, ix.keys, dst[:0])
}

// SearchBatch implements BatchSearcher with the tile-amortised multi-query
// kernel.
func (ix *Flat) SearchBatch(queries [][]float32, k int) [][]Result {
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	if k <= 0 || len(ix.keys) == 0 {
		return make([][]Result, len(queries))
	}
	return searchBlockBatch(halfBlock{codes: ix.codes, dim: ix.dim}, queries, k, ix.keys)
}

// searchReference is the retained reference scalar scan: one row decoded
// and scored at a time, no tiling, no pooling, no parallelism. The blocked
// kernel must reproduce it bit-for-bit (see parity_test.go).
func (ix *Flat) searchReference(query []float32, k int) []Result {
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	h := newTopK(k)
	for id := 0; id < len(ix.keys); id++ {
		h.push(id, f16.Dot(ix.row(id), query))
	}
	return h.results(ix.keys)
}

// MemoryBytes reports the approximate size of vector storage, for
// dataset-statistics reporting (the paper quotes 747 MB FP16).
func (ix *Flat) MemoryBytes() int64 {
	return int64(len(ix.keys)) * int64(f16.BytesPerVector(ix.dim))
}

// topK is a bounded heap of (id, score) keeping the k best entries under
// the total order "score descending, then id ascending". The root is the
// worst retained entry. Using a total order (rather than score alone)
// makes the selection a pure function of the pushed set, so per-segment
// heaps merge into exactly the sequential result.
type topK struct {
	k      int
	ids    []int
	scores []float32
}

func newTopK(k int) *topK {
	return &topK{k: k, ids: make([]int, 0, k+1), scores: make([]float32, 0, k+1)}
}

// worse reports whether entry (s1,id1) ranks strictly below (s2,id2).
func worse(s1 float32, id1 int, s2 float32, id2 int) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return id1 > id2
}

func (h *topK) push(id int, score float32) {
	if len(h.ids) < h.k {
		h.ids = append(h.ids, id)
		h.scores = append(h.scores, score)
		h.up(len(h.ids) - 1)
		return
	}
	if !worse(h.scores[0], h.ids[0], score, id) {
		return
	}
	h.ids[0], h.scores[0] = id, score
	h.down(0)
}

func (h *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(h.scores[i], h.ids[i], h.scores[p], h.ids[p]) {
			break
		}
		h.scores[p], h.scores[i] = h.scores[i], h.scores[p]
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		i = p
	}
}

func (h *topK) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && worse(h.scores[l], h.ids[l], h.scores[small], h.ids[small]) {
			small = l
		}
		if r < n && worse(h.scores[r], h.ids[r], h.scores[small], h.ids[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.scores[small], h.scores[i] = h.scores[i], h.scores[small]
		h.ids[small], h.ids[i] = h.ids[i], h.ids[small]
		i = small
	}
}

// results drains the heap into descending order and attaches keys.
func (h *topK) results(keys []string) []Result {
	return h.appendResults(make([]Result, 0, len(h.ids)), keys)
}

// appendResults appends the heap's entries to dst in descending order.
func (h *topK) appendResults(dst []Result, keys []string) []Result {
	start := len(dst)
	for i, id := range h.ids {
		dst = append(dst, Result{ID: id, Score: h.scores[i], Key: keys[id]})
	}
	sortResults(dst[start:])
	return dst
}

// sortResults orders results by score descending, id ascending. Small
// slices (the usual top-k) use an allocation-free insertion sort.
func sortResults(rs []Result) {
	if len(rs) <= 64 {
		for i := 1; i < len(rs); i++ {
			x := rs[i]
			j := i
			for j > 0 && worse(rs[j-1].Score, rs[j-1].ID, x.Score, x.ID) {
				rs[j] = rs[j-1]
				j--
			}
			rs[j] = x
		}
		return
	}
	sort.Slice(rs, func(i, j int) bool {
		return worse(rs[j].Score, rs[j].ID, rs[i].Score, rs[i].ID)
	})
}

// IndexStats describes an index's storage profile for reports (the
// recall/memory/QPS trade-off tables rendered by internal/eval).
type IndexStats struct {
	Kind    string // index family, e.g. "Flat(FP16)", "PQ(m=48)"
	Vectors int
	Dim     int
	Bytes   int64 // vector/code storage incl. codebooks, excl. keys
}

// BytesPerVector returns the per-row storage cost, codebooks amortised.
func (s IndexStats) BytesPerVector() float64 {
	if s.Vectors == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Vectors)
}

// StatsOf inspects an index's concrete type and reports its storage
// profile. Unknown index types report Kind "?" and zero bytes.
func StatsOf(ix Index) IndexStats {
	st := IndexStats{Kind: "?", Vectors: ix.Len(), Dim: ix.Dim()}
	type sized interface{ MemoryBytes() int64 }
	if m, ok := ix.(sized); ok {
		st.Bytes = m.MemoryBytes()
	}
	switch v := ix.(type) {
	case *Flat:
		st.Kind = "Flat(FP16)"
	case *SQ8:
		st.Kind = "SQ8"
	case *IVF:
		st.Kind = fmt.Sprintf("IVF(nlist=%d,nprobe=%d)", v.NList(), v.NProbe())
	case *PQ:
		st.Kind = fmt.Sprintf("PQ(m=%d)", v.M())
	case *IVFPQ:
		variant := ""
		if vr := v.Variant(); vr != "" {
			variant = "," + vr
		}
		st.Kind = fmt.Sprintf("IVF-PQ(nlist=%d,nprobe=%d,m=%d%s)", v.NList(), v.NProbe(), v.M(), variant)
	case *HNSW:
		st.Kind = fmt.Sprintf("HNSW(M=%d,efSearch=%d)", v.M(), v.EfSearch())
	case *Memtable:
		st.Kind = "Memtable(FP16)"
	case *Live:
		st.Kind = fmt.Sprintf("Live(%s, mem=%d)", StatsOf(v.Base()).Kind, v.MemLen())
	}
	return st
}

// BatchSearch runs many queries against an index, preserving query order.
// Indexes with a native multi-query kernel (BatchSearcher) answer the
// whole batch through it, amortising tile decoding across queries; other
// indexes fall back to a query-level fan-out over an atomic work counter.
// workers <= 0 selects GOMAXPROCS (the fan-out path only; the kernel
// manages its own parallelism). This is the retrieval fan-out used by the
// evaluation harness (16,680 questions × 5 conditions).
func BatchSearch(ix Index, queries [][]float32, k, workers int) [][]Result {
	if bs, ok := ix.(BatchSearcher); ok && len(queries) > 0 {
		return bs.SearchBatch(queries, k)
	}
	out := make([][]Result, len(queries))
	parallelFor(len(queries), workers, func(i int) {
		out[i] = ix.Search(queries[i], k)
	})
	return out
}
