package vecstore

import "time"

// ScanTiming splits one batch search into the kernel's two phases: Scan is
// the segment-parallel tile scan (plus any per-index pre-work folded into
// it), Merge the heap folds that produce final descending order. It feeds
// the serving layer's per-stage latency histograms and span timelines —
// the decomposition the SIMD-kernel work will be measured against.
type ScanTiming struct {
	Scan  time.Duration
	Merge time.Duration
}

// TimedBatchSearcher is implemented by indexes whose batch kernel can
// report the scan/merge split natively (Flat, Live). Indexes without it
// still time out-of-line through BatchSearchTimed's fallback, which books
// the whole call as Scan.
type TimedBatchSearcher interface {
	BatchSearcher
	// SearchBatchTimed is SearchBatch plus phase timing; results are
	// bit-identical to SearchBatch for the same inputs.
	SearchBatchTimed(queries [][]float32, k int) ([][]Result, ScanTiming)
}

// BatchSearchTimed is BatchSearch plus phase timing: indexes with a timed
// kernel report their real scan/merge split, every other index books its
// whole batch under Scan — honest in the sense that the serving layer
// never invents a merge phase the index didn't report.
func BatchSearchTimed(ix Index, queries [][]float32, k, workers int) ([][]Result, ScanTiming) {
	if ts, ok := ix.(TimedBatchSearcher); ok && len(queries) > 0 {
		return ts.SearchBatchTimed(queries, k)
	}
	start := time.Now()
	res := BatchSearch(ix, queries, k, workers)
	return res, ScanTiming{Scan: time.Since(start)}
}

// SearchBatchTimed implements TimedBatchSearcher with the tile-amortised
// multi-query kernel's native phase split.
func (ix *Flat) SearchBatchTimed(queries [][]float32, k int) ([][]Result, ScanTiming) {
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	if k <= 0 || len(ix.keys) == 0 {
		return make([][]Result, len(queries)), ScanTiming{}
	}
	return searchBlockBatchTimed(halfBlock{codes: ix.codes, dim: ix.dim}, queries, k, ix.keys)
}

// SearchBatchTimed implements TimedBatchSearcher for the graph index.
// Beam traversals have no tile-amortised merge phase, so the whole
// query-per-worker fan-out is booked under Scan (the honest split: the
// per-query beam already returns descending order, there is nothing to
// fold).
func (h *HNSW) SearchBatchTimed(queries [][]float32, k int) ([][]Result, ScanTiming) {
	for _, q := range queries {
		if len(q) != h.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	out := make([][]Result, len(queries))
	var tm ScanTiming
	if k <= 0 || len(queries) == 0 || h.entry < 0 {
		return out, tm
	}
	start := time.Now()
	parallelFor(len(queries), 0, func(i int) {
		out[i] = h.Search(queries[i], k)
	})
	tm.Scan = time.Since(start)
	return out, tm
}

// SearchBatchTimed implements TimedBatchSearcher for the mutable layer:
// Scan covers the base kernel plus the memtable snapshot scan, Merge the
// per-query fold of the two result sets under the stores' total order.
func (lv *Live) SearchBatchTimed(queries [][]float32, k int) ([][]Result, ScanTiming) {
	for _, q := range queries {
		if len(q) != lv.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	out := make([][]Result, len(queries))
	var tm ScanTiming
	if k <= 0 || len(queries) == 0 {
		return out, tm
	}
	scanStart := time.Now()
	var base [][]Result
	if lv.nb > 0 {
		base = BatchSearch(lv.base, queries, k, 0)
	}
	mem := lv.mem.SearchBatch(queries, k)
	tm.Scan = time.Since(scanStart)
	mergeStart := time.Now()
	for qi := range queries {
		var b []Result
		if base != nil {
			b = base[qi]
		}
		out[qi] = mergeLive(b, mem[qi], lv.nb, k)
	}
	tm.Merge = time.Since(mergeStart)
	return out, tm
}
