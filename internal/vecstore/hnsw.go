package vecstore

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/f16"
	"repro/internal/rng"
)

// HNSW is a hierarchical navigable small-world graph index (the FAISS
// IndexHNSWFlat equivalent): greedy search descends random-level layers of
// a proximity graph, giving sub-linear query time without training. Unlike
// IVF it needs no k-means pass and supports pure incremental construction,
// which suits the pipeline's streaming ingestion of trace embeddings.
//
// Vectors are stored FP16 like the other indexes. Construction is
// deterministic given the seed.
type HNSW struct {
	dim            int
	m              int // max neighbours per node per layer (level 0 uses 2M)
	efConstruction int
	efSearch       int
	seed           uint64

	vecs   [][]uint16
	keys   []string
	levels []int
	// links[level][node] → neighbour ids. Level 0 holds every node.
	links []map[int][]int
	entry int // entry point (highest-level node)
	maxLv int
	rand  *rng.Source
}

// HNSWConfig parameterises graph construction and search.
type HNSWConfig struct {
	Dim            int
	M              int // default 16
	EfConstruction int // default 64
	EfSearch       int // default 32
	Seed           uint64
}

// NewHNSW returns an empty HNSW index.
func NewHNSW(cfg HNSWConfig) *HNSW {
	if cfg.Dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 64
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 32
	}
	return &HNSW{
		dim:            cfg.Dim,
		m:              cfg.M,
		efConstruction: cfg.EfConstruction,
		efSearch:       cfg.EfSearch,
		seed:           cfg.Seed,
		entry:          -1,
		maxLv:          -1,
		rand:           rng.New(cfg.Seed).Split("hnsw"),
	}
}

// SetEfSearch adjusts the search beam width (recall knob).
func (h *HNSW) SetEfSearch(ef int) {
	if ef < 1 {
		ef = 1
	}
	h.efSearch = ef
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.vecs) }

// Dim implements Index.
func (h *HNSW) Dim() int { return h.dim }

// Key returns the metadata key for id.
func (h *HNSW) Key(id int) string { return h.keys[id] }

// randomLevel draws a node's top layer from the standard geometric
// distribution with normalisation 1/ln(M).
func (h *HNSW) randomLevel() int {
	u := h.rand.Float64()
	for u == 0 {
		u = h.rand.Float64()
	}
	return int(-math.Log(u) / math.Log(float64(h.m)))
}

func (h *HNSW) score(id int, q []float32) float32 {
	return f16.Dot(h.vecs[id], q)
}

// Add implements Index, inserting the vector into the graph.
func (h *HNSW) Add(vec []float32, key string) int {
	if len(vec) != h.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to HNSW of dim %d", len(vec), h.dim))
	}
	id := len(h.vecs)
	h.vecs = append(h.vecs, f16.Encode(vec))
	h.keys = append(h.keys, key)
	level := h.randomLevel()
	h.levels = append(h.levels, level)
	for len(h.links) <= level {
		h.links = append(h.links, make(map[int][]int))
	}

	if h.entry < 0 {
		h.entry, h.maxLv = id, level
		return id
	}

	// Greedy descent from the global entry to the insertion level.
	cur := h.entry
	for lv := h.maxLv; lv > level; lv-- {
		cur = h.greedyClosest(vec, cur, lv)
	}
	// Insert at each level from min(level, maxLv) down to 0.
	for lv := min(level, h.maxLv); lv >= 0; lv-- {
		cands := h.searchLayer(vec, cur, h.efConstruction, lv)
		neighbours := h.selectNeighbours(cands, h.maxLinks(lv))
		h.links[lv][id] = neighbours
		for _, n := range neighbours {
			h.links[lv][n] = append(h.links[lv][n], id)
			if cap := h.maxLinks(lv); len(h.links[lv][n]) > cap {
				h.links[lv][n] = h.pruneNeighbours(n, lv, cap)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].id
		}
	}
	if level > h.maxLv {
		h.entry, h.maxLv = id, level
	}
	return id
}

func (h *HNSW) maxLinks(level int) int {
	if level == 0 {
		return 2 * h.m
	}
	return h.m
}

type scored struct {
	id    int
	score float32
}

// greedyClosest walks level lv greedily towards the query.
func (h *HNSW) greedyClosest(q []float32, start, lv int) int {
	cur := start
	curScore := h.score(cur, q)
	for {
		improved := false
		for _, n := range h.links[lv][cur] {
			if s := h.score(n, q); s > curScore {
				cur, curScore = n, s
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search of the HNSW paper: returns up to ef
// candidates on level lv sorted by descending score.
func (h *HNSW) searchLayer(q []float32, start, ef, lv int) []scored {
	visited := map[int]bool{start: true}
	startS := scored{start, h.score(start, q)}
	// Candidate max-queue and result min-set, both kept as sorted slices
	// (ef is small; O(ef) insertion is fine and allocation-light).
	cands := []scored{startS}
	results := []scored{startS}
	for len(cands) > 0 {
		// Pop best candidate.
		c := cands[0]
		cands = cands[1:]
		worst := results[len(results)-1]
		if c.score < worst.score && len(results) >= ef {
			break
		}
		for _, n := range h.links[lv][c.id] {
			if visited[n] {
				continue
			}
			visited[n] = true
			s := scored{n, h.score(n, q)}
			if len(results) < ef || s.score > results[len(results)-1].score {
				cands = insertSorted(cands, s)
				results = insertSorted(results, s)
				if len(results) > ef {
					results = results[:ef]
				}
			}
		}
	}
	return results
}

// insertSorted inserts s into a descending-score slice.
func insertSorted(xs []scored, s scored) []scored {
	i := sort.Search(len(xs), func(i int) bool { return xs[i].score < s.score })
	xs = append(xs, scored{})
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}

// selectNeighbours keeps the top-n candidates (simple heuristic).
func (h *HNSW) selectNeighbours(cands []scored, n int) []int {
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// pruneNeighbours re-selects node's best cap links on level lv.
func (h *HNSW) pruneNeighbours(node, lv, cap int) []int {
	vec := f16.Decode(h.vecs[node])
	links := h.links[lv][node]
	cands := make([]scored, 0, len(links))
	for _, n := range links {
		cands = append(cands, scored{n, h.score(n, vec)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	return h.selectNeighbours(cands, cap)
}

// Search implements Index.
func (h *HNSW) Search(query []float32, k int) []Result {
	if len(query) != h.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || h.entry < 0 {
		return nil
	}
	cur := h.entry
	for lv := h.maxLv; lv > 0; lv-- {
		cur = h.greedyClosest(query, cur, lv)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, cur, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Score: c.score, Key: h.keys[c.id]}
	}
	return out
}

// Recall measures HNSW recall against an exact scan of the same data.
func (h *HNSW) Recall(queries [][]float32, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	flat := NewFlat(h.dim)
	for id, v := range h.vecs {
		flat.Add(f16.Decode(v), h.keys[id])
	}
	var hits, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		got := map[int]bool{}
		for _, r := range h.Search(q, k) {
			got[r.ID] = true
		}
		for _, r := range exact {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	return float64(hits) / float64(total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
