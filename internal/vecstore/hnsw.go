package vecstore

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/f16"
	"repro/internal/rng"
)

// HNSW is a hierarchical navigable small-world graph index (the FAISS
// IndexHNSWFlat equivalent): greedy search descends random-level layers of
// a proximity graph, giving sub-linear query time without training. Unlike
// IVF it needs no k-means pass and supports pure incremental construction,
// which suits the pipeline's streaming ingestion of trace embeddings.
//
// Storage is flat. Vectors live in one contiguous FP16 code block — the
// same layout the scan kernels tile over — and adjacency is a CSR-style
// fixed-slot array: level 0 gives node i the degree-prefixed block
// links0[i*(2M+1) : (i+1)*(2M+1)], and levels >= 1 share one packed arena
// (upper) addressed through upperBase. Construction is deterministic given
// the seed and bit-identical to the retained jagged reference
// (hnsw_ref_test.go): same rng stream, same stored-order neighbour
// iteration, same beam and prune tie-breaks.
type HNSW struct {
	dim            int
	m              int // max neighbours per node per layer (level 0 uses 2M)
	efConstruction int
	efSearch       int
	seed           uint64

	codes  []uint16 // contiguous FP16 rows; row i at codes[i*dim:(i+1)*dim]
	keys   []string
	levels []int

	// links0 is level-0 adjacency: node i owns stride0() slots, the
	// first holding the live degree.
	links0 []int32
	// upper packs levels >= 1: a node with top level L >= 1 owns
	// L*(m+1) contiguous slots starting at upperBase[i]; level lv's
	// block starts (lv-1)*(m+1) in, slot 0 again the degree.
	upper     []int32
	upperBase []int32 // -1 for nodes that only exist on level 0

	entry int // entry point (highest-level node)
	maxLv int
	rand  *rng.Source
}

// HNSWConfig parameterises graph construction and search.
type HNSWConfig struct {
	Dim            int
	M              int // default 16
	EfConstruction int // default 64
	EfSearch       int // default 32
	Seed           uint64
}

// NewHNSW returns an empty HNSW index.
func NewHNSW(cfg HNSWConfig) *HNSW {
	if cfg.Dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	if cfg.M <= 0 {
		cfg.M = 16
	}
	if cfg.EfConstruction <= 0 {
		cfg.EfConstruction = 64
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 32
	}
	return &HNSW{
		dim:            cfg.Dim,
		m:              cfg.M,
		efConstruction: cfg.EfConstruction,
		efSearch:       cfg.EfSearch,
		seed:           cfg.Seed,
		entry:          -1,
		maxLv:          -1,
		rand:           rng.New(cfg.Seed).Split("hnsw"),
	}
}

// SetEfSearch adjusts the search beam width (recall knob).
func (h *HNSW) SetEfSearch(ef int) {
	if ef < 1 {
		ef = 1
	}
	h.efSearch = ef
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.keys) }

// Dim implements Index.
func (h *HNSW) Dim() int { return h.dim }

// M reports the graph's max-neighbour parameter.
func (h *HNSW) M() int { return h.m }

// EfConstruction reports the construction beam width.
func (h *HNSW) EfConstruction() int { return h.efConstruction }

// EfSearch reports the current search beam width.
func (h *HNSW) EfSearch() int { return h.efSearch }

// Seed reports the construction seed.
func (h *HNSW) Seed() uint64 { return h.seed }

// Key returns the metadata key for id.
func (h *HNSW) Key(id int) string {
	if id < 0 || id >= len(h.keys) {
		panic(fmt.Sprintf("vecstore: HNSW.Key(%d) out of range [0,%d)", id, len(h.keys)))
	}
	return h.keys[id]
}

// MemoryBytes reports FP16 code storage plus the adjacency arenas, for
// StatsOf.
func (h *HNSW) MemoryBytes() int64 {
	return int64(len(h.codes))*2 +
		int64(len(h.links0)+len(h.upper)+len(h.upperBase))*4
}

func (h *HNSW) block() halfBlock { return halfBlock{codes: h.codes, dim: h.dim} }

func (h *HNSW) stride0() int { return 2*h.m + 1 }

// slotBlock returns node's full degree-prefixed slot block on level lv.
func (h *HNSW) slotBlock(node, lv int) []int32 {
	if lv == 0 {
		s := h.stride0()
		return h.links0[node*s : (node+1)*s]
	}
	off := int(h.upperBase[node]) + (lv-1)*(h.m+1)
	return h.upper[off : off+h.m+1]
}

// neighbours returns node's live neighbour ids on level lv — a view into
// the slot arena, valid until the node's list is rewritten.
func (h *HNSW) neighbours(node, lv int) []int32 {
	blk := h.slotBlock(node, lv)
	return blk[1 : 1+int(blk[0])]
}

// setNeighbours overwrites node's level-lv list. len(ids) must fit the
// level's slot budget (maxLinks).
func (h *HNSW) setNeighbours(node, lv int, ids []int32) {
	blk := h.slotBlock(node, lv)
	blk[0] = int32(len(ids))
	copy(blk[1:], ids)
}

// randomLevel draws a node's top layer from the standard geometric
// distribution with normalisation 1/ln(M).
func (h *HNSW) randomLevel() int {
	u := h.rand.Float64()
	for u == 0 {
		u = h.rand.Float64()
	}
	return int(-math.Log(u) / math.Log(float64(h.m)))
}

// hnswScratch is per-traversal state, pooled so concurrent Searches over
// a shared (immutable) graph neither allocate per call nor contend: an
// epoch-stamped visited array stands in for the reference's per-call map,
// and the beam/prune slices are recycled across calls.
type hnswScratch struct {
	visited []uint32
	epoch   uint32
	fresh   []int32
	nbr     []int32
	scores  []float32
	vec     []float32
	cands   []scored
	results []scored
	prune   []scored
}

var hnswScratchPool = sync.Pool{New: func() any { return new(hnswScratch) }}

func getHNSWScratch() *hnswScratch  { return hnswScratchPool.Get().(*hnswScratch) }
func putHNSWScratch(s *hnswScratch) { hnswScratchPool.Put(s) }

// beginVisit starts a fresh visited-set generation covering ids [0, n).
// Stale stamps are always from strictly older epochs, so no clearing is
// needed until the 32-bit epoch wraps.
func (s *hnswScratch) beginVisit(n int) {
	if cap(s.visited) < n {
		s.visited = make([]uint32, n)
		s.epoch = 0
	}
	s.visited = s.visited[:n]
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
}

func (s *hnswScratch) seen(id int) bool { return s.visited[id] == s.epoch }
func (s *hnswScratch) mark(id int)      { s.visited[id] = s.epoch }

func (s *hnswScratch) scoresFor(n int) []float32 {
	if cap(s.scores) < n {
		s.scores = make([]float32, n)
	}
	return s.scores[:n]
}

func (s *hnswScratch) vecFor(dim int) []float32 {
	if cap(s.vec) < dim {
		s.vec = make([]float32, dim)
	}
	return s.vec[:dim]
}

// scoreOne decodes row id and scores it against q. Identical to the
// reference's f16.Dot on the jagged row: same decode, same accumulation
// tree (see the exactness note in scan.go).
func (h *HNSW) scoreOne(id int, q []float32, sc *hnswScratch) float32 {
	v := sc.vecFor(h.dim)
	f16.DecodeInto(v, h.codes[id*h.dim:(id+1)*h.dim])
	return f16.DotF32(v, q)
}

// Add implements Index, inserting the vector into the graph.
func (h *HNSW) Add(vec []float32, key string) int {
	if len(vec) != h.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to HNSW of dim %d", len(vec), h.dim))
	}
	id := len(h.keys)
	h.codes = f16.AppendEncoded(h.codes, vec)
	h.keys = append(h.keys, key)
	level := h.randomLevel()
	h.levels = append(h.levels, level)
	h.links0 = append(h.links0, make([]int32, h.stride0())...)
	if level >= 1 {
		h.upperBase = append(h.upperBase, int32(len(h.upper)))
		h.upper = append(h.upper, make([]int32, level*(h.m+1))...)
	} else {
		h.upperBase = append(h.upperBase, -1)
	}

	if h.entry < 0 {
		h.entry, h.maxLv = id, level
		return id
	}

	sc := getHNSWScratch()
	defer putHNSWScratch(sc)

	// Greedy descent from the global entry to the insertion level.
	cur := h.entry
	for lv := h.maxLv; lv > level; lv-- {
		cur = h.greedyClosest(vec, cur, lv, sc)
	}
	// Insert at each level from min(level, maxLv) down to 0.
	for lv := min(level, h.maxLv); lv >= 0; lv-- {
		cands := h.searchLayer(vec, cur, h.efConstruction, lv, sc)
		if len(cands) > 0 {
			cur = cands[0].id
		}
		nbrs := selectNeighboursInto(sc.nbr, cands, h.maxLinks(lv))
		h.setNeighbours(id, lv, nbrs)
		for _, n := range nbrs {
			h.linkBack(int(n), lv, id, sc)
		}
		sc.nbr = nbrs[:0]
	}
	if level > h.maxLv {
		h.entry, h.maxLv = id, level
	}
	return id
}

func (h *HNSW) maxLinks(level int) int {
	if level == 0 {
		return 2 * h.m
	}
	return h.m
}

type scored struct {
	id    int
	score float32
}

// greedyClosest walks level lv greedily towards the query, scoring each
// node's neighbour list in one gather instead of row-by-row. The
// improvement loop replays the reference's in-order pass exactly
// (scoring is pure, so batching it first changes nothing).
func (h *HNSW) greedyClosest(q []float32, start, lv int, sc *hnswScratch) int {
	cur := start
	curScore := h.scoreOne(cur, q, sc)
	for {
		ns := h.neighbours(cur, lv)
		if len(ns) == 0 {
			return cur
		}
		scores := sc.scoresFor(len(ns))
		gatherScores(h.block(), ns, q, scores)
		improved := false
		for i := range ns {
			if s := scores[i]; s > curScore {
				cur, curScore = int(ns[i]), s
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search of the HNSW paper: returns up to ef
// candidates on level lv sorted by descending score. The returned slice
// aliases sc.results and is valid until the next searchLayer on sc.
func (h *HNSW) searchLayer(q []float32, start, ef, lv int, sc *hnswScratch) []scored {
	sc.beginVisit(len(h.keys))
	sc.mark(start)
	startS := scored{start, h.scoreOne(start, q, sc)}
	// Candidate max-queue and result min-set, both kept as sorted slices
	// (ef is small; O(ef) insertion is fine and allocation-light).
	cands := append(sc.cands[:0], startS)
	results := append(sc.results[:0], startS)
	for len(cands) > 0 {
		// Pop best candidate.
		c := cands[0]
		cands = cands[1:]
		worst := results[len(results)-1]
		if c.score < worst.score && len(results) >= ef {
			break
		}
		// Collect the unvisited neighbours in stored order, then score
		// the batch in one gather; the insertion loop below replays the
		// reference's per-neighbour pass in the same order.
		fresh := sc.fresh[:0]
		for _, n := range h.neighbours(c.id, lv) {
			if sc.seen(int(n)) {
				continue
			}
			sc.mark(int(n))
			fresh = append(fresh, n)
		}
		sc.fresh = fresh[:0]
		if len(fresh) == 0 {
			continue
		}
		scores := sc.scoresFor(len(fresh))
		gatherScores(h.block(), fresh, q, scores)
		for i, n := range fresh {
			s := scored{int(n), scores[i]}
			if len(results) < ef || s.score > results[len(results)-1].score {
				cands = insertSorted(cands, s)
				results = insertSorted(results, s)
				if len(results) > ef {
					results = results[:ef]
				}
			}
		}
	}
	// Recycle whichever candidate backing grew largest; results keeps
	// its (possibly reallocated) buffer for the caller.
	if cap(cands) > cap(sc.cands) {
		sc.cands = cands[:0]
	}
	sc.results = results
	return results
}

// insertSorted inserts s into a descending-score slice.
func insertSorted(xs []scored, s scored) []scored {
	i := sort.Search(len(xs), func(i int) bool { return xs[i].score < s.score })
	xs = append(xs, scored{})
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}

// selectNeighboursInto keeps the top-n candidate ids (simple heuristic),
// reusing dst's backing.
func selectNeighboursInto(dst []int32, cands []scored, n int) []int32 {
	if len(cands) > n {
		cands = cands[:n]
	}
	dst = dst[:0]
	for _, c := range cands {
		dst = append(dst, int32(c.id))
	}
	return dst
}

// linkBack appends id to n's level-lv list, re-selecting the best links
// when the list is full — the reference's transient cap+1 append followed
// by pruneNeighbours, without needing the extra slot.
func (h *HNSW) linkBack(n, lv, id int, sc *hnswScratch) {
	blk := h.slotBlock(n, lv)
	deg := int(blk[0])
	if deg < h.maxLinks(lv) {
		blk[1+deg] = int32(id)
		blk[0] = int32(deg + 1)
		return
	}
	h.pruneNeighbours(n, lv, id, sc)
}

// pruneNeighbours re-selects node's best maxLinks(lv) links from its
// current list plus the incoming id. Candidates are built in stored order
// with the incoming id last and ranked by the same sort.Slice call as the
// jagged reference, so equal-score ties resolve identically.
func (h *HNSW) pruneNeighbours(node, lv, incoming int, sc *hnswScratch) {
	vec := sc.vecFor(h.dim)
	f16.DecodeInto(vec, h.codes[node*h.dim:(node+1)*h.dim])
	fresh := append(sc.fresh[:0], h.neighbours(node, lv)...)
	fresh = append(fresh, int32(incoming))
	sc.fresh = fresh[:0]
	scores := sc.scoresFor(len(fresh))
	gatherScores(h.block(), fresh, vec, scores)
	cands := sc.prune[:0]
	for i, n := range fresh {
		cands = append(cands, scored{int(n), scores[i]})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if limit := h.maxLinks(lv); len(cands) > limit {
		cands = cands[:limit]
	}
	blk := h.slotBlock(node, lv)
	blk[0] = int32(len(cands))
	for i, c := range cands {
		blk[1+i] = int32(c.id)
	}
	sc.prune = cands[:0]
}

// Search implements Index. Safe for concurrent use while the graph is not
// being mutated (all traversal state lives in pooled scratch).
func (h *HNSW) Search(query []float32, k int) []Result {
	if len(query) != h.dim {
		panic(fmt.Sprintf("vecstore: Search dim %d against HNSW of dim %d", len(query), h.dim))
	}
	if k <= 0 || h.entry < 0 {
		return nil
	}
	sc := getHNSWScratch()
	defer putHNSWScratch(sc)
	cur := h.entry
	for lv := h.maxLv; lv > 0; lv-- {
		cur = h.greedyClosest(query, cur, lv, sc)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, cur, ef, 0, sc)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Score: c.score, Key: h.keys[c.id]}
	}
	return out
}

// SearchBatch implements BatchSearcher. Graph traversals don't share tile
// decodes the way flat scans do, so the batch fans out query-per-worker
// (each worker drawing its own pooled scratch).
func (h *HNSW) SearchBatch(queries [][]float32, k int) [][]Result {
	out, _ := h.SearchBatchTimed(queries, k)
	return out
}

// flatView returns a zero-copy exact-scan view over the same code block.
// FP16 encode∘decode is the identity on stored codes, so the view scores
// exactly like a Flat rebuilt from the decoded vectors.
func (h *HNSW) flatView() *Flat {
	return &Flat{dim: h.dim, codes: h.codes, keys: h.keys}
}

// RecallAgainst measures recall@k against a prebuilt exact index over the
// same corpus; sweep-style callers pay for the reference answers once per
// call instead of rebuilding the index itself.
func (h *HNSW) RecallAgainst(exact *Flat, queries [][]float32, k int) float64 {
	if len(queries) == 0 {
		return 0
	}
	var hits, total int
	for _, q := range queries {
		got := map[int]bool{}
		for _, r := range h.Search(q, k) {
			got[r.ID] = true
		}
		for _, r := range exact.Search(q, k) {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	return float64(hits) / float64(total)
}

// Recall measures HNSW recall against an exact scan of the same data,
// using a zero-copy Flat view rather than rebuilding the exact index.
func (h *HNSW) Recall(queries [][]float32, k int) float64 {
	return h.RecallAgainst(h.flatView(), queries, k)
}
