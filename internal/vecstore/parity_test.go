package vecstore

import (
	"testing"

	"repro/internal/rng"
)

// Parity suite: the blocked, segment-parallel, pooled scan kernel must
// reproduce the retained reference scalar scan bit-for-bit — identical ids,
// bit-identical float32 scores, identical order — across dimensions
// (including tile remainders and dim=1), k regimes (k=1, k=10, k>n), and
// index kinds (Flat, IVF, SQ8). This is the acceptance gate for the
// contiguous-layout rewrite: any kernel change that reorders accumulation
// or breaks the total order of the top-k heap fails here.

var (
	parityDims = []int{1, 7, 384}
	parityKs   = []int{1, 10, 1 << 20} // 1<<20 > n exercises the k>n clamp
)

func checkSameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d: got {id %d score %x key %q}, want {id %d score %x key %q}",
				label, i,
				got[i].ID, got[i].Score, got[i].Key,
				want[i].ID, want[i].Score, want[i].Key)
		}
	}
}

func parityVectors(t *testing.T, dim, n int) ([][]float32, []string) {
	t.Helper()
	r := rng.New(uint64(dim)*1000 + uint64(n))
	vecs := randomUnit(r, n, dim)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "k" + itoaTest(i)
	}
	return vecs, keys
}

func itoaTest(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestFlatKernelParity(t *testing.T) {
	for _, dim := range parityDims {
		// n above 2×segmentMinRows for dim 1 and 7 so the segment-parallel
		// path engages; smaller for dim 384 to keep the test quick (the
		// parallel 384 case is covered by TestFlatKernelParityParallel).
		n := 3000
		if dim < 64 {
			n = 3*segmentMinRows + 37
		}
		vecs, keys := parityVectors(t, dim, n)
		ix := NewFlat(dim)
		for i, v := range vecs {
			ix.Add(v, keys[i])
		}
		r := rng.New(99)
		for _, k := range parityKs {
			for trial := 0; trial < 5; trial++ {
				q := randomUnit(r, 1, dim)[0]
				want := ix.searchReference(q, k)
				got := ix.Search(q, k)
				checkSameResults(t, "flat dim="+itoaTest(dim)+" k="+itoaTest(k), got, want)
			}
		}
	}
}

func TestFlatKernelParityParallel(t *testing.T) {
	const dim = 384
	n := 2*segmentMinRows + scanTileRows/2 // parallel path + ragged tail tile
	vecs, keys := parityVectors(t, dim, n)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	r := rng.New(101)
	for trial := 0; trial < 3; trial++ {
		q := randomUnit(r, 1, dim)[0]
		checkSameResults(t, "flat parallel", ix.Search(q, 10), ix.searchReference(q, 10))
	}
}

func TestFlatSearchIntoReusesBuffer(t *testing.T) {
	const dim, n = 32, 500
	vecs, keys := parityVectors(t, dim, n)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	r := rng.New(103)
	queries := randomUnit(r, 10, dim)
	var dst []Result
	for _, q := range queries {
		dst = ix.SearchInto(q, 5, dst)
		checkSameResults(t, "SearchInto", dst, ix.searchReference(q, 5))
	}
}

func TestFlatSearchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is deliberately lossy under -race; zero-alloc steady state not observable")
	}
	const dim, n = 64, 1000 // below the parallel threshold: serial kernel
	vecs, keys := parityVectors(t, dim, n)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	q := randomUnit(rng.New(107), 1, dim)[0]
	dst := make([]Result, 0, 16)
	// Warm the pools.
	dst = ix.SearchInto(q, 10, dst)
	allocs := testing.AllocsPerRun(100, func() {
		dst = ix.SearchInto(q, 10, dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SearchInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestFlatSearchBatchParity(t *testing.T) {
	for _, dim := range parityDims {
		n := 2000
		if dim < 64 {
			n = segmentMinRows + 13
		}
		vecs, keys := parityVectors(t, dim, n)
		ix := NewFlat(dim)
		for i, v := range vecs {
			ix.Add(v, keys[i])
		}
		queries := randomUnit(rng.New(109), 17, dim)
		for _, k := range parityKs {
			batch := ix.SearchBatch(queries, k)
			if len(batch) != len(queries) {
				t.Fatalf("dim=%d: %d batch results", dim, len(batch))
			}
			for qi, q := range queries {
				checkSameResults(t, "batch dim="+itoaTest(dim)+" k="+itoaTest(k),
					batch[qi], ix.searchReference(q, k))
			}
		}
	}
}

func TestIVFKernelParity(t *testing.T) {
	for _, dim := range parityDims {
		const n = 1200
		vecs, keys := parityVectors(t, dim, n)
		ix := NewIVF(IVFConfig{Dim: dim, NList: 16, NProbe: 4, Seed: 3})
		for i, v := range vecs {
			ix.Add(v, keys[i])
		}
		ix.Train()
		r := rng.New(113)
		for _, k := range parityKs {
			for trial := 0; trial < 5; trial++ {
				q := randomUnit(r, 1, dim)[0]
				checkSameResults(t, "ivf dim="+itoaTest(dim)+" k="+itoaTest(k),
					ix.Search(q, k), ix.searchReference(q, k))
			}
		}
	}
}

func TestIVFSearchBatchParity(t *testing.T) {
	const dim, n = 48, 1500
	vecs, keys := parityVectors(t, dim, n)
	ix := NewIVF(IVFConfig{Dim: dim, NList: 20, NProbe: 5, Seed: 5})
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	queries := randomUnit(rng.New(127), 23, dim)
	for _, k := range []int{1, 10, 1 << 20} {
		batch := ix.SearchBatch(queries, k)
		for qi, q := range queries {
			checkSameResults(t, "ivf batch k="+itoaTest(k), batch[qi], ix.searchReference(q, k))
		}
	}
}

func TestSQ8KernelParity(t *testing.T) {
	for _, dim := range parityDims {
		n := 1500
		if dim < 64 {
			n = segmentMinRows + 21
		}
		vecs, keys := parityVectors(t, dim, n)
		ix := NewSQ8(dim)
		for i, v := range vecs {
			ix.Add(v, keys[i])
		}
		ix.Train()
		r := rng.New(131)
		for _, k := range parityKs {
			for trial := 0; trial < 5; trial++ {
				q := randomUnit(r, 1, dim)[0]
				checkSameResults(t, "sq8 dim="+itoaTest(dim)+" k="+itoaTest(k),
					ix.Search(q, k), ix.searchReference(q, k))
			}
		}
		queries := randomUnit(r, 9, dim)
		batch := ix.SearchBatch(queries, 10)
		for qi, q := range queries {
			checkSameResults(t, "sq8 batch dim="+itoaTest(dim), batch[qi], ix.searchReference(q, 10))
		}
	}
}

// TestIVFNProbeRecallRegression pins the recall/latency trade-off: with the
// training fixed by seed, recall@10 at nprobe=4/32 must stay above the
// floor measured at the time the contiguous kernel landed, and full probing
// must stay exact. A layout or quantizer regression that silently drops
// postings shows up here.
func TestIVFNProbeRecallRegression(t *testing.T) {
	const dim, n = 32, 2000
	r := rng.New(211)
	vecs := randomUnit(r, n, dim)
	ix := NewIVF(IVFConfig{Dim: dim, NList: 32, NProbe: 4, Seed: 7})
	for _, v := range vecs {
		ix.Add(v, "")
	}
	ix.Train()
	queries := randomUnit(r, 40, dim)
	// Measured 0.512 when the contiguous kernel landed (random unit
	// vectors are clusterless, so nprobe=4/32 recall is modest by design).
	if got := ix.Recall(queries, 10); got < 0.45 {
		t.Fatalf("recall@10 nprobe=4: %.3f, below regression floor 0.45", got)
	}
	ix.SetNProbe(32)
	if got := ix.Recall(queries, 10); got < 0.999 {
		t.Fatalf("recall@10 nprobe=nlist: %.3f, want ~1", got)
	}
}

// TestLoadLegacyV1Format proves old jagged-format files still load into the
// contiguous layout byte-for-byte.
func TestLoadLegacyV1Format(t *testing.T) {
	r := rng.New(151)
	const dim, n = 20, 30
	vecs := randomUnit(r, n, dim)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, "legacy-"+itoaTest(i))
	}
	// Hand-write the VSF1 stream the old writer produced.
	var buf []byte
	buf = append(buf, magicV1[:]...)
	buf = appendU32(buf, uint32(dim))
	buf = appendU64(buf, uint64(n))
	for i := 0; i < n; i++ {
		key := ix.Key(i)
		buf = appendU32(buf, uint32(len(key)))
		buf = append(buf, key...)
		for _, c := range ix.row(i) {
			buf = append(buf, byte(c), byte(c>>8))
		}
	}
	path := t.TempDir() + "/legacy.vsf"
	if err := writeFile(path, buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n || loaded.Dim() != dim {
		t.Fatalf("legacy load shape %d/%d", loaded.Len(), loaded.Dim())
	}
	for i := 0; i < n; i++ {
		if loaded.Key(i) != ix.Key(i) {
			t.Fatalf("legacy key %d mismatch", i)
		}
	}
	for i, c := range ix.codes {
		if loaded.codes[i] != c {
			t.Fatalf("legacy code %d mismatch", i)
		}
	}
	q := randomUnit(r, 1, dim)[0]
	checkSameResults(t, "legacy search", loaded.Search(q, 5), ix.Search(q, 5))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// TestVectorInto checks the allocation-free decode path against Vector.
func TestVectorInto(t *testing.T) {
	const dim = 24
	vecs, keys := parityVectors(t, dim, 10)
	ix := NewFlat(dim)
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	buf := make([]float32, dim)
	for id := 0; id < ix.Len(); id++ {
		ix.VectorInto(buf, id)
		want := ix.Vector(id)
		for d := range buf {
			if buf[d] != want[d] {
				t.Fatalf("VectorInto id %d dim %d: %v vs %v", id, d, buf[d], want[d])
			}
		}
	}
	if allocs := testing.AllocsPerRun(50, func() { ix.VectorInto(buf, 3) }); allocs != 0 {
		t.Fatalf("VectorInto allocates %.1f objects/op", allocs)
	}
}
