package vecstore

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/f16"
	"repro/internal/rng"
)

// KMeans clusters vectors by k-means, the quantizer training used by the
// IVF coarse quantizer and the PQ sub-quantizers. The default objective is
// spherical (cosine: assignment by max inner product, centroids
// re-normalised each round), which fits the unit-norm embedding vectors;
// Euclidean selects plain L2 k-means (assignment by min squared distance,
// centroids are arithmetic means), which is what product-quantization
// sub-vectors need — they are not unit-norm, and normalising their
// centroids would corrupt reconstruction. Initialisation is k-means++ from
// a seeded PRNG, so training is deterministic either way.
type KMeans struct {
	K         int // number of centroids
	MaxIter   int // iteration cap (default 15)
	Seed      uint64
	Euclidean bool // plain L2 objective instead of spherical/cosine
	Centroids [][]float32
}

// dist is the k-means++ seeding distance: 1-dot clamped at 0 for the
// spherical objective, squared Euclidean distance otherwise.
func (km *KMeans) dist(v, c []float32) float64 {
	if km.Euclidean {
		return float64(sqDist(v, c))
	}
	d := 1 - float64(f16.DotF32(v, c))
	if d < 0 {
		d = 0
	}
	return d
}

// score is the assignment affinity (higher is closer): inner product for
// the spherical objective, negated squared distance for Euclidean.
func (km *KMeans) score(v, c []float32) float32 {
	if km.Euclidean {
		return -sqDist(v, c)
	}
	return f16.DotF32(v, c)
}

// sqDist returns the squared Euclidean distance between a and b.
func sqDist(a, b []float32) float32 {
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// Train fits centroids to the given vectors. Under the spherical objective
// vectors are assumed (but not required) to be unit-norm and centroids are
// re-normalised each round; under Euclidean they are plain means. Train
// panics if there are fewer vectors than centroids.
func (km *KMeans) Train(vecs [][]float32) {
	if len(vecs) < km.K {
		panic("vecstore: fewer vectors than centroids")
	}
	if km.MaxIter <= 0 {
		km.MaxIter = 15
	}
	dim := len(vecs[0])
	r := rng.New(km.Seed)

	// k-means++ seeding on cosine distance (1 - dot for unit vectors).
	centroids := make([][]float32, 0, km.K)
	first := r.Intn(len(vecs))
	centroids = append(centroids, cloneVec(vecs[first]))
	dist := make([]float64, len(vecs))
	for i := range dist {
		dist[i] = km.dist(vecs[i], centroids[0])
	}
	for len(centroids) < km.K {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(len(vecs))
		} else {
			x := r.Float64() * total
			for i, d := range dist {
				x -= d
				if x < 0 {
					pick = i
					break
				}
			}
		}
		c := cloneVec(vecs[pick])
		centroids = append(centroids, c)
		for i := range dist {
			if d := km.dist(vecs[i], c); d < dist[i] {
				dist[i] = d
			}
		}
	}

	assign := make([]int, len(vecs))
	workers := runtime.GOMAXPROCS(0)
	for iter := 0; iter < km.MaxIter; iter++ {
		// Assignment step, parallel over vectors.
		changed := km.assignAll(vecs, centroids, assign, workers)
		// Update step.
		sums := make([][]float32, km.K)
		counts := make([]int, km.K)
		for c := range sums {
			sums[c] = make([]float32, dim)
		}
		for i, c := range assign {
			counts[c]++
			v := vecs[i]
			s := sums[c]
			for j := range s {
				s[j] += v[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster from a random vector.
				copy(centroids[c], vecs[r.Intn(len(vecs))])
				continue
			}
			copy(centroids[c], sums[c])
			if km.Euclidean {
				inv := 1 / float32(counts[c])
				for j := range centroids[c] {
					centroids[c][j] *= inv
				}
			} else {
				f16.Normalize(centroids[c])
			}
		}
		if changed == 0 && iter > 0 {
			break
		}
	}
	km.Centroids = centroids
}

// assignAll assigns each vector to its nearest centroid under the active
// objective and returns the number of changed assignments. Work is handed
// out in blocks through an atomic cursor (no mutex on the hot path).
func (km *KMeans) assignAll(vecs, centroids [][]float32, assign []int, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	var changed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	const block = 256
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localChanged int64
			for {
				start := int(next.Add(block)) - block
				if start >= len(vecs) {
					break
				}
				end := start + block
				if end > len(vecs) {
					end = len(vecs)
				}
				for i := start; i < end; i++ {
					best, bestScore := 0, km.score(vecs[i], centroids[0])
					for c := 1; c < len(centroids); c++ {
						if s := km.score(vecs[i], centroids[c]); s > bestScore {
							best, bestScore = c, s
						}
					}
					if assign[i] != best {
						assign[i] = best
						localChanged++
					}
				}
			}
			changed.Add(localChanged)
		}()
	}
	wg.Wait()
	return int(changed.Load())
}

// Nearest returns the index of the closest centroid under the active
// objective (largest inner product, or smallest squared distance when
// Euclidean).
func (km *KMeans) Nearest(v []float32) int {
	best, bestScore := 0, km.score(v, km.Centroids[0])
	for c := 1; c < len(km.Centroids); c++ {
		if s := km.score(v, km.Centroids[c]); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// NearestN returns the indexes of the n centroids with the largest inner
// products against v, in descending order.
func (km *KMeans) NearestN(v []float32, n int) []int {
	if n > len(km.Centroids) {
		n = len(km.Centroids)
	}
	h := newTopK(n)
	for c, cent := range km.Centroids {
		h.push(c, f16.DotF32(cent, v))
	}
	res := h.results(make([]string, len(km.Centroids)))
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

func cloneVec(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}

// --- Dense linear algebra for the OPQ rotation update -----------------
//
// OPQ training (see learnOPQ in pq.go) alternates PQ codebook fits with a
// Procrustes-style rotation update: given data X and reconstructions X̂ in
// the rotated space, the orthonormal R minimising Σ‖R·x − x̂‖² is the polar
// factor U·Vᵀ of the correlation matrix M = Σ x̂·xᵀ. The helpers below
// compute that polar factor with a scaled Newton–Schulz iteration in
// float64 — deterministic, dependency-free, and cubic-convergent for the
// well-conditioned correlation matrices n ≫ d training produces.

// applyRot writes the matrix-vector product R·v into dst (R row-major
// d×d). dst must not alias v.
func applyRot(dst []float32, rot []float32, v []float32) {
	d := len(v)
	for i := 0; i < d; i++ {
		row := rot[i*d : (i+1)*d]
		var s float32
		for j, x := range v {
			s += row[j] * x
		}
		dst[i] = s
	}
}

// matMul64 computes C = A·B for row-major d×d float64 matrices.
func matMul64(c, a, b []float64, d int) {
	for i := 0; i < d; i++ {
		ci := c[i*d : (i+1)*d]
		for j := range ci {
			ci[j] = 0
		}
		for l := 0; l < d; l++ {
			ail := a[i*d+l]
			if ail == 0 {
				continue
			}
			bl := b[l*d : (l+1)*d]
			for j, blj := range bl {
				ci[j] += ail * blj
			}
		}
	}
}

// polarOrthonormal returns the orthogonal polar factor of the d×d matrix m
// (row-major float32), i.e. the Procrustes rotation U·Vᵀ of m's SVD, via
// the Newton–Schulz iteration X ← ½·X·(3I − XᵀX) on m scaled to unit
// Frobenius norm. It returns nil when the iteration fails to converge to
// an orthonormal matrix (rank-deficient m), letting the caller keep its
// previous rotation.
func polarOrthonormal(m []float32, d int) []float32 {
	var fro float64
	for _, v := range m {
		fro += float64(v) * float64(v)
	}
	fro = math.Sqrt(fro)
	if fro == 0 {
		return nil
	}
	x := make([]float64, d*d)
	for i, v := range m {
		x[i] = float64(v) / fro
	}
	xtx := make([]float64, d*d)
	next := make([]float64, d*d)
	const maxIter, tol = 100, 1e-7
	for iter := 0; iter < maxIter; iter++ {
		// xtx = XᵀX, then next = ½·X·(3I − xtx).
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				var s float64
				for l := 0; l < d; l++ {
					s += x[l*d+i] * x[l*d+j]
				}
				xtx[i*d+j] = s
			}
		}
		var dev float64
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				e := xtx[i*d+j]
				if i == j {
					e -= 1
				}
				if e < 0 {
					e = -e
				}
				if e > dev {
					dev = e
				}
			}
		}
		if dev < tol {
			out := make([]float32, d*d)
			for i, v := range x {
				out[i] = float32(v)
			}
			return out
		}
		for i := range xtx {
			xtx[i] = -xtx[i]
		}
		for i := 0; i < d; i++ {
			xtx[i*d+i] += 3
		}
		matMul64(next, x, xtx, d)
		for i := range next {
			next[i] *= 0.5
		}
		x, next = next, x
	}
	return nil
}

// identityRot returns the d×d identity as a row-major rotation matrix.
func identityRot(d int) []float32 {
	r := make([]float32, d*d)
	for i := 0; i < d; i++ {
		r[i*d+i] = 1
	}
	return r
}
