package vecstore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/f16"
	"repro/internal/rng"
)

// KMeans clusters unit vectors by spherical k-means (cosine objective),
// the coarse quantizer training used by IVF indexes. Initialisation is
// k-means++ from a seeded PRNG, so training is deterministic.
type KMeans struct {
	K         int // number of centroids
	MaxIter   int // iteration cap (default 15)
	Seed      uint64
	Centroids [][]float32
}

// Train fits centroids to the given vectors. Vectors are assumed (but not
// required) to be unit-norm; centroids are re-normalised each round. Train
// panics if there are fewer vectors than centroids.
func (km *KMeans) Train(vecs [][]float32) {
	if len(vecs) < km.K {
		panic("vecstore: fewer vectors than centroids")
	}
	if km.MaxIter <= 0 {
		km.MaxIter = 15
	}
	dim := len(vecs[0])
	r := rng.New(km.Seed)

	// k-means++ seeding on cosine distance (1 - dot for unit vectors).
	centroids := make([][]float32, 0, km.K)
	first := r.Intn(len(vecs))
	centroids = append(centroids, cloneVec(vecs[first]))
	dist := make([]float64, len(vecs))
	for i := range dist {
		dist[i] = 1 - float64(f16.DotF32(vecs[i], centroids[0]))
		if dist[i] < 0 {
			dist[i] = 0
		}
	}
	for len(centroids) < km.K {
		var total float64
		for _, d := range dist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(len(vecs))
		} else {
			x := r.Float64() * total
			for i, d := range dist {
				x -= d
				if x < 0 {
					pick = i
					break
				}
			}
		}
		c := cloneVec(vecs[pick])
		centroids = append(centroids, c)
		for i := range dist {
			d := 1 - float64(f16.DotF32(vecs[i], c))
			if d < 0 {
				d = 0
			}
			if d < dist[i] {
				dist[i] = d
			}
		}
	}

	assign := make([]int, len(vecs))
	workers := runtime.GOMAXPROCS(0)
	for iter := 0; iter < km.MaxIter; iter++ {
		// Assignment step, parallel over vectors.
		changed := assignAll(vecs, centroids, assign, workers)
		// Update step.
		sums := make([][]float32, km.K)
		counts := make([]int, km.K)
		for c := range sums {
			sums[c] = make([]float32, dim)
		}
		for i, c := range assign {
			counts[c]++
			v := vecs[i]
			s := sums[c]
			for j := range s {
				s[j] += v[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster from a random vector.
				copy(centroids[c], vecs[r.Intn(len(vecs))])
				continue
			}
			copy(centroids[c], sums[c])
			f16.Normalize(centroids[c])
		}
		if changed == 0 && iter > 0 {
			break
		}
	}
	km.Centroids = centroids
}

// assignAll assigns each vector to its nearest centroid by inner product and
// returns the number of changed assignments. Work is handed out in blocks
// through an atomic cursor (no mutex on the hot path).
func assignAll(vecs, centroids [][]float32, assign []int, workers int) int {
	if workers <= 0 {
		workers = 1
	}
	var changed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	const block = 256
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localChanged int64
			for {
				start := int(next.Add(block)) - block
				if start >= len(vecs) {
					break
				}
				end := start + block
				if end > len(vecs) {
					end = len(vecs)
				}
				for i := start; i < end; i++ {
					best, bestScore := 0, f16.DotF32(vecs[i], centroids[0])
					for c := 1; c < len(centroids); c++ {
						if s := f16.DotF32(vecs[i], centroids[c]); s > bestScore {
							best, bestScore = c, s
						}
					}
					if assign[i] != best {
						assign[i] = best
						localChanged++
					}
				}
			}
			changed.Add(localChanged)
		}()
	}
	wg.Wait()
	return int(changed.Load())
}

// Nearest returns the index of the centroid with the largest inner product
// against v.
func (km *KMeans) Nearest(v []float32) int {
	best, bestScore := 0, f16.DotF32(v, km.Centroids[0])
	for c := 1; c < len(km.Centroids); c++ {
		if s := f16.DotF32(v, km.Centroids[c]); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// NearestN returns the indexes of the n centroids with the largest inner
// products against v, in descending order.
func (km *KMeans) NearestN(v []float32, n int) []int {
	if n > len(km.Centroids) {
		n = len(km.Centroids)
	}
	h := newTopK(n)
	for c, cent := range km.Centroids {
		h.push(c, f16.DotF32(cent, v))
	}
	res := h.results(make([]string, len(km.Centroids)))
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

func cloneVec(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}
