package vecstore

import (
	"math/rand"
	"testing"
)

func timingFixture(t *testing.T, dim, n int) (*Flat, [][]float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	ix := NewFlat(dim)
	vec := make([]float32, dim)
	for i := 0; i < n; i++ {
		for d := range vec {
			vec[d] = rng.Float32()*2 - 1
		}
		ix.Add(vec, keyOf(i))
	}
	queries := make([][]float32, 7)
	for qi := range queries {
		q := make([]float32, dim)
		for d := range q {
			q[d] = rng.Float32()*2 - 1
		}
		queries[qi] = q
	}
	return ix, queries
}

func keyOf(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i%10)) }

// TestBatchSearchTimedParity pins the timed kernel to the untimed one:
// identical results on Flat (native split), on Live (base+memtable split)
// and through the generic fallback, with non-negative phase durations.
func TestBatchSearchTimedParity(t *testing.T) {
	ix, queries := timingFixture(t, 16, 500)
	want := ix.SearchBatch(queries, 10)

	got, tm := ix.SearchBatchTimed(queries, 10)
	if tm.Scan < 0 || tm.Merge < 0 {
		t.Fatalf("negative timing: %+v", tm)
	}
	assertSameResults(t, "Flat.SearchBatchTimed", want, got)

	got, tm = BatchSearchTimed(ix, queries, 10, 0)
	if tm.Scan < 0 || tm.Merge < 0 {
		t.Fatalf("negative timing: %+v", tm)
	}
	assertSameResults(t, "BatchSearchTimed(Flat)", want, got)

	lv := NewLive(ix, NewMemtable(16))
	q0 := queries[0]
	lv.Add(q0, "live-row")
	wantLive := make([][]Result, len(queries))
	for qi, q := range queries {
		wantLive[qi] = lv.Search(q, 10)
	}
	gotLive, tmLive := lv.SearchBatchTimed(queries, 10)
	if tmLive.Scan < 0 || tmLive.Merge < 0 {
		t.Fatalf("negative live timing: %+v", tmLive)
	}
	assertSameResults(t, "Live.SearchBatchTimed", wantLive, gotLive)
}

func assertSameResults(t *testing.T, label string, want, got [][]Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d result sets, want %d", label, len(got), len(want))
	}
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			t.Fatalf("%s: query %d: %d results, want %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if want[qi][i] != got[qi][i] {
				t.Fatalf("%s: query %d result %d: %+v, want %+v", label, qi, i, got[qi][i], want[qi][i])
			}
		}
	}
}
