package vecstore

import (
	"fmt"
	"sync"

	"repro/internal/f16"
)

// Live ingestion layer: an LSM-flavoured mutable tier over the read-only
// indexes. Writes land in a Memtable — a small exact Flat-equivalent table
// that accepts Add concurrently with Search — scanned alongside an
// immutable trained base index, with the two top-k sets merged under the
// package's total order (score desc, id asc). Because the memtable stores
// FP16 codes and scores them through the same halfBlock kernel as Flat,
// and ids are assigned as base.Len()+row, a Live search is bit-identical
// to a Flat index over the union corpus whenever the base is exact (the
// property pinned by TestLiveMatchesFlatUnion).
//
// Compaction follows the snapshot discipline of the serving layer: the
// slow step (CompactBase) encodes a prefix of the memtable into a clone of
// the base — post-train IVFPQ.Add is the residual encode path — while
// readers and writers proceed; the fast step (Rotate) runs under the
// caller's write lock and produces a successor Live whose fresh memtable
// carries only the rows added since the compaction cut. Acked ids are
// stable across compaction: row r of the memtable is id base.Len()+r
// before, and id newBase.Len()+(r-n) == base.Len()+r after draining n rows.

// Memtable is a concurrency-safe exact FP16 index: Add may run
// concurrently with Search, Len and Key. Scoring is bit-identical to Flat
// over the same vectors (same FP16 encoding, same blocked-scan kernel).
type Memtable struct {
	dim   int
	mu    sync.RWMutex
	codes []uint16 // row i at codes[i*dim:(i+1)*dim]
	keys  []string
}

// NewMemtable returns an empty mutable exact index.
func NewMemtable(dim int) *Memtable {
	if dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	return &Memtable{dim: dim}
}

// Add implements Index; it is safe to call concurrently with Search.
func (mt *Memtable) Add(vec []float32, key string) int {
	if len(vec) != mt.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to memtable of dim %d", len(vec), mt.dim))
	}
	mt.mu.Lock()
	mt.codes = f16.AppendEncoded(mt.codes, vec)
	mt.keys = append(mt.keys, key)
	id := len(mt.keys) - 1
	mt.mu.Unlock()
	return id
}

// Len implements Index.
func (mt *Memtable) Len() int {
	mt.mu.RLock()
	n := len(mt.keys)
	mt.mu.RUnlock()
	return n
}

// Dim implements Index.
func (mt *Memtable) Dim() int { return mt.dim }

// Key returns the metadata key for id.
func (mt *Memtable) Key(id int) string {
	mt.mu.RLock()
	k := mt.keys[id]
	mt.mu.RUnlock()
	return k
}

// snapshot returns stable views of rows [lo, hi). Rows are append-only, so
// the returned slices never change after capture; only the slice headers
// need the lock.
func (mt *Memtable) snapshot(lo, hi int) (codes []uint16, keys []string) {
	mt.mu.RLock()
	codes = mt.codes[lo*mt.dim : hi*mt.dim : hi*mt.dim]
	keys = mt.keys[lo:hi:hi]
	mt.mu.RUnlock()
	return codes, keys
}

// Search implements Index with the same blocked scan as Flat, over the
// rows present at call time.
func (mt *Memtable) Search(query []float32, k int) []Result {
	if len(query) != mt.dim {
		panic("vecstore: Search dim mismatch")
	}
	codes, keys := mt.snapshot(0, mt.Len())
	if k <= 0 || len(keys) == 0 {
		return nil
	}
	return searchBlock(halfBlock{codes: codes, dim: mt.dim}, query, k, keys, nil)
}

// SearchBatch implements BatchSearcher; the whole batch is answered from
// one row snapshot.
func (mt *Memtable) SearchBatch(queries [][]float32, k int) [][]Result {
	for _, q := range queries {
		if len(q) != mt.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	codes, keys := mt.snapshot(0, mt.Len())
	if k <= 0 || len(keys) == 0 {
		return make([][]Result, len(queries))
	}
	return searchBlockBatch(halfBlock{codes: codes, dim: mt.dim}, queries, k, keys)
}

// MemoryBytes reports FP16 row storage, for StatsOf.
func (mt *Memtable) MemoryBytes() int64 {
	return int64(mt.Len()) * int64(f16.BytesPerVector(mt.dim))
}

// AppendableCloner is implemented by indexes that can produce a cheap
// clone that accepts Add without disturbing rows served through the
// original — the compaction encode target. Clones may share backing
// arrays with the original: appends only ever write past the original's
// visible lengths, so concurrent readers of the original are safe.
type AppendableCloner interface {
	Index
	CloneForAppend() Index
}

// CloneForAppend implements AppendableCloner for Flat.
func (ix *Flat) CloneForAppend() Index {
	cp := *ix
	return &cp
}

// CloneForAppend implements AppendableCloner for IVFPQ: the outer per-cell
// slices are copied so post-train Add mutates only the clone's view, while
// the trained state (quantizers, codebook, anchors, rotation) is shared
// read-only.
func (ix *IVFPQ) CloneForAppend() Index {
	cp := *ix
	cp.cellIDs = append([][]int(nil), ix.cellIDs...)
	cp.cellCodes = append([][]byte(nil), ix.cellCodes...)
	return &cp
}

// CloneForAppend implements AppendableCloner for HNSW: the adjacency
// arenas are deep-copied because graph inserts rewrite existing nodes'
// slot blocks in place (backlinks, prunes), while the append-only arrays
// — codes, keys, levels, upperBase — are shared with the original (new
// nodes only ever write past its visible lengths). The rng is copied by
// value so continued construction on the clone draws the same level
// stream the original would have.
func (h *HNSW) CloneForAppend() Index {
	cp := *h
	cp.links0 = append([]int32(nil), h.links0...)
	cp.upper = append([]int32(nil), h.upper...)
	r := *h.rand
	cp.rand = &r
	return &cp
}

// Live is the mutable serving index: an immutable base plus a Memtable.
// Search and Add may run concurrently; ids are assigned in union order
// (base rows keep their ids, memtable row r is id base.Len()+r), so
// results merge under the total order exactly as one Flat over the union.
type Live struct {
	base Index
	mem  *Memtable
	nb   int // base.Len(), frozen: the base is immutable under a Live
	dim  int
}

// NewLive wraps an immutable base index in a mutable layer. A nil mem
// starts an empty memtable. The base must not be mutated afterwards.
func NewLive(base Index, mem *Memtable) *Live {
	if base == nil {
		panic("vecstore: NewLive nil base")
	}
	if mem == nil {
		mem = NewMemtable(base.Dim())
	}
	if mem.Dim() != base.Dim() {
		panic(fmt.Sprintf("vecstore: NewLive memtable dim %d != base dim %d", mem.Dim(), base.Dim()))
	}
	return &Live{base: base, mem: mem, nb: base.Len(), dim: base.Dim()}
}

// Add implements Index, appending to the memtable. Safe concurrently with
// Search. The returned id is stable across compactions.
func (lv *Live) Add(vec []float32, key string) int {
	return lv.nb + lv.mem.Add(vec, key)
}

// Len implements Index.
func (lv *Live) Len() int { return lv.nb + lv.mem.Len() }

// Dim implements Index.
func (lv *Live) Dim() int { return lv.dim }

// MemLen reports the number of memtable (not yet compacted) rows.
func (lv *Live) MemLen() int { return lv.mem.Len() }

// Base exposes the immutable base index (stats, persistence).
func (lv *Live) Base() Index { return lv.base }

// Key returns the metadata key for id, from the base or the memtable.
func (lv *Live) Key(id int) string {
	if id < lv.nb {
		if kx, ok := lv.base.(keyedIndex); ok {
			return kx.Key(id)
		}
		return ""
	}
	return lv.mem.Key(id - lv.nb)
}

// keyedIndex mirrors rag's keyed probe without importing it.
type keyedIndex interface{ Key(id int) string }

// mergeLive folds the base and memtable top-k candidate sets under the
// package total order (score desc, id asc) — the same order mergeHeaps
// uses, so the merge is exact: the union's true top-k is contained in the
// union of the two per-tier top-k sets. mem ids arrive memtable-local and
// are lifted by nb here.
func mergeLive(base, mem []Result, nb, k int) []Result {
	if len(mem) == 0 && len(base) == 0 {
		return nil
	}
	merged := make([]Result, 0, len(base)+len(mem))
	merged = append(merged, base...)
	for _, r := range mem {
		r.ID += nb
		merged = append(merged, r)
	}
	sortResults(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// Search implements Index: the base and the memtable are each searched for
// their top-k, and the two sets merge under the total order.
func (lv *Live) Search(query []float32, k int) []Result {
	if len(query) != lv.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	var base []Result
	if lv.nb > 0 {
		base = lv.base.Search(query, k)
	}
	mem := lv.mem.Search(query, k)
	return mergeLive(base, mem, lv.nb, k)
}

// SearchBatch implements BatchSearcher: the base answers through its own
// multi-query kernel, the memtable through its snapshot batch scan, and
// each query's two sets merge as in Search (see SearchBatchTimed in
// timing.go, which this delegates to).
func (lv *Live) SearchBatch(queries [][]float32, k int) [][]Result {
	res, _ := lv.SearchBatchTimed(queries, k)
	return res
}

// MemoryBytes reports base plus memtable storage, for StatsOf.
func (lv *Live) MemoryBytes() int64 {
	var b int64
	type sized interface{ MemoryBytes() int64 }
	if m, ok := lv.base.(sized); ok {
		b = m.MemoryBytes()
	}
	return b + lv.mem.MemoryBytes()
}

// CompactBase is the slow half of a compaction: it clones the base and
// encodes the first n memtable rows into the clone through the base's own
// Add path (post-train residual encoding for IVFPQ). Readers and writers
// may proceed concurrently — rows [0,n) are frozen by append-only growth,
// and the clone never disturbs rows visible through the original base.
func (lv *Live) CompactBase(n int) (Index, error) {
	cl, ok := lv.base.(AppendableCloner)
	if !ok {
		return nil, fmt.Errorf("vecstore: base %T does not support compaction (no CloneForAppend)", lv.base)
	}
	if n < 0 || n > lv.mem.Len() {
		return nil, fmt.Errorf("vecstore: CompactBase(%d) outside memtable of %d rows", n, lv.mem.Len())
	}
	newBase := cl.CloneForAppend()
	codes, keys := lv.mem.snapshot(0, n)
	buf := make([]float32, lv.dim)
	for r := 0; r < n; r++ {
		f16.DecodeInto(buf, codes[r*lv.dim:(r+1)*lv.dim])
		newBase.Add(buf, keys[r])
	}
	return newBase, nil
}

// Rotate is the fast half of a compaction: it returns the successor Live
// serving newBase (which must hold exactly the old base plus memtable rows
// [0,n), i.e. the CompactBase result) with a fresh memtable seeded with
// the rows added since the cut. The caller MUST exclude writers (hold the
// route write lock) across Rotate and the snapshot publish; readers of the
// old Live are unaffected. Ids are stable: old id nb+r == new id
// newBase.Len()+(r-n) for every surviving memtable row.
func (lv *Live) Rotate(newBase Index, n int) *Live {
	if want := lv.nb + n; newBase.Len() != want {
		panic(fmt.Sprintf("vecstore: Rotate base has %d rows, want %d", newBase.Len(), want))
	}
	m := lv.mem.Len()
	fresh := NewMemtable(lv.dim)
	codes, keys := lv.mem.snapshot(n, m)
	fresh.codes = append(fresh.codes, codes...)
	fresh.keys = append(fresh.keys, keys...)
	return &Live{base: newBase, mem: fresh, nb: newBase.Len(), dim: lv.dim}
}
