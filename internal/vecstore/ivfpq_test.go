package vecstore

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/rng"
)

// IVF-PQ variant suite: residual encoding, OPQ rotation, the VSF4
// persistence format, and the post-train Add hot path. The parity
// discipline matches parity_test.go — the pooled, per-cell-LUT kernel
// path must reproduce the retained scalar reference bit-for-bit for every
// encoding variant.

// ivfpqVariants enumerates the encoding variants under test.
var ivfpqVariants = []struct {
	name string
	cfg  func(IVFPQConfig) IVFPQConfig
}{
	{"raw", func(c IVFPQConfig) IVFPQConfig { return c }},
	{"res", func(c IVFPQConfig) IVFPQConfig { c.Residual = true; return c }},
	{"opq", func(c IVFPQConfig) IVFPQConfig { c.OPQ = true; return c }},
	{"res+opq", func(c IVFPQConfig) IVFPQConfig { c.Residual, c.OPQ = true, true; return c }},
}

func buildVariantIVFPQ(t *testing.T, base IVFPQConfig, variant func(IVFPQConfig) IVFPQConfig, vecs [][]float32, keys []string) *IVFPQ {
	t.Helper()
	ix := NewIVFPQ(variant(base))
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	return ix
}

func TestIVFPQVariantsKernelParity(t *testing.T) {
	for _, dim := range []int{7, 32} {
		const n = 900
		vecs, keys := parityVectors(t, dim, n)
		base := IVFPQConfig{Dim: dim, NList: 12, NProbe: 5, M: pqParityM(dim), Seed: 53}
		for _, v := range ivfpqVariants {
			ix := buildVariantIVFPQ(t, base, v.cfg, vecs, keys)
			r := rng.New(191)
			for _, k := range parityKs {
				for trial := 0; trial < 4; trial++ {
					q := randomUnit(r, 1, dim)[0]
					checkSameResults(t, "ivfpq/"+v.name+" dim="+itoaTest(dim)+" k="+itoaTest(k),
						ix.Search(q, k), ix.searchReference(q, k))
				}
			}
			queries := randomUnit(r, 9, dim)
			batch := ix.SearchBatch(queries, 10)
			for qi, q := range queries {
				checkSameResults(t, "ivfpq/"+v.name+" batch dim="+itoaTest(dim),
					batch[qi], ix.searchReference(q, 10))
			}
		}
	}
}

// anisotropicUnit generates unit vectors whose energy decays geometrically
// along a fixed random orthonormal basis — correlated, axis-misaligned
// structure (realistic embedding covariance) where residual encoding and
// OPQ rotation both earn measurable recall, unlike the isotropic
// randomUnit fixture where rotation is a no-op by symmetry.
func anisotropicUnit(r *rng.Source, n, dim int, decay float64) [][]float32 {
	mix := make([]float32, dim*dim)
	for i := range mix {
		mix[i] = float32(r.Normal(0, 1))
	}
	basis := polarOrthonormal(mix, dim)
	if basis == nil {
		panic("vecstore test: degenerate mixing basis")
	}
	scale := make([]float64, dim)
	s := 1.0
	for d := range scale {
		scale[d] = s
		s *= decay
	}
	out := make([][]float32, n)
	g := make([]float32, dim)
	for i := range out {
		for d := range g {
			g[d] = float32(r.Normal(0, 1) * scale[d])
		}
		v := make([]float32, dim)
		applyRot(v, basis, g)
		normalize32(v)
		out[i] = v
	}
	return out
}

func normalize32(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range v {
		v[i] *= inv
	}
}

// TestIVFPQResidualRecallRegression pins the tentpole acceptance: on the
// recall-regression fixture (same dim/n/NList/NProbe/M/seed as
// TestIVFPQRecallRegression), residual encoding must reach at least the
// non-residual recall@10 at identical M and nprobe, and on the
// anisotropic fixture the OPQ variant must reach at least the
// residual-only recall.
func TestIVFPQResidualRecallRegression(t *testing.T) {
	build := func(vecs [][]float32, cfg IVFPQConfig) *IVFPQ {
		ix := NewIVFPQ(cfg)
		for _, v := range vecs {
			ix.Add(v, "")
		}
		ix.Train()
		return ix
	}
	// Isotropic fixture of TestIVFPQRecallRegression: residual ≥ raw.
	{
		const dim, n = 32, 2000
		r := rng.New(211)
		vecs := randomUnit(r, n, dim)
		queries := randomUnit(r, 40, dim)
		base := IVFPQConfig{Dim: dim, NList: 32, NProbe: 24, M: 16, Seed: 7}
		raw := build(vecs, base).Recall(vecs, queries, 10)
		resCfg := base
		resCfg.Residual = true
		res := build(vecs, resCfg).Recall(vecs, queries, 10)
		t.Logf("isotropic recall@10: raw=%.3f residual=%.3f", raw, res)
		if res < raw {
			t.Fatalf("residual recall %.3f below non-residual %.3f at same M/nprobe", res, raw)
		}
		// Absolute floor: measured 0.913 when residual encoding landed
		// (raw was 0.885 on this fixture; random unit vectors are
		// clusterless, so the within-cell variance the anchors remove is
		// modest by design — clustered embedding data gains more).
		if res < 0.90 {
			t.Fatalf("residual recall@10 %.3f below regression floor 0.90", res)
		}
	}
	// Anisotropic fixture: res+opq ≥ res.
	{
		const dim, n = 32, 2000
		r := rng.New(227)
		vecs := anisotropicUnit(r, n, dim, 0.85)
		queries := anisotropicUnit(r, 40, dim, 0.85)
		base := IVFPQConfig{Dim: dim, NList: 32, NProbe: 24, M: 8, Seed: 7, Residual: true}
		res := build(vecs, base).Recall(vecs, queries, 10)
		opqCfg := base
		opqCfg.OPQ = true
		opq := build(vecs, opqCfg).Recall(vecs, queries, 10)
		t.Logf("anisotropic recall@10: residual=%.3f residual+opq=%.3f", res, opq)
		if opq < res {
			t.Fatalf("OPQ recall %.3f below residual-only %.3f at same M/nprobe", opq, res)
		}
	}
}

// TestIVFPQSetNProbeClampedAtTrain is the regression test for the
// pre-train SetNProbe bug: a probe count set before Train survived
// unclamped when Train auto-sized or shrank K, leaving nprobe > nlist.
func TestIVFPQSetNProbeClampedAtTrain(t *testing.T) {
	vecs, keys := conformanceData(100, 8)
	// Auto-sized K: sqrt(100) = 10 cells, requested nprobe 64.
	ix := NewIVFPQ(IVFPQConfig{Dim: 8, M: 4, Seed: 1})
	ix.SetNProbe(64)
	for i, v := range vecs {
		ix.Add(v, keys[i])
	}
	ix.Train()
	if ix.NProbe() > ix.NList() {
		t.Fatalf("IVFPQ nprobe %d survived above auto-sized nlist %d", ix.NProbe(), ix.NList())
	}
	// K shrunk to n: 80 requested cells, 20 vectors.
	ix2 := NewIVFPQ(IVFPQConfig{Dim: 8, NList: 80, M: 4, Seed: 1})
	ix2.SetNProbe(40)
	for i, v := range vecs[:20] {
		ix2.Add(v, keys[i])
	}
	ix2.Train()
	if ix2.NProbe() > ix2.NList() {
		t.Fatalf("IVFPQ nprobe %d survived above shrunk nlist %d", ix2.NProbe(), ix2.NList())
	}
	// Same contract for plain IVF, which shared the bug.
	ivf := NewIVF(IVFConfig{Dim: 8, Seed: 1})
	ivf.SetNProbe(64)
	for i, v := range vecs {
		ivf.Add(v, keys[i])
	}
	ivf.Train()
	if ivf.NProbe() > ivf.NList() {
		t.Fatalf("IVF nprobe %d survived above auto-sized nlist %d", ivf.NProbe(), ivf.NList())
	}
}

// TestIVFPQPostTrainAddAllocs pins the post-train Add hot path: encoding
// into the tail of the cell's code block must not allocate a fresh code
// buffer per insert (the old path did `make([]byte, m)` every call);
// amortised slice growth is the only allocation left.
func TestIVFPQPostTrainAddAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is deliberately lossy under -race; steady-state allocs not observable")
	}
	for _, v := range ivfpqVariants {
		const dim, n = 16, 800
		vecs, keys := parityVectors(t, dim, n)
		ix := buildVariantIVFPQ(t, IVFPQConfig{Dim: dim, NList: 8, NProbe: 4, M: 8, Seed: 57}, v.cfg, vecs[:n/2], keys[:n/2])
		next := n / 2
		allocs := testing.AllocsPerRun(300, func() {
			ix.Add(vecs[next%n], "post")
			next++
		})
		if allocs >= 1 {
			t.Fatalf("%s: post-train Add allocates %.2f objects/op, want amortised < 1", v.name, allocs)
		}
	}
}

// TestVSF4SaveLoadRoundTrip round-trips every encoding variant through
// VSF4: trained state must survive exactly (keys, centroids, codebook,
// rotation, postings, codes), searches must match bit-for-bit, and the
// format dispatchers must route each magic to the right loader.
func TestVSF4SaveLoadRoundTrip(t *testing.T) {
	const dim, n = 24, 400
	vecs, keys := parityVectors(t, dim, n)
	for _, v := range ivfpqVariants {
		ix := buildVariantIVFPQ(t, IVFPQConfig{Dim: dim, NList: 10, NProbe: 4, M: 6, Seed: 59}, v.cfg, vecs, keys)
		path := t.TempDir() + "/index.vsf4"
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIVFPQ(path)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if loaded.Len() != n || loaded.Dim() != dim || loaded.M() != 6 ||
			loaded.NList() != ix.NList() || loaded.NProbe() != ix.NProbe() {
			t.Fatalf("%s: loaded shape %d/%d/m=%d nlist=%d nprobe=%d",
				v.name, loaded.Len(), loaded.Dim(), loaded.M(), loaded.NList(), loaded.NProbe())
		}
		if loaded.Residual() != ix.Residual() || loaded.OPQ() != ix.OPQ() || loaded.Variant() != ix.Variant() {
			t.Fatalf("%s: loaded variant %q residual=%v opq=%v", v.name, loaded.Variant(), loaded.Residual(), loaded.OPQ())
		}
		for i := range keys {
			if loaded.Key(i) != ix.Key(i) {
				t.Fatalf("%s: key %d mismatch", v.name, i)
			}
		}
		for c := range ix.cellIDs {
			if len(loaded.cellIDs[c]) != len(ix.cellIDs[c]) {
				t.Fatalf("%s: cell %d size mismatch", v.name, c)
			}
			for j, id := range ix.cellIDs[c] {
				if loaded.cellIDs[c][j] != id {
					t.Fatalf("%s: cell %d posting %d mismatch", v.name, c, j)
				}
			}
			for j, code := range ix.cellCodes[c] {
				if loaded.cellCodes[c][j] != code {
					t.Fatalf("%s: cell %d code byte %d mismatch", v.name, c, j)
				}
			}
		}
		for i, f := range ix.cb.cents {
			if loaded.cb.cents[i] != f {
				t.Fatalf("%s: codebook float %d mismatch", v.name, i)
			}
		}
		for c, cent := range ix.km.Centroids {
			for d, f := range cent {
				if loaded.km.Centroids[c][d] != f {
					t.Fatalf("%s: coarse centroid %d dim %d mismatch", v.name, c, d)
				}
			}
		}
		if ix.rot != nil {
			for i, f := range ix.rot {
				if loaded.rot[i] != f {
					t.Fatalf("%s: rotation float %d mismatch", v.name, i)
				}
			}
		}
		r := rng.New(193)
		for trial := 0; trial < 3; trial++ {
			q := randomUnit(r, 1, dim)[0]
			checkSameResults(t, "vsf4 "+v.name, loaded.Search(q, 5), ix.Search(q, 5))
		}
	}

	// Dispatch: Load routes VSF4 to *IVFPQ; the typed loaders of the other
	// families refuse it, and LoadIVFPQ refuses theirs.
	ix := buildVariantIVFPQ(t, IVFPQConfig{Dim: dim, NList: 10, NProbe: 4, M: 6, Seed: 59},
		ivfpqVariants[3].cfg, vecs, keys)
	dir := t.TempDir()
	v4 := dir + "/a.vsf4"
	if err := ix.Save(v4); err != nil {
		t.Fatal(err)
	}
	anyIx, err := Load(v4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := anyIx.(*IVFPQ); !ok {
		t.Fatalf("Load returned %T for VSF4", anyIx)
	}
	if _, err := LoadFlat(v4); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadFlat on VSF4: %v", err)
	}
	if _, err := LoadPQ(v4); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadPQ on VSF4: %v", err)
	}
	flat := NewFlat(dim)
	for i, fv := range vecs {
		flat.Add(fv, keys[i])
	}
	v2 := dir + "/a.vsf"
	if err := flat.Save(v2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIVFPQ(v2); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadIVFPQ on VSF2: %v", err)
	}
	if st := StatsOf(ix); !strings.Contains(st.Kind, "res+opq") {
		t.Fatalf("StatsOf kind %q missing variant tag", st.Kind)
	}
}

// TestVSF4LoadThenAdd is the trained-state restoration regression test: a
// VSF4-loaded IVFPQ followed by Add must route, encode (residual, under
// the loaded rotation) and search correctly, without retraining.
func TestVSF4LoadThenAdd(t *testing.T) {
	const dim, n, extra = 16, 600, 50
	vecs, keys := parityVectors(t, dim, n)
	for _, v := range ivfpqVariants {
		ix := buildVariantIVFPQ(t, IVFPQConfig{Dim: dim, NList: 8, NProbe: 8, M: 8, Seed: 61},
			v.cfg, vecs[:n-extra], keys[:n-extra])
		path := t.TempDir() + "/mutate.vsf4"
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIVFPQ(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, nv := range vecs[n-extra:] {
			loaded.Add(nv, keys[n-extra+i])
		}
		if loaded.Len() != n {
			t.Fatalf("%s: Len %d after post-load adds", v.name, loaded.Len())
		}
		hits := 0
		for i := n - extra; i < n; i++ {
			for _, r := range loaded.Search(vecs[i], 3) {
				if r.ID == i {
					hits++
					break
				}
			}
		}
		if hits < extra-5 {
			t.Fatalf("%s: only %d/%d post-load vectors self-retrieve in top-3", v.name, hits, extra)
		}
		// The mutated index must still hold kernel/reference parity.
		r := rng.New(197)
		for trial := 0; trial < 3; trial++ {
			q := randomUnit(r, 1, dim)[0]
			checkSameResults(t, "vsf4 load+add "+v.name, loaded.Search(q, 7), loaded.searchReference(q, 7))
		}
	}
}

// TestVSF4RejectsCorrupt: out-of-range code bytes and unknown header
// flags must fail at load time with ErrBadFormat.
func TestVSF4RejectsCorrupt(t *testing.T) {
	const dim, n = 8, 60 // ksub = n = 60 < 256
	vecs, keys := parityVectors(t, dim, n)
	ix := buildVariantIVFPQ(t, IVFPQConfig{Dim: dim, NList: 4, NProbe: 4, M: 4, Seed: 63},
		ivfpqVariants[1].cfg, vecs, keys)
	dir := t.TempDir()
	path := dir + "/good.vsf4"
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Last byte of the file is the last code byte of the last non-empty
	// cell: centroid 255 of 60.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] = 255
	bad := dir + "/code.vsf4"
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIVFPQ(bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("corrupt code byte: got %v, want ErrBadFormat", err)
	}
	// Unknown flag bit (header offset 24 = magic+dim+m+ksub+nlist+nprobe).
	corrupt = append([]byte(nil), raw...)
	corrupt[24] |= 0x80
	bad = dir + "/flags.vsf4"
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIVFPQ(bad); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("unknown flag bit: got %v, want ErrBadFormat", err)
	}
}

// TestPolarOrthonormal sanity-checks the Procrustes solver on a known
// case: the polar factor of an orthogonal matrix times a positive scalar
// is that orthogonal matrix itself.
func TestPolarOrthonormal(t *testing.T) {
	const d = 12
	r := rng.New(229)
	m := make([]float32, d*d)
	for i := range m {
		m[i] = float32(r.Normal(0, 1))
	}
	q := polarOrthonormal(m, d)
	if q == nil {
		t.Fatal("polar factor did not converge on a random matrix")
	}
	// QᵀQ = I within float32 tolerance.
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var s float64
			for l := 0; l < d; l++ {
				s += float64(q[l*d+i]) * float64(q[l*d+j])
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if diff := s - want; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("QᵀQ[%d,%d] = %v", i, j, s)
			}
		}
	}
	// Scaling an orthogonal matrix must return the same matrix.
	scaled := make([]float32, d*d)
	for i, v := range q {
		scaled[i] = 3.5 * v
	}
	q2 := polarOrthonormal(scaled, d)
	if q2 == nil {
		t.Fatal("polar factor did not converge on a scaled rotation")
	}
	for i := range q {
		if diff := float64(q2[i] - q[i]); diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("polar(3.5·Q)[%d] = %v, want %v", i, q2[i], q[i])
		}
	}
}
