package vecstore

import (
	"testing"

	"repro/internal/rng"
)

func buildHNSW(t testing.TB, n, dim int, cfg HNSWConfig) (*HNSW, [][]float32) {
	t.Helper()
	cfg.Dim = dim
	r := rng.New(101)
	vecs := randomUnit(r, n, dim)
	h := NewHNSW(cfg)
	for i, v := range vecs {
		if id := h.Add(v, ""); id != i {
			t.Fatalf("id %d, want %d", id, i)
		}
	}
	return h, vecs
}

func TestHNSWSelfRetrieval(t *testing.T) {
	h, vecs := buildHNSW(t, 500, 32, HNSWConfig{Seed: 1})
	hits := 0
	for i := 0; i < len(vecs); i += 7 {
		res := h.Search(vecs[i], 1)
		if len(res) == 1 && res[0].ID == i {
			hits++
		}
	}
	total := (len(vecs) + 6) / 7
	if float64(hits)/float64(total) < 0.95 {
		t.Fatalf("self-retrieval %d/%d", hits, total)
	}
}

func TestHNSWRecallHigh(t *testing.T) {
	h, _ := buildHNSW(t, 800, 32, HNSWConfig{Seed: 2, EfSearch: 64})
	r := rng.New(103)
	queries := randomUnit(r, 40, 32)
	if rec := h.Recall(queries, 5); rec < 0.85 {
		t.Fatalf("recall@5 = %.3f", rec)
	}
}

func TestHNSWRecallImprovesWithEf(t *testing.T) {
	h, _ := buildHNSW(t, 800, 24, HNSWConfig{Seed: 3})
	r := rng.New(107)
	queries := randomUnit(r, 30, 24)
	h.SetEfSearch(4)
	low := h.Recall(queries, 5)
	h.SetEfSearch(128)
	high := h.Recall(queries, 5)
	if high < low {
		t.Fatalf("recall fell with wider beam: %.3f -> %.3f", low, high)
	}
	if high < 0.9 {
		t.Fatalf("ef=128 recall %.3f", high)
	}
}

func TestHNSWDeterministic(t *testing.T) {
	a, _ := buildHNSW(t, 300, 16, HNSWConfig{Seed: 5})
	b, _ := buildHNSW(t, 300, 16, HNSWConfig{Seed: 5})
	r := rng.New(109)
	q := randomUnit(r, 1, 16)[0]
	ra, rb := a.Search(q, 5), b.Search(q, 5)
	if len(ra) != len(rb) {
		t.Fatal("result lengths differ")
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatal("construction not deterministic")
		}
	}
}

func TestHNSWEmptyAndSingle(t *testing.T) {
	h := NewHNSW(HNSWConfig{Dim: 8, Seed: 1})
	if res := h.Search(make([]float32, 8), 3); res != nil {
		t.Fatal("empty index returned results")
	}
	v := []float32{1, 0, 0, 0, 0, 0, 0, 0}
	h.Add(v, "only")
	res := h.Search(v, 3)
	if len(res) != 1 || res[0].Key != "only" {
		t.Fatalf("single-node search: %v", res)
	}
}

func TestHNSWKeys(t *testing.T) {
	h, vecs := buildHNSW(t, 50, 16, HNSWConfig{Seed: 7})
	_ = vecs
	if h.Key(10) != "" {
		t.Fatal("unexpected key")
	}
	if h.Len() != 50 || h.Dim() != 16 {
		t.Fatal("shape accessors")
	}
}

func TestHNSWDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHNSW(HNSWConfig{Dim: 8}).Add(make([]float32, 4), "")
}

// --- SQ8 ---

func buildSQ8(t testing.TB, n, dim int) (*SQ8, [][]float32) {
	t.Helper()
	r := rng.New(201)
	vecs := randomUnit(r, n, dim)
	ix := NewSQ8(dim)
	for _, v := range vecs {
		ix.Add(v, "")
	}
	ix.Train()
	return ix, vecs
}

func TestSQ8SelfRetrieval(t *testing.T) {
	ix, vecs := buildSQ8(t, 400, 32)
	hits := 0
	for i := 0; i < len(vecs); i += 7 {
		res := ix.Search(vecs[i], 1)
		if len(res) == 1 && res[0].ID == i {
			hits++
		}
	}
	total := (len(vecs) + 6) / 7
	if float64(hits)/float64(total) < 0.9 {
		t.Fatalf("self-retrieval %d/%d", hits, total)
	}
}

func TestSQ8RecallVsExact(t *testing.T) {
	ix, vecs := buildSQ8(t, 500, 32)
	r := rng.New(203)
	queries := randomUnit(r, 30, 32)
	if rec := ix.Recall(vecs, queries, 5); rec < 0.8 {
		t.Fatalf("SQ8 recall@5 = %.3f", rec)
	}
}

func TestSQ8MemoryQuarterOfFP16(t *testing.T) {
	ix, _ := buildSQ8(t, 100, 64)
	fp16 := int64(100 * 64 * 2)
	if ix.MemoryBytes() >= fp16 {
		t.Fatalf("SQ8 %d bytes not below FP16 %d", ix.MemoryBytes(), fp16)
	}
}

func TestSQ8Lifecycle(t *testing.T) {
	ix := NewSQ8(8)
	ix.Add(make([]float32, 8), "a")
	if ix.Trained() {
		t.Fatal("trained before Train")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Search before Train did not panic")
			}
		}()
		ix.Search(make([]float32, 8), 1)
	}()
	ix.Train()
	if !ix.Trained() || ix.Len() != 1 {
		t.Fatal("train bookkeeping")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Add after Train did not panic")
			}
		}()
		ix.Add(make([]float32, 8), "b")
	}()
}

func TestSQ8TrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSQ8(4).Train()
}

func TestSQ8ConstantDimension(t *testing.T) {
	// A dimension with zero range must not divide by zero.
	ix := NewSQ8(2)
	ix.Add([]float32{1, 0.5}, "a")
	ix.Add([]float32{1, -0.5}, "b")
	ix.Train()
	res := ix.Search([]float32{1, 1}, 2)
	if len(res) != 2 || res[0].Key != "a" {
		t.Fatalf("results %v", res)
	}
}

func BenchmarkHNSWSearch10k(b *testing.B) {
	h, _ := buildHNSW(b, 10000, 128, HNSWConfig{Seed: 1})
	r := rng.New(1)
	q := randomUnit(r, 1, 128)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Search(q, 5)
	}
}

func BenchmarkSQ8Search10k(b *testing.B) {
	ix, _ := buildSQ8(b, 10000, 128)
	r := rng.New(1)
	q := randomUnit(r, 1, 128)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 5)
	}
}
