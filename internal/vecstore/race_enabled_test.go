//go:build race

package vecstore

// raceEnabled reports whether the race detector is active; sync.Pool is
// deliberately lossy under -race, so zero-allocation assertions that rely
// on pool hits are skipped there.
const raceEnabled = true
