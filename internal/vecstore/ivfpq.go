package vecstore

import (
	"fmt"
	"math"

	"repro/internal/f16"
)

// IVFPQ composes the inverted-file coarse quantizer with product-quantized
// cell storage (FAISS IndexIVFPQ, without the residual encoding — codes
// quantize the raw vectors against one codebook shared by all cells, which
// keeps LUT construction per query O(M·ksub) rather than per probed cell).
// A query scans only the NProbe nearest cells, and each probed cell is an
// M-byte-per-row LUT scan, so both the scanned-row count and the
// bytes-per-row shrink relative to Flat. The recall/latency/memory
// trade-off is pinned by the IVF-PQ recall regression test.
type IVFPQ struct {
	dim    int
	nprobe int
	pqCfg  PQConfig
	km     *KMeans // coarse quantizer (spherical, like IVF)
	cb     *pqCodebook
	keys   []string
	// staged buffers codes contiguously in insertion order until Train.
	staged []uint16
	// After Train: per-cell contiguous PQ code blocks and id postings. Row
	// j of cellCodes[c] belongs to insertion id cellIDs[c][j].
	cellIDs   [][]int
	cellCodes [][]byte
	trained   bool
}

// IVFPQConfig parameterises IVF-PQ construction.
type IVFPQConfig struct {
	Dim    int
	NList  int    // number of cells; 0 → sqrt(n) at Train time
	NProbe int    // cells scanned per query; 0 → max(1, NList/16)
	M      int    // PQ subspaces (code bytes per vector); 0 → max(1, Dim/8)
	Seed   uint64 // quantizer and codebook training seed
}

// NewIVFPQ returns an untrained IVF-PQ index. Vectors may be added before
// training; Train must be called before Search.
func NewIVFPQ(cfg IVFPQConfig) *IVFPQ {
	pqCfg := PQConfig{Dim: cfg.Dim, M: cfg.M, Seed: cfg.Seed}
	pqCfg.normalize()
	return &IVFPQ{
		dim:    cfg.Dim,
		nprobe: cfg.NProbe,
		pqCfg:  pqCfg,
		km:     &KMeans{K: cfg.NList, Seed: cfg.Seed},
	}
}

// Add implements Index. Vectors added after training are encoded and
// routed to their cell immediately; before training they are only
// buffered.
func (ix *IVFPQ) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to IVFPQ of dim %d", len(vec), ix.dim))
	}
	id := len(ix.keys)
	ix.keys = append(ix.keys, key)
	if ix.trained {
		c := ix.km.Nearest(vec)
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		code := make([]byte, ix.cb.m)
		ix.cb.encode(vec, code)
		ix.cellCodes[c] = append(ix.cellCodes[c], code...)
	} else {
		ix.staged = f16.AppendEncoded(ix.staged, vec)
	}
	return id
}

// Train fits the coarse quantizer and the shared PQ codebook on all
// buffered vectors, then encodes every vector into its cell's contiguous
// code block. It panics if the index is empty.
func (ix *IVFPQ) Train() {
	n := len(ix.keys)
	if n == 0 {
		panic("vecstore: Train on empty IVFPQ")
	}
	if ix.km.K <= 0 {
		ix.km.K = int(math.Sqrt(float64(n)))
		if ix.km.K < 1 {
			ix.km.K = 1
		}
	}
	if ix.km.K > n {
		ix.km.K = n
	}
	if ix.nprobe <= 0 {
		ix.nprobe = ix.km.K / 16
		if ix.nprobe < 1 {
			ix.nprobe = 1
		}
	}
	full := make([][]float32, n)
	for i := range full {
		full[i] = f16.Decode(ix.staged[i*ix.dim : (i+1)*ix.dim])
	}
	ix.km.Train(full)
	ksub := pqKSubMax
	if ksub > n {
		ksub = n
	}
	ix.cb = newPQCodebook(ix.dim, ix.pqCfg.M, ksub)
	ix.cb.train(full, ix.pqCfg.TrainIters, ix.pqCfg.Seed)
	// Assign cells, encode all rows in parallel, then pack per cell.
	assign := make([]int, n)
	counts := make([]int, ix.km.K)
	codes := make([]byte, n*ix.cb.m)
	parallelFor(n, 0, func(id int) {
		assign[id] = ix.km.Nearest(full[id])
		ix.cb.encode(full[id], codes[id*ix.cb.m:(id+1)*ix.cb.m])
	})
	for _, c := range assign {
		counts[c]++
	}
	ix.cellIDs = make([][]int, ix.km.K)
	ix.cellCodes = make([][]byte, ix.km.K)
	for c, cnt := range counts {
		ix.cellIDs[c] = make([]int, 0, cnt)
		ix.cellCodes[c] = make([]byte, 0, cnt*ix.cb.m)
	}
	for id := 0; id < n; id++ {
		c := assign[id]
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		ix.cellCodes[c] = append(ix.cellCodes[c], codes[id*ix.cb.m:(id+1)*ix.cb.m]...)
	}
	ix.staged = nil
	ix.trained = true
}

// Trained reports whether the quantizers have been fitted.
func (ix *IVFPQ) Trained() bool { return ix.trained }

// SetNProbe adjusts the number of cells scanned per query (recall knob).
func (ix *IVFPQ) SetNProbe(n int) {
	if n < 1 {
		n = 1
	}
	if ix.trained && n > ix.km.K {
		n = ix.km.K
	}
	ix.nprobe = n
}

// NProbe returns the current probe count.
func (ix *IVFPQ) NProbe() int { return ix.nprobe }

// NList returns the number of cells (0 before training when auto-sized).
func (ix *IVFPQ) NList() int { return ix.km.K }

// M returns the number of PQ subspaces (code bytes per vector).
func (ix *IVFPQ) M() int { return ix.pqCfg.M }

// Len implements Index.
func (ix *IVFPQ) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *IVFPQ) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *IVFPQ) Key(id int) string { return ix.keys[id] }

// Search implements Index: one LUT is built for the query, then the nprobe
// nearest cells are streamed through the PQ LUT kernel.
func (ix *IVFPQ) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	probes := ix.km.NearestN(query, ix.nprobe)
	lp := getTile(ix.cb.m * ix.cb.ksub)
	lut := *lp
	ix.cb.lutInto(lut, query)
	h := getTopK(k)
	for _, c := range probes {
		scanPQTopK(ix.cellCodes[c], ix.cb, lut, h, ix.cellIDs[c], 0)
	}
	putTile(lp)
	res := h.results(ix.keys)
	putTopK(h)
	return res
}

// SearchBatch implements BatchSearcher: LUTs are built once per query (the
// batch amortisation), queries are grouped by probed cell, and cells are
// scanned in parallel.
func (ix *IVFPQ) SearchBatch(queries [][]float32, k int) [][]Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	out := make([][]Result, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	// Probe assignment and LUT construction, fanned out over queries.
	probes := make([][]int, len(queries))
	luts, pooled := buildLUTs(ix.cb, queries)
	parallelFor(len(queries), 0, func(qi int) {
		probes[qi] = ix.km.NearestN(queries[qi], ix.nprobe)
	})
	// Invert: cell → indices of the queries probing it.
	perCell := make([][]int32, ix.km.K)
	for qi, ps := range probes {
		for _, c := range ps {
			perCell[c] = append(perCell[c], int32(qi))
		}
	}
	work := make([]int, 0, ix.km.K)
	for c, qs := range perCell {
		if len(qs) > 0 && len(ix.cellIDs[c]) > 0 {
			work = append(work, c)
		}
	}
	// Scan cells in parallel; each produces one partial heap per
	// interested query, merged per query afterwards.
	partial := make([][]*topK, len(work))
	parallelFor(len(work), 0, func(wi int) {
		c := work[wi]
		qs := perCell[c]
		qluts := make([][]float32, len(qs))
		hs := make([]*topK, len(qs))
		for i, qi := range qs {
			qluts[i] = luts[qi]
			hs[i] = getTopK(k)
		}
		scanPQBatchTopK(ix.cellCodes[c], ix.cb, qluts, hs, ix.cellIDs[c], 0)
		partial[wi] = hs
	})
	releaseLUTs(pooled)
	final := make([]*topK, len(queries))
	for wi, c := range work {
		for i, qi := range perCell[c] {
			h := partial[wi][i]
			if final[qi] == nil {
				final[qi] = h
				continue
			}
			f := final[qi]
			for j, id := range h.ids {
				f.push(id, h.scores[j])
			}
			putTopK(h)
		}
	}
	for qi := range out {
		if final[qi] == nil {
			// All probed cells were empty; Search returns a non-nil empty
			// slice in this case, so match it.
			out[qi] = []Result{}
			continue
		}
		out[qi] = final[qi].results(ix.keys)
		putTopK(final[qi])
	}
	return out
}

// searchReference is the retained reference scalar scan over the probed
// cells, one row at a time (see pq_test.go).
func (ix *IVFPQ) searchReference(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	probes := ix.km.NearestN(query, ix.nprobe)
	lut := make([]float32, ix.cb.m*ix.cb.ksub)
	ix.cb.lutInto(lut, query)
	h := newTopK(k)
	m := ix.cb.m
	for _, c := range probes {
		block := ix.cellCodes[c]
		for row, id := range ix.cellIDs[c] {
			h.push(id, lutScore(block[row*m:(row+1)*m], lut, ix.cb.ksub))
		}
	}
	return h.results(ix.keys)
}

// MemoryBytes reports code storage (M bytes/vector) plus the codebook;
// before Train it reports the FP16 staging buffer.
func (ix *IVFPQ) MemoryBytes() int64 {
	if !ix.trained {
		return int64(2 * len(ix.staged))
	}
	return int64(len(ix.keys)*ix.cb.m) + int64(4*len(ix.cb.cents))
}

// Recall measures IVF-PQ ranking fidelity against an exact FP16 scan of
// the original full-precision vectors, when those are provided. Used by
// the recall regression test to pin the coarse-probe + quantization
// trade-off.
func (ix *IVFPQ) Recall(originals [][]float32, queries [][]float32, k int) float64 {
	if len(queries) == 0 || len(originals) != ix.Len() {
		return 0
	}
	flat := NewFlat(ix.dim)
	for i, v := range originals {
		flat.Add(v, ix.keys[i])
	}
	return recallAgainst(flat, ix, queries, k)
}
