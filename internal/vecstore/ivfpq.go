package vecstore

import (
	"fmt"
	"math"

	"repro/internal/f16"
)

// IVFPQ composes the inverted-file coarse quantizer with product-quantized
// cell storage (FAISS IndexIVFPQ). Two encodings are supported:
//
//   - raw (the default): codes quantize the original vectors against one
//     codebook shared by all cells, so one LUT per query serves every
//     probed cell (LUT construction O(M·ksub) per query).
//   - residual (Residual: true): codes quantize vec − anchor(cell), the
//     FAISS discipline adapted to the spherical coarse quantizer. The
//     anchor is the cell's arithmetic mean, not its unit-normalised
//     routing centroid: the mean minimises within-cell residual energy
//     (variance decomposition), whereas subtracting a unit centroid can
//     *grow* weakly-clustered vectors (‖x−c‖² = 2−2·x·c > 1 whenever
//     x·c < ½). Residuals are therefore strictly lower-energy than raw
//     vectors, so the same M buys higher recall; the price is a
//     per-probed-cell LUT shift (O(dim + M·ksub) per cell, see
//     pqCodebook.shiftLUT) before the unchanged scan kernel runs.
//
// An optional OPQ rotation (OPQ: true) — a learned orthonormal matrix
// applied to vectors at encode time and to queries before LUT
// construction — decorrelates the subspace split first (see learnOPQ).
// Rotation preserves inner products, so scores remain comparable with the
// exact scan. A query scans only the NProbe nearest cells, and each
// probed cell is an M-byte-per-row LUT scan, so both the scanned-row
// count and the bytes-per-row shrink relative to Flat. The
// recall/latency/memory trade-off is pinned by the IVF-PQ recall
// regression tests.
type IVFPQ struct {
	dim      int
	nprobe   int
	pqCfg    PQConfig
	km       *KMeans // coarse quantizer (spherical, like IVF)
	cb       *pqCodebook
	keys     []string
	residual bool
	// anchors[c] is the arithmetic mean of cell c's (rotated) vectors,
	// the point residual codes are relative to. Only set under residual
	// encoding; routing always uses the spherical km centroids.
	anchors  [][]float32
	rot      []float32 // OPQ rotation, row-major dim×dim; nil when unused
	opqIters int
	// staged buffers codes contiguously in insertion order until Train.
	staged []uint16
	// After Train: per-cell contiguous PQ code blocks and id postings. Row
	// j of cellCodes[c] belongs to insertion id cellIDs[c][j].
	cellIDs   [][]int
	cellCodes [][]byte
	trained   bool
}

// IVFPQConfig parameterises IVF-PQ construction.
type IVFPQConfig struct {
	Dim    int
	NList  int    // number of cells; 0 → sqrt(n) at Train time
	NProbe int    // cells scanned per query; 0 → max(1, NList/16)
	M      int    // PQ subspaces (code bytes per vector); 0 → max(1, Dim/8)
	Seed   uint64 // quantizer and codebook training seed
	// Residual encodes vec − centroid(cell) instead of the raw vector:
	// higher recall at the same M, at a per-probed-cell LUT-shift cost.
	Residual bool
	// OPQ learns an orthonormal rotation (applied to vectors at encode
	// time and queries at LUT time) before the subspace split. Usually
	// combined with Residual.
	OPQ bool
	// OPQIters caps the PQ-fit/rotation-update alternations; 0 → 8.
	OPQIters int
}

// NewIVFPQ returns an untrained IVF-PQ index. Vectors may be added before
// training; Train must be called before Search.
func NewIVFPQ(cfg IVFPQConfig) *IVFPQ {
	pqCfg := PQConfig{Dim: cfg.Dim, M: cfg.M, Seed: cfg.Seed}
	pqCfg.normalize()
	ix := &IVFPQ{
		dim:      cfg.Dim,
		nprobe:   cfg.NProbe,
		pqCfg:    pqCfg,
		km:       &KMeans{K: cfg.NList, Seed: cfg.Seed},
		residual: cfg.Residual,
		opqIters: cfg.OPQIters,
	}
	if cfg.OPQ {
		ix.rot = identityRot(cfg.Dim) // replaced by the learned rotation at Train
	}
	return ix
}

// Add implements Index. Vectors added after training are encoded and
// routed to their cell immediately; before training they are only
// buffered. The post-train path encodes into the tail of the cell's
// contiguous code block (no per-insert code buffer).
func (ix *IVFPQ) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to IVFPQ of dim %d", len(vec), ix.dim))
	}
	id := len(ix.keys)
	ix.keys = append(ix.keys, key)
	if !ix.trained {
		ix.staged = f16.AppendEncoded(ix.staged, vec)
		return id
	}
	v := vec
	var vp *[]float32
	if ix.rot != nil {
		vp = getTile(ix.dim)
		applyRot(*vp, ix.rot, vec)
		v = *vp
	}
	c := ix.km.Nearest(v)
	ix.cellIDs[c] = append(ix.cellIDs[c], id)
	enc := v
	var rp *[]float32
	if ix.residual {
		rp = getTile(ix.dim)
		anchor := ix.anchors[c]
		for d, x := range v {
			(*rp)[d] = x - anchor[d]
		}
		enc = *rp
	}
	codes := ix.cellCodes[c]
	tail := len(codes)
	for i := 0; i < ix.cb.m; i++ {
		codes = append(codes, 0)
	}
	ix.cb.encode(enc, codes[tail:])
	ix.cellCodes[c] = codes
	if rp != nil {
		putTile(rp)
	}
	if vp != nil {
		putTile(vp)
	}
	return id
}

// Train fits the coarse quantizer and the PQ codebook on all buffered
// vectors (learning the OPQ rotation first when configured), then encodes
// every vector — or its cell residual — into its cell's contiguous code
// block. It panics if the index is empty.
func (ix *IVFPQ) Train() {
	n := len(ix.keys)
	if n == 0 {
		panic("vecstore: Train on empty IVFPQ")
	}
	if ix.km.K <= 0 {
		ix.km.K = int(math.Sqrt(float64(n)))
		if ix.km.K < 1 {
			ix.km.K = 1
		}
	}
	if ix.km.K > n {
		ix.km.K = n
	}
	if ix.nprobe <= 0 {
		ix.nprobe = ix.km.K / 16
		if ix.nprobe < 1 {
			ix.nprobe = 1
		}
	} else if ix.nprobe > ix.km.K {
		// A SetNProbe before Train may exceed an auto-sized or shrunk K.
		ix.nprobe = ix.km.K
	}
	full := make([][]float32, n)
	for i := range full {
		full[i] = f16.Decode(ix.staged[i*ix.dim : (i+1)*ix.dim])
	}
	ksub := pqKSubMax
	if ksub > n {
		ksub = n
	}
	if ix.rot != nil {
		ix.rot = learnOPQ(full, ix.dim, ix.pqCfg.M, ksub, ix.pqCfg.TrainIters, ix.opqIters, ix.pqCfg.Seed)
		rotated := make([][]float32, n)
		parallelFor(n, 0, func(i int) {
			rotated[i] = make([]float32, ix.dim)
			applyRot(rotated[i], ix.rot, full[i])
		})
		full = rotated
	}
	ix.km.Train(full)
	assign := make([]int, n)
	parallelFor(n, 0, func(id int) {
		assign[id] = ix.km.Nearest(full[id])
	})
	// The codebook is fit on — and codes quantize — either the (rotated)
	// vectors or their residuals against the per-cell mean anchor.
	enc := full
	if ix.residual {
		ix.anchors = make([][]float32, ix.km.K)
		cellN := make([]int, ix.km.K)
		for c := range ix.anchors {
			ix.anchors[c] = make([]float32, ix.dim)
		}
		for id, c := range assign {
			cellN[c]++
			a := ix.anchors[c]
			for d, x := range full[id] {
				a[d] += x
			}
		}
		for c, cnt := range cellN {
			if cnt == 0 {
				// No mass to average; anchor at the routing centroid so a
				// post-train Add landing here still gets a sane residual.
				copy(ix.anchors[c], ix.km.Centroids[c])
				continue
			}
			inv := 1 / float32(cnt)
			for d := range ix.anchors[c] {
				ix.anchors[c][d] *= inv
			}
		}
		res := make([][]float32, n)
		parallelFor(n, 0, func(id int) {
			anchor := ix.anchors[assign[id]]
			r := make([]float32, ix.dim)
			for d, x := range full[id] {
				r[d] = x - anchor[d]
			}
			res[id] = r
		})
		enc = res
	}
	ix.cb = newPQCodebook(ix.dim, ix.pqCfg.M, ksub)
	ix.cb.train(enc, ix.pqCfg.TrainIters, ix.pqCfg.Seed)
	counts := make([]int, ix.km.K)
	codes := make([]byte, n*ix.cb.m)
	parallelFor(n, 0, func(id int) {
		ix.cb.encode(enc[id], codes[id*ix.cb.m:(id+1)*ix.cb.m])
	})
	for _, c := range assign {
		counts[c]++
	}
	ix.cellIDs = make([][]int, ix.km.K)
	ix.cellCodes = make([][]byte, ix.km.K)
	for c, cnt := range counts {
		ix.cellIDs[c] = make([]int, 0, cnt)
		ix.cellCodes[c] = make([]byte, 0, cnt*ix.cb.m)
	}
	for id := 0; id < n; id++ {
		c := assign[id]
		ix.cellIDs[c] = append(ix.cellIDs[c], id)
		ix.cellCodes[c] = append(ix.cellCodes[c], codes[id*ix.cb.m:(id+1)*ix.cb.m]...)
	}
	ix.staged = nil
	ix.trained = true
}

// Trained reports whether the quantizers have been fitted.
func (ix *IVFPQ) Trained() bool { return ix.trained }

// SetNProbe adjusts the number of cells scanned per query (recall knob).
// Values set before Train are re-clamped when Train sizes the cell count.
func (ix *IVFPQ) SetNProbe(n int) {
	if n < 1 {
		n = 1
	}
	if ix.trained && n > ix.km.K {
		n = ix.km.K
	}
	ix.nprobe = n
}

// NProbe returns the current probe count.
func (ix *IVFPQ) NProbe() int { return ix.nprobe }

// NList returns the number of cells (0 before training when auto-sized).
func (ix *IVFPQ) NList() int { return ix.km.K }

// M returns the number of PQ subspaces (code bytes per vector).
func (ix *IVFPQ) M() int { return ix.pqCfg.M }

// Residual reports whether codes quantize per-cell residuals.
func (ix *IVFPQ) Residual() bool { return ix.residual }

// OPQ reports whether a learned rotation is applied before encoding.
func (ix *IVFPQ) OPQ() bool { return ix.rot != nil }

// Variant names the encoding variant for stats and reports: "" (raw),
// "res", "opq", or "res+opq".
func (ix *IVFPQ) Variant() string {
	switch {
	case ix.residual && ix.rot != nil:
		return "res+opq"
	case ix.residual:
		return "res"
	case ix.rot != nil:
		return "opq"
	}
	return ""
}

// Len implements Index.
func (ix *IVFPQ) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *IVFPQ) Dim() int { return ix.dim }

// Key returns the metadata key for id.
func (ix *IVFPQ) Key(id int) string { return ix.keys[id] }

// rotateQuery returns the query in code space (rotated when OPQ is
// active), along with the pooled buffer to release, or nil.
func (ix *IVFPQ) rotateQuery(query []float32) ([]float32, *[]float32) {
	if ix.rot == nil {
		return query, nil
	}
	qp := getTile(ix.dim)
	applyRot(*qp, ix.rot, query)
	return *qp, qp
}

// Search implements Index: one base LUT is built for the query, then the
// nprobe nearest cells are streamed through the PQ LUT kernel. Under
// residual encoding the base LUT is shifted by each probed cell's
// centroid bias first (shiftLUT); the scan kernel itself is unchanged.
func (ix *IVFPQ) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	q, qp := ix.rotateQuery(query)
	probes := ix.km.NearestN(q, ix.nprobe)
	lp := getTile(ix.cb.m * ix.cb.ksub)
	lut := *lp
	ix.cb.lutInto(lut, q)
	h := getTopK(k)
	if ix.residual {
		cp := getTile(ix.cb.m * ix.cb.ksub)
		cellLUT := *cp
		for _, c := range probes {
			if len(ix.cellIDs[c]) == 0 {
				continue
			}
			ix.cb.shiftLUT(cellLUT, lut, q, ix.anchors[c])
			scanPQTopK(ix.cellCodes[c], ix.cb, cellLUT, h, ix.cellIDs[c], 0)
		}
		putTile(cp)
	} else {
		for _, c := range probes {
			scanPQTopK(ix.cellCodes[c], ix.cb, lut, h, ix.cellIDs[c], 0)
		}
	}
	putTile(lp)
	if qp != nil {
		putTile(qp)
	}
	res := h.results(ix.keys)
	putTopK(h)
	return res
}

// SearchBatch implements BatchSearcher: base LUTs are built once per query
// (the batch amortisation), queries are grouped by probed cell, and cells
// are scanned in parallel. Residual cells shift each interested query's
// base LUT by the cell bias before scanning, exactly as Search does.
func (ix *IVFPQ) SearchBatch(queries [][]float32, k int) [][]Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	out := make([][]Result, len(queries))
	if k <= 0 || len(queries) == 0 {
		return out
	}
	qs := queries
	if ix.rot != nil {
		qs = make([][]float32, len(queries))
		parallelFor(len(queries), 0, func(qi int) {
			qs[qi] = make([]float32, ix.dim)
			applyRot(qs[qi], ix.rot, queries[qi])
		})
	}
	// Probe assignment and LUT construction, fanned out over queries.
	probes := make([][]int, len(qs))
	luts, pooled := buildLUTs(ix.cb, qs)
	parallelFor(len(qs), 0, func(qi int) {
		probes[qi] = ix.km.NearestN(qs[qi], ix.nprobe)
	})
	// Invert: cell → indices of the queries probing it.
	perCell := make([][]int32, ix.km.K)
	for qi, ps := range probes {
		for _, c := range ps {
			perCell[c] = append(perCell[c], int32(qi))
		}
	}
	work := make([]int, 0, ix.km.K)
	for c, cells := range perCell {
		if len(cells) > 0 && len(ix.cellIDs[c]) > 0 {
			work = append(work, c)
		}
	}
	// Scan cells in parallel; each produces one partial heap per
	// interested query, merged per query afterwards.
	partial := make([][]*topK, len(work))
	parallelFor(len(work), 0, func(wi int) {
		c := work[wi]
		interested := perCell[c]
		hs := make([]*topK, len(interested))
		for i := range hs {
			hs[i] = getTopK(k)
		}
		if ix.residual {
			cp := getTile(ix.cb.m * ix.cb.ksub)
			cellLUT := *cp
			anchor := ix.anchors[c]
			for i, qi := range interested {
				ix.cb.shiftLUT(cellLUT, luts[qi], qs[qi], anchor)
				scanPQTopK(ix.cellCodes[c], ix.cb, cellLUT, hs[i], ix.cellIDs[c], 0)
			}
			putTile(cp)
		} else {
			qluts := make([][]float32, len(interested))
			for i, qi := range interested {
				qluts[i] = luts[qi]
			}
			scanPQBatchTopK(ix.cellCodes[c], ix.cb, qluts, hs, ix.cellIDs[c], 0)
		}
		partial[wi] = hs
	})
	releaseLUTs(pooled)
	final := make([]*topK, len(queries))
	for wi, c := range work {
		for i, qi := range perCell[c] {
			h := partial[wi][i]
			if final[qi] == nil {
				final[qi] = h
				continue
			}
			f := final[qi]
			for j, id := range h.ids {
				f.push(id, h.scores[j])
			}
			putTopK(h)
		}
	}
	for qi := range out {
		if final[qi] == nil {
			// All probed cells were empty; Search returns a non-nil empty
			// slice in this case, so match it.
			out[qi] = []Result{}
			continue
		}
		out[qi] = final[qi].results(ix.keys)
		putTopK(final[qi])
	}
	return out
}

// searchReference is the retained reference scalar scan over the probed
// cells, one row at a time with no pooling or parallelism (see
// pq_test.go). It reuses the same rotation / base-LUT / shiftLUT helpers
// as Search, so the kernel must reproduce it bit-for-bit.
func (ix *IVFPQ) searchReference(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: Search on untrained IVFPQ")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 {
		return nil
	}
	q := query
	if ix.rot != nil {
		q = make([]float32, ix.dim)
		applyRot(q, ix.rot, query)
	}
	probes := ix.km.NearestN(q, ix.nprobe)
	lut := make([]float32, ix.cb.m*ix.cb.ksub)
	ix.cb.lutInto(lut, q)
	cellLUT := lut
	if ix.residual {
		cellLUT = make([]float32, len(lut))
	}
	h := newTopK(k)
	m := ix.cb.m
	for _, c := range probes {
		if ix.residual {
			if len(ix.cellIDs[c]) == 0 {
				continue
			}
			ix.cb.shiftLUT(cellLUT, lut, q, ix.anchors[c])
		}
		block := ix.cellCodes[c]
		for row, id := range ix.cellIDs[c] {
			h.push(id, lutScore(block[row*m:(row+1)*m], cellLUT, ix.cb.ksub))
		}
	}
	return h.results(ix.keys)
}

// MemoryBytes reports code storage (M bytes/vector) plus the PQ codebook,
// coarse centroids, residual anchors, and OPQ rotation; before Train it
// reports the FP16 staging buffer.
func (ix *IVFPQ) MemoryBytes() int64 {
	if !ix.trained {
		return int64(2 * len(ix.staged))
	}
	b := int64(len(ix.keys)*ix.cb.m) + int64(4*len(ix.cb.cents)) +
		int64(4*ix.km.K*ix.dim) + int64(4*len(ix.rot))
	if ix.anchors != nil {
		b += int64(4 * ix.km.K * ix.dim)
	}
	return b
}

// Recall measures IVF-PQ ranking fidelity against an exact FP16 scan of
// the original full-precision vectors, when those are provided. Used by
// the recall regression test to pin the coarse-probe + quantization
// trade-off. Rotation is an internal detail (it preserves inner
// products), so originals are compared unrotated.
func (ix *IVFPQ) Recall(originals [][]float32, queries [][]float32, k int) float64 {
	if len(queries) == 0 || len(originals) != ix.Len() {
		return 0
	}
	flat := NewFlat(ix.dim)
	for i, v := range originals {
		flat.Add(v, ix.keys[i])
	}
	return recallAgainst(flat, ix, queries, k)
}
