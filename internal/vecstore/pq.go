package vecstore

import (
	"fmt"

	"repro/internal/f16"
	"repro/internal/rng"
)

// Product quantization (FAISS IndexPQ equivalent): each vector is split
// into M contiguous subspaces and every subspace is vector-quantized
// independently against its own codebook of up to 256 centroids, so a row
// is stored as M bytes — sub-byte-per-dimension once M < dim. Search is
// asymmetric (ADC): the query stays in full precision and a per-query
// M×ksub look-up table of sub-query·centroid dot products is precomputed,
// after which scoring a row is one table lookup and add per subspace — no
// FP32 decode in the hot loop. See docs/ARCHITECTURE.md for how PQ slots
// into the index zoo and when to choose it.

const (
	// pqKSubMax is the per-subspace codebook size ceiling; 256 keeps codes
	// at exactly one byte per subspace.
	pqKSubMax = 256
	// pqTrainSampleFactor bounds codebook training cost: at most
	// ksub×pqTrainSampleFactor vectors are sampled for k-means (FAISS's
	// max_points_per_centroid discipline).
	pqTrainSampleFactor = 64
	// pqTrainIters is the default per-subspace k-means iteration cap.
	pqTrainIters = 12
)

// PQConfig parameterises product-quantizer construction.
type PQConfig struct {
	Dim int
	// M is the number of subspaces, i.e. code bytes per vector; 0 selects
	// max(1, Dim/8) (8 dims per subspace, the usual FAISS operating point).
	// Clamped to [1, Dim].
	M int
	// TrainIters caps the per-subspace k-means iterations; 0 → 12.
	TrainIters int
	// Seed drives codebook training; fixed seed → bit-identical codes.
	Seed uint64
}

func (cfg *PQConfig) normalize() {
	if cfg.Dim <= 0 {
		panic("vecstore: non-positive dim")
	}
	if cfg.M <= 0 {
		cfg.M = cfg.Dim / 8
	}
	if cfg.M < 1 {
		cfg.M = 1
	}
	if cfg.M > cfg.Dim {
		cfg.M = cfg.Dim
	}
	if cfg.TrainIters <= 0 {
		cfg.TrainIters = pqTrainIters
	}
}

// pqCodebook is a trained product sub-quantizer: M independent codebooks of
// ksub centroids each. Subspace s covers query/vector dimensions
// [bounds[s], bounds[s+1]) (an even split; the first dim%M subspaces are
// one dimension wider), and its centroid c lives at
// cents[blockOff[s]+c*dsub(s) : ...+dsub(s)].
type pqCodebook struct {
	dim      int
	m        int
	ksub     int
	bounds   []int
	blockOff []int
	cents    []float32
}

// newPQCodebook allocates the codebook geometry for dim split into m
// subspaces with ksub centroids each (centroid values left zero).
func newPQCodebook(dim, m, ksub int) *pqCodebook {
	cb := &pqCodebook{
		dim:      dim,
		m:        m,
		ksub:     ksub,
		bounds:   make([]int, m+1),
		blockOff: make([]int, m+1),
	}
	dsub, rem := dim/m, dim%m
	for s := 0; s < m; s++ {
		size := dsub
		if s < rem {
			size++
		}
		cb.bounds[s+1] = cb.bounds[s] + size
		cb.blockOff[s+1] = cb.blockOff[s] + ksub*size
	}
	cb.cents = make([]float32, cb.blockOff[m])
	return cb
}

// dsub returns the width of subspace s.
func (cb *pqCodebook) dsub(s int) int { return cb.bounds[s+1] - cb.bounds[s] }

// centroid returns centroid c of subspace s.
func (cb *pqCodebook) centroid(s, c int) []float32 {
	d := cb.dsub(s)
	off := cb.blockOff[s] + c*d
	return cb.cents[off : off+d]
}

// train fits each subspace's codebook by Euclidean k-means over the
// corresponding sub-vectors of vecs. Training samples at most
// ksub×pqTrainSampleFactor vectors (deterministically, by seeded partial
// shuffle) and runs the M sub-quantizer fits concurrently; each subspace
// has its own derived seed, so results are independent of scheduling.
func (cb *pqCodebook) train(vecs [][]float32, iters int, seed uint64) {
	sample := vecs
	if limit := cb.ksub * pqTrainSampleFactor; len(vecs) > limit {
		sample = samplePQTrainSet(vecs, limit, seed)
	}
	parallelFor(cb.m, 0, func(s int) {
		d0, d1 := cb.bounds[s], cb.bounds[s+1]
		sub := make([][]float32, len(sample))
		for i, v := range sample {
			sub[i] = v[d0:d1]
		}
		km := &KMeans{
			K:         cb.ksub,
			MaxIter:   iters,
			Seed:      seed + 0x9E3779B9*uint64(s+1),
			Euclidean: true,
		}
		km.Train(sub)
		d := d1 - d0
		for c, cent := range km.Centroids {
			copy(cb.cents[cb.blockOff[s]+c*d:], cent)
		}
	})
}

// opqTrainIters is the default number of PQ-fit / rotation-update
// alternations when learning an OPQ rotation.
const opqTrainIters = 8

// learnOPQ fits an orthonormal rotation that decorrelates and balances
// the subspace split before product quantization (OPQ, Ge et al.): it
// alternates (1) fitting a PQ codebook to the rotated training sample and
// (2) solving the orthogonal-Procrustes problem min_R Σ‖R·x − x̂‖² for the
// current reconstructions x̂ (polar factor of Σ x̂·xᵀ, see kmeans.go). The
// rotation is learned against a plain-PQ proxy — the FAISS OPQMatrix
// discipline — and then applied ahead of whatever index (PQ or residual
// IVF-PQ) uses it. Returns the identity when no update improves on it
// (degenerate data). Deterministic for a fixed seed.
func learnOPQ(vecs [][]float32, dim, m, ksub, pqIters, opqIters int, seed uint64) []float32 {
	if opqIters <= 0 {
		opqIters = opqTrainIters
	}
	sample := vecs
	if limit := ksub * pqTrainSampleFactor; len(vecs) > limit {
		sample = samplePQTrainSet(vecs, limit, seed)
	}
	rot := identityRot(dim)
	rotated := make([][]float32, len(sample))
	for i := range rotated {
		rotated[i] = make([]float32, dim)
	}
	recon := make([]float32, dim)
	code := make([]byte, m)
	corr := make([]float32, dim*dim)
	// Each iteration is one fit/update pair; the codebook informing the
	// last rotation update is discarded, because the caller refits its own
	// codebook on the finally-rotated data.
	for iter := 0; iter < opqIters; iter++ {
		parallelFor(len(sample), 0, func(i int) {
			applyRot(rotated[i], rot, sample[i])
		})
		cb := newPQCodebook(dim, m, ksub)
		cb.train(rotated, pqIters, seed+uint64(iter))
		// corr = Σ x̂·xᵀ over the sample (x̂ in rotated space, x original).
		for i := range corr {
			corr[i] = 0
		}
		for i, x := range sample {
			cb.encode(rotated[i], code)
			cb.decodeInto(recon, code)
			for r, xr := range recon {
				if xr == 0 {
					continue
				}
				row := corr[r*dim : (r+1)*dim]
				for c, xc := range x {
					row[c] += xr * xc
				}
			}
		}
		next := polarOrthonormal(corr, dim)
		if next == nil {
			break // rank-deficient update; keep the current rotation
		}
		rot = next
	}
	return rot
}

// samplePQTrainSet picks n distinct vectors by a seeded partial
// Fisher-Yates shuffle (deterministic, order-independent of callers).
func samplePQTrainSet(vecs [][]float32, n int, seed uint64) [][]float32 {
	idx := make([]int, len(vecs))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(seed)
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = vecs[idx[i]]
	}
	return out
}

// encode writes the M-byte code of vec into dst (nearest centroid per
// subspace by squared Euclidean distance).
func (cb *pqCodebook) encode(vec []float32, dst []byte) {
	for s := 0; s < cb.m; s++ {
		sub := vec[cb.bounds[s]:cb.bounds[s+1]]
		best, bestD := 0, sqDist(sub, cb.centroid(s, 0))
		for c := 1; c < cb.ksub; c++ {
			if d := sqDist(sub, cb.centroid(s, c)); d < bestD {
				best, bestD = c, d
			}
		}
		dst[s] = byte(best)
	}
}

// decodeInto reconstructs the approximation encoded by code into dst.
func (cb *pqCodebook) decodeInto(dst []float32, code []byte) {
	for s, c := range code {
		copy(dst[cb.bounds[s]:cb.bounds[s+1]], cb.centroid(s, int(c)))
	}
}

// lutInto fills lut (length m×ksub) with the asymmetric-distance table for
// query q: lut[s*ksub+c] = q[subspace s] · centroid(s,c), accumulated
// sequentially over the subspace's dimensions. Every PQ scoring path
// (lutScore, pqBlock.Dot, the reference scan) reproduces exactly this
// per-subspace accumulation, so all of them agree bit-for-bit.
func (cb *pqCodebook) lutInto(lut, q []float32) {
	for s := 0; s < cb.m; s++ {
		qs := q[cb.bounds[s]:cb.bounds[s+1]]
		for c := 0; c < cb.ksub; c++ {
			cent := cb.centroid(s, c)
			var sum float32
			for j, x := range qs {
				sum += x * cent[j]
			}
			lut[s*cb.ksub+c] = sum
		}
	}
}

// shiftLUT writes into dst the per-cell LUT for residual IVF-PQ: entry
// (s,c) of the base residual LUT plus the cell bias q[subspace s]·cent
// [subspace s]. Summing a row's shifted entries therefore yields
// q·centroid(cell) + q·residual̂ — the asymmetric score of the full
// reconstruction — while keeping the scan kernel below the LUT untouched.
// The bias is accumulated sequentially over the subspace's dimensions
// (the lutInto discipline), so every scoring path that reuses this helper
// agrees bit-for-bit.
func (cb *pqCodebook) shiftLUT(dst, base, q, cent []float32) {
	for s := 0; s < cb.m; s++ {
		var bias float32
		for d := cb.bounds[s]; d < cb.bounds[s+1]; d++ {
			bias += q[d] * cent[d]
		}
		off := s * cb.ksub
		for c := 0; c < cb.ksub; c++ {
			dst[off+c] = base[off+c] + bias
		}
	}
}

// subDot scores one decoded subspace of a row against the query with the
// same sequential accumulation lutInto uses (multiplication is commutative,
// so q[d]*row[d] here equals q[d]*cent[d] there bit-for-bit).
func (cb *pqCodebook) subDot(row, q []float32, s int) float32 {
	var sum float32
	for d := cb.bounds[s]; d < cb.bounds[s+1]; d++ {
		sum += q[d] * row[d]
	}
	return sum
}

// lutScore sums a row's LUT entries with the canonical 4-lane tree: lane j
// accumulates subspaces j, j+4, …, the remainder folds into lane 0, and
// the lanes are added left to right. pqBlock.Dot mirrors this exactly.
func lutScore(code []byte, lut []float32, ksub int) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(code); i += 4 {
		s0 += lut[i*ksub+int(code[i])]
		s1 += lut[(i+1)*ksub+int(code[i+1])]
		s2 += lut[(i+2)*ksub+int(code[i+2])]
		s3 += lut[(i+3)*ksub+int(code[i+3])]
	}
	for ; i < len(code); i++ {
		s0 += lut[i*ksub+int(code[i])]
	}
	return s0 + s1 + s2 + s3
}

// pqBlock is a contiguous block of M-byte PQ codes (row i at
// codes[i*m:(i+1)*m]) sharing one codebook. It implements codeBlock so PQ
// rows can flow through the generic tile-decode kernels (reconstruction
// scans, parity checks); the production search path bypasses DecodeTile
// entirely via the LUT kernels below.
type pqBlock struct {
	codes []byte
	cb    *pqCodebook
}

func (b pqBlock) Rows() int   { return len(b.codes) / b.cb.m }
func (b pqBlock) RowDim() int { return b.cb.dim }

func (b pqBlock) DecodeTile(dst []float32, r0, r1 int) {
	m, dim := b.cb.m, b.cb.dim
	for r := r0; r < r1; r++ {
		b.cb.decodeInto(dst[(r-r0)*dim:(r-r0+1)*dim], b.codes[r*m:(r+1)*m])
	}
}

// Dot reproduces lutScore's accumulation on a decoded row: per-subspace
// sequential partial dots combined by the 4-lane tree, so generic-kernel
// scans over pqBlock are bit-identical to the LUT scan.
func (b pqBlock) Dot(row, q []float32) float32 {
	cb := b.cb
	var s0, s1, s2, s3 float32
	s := 0
	for ; s+4 <= cb.m; s += 4 {
		s0 += cb.subDot(row, q, s)
		s1 += cb.subDot(row, q, s+1)
		s2 += cb.subDot(row, q, s+2)
		s3 += cb.subDot(row, q, s+3)
	}
	for ; s < cb.m; s++ {
		s0 += cb.subDot(row, q, s)
	}
	return s0 + s1 + s2 + s3
}

func (b pqBlock) Slice(r0, r1 int) pqBlock {
	return pqBlock{codes: b.codes[r0*b.cb.m : r1*b.cb.m], cb: b.cb}
}

// PQ is a product-quantized exact-scan index (FAISS IndexPQ): every row is
// scanned, but rows are M-byte codes scored through the per-query LUT.
// Vectors are staged as FP16 until Train (the same discipline as SQ8);
// Train fits the codebooks and encodes all staged rows. Add after Train
// panics.
type PQ struct {
	dim     int
	cfg     PQConfig
	cb      *pqCodebook
	staged  []uint16 // contiguous FP16 staging until Train
	codes   []byte   // row i at codes[i*m:(i+1)*m] after Train
	keys    []string
	trained bool
}

// NewPQ returns an empty product-quantized index.
func NewPQ(cfg PQConfig) *PQ {
	cfg.normalize()
	return &PQ{dim: cfg.Dim, cfg: cfg}
}

// Add implements Index (staging vectors until Train).
func (ix *PQ) Add(vec []float32, key string) int {
	if len(vec) != ix.dim {
		panic(fmt.Sprintf("vecstore: Add dim %d to PQ of dim %d", len(vec), ix.dim))
	}
	if ix.trained {
		panic("vecstore: PQ Add after Train")
	}
	ix.staged = f16.AppendEncoded(ix.staged, vec)
	ix.keys = append(ix.keys, key)
	return len(ix.keys) - 1
}

// Train fits the sub-quantizer codebooks on the staged vectors and encodes
// every row into the contiguous code block. The codebook size is
// min(256, n); training is deterministic given the config seed.
func (ix *PQ) Train() {
	n := len(ix.keys)
	if n == 0 {
		panic("vecstore: Train on empty PQ")
	}
	full := make([][]float32, n)
	for i := range full {
		full[i] = f16.Decode(ix.staged[i*ix.dim : (i+1)*ix.dim])
	}
	ksub := pqKSubMax
	if ksub > n {
		ksub = n
	}
	ix.cb = newPQCodebook(ix.dim, ix.cfg.M, ksub)
	ix.cb.train(full, ix.cfg.TrainIters, ix.cfg.Seed)
	ix.codes = make([]byte, n*ix.cb.m)
	parallelFor(n, 0, func(i int) {
		ix.cb.encode(full[i], ix.codes[i*ix.cb.m:(i+1)*ix.cb.m])
	})
	ix.staged = nil
	ix.trained = true
}

// Trained reports whether codebooks and codes have been built.
func (ix *PQ) Trained() bool { return ix.trained }

// Len implements Index.
func (ix *PQ) Len() int { return len(ix.keys) }

// Dim implements Index.
func (ix *PQ) Dim() int { return ix.dim }

// M returns the number of subspaces (code bytes per vector).
func (ix *PQ) M() int { return ix.cfg.M }

// Key returns the metadata key for id.
func (ix *PQ) Key(id int) string { return ix.keys[id] }

// block wraps the contiguous codes for the generic scan kernels.
func (ix *PQ) block() pqBlock { return pqBlock{codes: ix.codes, cb: ix.cb} }

// Reconstruct returns the quantized approximation stored for id (the
// concatenation of its selected centroids) — PQ cannot recover the
// original vector.
func (ix *PQ) Reconstruct(id int) []float32 {
	if !ix.trained {
		panic("vecstore: PQ Reconstruct before Train")
	}
	out := make([]float32, ix.dim)
	ix.cb.decodeInto(out, ix.codes[id*ix.cb.m:(id+1)*ix.cb.m])
	return out
}

// Search implements Index: it builds the query's M×ksub LUT once, then
// runs the segment-parallel LUT scan over the code block.
func (ix *PQ) Search(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: PQ Search before Train")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	lp := getTile(ix.cb.m * ix.cb.ksub)
	lut := *lp
	ix.cb.lutInto(lut, query)
	res := searchPQBlock(ix.codes, ix.cb, lut, k, ix.keys, nil)
	putTile(lp)
	return res
}

// SearchBatch implements BatchSearcher: all LUTs are built up front (in
// parallel), amortising table construction across the batch, and every
// code segment a worker streams is scored against the whole batch.
func (ix *PQ) SearchBatch(queries [][]float32, k int) [][]Result {
	if !ix.trained {
		panic("vecstore: PQ Search before Train")
	}
	for _, q := range queries {
		if len(q) != ix.dim {
			panic("vecstore: Search dim mismatch")
		}
	}
	if k <= 0 || len(ix.keys) == 0 {
		return make([][]Result, len(queries))
	}
	luts, pooled := buildLUTs(ix.cb, queries)
	out := searchPQBlockBatch(ix.codes, ix.cb, luts, k, ix.keys)
	releaseLUTs(pooled)
	return out
}

// buildLUTs computes one pooled LUT per query in parallel. The returned
// pooled slice must be handed to releaseLUTs when scanning is done.
func buildLUTs(cb *pqCodebook, queries [][]float32) ([][]float32, []*[]float32) {
	luts := make([][]float32, len(queries))
	pooled := make([]*[]float32, len(queries))
	parallelFor(len(queries), 0, func(i int) {
		lp := getTile(cb.m * cb.ksub)
		cb.lutInto(*lp, queries[i])
		luts[i], pooled[i] = *lp, lp
	})
	return luts, pooled
}

func releaseLUTs(pooled []*[]float32) {
	for _, lp := range pooled {
		putTile(lp)
	}
}

// searchReference is the retained reference scalar scan: build the LUT,
// score one row at a time, no pooling, no parallelism (see parity_test.go
// and pq_test.go).
func (ix *PQ) searchReference(query []float32, k int) []Result {
	if !ix.trained {
		panic("vecstore: PQ Search before Train")
	}
	if len(query) != ix.dim {
		panic("vecstore: Search dim mismatch")
	}
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	lut := make([]float32, ix.cb.m*ix.cb.ksub)
	ix.cb.lutInto(lut, query)
	h := newTopK(k)
	m := ix.cb.m
	for id := 0; id < len(ix.keys); id++ {
		h.push(id, lutScore(ix.codes[id*m:(id+1)*m], lut, ix.cb.ksub))
	}
	return h.results(ix.keys)
}

// MemoryBytes reports code storage (M bytes/vector) plus the codebook;
// before Train it reports the FP16 staging buffer.
func (ix *PQ) MemoryBytes() int64 {
	if !ix.trained {
		return int64(2 * len(ix.staged))
	}
	return int64(len(ix.codes)) + int64(4*len(ix.cb.cents))
}

// Recall measures PQ ranking fidelity against an exact FP16 scan of the
// original full-precision vectors, when those are provided.
func (ix *PQ) Recall(originals [][]float32, queries [][]float32, k int) float64 {
	if len(queries) == 0 || len(originals) != ix.Len() {
		return 0
	}
	flat := NewFlat(ix.dim)
	for i, v := range originals {
		flat.Add(v, ix.keys[i])
	}
	return recallAgainst(flat, ix, queries, k)
}

// recallAgainst returns the average fraction of exact's top-k ids that
// approx's top-k also returns, over the queries.
func recallAgainst(exact, approx Index, queries [][]float32, k int) float64 {
	var hits, total int
	for _, q := range queries {
		got := map[int]bool{}
		for _, r := range approx.Search(q, k) {
			got[r.ID] = true
		}
		for _, r := range exact.Search(q, k) {
			total++
			if got[r.ID] {
				hits++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
