package vecstore

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/f16"
)

// This file implements the blocked scan kernel shared by the contiguous
// indexes (Flat, IVF cells, SQ8). The layout discipline is FAISS's: codes
// live in one flat array with row i at codes[i*dim:(i+1)*dim], so a scan is
// a pure forward stream with no pointer chasing. The kernel decodes a tile
// of scanTileRows rows into a pooled FP32 scratch buffer once, then runs
// the 4-way-unrolled float32 dot product over each row of the tile. Large
// blocks are split into GOMAXPROCS segments searched concurrently with
// per-segment top-k heaps merged at the end, so a single query saturates
// the machine. A multi-query variant amortises each decoded tile across a
// whole batch of queries (the GEMM-shaped win used by SearchBatch).
//
// Exactness: decoding a row and calling f16.DotF32 performs bit-identical
// arithmetic to the legacy per-element-widening f16.Dot (binary16→float32
// is exact and the accumulation trees match), and the top-k heap orders by
// the total order (score desc, id asc), so segment merging is associative
// and the kernel reproduces the reference scalar scan bit-for-bit. The
// parity tests in parity_test.go enforce this.

const (
	// scanTileRows is the number of rows decoded into the FP32 scratch
	// tile per kernel step. 64 rows × 384 dims × 4 B ≈ 96 KiB — sized to
	// stay L2-resident while amortising the decode loop.
	scanTileRows = 64
	// segmentMinRows is the minimum per-segment work that justifies
	// spawning a parallel scan goroutine for a single query.
	segmentMinRows = 4096
)

// codeBlock is a contiguous block of encoded rows that can decode row
// ranges into FP32. The Slice method returns the same concrete type so the
// generic kernels stay fully monomorphised (no interface dispatch or
// boxing in the hot loop).
type codeBlock[B any] interface {
	Rows() int
	RowDim() int
	// DecodeTile decodes rows [r0,r1) into dst[0:(r1-r0)*dim].
	DecodeTile(dst []float32, r0, r1 int)
	// Dot scores one decoded row against a query. Each block type pins the
	// accumulation order its pre-rewrite scan used, so kernel scores stay
	// bit-identical to the seed implementation (FP16 rows: the 4-way
	// unrolled tree of f16.Dot; SQ8 rows: the single-accumulator loop).
	Dot(row, q []float32) float32
	// Slice returns the sub-block of rows [r0,r1).
	Slice(r0, r1 int) B
}

// halfBlock is a contiguous FP16 code block (Flat storage, IVF cells).
type halfBlock struct {
	codes []uint16
	dim   int
}

func (b halfBlock) Rows() int   { return len(b.codes) / b.dim }
func (b halfBlock) RowDim() int { return b.dim }

func (b halfBlock) DecodeTile(dst []float32, r0, r1 int) {
	f16.DecodeInto(dst[:(r1-r0)*b.dim], b.codes[r0*b.dim:r1*b.dim])
}

func (b halfBlock) Dot(row, q []float32) float32 { return f16.DotF32(row, q) }

func (b halfBlock) Slice(r0, r1 int) halfBlock {
	return halfBlock{codes: b.codes[r0*b.dim : r1*b.dim], dim: b.dim}
}

// sq8Block is a contiguous int8 code block with per-dimension affine
// reconstruction (SQ8 storage).
type sq8Block struct {
	codes     []int8
	lo, scale []float32
	dim       int
}

func (b sq8Block) Rows() int   { return len(b.codes) / b.dim }
func (b sq8Block) RowDim() int { return b.dim }

func (b sq8Block) DecodeTile(dst []float32, r0, r1 int) {
	k := 0
	for r := r0; r < r1; r++ {
		row := b.codes[r*b.dim : (r+1)*b.dim]
		for d, c := range row {
			dst[k] = b.lo[d] + (float32(int(c)+128)+0.5)*b.scale[d]
			k++
		}
	}
}

// Dot uses a single accumulator: the seed's SQ8 scan summed
// reconstructed-value products sequentially, and preserving that exact
// rounding order keeps quantized scores bit-identical across the rewrite.
func (b sq8Block) Dot(row, q []float32) float32 {
	var s float32
	for d, r := range row {
		s += r * q[d]
	}
	return s
}

func (b sq8Block) Slice(r0, r1 int) sq8Block {
	return sq8Block{codes: b.codes[r0*b.dim : r1*b.dim], lo: b.lo, scale: b.scale, dim: b.dim}
}

// tilePool recycles FP32 scratch tiles across searches (zero steady-state
// allocation in the scan itself).
var tilePool = sync.Pool{New: func() any { return new([]float32) }}

func getTile(n int) *[]float32 {
	p := tilePool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putTile(p *[]float32) { tilePool.Put(p) }

// topKPool recycles the bounded heaps used per query and per segment.
var topKPool = sync.Pool{New: func() any { return new(topK) }}

func getTopK(k int) *topK {
	h := topKPool.Get().(*topK)
	h.k = k
	if cap(h.ids) <= k {
		h.ids = make([]int, 0, k+1)
		h.scores = make([]float32, 0, k+1)
	} else {
		h.ids = h.ids[:0]
		h.scores = h.scores[:0]
	}
	return h
}

func putTopK(h *topK) { topKPool.Put(h) }

// scanTopK streams one code block through the tile kernel, pushing every
// row's inner product with q into h. Row r is reported as id ids[r] when
// ids is non-nil (IVF cell postings), base+r otherwise.
func scanTopK[B codeBlock[B]](b B, q []float32, h *topK, ids []int, base int) {
	rows, dim := b.Rows(), b.RowDim()
	if rows == 0 {
		return
	}
	tp := getTile(scanTileRows * dim)
	tile := *tp
	for r0 := 0; r0 < rows; r0 += scanTileRows {
		r1 := r0 + scanTileRows
		if r1 > rows {
			r1 = rows
		}
		b.DecodeTile(tile, r0, r1)
		off := 0
		for r := r0; r < r1; r++ {
			s := b.Dot(tile[off:off+dim], q)
			if ids != nil {
				h.push(ids[r], s)
			} else {
				h.push(base+r, s)
			}
			off += dim
		}
	}
	putTile(tp)
}

// gatherScores decodes an arbitrary gather of rows — the beam-search
// candidate sets of graph indexes, rather than a forward stream — through
// the block's tile decoder and writes each row's inner product with q
// into scores (scores[i] pairs with rows[i]). Rows are staged through the
// pooled FP32 scratch in scanTileRows chunks, so the traversal hot loop
// shares the scan path's decode/Dot kernels instead of re-deriving them
// row-by-row; per the exactness note above, the results are bit-identical
// to decoding and scoring one row at a time.
func gatherScores[B codeBlock[B]](b B, rows []int32, q []float32, scores []float32) {
	if len(rows) == 0 {
		return
	}
	dim := b.RowDim()
	tp := getTile(scanTileRows * dim)
	tile := *tp
	for i0 := 0; i0 < len(rows); i0 += scanTileRows {
		i1 := min(i0+scanTileRows, len(rows))
		off := 0
		for i := i0; i < i1; i++ {
			r := int(rows[i])
			b.DecodeTile(tile[off:off+dim], r, r+1)
			off += dim
		}
		off = 0
		for i := i0; i < i1; i++ {
			scores[i] = b.Dot(tile[off:off+dim], q)
			off += dim
		}
	}
	putTile(tp)
}

// scanBatchTopK is the multi-query kernel: each decoded tile is reused for
// every query in the batch, so decode cost is amortised 1/len(queries).
// hs[i] receives the results for queries[i].
func scanBatchTopK[B codeBlock[B]](b B, queries [][]float32, hs []*topK, ids []int, base int) {
	rows, dim := b.Rows(), b.RowDim()
	if rows == 0 || len(queries) == 0 {
		return
	}
	tp := getTile(scanTileRows * dim)
	tile := *tp
	for r0 := 0; r0 < rows; r0 += scanTileRows {
		r1 := r0 + scanTileRows
		if r1 > rows {
			r1 = rows
		}
		b.DecodeTile(tile, r0, r1)
		for qi, q := range queries {
			h := hs[qi]
			off := 0
			for r := r0; r < r1; r++ {
				s := b.Dot(tile[off:off+dim], q)
				if ids != nil {
					h.push(ids[r], s)
				} else {
					h.push(base+r, s)
				}
				off += dim
			}
		}
	}
	putTile(tp)
}

// scanSegments picks the number of parallel segments for a scan whose total
// work is rows×queries row-dot-products.
func scanSegments(rows, queries int) int {
	w := runtime.GOMAXPROCS(0)
	if queries < 1 {
		queries = 1
	}
	if limit := rows * queries / segmentMinRows; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// searchBlock runs the top-k scan over one block, splitting it into
// parallel segments when the block is large enough, and appends the
// descending-ordered results to dst.
func searchBlock[B codeBlock[B]](b B, q []float32, k int, keys []string, dst []Result) []Result {
	rows := b.Rows()
	workers := scanSegments(rows, 1)
	if workers <= 1 {
		h := getTopK(k)
		scanTopK(b, q, h, nil, 0)
		dst = h.appendResults(dst, keys)
		putTopK(h)
		return dst
	}
	seg := segmentSize(rows, workers)
	heaps := make([]*topK, 0, workers)
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += seg {
		r1 := r0 + seg
		if r1 > rows {
			r1 = rows
		}
		h := getTopK(k)
		heaps = append(heaps, h)
		wg.Add(1)
		go func(sub B, base int, h *topK) {
			defer wg.Done()
			scanTopK(sub, q, h, nil, base)
		}(b.Slice(r0, r1), r0, h)
	}
	wg.Wait()
	return mergeHeaps(heaps, keys, dst)
}

// searchBlockBatch is the segment-parallel multi-query driver behind
// SearchBatch: every worker owns a row segment and one heap per query, and
// each tile it decodes is scored against the whole batch.
func searchBlockBatch[B codeBlock[B]](b B, queries [][]float32, k int, keys []string) [][]Result {
	res, _ := searchBlockBatchTimed(b, queries, k, keys)
	return res
}

// searchBlockBatchTimed is searchBlockBatch reporting where the kernel's
// time went: Scan covers the segment-parallel tile scans (spawn to
// wg.Wait), Merge the per-query heap folds into final descending order.
// Results are bit-identical to searchBlockBatch — the split only brackets
// the two existing phases with clock reads.
func searchBlockBatchTimed[B codeBlock[B]](b B, queries [][]float32, k int, keys []string) ([][]Result, ScanTiming) {
	out := make([][]Result, len(queries))
	var tm ScanTiming
	rows := b.Rows()
	if rows == 0 || k <= 0 {
		return out, tm
	}
	scanStart := time.Now()
	workers := scanSegments(rows, len(queries))
	seg := segmentSize(rows, workers)
	nseg := (rows + seg - 1) / seg
	heaps := make([][]*topK, 0, nseg)
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += seg {
		r1 := r0 + seg
		if r1 > rows {
			r1 = rows
		}
		hs := make([]*topK, len(queries))
		for i := range hs {
			hs[i] = getTopK(k)
		}
		heaps = append(heaps, hs)
		wg.Add(1)
		go func(sub B, base int, hs []*topK) {
			defer wg.Done()
			scanBatchTopK(sub, queries, hs, nil, base)
		}(b.Slice(r0, r1), r0, hs)
	}
	wg.Wait()
	tm.Scan = time.Since(scanStart)
	mergeStart := time.Now()
	for qi := range queries {
		perSeg := make([]*topK, len(heaps))
		for si := range heaps {
			perSeg[si] = heaps[si][qi]
		}
		out[qi] = mergeHeaps(perSeg, keys, nil)
	}
	tm.Merge = time.Since(mergeStart)
	return out, tm
}

// scanPQTopK streams a block of M-byte PQ codes against a precomputed
// asymmetric-distance LUT: scoring a row is one table lookup and add per
// subspace (lutScore), with no FP32 decode. Row r is reported as ids[r]
// when ids is non-nil (IVF-PQ cell postings), base+r otherwise.
func scanPQTopK(codes []byte, cb *pqCodebook, lut []float32, h *topK, ids []int, base int) {
	m, ksub := cb.m, cb.ksub
	rows := len(codes) / m
	for r := 0; r < rows; r++ {
		s := lutScore(codes[r*m:(r+1)*m], lut, ksub)
		if ids != nil {
			h.push(ids[r], s)
		} else {
			h.push(base+r, s)
		}
	}
}

// scanPQBatchTopK is the multi-query PQ kernel: the code segment (small —
// M bytes per row — and so cache-resident) is re-streamed once per query
// with that query's LUT. hs[i] receives the results for luts[i].
func scanPQBatchTopK(codes []byte, cb *pqCodebook, luts [][]float32, hs []*topK, ids []int, base int) {
	for qi, lut := range luts {
		scanPQTopK(codes, cb, lut, hs[qi], ids, base)
	}
}

// searchPQBlock runs the top-k LUT scan over one PQ code block, splitting
// it into parallel segments when large enough, and appends the
// descending-ordered results to dst.
func searchPQBlock(codes []byte, cb *pqCodebook, lut []float32, k int, keys []string, dst []Result) []Result {
	rows := len(codes) / cb.m
	workers := scanSegments(rows, 1)
	if workers <= 1 {
		h := getTopK(k)
		scanPQTopK(codes, cb, lut, h, nil, 0)
		dst = h.appendResults(dst, keys)
		putTopK(h)
		return dst
	}
	seg := segmentSize(rows, workers)
	heaps := make([]*topK, 0, workers)
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += seg {
		r1 := r0 + seg
		if r1 > rows {
			r1 = rows
		}
		h := getTopK(k)
		heaps = append(heaps, h)
		wg.Add(1)
		go func(sub []byte, base int, h *topK) {
			defer wg.Done()
			scanPQTopK(sub, cb, lut, h, nil, base)
		}(codes[r0*cb.m:r1*cb.m], r0, h)
	}
	wg.Wait()
	return mergeHeaps(heaps, keys, dst)
}

// searchPQBlockBatch is the segment-parallel multi-query PQ driver behind
// PQ.SearchBatch: LUT construction is already amortised by the caller, and
// every worker scores its code segment against the whole batch.
func searchPQBlockBatch(codes []byte, cb *pqCodebook, luts [][]float32, k int, keys []string) [][]Result {
	out := make([][]Result, len(luts))
	rows := len(codes) / cb.m
	if rows == 0 || k <= 0 {
		return out
	}
	workers := scanSegments(rows, len(luts))
	seg := segmentSize(rows, workers)
	nseg := (rows + seg - 1) / seg
	heaps := make([][]*topK, 0, nseg)
	var wg sync.WaitGroup
	for r0 := 0; r0 < rows; r0 += seg {
		r1 := r0 + seg
		if r1 > rows {
			r1 = rows
		}
		hs := make([]*topK, len(luts))
		for i := range hs {
			hs[i] = getTopK(k)
		}
		heaps = append(heaps, hs)
		wg.Add(1)
		go func(sub []byte, base int, hs []*topK) {
			defer wg.Done()
			scanPQBatchTopK(sub, cb, luts, hs, nil, base)
		}(codes[r0*cb.m:r1*cb.m], r0, hs)
	}
	wg.Wait()
	for qi := range luts {
		perSeg := make([]*topK, len(heaps))
		for si := range heaps {
			perSeg[si] = heaps[si][qi]
		}
		out[qi] = mergeHeaps(perSeg, keys, nil)
	}
	return out
}

// segmentSize rounds rows/workers up to a whole number of tiles so decode
// tiles never straddle segment boundaries.
func segmentSize(rows, workers int) int {
	seg := (rows + workers - 1) / workers
	seg = (seg + scanTileRows - 1) / scanTileRows * scanTileRows
	if seg < scanTileRows {
		seg = scanTileRows
	}
	return seg
}

// mergeHeaps folds per-segment heaps into heaps[0] and appends the final
// descending results to dst. Because the heap order is the total order
// (score desc, id asc), the merge is exact regardless of segment split.
func mergeHeaps(heaps []*topK, keys []string, dst []Result) []Result {
	final := heaps[0]
	for _, h := range heaps[1:] {
		for i, id := range h.ids {
			final.push(id, h.scores[i])
		}
		putTopK(h)
	}
	dst = final.appendResults(dst, keys)
	putTopK(final)
	return dst
}
