package vecstore

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLiveConcurrentAddSearchCompact is the race hammer for the mutable
// layer, mirroring the serving layer's locking discipline: writers insert
// under a write mutex (loading the published Live inside it), searchers
// read the published pointer lock-free, and a background compactor drains
// the memtable and rotates the published Live under the same write mutex.
// After quiesce, every acked insert must be visible — its id resolves to
// its key and its own vector retrieves it at k=Len — i.e. no insert was
// lost to a concurrent rotation. Run under -race this also proves the
// snapshot/append-only memory discipline (see `make race`).
func TestLiveConcurrentAddSearchCompact(t *testing.T) {
	const (
		dim       = 8
		nBase     = 32
		writers   = 4
		perWriter = 150
		searchers = 2
	)
	base := NewFlat(dim)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < nBase; i++ {
		base.Add(randVec(rng, dim), fmt.Sprintf("base%02d", i))
	}
	var handle atomic.Pointer[Live]
	handle.Store(NewLive(base, nil))
	var wmu sync.Mutex // writers and the compactor's rotate step

	type acked struct {
		key string
		id  int
		vec []float32
	}
	ackedByWriter := make([][]acked, writers)
	stop := make(chan struct{})
	var bg sync.WaitGroup

	for s := 0; s < searchers; s++ {
		bg.Add(1)
		go func(seed int64) {
			defer bg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lv := handle.Load()
				res := lv.Search(randVec(rng, dim), 10)
				for i := 1; i < len(res); i++ {
					if worse(res[i-1].Score, res[i-1].ID, res[i].Score, res[i].ID) {
						t.Errorf("unsorted results: %v before %v", res[i-1], res[i])
						return
					}
				}
			}
		}(int64(100 + s))
	}

	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			lv := handle.Load()
			if n := lv.MemLen(); n > 0 {
				newBase, err := lv.CompactBase(n)
				if err != nil {
					t.Errorf("CompactBase: %v", err)
					return
				}
				wmu.Lock()
				if handle.Load() == lv { // no competing publisher raced us
					handle.Store(lv.Rotate(newBase, n))
				}
				wmu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				vec := randVec(rng, dim)
				wmu.Lock()
				lv := handle.Load() // inside wmu: the rotation-safe order
				id := lv.Add(vec, key)
				wmu.Unlock()
				ackedByWriter[w] = append(ackedByWriter[w], acked{key: key, id: id, vec: vec})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	bg.Wait()

	lv := handle.Load()
	if want := nBase + writers*perWriter; lv.Len() != want {
		t.Fatalf("Len=%d after quiesce, want %d", lv.Len(), want)
	}
	for _, acks := range ackedByWriter {
		for _, a := range acks {
			if got := lv.Key(a.id); got != a.key {
				t.Fatalf("acked id %d resolves to %q, want %q", a.id, got, a.key)
			}
			found := false
			for _, r := range lv.Search(a.vec, lv.Len()) {
				if r.ID == a.id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("acked insert %q (id %d) not visible at k=Len", a.key, a.id)
			}
		}
	}
}
