package vecstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary persistence for Flat indexes (the chunk and trace stores are saved
// once by the generation pipeline and loaded by every evaluation run).
//
// Version 2 ("VSF2") mirrors the in-memory contiguous layout — keys up
// front, then one flat little-endian u16 code block — so loading is a
// streaming read straight into the scan-ready representation:
//
//	magic "VSF2" | dim u32 | count u64 |
//	repeat count: keyLen u32 | key bytes |
//	count × dim × u16 codes (one contiguous block)
//
// Version 1 ("VSF1", the jagged per-record format: keyLen u32 | key | dim ×
// u16 vector, repeated) is still accepted on load for old files.
//
// IVF indexes are persisted as their underlying Flat data plus quantizer
// parameters and rebuilt (retrained deterministically) at load; training is
// cheap relative to embedding and keeps the format simple and versionable.

var (
	magicV1 = [4]byte{'V', 'S', 'F', '1'}
	magicV2 = [4]byte{'V', 'S', 'F', '2'}
)

// ErrBadFormat is returned when a persisted index fails validation.
var ErrBadFormat = errors.New("vecstore: bad index file format")

// Save writes the index to path atomically (write temp, rename) in the
// current (VSF2, contiguous) format.
func (ix *Flat) Save(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err = writeFlat(w, ix); err != nil {
		f.Close()
		return err
	}
	if err = w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeFlat(w io.Writer, ix *Flat) error {
	if _, err := w.Write(magicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(ix.dim)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.keys))); err != nil {
		return err
	}
	for _, k := range ix.keys {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(k))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
	}
	return writeCodes(w, ix.codes)
}

// writeCodes streams the contiguous code block as little-endian u16 through
// a fixed scratch buffer (binary.Write on a huge []uint16 would allocate a
// same-sized temporary).
func writeCodes(w io.Writer, codes []uint16) error {
	const chunk = 32 << 10 // codes per write
	buf := make([]byte, 2*chunk)
	for len(codes) > 0 {
		n := len(codes)
		if n > chunk {
			n = chunk
		}
		for i, c := range codes[:n] {
			binary.LittleEndian.PutUint16(buf[2*i:], c)
		}
		if _, err := w.Write(buf[:2*n]); err != nil {
			return err
		}
		codes = codes[n:]
	}
	return nil
}

// readCodes fills dst with little-endian u16 codes from r.
func readCodes(r io.Reader, dst []uint16) error {
	const chunk = 32 << 10
	buf := make([]byte, 2*chunk)
	for len(dst) > 0 {
		n := len(dst)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(r, buf[:2*n]); err != nil {
			return err
		}
		for i := range dst[:n] {
			dst[i] = binary.LittleEndian.Uint16(buf[2*i:])
		}
		dst = dst[n:]
	}
	return nil
}

// LoadFlat reads an index previously written by Save, accepting both the
// current contiguous VSF2 format and the legacy jagged VSF1 format.
func LoadFlat(path string) (*Flat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFlat(bufio.NewReaderSize(f, 1<<20))
}

func readFlat(r io.Reader) (*Flat, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	legacy := false
	switch m {
	case magicV2:
	case magicV1:
		legacy = true
	default:
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var dim uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %v", ErrBadFormat, err)
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	if count > (1<<31)/uint64(dim) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	ix := NewFlat(int(dim))
	if legacy {
		return readFlatV1(r, ix, count)
	}
	ix.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.keys = append(ix.keys, key)
	}
	ix.codes = make([]uint16, count*uint64(dim))
	if err := readCodes(r, ix.codes); err != nil {
		return nil, fmt.Errorf("%w: code block: %v", ErrBadFormat, err)
	}
	return ix, nil
}

// readFlatV1 consumes the legacy jagged stream, packing the per-record
// vectors into the contiguous block.
func readFlatV1(r io.Reader, ix *Flat, count uint64) (*Flat, error) {
	dim := uint64(ix.dim)
	ix.keys = make([]string, 0, count)
	ix.codes = make([]uint16, 0, count*dim)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.codes = ix.codes[:uint64(len(ix.codes))+dim]
		if err := readCodes(r, ix.codes[uint64(len(ix.codes))-dim:]); err != nil {
			return nil, fmt.Errorf("%w: vector at %d: %v", ErrBadFormat, i, err)
		}
		ix.keys = append(ix.keys, key)
	}
	return ix, nil
}

func readKey(r io.Reader, i uint64) (string, error) {
	var klen uint32
	if err := binary.Read(r, binary.LittleEndian, &klen); err != nil {
		return "", fmt.Errorf("%w: key len at %d: %v", ErrBadFormat, i, err)
	}
	if klen > 1<<20 {
		return "", fmt.Errorf("%w: implausible key length %d", ErrBadFormat, klen)
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r, key); err != nil {
		return "", fmt.Errorf("%w: key at %d: %v", ErrBadFormat, i, err)
	}
	return string(key), nil
}

// ToIVF converts a Flat index into a trained IVF index with the given
// configuration (Dim is taken from the source index). The FP16 payloads are
// transferred without re-encoding.
func (ix *Flat) ToIVF(cfg IVFConfig) *IVF {
	cfg.Dim = ix.dim
	ivf := NewIVF(cfg)
	ivf.staged = append(ivf.staged, ix.codes...)
	ivf.keys = append(ivf.keys, ix.keys...)
	ivf.Train()
	return ivf
}
