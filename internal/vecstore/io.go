package vecstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/f16"
)

// Binary persistence for vector indexes (the chunk and trace stores are
// saved once by the generation pipeline and loaded by every evaluation
// run). Five on-disk versions exist — VSF1 (legacy jagged FP16), VSF2
// (contiguous FP16, the current Flat format), VSF3 (PQ: codebooks +
// contiguous M-byte code block), VSF4 (IVF-PQ: coarse centroids, PQ
// codebook, optional OPQ rotation, residual flag, and per-cell postings +
// code blocks), and VSF5 (HNSW: construction parameters, per-node levels,
// entry point, compact adjacency lists, and the contiguous FP16 code
// block). The byte-level specification and the read/write compatibility
// matrix live in docs/VSF_FORMAT.md; Load dispatches on the magic,
// LoadFlat/LoadPQ/LoadIVFPQ/LoadHNSW insist on their own family.
//
// Plain IVF indexes are still persisted as their underlying flat data
// plus quantizer parameters and rebuilt (retrained deterministically) at
// load. IVF-PQ gained its own format (VSF4) because its trained state —
// learned rotation, residual codebook, cell assignment — is what the
// recall acceptance pins; retraining at load would re-run OPQ alternation
// on every server swap.

var (
	magicV1 = [4]byte{'V', 'S', 'F', '1'}
	magicV2 = [4]byte{'V', 'S', 'F', '2'}
	magicV3 = [4]byte{'V', 'S', 'F', '3'}
	magicV4 = [4]byte{'V', 'S', 'F', '4'}
	magicV5 = [4]byte{'V', 'S', 'F', '5'}
)

// VSF5 reader limits: an M beyond 256 or more than 65 layers is far
// outside any sane construction (randomLevel's geometric tail makes even
// level 64 astronomically unlikely) and would let a corrupt header in a
// tiny file drive enormous fixed-slot adjacency arenas.
const (
	hnswMaxM     = 1 << 8
	hnswMaxLevel = 64
)

// VSF4 header flag bits.
const (
	vsf4FlagResidual = 1 << 0
	vsf4FlagRotation = 1 << 1
	vsf4FlagsKnown   = vsf4FlagResidual | vsf4FlagRotation
)

// ErrBadFormat is returned when a persisted index fails validation.
var ErrBadFormat = errors.New("vecstore: bad index file format")

// Save writes the index to path atomically (write temp, rename) in the
// current (VSF2, contiguous) format.
func (ix *Flat) Save(path string) error {
	return saveAtomic(path, func(w io.Writer) error { return writeFlat(w, ix) })
}

// saveAtomic streams one index through write into path via a buffered
// temp-file-then-rename, so readers never observe a partial file.
func saveAtomic(path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err = write(w); err != nil {
		f.Close()
		return err
	}
	if err = w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeFlat(w io.Writer, ix *Flat) error {
	if _, err := w.Write(magicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(ix.dim)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.keys))); err != nil {
		return err
	}
	if err := writeKeys(w, ix.keys); err != nil {
		return err
	}
	return writeCodes(w, ix.codes)
}

func writeKeys(w io.Writer, keys []string) error {
	for _, k := range keys {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(k))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
	}
	return nil
}

// writeCodes streams the contiguous code block as little-endian u16 through
// a fixed scratch buffer (binary.Write on a huge []uint16 would allocate a
// same-sized temporary).
func writeCodes(w io.Writer, codes []uint16) error {
	const chunk = 32 << 10 // codes per write
	buf := make([]byte, 2*chunk)
	for len(codes) > 0 {
		n := len(codes)
		if n > chunk {
			n = chunk
		}
		for i, c := range codes[:n] {
			binary.LittleEndian.PutUint16(buf[2*i:], c)
		}
		if _, err := w.Write(buf[:2*n]); err != nil {
			return err
		}
		codes = codes[n:]
	}
	return nil
}

// readCodes fills dst with little-endian u16 codes from r.
func readCodes(r io.Reader, dst []uint16) error {
	const chunk = 32 << 10
	buf := make([]byte, 2*chunk)
	for len(dst) > 0 {
		n := len(dst)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(r, buf[:2*n]); err != nil {
			return err
		}
		for i := range dst[:n] {
			dst[i] = binary.LittleEndian.Uint16(buf[2*i:])
		}
		dst = dst[n:]
	}
	return nil
}

// LoadFlat reads a Flat index previously written by Save, accepting both
// the current contiguous VSF2 format and the legacy jagged VSF1 format.
// VSF3 (PQ) files are rejected; use Load or LoadPQ for those.
func LoadFlat(path string) (*Flat, error) {
	f, remain, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	m, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	switch m {
	case magicV2:
		return readFlat(r, remain, false)
	case magicV1:
		return readFlat(r, remain, true)
	case magicV3:
		return nil, fmt.Errorf("%w: %s is a PQ (VSF3) index; use Load or LoadPQ", ErrBadFormat, path)
	case magicV4:
		return nil, fmt.Errorf("%w: %s is an IVF-PQ (VSF4) index; use Load or LoadIVFPQ", ErrBadFormat, path)
	case magicV5:
		return nil, fmt.Errorf("%w: %s is an HNSW (VSF5) index; use Load or LoadHNSW", ErrBadFormat, path)
	}
	return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
}

// Load reads any persisted index, dispatching on the format magic: VSF1
// and VSF2 load as *Flat, VSF3 as *PQ, VSF4 as *IVFPQ, VSF5 as *HNSW.
func Load(path string) (Index, error) {
	f, remain, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	m, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	switch m {
	case magicV2:
		return readFlat(r, remain, false)
	case magicV1:
		return readFlat(r, remain, true)
	case magicV3:
		return readPQ(r, remain)
	case magicV4:
		return readIVFPQ(r, remain)
	case magicV5:
		return readHNSW(r, remain)
	}
	return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
}

// openSized opens path and reports how many payload bytes follow the
// 4-byte magic. The readers bound every header-driven allocation by this
// budget, so a corrupt count or dim in a small file fails validation
// instead of driving a multi-gigabyte make (the fuzz-found failure mode).
func openSized(path string) (*os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size() - 4, nil
}

func readMagic(r io.Reader) ([4]byte, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return m, fmt.Errorf("%w: %w", ErrBadFormat, err)
	}
	return m, nil
}

// readFlat consumes a VSF1 (legacy=true) or VSF2 stream after the magic.
// remain is the payload byte budget (file size minus magic).
func readFlat(r io.Reader, remain int64, legacy bool) (*Flat, error) {
	var dim uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %w", ErrBadFormat, err)
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %w", ErrBadFormat, err)
	}
	if count > (1<<31)/uint64(dim) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	// Every record costs at least a 4-byte key length plus dim FP16 codes
	// (both formats), so a count the file cannot physically back fails
	// here instead of sizing allocations from 12 corrupt header bytes.
	remain -= 12
	if need := int64(count) * int64(4+2*dim); need > remain {
		return nil, fmt.Errorf("%w: count %d needs >= %d payload bytes, file has %d", ErrBadFormat, count, need, remain)
	}
	ix := NewFlat(int(dim))
	if legacy {
		return readFlatV1(r, ix, count)
	}
	ix.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.keys = append(ix.keys, key)
	}
	ix.codes = make([]uint16, count*uint64(dim))
	if err := readCodes(r, ix.codes); err != nil {
		return nil, fmt.Errorf("%w: code block: %w", ErrBadFormat, err)
	}
	return ix, nil
}

// readFlatV1 consumes the legacy jagged stream, packing the per-record
// vectors into the contiguous block.
func readFlatV1(r io.Reader, ix *Flat, count uint64) (*Flat, error) {
	dim := uint64(ix.dim)
	ix.keys = make([]string, 0, count)
	ix.codes = make([]uint16, 0, count*dim)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.codes = ix.codes[:uint64(len(ix.codes))+dim]
		if err := readCodes(r, ix.codes[uint64(len(ix.codes))-dim:]); err != nil {
			return nil, fmt.Errorf("%w: vector at %d: %w", ErrBadFormat, i, err)
		}
		ix.keys = append(ix.keys, key)
	}
	return ix, nil
}

func readKey(r io.Reader, i uint64) (string, error) {
	var klen uint32
	if err := binary.Read(r, binary.LittleEndian, &klen); err != nil {
		return "", fmt.Errorf("%w: key len at %d: %w", ErrBadFormat, i, err)
	}
	if klen > 1<<20 {
		return "", fmt.Errorf("%w: implausible key length %d", ErrBadFormat, klen)
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r, key); err != nil {
		return "", fmt.Errorf("%w: key at %d: %w", ErrBadFormat, i, err)
	}
	return string(key), nil
}

// Save writes the PQ index to path atomically in the VSF3 format
// (codebooks plus the contiguous code block; see docs/VSF_FORMAT.md).
// Save panics if the index is untrained.
func (ix *PQ) Save(path string) error {
	if !ix.trained {
		panic("vecstore: PQ Save before Train")
	}
	return saveAtomic(path, func(w io.Writer) error { return writePQ(w, ix) })
}

func writePQ(w io.Writer, ix *PQ) error {
	if _, err := w.Write(magicV3[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(ix.dim), uint32(ix.cb.m), uint32(ix.cb.ksub)}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.keys))); err != nil {
		return err
	}
	if err := writeKeys(w, ix.keys); err != nil {
		return err
	}
	if err := writeF32s(w, ix.cb.cents); err != nil {
		return err
	}
	_, err := w.Write(ix.codes)
	return err
}

// LoadPQ reads a PQ index previously written by PQ.Save (VSF3). Flat files
// (VSF1/VSF2) are rejected; use Load or LoadFlat for those.
func LoadPQ(path string) (*PQ, error) {
	f, remain, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	m, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if m != magicV3 {
		return nil, fmt.Errorf("%w: %s is not a PQ (VSF3) index (magic %q); use Load or LoadFlat", ErrBadFormat, path, m)
	}
	return readPQ(r, remain)
}

// readPQ consumes a VSF3 stream after the magic. The subspace geometry
// (bounds, centroid block offsets) is not stored — it is a pure function
// of dim and m, recomputed by newPQCodebook. remain is the payload byte
// budget (file size minus magic).
func readPQ(r io.Reader, remain int64) (*PQ, error) {
	var dim, m, ksub uint32
	for _, p := range []*uint32{&dim, &m, &ksub} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: PQ header: %w", ErrBadFormat, err)
		}
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	if m == 0 || m > dim {
		return nil, fmt.Errorf("%w: implausible PQ m %d for dim %d", ErrBadFormat, m, dim)
	}
	if ksub == 0 || ksub > pqKSubMax {
		return nil, fmt.Errorf("%w: implausible PQ ksub %d", ErrBadFormat, ksub)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %w", ErrBadFormat, err)
	}
	if count > (1<<31)/uint64(m) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	// Records cost at least 4+m bytes each (key length + codes) and the
	// codebook exactly 4*ksub*dim; reject headers the file cannot back.
	remain -= 20
	if need := int64(count)*int64(4+m) + 4*int64(ksub)*int64(dim); need > remain {
		return nil, fmt.Errorf("%w: count %d needs >= %d payload bytes, file has %d", ErrBadFormat, count, need, remain)
	}
	ix := NewPQ(PQConfig{Dim: int(dim), M: int(m)})
	ix.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.keys = append(ix.keys, key)
	}
	ix.cb = newPQCodebook(int(dim), int(m), int(ksub))
	if err := readF32s(r, ix.cb.cents); err != nil {
		return nil, fmt.Errorf("%w: PQ codebook: %w", ErrBadFormat, err)
	}
	ix.codes = make([]byte, count*uint64(m))
	if _, err := io.ReadFull(r, ix.codes); err != nil {
		return nil, fmt.Errorf("%w: PQ code block: %w", ErrBadFormat, err)
	}
	// Bad files must fail here, not at query time: a code byte ≥ ksub
	// (possible whenever ksub < 256) would index past its subspace's LUT
	// and codebook regions during search.
	if int(ksub) < pqKSubMax {
		for i, c := range ix.codes {
			if uint32(c) >= ksub {
				return nil, fmt.Errorf("%w: PQ code %d at offset %d exceeds ksub %d", ErrBadFormat, c, i, ksub)
			}
		}
	}
	ix.trained = true
	return ix, nil
}

// writeF32s streams float32s as little-endian through a fixed scratch
// buffer (same discipline as writeCodes).
func writeF32s(w io.Writer, vals []float32) error {
	const chunk = 16 << 10
	buf := make([]byte, 4*chunk)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// readF32s fills dst with little-endian float32s from r.
func readF32s(r io.Reader, dst []float32) error {
	const chunk = 16 << 10
	buf := make([]byte, 4*chunk)
	for len(dst) > 0 {
		n := len(dst)
		if n > chunk {
			n = chunk
		}
		if _, err := io.ReadFull(r, buf[:4*n]); err != nil {
			return err
		}
		for i := range dst[:n] {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		dst = dst[n:]
	}
	return nil
}

// ToIVF converts a Flat index into a trained IVF index with the given
// configuration (Dim is taken from the source index). The FP16 payloads are
// transferred without re-encoding.
func (ix *Flat) ToIVF(cfg IVFConfig) *IVF {
	cfg.Dim = ix.dim
	ivf := NewIVF(cfg)
	ivf.staged = append(ivf.staged, ix.codes...)
	ivf.keys = append(ivf.keys, ix.keys...)
	ivf.Train()
	return ivf
}

// ToPQ converts a Flat index into a trained PQ index with the given
// configuration (Dim is taken from the source index). The FP16 payloads
// seed the staging buffer without re-encoding; Train then fits codebooks
// and produces the M-byte codes.
func (ix *Flat) ToPQ(cfg PQConfig) *PQ {
	cfg.Dim = ix.dim
	pq := NewPQ(cfg)
	pq.staged = append(pq.staged, ix.codes...)
	pq.keys = append(pq.keys, ix.keys...)
	pq.Train()
	return pq
}

// ToIVFPQ converts a Flat index into a trained IVF-PQ index with the given
// configuration (Dim is taken from the source index).
func (ix *Flat) ToIVFPQ(cfg IVFPQConfig) *IVFPQ {
	cfg.Dim = ix.dim
	ivfpq := NewIVFPQ(cfg)
	ivfpq.staged = append(ivfpq.staged, ix.codes...)
	ivfpq.keys = append(ivfpq.keys, ix.keys...)
	ivfpq.Train()
	return ivfpq
}

// ToHNSW converts a Flat index into an HNSW graph with the given
// configuration (Dim is taken from the source index). Unlike the other
// conversions the graph must be built incrementally, so each stored FP16
// row is decoded and re-inserted; encode∘decode is the identity on FP16
// codes, so the converted index holds the identical contiguous code
// block.
func (ix *Flat) ToHNSW(cfg HNSWConfig) *HNSW {
	cfg.Dim = ix.dim
	h := NewHNSW(cfg)
	buf := make([]float32, ix.dim)
	for i := range ix.keys {
		f16.DecodeInto(buf, ix.codes[i*ix.dim:(i+1)*ix.dim])
		h.Add(buf, ix.keys[i])
	}
	return h
}

// Save writes the IVF-PQ index to path atomically in the VSF4 format
// (coarse centroids, PQ codebook, optional OPQ rotation, per-cell
// postings and code blocks; see docs/VSF_FORMAT.md). Save panics if the
// index is untrained.
func (ix *IVFPQ) Save(path string) error {
	if !ix.trained {
		panic("vecstore: IVFPQ Save before Train")
	}
	return saveAtomic(path, func(w io.Writer) error { return writeIVFPQ(w, ix) })
}

func writeIVFPQ(w io.Writer, ix *IVFPQ) error {
	if _, err := w.Write(magicV4[:]); err != nil {
		return err
	}
	var flags uint32
	if ix.residual {
		flags |= vsf4FlagResidual
	}
	if ix.rot != nil {
		flags |= vsf4FlagRotation
	}
	hdr := []uint32{
		uint32(ix.dim), uint32(ix.cb.m), uint32(ix.cb.ksub),
		uint32(ix.km.K), uint32(ix.nprobe), flags,
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.keys))); err != nil {
		return err
	}
	if err := writeKeys(w, ix.keys); err != nil {
		return err
	}
	for _, cent := range ix.km.Centroids {
		if err := writeF32s(w, cent); err != nil {
			return err
		}
	}
	if ix.residual {
		for _, anchor := range ix.anchors {
			if err := writeF32s(w, anchor); err != nil {
				return err
			}
		}
	}
	if err := writeF32s(w, ix.cb.cents); err != nil {
		return err
	}
	if ix.rot != nil {
		if err := writeF32s(w, ix.rot); err != nil {
			return err
		}
	}
	var idbuf []byte
	for c := 0; c < ix.km.K; c++ {
		ids := ix.cellIDs[c]
		need := 4 * (len(ids) + 1)
		if cap(idbuf) < need {
			idbuf = make([]byte, need)
		}
		buf := idbuf[:need]
		binary.LittleEndian.PutUint32(buf, uint32(len(ids)))
		for j, id := range ids {
			binary.LittleEndian.PutUint32(buf[4+4*j:], uint32(id))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		if _, err := w.Write(ix.cellCodes[c]); err != nil {
			return err
		}
	}
	return nil
}

// LoadIVFPQ reads an IVF-PQ index previously written by IVFPQ.Save
// (VSF4). Other families are rejected; use Load for magic dispatch.
func LoadIVFPQ(path string) (*IVFPQ, error) {
	f, remain, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	m, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if m != magicV4 {
		return nil, fmt.Errorf("%w: %s is not an IVF-PQ (VSF4) index (magic %q); use Load", ErrBadFormat, path, m)
	}
	return readIVFPQ(r, remain)
}

// readIVFPQ consumes a VSF4 stream after the magic. As in VSF3, the
// subspace geometry is recomputed from (dim, m); everything else — coarse
// centroids, codebook, rotation, cell assignment — is restored exactly,
// so a loaded index searches bit-identically to the one saved and accepts
// further Add calls without retraining. remain is the payload byte budget
// (file size minus magic).
func readIVFPQ(r io.Reader, remain int64) (*IVFPQ, error) {
	var dim, m, ksub, nlist, nprobe, flags uint32
	for _, p := range []*uint32{&dim, &m, &ksub, &nlist, &nprobe, &flags} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: IVF-PQ header: %w", ErrBadFormat, err)
		}
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	if m == 0 || m > dim {
		return nil, fmt.Errorf("%w: implausible IVF-PQ m %d for dim %d", ErrBadFormat, m, dim)
	}
	if ksub == 0 || ksub > pqKSubMax {
		return nil, fmt.Errorf("%w: implausible IVF-PQ ksub %d", ErrBadFormat, ksub)
	}
	if nlist == 0 || nlist > 1<<22 {
		return nil, fmt.Errorf("%w: implausible IVF-PQ nlist %d", ErrBadFormat, nlist)
	}
	if nprobe == 0 || nprobe > nlist {
		return nil, fmt.Errorf("%w: IVF-PQ nprobe %d outside [1, nlist=%d]", ErrBadFormat, nprobe, nlist)
	}
	if flags&^uint32(vsf4FlagsKnown) != 0 {
		return nil, fmt.Errorf("%w: unknown IVF-PQ flags %#x", ErrBadFormat, flags)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %w", ErrBadFormat, err)
	}
	if count > (1<<31)/uint64(m) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	// Bound every header-driven section by the bytes the file actually
	// has: records (key length + codes), coarse centroids, optional
	// residual anchors, the codebook, the optional dim² rotation, and the
	// per-cell size prefixes. A corrupt header in a tiny file fails here
	// rather than make()-ing gigabytes.
	remain -= 32
	need := int64(count)*int64(4+m) + 4*int64(nlist)*int64(dim) + 4*int64(ksub)*int64(dim) + 4*int64(nlist)
	if flags&vsf4FlagResidual != 0 {
		need += 4 * int64(nlist) * int64(dim)
	}
	if flags&vsf4FlagRotation != 0 {
		need += 4 * int64(dim) * int64(dim)
	}
	if need > remain {
		return nil, fmt.Errorf("%w: header needs >= %d payload bytes, file has %d", ErrBadFormat, need, remain)
	}
	ix := NewIVFPQ(IVFPQConfig{
		Dim: int(dim), NList: int(nlist), NProbe: int(nprobe), M: int(m),
		Residual: flags&vsf4FlagResidual != 0,
	})
	ix.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		ix.keys = append(ix.keys, key)
	}
	ix.km.Centroids = make([][]float32, nlist)
	for c := range ix.km.Centroids {
		cent := make([]float32, dim)
		if err := readF32s(r, cent); err != nil {
			return nil, fmt.Errorf("%w: coarse centroid %d: %w", ErrBadFormat, c, err)
		}
		ix.km.Centroids[c] = cent
	}
	if ix.residual {
		ix.anchors = make([][]float32, nlist)
		for c := range ix.anchors {
			anchor := make([]float32, dim)
			if err := readF32s(r, anchor); err != nil {
				return nil, fmt.Errorf("%w: residual anchor %d: %w", ErrBadFormat, c, err)
			}
			ix.anchors[c] = anchor
		}
	}
	ix.cb = newPQCodebook(int(dim), int(m), int(ksub))
	if err := readF32s(r, ix.cb.cents); err != nil {
		return nil, fmt.Errorf("%w: IVF-PQ codebook: %w", ErrBadFormat, err)
	}
	if flags&vsf4FlagRotation != 0 {
		ix.rot = make([]float32, int(dim)*int(dim))
		if err := readF32s(r, ix.rot); err != nil {
			return nil, fmt.Errorf("%w: OPQ rotation: %w", ErrBadFormat, err)
		}
	} else {
		ix.rot = nil
	}
	ix.cellIDs = make([][]int, nlist)
	ix.cellCodes = make([][]byte, nlist)
	var total uint64
	for c := uint32(0); c < nlist; c++ {
		var cn uint32
		if err := binary.Read(r, binary.LittleEndian, &cn); err != nil {
			return nil, fmt.Errorf("%w: cell %d size: %w", ErrBadFormat, c, err)
		}
		total += uint64(cn)
		if total > count {
			return nil, fmt.Errorf("%w: cell sizes exceed count %d", ErrBadFormat, count)
		}
		idbytes := make([]byte, 4*uint64(cn))
		if _, err := io.ReadFull(r, idbytes); err != nil {
			return nil, fmt.Errorf("%w: cell %d postings: %w", ErrBadFormat, c, err)
		}
		ids := make([]int, cn)
		for j := range ids {
			id := binary.LittleEndian.Uint32(idbytes[4*j:])
			if uint64(id) >= count {
				return nil, fmt.Errorf("%w: cell %d posting %d exceeds count %d", ErrBadFormat, c, id, count)
			}
			ids[j] = int(id)
		}
		codes := make([]byte, uint64(cn)*uint64(m))
		if _, err := io.ReadFull(r, codes); err != nil {
			return nil, fmt.Errorf("%w: cell %d code block: %w", ErrBadFormat, c, err)
		}
		// Same discipline as VSF3: a code byte ≥ ksub must fail at load
		// time, not index past the LUT at query time.
		if int(ksub) < pqKSubMax {
			for i, cc := range codes {
				if uint32(cc) >= ksub {
					return nil, fmt.Errorf("%w: IVF-PQ code %d in cell %d offset %d exceeds ksub %d", ErrBadFormat, cc, c, i, ksub)
				}
			}
		}
		ix.cellIDs[c] = ids
		ix.cellCodes[c] = codes
	}
	if total != count {
		return nil, fmt.Errorf("%w: cell sizes sum to %d, count is %d", ErrBadFormat, total, count)
	}
	ix.trained = true
	return ix, nil
}

// Save writes the HNSW index to path atomically in the VSF5 format
// (construction parameters, per-node levels, entry point, compact
// adjacency lists, and the contiguous FP16 code block; see
// docs/VSF_FORMAT.md). All graph state round-trips without any
// reconstruction: a loaded index searches bit-identically to the saved
// one and continues Add exactly as if it had never been saved. Save
// panics if the graph exceeds the format's reader limits (M > 256 or more
// than 65 layers), which no NewHNSW-built index of sane size does.
func (h *HNSW) Save(path string) error {
	if h.m > hnswMaxM || h.maxLv > hnswMaxLevel {
		panic(fmt.Sprintf("vecstore: HNSW Save with M=%d maxLevel=%d exceeds VSF5 limits", h.m, h.maxLv))
	}
	return saveAtomic(path, func(w io.Writer) error { return writeHNSW(w, h) })
}

func writeHNSW(w io.Writer, h *HNSW) error {
	if _, err := w.Write(magicV5[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(h.dim), uint32(h.m), uint32(h.efConstruction), uint32(h.efSearch)}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, h.seed); err != nil {
		return err
	}
	// maxLv and entry are biased by one so the empty index (-1) stores as 0.
	for _, v := range []uint32{uint32(h.maxLv + 1), uint32(h.entry + 1)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(h.keys))); err != nil {
		return err
	}
	if err := writeKeys(w, h.keys); err != nil {
		return err
	}
	for _, lv := range h.levels {
		if err := binary.Write(w, binary.LittleEndian, uint32(lv)); err != nil {
			return err
		}
	}
	// Adjacency is stored compactly — degree plus live ids per node per
	// level, lowest level first — and the fixed-slot arenas are rebuilt at
	// load, so the file never pays for empty slots.
	var buf []byte
	for id := range h.keys {
		for lv := 0; lv <= h.levels[id]; lv++ {
			ns := h.neighbours(id, lv)
			need := 4 * (len(ns) + 1)
			if cap(buf) < need {
				buf = make([]byte, need)
			}
			b := buf[:need]
			binary.LittleEndian.PutUint32(b, uint32(len(ns)))
			for j, n := range ns {
				binary.LittleEndian.PutUint32(b[4+4*j:], uint32(n))
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	return writeCodes(w, h.codes)
}

// LoadHNSW reads an HNSW index previously written by HNSW.Save (VSF5).
// Other families are rejected; use Load for magic dispatch.
func LoadHNSW(path string) (*HNSW, error) {
	f, remain, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	m, err := readMagic(r)
	if err != nil {
		return nil, err
	}
	if m != magicV5 {
		return nil, fmt.Errorf("%w: %s is not an HNSW (VSF5) index (magic %q); use Load", ErrBadFormat, path, m)
	}
	return readHNSW(r, remain)
}

// readHNSW consumes a VSF5 stream after the magic. The compact adjacency
// lists are re-expanded into the fixed-slot arenas, and the seed's level
// stream is replayed to where construction left it, so a loaded index
// both searches bit-identically to the saved one and continues Add
// exactly as if it had never been saved. remain is the payload byte
// budget (file size minus magic).
func readHNSW(r io.Reader, remain int64) (*HNSW, error) {
	var dim, m, efc, efs uint32
	for _, p := range []*uint32{&dim, &m, &efc, &efs} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: HNSW header: %w", ErrBadFormat, err)
		}
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	if m == 0 || m > hnswMaxM {
		return nil, fmt.Errorf("%w: implausible HNSW M %d", ErrBadFormat, m)
	}
	if efc == 0 || efc > 1<<20 || efs == 0 || efs > 1<<20 {
		return nil, fmt.Errorf("%w: implausible HNSW ef parameters (%d, %d)", ErrBadFormat, efc, efs)
	}
	var seed uint64
	if err := binary.Read(r, binary.LittleEndian, &seed); err != nil {
		return nil, fmt.Errorf("%w: HNSW seed: %w", ErrBadFormat, err)
	}
	var maxLvP, entryP uint32
	for _, p := range []*uint32{&maxLvP, &entryP} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: HNSW entry: %w", ErrBadFormat, err)
		}
	}
	if maxLvP > hnswMaxLevel+1 {
		return nil, fmt.Errorf("%w: implausible HNSW max level %d", ErrBadFormat, maxLvP)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %w", ErrBadFormat, err)
	}
	if count > (1<<31)/uint64(dim) {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadFormat, count)
	}
	if count == 0 && (maxLvP != 0 || entryP != 0) {
		return nil, fmt.Errorf("%w: empty HNSW with entry point %d/%d", ErrBadFormat, entryP, maxLvP)
	}
	if count > 0 && (entryP == 0 || maxLvP == 0 || uint64(entryP-1) >= count) {
		return nil, fmt.Errorf("%w: HNSW entry %d outside count %d", ErrBadFormat, entryP, count)
	}
	// Every record costs at least a key length, a level and a level-0
	// degree prefix (4 bytes each) plus dim FP16 codes, so a count the
	// file cannot physically back fails before anything below is sized.
	remain -= 40
	minRecords := int64(count) * int64(12+2*dim)
	if minRecords > remain {
		return nil, fmt.Errorf("%w: count %d needs >= %d payload bytes, file has %d", ErrBadFormat, count, minRecords, remain)
	}
	h := NewHNSW(HNSWConfig{
		Dim: int(dim), M: int(m),
		EfConstruction: int(efc), EfSearch: int(efs), Seed: seed,
	})
	h.maxLv = int(maxLvP) - 1
	h.entry = int(entryP) - 1
	h.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := readKey(r, i)
		if err != nil {
			return nil, err
		}
		h.keys = append(h.keys, key)
	}
	// Per-node levels bound the upper arena; each level >= 1 also costs at
	// least its 4-byte degree prefix beyond the per-record minimum already
	// subtracted, which bounds the level sum by the byte budget.
	h.levels = make([]int, count)
	var upperLevels int64
	maxSeen := -1
	for i := range h.levels {
		var lv uint32
		if err := binary.Read(r, binary.LittleEndian, &lv); err != nil {
			return nil, fmt.Errorf("%w: node %d level: %w", ErrBadFormat, i, err)
		}
		if int(lv) > h.maxLv {
			return nil, fmt.Errorf("%w: node %d level %d above max %d", ErrBadFormat, i, lv, h.maxLv)
		}
		if int(lv) > maxSeen {
			maxSeen = int(lv)
		}
		h.levels[i] = int(lv)
		upperLevels += int64(lv)
	}
	if count > 0 && (maxSeen != h.maxLv || h.levels[h.entry] != h.maxLv) {
		return nil, fmt.Errorf("%w: entry level %d inconsistent with max level %d", ErrBadFormat, maxSeen, h.maxLv)
	}
	if 4*upperLevels > remain-minRecords {
		return nil, fmt.Errorf("%w: %d upper levels need %d bytes beyond the record minimum, file has %d", ErrBadFormat, upperLevels, 4*upperLevels, remain-minRecords)
	}
	h.links0 = make([]int32, count*uint64(2*m+1))
	h.upperBase = make([]int32, count)
	h.upper = make([]int32, upperLevels*int64(m+1))
	var upOff int64
	for i := range h.levels {
		if lv := h.levels[i]; lv >= 1 {
			h.upperBase[i] = int32(upOff)
			upOff += int64(lv) * int64(m+1)
		} else {
			h.upperBase[i] = -1
		}
	}
	var nbuf []byte
	for id := 0; id < int(count); id++ {
		for lv := 0; lv <= h.levels[id]; lv++ {
			var deg uint32
			if err := binary.Read(r, binary.LittleEndian, &deg); err != nil {
				return nil, fmt.Errorf("%w: node %d level %d degree: %w", ErrBadFormat, id, lv, err)
			}
			if int(deg) > h.maxLinks(lv) {
				return nil, fmt.Errorf("%w: node %d level %d degree %d exceeds slot budget %d", ErrBadFormat, id, lv, deg, h.maxLinks(lv))
			}
			if cap(nbuf) < int(4*deg) {
				nbuf = make([]byte, 4*deg)
			}
			b := nbuf[:4*deg]
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, fmt.Errorf("%w: node %d level %d links: %w", ErrBadFormat, id, lv, err)
			}
			blk := h.slotBlock(id, lv)
			blk[0] = int32(deg)
			for j := 0; j < int(deg); j++ {
				n := binary.LittleEndian.Uint32(b[4*j:])
				if uint64(n) >= count {
					return nil, fmt.Errorf("%w: node %d level %d links to %d outside count %d", ErrBadFormat, id, lv, n, count)
				}
				// A neighbour must own a slot block on this level, or the
				// traversal would index past its arena segment.
				if lv >= 1 && h.levels[n] < lv {
					return nil, fmt.Errorf("%w: node %d level %d links to %d whose top level is %d", ErrBadFormat, id, lv, n, h.levels[n])
				}
				blk[1+j] = int32(n)
			}
		}
	}
	h.codes = make([]uint16, count*uint64(dim))
	if err := readCodes(r, h.codes); err != nil {
		return nil, fmt.Errorf("%w: code block: %w", ErrBadFormat, err)
	}
	// Replay the seed's level stream to where construction left it
	// (including zero-redraws), so post-load Adds draw exactly the levels
	// a never-saved index would.
	for range h.levels {
		h.randomLevel()
	}
	return h, nil
}
