package vecstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary persistence for Flat indexes (the chunk and trace stores are saved
// once by the generation pipeline and loaded by every evaluation run). The
// format is a little-endian stream:
//
//	magic "VSF1" | dim u32 | count u64 |
//	repeat count: keyLen u32 | key bytes | dim × u16 vector
//
// IVF indexes are persisted as their underlying Flat data plus quantizer
// parameters and rebuilt (retrained deterministically) at load; training is
// cheap relative to embedding and keeps the format simple and versionable.

var magic = [4]byte{'V', 'S', 'F', '1'}

// ErrBadFormat is returned when a persisted index fails validation.
var ErrBadFormat = errors.New("vecstore: bad index file format")

// Save writes the index to path atomically (write temp, rename).
func (ix *Flat) Save(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if err = writeFlat(w, ix); err != nil {
		f.Close()
		return err
	}
	if err = w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeFlat(w io.Writer, ix *Flat) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(ix.dim)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ix.vecs))); err != nil {
		return err
	}
	for i, v := range ix.vecs {
		key := []byte(ix.keys[i])
		if err := binary.Write(w, binary.LittleEndian, uint32(len(key))); err != nil {
			return err
		}
		if _, err := w.Write(key); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// LoadFlat reads an index previously written by Save.
func LoadFlat(path string) (*Flat, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readFlat(bufio.NewReaderSize(f, 1<<20))
}

func readFlat(r io.Reader) (*Flat, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var dim uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %v", ErrBadFormat, err)
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("%w: implausible dim %d", ErrBadFormat, dim)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	ix := NewFlat(int(dim))
	ix.vecs = make([][]uint16, 0, count)
	ix.keys = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		var klen uint32
		if err := binary.Read(r, binary.LittleEndian, &klen); err != nil {
			return nil, fmt.Errorf("%w: key len at %d: %v", ErrBadFormat, i, err)
		}
		if klen > 1<<20 {
			return nil, fmt.Errorf("%w: implausible key length %d", ErrBadFormat, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, fmt.Errorf("%w: key at %d: %v", ErrBadFormat, i, err)
		}
		vec := make([]uint16, dim)
		if err := binary.Read(r, binary.LittleEndian, vec); err != nil {
			return nil, fmt.Errorf("%w: vector at %d: %v", ErrBadFormat, i, err)
		}
		ix.vecs = append(ix.vecs, vec)
		ix.keys = append(ix.keys, string(key))
	}
	return ix, nil
}

// ToIVF converts a Flat index into a trained IVF index with the given
// configuration (Dim is taken from the source index).
func (ix *Flat) ToIVF(cfg IVFConfig) *IVF {
	cfg.Dim = ix.dim
	ivf := NewIVF(cfg)
	for id, h := range ix.vecs {
		// Transfer FP16 payloads without re-encoding.
		ivf.vecs = append(ivf.vecs, h)
		ivf.keys = append(ivf.keys, ix.keys[id])
	}
	ivf.Train()
	return ivf
}
