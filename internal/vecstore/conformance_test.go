package vecstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// Conformance suite: every Index implementation must satisfy the same
// behavioural contract the retrieval layer relies on. Approximate indexes
// (IVF, HNSW) are configured for exhaustive/high-recall operation here so
// the contract checks are exact.

type indexFactory struct {
	name string
	make func(dim int, vecs [][]float32, keys []string) Index
}

func factories() []indexFactory {
	return []indexFactory{
		{"Flat", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewFlat(dim)
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			return ix
		}},
		{"IVF-fullprobe", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewIVF(IVFConfig{Dim: dim, NList: 8, NProbe: 8, Seed: 1})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"HNSW-wide", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewHNSW(HNSWConfig{Dim: dim, EfSearch: 256, EfConstruction: 128, Seed: 1})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			return ix
		}},
		{"SQ8", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewSQ8(dim)
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"PQ", func(dim int, vecs [][]float32, keys []string) Index {
			// Fine subspaces (≤4 dims each) keep quantization near-lossless
			// so the exact-contract checks hold.
			ix := NewPQ(PQConfig{Dim: dim, M: (dim + 3) / 4, Seed: 1})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"IVFPQ-fullprobe", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 8, NProbe: 8, M: (dim + 3) / 4, Seed: 1})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"IVFPQ-residual", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 8, NProbe: 8, M: (dim + 3) / 4, Seed: 1, Residual: true})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"IVFPQ-opq", func(dim int, vecs [][]float32, keys []string) Index {
			ix := NewIVFPQ(IVFPQConfig{Dim: dim, NList: 8, NProbe: 8, M: (dim + 3) / 4, Seed: 1, Residual: true, OPQ: true})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			ix.Train()
			return ix
		}},
		{"Memtable", func(dim int, vecs [][]float32, keys []string) Index {
			mt := NewMemtable(dim)
			for i, v := range vecs {
				mt.Add(v, keys[i])
			}
			return mt
		}},
		{"HNSW-loaded", func(dim int, vecs [][]float32, keys []string) Index {
			// The VSF5 round trip must preserve the whole contract, so the
			// loaded index rides the full suite alongside the built one.
			ix := NewHNSW(HNSWConfig{Dim: dim, EfSearch: 256, EfConstruction: 128, Seed: 1})
			for i, v := range vecs {
				ix.Add(v, keys[i])
			}
			path := filepath.Join(conformanceDir, fmt.Sprintf("hnsw-%d-%d.vsf", dim, len(vecs)))
			if err := ix.Save(path); err != nil {
				panic(err)
			}
			loaded, err := LoadHNSW(path)
			if err != nil {
				panic(err)
			}
			return loaded
		}},
		{"Live-Flat-split", func(dim int, vecs [][]float32, keys []string) Index {
			// The mutable layer with the corpus split across its two tiers:
			// the first half is the immutable base, the second half arrives
			// through live Add — both tiers exact, so the full contract holds.
			base := NewFlat(dim)
			cut := len(vecs) / 2
			for i := 0; i < cut; i++ {
				base.Add(vecs[i], keys[i])
			}
			lv := NewLive(base, nil)
			for i := cut; i < len(vecs); i++ {
				lv.Add(vecs[i], keys[i])
			}
			return lv
		}},
		{"Live-HNSW-split", func(dim int, vecs [][]float32, keys []string) Index {
			// Live over a graph base — the sub-linear mutable-base shape the
			// HNSW modernisation gives the live tier. Wide beams keep the
			// approximate half near-exact for the contract checks.
			base := NewHNSW(HNSWConfig{Dim: dim, EfSearch: 256, EfConstruction: 128, Seed: 1})
			cut := len(vecs) / 2
			for i := 0; i < cut; i++ {
				base.Add(vecs[i], keys[i])
			}
			lv := NewLive(base, nil)
			for i := cut; i < len(vecs); i++ {
				lv.Add(vecs[i], keys[i])
			}
			return lv
		}},
	}
}

// conformanceDir hosts the save/load factories' round-trip files (the
// factory signature has no testing.T to take a per-test TempDir from).
var conformanceDir = func() string {
	dir, err := os.MkdirTemp("", "vecstore-conformance")
	if err != nil {
		panic(err)
	}
	return dir
}()

func conformanceData(n, dim int) ([][]float32, []string) {
	r := rng.New(777)
	vecs := randomUnit(r, n, dim)
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return vecs, keys
}

func TestConformanceShape(t *testing.T) {
	vecs, keys := conformanceData(200, 16)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(16, vecs, keys)
			if ix.Len() != 200 {
				t.Fatalf("Len %d", ix.Len())
			}
			if ix.Dim() != 16 {
				t.Fatalf("Dim %d", ix.Dim())
			}
		})
	}
}

func TestConformanceResultsSortedAndKeyed(t *testing.T) {
	vecs, keys := conformanceData(200, 16)
	r := rng.New(778)
	queries := randomUnit(r, 10, 16)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(16, vecs, keys)
			for _, q := range queries {
				res := ix.Search(q, 7)
				if len(res) != 7 {
					t.Fatalf("%d results", len(res))
				}
				for i, rr := range res {
					if i > 0 && rr.Score > res[i-1].Score {
						t.Fatal("results not descending")
					}
					if rr.Key != keys[rr.ID] {
						t.Fatalf("key mismatch at rank %d", i)
					}
				}
			}
		})
	}
}

func TestConformanceSelfRetrieval(t *testing.T) {
	vecs, keys := conformanceData(200, 16)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(16, vecs, keys)
			miss := 0
			for i := 0; i < len(vecs); i += 9 {
				res := ix.Search(vecs[i], 1)
				if len(res) != 1 || res[0].ID != i {
					miss++
				}
			}
			// Quantized indexes (SQ8, PQ) can flip a handful of near-ties
			// and HNSW is approximate; exact indexes must not miss at all.
			limit := 0
			switch f.name {
			case "SQ8", "HNSW-wide", "HNSW-loaded", "Live-HNSW-split",
				"PQ", "IVFPQ-fullprobe", "IVFPQ-residual", "IVFPQ-opq":
				limit = 2
			}
			if miss > limit {
				t.Fatalf("%d self-retrieval misses", miss)
			}
		})
	}
}

func TestConformanceKZeroAndOversized(t *testing.T) {
	vecs, keys := conformanceData(50, 8)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(8, vecs, keys)
			if res := ix.Search(vecs[0], 0); res != nil {
				t.Fatal("k=0 returned results")
			}
			res := ix.Search(vecs[0], 500)
			if len(res) == 0 || len(res) > 50 {
				t.Fatalf("k>n returned %d results", len(res))
			}
		})
	}
}

func TestConformanceDimMismatchPanics(t *testing.T) {
	vecs, keys := conformanceData(50, 8)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(8, vecs, keys)
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on query dim mismatch")
				}
			}()
			ix.Search(make([]float32, 4), 1)
		})
	}
}

// TestConformanceBatchEdgeCases pins the batch path to the single-query
// contract for every index type: k <= 0 yields one nil slice per query
// (Search returns nil), an empty query slice yields an empty result
// slice, and k > n clamps to exactly what Search returns. Indexes with a
// native SearchBatch are exercised directly so the kernel path — not the
// BatchSearch fallback — is what's pinned.
func TestConformanceBatchEdgeCases(t *testing.T) {
	vecs, keys := conformanceData(120, 12)
	r := rng.New(781)
	queries := randomUnit(r, 6, 12)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(12, vecs, keys)
			batch := func(qs [][]float32, k int) [][]Result {
				if bs, ok := ix.(BatchSearcher); ok {
					return bs.SearchBatch(qs, k)
				}
				return BatchSearch(ix, qs, k, 2)
			}
			for _, k := range []int{0, -3} {
				res := batch(queries, k)
				if len(res) != len(queries) {
					t.Fatalf("k=%d: %d result slices for %d queries", k, len(res), len(queries))
				}
				for qi, rs := range res {
					if len(rs) != 0 {
						t.Fatalf("k=%d query %d: %d results, want none", k, qi, len(rs))
					}
				}
			}
			if res := batch(nil, 5); len(res) != 0 {
				t.Fatalf("empty query slice: %d result slices", len(res))
			}
			if res := batch([][]float32{}, 5); len(res) != 0 {
				t.Fatalf("zero-length query slice: %d result slices", len(res))
			}
			// k > n: per-query results must equal the single-query path.
			res := batch(queries, 500)
			for qi, q := range queries {
				seq := ix.Search(q, 500)
				if len(res[qi]) != len(seq) {
					t.Fatalf("k>n query %d: batch %d vs sequential %d results", qi, len(res[qi]), len(seq))
				}
				for j := range seq {
					if res[qi][j].ID != seq[j].ID || res[qi][j].Score != seq[j].Score {
						t.Fatalf("k>n query %d rank %d: batch differs from sequential", qi, j)
					}
				}
			}
		})
	}
}

func TestConformanceBatchSearch(t *testing.T) {
	vecs, keys := conformanceData(150, 12)
	r := rng.New(779)
	queries := randomUnit(r, 20, 12)
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			ix := f.make(12, vecs, keys)
			batch := BatchSearch(ix, queries, 3, 4)
			for i, q := range queries {
				seq := ix.Search(q, 3)
				if len(batch[i]) != len(seq) {
					t.Fatal("batch/sequential length mismatch")
				}
				for j := range seq {
					if batch[i][j].ID != seq[j].ID {
						t.Fatal("batch order differs from sequential")
					}
				}
			}
		})
	}
}
