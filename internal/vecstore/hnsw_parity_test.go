package vecstore

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// buildParityPair grows the flattened index and the jagged reference from
// the same seed and insertion order.
func buildParityPair(t *testing.T, n, dim int, cfg HNSWConfig) (*HNSW, *hnswRef, [][]float32) {
	t.Helper()
	cfg.Dim = dim
	r := rng.New(211)
	vecs := randomUnit(r, n, dim)
	h := NewHNSW(cfg)
	ref := newHNSWRef(cfg)
	for i, v := range vecs {
		key := fmt.Sprintf("k%04d", i)
		if got, want := h.Add(v, key), ref.add(v, key); got != want {
			t.Fatalf("Add id diverged: flat %d, ref %d", got, want)
		}
	}
	return h, ref, vecs
}

// assertGraphEqual pins that the two implementations built the identical
// graph: same levels, entry point, and per-level neighbour lists in the
// same stored order.
func assertGraphEqual(t *testing.T, h *HNSW, ref *hnswRef) {
	t.Helper()
	if h.entry != ref.entry || h.maxLv != ref.maxLv {
		t.Fatalf("entry/maxLv diverged: flat (%d,%d), ref (%d,%d)", h.entry, h.maxLv, ref.entry, ref.maxLv)
	}
	if len(h.levels) != len(ref.levels) {
		t.Fatalf("levels length %d vs %d", len(h.levels), len(ref.levels))
	}
	for id := range h.levels {
		if h.levels[id] != ref.levels[id] {
			t.Fatalf("node %d level %d, ref %d", id, h.levels[id], ref.levels[id])
		}
		for lv := 0; lv <= h.levels[id]; lv++ {
			got := h.neighbours(id, lv)
			want := ref.links[lv][id]
			if len(got) != len(want) {
				t.Fatalf("node %d level %d: %d links, ref %d", id, lv, len(got), len(want))
			}
			for i := range got {
				if int(got[i]) != want[i] {
					t.Fatalf("node %d level %d slot %d: link %d, ref %d", id, lv, i, got[i], want[i])
				}
			}
		}
	}
}

func assertResultsIdentical(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, ref %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, ref %+v", label, i, got[i], want[i])
		}
	}
}

// TestHNSWJaggedParity is the tentpole pin: the CSR/code-block index must
// build bit-for-bit the same graph as the retained jagged reference on
// the same seed and insertion order, and single-query searches must
// return identical ids AND identical float scores.
func TestHNSWJaggedParity(t *testing.T) {
	configs := []HNSWConfig{
		{Seed: 1},
		{Seed: 42, M: 6, EfConstruction: 32, EfSearch: 24},
		{Seed: 7, M: 4, EfConstruction: 16, EfSearch: 8},
	}
	for ci, cfg := range configs {
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			h, ref, vecs := buildParityPair(t, 400, 24, cfg)
			assertGraphEqual(t, h, ref)
			r := rng.New(509)
			queries := append(randomUnit(r, 50, 24), vecs[:20]...)
			for qi, q := range queries {
				for _, k := range []int{1, 5, 17, 1000} {
					got := h.Search(q, k)
					want := ref.search(q, k)
					assertResultsIdentical(t, got, want, fmt.Sprintf("query %d k=%d", qi, k))
				}
			}
		})
	}
}

// TestHNSWBatchParity pins SearchBatch against the reference's sequential
// answers — the batch fan-out must not perturb per-query results.
func TestHNSWBatchParity(t *testing.T) {
	h, ref, _ := buildParityPair(t, 300, 16, HNSWConfig{Seed: 3, M: 8})
	r := rng.New(613)
	queries := randomUnit(r, 64, 16)
	batch := h.SearchBatch(queries, 10)
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d rows, want %d", len(batch), len(queries))
	}
	for qi, q := range queries {
		assertResultsIdentical(t, batch[qi], ref.search(q, 10), fmt.Sprintf("batch query %d", qi))
	}
}

// TestHNSWCloneForAppendIsolation pins the compaction contract: appending
// to a clone must not disturb the original's graph or results, and the
// clone must behave exactly like the original grown directly.
func TestHNSWCloneForAppendIsolation(t *testing.T) {
	cfg := HNSWConfig{Dim: 16, Seed: 11, M: 8}
	r := rng.New(811)
	vecs := randomUnit(r, 260, 16)

	h := NewHNSW(cfg)
	oracle := NewHNSW(cfg)
	for i, v := range vecs[:200] {
		key := fmt.Sprintf("k%03d", i)
		h.Add(v, key)
		oracle.Add(v, key)
	}
	queries := randomUnit(rng.New(907), 20, 16)
	before := make([][]Result, len(queries))
	for i, q := range queries {
		before[i] = h.Search(q, 5)
	}

	clone := h.CloneForAppend().(*HNSW)
	for i, v := range vecs[200:] {
		key := fmt.Sprintf("k%03d", 200+i)
		clone.Add(v, key)
		oracle.Add(v, key)
	}

	for i, q := range queries {
		assertResultsIdentical(t, h.Search(q, 5), before[i], fmt.Sprintf("original query %d", i))
		assertResultsIdentical(t, clone.Search(q, 5), oracle.Search(q, 5), fmt.Sprintf("clone query %d", i))
	}
	if h.Len() != 200 || clone.Len() != 260 {
		t.Fatalf("Len: original %d (want 200), clone %d (want 260)", h.Len(), clone.Len())
	}
}

func TestHNSWKeyPanicsOutOfRange(t *testing.T) {
	h, _ := buildHNSW(t, 5, 8, HNSWConfig{Seed: 1})
	for _, id := range []int{-1, 5, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Key(%d) did not panic", id)
				}
			}()
			h.Key(id)
		}()
	}
	if h.Key(4) != "" {
		t.Fatalf("in-range Key changed behaviour")
	}
}

// TestHNSWRecallGate is the efSearch-sweep regression gate from the
// modernisation issue: on the standard fixture, a reasonable beam width
// must hold recall@10 at or above 0.9, and the sweep must be monotone
// enough that the widest beam is the best.
func TestHNSWRecallGate(t *testing.T) {
	h, _ := buildHNSW(t, 1000, 32, HNSWConfig{Seed: 5})
	exact := h.flatView()
	queries := randomUnit(rng.New(1201), 50, 32)
	sweep := []int{16, 48, 128}
	recalls := make([]float64, len(sweep))
	for i, ef := range sweep {
		h.SetEfSearch(ef)
		recalls[i] = h.RecallAgainst(exact, queries, 10)
	}
	if best := recalls[len(recalls)-1]; best < 0.9 {
		t.Fatalf("recall@10 at efSearch=%d is %.3f, want >= 0.9 (sweep %v)", sweep[len(sweep)-1], best, recalls)
	}
	for i := 1; i < len(recalls); i++ {
		if recalls[i] < recalls[i-1]-0.05 {
			t.Fatalf("recall regressed along the sweep: %v at efSearch %v", recalls, sweep)
		}
	}
}
