package vecstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// saveHNSWFixture builds a small multi-layer graph and saves it.
func saveHNSWFixture(t *testing.T, dir string, n int) (*HNSW, string) {
	t.Helper()
	h, _ := buildHNSW(t, n, 16, HNSWConfig{Seed: 17, M: 6, EfConstruction: 40, EfSearch: 48})
	path := filepath.Join(dir, "hnsw.vsf")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	return h, path
}

// TestVSF5SaveLoadRoundTrip pins that every piece of graph state —
// config, levels, entry, adjacency, code block — survives the VSF5
// round trip with no reconstruction: the loaded index must answer
// bit-identically to the saved one.
func TestVSF5SaveLoadRoundTrip(t *testing.T) {
	h, path := saveHNSWFixture(t, t.TempDir(), 300)
	loaded, err := LoadHNSW(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != h.Len() || loaded.Dim() != h.Dim() {
		t.Fatalf("shape: %d/%d vs %d/%d", loaded.Len(), loaded.Dim(), h.Len(), h.Dim())
	}
	if loaded.m != h.m || loaded.efConstruction != h.efConstruction ||
		loaded.efSearch != h.efSearch || loaded.seed != h.seed {
		t.Fatalf("config did not round-trip: %+v vs %+v", loaded, h)
	}
	if loaded.entry != h.entry || loaded.maxLv != h.maxLv {
		t.Fatalf("entry/maxLv: (%d,%d) vs (%d,%d)", loaded.entry, loaded.maxLv, h.entry, h.maxLv)
	}
	for id := range h.keys {
		if loaded.Key(id) != h.Key(id) || loaded.levels[id] != h.levels[id] {
			t.Fatalf("node %d key/level mismatch", id)
		}
		for lv := 0; lv <= h.levels[id]; lv++ {
			got, want := loaded.neighbours(id, lv), h.neighbours(id, lv)
			if len(got) != len(want) {
				t.Fatalf("node %d level %d degree %d, want %d", id, lv, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d level %d slot %d: %d, want %d", id, lv, i, got[i], want[i])
				}
			}
		}
	}
	queries := randomUnit(rng.New(23), 25, 16)
	for qi, q := range queries {
		a, b := loaded.Search(q, 7), h.Search(q, 7)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d results, want %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v, want %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestVSF5LoadDispatch pins that the generic Load returns a *HNSW for a
// VSF5 file.
func TestVSF5LoadDispatch(t *testing.T) {
	_, path := saveHNSWFixture(t, t.TempDir(), 60)
	ix, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*HNSW); !ok {
		t.Fatalf("Load returned %T, want *HNSW", ix)
	}
}

// TestVSF5EmptyRoundTrip covers the biased entry/maxLv encoding for an
// index with no vectors.
func TestVSF5EmptyRoundTrip(t *testing.T) {
	h := NewHNSW(HNSWConfig{Dim: 8, Seed: 3})
	path := filepath.Join(t.TempDir(), "empty.vsf")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.entry != -1 || loaded.maxLv != -1 {
		t.Fatalf("empty index loaded as len=%d entry=%d maxLv=%d", loaded.Len(), loaded.entry, loaded.maxLv)
	}
	if res := loaded.Search(make([]float32, 8), 3); res != nil {
		t.Fatalf("empty index returned %v", res)
	}
}

// TestVSF5LoadThenAddMatchesNeverSaved pins the rng fast-forward: adding
// to a loaded index must produce the same graph and results as adding to
// an index that was never saved (the level stream resumes mid-sequence).
func TestVSF5LoadThenAddMatchesNeverSaved(t *testing.T) {
	cfg := HNSWConfig{Dim: 12, Seed: 29, M: 8}
	r := rng.New(31)
	vecs := randomUnit(r, 300, 12)
	oracle := NewHNSW(cfg)
	saved := NewHNSW(cfg)
	for i, v := range vecs[:200] {
		key := fmt.Sprintf("k%03d", i)
		oracle.Add(v, key)
		saved.Add(v, key)
	}
	path := filepath.Join(t.TempDir(), "partial.vsf")
	if err := saved.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs[200:] {
		key := fmt.Sprintf("k%03d", 200+i)
		oracle.Add(v, key)
		loaded.Add(v, key)
	}
	queries := randomUnit(rng.New(37), 20, 12)
	for qi, q := range queries {
		a, b := loaded.Search(q, 5), oracle.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d results, want %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v, want %+v (level stream diverged after load)", qi, i, a[i], b[i])
			}
		}
	}
}

// TestVSF5CrossFormatRejection: family-specific loaders must refuse each
// other's files with ErrBadFormat.
func TestVSF5CrossFormatRejection(t *testing.T) {
	dir := t.TempDir()
	_, hnswPath := saveHNSWFixture(t, dir, 40)

	flat := NewFlat(16)
	for i, v := range randomUnit(rng.New(41), 20, 16) {
		flat.Add(v, fmt.Sprintf("f%d", i))
	}
	flatPath := filepath.Join(dir, "flat.vsf")
	if err := flat.Save(flatPath); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadFlat(hnswPath); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadFlat(VSF5) = %v, want ErrBadFormat", err)
	}
	if _, err := LoadPQ(hnswPath); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadPQ(VSF5) = %v, want ErrBadFormat", err)
	}
	if _, err := LoadIVFPQ(hnswPath); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadIVFPQ(VSF5) = %v, want ErrBadFormat", err)
	}
	if _, err := LoadHNSW(flatPath); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("LoadHNSW(VSF2) = %v, want ErrBadFormat", err)
	}
}

// TestVSF5RejectsTruncated cuts a valid file at several depths — inside
// the header, the key records, the adjacency, the code block — and every
// cut must fail with ErrBadFormat rather than a panic or a short index.
func TestVSF5RejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	_, path := saveHNSWFixture(t, dir, 80)
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 10, 30, 44, len(data) / 4, len(data) / 2, len(data) - 1} {
		trunc := filepath.Join(dir, fmt.Sprintf("trunc%d.vsf", cut))
		if err := writeFile(trunc, data[:cut]); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadHNSW(trunc); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("cut at %d loaded: %v", cut, err)
		}
	}
}

// TestVSF5RejectsHeaderBombs hand-crafts headers whose decoded sizes the
// file cannot back — the allocbound failure class — plus graph-invariant
// violations a fuzzer could synthesise.
func TestVSF5RejectsHeaderBombs(t *testing.T) {
	dir := t.TempDir()
	le := binary.LittleEndian
	// header: magic, dim, m, efC, efS u32s... seed u64, maxLv+1, entry+1 u32s, count u64.
	mk := func(dim, m, efc, efs uint32, seed uint64, maxLvP, entryP uint32, count uint64, tail []byte) []byte {
		b := []byte("VSF5")
		for _, v := range []uint32{dim, m, efc, efs} {
			b = le.AppendUint32(b, v)
		}
		b = le.AppendUint64(b, seed)
		b = le.AppendUint32(b, maxLvP)
		b = le.AppendUint32(b, entryP)
		b = le.AppendUint64(b, count)
		return append(b, tail...)
	}
	cases := map[string][]byte{
		// count claims 2^27 rows in a 40-byte payload.
		"count-bomb": mk(8, 4, 16, 16, 1, 1, 1, 1<<27, nil),
		// dim 0 and dim beyond the sanity cap.
		"dim-zero": mk(0, 4, 16, 16, 1, 0, 0, 0, nil),
		"dim-huge": mk(1<<20, 4, 16, 16, 1, 0, 0, 0, nil),
		// M beyond the fixed-slot reader limit.
		"m-huge": mk(8, 1<<16, 16, 16, 1, 0, 0, 0, nil),
		// entry point outside count.
		"entry-out": mk(8, 4, 16, 16, 1, 1, 9, 2, nil),
		// non-empty graph claiming no entry.
		"no-entry": mk(8, 4, 16, 16, 1, 0, 0, 2, nil),
		// empty graph claiming an entry.
		"phantom-entry": mk(8, 4, 16, 16, 1, 1, 1, 0, nil),
		// max level beyond the layer cap.
		"level-bomb": mk(8, 4, 16, 16, 1, 1<<30, 1, 1, nil),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name+".vsf")
		if err := writeFile(path, data); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadHNSW(path); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("%s loaded: %v", name, err)
		}
	}
}
