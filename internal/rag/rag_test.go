package rag

import (
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/mcq"
	"repro/internal/rng"
	"repro/internal/vecstore"
)

// fixture builds a small end-to-end corpus: documents → chunks → questions
// → traces, the inputs of the retrieval layer.
type fixture struct {
	kb        *corpus.KB
	chunks    []chunk.Chunk
	questions []*mcq.Question
	traces    []*mcq.Trace
}

func buildFixture(t testing.TB, nDocs int) *fixture {
	t.Helper()
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	teacher := llmsim.NewTeacher(kb)
	ch := chunk.New(chunk.DefaultConfig(), nil)
	r := rng.New(9)
	fx := &fixture{kb: kb}
	for i := 0; i < nDocs; i++ {
		d := g.GenerateDoc(corpus.FullPaper, i)
		chunks := ch.Split(d.ID, d.Text())
		fx.chunks = append(fx.chunks, chunks...)
		for _, c := range chunks {
			q := teacher.GenerateMCQ(c, d.Facts, "f", r)
			if q.Prov.FactID == "" {
				continue
			}
			fx.questions = append(fx.questions, q)
			fx.traces = append(fx.traces, teacher.GenerateTraces(q)...)
		}
	}
	if len(fx.questions) == 0 {
		t.Fatal("fixture produced no grounded questions")
	}
	return fx
}

func TestChunkStoreSelfRetrieval(t *testing.T) {
	fx := buildFixture(t, 6)
	store := BuildChunkStore(nil, fx.chunks, 0)
	if store.Len() != len(fx.chunks) {
		t.Fatalf("store holds %d, want %d", store.Len(), len(fx.chunks))
	}
	// Querying with a chunk's own text must return that chunk first.
	hits := 0
	for i := 0; i < len(fx.chunks); i += 5 {
		res := store.Retrieve(fx.chunks[i].Text, 1)
		if len(res) == 1 && res[0].Chunk.ID == fx.chunks[i].ID {
			hits++
		}
	}
	total := (len(fx.chunks) + 4) / 5
	if float64(hits) < 0.9*float64(total) {
		t.Fatalf("self-retrieval %d/%d", hits, total)
	}
}

func TestChunkRetrievalFindsSourceFact(t *testing.T) {
	// The paper's RAG-Chunks condition works because question embeddings
	// land near their source chunk. Verify the source fact is usually
	// retrieved in the top 5.
	fx := buildFixture(t, 6)
	store := BuildChunkStore(nil, fx.chunks, 0)
	found := 0
	for _, q := range fx.questions {
		f := fx.kb.Fact(corpus.FactID(q.Prov.FactID))
		for _, rc := range store.Retrieve(q.Question, 5) {
			if strings.Contains(rc.Chunk.Text, f.Sentence()) {
				found++
				break
			}
		}
	}
	rate := float64(found) / float64(len(fx.questions))
	if rate < 0.5 {
		t.Fatalf("source-fact retrieval rate %.2f too low (%d/%d)", rate, found, len(fx.questions))
	}
}

func TestChunkStoreIVFSwap(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	n := store.Len()
	store.UseIVF(vecstore.IVFConfig{NList: 8, NProbe: 8, Seed: 1})
	if store.Len() != n {
		t.Fatal("IVF swap lost vectors")
	}
	res := store.Retrieve(fx.chunks[0].Text, 1)
	if len(res) != 1 || res[0].Chunk.ID != fx.chunks[0].ID {
		t.Fatal("retrieval broken after IVF swap")
	}
}

func TestChunkStorePQSwap(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	n := store.Len()
	store.UsePQ(vecstore.PQConfig{M: embed.DefaultDim / 4, Seed: 1})
	if store.Len() != n {
		t.Fatal("PQ swap lost vectors")
	}
	if kind := store.IndexStats().Kind; !strings.HasPrefix(kind, "PQ(") {
		t.Fatalf("IndexStats kind %q after PQ swap", kind)
	}
	// Quantized self-retrieval: the chunk's own text should still come
	// back on top for nearly all probes.
	hits := 0
	for i := 0; i < len(fx.chunks); i += 5 {
		res := store.Retrieve(fx.chunks[i].Text, 1)
		if len(res) == 1 && res[0].Chunk.ID == fx.chunks[i].ID {
			hits++
		}
	}
	total := (len(fx.chunks) + 4) / 5
	if float64(hits) < 0.8*float64(total) {
		t.Fatalf("self-retrieval after PQ swap %d/%d", hits, total)
	}
}

func TestChunkStoreIVFPQSwap(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	n := store.Len()
	store.UseIVFPQ(vecstore.IVFPQConfig{NList: 8, NProbe: 8, M: embed.DefaultDim / 4, Seed: 1})
	if store.Len() != n {
		t.Fatal("IVF-PQ swap lost vectors")
	}
	res := store.Retrieve(fx.chunks[0].Text, 1)
	if len(res) != 1 || res[0].Chunk.ID != fx.chunks[0].ID {
		t.Fatal("retrieval broken after IVF-PQ swap")
	}
}

func TestChunkStorePQSaveReload(t *testing.T) {
	fx := buildFixture(t, 3)
	store := BuildChunkStore(nil, fx.chunks, 0)
	store.UsePQ(vecstore.PQConfig{M: embed.DefaultDim / 4, Seed: 1})
	path := t.TempDir() + "/chunks.vsf3"
	if err := store.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	ix, err := vecstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := WrapChunkStore(nil, ix, fx.chunks)
	q := fx.chunks[0].Text
	want := store.Retrieve(q, 3)
	got := reloaded.Retrieve(q, 3)
	if len(got) != len(want) {
		t.Fatalf("%d results after reload, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Chunk.ID != want[i].Chunk.ID || got[i].Score != want[i].Score {
			t.Fatalf("rank %d differs after reload", i)
		}
	}
}

// TestChunkStoreIVFPQSaveReload persists a residual+OPQ IVF-PQ-backed
// store as VSF4 and checks the reloaded store retrieves bit-identically —
// the hot-swap path ragserve uses (vecstore.Load dispatches on magic).
func TestChunkStoreIVFPQSaveReload(t *testing.T) {
	fx := buildFixture(t, 3)
	store := BuildChunkStore(nil, fx.chunks, 0)
	store.UseIVFPQ(vecstore.IVFPQConfig{
		NList: 8, NProbe: 8, M: embed.DefaultDim / 4, Seed: 1,
		Residual: true, OPQ: true, OPQIters: 2,
	})
	if kind := store.IndexStats().Kind; !strings.Contains(kind, "res+opq") {
		t.Fatalf("IndexStats kind %q missing variant after IVF-PQ swap", kind)
	}
	path := t.TempDir() + "/chunks.vsf4"
	if err := store.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	ix, err := vecstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*vecstore.IVFPQ); !ok {
		t.Fatalf("Load returned %T for a VSF4 file", ix)
	}
	reloaded := WrapChunkStore(nil, ix, fx.chunks)
	q := fx.chunks[0].Text
	want := store.Retrieve(q, 3)
	got := reloaded.Retrieve(q, 3)
	if len(got) != len(want) {
		t.Fatalf("%d results after reload, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Chunk.ID != want[i].Chunk.ID || got[i].Score != want[i].Score {
			t.Fatalf("rank %d differs after reload", i)
		}
	}
}

func TestChunkStoreMemoryBytes(t *testing.T) {
	fx := buildFixture(t, 2)
	store := BuildChunkStore(nil, fx.chunks, 0)
	want := int64(store.Len()) * int64(2*embed.DefaultDim)
	if store.MemoryBytes() != want {
		t.Fatalf("MemoryBytes %d, want %d", store.MemoryBytes(), want)
	}
}

func TestTraceStorePerMode(t *testing.T) {
	fx := buildFixture(t, 5)
	qf := QuestionFactMap(fx.questions)
	stores := TraceStores(nil, fx.traces, qf, 0)
	if len(stores) != 3 {
		t.Fatalf("%d stores", len(stores))
	}
	for _, mode := range mcq.AllModes {
		s := stores[mode]
		if s.Mode() != mode {
			t.Fatal("mode mismatch")
		}
		if s.Len() != len(fx.questions) {
			t.Fatalf("mode %s holds %d traces, want %d", mode, s.Len(), len(fx.questions))
		}
	}
}

func TestTraceRetrievalSelfExclusion(t *testing.T) {
	fx := buildFixture(t, 5)
	qf := QuestionFactMap(fx.questions)
	store := BuildTraceStore(nil, mcq.ModeFocused, fx.traces, qf, 0)
	q := fx.questions[0]
	res := store.Retrieve(q.Question, 5, q.ID)
	for _, rt := range res {
		if rt.Trace.QuestionID == q.ID {
			t.Fatal("own trace retrieved despite exclusion")
		}
	}
	// Without exclusion, the question's own trace should top the list
	// (trace text restates the question).
	res = store.Retrieve(q.Question, 5, "")
	if len(res) == 0 || res[0].Trace.QuestionID != q.ID {
		t.Fatal("own trace not top-ranked without exclusion")
	}
}

func TestTraceRetrievalCarriesFactID(t *testing.T) {
	fx := buildFixture(t, 5)
	qf := QuestionFactMap(fx.questions)
	store := BuildTraceStore(nil, mcq.ModeEfficient, fx.traces, qf, 0)
	res := store.Retrieve(fx.questions[0].Question, 3, "")
	for _, rt := range res {
		if rt.FactID == "" {
			t.Fatal("retrieved trace lacks fact ground truth")
		}
		if rt.FactID != qf[rt.Trace.QuestionID] {
			t.Fatal("fact mapping inconsistent")
		}
	}
}

func TestAssemblePromptIncludesEverything(t *testing.T) {
	fx := buildFixture(t, 2)
	q := fx.questions[0]
	ctx := []string{"context item one about radiation.", "context item two about repair."}
	p := AssemblePrompt(q, ctx, 32768)
	if !strings.Contains(p.Text, q.Question) {
		t.Fatal("prompt lacks question")
	}
	for i := range q.Options {
		if !strings.Contains(p.Text, string(rune('A'+i))+") ") {
			t.Fatalf("prompt lacks option %c", rune('A'+i))
		}
	}
	for _, c := range ctx {
		if !strings.Contains(p.Text, c) {
			t.Fatalf("prompt lacks context %q", c)
		}
	}
	if len(p.Included) != 2 || !p.Included[0] || !p.Included[1] {
		t.Fatalf("inclusion mask %v", p.Included)
	}
}

func TestAssemblePromptTruncatesForSmallWindow(t *testing.T) {
	fx := buildFixture(t, 2)
	q := fx.questions[0]
	long := strings.Repeat("very long context sentence about dose fractionation. ", 200)
	ctx := []string{long, long, long}
	p := AssemblePrompt(q, ctx, 2048) // OLMo/TinyLlama window
	if p.Tokens > 2048 {
		t.Fatalf("prompt %d tokens exceeds window", p.Tokens)
	}
	if !p.Included[0] {
		t.Fatal("top-ranked context dropped entirely")
	}
	if p.Included[1] && p.Included[2] {
		t.Fatal("small window included every long item")
	}
	// A large window includes them all.
	p = AssemblePrompt(q, ctx, 128000)
	if !p.Included[0] || !p.Included[1] || !p.Included[2] {
		t.Fatalf("large window exclusion mask %v", p.Included)
	}
}

func TestAssemblePromptNoContext(t *testing.T) {
	fx := buildFixture(t, 2)
	q := fx.questions[0]
	p := AssemblePrompt(q, nil, 2048)
	if strings.Contains(p.Text, "Context:") {
		t.Fatal("baseline prompt mentions context")
	}
	if !strings.HasSuffix(p.Text, "Answer: ") {
		t.Fatal("prompt missing answer directive")
	}
}

func TestChunkUtilityOracle(t *testing.T) {
	fx := buildFixture(t, 6)
	store := BuildChunkStore(nil, fx.chunks, 0)
	q := fx.questions[0]
	f := fx.kb.Fact(corpus.FactID(q.Prov.FactID))

	retrieved := store.Retrieve(q.Question, 5)
	u := ChunkUtility(fx.kb, q, retrieved, nil)
	if u <= 0 || u > 1 {
		t.Fatalf("utility %v out of range", u)
	}
	// Exact fact chunk → near-full utility (times density and rank).
	var exact []RetrievedChunk
	for _, rc := range retrieved {
		if strings.Contains(rc.Chunk.Text, f.Sentence()) {
			exact = []RetrievedChunk{rc}
			break
		}
	}
	if exact != nil {
		if got := ChunkUtility(fx.kb, q, exact, nil); got < 0.7 {
			t.Fatalf("exact-fact utility %v", got)
		}
	}
	// Empty retrieval → zero.
	if got := ChunkUtility(fx.kb, q, nil, nil); got != 0 {
		t.Fatalf("empty retrieval utility %v", got)
	}
}

func TestChunkUtilityHonoursInclusionMask(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	q := fx.questions[0]
	retrieved := store.Retrieve(q.Question, 3)
	full := ChunkUtility(fx.kb, q, retrieved, []float64{1, 1, 1})
	none := ChunkUtility(fx.kb, q, retrieved, []float64{0, 0, 0})
	if none != 0 {
		t.Fatalf("masked-out utility %v", none)
	}
	if full == 0 {
		t.Fatal("unmasked utility zero")
	}
}

func TestTraceUtilityExceedsChunkUtility(t *testing.T) {
	// The paper's core mechanism: distilled traces carry denser
	// answer-relevant signal than raw chunks. Averaged over questions, the
	// measured trace utility must exceed chunk utility.
	fx := buildFixture(t, 8)
	qf := QuestionFactMap(fx.questions)
	cs := BuildChunkStore(nil, fx.chunks, 0)
	ts := BuildTraceStore(nil, mcq.ModeFocused, fx.traces, qf, 0)
	var cu, tu float64
	for _, q := range fx.questions {
		cu += ChunkUtility(fx.kb, q, cs.Retrieve(q.Question, 5), nil)
		// Paper protocol: the question's own trace is retrievable (answer
		// text excluded), so no self-exclusion here.
		tu += TraceUtility(fx.kb, q, ts.Retrieve(q.Question, 5, ""), nil)
	}
	n := float64(len(fx.questions))
	if tu/n <= cu/n {
		t.Fatalf("mean trace utility %.3f not above chunk utility %.3f", tu/n, cu/n)
	}
}

func TestModeDensityOrdering(t *testing.T) {
	if !(modeDensity[mcq.ModeFocused] > modeDensity[mcq.ModeDetailed]) {
		t.Fatal("focused should out-dense detailed (paper §3.1.3)")
	}
	if chunkDensity >= modeDensity[mcq.ModeDetailed] {
		t.Fatal("chunks must be less dense than any trace mode")
	}
}

func TestQuestionFactMap(t *testing.T) {
	fx := buildFixture(t, 3)
	qf := QuestionFactMap(fx.questions)
	if len(qf) != len(fx.questions) {
		t.Fatalf("map size %d, want %d", len(qf), len(fx.questions))
	}
	for _, q := range fx.questions {
		if qf[q.ID] != q.Prov.FactID {
			t.Fatal("mapping wrong")
		}
	}
}

func BenchmarkChunkRetrieve(b *testing.B) {
	fx := buildFixture(b, 10)
	store := BuildChunkStore(nil, fx.chunks, 0)
	q := fx.questions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = store.Retrieve(q.Question, 5)
	}
}

func BenchmarkBuildChunkStore(b *testing.B) {
	fx := buildFixture(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildChunkStore(nil, fx.chunks, 0)
	}
}

func TestChunkRetrieveBatchMatchesRetrieve(t *testing.T) {
	fx := buildFixture(t, 5)
	store := BuildChunkStore(nil, fx.chunks, 0)
	queries := make([]string, 0, 12)
	for i := 0; i < len(fx.questions) && len(queries) < 12; i++ {
		queries = append(queries, fx.questions[i].Question)
	}
	batch := store.RetrieveBatch(queries, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d groups, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		seq := store.Retrieve(q, 4)
		if len(batch[i]) != len(seq) {
			t.Fatalf("query %d: %d vs %d results", i, len(batch[i]), len(seq))
		}
		for j := range seq {
			if batch[i][j].Chunk.ID != seq[j].Chunk.ID || batch[i][j].Score != seq[j].Score {
				t.Fatalf("query %d rank %d: batch %q/%v vs seq %q/%v", i, j,
					batch[i][j].Chunk.ID, batch[i][j].Score, seq[j].Chunk.ID, seq[j].Score)
			}
		}
	}
}

func TestTraceRetrieveBatchMatchesRetrieve(t *testing.T) {
	fx := buildFixture(t, 5)
	qf := QuestionFactMap(fx.questions)
	store := BuildTraceStore(nil, mcq.ModeFocused, fx.traces, qf, 0)
	n := len(fx.questions)
	if n > 10 {
		n = 10
	}
	queries := make([]string, n)
	excludes := make([]string, n)
	for i := 0; i < n; i++ {
		queries[i] = fx.questions[i].Question
		excludes[i] = fx.questions[i].ID
	}
	// With and without per-query self-exclusion.
	for _, withExcludes := range []bool{false, true} {
		ex := []string(nil)
		if withExcludes {
			ex = excludes
		}
		batch := store.RetrieveBatch(queries, 3, ex)
		for i := range queries {
			exclude := ""
			if withExcludes {
				exclude = excludes[i]
			}
			seq := store.Retrieve(queries[i], 3, exclude)
			if len(batch[i]) != len(seq) {
				t.Fatalf("query %d: %d vs %d results", i, len(batch[i]), len(seq))
			}
			for j := range seq {
				if batch[i][j].Trace.ID != seq[j].Trace.ID || batch[i][j].Score != seq[j].Score {
					t.Fatalf("query %d rank %d mismatch", i, j)
				}
			}
		}
	}
}

func TestChunkStoreWithIndexSnapshot(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	dir := t.TempDir()
	path := dir + "/snap.vsf"
	if err := store.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := vecstore.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.WithIndex(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if snap == store {
		t.Fatal("WithIndex returned the receiver, not a snapshot")
	}
	if store.Index() == snap.Index() {
		t.Fatal("snapshot shares the receiver's index")
	}
	// Same data behind both indexes → identical retrieval.
	query := fx.chunks[0].Text
	before, after := store.Retrieve(query, 3), snap.Retrieve(query, 3)
	if len(before) == 0 || len(before) != len(after) {
		t.Fatalf("result lengths %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Chunk.ID != after[i].Chunk.ID {
			t.Fatalf("result %d: %s vs %s", i, before[i].Chunk.ID, after[i].Chunk.ID)
		}
	}
}

func TestWithIndexRejectsMismatch(t *testing.T) {
	fx := buildFixture(t, 2)
	store := BuildChunkStore(nil, fx.chunks, 0)
	if _, err := store.WithIndex(nil); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := store.WithIndex(vecstore.NewFlat(7)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Right dimension, wrong corpus: sampled keys must resolve in byKey.
	alien := vecstore.NewFlat(embed.NewDefault().Dim())
	alien.Add(make([]float32, alien.Dim()), "not-a-chunk")
	if _, err := store.WithIndex(alien); err == nil {
		t.Fatal("foreign-corpus index accepted")
	}
	stores := TraceStores(nil, fx.traces, QuestionFactMap(fx.questions), 0)
	for _, ts := range stores {
		if _, err := ts.WithIndex(vecstore.NewFlat(7)); err == nil {
			t.Fatal("trace store dimension mismatch accepted")
		}
		break
	}
}

func TestWithIndexRejectsEmptyIndex(t *testing.T) {
	fx := buildFixture(t, 2)
	store := BuildChunkStore(nil, fx.chunks, 0)
	if _, err := store.WithIndex(vecstore.NewFlat(embed.NewDefault().Dim())); err == nil {
		t.Fatal("empty index accepted as a swap target")
	}
}
