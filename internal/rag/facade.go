package rag

import (
	"fmt"
	"time"

	"repro/internal/vecstore"
)

// Store-agnostic serving facade: the online layer (internal/serve) fronts
// four retrieval databases — the chunk store plus the three per-mode
// trace stores — behind identical routes, so it speaks to all of them
// through one small interface instead of hard-coding *ChunkStore. The
// adapters below flatten each store's typed results into Hit records and
// forward the snapshot (WithIndex) hook, keeping the hot-swap discipline
// of snapshot.go intact per store.

// Hit is one store-agnostic retrieval result. For chunk stores ID is the
// chunk id, Group its document id, and Text the chunk text; for trace
// stores ID is the trace id, Group its source-question id, and Text the
// reasoning trace.
type Hit struct {
	ID    string
	Group string
	Text  string
	Score float32
}

// Facade is the retrieval interface the serving layer works against
// (internal/serve aliases it as serve.Store). Implementations must be
// safe for concurrent use and immutable at serve time, exactly like the
// stores they wrap.
type Facade interface {
	// RetrieveBatch answers queries at depth k through the store's
	// multi-query kernel. exclude is nil or one group id per query whose
	// hits must be suppressed (the trace stores' question self-exclusion;
	// chunk stores ignore it).
	RetrieveBatch(queries []string, k int, exclude []string) [][]Hit
	// WithIndex derives an immutable snapshot of the store serving index
	// instead of the current one (see ChunkStore.WithIndex).
	WithIndex(index vecstore.Index) (Facade, error)
	// Index exposes the current index for stats and persistence.
	Index() vecstore.Index
	// Len reports the number of stored records.
	Len() int
}

// StageTimings decomposes one RetrieveBatch into the retrieval stages the
// serving layer's observability reports: Embed is query encoding, Scan the
// index kernel's scan phase, Merge its heap merge plus the metadata
// collect. The sum can trail the whole call (slack is glue code, not a
// stage).
type StageTimings struct {
	Embed time.Duration
	Scan  time.Duration
	Merge time.Duration
}

// StagedRetriever is the optional facade extension behind the per-stage
// latency breakdown: a store that can report where a batch's time went.
// Both built-in facades implement it; the serving layer falls back to
// booking a plain RetrieveBatch entirely under Scan when a custom store
// doesn't.
type StagedRetriever interface {
	// RetrieveBatchStaged is RetrieveBatch plus stage timing; results are
	// identical to RetrieveBatch for the same inputs.
	RetrieveBatchStaged(queries []string, k int, exclude []string) ([][]Hit, StageTimings)
}

// NewChunkFacade adapts a ChunkStore to the serving facade.
func NewChunkFacade(s *ChunkStore) Facade { return chunkFacade{s} }

// NewTraceFacade adapts a TraceStore to the serving facade.
func NewTraceFacade(s *TraceStore) Facade { return traceFacade{s} }

type chunkFacade struct{ s *ChunkStore }

func (f chunkFacade) RetrieveBatch(queries []string, k int, _ []string) [][]Hit {
	out, _ := f.RetrieveBatchStaged(queries, k, nil)
	return out
}

func (f chunkFacade) RetrieveBatchStaged(queries []string, k int, _ []string) ([][]Hit, StageTimings) {
	res, st := f.s.RetrieveBatchStaged(queries, k)
	out := make([][]Hit, len(res))
	for i, rcs := range res {
		hits := make([]Hit, len(rcs))
		for j, rc := range rcs {
			hits[j] = Hit{ID: rc.Chunk.ID, Group: rc.Chunk.DocID, Text: rc.Chunk.Text, Score: rc.Score}
		}
		out[i] = hits
	}
	return out, st
}

func (f chunkFacade) WithIndex(index vecstore.Index) (Facade, error) {
	s, err := f.s.WithIndex(index)
	if err != nil {
		return nil, err
	}
	return chunkFacade{s}, nil
}

func (f chunkFacade) Index() vecstore.Index { return f.s.Index() }
func (f chunkFacade) Len() int              { return f.s.Len() }

type traceFacade struct{ s *TraceStore }

func (f traceFacade) RetrieveBatch(queries []string, k int, exclude []string) [][]Hit {
	out, _ := f.RetrieveBatchStaged(queries, k, exclude)
	return out
}

func (f traceFacade) RetrieveBatchStaged(queries []string, k int, exclude []string) ([][]Hit, StageTimings) {
	res, st := f.s.RetrieveBatchStaged(queries, k, exclude)
	out := make([][]Hit, len(res))
	for i, rts := range res {
		hits := make([]Hit, len(rts))
		for j, rt := range rts {
			hits[j] = Hit{ID: rt.Trace.ID, Group: rt.Trace.QuestionID, Text: rt.Trace.Reasoning, Score: rt.Score}
		}
		out[i] = hits
	}
	return out, st
}

func (f traceFacade) WithIndex(index vecstore.Index) (Facade, error) {
	s, err := f.s.WithIndex(index)
	if err != nil {
		return nil, err
	}
	return traceFacade{s}, nil
}

func (f traceFacade) Index() vecstore.Index { return f.s.Index() }
func (f traceFacade) Len() int              { return f.s.Len() }

// String implements fmt.Stringer for serve-side logging.
func (f chunkFacade) String() string { return fmt.Sprintf("ChunkStore(%d chunks)", f.s.Len()) }
func (f traceFacade) String() string { return f.s.String() }
