package rag

import (
	"fmt"

	"repro/internal/vecstore"
)

// Hot-swap hooks for the serving layer: a store is treated as an immutable
// snapshot, and "swapping the index" means deriving a new snapshot that
// shares the encoder and metadata maps but serves a different
// vecstore.Index. The serving layer loads/trains the replacement index in
// the background, derives the snapshot with WithIndex, and publishes it
// with one atomic pointer store — readers mid-search keep the old snapshot,
// so no request ever observes a torn index.

// WithIndex returns a snapshot of the store serving index instead of the
// current one. The encoder and chunk metadata are shared (both are
// read-only at serve time); the receiver is not modified. The index keys
// must be chunk ids from the same corpus, and its dimensionality must
// match the encoder's.
func (s *ChunkStore) WithIndex(index vecstore.Index) (*ChunkStore, error) {
	if err := validateIndex(index, s.enc.Dim(), func(k string) bool {
		if _, ok := s.byKey[k]; ok {
			return true
		}
		// Live inserts register metadata in the shared overlay, so an index
		// holding post-build rows (a compaction successor) validates too.
		return s.live != nil && s.live.has(k)
	}); err != nil {
		return nil, err
	}
	return &ChunkStore{enc: s.enc, index: index, byKey: s.byKey, live: s.live, pool: s.pool}, nil
}

// keyed is implemented by every vecstore index; it lets WithIndex probe
// stored keys without widening the Index interface.
type keyed interface{ Key(id int) string }

// validateIndex rejects the swaps that would otherwise fail silently: a
// dimension mismatch, and — by sampling stored keys against the store's
// metadata — a same-dimension index built from a different corpus (whose
// hits would all be dropped by collect, serving empty results with no
// error).
func validateIndex(index vecstore.Index, dim int, known func(string) bool) error {
	if index == nil {
		return fmt.Errorf("rag: WithIndex: nil index")
	}
	if index.Dim() != dim {
		return fmt.Errorf("rag: WithIndex: index dim %d != encoder dim %d", index.Dim(), dim)
	}
	n := index.Len()
	if n == 0 {
		// An empty replacement would silently serve empty results — the
		// same failure mode the key sampling below exists to reject.
		return fmt.Errorf("rag: WithIndex: refusing to swap to an empty index")
	}
	kx, ok := index.(keyed)
	if !ok {
		return nil
	}
	samples := 16
	if n < samples {
		samples = n
	}
	for i := 0; i < samples; i++ {
		if key := kx.Key(i * n / samples); !known(key) {
			return fmt.Errorf("rag: WithIndex: index key %q not in store metadata (index from a different corpus?)", key)
		}
	}
	return nil
}

// Index exposes the store's current index for stats and persistence; treat
// it as read-only while the store is serving.
func (s *ChunkStore) Index() vecstore.Index { return s.index }

// WithIndex returns a snapshot of the trace store serving index instead of
// the current one (see ChunkStore.WithIndex).
func (s *TraceStore) WithIndex(index vecstore.Index) (*TraceStore, error) {
	if err := validateIndex(index, s.enc.Dim(), func(k string) bool {
		_, ok := s.byKey[k]
		return ok
	}); err != nil {
		return nil, err
	}
	return &TraceStore{mode: s.mode, enc: s.enc, index: index, byKey: s.byKey, factOf: s.factOf, pool: s.pool}, nil
}

// Index exposes the trace store's current index; treat it as read-only
// while the store is serving.
func (s *TraceStore) Index() vecstore.Index { return s.index }
