package rag

import (
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/vecstore"
)

// Live ingestion support for the chunk store: once EnableLive wraps the
// serving index in a vecstore.Live mutable layer, AddChunks embeds and
// inserts new chunks while searches proceed. Chunk metadata for inserted
// rows lives in a small overlay map shared by every WithIndex snapshot —
// the immutable build-time byKey map stays lock-free on the hot read path,
// and the overlay (consulted only on a byKey miss) takes an RLock.
//
// Ordering discipline: metadata is registered in the overlay BEFORE the
// vector lands in the memtable, so the instant a row becomes searchable
// its key resolves in collect. (The reverse order would drop fresh hits.)

// Ingestor is the optional write-path extension of Facade: stores that
// accept live inserts implement it (the chunk facade over a live-enabled
// ChunkStore). The serving layer type-asserts for it on its add endpoint.
type Ingestor interface {
	// AddChunks embeds and inserts chunks, returning how many were added.
	// It is safe to call concurrently with RetrieveBatch; the serving
	// layer additionally serialises it against compaction publishes.
	AddChunks(chunks []chunk.Chunk) (int, error)
}

// liveChunks is the mutable metadata overlay shared across snapshots.
type liveChunks struct {
	mu    sync.RWMutex
	byKey map[string]chunk.Chunk
}

func (l *liveChunks) get(key string) (chunk.Chunk, bool) {
	l.mu.RLock()
	c, ok := l.byKey[key]
	l.mu.RUnlock()
	return c, ok
}

func (l *liveChunks) has(key string) bool {
	_, ok := l.get(key)
	return ok
}

// EnableLive wraps the store's index in a vecstore.Live mutable layer so
// AddChunks works, and allocates the shared metadata overlay. Call before
// serving; it is not safe concurrently with searches. No-op if the store
// is already live.
func (s *ChunkStore) EnableLive() {
	if _, ok := s.index.(*vecstore.Live); !ok {
		s.index = vecstore.NewLive(s.index, nil)
	}
	if s.live == nil {
		s.live = &liveChunks{byKey: make(map[string]chunk.Chunk)}
	}
}

// AddChunks embeds and inserts chunks into the live index. Every chunk
// must have a non-empty id and text, and an id not already stored (base
// corpus or previously inserted). On error nothing is inserted. Safe to
// call concurrently with RetrieveBatch; concurrent AddChunks calls are
// themselves safe but the serving layer serialises them anyway (one write
// lock per route) to coordinate with compaction.
func (s *ChunkStore) AddChunks(chunks []chunk.Chunk) (int, error) {
	live, ok := s.index.(*vecstore.Live)
	if !ok || s.live == nil {
		return 0, fmt.Errorf("rag: AddChunks on a store without a live index (EnableLive first)")
	}
	if len(chunks) == 0 {
		return 0, fmt.Errorf("rag: AddChunks with no chunks")
	}
	texts := make([]string, len(chunks))
	seen := make(map[string]bool, len(chunks))
	for i, c := range chunks {
		if c.ID == "" || c.Text == "" {
			return 0, fmt.Errorf("rag: AddChunks: chunk %d has empty id or text", i)
		}
		if seen[c.ID] {
			return 0, fmt.Errorf("rag: AddChunks: duplicate chunk id %q in batch", c.ID)
		}
		seen[c.ID] = true
		if _, dup := s.byKey[c.ID]; dup || s.live.has(c.ID) {
			return 0, fmt.Errorf("rag: AddChunks: chunk id %q already stored", c.ID)
		}
		texts[i] = c.Text
	}
	vecs := s.pool.EncodeAll(texts)
	// Metadata first (see the ordering discipline above), then the rows.
	s.live.mu.Lock()
	for _, c := range chunks {
		s.live.byKey[c.ID] = c
	}
	s.live.mu.Unlock()
	for i, c := range chunks {
		live.Add(vecs[i], c.ID)
	}
	return len(chunks), nil
}

// LiveIndex returns the store's mutable index, or nil when EnableLive was
// never called (or a swap replaced the live layer).
func (s *ChunkStore) LiveIndex() *vecstore.Live {
	lv, _ := s.index.(*vecstore.Live)
	return lv
}

// AddChunks implements Ingestor on the chunk facade.
func (f chunkFacade) AddChunks(chunks []chunk.Chunk) (int, error) {
	return f.s.AddChunks(chunks)
}
