// Package rag implements the retrieval-augmented-generation layer: the
// chunk vector store and the three per-mode reasoning-trace vector stores
// of the paper's Figure 1, prompt assembly under each model's context
// window, and the measured retrieval-utility oracle that feeds the
// simulated students (DESIGN.md §4).
//
// ChunkStore and TraceStore wrap a vecstore index (Flat by default) with
// the domain records behind each key. Both expose the same scaling knobs:
// UseIVF, UsePQ and UseIVFPQ swap the exact index for an approximate or
// quantized one (recall vs memory vs QPS — see docs/ARCHITECTURE.md),
// RetrieveBatch answers whole question sets through the index's
// multi-query scan kernel (the query-embedding pool is built once per
// store and capped at the batch size — the serving hot path calls this
// per micro-batch), SaveIndex/vecstore.Load persist the store's vectors
// (VSF2 for Flat, VSF3 for PQ, VSF4 for IVF-PQ), and IndexStats feeds the eval report's
// retrieval-configuration table.
//
// For the online layer, Facade (with the NewChunkFacade/NewTraceFacade
// adapters) presents both store kinds behind one store-agnostic
// interface — flattened Hit results, the WithIndex hot-swap hook, and
// per-query question exclusion — which internal/serve mounts as routes.
package rag
