package rag

import (
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/embed"
	"repro/internal/mcq"
	"repro/internal/vecstore"
)

// RetrievedChunk is one chunk hit with its similarity score.
type RetrievedChunk struct {
	Chunk chunk.Chunk
	Score float32
}

// ChunkStore is the paper-derived semantic-chunk retrieval database
// (PubMedBERT embeddings in FAISS, FP16 — here embed + vecstore).
type ChunkStore struct {
	enc   *embed.Encoder
	index vecstore.Index
	byKey map[string]chunk.Chunk
	// live is the mutable metadata overlay for chunks inserted after build
	// (see live.go); nil until EnableLive, and shared — like byKey — across
	// WithIndex snapshots so inserts are visible through every generation.
	live *liveChunks
	// pool is the query-embedding pool, built once at construction: the
	// serving hot path calls RetrieveBatch per micro-batch, so a fresh
	// pool per call would be one allocation per batch for no reason
	// (Pool is stateless and safe for concurrent use).
	pool *embed.Pool
}

// BuildChunkStore embeds all chunks in parallel and indexes them. workers
// <= 0 selects GOMAXPROCS.
func BuildChunkStore(enc *embed.Encoder, chunks []chunk.Chunk, workers int) *ChunkStore {
	if enc == nil {
		enc = embed.NewDefault()
	}
	texts := make([]string, len(chunks))
	for i, c := range chunks {
		texts[i] = c.Text
	}
	vecs := embed.NewPool(enc, workers).EncodeAll(texts)
	ix := vecstore.NewFlat(enc.Dim())
	byKey := make(map[string]chunk.Chunk, len(chunks))
	for i, c := range chunks {
		ix.Add(vecs[i], c.ID)
		byKey[c.ID] = c
	}
	return &ChunkStore{enc: enc, index: ix, byKey: byKey, pool: embed.NewPool(enc, 0)}
}

// WrapChunkStore builds a ChunkStore around an already-populated index
// (e.g. one reloaded from disk) and the matching chunk records. The index
// keys must be the chunk ids.
func WrapChunkStore(enc *embed.Encoder, index vecstore.Index, chunks []chunk.Chunk) *ChunkStore {
	if enc == nil {
		enc = embed.NewDefault()
	}
	byKey := make(map[string]chunk.Chunk, len(chunks))
	for _, c := range chunks {
		byKey[c.ID] = c
	}
	return &ChunkStore{enc: enc, index: index, byKey: byKey, pool: embed.NewPool(enc, 0)}
}

// UseIVF swaps the exact index for a trained IVF index (recall/latency
// trade-off used at full scale and swept by the ablation bench).
func (s *ChunkStore) UseIVF(cfg vecstore.IVFConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToIVF(cfg)
	}
}

// UsePQ swaps the exact index for a trained product-quantized index: M
// bytes per vector instead of 2 per dimension, scanned through the
// LUT-based asymmetric-distance kernel (recall/memory trade-off for
// serving million-chunk corpora from RAM).
func (s *ChunkStore) UsePQ(cfg vecstore.PQConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToPQ(cfg)
	}
}

// UseIVFPQ swaps the exact index for a trained IVF-PQ index, compounding
// the coarse-probe latency win with PQ's memory win. cfg.Residual encodes
// per-cell residuals (higher recall at the same M) and cfg.OPQ layers a
// learned rotation on top; see vecstore.IVFPQConfig.
func (s *ChunkStore) UseIVFPQ(cfg vecstore.IVFPQConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToIVFPQ(cfg)
	}
}

// UseHNSW swaps the exact index for an HNSW graph built over the same
// FP16 code block (latency trade-off with no training pass; the only
// swap target that keeps supporting incremental Add, so an EnableLive
// store can later compact its memtable into the graph).
func (s *ChunkStore) UseHNSW(cfg vecstore.HNSWConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToHNSW(cfg)
	}
}

// IndexStats reports the underlying index's storage profile (kind,
// bytes/vector), surfaced by the eval report's retrieval-config table.
func (s *ChunkStore) IndexStats() vecstore.IndexStats {
	return vecstore.StatsOf(s.index)
}

// Len reports the number of stored chunks.
func (s *ChunkStore) Len() int { return s.index.Len() }

// MemoryBytes reports FP16 vector storage size (the paper quotes 747 MB at
// full scale).
func (s *ChunkStore) MemoryBytes() int64 {
	type sized interface{ MemoryBytes() int64 }
	if m, ok := s.index.(sized); ok {
		return m.MemoryBytes()
	}
	return 0
}

// SaveIndex persists the underlying vector index (VSF2 for Flat-backed
// stores, VSF3 for PQ-backed ones, VSF4 for IVF-PQ — including residual
// and OPQ trained state — and VSF5 for HNSW, including the whole graph).
// Plain-IVF-backed stores are saved as their flat data and can be
// re-trained after load.
func (s *ChunkStore) SaveIndex(path string) error {
	switch ix := s.index.(type) {
	case *vecstore.Flat:
		return ix.Save(path)
	case *vecstore.PQ:
		return ix.Save(path)
	case *vecstore.IVFPQ:
		return ix.Save(path)
	case *vecstore.HNSW:
		return ix.Save(path)
	default:
		return fmt.Errorf("rag: SaveIndex supports Flat-, PQ-, IVF-PQ- or HNSW-backed stores only (have %T)", ix)
	}
}

// Retrieve returns the top-k chunks for a query text.
func (s *ChunkStore) Retrieve(query string, k int) []RetrievedChunk {
	return s.collect(s.index.Search(s.enc.Encode(query), k))
}

// RetrieveBatch answers many query texts at once: queries are embedded in
// parallel and searched through the index's multi-query scan kernel
// (vecstore.BatchSearch delegates to SearchBatch when the index has one),
// which amortises code decoding across the whole batch. Results are in
// query order and identical to per-query Retrieve calls.
func (s *ChunkStore) RetrieveBatch(queries []string, k int) [][]RetrievedChunk {
	out, _ := s.RetrieveBatchStaged(queries, k)
	return out
}

// RetrieveBatchStaged is RetrieveBatch plus the stage decomposition the
// serving observability reports: Embed covers query encoding, Scan/Merge
// come from the index's timed kernel (vecstore.BatchSearchTimed), and the
// metadata collect is booked under Merge — it is part of producing final
// ordered hits, not scanning.
func (s *ChunkStore) RetrieveBatchStaged(queries []string, k int) ([][]RetrievedChunk, StageTimings) {
	var st StageTimings
	embedStart := time.Now()
	vecs := s.pool.EncodeAll(queries)
	st.Embed = time.Since(embedStart)
	res, sc := vecstore.BatchSearchTimed(s.index, vecs, k, 0)
	st.Scan, st.Merge = sc.Scan, sc.Merge
	collectStart := time.Now()
	out := make([][]RetrievedChunk, len(queries))
	for i, rs := range res {
		out[i] = s.collect(rs)
	}
	st.Merge += time.Since(collectStart)
	return out, st
}

func (s *ChunkStore) collect(res []vecstore.Result) []RetrievedChunk {
	out := make([]RetrievedChunk, 0, len(res))
	for _, r := range res {
		c, ok := s.byKey[r.Key]
		if !ok && s.live != nil {
			c, ok = s.live.get(r.Key)
		}
		if !ok {
			continue
		}
		out = append(out, RetrievedChunk{Chunk: c, Score: r.Score})
	}
	return out
}

// Chunk looks a chunk up by id (build-time corpus or live inserts).
func (s *ChunkStore) Chunk(id string) (chunk.Chunk, bool) {
	c, ok := s.byKey[id]
	if !ok && s.live != nil {
		c, ok = s.live.get(id)
	}
	return c, ok
}

// RetrievedTrace is one reasoning-trace hit.
type RetrievedTrace struct {
	Trace *mcq.Trace
	// FactID is the ground-truth fact of the trace's source question,
	// carried for utility measurement (never shown to students).
	FactID string
	Score  float32
}

// TraceStore is one of the paper's three per-mode reasoning-trace retrieval
// databases.
type TraceStore struct {
	mode   mcq.ReasoningMode
	enc    *embed.Encoder
	index  vecstore.Index
	byKey  map[string]*mcq.Trace
	factOf map[string]string // trace id → fact id of its source question
	pool   *embed.Pool       // query-embedding pool, hoisted like ChunkStore's
}

// BuildTraceStore indexes all traces of one mode. questionFact maps
// question id → fact id (ground truth for utility measurement); traces of
// other modes are ignored.
func BuildTraceStore(enc *embed.Encoder, mode mcq.ReasoningMode, traces []*mcq.Trace, questionFact map[string]string, workers int) *TraceStore {
	if enc == nil {
		enc = embed.NewDefault()
	}
	var mine []*mcq.Trace
	for _, tr := range traces {
		if tr.Mode == mode {
			mine = append(mine, tr)
		}
	}
	texts := make([]string, len(mine))
	for i, tr := range mine {
		texts[i] = tr.Reasoning
	}
	vecs := embed.NewPool(enc, workers).EncodeAll(texts)
	ix := vecstore.NewFlat(enc.Dim())
	byKey := make(map[string]*mcq.Trace, len(mine))
	factOf := make(map[string]string, len(mine))
	for i, tr := range mine {
		ix.Add(vecs[i], tr.ID)
		byKey[tr.ID] = tr
		factOf[tr.ID] = questionFact[tr.QuestionID]
	}
	return &TraceStore{mode: mode, enc: enc, index: ix, byKey: byKey, factOf: factOf, pool: embed.NewPool(enc, 0)}
}

// Mode returns the store's reasoning mode.
func (s *TraceStore) Mode() mcq.ReasoningMode { return s.mode }

// Len reports the number of stored traces.
func (s *TraceStore) Len() int { return s.index.Len() }

// Retrieve returns the top-k traces for a query text.
//
// In the paper's protocol the trace database holds the teacher's reasoning
// for the very questions under evaluation (leakage is prevented by
// excluding the final answer from the trace text, not by hiding the
// trace), so the synthetic benchmark passes excludeQuestionID == "".
// A non-empty excludeQuestionID suppresses traces distilled from that
// question — the stricter cross-question ablation (see the ablation
// benches), and automatic for the Astro exam whose questions were never
// distilled.
func (s *TraceStore) Retrieve(query string, k int, excludeQuestionID string) []RetrievedTrace {
	// Over-fetch to survive the self-exclusion filter.
	res := s.index.Search(s.enc.Encode(query), k+2)
	return s.collect(res, k, excludeQuestionID)
}

// RetrieveBatch answers many query texts at once through the index's
// multi-query scan kernel (see ChunkStore.RetrieveBatch). excludeQuestionIDs
// is either nil (no exclusion) or one entry per query, applying the same
// self-exclusion rule as Retrieve. Results are in query order and identical
// to per-query Retrieve calls.
func (s *TraceStore) RetrieveBatch(queries []string, k int, excludeQuestionIDs []string) [][]RetrievedTrace {
	out, _ := s.RetrieveBatchStaged(queries, k, excludeQuestionIDs)
	return out
}

// RetrieveBatchStaged is RetrieveBatch plus stage timing (see
// ChunkStore.RetrieveBatchStaged); the self-exclusion collect is booked
// under Merge.
func (s *TraceStore) RetrieveBatchStaged(queries []string, k int, excludeQuestionIDs []string) ([][]RetrievedTrace, StageTimings) {
	var st StageTimings
	embedStart := time.Now()
	vecs := s.pool.EncodeAll(queries)
	st.Embed = time.Since(embedStart)
	// Over-fetch to survive the self-exclusion filter, as in Retrieve.
	res, sc := vecstore.BatchSearchTimed(s.index, vecs, k+2, 0)
	st.Scan, st.Merge = sc.Scan, sc.Merge
	collectStart := time.Now()
	out := make([][]RetrievedTrace, len(queries))
	for i, rs := range res {
		exclude := ""
		if excludeQuestionIDs != nil {
			exclude = excludeQuestionIDs[i]
		}
		out[i] = s.collect(rs, k, exclude)
	}
	st.Merge += time.Since(collectStart)
	return out, st
}

func (s *TraceStore) collect(res []vecstore.Result, k int, excludeQuestionID string) []RetrievedTrace {
	out := make([]RetrievedTrace, 0, k)
	for _, r := range res {
		tr, ok := s.byKey[r.Key]
		if !ok || tr.QuestionID == excludeQuestionID {
			continue
		}
		out = append(out, RetrievedTrace{Trace: tr, FactID: s.factOf[r.Key], Score: r.Score})
		if len(out) == k {
			break
		}
	}
	return out
}

// UseIVF swaps the exact index for a trained IVF index (see
// ChunkStore.UseIVF).
func (s *TraceStore) UseIVF(cfg vecstore.IVFConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToIVF(cfg)
	}
}

// UsePQ swaps the exact index for a trained product-quantized index (see
// ChunkStore.UsePQ).
func (s *TraceStore) UsePQ(cfg vecstore.PQConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToPQ(cfg)
	}
}

// UseIVFPQ swaps the exact index for a trained IVF-PQ index (see
// ChunkStore.UseIVFPQ).
func (s *TraceStore) UseIVFPQ(cfg vecstore.IVFPQConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToIVFPQ(cfg)
	}
}

// UseHNSW swaps the exact index for an HNSW graph (see
// ChunkStore.UseHNSW).
func (s *TraceStore) UseHNSW(cfg vecstore.HNSWConfig) {
	if flat, ok := s.index.(*vecstore.Flat); ok {
		s.index = flat.ToHNSW(cfg)
	}
}

// IndexStats reports the underlying index's storage profile.
func (s *TraceStore) IndexStats() vecstore.IndexStats {
	return vecstore.StatsOf(s.index)
}

// SaveIndex persists the trace store's vector index (VSF2 for Flat, VSF3
// for PQ, VSF4 for IVF-PQ, VSF5 for HNSW).
func (s *TraceStore) SaveIndex(path string) error {
	switch ix := s.index.(type) {
	case *vecstore.Flat:
		return ix.Save(path)
	case *vecstore.PQ:
		return ix.Save(path)
	case *vecstore.IVFPQ:
		return ix.Save(path)
	case *vecstore.HNSW:
		return ix.Save(path)
	default:
		return fmt.Errorf("rag: SaveIndex supports Flat-, PQ-, IVF-PQ- or HNSW-backed stores only (have %T)", ix)
	}
}

// WrapTraceStore rebuilds a TraceStore around a persisted index and the
// matching trace records (index keys must be trace ids). questionFact is
// the usual ground-truth map for utility measurement.
func WrapTraceStore(enc *embed.Encoder, mode mcq.ReasoningMode, index vecstore.Index, traces []*mcq.Trace, questionFact map[string]string) *TraceStore {
	if enc == nil {
		enc = embed.NewDefault()
	}
	byKey := make(map[string]*mcq.Trace)
	factOf := make(map[string]string)
	for _, tr := range traces {
		if tr.Mode != mode {
			continue
		}
		byKey[tr.ID] = tr
		factOf[tr.ID] = questionFact[tr.QuestionID]
	}
	return &TraceStore{mode: mode, enc: enc, index: index, byKey: byKey, factOf: factOf, pool: embed.NewPool(enc, 0)}
}

// TraceStores builds all three mode stores at once, as the pipeline does
// after trace distillation.
func TraceStores(enc *embed.Encoder, traces []*mcq.Trace, questionFact map[string]string, workers int) map[mcq.ReasoningMode]*TraceStore {
	out := make(map[mcq.ReasoningMode]*TraceStore, len(mcq.AllModes))
	for _, m := range mcq.AllModes {
		out[m] = BuildTraceStore(enc, m, traces, questionFact, workers)
	}
	return out
}

// QuestionFactMap extracts the question→fact ground-truth mapping from a
// benchmark.
func QuestionFactMap(questions []*mcq.Question) map[string]string {
	m := make(map[string]string, len(questions))
	for _, q := range questions {
		if q.Prov.FactID != "" {
			m[q.ID] = q.Prov.FactID
		}
	}
	return m
}

// String implements fmt.Stringer for pipeline logging.
func (s *TraceStore) String() string {
	return fmt.Sprintf("TraceStore(%s, %d traces)", s.mode, s.Len())
}
