package rag

import (
	"strings"

	"repro/internal/corpus"
	"repro/internal/mcq"
)

// Retrieval utility: the measured, per-question answer-relevant signal that
// retrieval actually delivered, on [0, 1]. The corpus generator's ground
// truth (which fact each chunk sentence realises, which fact each question
// tests) makes this an oracle measurement rather than an assumption: if the
// vector store returns junk, utility is 0 and the simulated students gain
// nothing (DESIGN.md §4).
//
// Grading per retrieved item, best item wins (rank-discounted):
//
//	exact fact present           1.00  (chunk contains the fact sentence /
//	                                    trace distilled from the same fact)
//	same subject discussed       0.55  (right entity, wrong statement)
//	same topic                   0.25  (topical but non-specific)
//	otherwise                    0.05  (plausible-looking noise)
//
// Trace items additionally carry a mode-specific information density: the
// paper finds detailed traces can "trail slightly, likely due to noise from
// over-elaboration" (§3.1.3), which we reproduce as a small density penalty.

// relevance grades one retrieved text against the question's source fact.
func relevance(kb *corpus.KB, q *mcq.Question, text string, itemFactID string) float64 {
	if q.Prov.FactID == "" {
		return 0.05
	}
	f := kb.Fact(corpus.FactID(q.Prov.FactID))
	if f == nil {
		return 0.05
	}
	if itemFactID == q.Prov.FactID {
		return 1.0
	}
	if itemFactID == "" && strings.Contains(text, f.Sentence()) {
		return 1.0
	}
	if strings.Contains(text, f.Subject) {
		return 0.55
	}
	// Topic match: any keyword of the fact's topic present.
	topic := kb.Topics[f.Topic]
	for _, kw := range topic.Keywords {
		if len(kw) > 4 && strings.Contains(strings.ToLower(text), kw) {
			return 0.25
		}
	}
	return 0.05
}

// rankDiscount weights items by retrieval rank: rank 0 full credit,
// decaying gently (models attend most to the top of the context).
func rankDiscount(rank int) float64 {
	d := 1.0 - 0.08*float64(rank)
	if d < 0.5 {
		return 0.5
	}
	return d
}

// modeDensity is the answer-relevant information density of a trace mode.
var modeDensity = map[mcq.ReasoningMode]float64{
	mcq.ModeDetailed:  0.94, // over-elaboration noise (paper §3.1.3)
	mcq.ModeFocused:   1.00,
	mcq.ModeEfficient: 0.98,
}

// chunkDensity reflects that raw literature chunks mix answer-relevant
// sentences with experimental filler, diluting the signal relative to a
// distilled trace — the paper's central finding.
const chunkDensity = 0.78

// retainedFraction reads the per-item retained fraction from a prompt's
// Retained vector; nil means fully included.
func retainedFraction(retained []float64, i int) float64 {
	if retained == nil {
		return 1
	}
	if i >= len(retained) {
		return 0
	}
	return retained[i]
}

// ChunkUtility measures the utility of retrieved chunks for a question,
// honouring the prompt's per-item retained fractions (nil means all fully
// included). A truncated item contributes proportionally to how much of it
// the model actually saw.
func ChunkUtility(kb *corpus.KB, q *mcq.Question, retrieved []RetrievedChunk, retained []float64) float64 {
	best := 0.0
	for i, rc := range retrieved {
		frac := retainedFraction(retained, i)
		if frac <= 0 {
			continue
		}
		rel := relevance(kb, q, rc.Chunk.Text, "") * rankDiscount(i) * chunkDensity * frac
		if rel > best {
			best = rel
		}
	}
	return best
}

// TraceUtility measures the utility of retrieved traces for a question.
func TraceUtility(kb *corpus.KB, q *mcq.Question, retrieved []RetrievedTrace, retained []float64) float64 {
	best := 0.0
	for i, rt := range retrieved {
		frac := retainedFraction(retained, i)
		if frac <= 0 {
			continue
		}
		rel := relevance(kb, q, rt.Trace.Reasoning, rt.FactID) *
			rankDiscount(i) * modeDensity[rt.Trace.Mode] * frac
		if rel > best {
			best = rel
		}
	}
	return best
}
