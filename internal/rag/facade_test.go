package rag

import (
	"fmt"
	"testing"

	"repro/internal/mcq"
)

func TestChunkFacadeMatchesStore(t *testing.T) {
	fx := buildFixture(t, 4)
	store := BuildChunkStore(nil, fx.chunks, 0)
	f := NewChunkFacade(store)
	if f.Len() != store.Len() || f.Index() != store.Index() {
		t.Fatal("facade disagrees with store on Len/Index")
	}
	queries := []string{fx.chunks[0].Text, fx.chunks[3].Text}
	hits := f.RetrieveBatch(queries, 3, []string{"ignored", "ignored"}) // chunk facades ignore exclude
	direct := store.RetrieveBatch(queries, 3)
	if len(hits) != len(direct) {
		t.Fatalf("%d hit groups for %d queries", len(hits), len(queries))
	}
	for i := range hits {
		if len(hits[i]) != len(direct[i]) {
			t.Fatalf("query %d: %d vs %d hits", i, len(hits[i]), len(direct[i]))
		}
		for j, h := range hits[i] {
			rc := direct[i][j]
			if h.ID != rc.Chunk.ID || h.Group != rc.Chunk.DocID || h.Text != rc.Chunk.Text || h.Score != rc.Score {
				t.Fatalf("query %d rank %d: hit %+v vs chunk %s/%s score %v", i, j, h, rc.Chunk.ID, rc.Chunk.DocID, rc.Score)
			}
		}
	}
}

func TestTraceFacadeMatchesStoreAndExcludes(t *testing.T) {
	fx := buildFixture(t, 4)
	qf := QuestionFactMap(fx.questions)
	store := BuildTraceStore(nil, mcq.ModeFocused, fx.traces, qf, 0)
	f := NewTraceFacade(store)
	var tr *mcq.Trace
	for _, cand := range fx.traces {
		if cand.Mode == mcq.ModeFocused {
			tr = cand
			break
		}
	}
	hits := f.RetrieveBatch([]string{tr.Reasoning}, 3, nil)
	if len(hits) != 1 || len(hits[0]) == 0 || hits[0][0].ID != tr.ID || hits[0][0].Group != tr.QuestionID {
		t.Fatalf("hits %+v", hits)
	}
	if hits[0][0].Text != tr.Reasoning {
		t.Fatal("trace text not carried")
	}
	// Per-query exclusion forwards to the store's self-exclusion rule.
	excluded := f.RetrieveBatch([]string{tr.Reasoning}, 3, []string{tr.QuestionID})
	for _, h := range excluded[0] {
		if h.Group == tr.QuestionID {
			t.Fatalf("excluded question %s leaked through the facade", tr.QuestionID)
		}
	}
}

func TestFacadeWithIndexSharesMetadata(t *testing.T) {
	fx := buildFixture(t, 3)
	store := BuildChunkStore(nil, fx.chunks, 0)
	f := NewChunkFacade(store)
	snap, err := f.WithIndex(store.Index())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != f.Len() {
		t.Fatalf("snapshot len %d, want %d", snap.Len(), f.Len())
	}
	got := snap.RetrieveBatch([]string{fx.chunks[1].Text}, 2, nil)
	if len(got) != 1 || len(got[0]) == 0 || got[0][0].ID != fx.chunks[1].ID {
		t.Fatalf("snapshot retrieval %+v", got)
	}
	if _, err := f.WithIndex(nil); err == nil {
		t.Fatal("nil index accepted")
	}
}

// BenchmarkChunkRetrieveBatch tracks the serving hot path: micro-batches
// through the hoisted query-embedding pool (one pool per store, workers
// capped at batch size) instead of a fresh GOMAXPROCS fan-out per call.
func BenchmarkChunkRetrieveBatch(b *testing.B) {
	fx := buildFixture(b, 10)
	store := BuildChunkStore(nil, fx.chunks, 0)
	for _, size := range []int{1, 8, 32} {
		queries := make([]string, size)
		for i := range queries {
			queries[i] = fx.chunks[i%len(fx.chunks)].Text
		}
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = store.RetrieveBatch(queries, 5)
			}
		})
	}
}
