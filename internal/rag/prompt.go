package rag

import (
	"fmt"
	"strings"

	"repro/internal/mcq"
	"repro/internal/tokenizer"
)

// Prompt is an assembled evaluation prompt plus accounting of which
// retrieved items survived the model's context window.
type Prompt struct {
	Text string
	// Included marks, per retrieved item in rank order, whether any part
	// of the item fit in the window.
	Included []bool
	// Retained gives, per item, the fraction of its tokens that made it
	// into the prompt (1 fully included, 0 dropped, fractional when the
	// top item was truncated to fit). Utility scales by this — a model
	// that saw half the relevant chunk gets half the signal. This is how
	// small-window models (OLMo, TinyLlama at 2,048 tokens) lose part of
	// their retrieval benefit mechanistically.
	Retained []float64
	Tokens   int
}

// promptOverheadTokens reserves budget for instructions, question, options,
// and the answer directive.
const instructionText = "You are answering a multiple-choice question in radiation and cancer biology. " +
	"Use the provided context if helpful. Reply with 'Answer: <letter>' followed by a brief justification."

// AssemblePrompt builds the evaluation prompt for a question with retrieved
// context texts (rank order), respecting the model's context window in
// approximate tokens. The question and options are always included; context
// items are added greedily by rank until the budget is exhausted, each
// truncated to fit only if it is the first item (so every model sees at
// least some context when any was retrieved, as evaluation harnesses do).
func AssemblePrompt(q *mcq.Question, context []string, window int) Prompt {
	var b strings.Builder
	b.WriteString(instructionText)
	b.WriteString("\n\n")

	var qb strings.Builder
	qb.WriteString("Question: ")
	qb.WriteString(q.Question)
	qb.WriteString("\n")
	for i, opt := range q.Options {
		fmt.Fprintf(&qb, "%c) %s\n", rune('A'+i), opt)
	}
	qb.WriteString("Answer: ")

	fixed := tokenizer.CountTokens(instructionText) + tokenizer.CountTokens(qb.String()) + 16
	budget := window - fixed
	included := make([]bool, len(context))
	retained := make([]float64, len(context))

	if len(context) > 0 && budget > 0 {
		b.WriteString("Context:\n")
		for i, item := range context {
			itemTokens := tokenizer.CountTokens(item) + 4
			if itemTokens <= budget {
				fmt.Fprintf(&b, "[%d] %s\n", i+1, item)
				budget -= itemTokens
				included[i] = true
				retained[i] = 1
				continue
			}
			if i == 0 && budget > 32 {
				// Truncate the top-ranked item to fit rather than dropping
				// all context; the model sees (and benefits from) only the
				// retained fraction.
				cut := tokenizer.Truncate(item, budget-8)
				fmt.Fprintf(&b, "[%d] %s\n", i+1, cut)
				included[i] = true
				if itemTokens > 0 {
					retained[i] = float64(tokenizer.CountTokens(cut)) / float64(itemTokens)
				}
				budget = 0
			}
			// Lower-ranked items that do not fit are dropped (no partial
			// inclusion) — rank order means they are the least valuable.
		}
		b.WriteString("\n")
	}
	b.WriteString(qb.String())
	text := b.String()
	return Prompt{Text: text, Included: included, Retained: retained, Tokens: tokenizer.CountTokens(text)}
}
