package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceRecord is one completed trace retained by a SlowLog and served at
// GET /debug/slowlog/<route>: the request's id, operation, a truncated
// detail string (the query), wall-clock start, total duration and the full
// span timeline.
type TraceRecord struct {
	TraceID string    `json:"trace_id"`
	Op      string    `json:"op"`
	Detail  string    `json:"detail,omitempty"`
	Start   time.Time `json:"start"`
	TotalUS int64     `json:"total_us"`
	Spans   []Span    `json:"spans"`
}

// maxDetailLen bounds the query text carried per slowlog entry, so a
// pathological request cannot bloat the debug surface.
const maxDetailLen = 160

// SlowLog is a fixed-size, lock-protected buffer of the slowest completed
// traces seen on one route. Record is O(capacity) only when the trace is
// slow enough to retain (a binary-search insert into a slice sorted
// slowest-first); the common fast request is rejected after one
// comparison, so the serving hot path pays a mutex and a compare.
type SlowLog struct {
	mu  sync.Mutex
	cap int
	// entries is sorted by TotalUS descending; the last element is the
	// fastest retained trace and the eviction victim.
	entries []TraceRecord
}

// DefaultSlowLogSize is the per-route retention used when a config leaves
// the size unset.
const DefaultSlowLogSize = 32

// NewSlowLog returns a slowlog retaining the capacity slowest traces
// (capacity <= 0 selects DefaultSlowLogSize).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &SlowLog{cap: capacity}
}

// Record completes a trace: its total duration is measured now, and the
// trace is retained iff it ranks among the capacity slowest seen. Safe on
// a nil receiver and with a nil trace (both no-op).
func (l *SlowLog) Record(t *Trace, op, detail string) {
	if l == nil || t == nil {
		return
	}
	total := t.Since().Microseconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == l.cap && total <= l.entries[l.cap-1].TotalUS {
		return
	}
	if len(detail) > maxDetailLen {
		detail = detail[:maxDetailLen] + "…"
	}
	rec := TraceRecord{
		TraceID: t.ID(),
		Op:      op,
		Detail:  detail,
		Start:   t.StartTime().UTC().Truncate(time.Microsecond),
		TotalUS: total,
		Spans:   t.Spans(),
	}
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].TotalUS < total })
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, TraceRecord{})
	}
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = rec
}

// Snapshot returns the retained traces, slowest first.
func (l *SlowLog) Snapshot() []TraceRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TraceRecord(nil), l.entries...)
}

// SlowLogPage is the JSON shape of GET /debug/slowlog/<route>, shared by
// the serve and router tiers.
type SlowLogPage struct {
	Route   string        `json:"route"`
	Slowest []TraceRecord `json:"slowest"`
}
