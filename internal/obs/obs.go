// Package obs is the serving stack's observability kit: a lightweight,
// allocation-conscious request tracer (trace id + ordered spans over
// monotonic timestamps, context-propagated, no external deps), a bounded
// slow-query log, and a small structured logger. It is the instrument
// behind the per-stage latency breakdown — every hop of a request's life
// (router scatter/merge, shard HTTP call, coalescer queue wait, cache
// lookup, embed, vecstore scan/merge, response encode) records a span on
// the request's trace, and the trace id rides the X-Trace-Id header across
// tiers so one id names the same request in the router, the shard and the
// response.
//
// The tracer is deliberately minimal: a Trace is a mutex-protected span
// slice, spans are offsets from the trace's start (monotonic clock, so
// wall-time skew cannot reorder them), and every method is safe on a nil
// *Trace — untraced programmatic callers pay one nil check, no
// allocations.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a trace id across tiers
// (router → shard on requests; handlers adopt an incoming id instead of
// minting one, so one id names the request end to end).
const TraceHeader = "X-Trace-Id"

// Span is one named stage of a traced request. Offsets and durations are
// microseconds from the owning trace's start — small on the wire, readable
// in a slowlog dump, and directly comparable across spans of one trace.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Trace is one request's span timeline. The zero of its clock is the
// moment NewTrace ran (monotonic, via time.Time's monotonic reading).
// All methods are safe for concurrent use and on a nil receiver.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// idPrefix makes trace ids unique across processes without coordination:
// a per-process random prefix plus an atomic counter. Falling back to a
// time-derived prefix keeps NewTrace total if the system entropy pool is
// unreadable.
var idPrefix = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}()

var idCounter atomic.Uint64

func newID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 36)
}

// NewTrace starts a trace. A non-empty id adopts the caller's (the
// header-propagation path: the router minted it, the shard adopts it);
// ids that are empty, overlong or contain characters outside
// [0-9A-Za-z._-] are replaced with a fresh one, so a hostile header cannot
// smuggle bytes into the slowlog JSON or metrics.
func NewTrace(id string) *Trace {
	if !validID(id) {
		id = newID()
	}
	return &Trace{id: id, start: time.Now()}
}

func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		if (r < '0' || r > '9') && (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') &&
			r != '.' && r != '_' && r != '-' {
			return false
		}
	}
	return true
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartTime returns the trace's zero instant (zero time on nil).
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Since returns the elapsed time since the trace started (0 on nil).
func (t *Trace) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// AddSpan records a span that began at start and ran for d. Negative
// offsets (a span that began before the trace — possible when a queued
// job's enqueue predates a joiner's trace) clamp to zero.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, StartUS: off.Microseconds(), DurUS: d.Microseconds()})
	t.mu.Unlock()
}

// StartSpan begins a span now and returns the closure that ends it —
// `defer tr.StartSpan("cache")()` brackets a stage in one line.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Since(start)) }
}

// AttachAt adopts spans recorded on another trace's clock (a shard's
// timeline, returned in its response timing), prefixing their names and
// shifting their offsets so they sit at `at` on this trace's timeline —
// the instant the remote call was issued. Remote offsets stay internally
// consistent; only their anchor is local, so clock skew between hosts
// cannot reorder the merged timeline.
func (t *Trace) AttachAt(prefix string, at time.Time, spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	base := at.Sub(t.start)
	if base < 0 {
		base = 0
	}
	baseUS := base.Microseconds()
	t.mu.Lock()
	for _, s := range spans {
		t.spans = append(t.spans, Span{Name: prefix + s.Name, StartUS: baseUS + s.StartUS, DurUS: s.DurUS})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start offset (name
// breaks ties), the ordered timeline for responses and the slowlog.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	// Insertion sort: span counts are single digits and mostly appended in
	// time order already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Span) bool {
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	return a.Name < b.Name
}

type ctxKey struct{}

// WithTrace attaches a trace to a context; FromContext recovers it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — every Trace method
// no-ops on nil, so callers never need to branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
