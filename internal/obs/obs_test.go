package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceIDAdoptionAndSanitisation(t *testing.T) {
	if got := NewTrace("router-abc.1").ID(); got != "router-abc.1" {
		t.Fatalf("valid id not adopted: %q", got)
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("x", 65), "new\nline"} {
		tr := NewTrace(bad)
		if tr.ID() == bad || tr.ID() == "" || !validID(tr.ID()) {
			t.Fatalf("bad id %q not replaced (got %q)", bad, tr.ID())
		}
	}
	a, b := NewTrace(""), NewTrace("")
	if a.ID() == b.ID() {
		t.Fatalf("generated ids collide: %q", a.ID())
	}
}

func TestTraceSpansOrderedByOffset(t *testing.T) {
	tr := NewTrace("")
	base := tr.StartTime()
	tr.AddSpan("late", base.Add(3*time.Millisecond), time.Millisecond)
	tr.AddSpan("early", base.Add(1*time.Millisecond), time.Millisecond)
	tr.AddSpan("middle", base.Add(2*time.Millisecond), time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	want := []string{"early", "middle", "late"}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q (order %v)", i, s.Name, want[i], spans)
		}
	}
	if spans[0].StartUS != 1000 || spans[0].DurUS != 1000 {
		t.Fatalf("span offsets wrong: %+v", spans[0])
	}
}

func TestTraceNegativeOffsetClamps(t *testing.T) {
	tr := NewTrace("")
	tr.AddSpan("pre", tr.StartTime().Add(-time.Second), time.Millisecond)
	if got := tr.Spans()[0].StartUS; got != 0 {
		t.Fatalf("negative offset not clamped: %d", got)
	}
}

func TestTraceAttachAtShiftsRemoteSpans(t *testing.T) {
	remote := []Span{{Name: "scan", StartUS: 100, DurUS: 50}, {Name: "merge", StartUS: 150, DurUS: 10}}
	tr := NewTrace("")
	at := tr.StartTime().Add(2 * time.Millisecond)
	tr.AttachAt("shard1.", at, remote)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "shard1.scan" || spans[0].StartUS != 2100 || spans[0].DurUS != 50 {
		t.Fatalf("attached span wrong: %+v", spans[0])
	}
	if spans[1].Name != "shard1.merge" || spans[1].StartUS != 2150 {
		t.Fatalf("attached span wrong: %+v", spans[1])
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.AddSpan("x", time.Now(), time.Second)
	tr.AttachAt("p.", time.Now(), []Span{{Name: "y"}})
	tr.StartSpan("z")()
	if tr.ID() != "" || tr.Spans() != nil || tr.Since() != 0 {
		t.Fatal("nil trace methods not inert")
	}
	var sl *SlowLog
	sl.Record(tr, "op", "detail")
	if sl.Snapshot() != nil {
		t.Fatal("nil slowlog not inert")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx-1")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should not wrap the context")
	}
}

func TestSlowLogKeepsSlowest(t *testing.T) {
	sl := NewSlowLog(3)
	// Record 6 traces with controlled totals by back-dating the start.
	durs := []time.Duration{5, 1, 9, 3, 7, 2} // milliseconds
	for i, d := range durs {
		tr := NewTrace("")
		tr.start = time.Now().Add(-d * time.Millisecond)
		sl.Record(tr, "search", strings.Repeat("q", i))
	}
	got := sl.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TotalUS > got[i-1].TotalUS {
			t.Fatalf("not sorted slowest-first: %v", got)
		}
	}
	// The three slowest were 9ms, 7ms, 5ms: the fastest retained must be
	// at least ~5ms and the head at least ~9ms.
	if got[0].TotalUS < 9000 || got[2].TotalUS < 5000 {
		t.Fatalf("wrong traces retained: %v", got)
	}
}

func TestSlowLogTruncatesDetail(t *testing.T) {
	sl := NewSlowLog(1)
	sl.Record(NewTrace(""), "search", strings.Repeat("a", 1000))
	got := sl.Snapshot()[0].Detail
	if len(got) > maxDetailLen+len("…") {
		t.Fatalf("detail not truncated: %d bytes", len(got))
	}
}

// TestConcurrentTraceAndSlowLog hammers one trace and one slowlog from
// many goroutines; run under -race this is the data-race gate for the
// tracing hot path.
func TestConcurrentTraceAndSlowLog(t *testing.T) {
	tr := NewTrace("")
	sl := NewSlowLog(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.AddSpan("s", time.Now(), time.Microsecond)
				_ = tr.Spans()
				sl.Record(NewTrace(""), "op", "q")
				_ = sl.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if len(tr.Spans()) != 8*200 {
		t.Fatalf("lost spans: %d", len(tr.Spans()))
	}
	if len(sl.Snapshot()) != 8 {
		t.Fatalf("slowlog size %d, want 8", len(sl.Snapshot()))
	}
}

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "ragserve")
	l.Info("listening", "addr", "127.0.0.1:8080", "routes", 4)
	l.Error("shutdown failed", "err", "context deadline exceeded")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "level=info") || !strings.Contains(lines[0], `msg="listening"`) ||
		!strings.Contains(lines[0], "addr=127.0.0.1:8080") || !strings.Contains(lines[0], "component=ragserve") {
		t.Fatalf("info line malformed: %s", lines[0])
	}
	if !strings.Contains(lines[1], "level=error") {
		t.Fatalf("error line malformed: %s", lines[1])
	}
	var nilLogger *Logger
	nilLogger.Info("must not panic")
}
