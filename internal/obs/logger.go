package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger is a minimal structured logger for the serving binaries:
// one line per event, `ts=<RFC3339> level=<info|error> component=<name>
// msg=<quoted> k=v ...`. It exists so runtime errors from ragserve and
// ragrouter are machine-greppable instead of bare fmt.Printf strings, with
// no dependency beyond the standard library. Safe for concurrent use and
// on a nil receiver (no-op).
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	component string
}

// NewLogger writes events for one component ("ragserve", "ragrouter") to w.
func NewLogger(w io.Writer, component string) *Logger {
	return &Logger{w: w, component: component}
}

// Info logs an informational event with alternating key/value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Error logs an error event with alternating key/value pairs.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%s level=%s component=%s msg=%q",
		time.Now().UTC().Format(time.RFC3339), level, l.component, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String()) //nolint:errcheck // best-effort logging
	l.mu.Unlock()
}
