// Package qc implements benchmark-level quality control beyond the
// per-question judge: near-duplicate detection over question embeddings.
//
// The paper's pipeline generates one candidate per chunk; because the same
// finding is reported across many papers (and our corpus mirrors that —
// one knowledge-base fact can surface in many documents), the accepted set
// contains stems that are identical or nearly so under different chunk
// provenance. Deduplication keeps the first occurrence (preserving its
// provenance) and drops later near-duplicates, the standard hygiene step
// for generated benchmarks.
package qc

import (
	"repro/internal/embed"
	"repro/internal/mcq"
	"repro/internal/vecstore"
)

// DedupResult reports what a dedup pass did.
type DedupResult struct {
	Kept    []*mcq.Question
	Dropped []*mcq.Question
	// DuplicateOf maps each dropped question id to the kept question id it
	// duplicated.
	DuplicateOf map[string]string
}

// Dedup removes near-duplicate questions. A question is a duplicate when
// its stem embedding has cosine similarity ≥ threshold with an
// earlier-kept question's stem (0.97 catches identical stems re-generated
// from different chunks while keeping legitimately related questions about
// the same entity). The pass is deterministic: input order decides which
// copy survives.
func Dedup(questions []*mcq.Question, enc *embed.Encoder, threshold float64) DedupResult {
	if enc == nil {
		enc = embed.NewDefault()
	}
	res := DedupResult{DuplicateOf: make(map[string]string)}
	if len(questions) == 0 {
		return res
	}
	index := vecstore.NewFlat(enc.Dim())
	keptIDs := make([]string, 0, len(questions))
	for _, q := range questions {
		vec := enc.Encode(q.Question)
		dup := ""
		if index.Len() > 0 {
			hits := index.Search(vec, 1)
			if len(hits) == 1 && float64(hits[0].Score) >= threshold {
				dup = hits[0].Key
			}
		}
		if dup != "" {
			res.Dropped = append(res.Dropped, q)
			res.DuplicateOf[q.ID] = dup
			continue
		}
		index.Add(vec, q.ID)
		keptIDs = append(keptIDs, q.ID)
		res.Kept = append(res.Kept, q)
	}
	return res
}

// ExactStemDuplicates counts questions sharing a verbatim stem with an
// earlier question, the lower bound any dedup threshold must remove.
func ExactStemDuplicates(questions []*mcq.Question) int {
	seen := make(map[string]bool, len(questions))
	dups := 0
	for _, q := range questions {
		if seen[q.Question] {
			dups++
			continue
		}
		seen[q.Question] = true
	}
	return dups
}
