package qc

import (
	"fmt"
	"testing"

	"repro/internal/mcq"
)

func q(id, stem string) *mcq.Question {
	return &mcq.Question{ID: id, Question: stem,
		Options: []string{"a", "b"}, Answer: 0}
}

func TestDedupExactDuplicates(t *testing.T) {
	qs := []*mcq.Question{
		q("q1", "Which pathway repairs double-strand breaks in G1 phase cells?"),
		q("q2", "Which pathway repairs double-strand breaks in G1 phase cells?"),
		q("q3", "What is the typical fractional dose for proton beam therapy?"),
	}
	res := Dedup(qs, nil, 0.97)
	if len(res.Kept) != 2 || len(res.Dropped) != 1 {
		t.Fatalf("kept %d dropped %d", len(res.Kept), len(res.Dropped))
	}
	if res.Kept[0].ID != "q1" {
		t.Fatal("first occurrence not kept")
	}
	if res.DuplicateOf["q2"] != "q1" {
		t.Fatalf("duplicate map %v", res.DuplicateOf)
	}
}

func TestDedupKeepsDistinct(t *testing.T) {
	qs := []*mcq.Question{
		q("q1", "Which kinase phosphorylates H2AX after irradiation in mammalian cells?"),
		q("q2", "What is the established fractional dose for stereotactic lung treatments?"),
		q("q3", "Which assay quantifies clonogenic survival after exposure?"),
	}
	res := Dedup(qs, nil, 0.97)
	if len(res.Kept) != 3 {
		t.Fatalf("distinct questions dropped: kept %d", len(res.Kept))
	}
}

func TestDedupThresholdLoose(t *testing.T) {
	// At a loose threshold, paraphrases collapse; at a strict one they
	// survive.
	qs := []*mcq.Question{
		q("q1", "Which of the following is activated by ATM following radiation exposure?"),
		q("q2", "Which of the following is activated by phosphorylated ATM following radiation exposure?"),
	}
	strict := Dedup(qs, nil, 0.995)
	if len(strict.Kept) != 2 {
		t.Fatalf("strict threshold merged paraphrases: kept %d", len(strict.Kept))
	}
	loose := Dedup(qs, nil, 0.80)
	if len(loose.Kept) != 1 {
		t.Fatalf("loose threshold kept %d", len(loose.Kept))
	}
}

func TestDedupDeterministic(t *testing.T) {
	var qs []*mcq.Question
	for i := 0; i < 30; i++ {
		qs = append(qs, q(fmt.Sprintf("q%d", i),
			fmt.Sprintf("Question about topic %d in radiation biology?", i%10)))
	}
	a := Dedup(qs, nil, 0.97)
	b := Dedup(qs, nil, 0.97)
	if len(a.Kept) != len(b.Kept) {
		t.Fatal("non-deterministic")
	}
	for i := range a.Kept {
		if a.Kept[i].ID != b.Kept[i].ID {
			t.Fatal("kept order differs")
		}
	}
	// 10 distinct stems.
	if len(a.Kept) != 10 {
		t.Fatalf("kept %d, want 10", len(a.Kept))
	}
}

func TestDedupEmpty(t *testing.T) {
	res := Dedup(nil, nil, 0.97)
	if len(res.Kept) != 0 || len(res.Dropped) != 0 {
		t.Fatal("empty input produced output")
	}
}

func TestExactStemDuplicates(t *testing.T) {
	qs := []*mcq.Question{
		q("q1", "same stem"), q("q2", "same stem"), q("q3", "other"), q("q4", "same stem"),
	}
	if got := ExactStemDuplicates(qs); got != 2 {
		t.Fatalf("exact duplicates %d, want 2", got)
	}
	if ExactStemDuplicates(nil) != 0 {
		t.Fatal("nil input")
	}
}

func TestDedupRemovesAllExactDuplicates(t *testing.T) {
	var qs []*mcq.Question
	for i := 0; i < 40; i++ {
		qs = append(qs, q(fmt.Sprintf("q%d", i),
			fmt.Sprintf("Shared question stem variant %d?", i%7)))
	}
	res := Dedup(qs, nil, 0.97)
	if ExactStemDuplicates(res.Kept) != 0 {
		t.Fatal("exact duplicates survive dedup")
	}
	if len(res.Kept)+len(res.Dropped) != len(qs) {
		t.Fatal("dedup lost questions")
	}
}
