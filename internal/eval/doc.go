// Package eval is the evaluation harness of the reproduction: it runs every
// (model × condition) cell of the paper's Tables 2-4, grading with the LLM
// judge, measuring retrieval utility mechanistically, and rendering the
// tables and percent-improvement figures (Figures 4-6).
//
// A Setup bundles one benchmark's questions with its retrieval stores;
// Run sweeps the (model, condition) matrix, batching all retrieval
// through the stores' multi-query path so each vecstore code tile (or PQ
// LUT) is amortised across the whole question set. Rendering helpers
// produce the paper's tables (RenderTable1/2, RenderAstroTable), the
// percent-improvement figures (RenderFigure), per-topic breakdowns
// (RenderTopicBreakdown), CSV export (RenderCSV), and the
// retrieval-store configuration table (RenderRetrievalStats) that makes
// index recall/memory trade-offs visible alongside accuracy.
package eval
