package eval_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llmsim"
	"repro/internal/mcq"
	"repro/internal/rag"
)

// Shared fixture: one small-scale pipeline run for all tests in the
// package (building it per test would dominate runtime).
var (
	fixtureOnce sync.Once
	fixture     *core.Artifacts
	fixtureErr  error
)

func artifacts(t testing.TB) *core.Artifacts {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := core.DefaultConfig(0.01)
		fixture, fixtureErr = core.BuildBenchmark(cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func TestRunProducesFullMatrix(t *testing.T) {
	a := artifacts(t)
	m, err := eval.Run(a.SyntheticSetup(), llmsim.Profiles(), llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 8 {
		t.Fatalf("%d rows", len(m.Rows))
	}
	for _, row := range m.Rows {
		if len(row.Cells) != 5 {
			t.Fatalf("%s: %d cells", row.Model, len(row.Cells))
		}
		for cond, cell := range row.Cells {
			if cell.Total != len(a.Questions) {
				t.Fatalf("%s/%s: total %d", row.Model, cond, cell.Total)
			}
			if cell.Accuracy < 0 || cell.Accuracy > 1 {
				t.Fatalf("%s/%s: accuracy %v", row.Model, cond, cell.Accuracy)
			}
			if cell.CI.Lo > cell.Accuracy || cell.CI.Hi < cell.Accuracy {
				t.Fatalf("%s/%s: CI %v does not bracket %v", row.Model, cond, cell.CI, cell.Accuracy)
			}
			if cond != llmsim.CondBaseline && cell.MeanUtility <= 0 {
				t.Fatalf("%s/%s: zero mean utility with a live store", row.Model, cond)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := artifacts(t)
	profiles := []*llmsim.Profile{mustProfile(t, "SmolLM3-3B")}
	m1, err := eval.Run(a.SyntheticSetup(), profiles, llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eval.Run(a.SyntheticSetup(), profiles, llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	for _, cond := range llmsim.AllConditions {
		if m1.Rows[0].Cells[cond].Correct != m2.Rows[0].Cells[cond].Correct {
			t.Fatalf("%s not deterministic", cond)
		}
	}
}

func mustProfile(t testing.TB, name string) *llmsim.Profile {
	t.Helper()
	p, err := llmsim.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPaperShapeSynthetic(t *testing.T) {
	// The paper's headline findings must emerge from the measured run:
	// chunks > baseline and best-RT > chunks for every model (Table 2).
	a := artifacts(t)
	m, err := eval.Run(a.SyntheticSetup(), llmsim.Profiles(), llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	// Per-model ordering is checked with a sampling tolerance (the fixture
	// has ~175 questions; published gaps go down to 0.016, inside the
	// ±0.04 noise band), while the across-model means must order strictly.
	const tol = 0.04
	var mBase, mChunks, mBest float64
	for _, row := range m.Rows {
		base := row.Cells[llmsim.CondBaseline].Accuracy
		chunks := row.Cells[llmsim.CondChunks].Accuracy
		best := row.Best().Accuracy
		mBase += base
		mChunks += chunks
		mBest += best
		if chunks <= base-tol {
			t.Errorf("%s: chunks %.3f below baseline %.3f beyond tolerance", row.Model, chunks, base)
		}
		if best <= chunks-tol {
			t.Errorf("%s: best RT %.3f below chunks %.3f beyond tolerance", row.Model, best, chunks)
		}
	}
	n := float64(len(m.Rows))
	if !(mBest/n > mChunks/n && mChunks/n > mBase/n) {
		t.Errorf("mean ordering violated: RT %.3f / chunks %.3f / base %.3f",
			mBest/n, mChunks/n, mBase/n)
	}
}

func TestSmallModelsGainMost(t *testing.T) {
	// Paper §3.1.2: the largest relative RT gains occur in the smallest
	// models. TinyLlama's relative gain must exceed Llama-3.1's.
	a := artifacts(t)
	m, err := eval.Run(a.SyntheticSetup(), llmsim.Profiles(), llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	imps := eval.Improvements(m)
	byModel := map[string]eval.Improvement{}
	for _, im := range imps {
		byModel[im.Model] = im
	}
	tiny := byModel["TinyLlama-1.1B-Chat"].VsBaseline
	llama := byModel["Llama-3.1-8B-Instruct"].VsBaseline
	if tiny <= llama {
		t.Fatalf("TinyLlama gain %.1f%% not above Llama-3.1 %.1f%%", tiny, llama)
	}
	if tiny < 100 {
		t.Fatalf("TinyLlama relative gain %.1f%%, paper reports ~300%%", tiny)
	}
}

func TestSabotagedRetrievalCollapsesToBaseline(t *testing.T) {
	// DESIGN.md §4 invariant: with empty retrieval stores every RAG
	// condition must degenerate to baseline accuracy.
	a := artifacts(t)
	setup := a.SyntheticSetup()
	sabotaged := *setup
	sabotaged.Chunks = rag.BuildChunkStore(nil, nil, 0)
	sabotaged.Traces = rag.TraceStores(nil, nil, nil, 0)
	profiles := []*llmsim.Profile{mustProfile(t, "SmolLM3-3B")}
	m, err := eval.Run(&sabotaged, profiles, llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	row := m.Rows[0]
	baseCell := row.Cells[llmsim.CondBaseline]
	for _, cond := range llmsim.AllConditions[1:] {
		cell := row.Cells[cond]
		if cell.MeanUtility != 0 {
			t.Fatalf("%s: sabotaged store yielded utility %v", cond, cell.MeanUtility)
		}
		// Each condition samples an independent RNG stream, so compare by
		// confidence-interval overlap rather than point equality. With a
		// live store SmolLM3's RT conditions sit ~0.35 above baseline —
		// far outside any CI overlap — so this cleanly detects collapse.
		if cell.CI.Lo > baseCell.CI.Hi || cell.CI.Hi < baseCell.CI.Lo {
			t.Fatalf("%s: accuracy %.3f (CI %.3f-%.3f) inconsistent with baseline %.3f with empty stores",
				cond, cell.Accuracy, cell.CI.Lo, cell.CI.Hi, baseCell.Accuracy)
		}
		// And nowhere near the model's published RAG accuracy.
		if cell.Accuracy > baseCell.Accuracy+0.15 {
			t.Fatalf("%s: sabotaged accuracy %.3f still shows RAG gain", cond, cell.Accuracy)
		}
	}
}

func TestGPT4BaselineOnlyRow(t *testing.T) {
	a := artifacts(t)
	setup, _ := a.AstroSetup()
	m, err := eval.Run(setup, []*llmsim.Profile{llmsim.GPT4Profile()}, llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	row := m.Rows[0]
	if len(row.Cells) != 1 {
		t.Fatalf("GPT-4 has %d cells, want baseline only", len(row.Cells))
	}
	if _, ok := row.Cells[llmsim.CondBaseline]; !ok {
		t.Fatal("GPT-4 lacks baseline cell")
	}
}

func TestRowBest(t *testing.T) {
	row := &eval.Row{Model: "m", Cells: map[llmsim.Condition]*eval.Cell{
		llmsim.CondRTDetail:    {Condition: llmsim.CondRTDetail, Accuracy: 0.7},
		llmsim.CondRTFocused:   {Condition: llmsim.CondRTFocused, Accuracy: 0.9},
		llmsim.CondRTEfficient: {Condition: llmsim.CondRTEfficient, Accuracy: 0.8},
	}}
	if b := row.Best(); b.Condition != llmsim.CondRTFocused {
		t.Fatalf("Best = %s", b.Condition)
	}
	empty := &eval.Row{Model: "m", Cells: map[llmsim.Condition]*eval.Cell{}}
	if empty.Best() != nil {
		t.Fatal("empty row Best not nil")
	}
}

func TestRunRejectsEmptyQuestions(t *testing.T) {
	a := artifacts(t)
	setup := *a.SyntheticSetup()
	setup.Questions = nil
	if _, err := eval.Run(&setup, llmsim.Profiles(), llmsim.AllConditions); err == nil {
		t.Fatal("empty setup accepted")
	}
}

func TestFilterQuestions(t *testing.T) {
	qs := []*mcq.Question{{ID: "a", Math: true}, {ID: "b"}, {ID: "c", Math: true}}
	got := eval.FilterQuestions(qs, func(q *mcq.Question) bool { return !q.Math })
	if len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("filtered %v", got)
	}
}

func TestSortedConditions(t *testing.T) {
	in := []llmsim.Condition{llmsim.CondRTEfficient, llmsim.CondBaseline, llmsim.CondRTDetail}
	out := eval.SortedConditions(in)
	if out[0] != llmsim.CondBaseline || out[2] != llmsim.CondRTEfficient {
		t.Fatalf("order %v", out)
	}
	if in[0] != llmsim.CondRTEfficient {
		t.Fatal("input mutated")
	}
}

func TestRenderTable1(t *testing.T) {
	s := eval.RenderTable1(llmsim.Profiles())
	for _, want := range []string{"OLMo-7B", "128,000", "TinyLlama-1.1B-Chat", "| 14 B |"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestRenderRetrievalStats(t *testing.T) {
	a := artifacts(t)
	s := a.SyntheticSetup()
	out := eval.RenderRetrievalStats(s)
	for _, want := range []string{"| chunks |", "Flat(FP16)", "Bytes/vec"} {
		if !strings.Contains(out, want) {
			t.Fatalf("retrieval stats missing %q:\n%s", want, out)
		}
	}
	for _, mode := range mcq.AllModes {
		if !strings.Contains(out, "traces/"+string(mode)) {
			t.Fatalf("retrieval stats missing trace store %q:\n%s", mode, out)
		}
	}
}

func TestRenderTable2AndFigures(t *testing.T) {
	a := artifacts(t)
	m, err := eval.Run(a.SyntheticSetup(),
		[]*llmsim.Profile{mustProfile(t, "OLMo-7B"), mustProfile(t, "SmolLM3-3B")},
		llmsim.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	tbl := eval.RenderTable2(m)
	if !strings.Contains(tbl, "RAG-RT-Focused") || !strings.Contains(tbl, "**") {
		t.Fatalf("table 2:\n%s", tbl)
	}
	fig := eval.RenderFigure(m, "Figure 4: synthetic improvement")
	if !strings.Contains(fig, "vs baseline") || !strings.Contains(fig, "vs chunks") {
		t.Fatalf("figure:\n%s", fig)
	}
	if !strings.Contains(fig, "█") {
		t.Fatalf("figure has no bars:\n%s", fig)
	}
	astroTbl := eval.RenderAstroTable(m, "Astro test")
	if !strings.Contains(astroTbl, "RAG–RTs (best)") {
		t.Fatalf("astro table:\n%s", astroTbl)
	}
	csv := eval.RenderCSV(m)
	if !strings.Contains(csv, "baseline") || len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestNegativeImprovementRendered(t *testing.T) {
	// A model whose RT regresses (Llama-3-8B on Astro) must render a
	// "(worse)" bar, as the paper's Figure 5 shows negative bars.
	row := &eval.Row{Model: "m", Cells: map[llmsim.Condition]*eval.Cell{
		llmsim.CondBaseline:    {Condition: llmsim.CondBaseline, Accuracy: 0.665},
		llmsim.CondChunks:      {Condition: llmsim.CondChunks, Accuracy: 0.674},
		llmsim.CondRTFocused:   {Condition: llmsim.CondRTFocused, Accuracy: 0.542},
		llmsim.CondRTDetail:    {Condition: llmsim.CondRTDetail, Accuracy: 0.52},
		llmsim.CondRTEfficient: {Condition: llmsim.CondRTEfficient, Accuracy: 0.51},
	}}
	m := &eval.Matrix{Conditions: llmsim.AllConditions, Rows: []*eval.Row{row}}
	fig := eval.RenderFigure(m, "t")
	if !strings.Contains(fig, "(worse)") {
		t.Fatalf("negative bar not marked:\n%s", fig)
	}
	imps := eval.Improvements(m)
	if imps[0].VsBaseline >= 0 {
		t.Fatal("regression not negative")
	}
}

func TestUnparseableCounted(t *testing.T) {
	a := artifacts(t)
	m, err := eval.Run(a.SyntheticSetup(), []*llmsim.Profile{mustProfile(t, "OLMo-7B")},
		[]llmsim.Condition{llmsim.CondBaseline})
	if err != nil {
		t.Fatal(err)
	}
	// Student replies are well-formed, so nothing should be unparseable.
	if m.Rows[0].Cells[llmsim.CondBaseline].Unparseable != 0 {
		t.Fatal("well-formed replies flagged unparseable")
	}
}
