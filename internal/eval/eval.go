package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/llmsim"
	"repro/internal/mcq"
	"repro/internal/pipeline"
	"repro/internal/rag"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Setup bundles one benchmark's questions and retrieval stores.
type Setup struct {
	KB        *corpus.KB
	Questions []*mcq.Question
	Chunks    *rag.ChunkStore
	Traces    map[mcq.ReasoningMode]*rag.TraceStore
	Bench     llmsim.Benchmark
	// K is the retrieval depth (top-k), default 5.
	K int
	// SelfExcludeTraces enables the stricter cross-question ablation in
	// which a question may not retrieve its own distilled trace. The
	// paper's protocol (and the default) is false; Astro questions have no
	// own traces so the flag is moot there.
	SelfExcludeTraces bool
	// Seed drives answer sampling; fixed seed → bit-identical tables.
	Seed uint64
	// Workers bounds parallelism (<=0 → GOMAXPROCS).
	Workers int
}

func (s *Setup) k() int {
	if s.K <= 0 {
		return 5
	}
	return s.K
}

// retrieved caches one question's retrieval results for one condition so
// the expensive similarity searches run once, not once per model.
type retrieved struct {
	texts  []string
	chunks []rag.RetrievedChunk
	traces []rag.RetrievedTrace
}

// retrieveAll performs the retrieval for a condition across all questions
// at once, preserving question order. The whole question set goes through
// the store's batch path (embedding fan-out + the vecstore multi-query
// scan kernel), which amortises each decoded code tile across the entire
// 16,680-question sweep instead of re-decoding per question.
func (s *Setup) retrieveAll(cond llmsim.Condition) ([]retrieved, error) {
	out := make([]retrieved, len(s.Questions))
	if cond == llmsim.CondBaseline {
		return out, nil
	}
	queries := make([]string, len(s.Questions))
	for i, q := range s.Questions {
		queries[i] = q.Question
	}
	if cond == llmsim.CondChunks {
		for i, rc := range s.Chunks.RetrieveBatch(queries, s.k()) {
			texts := make([]string, len(rc))
			for j, c := range rc {
				texts[j] = c.Chunk.Text
			}
			out[i] = retrieved{texts: texts, chunks: rc}
		}
		return out, nil
	}
	mode, err := condMode(cond)
	if err != nil {
		return nil, err
	}
	store, ok := s.Traces[mode]
	if !ok {
		return nil, fmt.Errorf("eval: no trace store for mode %s", mode)
	}
	var excludes []string
	if s.SelfExcludeTraces {
		excludes = make([]string, len(s.Questions))
		for i, q := range s.Questions {
			excludes[i] = q.ID
		}
	}
	for i, rt := range store.RetrieveBatch(queries, s.k(), excludes) {
		texts := make([]string, len(rt))
		for j, tr := range rt {
			texts[j] = tr.Trace.Reasoning
		}
		out[i] = retrieved{texts: texts, traces: rt}
	}
	return out, nil
}

func condMode(c llmsim.Condition) (mcq.ReasoningMode, error) {
	switch c {
	case llmsim.CondRTDetail:
		return mcq.ModeDetailed, nil
	case llmsim.CondRTFocused:
		return mcq.ModeFocused, nil
	case llmsim.CondRTEfficient:
		return mcq.ModeEfficient, nil
	}
	return "", fmt.Errorf("eval: condition %s has no trace mode", c)
}

// Cell is one (model, condition) result.
type Cell struct {
	Model       string
	Condition   llmsim.Condition
	Correct     int
	Total       int
	Accuracy    float64
	CI          stats.Interval
	MeanUtility float64
	// Unparseable counts replies the judge could not map to an option
	// (graded incorrect, as in real harnesses).
	Unparseable int
	// ByTopic breaks correctness down per sub-domain label (the paper's
	// §5 plan: "benchmarks … organized by sub-domain"). Questions without
	// a topic aggregate under "".
	ByTopic map[string]*TopicCount
}

// TopicCount is one sub-domain's tally within a cell.
type TopicCount struct {
	Correct int
	Total   int
}

// Accuracy returns the tally's accuracy (0 when empty).
func (tc *TopicCount) Accuracy() float64 {
	if tc.Total == 0 {
		return 0
	}
	return float64(tc.Correct) / float64(tc.Total)
}

// Row collects one model's cells.
type Row struct {
	Model string
	Cells map[llmsim.Condition]*Cell
}

// Best returns the best reasoning-trace cell of the row (the paper's Astro
// tables report "RAG-RTs (best)").
func (r *Row) Best(conds ...llmsim.Condition) *Cell {
	if len(conds) == 0 {
		conds = []llmsim.Condition{llmsim.CondRTDetail, llmsim.CondRTFocused, llmsim.CondRTEfficient}
	}
	var best *Cell
	for _, c := range conds {
		cell, ok := r.Cells[c]
		if !ok {
			continue
		}
		if best == nil || cell.Accuracy > best.Accuracy {
			best = cell
		}
	}
	return best
}

// Matrix is the full evaluation result for one benchmark.
type Matrix struct {
	Bench      llmsim.Benchmark
	Conditions []llmsim.Condition
	Rows       []*Row
}

// Row returns the named model's row, or nil.
func (m *Matrix) Row(model string) *Row {
	for _, r := range m.Rows {
		if r.Model == model {
			return r
		}
	}
	return nil
}

// Run evaluates the given profiles under the given conditions. Retrieval is
// performed once per condition and shared across models; each model sees
// retrieval through its own context window (truncation drops low-ranked
// items), and its response probability is driven by the measured utility
// (DESIGN.md §4).
func Run(setup *Setup, profiles []*llmsim.Profile, conditions []llmsim.Condition) (*Matrix, error) {
	if len(setup.Questions) == 0 {
		return nil, fmt.Errorf("eval: no questions")
	}
	matrix := &Matrix{Bench: setup.Bench, Conditions: conditions}
	judge := llmsim.NewJudge()
	root := rng.New(setup.Seed)

	// Retrieval per condition, shared by all models.
	cache := make(map[llmsim.Condition][]retrieved, len(conditions))
	for _, cond := range conditions {
		r, err := setup.retrieveAll(cond)
		if err != nil {
			return nil, err
		}
		cache[cond] = r
	}

	for _, prof := range profiles {
		student := llmsim.NewStudent(prof)
		row := &Row{Model: prof.Name, Cells: make(map[llmsim.Condition]*Cell)}
		for _, cond := range conditions {
			if !student.Supports(setup.Bench, cond) {
				continue
			}
			cell, err := runCell(setup, student, judge, cond, cache[cond],
				root.Split(prof.Name+"|"+string(cond)))
			if err != nil {
				return nil, err
			}
			row.Cells[cond] = cell
		}
		matrix.Rows = append(matrix.Rows, row)
	}
	return matrix, nil
}

// runCell evaluates one model under one condition.
func runCell(setup *Setup, student *llmsim.Student, judge *llmsim.Judge,
	cond llmsim.Condition, ret []retrieved, r *rng.Source) (*Cell, error) {

	window := student.Profile.ContextWindow
	// Pass 1: assemble prompts, measure per-question utility through this
	// model's window.
	type prep struct {
		utility float64
		prompt  rag.Prompt
	}
	preps, err := pipeline.Map(context.Background(), indexRange(len(setup.Questions)), setup.Workers,
		func(_ context.Context, i int) (prep, error) {
			q := setup.Questions[i]
			p := rag.AssemblePrompt(q, ret[i].texts, window)
			var u float64
			switch cond {
			case llmsim.CondBaseline:
				u = 0
			case llmsim.CondChunks:
				u = rag.ChunkUtility(setup.KB, q, ret[i].chunks, p.Retained)
			default:
				u = rag.TraceUtility(setup.KB, q, ret[i].traces, p.Retained)
			}
			return prep{utility: u, prompt: p}, nil
		})
	if err != nil {
		return nil, err
	}
	// Mean utility per math/no-math subset: the calibrated response rows
	// differ by subset, so each must be normalised against its own mean
	// (a shared mean would leak one subset's utility distribution into the
	// other's response curve).
	var uSum, uSumMath, uSumPlain float64
	var nMath, nPlain int
	for i, p := range preps {
		uSum += p.utility
		if setup.Questions[i].Math {
			uSumMath += p.utility
			nMath++
		} else {
			uSumPlain += p.utility
			nPlain++
		}
	}
	uMean := uSum / float64(len(preps))
	uMeanMath, uMeanPlain := uMean, uMean
	if nMath > 0 {
		uMeanMath = uSumMath / float64(nMath)
	}
	if nPlain > 0 {
		uMeanPlain = uSumPlain / float64(nPlain)
	}

	// Pass 2: answer and grade. Sequential RNG keeps runs reproducible
	// (answering is microseconds per item; retrieval dominated pass 1).
	cell := &Cell{
		Model: student.Profile.Name, Condition: cond,
		Total: len(setup.Questions), ByTopic: make(map[string]*TopicCount),
	}
	cell.MeanUtility = uMean
	for i, q := range setup.Questions {
		m := uMeanPlain
		if q.Math {
			m = uMeanMath
		}
		resp := student.Answer(q, setup.Bench, cond, preps[i].utility, m, r)
		grade := judge.GradeResponse(q, resp.Text)
		if grade.ParsedChoice < 0 {
			cell.Unparseable++
		}
		tc := cell.ByTopic[q.Topic]
		if tc == nil {
			tc = &TopicCount{}
			cell.ByTopic[q.Topic] = tc
		}
		tc.Total++
		if grade.Correct {
			cell.Correct++
			tc.Correct++
		}
	}
	cell.Accuracy = float64(cell.Correct) / float64(cell.Total)
	cell.CI = stats.WilsonCI(cell.Correct, cell.Total)
	return cell, nil
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// FilterQuestions returns the subset of a matrix-compatible question list
// selected by keep.
func FilterQuestions(qs []*mcq.Question, keep func(*mcq.Question) bool) []*mcq.Question {
	var out []*mcq.Question
	for _, q := range qs {
		if keep(q) {
			out = append(out, q)
		}
	}
	return out
}

// SortedConditions returns the matrix's conditions in canonical table
// order.
func SortedConditions(conds []llmsim.Condition) []llmsim.Condition {
	order := map[llmsim.Condition]int{
		llmsim.CondBaseline: 0, llmsim.CondChunks: 1,
		llmsim.CondRTDetail: 2, llmsim.CondRTFocused: 3, llmsim.CondRTEfficient: 4,
	}
	out := append([]llmsim.Condition(nil), conds...)
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}
