package eval_test

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/llmsim"
)

// The context-window mechanism: models with small windows (OLMo at 2,048
// tokens) must lose part of their retrieval benefit to truncation relative
// to large-window models seeing the same retrieved items. We compare the
// measured mean utility of the chunk condition between an OLMo-window
// clone and a 128K-window clone of the same profile, over a retrieval
// depth large enough that the small window cannot hold everything.
func TestSmallWindowTruncatesRetrievalUtility(t *testing.T) {
	a := artifacts(t)
	base, err := llmsim.ProfileByName("OLMo-7B")
	if err != nil {
		t.Fatal(err)
	}
	small := *base
	small.Name = "clone-small-window"
	// 300 tokens: after the instruction/question overhead only a truncated
	// fraction of the top-ranked chunk fits, so the retained-fraction
	// scaling must bite. (At 1024+, the top few chunks fit whole and the
	// max-relevance item is almost always among them, so utilities tie —
	// the truncation effect only appears under real pressure.)
	small.ContextWindow = 300
	large := *base
	large.Name = "clone-large-window"
	large.ContextWindow = 128000

	setup := a.SyntheticSetup()
	setup.K = 10 // enough retrieved chunks to overflow 1,024 tokens
	m, err := eval.Run(setup, []*llmsim.Profile{&small, &large},
		[]llmsim.Condition{llmsim.CondBaseline, llmsim.CondChunks})
	if err != nil {
		t.Fatal(err)
	}
	uSmall := m.Row("clone-small-window").Cells[llmsim.CondChunks].MeanUtility
	uLarge := m.Row("clone-large-window").Cells[llmsim.CondChunks].MeanUtility
	if uSmall >= uLarge {
		t.Fatalf("small window utility %.3f not below large window %.3f", uSmall, uLarge)
	}
	if uSmall <= 0 {
		t.Fatal("small window lost all utility — top-ranked item should still fit")
	}
}
