package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llmsim"
	"repro/internal/mcq"
	"repro/internal/stats"
	"repro/internal/vecstore"
)

// Rendering of the paper's tables and figures. Tables are markdown; the
// figures (percent-improvement bar charts, Figures 4-6) are ASCII bars so a
// terminal run shows the same comparison the paper plots.

// RenderTable1 prints the model roster (paper Table 1).
func RenderTable1(profiles []*llmsim.Profile) string {
	var b strings.Builder
	b.WriteString("| Model Name | Params | Release Year | Context Window |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, p := range profiles {
		fmt.Fprintf(&b, "| %s | %s | %d | %s |\n",
			p.Name, p.Params, p.ReleaseYear, formatInt(p.ContextWindow))
	}
	return b.String()
}

func formatInt(n int) string {
	s := fmt.Sprint(n)
	if n < 10000 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// RenderTable2 prints the synthetic-benchmark accuracy table (paper
// Table 2): all five conditions, best cell per row in bold.
func RenderTable2(m *Matrix) string {
	conds := SortedConditions(m.Conditions)
	var b strings.Builder
	b.WriteString("| Model |")
	for _, c := range conds {
		fmt.Fprintf(&b, " %s |", condLabel(c))
	}
	b.WriteString("\n|---|")
	for range conds {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range m.Rows {
		best := bestCondition(row, conds)
		fmt.Fprintf(&b, "| %s |", row.Model)
		for _, c := range conds {
			cell, ok := row.Cells[c]
			if !ok {
				b.WriteString(" — |")
				continue
			}
			if c == best {
				fmt.Fprintf(&b, " **%.3f** |", cell.Accuracy)
			} else {
				fmt.Fprintf(&b, " %.3f |", cell.Accuracy)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderAstroTable prints an Astro-style table (paper Tables 3-4):
// baseline, chunks, and the best reasoning-trace condition per model.
func RenderAstroTable(m *Matrix, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	b.WriteString("| Model | Baseline | RAG–Chunks | RAG–RTs (best) |\n|---|---|---|---|\n")
	for _, row := range m.Rows {
		base := row.Cells[llmsim.CondBaseline]
		chunks := row.Cells[llmsim.CondChunks]
		best := row.Best()
		cols := []*Cell{base, chunks, best}
		// Bold the best of the three.
		bi := 0
		for i, c := range cols {
			if c != nil && (cols[bi] == nil || c.Accuracy > cols[bi].Accuracy) {
				bi = i
			}
		}
		fmt.Fprintf(&b, "| %s |", row.Model)
		for i, c := range cols {
			if c == nil {
				b.WriteString(" — |")
				continue
			}
			if i == bi {
				fmt.Fprintf(&b, " **%.3f** |", c.Accuracy)
			} else {
				fmt.Fprintf(&b, " %.3f |", c.Accuracy)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Improvement is one model's bar pair in a Figures-4-6-style chart.
type Improvement struct {
	Model      string
	VsBaseline float64 // percent
	VsChunks   float64 // percent
	BestMode   llmsim.Condition
}

// Improvements computes the percent accuracy improvement of the best
// reasoning-trace condition over baseline and over chunk retrieval, per
// model — the quantities plotted in Figures 4, 5 and 6.
func Improvements(m *Matrix) []Improvement {
	var out []Improvement
	for _, row := range m.Rows {
		base, okB := row.Cells[llmsim.CondBaseline]
		chunks, okC := row.Cells[llmsim.CondChunks]
		best := row.Best()
		if !okB || !okC || best == nil {
			continue
		}
		out = append(out, Improvement{
			Model:      row.Model,
			VsBaseline: stats.RelImprovement(base.Accuracy, best.Accuracy),
			VsChunks:   stats.RelImprovement(chunks.Accuracy, best.Accuracy),
			BestMode:   best.Condition,
		})
	}
	return out
}

// RenderFigure draws the percent-improvement chart as ASCII bars.
func RenderFigure(m *Matrix, title string) string {
	imps := Improvements(m)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	maxAbs := 1.0
	for _, im := range imps {
		maxAbs = max3(maxAbs, abs(im.VsBaseline), abs(im.VsChunks))
	}
	const width = 46
	for _, im := range imps {
		fmt.Fprintf(&b, "%-26s\n", im.Model)
		fmt.Fprintf(&b, "  vs baseline %+7.1f%% %s\n", im.VsBaseline, bar(im.VsBaseline, maxAbs, width))
		fmt.Fprintf(&b, "  vs chunks   %+7.1f%% %s\n", im.VsChunks, bar(im.VsChunks, maxAbs, width))
	}
	return b.String()
}

func bar(v, maxAbs float64, width int) string {
	n := int(abs(v) / maxAbs * float64(width))
	if n == 0 && v != 0 {
		n = 1
	}
	if v < 0 {
		return strings.Repeat("░", n) + " (worse)"
	}
	return strings.Repeat("█", n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func condLabel(c llmsim.Condition) string {
	switch c {
	case llmsim.CondBaseline:
		return "Baseline"
	case llmsim.CondChunks:
		return "RAG-Chunks"
	case llmsim.CondRTDetail:
		return "RAG-RT-Detail"
	case llmsim.CondRTFocused:
		return "RAG-RT-Focused"
	case llmsim.CondRTEfficient:
		return "RAG-RT-Efficient"
	}
	return string(c)
}

func bestCondition(row *Row, conds []llmsim.Condition) llmsim.Condition {
	var best llmsim.Condition
	bestAcc := -1.0
	for _, c := range conds {
		if cell, ok := row.Cells[c]; ok && cell.Accuracy > bestAcc {
			best, bestAcc = c, cell.Accuracy
		}
	}
	return best
}

// RenderTopicBreakdown prints per-sub-domain accuracy for one model across
// conditions (the paper's §5 sub-domain organisation plan). Topics are
// sorted by descending question count; only topics with at least minN
// questions appear.
func RenderTopicBreakdown(row *Row, conds []llmsim.Condition, minN int) string {
	// Collect topics from the first available cell.
	var anyCell *Cell
	for _, c := range conds {
		if cell, ok := row.Cells[c]; ok {
			anyCell = cell
			break
		}
	}
	if anyCell == nil {
		return ""
	}
	type topicInfo struct {
		name string
		n    int
	}
	var topics []topicInfo
	for name, tc := range anyCell.ByTopic {
		if tc.Total >= minN {
			topics = append(topics, topicInfo{name, tc.Total})
		}
	}
	sort.Slice(topics, func(i, j int) bool {
		if topics[i].n != topics[j].n {
			return topics[i].n > topics[j].n
		}
		return topics[i].name < topics[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s — accuracy by sub-domain\n\n", row.Model)
	b.WriteString("| Sub-domain | n |")
	for _, c := range conds {
		fmt.Fprintf(&b, " %s |", condLabel(c))
	}
	b.WriteString("\n|---|---|")
	for range conds {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, tp := range topics {
		label := tp.name
		if label == "" {
			label = "(untagged)"
		}
		fmt.Fprintf(&b, "| %s | %d |", label, tp.n)
		for _, c := range conds {
			cell, ok := row.Cells[c]
			if !ok {
				b.WriteString(" — |")
				continue
			}
			tc := cell.ByTopic[tp.name]
			if tc == nil {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %.3f |", tc.Accuracy())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderRetrievalStats prints the retrieval-store configuration table for
// a setup: which index family backs each store and what it costs per
// vector. Together with the accuracy tables this is where the
// recall/memory trade-off of swapping Flat for IVF/SQ8/PQ/IVF-PQ (via
// ChunkStore.UseIVF/UsePQ/UseIVFPQ) becomes visible in an eval report;
// IVF-PQ's encoding variant (residual codes, OPQ rotation) is part of the
// rendered index kind, e.g. "IVF-PQ(nlist=64,nprobe=8,m=48,res+opq)".
func RenderRetrievalStats(s *Setup) string {
	var b strings.Builder
	b.WriteString("Retrieval stores\n\n")
	b.WriteString("| Store | Index | Vectors | Dim | Bytes/vec | Total MB |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	writeRow := func(name string, st vecstore.IndexStats) {
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %.1f | %.2f |\n",
			name, st.Kind, formatInt(st.Vectors), st.Dim,
			st.BytesPerVector(), float64(st.Bytes)/(1<<20))
	}
	if s.Chunks != nil {
		writeRow("chunks", s.Chunks.IndexStats())
	}
	for _, mode := range mcq.AllModes {
		if ts, ok := s.Traces[mode]; ok {
			writeRow("traces/"+string(mode), ts.IndexStats())
		}
	}
	return b.String()
}

// RenderCSV exports a matrix for external plotting.
func RenderCSV(m *Matrix) string {
	conds := SortedConditions(m.Conditions)
	var b strings.Builder
	b.WriteString("model")
	for _, c := range conds {
		fmt.Fprintf(&b, ",%s,%s_ci_lo,%s_ci_hi,%s_mean_utility", c, c, c, c)
	}
	b.WriteString("\n")
	for _, row := range m.Rows {
		b.WriteString(csvEscape(row.Model))
		for _, c := range conds {
			cell, ok := row.Cells[c]
			if !ok {
				b.WriteString(",,,,")
				continue
			}
			fmt.Fprintf(&b, ",%.4f,%.4f,%.4f,%.4f", cell.Accuracy, cell.CI.Lo, cell.CI.Hi, cell.MeanUtility)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
