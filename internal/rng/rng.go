// Package rng provides deterministic, splittable pseudo-random number
// generation and the sampling distributions used across the MCQA pipeline.
//
// Every stochastic component in this repository (corpus synthesis, question
// difficulty, simulated model responses) draws from an rng.Source seeded from
// a single experiment seed, so all artifacts are bit-reproducible. Sources
// are splittable: a parent source derives independent child streams by name,
// which keeps parallel pipeline stages deterministic regardless of
// scheduling order.
package rng

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Source is a deterministic PRNG based on xoshiro256** seeded via SplitMix64.
// It is NOT safe for concurrent use; derive per-goroutine children with
// Split instead of sharing one Source.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed-expansion state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams; the zero seed is valid.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9E3779B97F4A7C15
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child stream identified by name. Children
// with distinct names (or derived from distinct parents) are statistically
// independent, and the derivation does not advance the parent, so sibling
// stages may be created in any order.
func (r *Source) Split(name string) *Source {
	h := fnv.New64a()
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], r.s[0])
	binary.LittleEndian.PutUint64(buf[8:], r.s[1])
	binary.LittleEndian.PutUint64(buf[16:], r.s[2])
	binary.LittleEndian.PutUint64(buf[24:], r.s[3])
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(h.Sum64())
}

// SplitN derives an index-keyed child stream, for per-item determinism in
// data-parallel loops.
func (r *Source) SplitN(name string, n int) *Source {
	h := fnv.New64a()
	var buf [40]byte
	binary.LittleEndian.PutUint64(buf[0:], r.s[0])
	binary.LittleEndian.PutUint64(buf[8:], r.s[1])
	binary.LittleEndian.PutUint64(buf[16:], r.s[2])
	binary.LittleEndian.PutUint64(buf[24:], r.s[3])
	binary.LittleEndian.PutUint64(buf[32:], uint64(n))
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(h.Sum64())
}

// Float64 returns a uniform float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aL, aH := a&mask, a>>32
	bL, bH := b&mask, b>>32
	t := aH*bL + (aL*bL)>>32
	lo = a * b
	hi = aH*bH + t>>32 + (t&mask+aL*bH)>>32
	return hi, lo
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a sample from N(mu, sigma^2) using the polar Box-Muller
// method.
func (r *Source) Normal(mu, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mu + sigma*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponentially distributed sample with the given rate.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Gamma returns a Gamma(shape, 1) sample (Marsaglia–Tsang method).
func (r *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) sample.
func (r *Source) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs a Fisher-Yates shuffle of p in place.
func (r *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index in [0, len), as a convenience for
// picking from slices.
func (r *Source) Choice(length int) int { return r.Intn(length) }

// Categorical samples an index proportionally to the non-negative weights.
// It panics if weights is empty or sums to zero.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: empty or zero-sum categorical weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// SampleK returns k distinct indices from [0, n) via reservoir sampling;
// order is randomized. If k >= n all indices are returned.
func (r *Source) SampleK(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	r.ShuffleInts(res)
	return res
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, the canonical heavy-tailed distribution for topic and term
// popularity in scientific corpora.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(n, s) sampler. It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s < 0 {
		panic("rng: Zipf with negative exponent")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(r *Source) int {
	x := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HashString returns a stable 64-bit hash of s, independent of any Source
// state. It is used wherever stable content-addressed identifiers are needed
// (chunk ids, provenance keys).
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashStrings hashes the concatenation of the parts with separators, giving
// a stable composite key.
func HashStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	return h.Sum64()
}
