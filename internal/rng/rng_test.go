package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	c2 := parent.Split("beta")
	c1Again := parent.Split("alpha")
	if c1.Uint64() != c1Again.Uint64() {
		t.Fatal("Split not deterministic for same name")
	}
	if c1.s == c2.s {
		t.Fatal("different names produced identical child state")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	p1, p2 := New(9), New(9)
	_ = p1.Split("x")
	_ = p1.Split("y")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced parent state")
	}
}

func TestSplitN(t *testing.T) {
	p := New(5)
	a := p.SplitN("item", 0)
	b := p.SplitN("item", 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("SplitN(0) and SplitN(1) collide")
	}
	c := p.SplitN("item", 0)
	a2 := New(5).SplitN("item", 0)
	if c.Uint64() != a2.Uint64() {
		t.Fatal("SplitN not reproducible")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Normal mean %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("Normal variance %v, want ~9", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func TestGammaMean(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		r := New(17)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x < 0 {
				t.Fatalf("Gamma(%v) negative sample", shape)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.03 {
			t.Fatalf("Gamma(%v) mean %v", shape, mean)
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
		sum += x
	}
	want := 2.0 / 7.0
	if mean := sum / n; math.Abs(mean-want) > 0.01 {
		t.Fatalf("Beta(2,5) mean %v, want ~%v", mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestCategorical(t *testing.T) {
	r := New(29)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("categorical ratio %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-sum weights did not panic")
		}
	}()
	New(1).Categorical([]float64{0, 0})
}

func TestSampleKDistinct(t *testing.T) {
	r := New(31)
	for trial := 0; trial < 100; trial++ {
		s := r.SampleK(20, 5)
		if len(s) != 5 {
			t.Fatalf("SampleK returned %d items", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("SampleK invalid sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSampleKAll(t *testing.T) {
	r := New(37)
	s := r.SampleK(4, 10)
	if len(s) != 4 {
		t.Fatalf("SampleK(4,10) returned %d items", len(s))
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(41)
	z := NewZipf(100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] < 5*counts[10] {
		t.Fatalf("Zipf head too light: rank0=%d rank10=%d", counts[0], counts[10])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(43)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Zipf(s=0) bucket %d = %d, want ~10000", i, c)
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("chunk-0001") != HashString("chunk-0001") {
		t.Fatal("HashString unstable")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivial hash collision")
	}
}

func TestHashStringsSeparatorMatters(t *testing.T) {
	if HashStrings("ab", "c") == HashStrings("a", "bc") {
		t.Fatal("HashStrings concatenation ambiguity")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(47)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / 100000
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate %v", p)
	}
}

// Property: Intn output is always within bounds for arbitrary seeds and n.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed ⇒ identical Float64 stream prefix.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}
