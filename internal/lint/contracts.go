package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// nilrecv: obs.Trace promises that every method is safe on a nil
// receiver — untraced paths pay exactly one nil check. The contract is
// structural: every exported pointer-receiver method on Trace must open
// with `if t == nil { ... }`.
var analyzerNilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported pointer-receiver methods on obs.Trace must open with a nil guard",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		if p.Name != "obs" {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
				if !ok {
					continue
				}
				base, ok := star.X.(*ast.Ident)
				if !ok || base.Name != "Trace" {
					continue
				}
				if len(fd.Recv.List[0].Names) == 0 || !opensWithNilGuard(fd) {
					report(fd.Pos(), "exported method "+fd.Name.Name+
						" on *Trace must open with a nil-receiver guard (nil *Trace contract)")
				}
			}
		}
	},
}

// opensWithNilGuard reports whether the method's first statement is
// `if <recv> == nil { ... }` — possibly widened with further `||`
// disjuncts (`if t == nil || len(spans) == 0`), which still run the
// early-exit body on a nil receiver.
func opensWithNilGuard(fd *ast.FuncDecl) bool {
	recv := fd.Recv.List[0].Names[0].Name
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	return hasNilDisjunct(ifs.Cond, recv)
}

// hasNilDisjunct reports whether `<recv> == nil` appears as a disjunct
// of an ||-chain (an && conjunction would not fire on every nil
// receiver, so it does not count).
func hasNilDisjunct(e ast.Expr, recv string) bool {
	cmp, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LOR:
		return hasNilDisjunct(cmp.X, recv) || hasNilDisjunct(cmp.Y, recv)
	case token.EQL:
		return (isIdent(cmp.X, recv) && isIdent(cmp.Y, "nil")) ||
			(isIdent(cmp.Y, recv) && isIdent(cmp.X, "nil"))
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// stageTaxonomy is the closed set of span names the serving stack may
// record: the serve-tier stages BenchReport.Check admits (queue, cache,
// embed, scan, merge — see serve.StageNames), plus the two stages that
// exist outside the sampled breakdown: encode (booked after the response
// snapshot on both tiers) and scatter (the router's fan-out). A new
// stage must be added here AND to the bench schema in the same change —
// TestStageTaxonomyCoversBenchSchema pins the subset relation.
var stageTaxonomy = map[string]bool{
	"queue":   true,
	"cache":   true,
	"embed":   true,
	"scan":    true,
	"merge":   true,
	"encode":  true,
	"scatter": true,
}

// pipelineStageTaxonomy is the generation pipeline's own stage set
// (internal/core's per-stage histograms, which predate the serving tier
// and never reach BenchReport). Metric names may use either tier's
// stages; trace spans are a serving-tier concept and use stageTaxonomy
// alone.
var pipelineStageTaxonomy = map[string]bool{
	"parse": true,
	"chunk": true,
}

// stagenames: a span recorded under a name outside the taxonomy, or a
// stage histogram registered under one, drifts silently from the bench
// schema until BenchReport.Check rejects a report in CI. Catch the
// literal at analysis time instead. Matching is by receiver type name
// (Trace.AddSpan/StartSpan, Registry histogram/counter names containing
// "stage."), so the obs and metrics packages don't need importing here.
var analyzerStageNames = &Analyzer{
	Name: "stagenames",
	Doc:  "stage/metric name literals must belong to the approved stage taxonomy",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case (sel.Sel.Name == "AddSpan" || sel.Sel.Name == "StartSpan") &&
					recvTypeName(p, call) == "Trace":
					if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
						for _, s := range stringLits(lit) {
							if !stageTaxonomy[s] {
								report(call.Args[0].Pos(), "span name "+quoted(s)+
									" is outside the approved stage taxonomy (see internal/lint stageTaxonomy and serve.StageNames)")
							}
						}
					}
				case recvTypeName(p, call) == "Registry":
					for _, s := range stringLits(call.Args[0]) {
						idx := strings.Index(s, "stage.")
						if idx < 0 {
							continue
						}
						stage := s[idx+len("stage."):]
						if !stageTaxonomy[stage] && !pipelineStageTaxonomy[stage] {
							report(call.Args[0].Pos(), "stage metric suffix "+quoted(stage)+
								" is outside the approved stage taxonomy (see internal/lint stageTaxonomy and serve.StageNames)")
						}
					}
				}
				return true
			})
		}
	},
}

func quoted(s string) string { return "\"" + s + "\"" }
