// Fixture for the ctxhttp analyzer: outbound requests must carry a
// context so deadlines propagate router→shard.
package ctxhttp

import (
	"context"
	"net/http"
)

func noCtx(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want: drops the caller's context
}

func pkgHelper(url string) (*http.Response, error) {
	return http.Get(url) // want: cannot carry a context
}

func clientHelper(c *http.Client, url string) (*http.Response, error) {
	return c.Post(url, "application/json", nil) // want: cannot carry a context
}

func withCtx(ctx context.Context, c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req) // fine: the request carries ctx
}

func suppressed(url string) (*http.Response, error) {
	//lint:ignore ctxhttp one-shot CLI probe, no deadline chain to preserve
	return http.Get(url)
}
