// Fixture for the allocbound analyzer. The package is named vecstore
// because the rule is scoped to the persistence layer: allocation sizes
// decoded from a file header must be validated before make().
package vecstore

import (
	"encoding/binary"
	"errors"
	"io"
)

var errHeader = errors.New("bad header")

func unguarded(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want: n is header-tainted and unvalidated
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func guarded(r io.Reader, limit uint64) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > limit {
		return nil, errHeader
	}
	buf := make([]byte, n) // fine: bounded against the caller's budget
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func endianTaint(hdr []byte) []uint32 {
	count := binary.LittleEndian.Uint32(hdr)
	return make([]uint32, count) // want: count decoded straight from bytes
}

func derivedGuard(r io.Reader, remain uint64) ([]byte, error) {
	var rows, dim uint32
	if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	if need := uint64(rows) * uint64(dim); need > remain {
		return nil, errHeader
	}
	buf := make([]byte, int(rows)*int(dim)) // fine: the product was budget-checked
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func constSize(r io.Reader) ([]byte, error) {
	buf := make([]byte, 16) // fine: constant size, nothing tainted
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func suppressed(r io.Reader) ([]byte, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	//lint:ignore allocbound uint16 caps the allocation at 64KiB
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}
