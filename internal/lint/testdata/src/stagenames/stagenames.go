// Fixture for the stagenames analyzer: span and stage-metric names must
// come from the taxonomy that BenchReport.Check gates on.
package stagenames

import "time"

// Trace mirrors the obs span API surface the analyzer keys on.
type Trace struct{ spans []string }

func (t *Trace) AddSpan(name string, d time.Duration) { t.spans = append(t.spans, name) }
func (t *Trace) StartSpan(name string) func()         { return func() {} }

// Registry mirrors the metrics registry surface.
type Registry struct{}

func (r *Registry) Histogram(name string) *int { return nil }
func (r *Registry) Counter(name string) *int   { return nil }

func spans(tr *Trace) {
	tr.AddSpan("scann", time.Millisecond) // want: typo, not in the taxonomy
	tr.AddSpan("cache", time.Millisecond) // fine
	done := tr.StartSpan("rerank")        // want: not a known stage
	done()
	tr.StartSpan("scatter") // fine: router fan-out stage
}

func metrics(reg *Registry) {
	reg.Histogram("serve.stage.cachee") // want: stage. metric outside the taxonomy
	reg.Histogram("serve.stage.embed")  // fine
	reg.Histogram("pipe.stage.chunk")   // fine: pipeline taxonomy
	reg.Counter("serve.requests")       // fine: not a stage metric
	prefix := "serve."
	reg.Histogram(prefix + "stage.scan") // fine for the literal part; prefix is opaque
}

func suppressed(tr *Trace) {
	//lint:ignore stagenames experimental stage behind a flag, not yet in the schema
	tr.AddSpan("prefetch", time.Millisecond)
}
