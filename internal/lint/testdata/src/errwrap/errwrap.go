// Fixture for the errwrap analyzer: fmt.Errorf with an error operand
// must wrap it with %w so errors.Is/As see through the chain.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

type codedErr struct{ code int }

func (e *codedErr) Error() string { return fmt.Sprintf("code %d", e.code) }

func flatten(err error) error {
	return fmt.Errorf("load failed: %v", err) // want: %v flattens the chain
}

func flattenString(err error) error {
	return fmt.Errorf("load failed: %s", err) // want: %s flattens the chain
}

func positional(name string, err error) error {
	return fmt.Errorf("shard %s: open: %v", name, err) // want: second operand is the error
}

func customType(e *codedErr) error {
	return fmt.Errorf("reject: %v", e) // want: concrete error type, still flattened
}

func wrapped(err error) error {
	return fmt.Errorf("load failed: %w", err) // fine
}

func doubleWrap(a, b error) error {
	return fmt.Errorf("compact: %w (after %w)", a, b) // fine: multiple %w is legal
}

func nonError(n int, s string) error {
	return fmt.Errorf("row %d: field %q out of range", n, s) // fine: no error operands
}

func stringified(err error) error {
	return fmt.Errorf("gave up: %s", err.Error()) // fine: operand is a string, by choice
}

func suppressed(err error) error {
	//lint:ignore errwrap boundary error, chain intentionally severed for the API response
	return fmt.Errorf("internal failure: %v", err)
}
