// Fixture for the nilrecv analyzer. The package is named obs because the
// rule pins the real obs.Trace contract: every exported pointer-receiver
// method opens with a nil guard.
package obs

import "sync"

// Trace mirrors the real trace type's shape.
type Trace struct {
	id    string
	mu    sync.Mutex
	spans []string
}

func (t *Trace) ID() string { // want: no nil guard
	return t.id
}

func (t *Trace) Add(name string) { // want: first statement is not the guard
	t.mu.Lock()
	defer t.mu.Unlock()
	if t == nil {
		return
	}
	t.spans = append(t.spans, name)
}

func (t *Trace) Guarded() string {
	if t == nil {
		return ""
	}
	return t.id
}

func (t *Trace) GuardedDisjunct(names []string) {
	if t == nil || len(names) == 0 {
		return
	}
	t.spans = append(t.spans, names...)
}

func (t *Trace) internal() string {
	// unexported: the contract covers the exported surface only
	return t.id
}

func (t Trace) Value() string {
	// value receiver: cannot be nil, no guard required
	return t.id
}

//lint:ignore nilrecv constructor-checked method, receiver proven non-nil by its only caller
func (t *Trace) Suppressed() string {
	return t.id
}
