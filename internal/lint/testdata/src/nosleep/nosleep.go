// Fixture for the nosleep analyzer: bare time.Sleep in non-test code.
package nosleep

import (
	"context"
	gotime "time"
)

func bare(d gotime.Duration) {
	gotime.Sleep(d) // want: bare time.Sleep (resolved through the import alias)
}

func suppressed(d gotime.Duration) {
	//lint:ignore nosleep test helper pacing is allowed to block
	gotime.Sleep(d)
}

func timerWait(ctx context.Context, d gotime.Duration) error {
	// The sanctioned shape (retry.Sleep's implementation): no finding.
	t := gotime.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Sleep is a local function that happens to share the name; calling it
// is fine — resolution is by package path, not name.
func Sleep(d gotime.Duration) {}

func localSleep(d gotime.Duration) {
	Sleep(d)
}

func malformedDirective(d gotime.Duration) {
	//lint:ignore nosleep
	gotime.Sleep(d) // the directive above has no reason: finding stays AND the directive is reported
}
