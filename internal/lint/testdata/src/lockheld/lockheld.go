// Fixture for the lockheld analyzer: no channel ops, sleeps or network
// calls while a mutex is held.
package lockheld

import (
	"net/http"
	"sync"
	"time"
)

type box struct {
	mu sync.RWMutex
	ch chan int
}

func sendHeld(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want: channel send while b.mu is held
	b.mu.Unlock()
}

func recvHeld(b *box) int {
	b.mu.RLock()
	v := <-b.ch // want: channel receive while b.mu is held
	b.mu.RUnlock()
	return v
}

func sleepHeld(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want: time.Sleep while b.mu is held
}

func netHeld(b *box, url string) {
	b.mu.Lock()
	http.Get(url) // want: network call while b.mu is held
	b.mu.Unlock()
}

func blockingSelectHeld(b *box) {
	b.mu.Lock()
	select { // want: blocking select while b.mu is held
	case v := <-b.ch:
		_ = v
	case b.ch <- 2:
	}
	b.mu.Unlock()
}

func pollSelectHeld(b *box) {
	b.mu.Lock()
	select { // fine: a default clause makes this a non-blocking poll
	case b.ch <- 3:
	default:
	}
	b.mu.Unlock()
}

func handoffSelect(b *box, done chan struct{}) {
	// The coalescer's close-vs-enqueue handoff: every arm releases the
	// lock first, so the select IS the unlock point — no finding.
	b.mu.RLock()
	select {
	case b.ch <- 4:
		b.mu.RUnlock()
	case <-done:
		b.mu.RUnlock()
	}
}

func afterUnlock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 5 // fine: lock already released
}

func goroutineBody(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 6 // fine: the goroutine does not hold the caller's lock
	}()
}

func suppressed(b *box) {
	b.mu.Lock()
	//lint:ignore lockheld buffered signal channel, send can never block
	b.ch <- 7
	b.mu.Unlock()
}
