package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module: the parsed files the
// analyzers walk plus the go/types objects they resolve names against.
// TypeErrors collects (rather than aborts on) type-check problems so a
// package that fails to fully check still gets the syntactic analyzers.
type Package struct {
	Name string // package name (e.g. "vecstore", "main")
	Path string // import path (e.g. "repro/internal/vecstore")
	Dir  string // absolute directory

	Fset  *token.FileSet
	Files []*ast.File

	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a loaded Go module: the package loader and type-check cache
// behind one raglint run. It resolves module-internal import paths from
// source itself and delegates everything else (the standard library) to
// the go/importer source importer, so the whole pipeline stays inside the
// standard library.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // by import path; nil value marks in-progress
}

// LoadModule loads every non-test package under the module rooted at (or
// above) dir. Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped, matching the go tool's
// package enumeration.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Root: root,
		Path: modPath,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if _, err := m.loadDir(d, m.importPathFor(d)); err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", d, err)
		}
	}
	return m, nil
}

// Packages returns the module's loaded packages sorted by import path.
func (m *Module) Packages() []*Package {
	out := make([]*Package, 0, len(m.pkgs))
	for _, p := range m.pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

func (m *Module) importPathFor(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isPkgGoFile(e) {
			return true
		}
	}
	return false
}

func isPkgGoFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loadDir parses and type-checks the single package in dir under the
// given import path, memoised by path. Type-check errors are collected on
// the package, not returned: analyzers run on whatever resolved.
func (m *Module) loadDir(dir, path string) (*Package, error) {
	if p, ok := m.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	m.pkgs[path] = nil // in-progress marker
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: m.fset}
	for _, e := range ents {
		if !isPkgGoFile(e) {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: m,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, m.fset, pkg.Files, pkg.Info)
	m.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer for the type-checker: module-internal
// paths are loaded from source by this loader, everything else falls
// through to the standard-library source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
		p, err := m.loadDir(filepath.Join(m.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.ImportFrom(path, m.Root, 0)
}

// LoadFixture parses and type-checks one standalone package directory
// (an analyzer test fixture). Fixture packages may import the standard
// library only.
func LoadFixture(dir string) (*Package, error) {
	fset := token.NewFileSet()
	m := &Module{
		Root: dir,
		Path: "fixture",
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
	}
	return m.loadDir(dir, "fixture/"+filepath.Base(dir))
}
