// Package lint is raglint: a stdlib-only static-analysis suite (a small
// driver over go/parser, go/ast and go/types — no external dependencies,
// consistent with the module's zero-dependency stance) whose analyzers
// encode the repo's hard-earned concurrency and robustness invariants as
// structural rules, so a refactor cannot silently reintroduce a bug class
// that was already fixed once.
//
// Each analyzer pins one historical incident:
//
//	nosleep    bare time.Sleep in non-test code must go through the
//	           ctx-abortable retry.Sleep — the argo Close-vs-backoff hang.
//	ctxhttp    outbound requests must be built with
//	           http.NewRequestWithContext so router→shard deadlines
//	           propagate end to end.
//	lockheld   no channel operations, sleeps or network calls while a
//	           mutex is held — the coalescer/swap/writeMu discipline.
//	nilrecv    every exported pointer-receiver method on obs.Trace opens
//	           with a nil guard (the "untraced paths pay one nil check"
//	           contract).
//	allocbound in vecstore persist/load code, make() sizes derived from
//	           decoded header integers must be validated before the
//	           allocation — the VSF header-bomb class FuzzLoad hunts
//	           dynamically.
//	stagenames stage/metric name literals passed to obs traces and
//	           metrics histograms must belong to the approved taxonomy
//	           that serve.BenchReport.Check gates.
//	errwrap    fmt.Errorf with an error operand must use %w so callers
//	           can errors.Is/As through the wrap.
//
// The driver (cmd/raglint, `make lint`) loads every package of the
// module, type-checks it (module-internal imports are resolved from
// source by the loader itself; standard-library imports through the
// go/importer source importer), runs the analyzers over the typed ASTs
// and prints one "file:line: analyzer: message" diagnostic per finding,
// exiting non-zero if any survive suppression. A finding is suppressed by
// a directive on the same line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// Analyzers are deliberately heuristic where full soundness would need
// whole-program analysis (lockheld and allocbound are per-function,
// source-ordered approximations) — they are tuned to the idioms this
// repo actually uses, and their fixtures under testdata/ are the
// contract for what each one catches.
package lint
