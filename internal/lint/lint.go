package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding: where, which analyzer, and what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the driver's one-line format. File
// paths print as given (the driver relativises them to the module root).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one rule: a name (the suppression key), a one-line
// description of the invariant it encodes, and the pass over a typed
// package. Run reports findings through report; suppression and position
// bookkeeping happen in the runner.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package, report func(pos token.Pos, msg string))
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerNoSleep,
		analyzerCtxHTTP,
		analyzerLockHeld,
		analyzerNilRecv,
		analyzerAllocBound,
		analyzerStageNames,
		analyzerErrWrap,
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list (empty list selects all).
func Select(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // names listed in the directive
	malformed bool
}

// suppressionIndex maps file → line → directive. A directive suppresses
// findings on its own line and on the line directly below it (the
// "comment above the offending statement" idiom).
type suppressionIndex map[string]map[int]*ignoreDirective

const ignorePrefix = "//lint:ignore"

func buildSuppressions(p *Package) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				fields := strings.Fields(rest)
				d := &ignoreDirective{analyzers: make(map[string]bool)}
				// The directive needs an analyzer list and a non-empty
				// reason; anything less is itself a finding.
				if len(fields) < 2 {
					d.malformed = true
				} else {
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
				}
				pos := p.Fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]*ignoreDirective)
				}
				idx[pos.Filename][pos.Line] = d
			}
		}
	}
	return idx
}

// suppressed reports whether a finding by analyzer at pos is covered by a
// well-formed directive on the same line or the line above.
func (idx suppressionIndex) suppressed(analyzer string, pos token.Position) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d := lines[line]; d != nil && !d.malformed && d.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every package and returns the surviving
// diagnostics sorted by position. Malformed //lint:ignore directives are
// reported under the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		idx := buildSuppressions(p)
		for file, lines := range idx {
			for line, d := range lines {
				if d.malformed {
					out = append(out, Diagnostic{
						Pos:      token.Position{Filename: file, Line: line},
						Analyzer: "lint",
						Message:  "malformed " + ignorePrefix + " directive (want " + ignorePrefix + " <analyzer> <reason>)",
					})
				}
			}
		}
		for _, a := range analyzers {
			a := a
			a.Run(p, func(pos token.Pos, msg string) {
				position := p.Fset.Position(pos)
				if idx.suppressed(a.Name, position) {
					return
				}
				out = append(out, Diagnostic{Pos: position, Analyzer: a.Name, Message: msg})
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Relativize rewrites diagnostic file paths relative to root (for stable
// driver output and golden files).
func Relativize(diags []Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// --- shared resolution helpers ---------------------------------------

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.Info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name. It resolves through go/types, so aliased imports and
// shadowed identifiers are handled.
func isPkgFunc(p *Package, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(p, call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Type().(*types.Signature).Recv() == nil
}

// recvTypeName returns the named type a method call's receiver resolves
// to ("" for non-methods), ignoring pointers.
func recvTypeName(p *Package, call *ast.CallExpr) string {
	f := calleeFunc(p, call)
	if f == nil {
		return ""
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// stringLits collects every string literal in the expression tree, in
// source order — how the analyzers see through `prefix + "stage.scan"`.
func stringLits(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				out = append(out, s)
			}
		}
		return true
	})
	return out
}
