package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// nosleep: a bare time.Sleep cannot be interrupted, so a closing server
// or a departed client rides out the full wait — the argo
// Close-vs-backoff hang, fixed by routing every delay through the
// ctx-abortable retry.Sleep. Non-test code must not call time.Sleep.
var analyzerNoSleep = &Analyzer{
	Name: "nosleep",
	Doc:  "bare time.Sleep in non-test code must go through the ctx-abortable retry.Sleep",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		// retry.Sleep itself is the sanctioned implementation site.
		if p.Name == "retry" {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(p, call, "time", "Sleep") {
					report(call.Pos(), "bare time.Sleep cannot be cancelled; use retry.Sleep(ctx, d)")
				}
				return true
			})
		}
	},
}

// ctxhttp: the router→shard deadline chain only works because every
// outbound request carries the caller's context. Requests built without
// one (http.NewRequest, or the convenience Get/Post/Head helpers on the
// package or on http.Client) silently drop the deadline.
var analyzerCtxHTTP = &Analyzer{
	Name: "ctxhttp",
	Doc:  "outbound HTTP requests must be built with http.NewRequestWithContext",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		helpers := map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
					return true
				}
				recv := fn.Type().(*types.Signature).Recv()
				switch {
				case recv == nil && fn.Name() == "NewRequest":
					report(call.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext")
				case recv == nil && helpers[fn.Name()]:
					report(call.Pos(), "http."+fn.Name()+" cannot carry a context; build the request with http.NewRequestWithContext")
				case recv != nil && helpers[fn.Name()] && recvTypeName(p, call) == "Client":
					report(call.Pos(), "http.Client."+fn.Name()+" cannot carry a context; build the request with http.NewRequestWithContext and use Do")
				}
				return true
			})
		}
	},
}

// errwrap: fmt.Errorf must wrap error operands with %w, or callers
// cannot errors.Is/As through load/search/scatter failures. Go ≥1.20
// allows multiple %w verbs, so "%w: %v" chains have no excuse left.
var analyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand must use %w",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isPkgFunc(p, call, "fmt", "Errorf") || len(call.Args) < 2 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true // dynamic format string: nothing to check
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				verbs, ok := formatVerbs(format)
				if !ok {
					return true // explicit argument indexes etc.: skip
				}
				for i, arg := range call.Args[1:] {
					if i >= len(verbs) {
						break
					}
					t := p.Info.Types[arg].Type
					if t == nil || !types.Implements(t, errIface) {
						continue
					}
					if verbs[i] != 'w' {
						report(arg.Pos(), fmt.Sprintf(
							"error operand formatted with %%%c; use %%w so errors.Is/As see the cause", verbs[i]))
					}
				}
				return true
			})
		}
	},
}

// formatVerbs returns the verb consuming each successive operand of a
// Printf-style format string. It handles flags, width and precision
// (including '*', which consumes an operand of its own) and reports
// !ok on explicit argument indexes ('%[1]d'), which break the simple
// positional mapping.
func formatVerbs(format string) (verbs []rune, ok bool) {
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			break
		}
		switch c := rune(format[i]); c {
		case '%':
			// literal percent: consumes nothing
		case '[':
			return nil, false
		default:
			verbs = append(verbs, c)
		}
		i++
	}
	return verbs, true
}
