package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestFixtures runs each analyzer over its fixture package and compares
// the diagnostics against the golden file. Every fixture contains at
// least one positive finding and one //lint:ignore-suppressed site, so
// the goldens pin both the detection and the suppression paths.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			testdata, err := filepath.Abs("testdata")
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(testdata, "src", a.Name)
			pkg, err := LoadFixture(dir)
			if err != nil {
				t.Fatalf("LoadFixture(%s): %v", dir, err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("fixture should type-check cleanly: %v", terr)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			Relativize(diags, testdata)
			var lines []string
			for _, d := range diags {
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}

			golden := filepath.Join(testdata, a.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixturesSuppressBothPlacements double-checks the two sanctioned
// directive placements (same line, line above) on the nosleep fixture:
// no surviving diagnostic may land on a line adjacent to a well-formed
// ignore directive for its own analyzer.
func TestFixturesSuppressBothPlacements(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "nosleep"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildSuppressions(pkg)
	for _, d := range Run([]*Package{pkg}, []*Analyzer{analyzerNoSleep}) {
		if idx.suppressed(d.Analyzer, d.Pos) {
			t.Errorf("suppressed finding survived: %s", d)
		}
	}
}

// TestMalformedDirectiveReported pins the pseudo-analyzer path: a
// directive with no reason is itself a finding AND does not suppress.
func TestMalformedDirectiveReported(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "nosleep"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{analyzerNoSleep})
	var sawMalformed, sawUnsuppressed bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
		// The sleep under the malformed directive must still be reported.
		if d.Analyzer == "nosleep" && d.Pos.Line == malformedSleepLine(t, dir) {
			sawUnsuppressed = true
		}
	}
	if !sawMalformed {
		t.Error("malformed //lint:ignore directive was not reported")
	}
	if !sawUnsuppressed {
		t.Error("finding under a malformed directive was suppressed; malformed directives must not suppress")
	}
}

// malformedSleepLine locates the sleep call guarded by the malformed
// directive in the nosleep fixture, so the test doesn't hard-code a line
// number that drifts when the fixture is edited.
func malformedSleepLine(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "nosleep.go"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "//lint:ignore nosleep" && i+1 < len(lines) {
			return i + 2 // 1-based line of the statement below the directive
		}
	}
	t.Fatal("malformed directive not found in nosleep fixture")
	return 0
}

// TestSelect covers the driver's -analyzers flag parsing.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := Select("nosleep, errwrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "nosleep" || two[1].Name != "errwrap" {
		t.Errorf("Select(\"nosleep, errwrap\") = %v", two)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Error("Select(\"nosuch\") should fail")
	}
}

// TestStageTaxonomyCoversBenchSchema pins the subset relation between
// the bench schema's sampled stages and the analyzer's taxonomy: every
// stage BenchReport.Check requires must be a name the stagenames
// analyzer accepts, or a schema extension would be un-lintable.
func TestStageTaxonomyCoversBenchSchema(t *testing.T) {
	for _, s := range serve.StageNames {
		if !stageTaxonomy[s] {
			t.Errorf("serve.StageNames stage %q missing from lint stageTaxonomy", s)
		}
	}
}

// TestRepoIsLintClean runs the full analyzer suite over this module
// in-process, so `go test ./...` alone catches invariant regressions
// even where `make lint` isn't wired in.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped in -short mode")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := Run(m.Packages(), All())
	Relativize(diags, m.Root)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); the tree must stay raglint-clean (fix the code or add a reasoned //lint:ignore)", len(diags))
	}
}
