package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allocbound: the VSF header-bomb class — a 40-byte file whose decoded
// count field claims 2^31 rows must fail validation, not drive a
// multi-gigabyte make(). FuzzLoad hunts this dynamically; the analyzer
// pins it structurally in vecstore persist/load code: any make() whose
// size expression mentions a header-decoded integer (read via
// binary.Read / binary.<Endian>.Uint*) must be preceded, in source
// order, by a guard — an if statement that mentions the decoded value
// (or a value derived from it, e.g. a running total) and exits via
// return or panic. The analysis is per-function: values passed onward as
// parameters are the caller's responsibility, which matches the repo's
// openSized byte-budget discipline where each reader validates what it
// decodes.
var analyzerAllocBound = &Analyzer{
	Name: "allocbound",
	Doc:  "make() sizes derived from decoded header integers must be validated first",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		if p.Name != "vecstore" {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkAllocBound(p, fd, report)
			}
		}
	},
}

// allocEvent is one source-ordered fact the scan replays: a variable
// becoming header-tainted, an assignment propagating taint, a guard
// clearing it, or a make() consuming it.
type allocEvent struct {
	pos  token.Pos
	kind int // taintEv, assignEv, guardEv, makeEv
	// taintEv: names[0] is the decoded variable.
	// assignEv: names are LHS idents, deps the RHS idents.
	// guardEv: names are the idents the exiting if-condition mentions.
	// makeEv: names are the idents in the size/cap expressions.
	names []string
	deps  []string
	node  ast.Node
}

const (
	taintEv = iota
	assignEv
	guardEv
	makeEv
)

func checkAllocBound(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, msg string)) {
	events := collectAllocEvents(p, fd)
	if len(events) == 0 {
		return
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// roots maps a variable to the set of decoded header variables it
	// (transitively) carries; guarded marks roots that a validating
	// branch has covered.
	roots := make(map[string]map[string]bool)
	guarded := make(map[string]bool)
	addRoot := func(v, root string) {
		if roots[v] == nil {
			roots[v] = make(map[string]bool)
		}
		roots[v][root] = true
	}
	for _, ev := range events {
		switch ev.kind {
		case taintEv:
			addRoot(ev.names[0], ev.names[0])
		case assignEv:
			for _, dep := range ev.deps {
				for root := range roots[dep] {
					for _, lhs := range ev.names {
						addRoot(lhs, root)
					}
				}
			}
		case guardEv:
			for _, n := range ev.names {
				for root := range roots[n] {
					guarded[root] = true
				}
			}
		case makeEv:
			for _, n := range ev.names {
				for root := range roots[n] {
					if !guarded[root] {
						report(ev.pos, "allocation sized by header-decoded "+quoted(root)+
							" without a preceding bounds check (VSF header-bomb class)")
					}
				}
			}
		}
	}
}

// collectAllocEvents walks the function body once, recording decode,
// assignment, guard and make events with their positions.
func collectAllocEvents(p *Package, fd *ast.FuncDecl) []allocEvent {
	var events []allocEvent
	usesBinaryRead := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(p, call, "encoding/binary", "Read") {
			usesBinaryRead = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			// &x in a function that calls binary.Read: x is decoded from
			// the stream (covers both direct binary.Read(r, le, &x) and
			// the []*uint32{&a, &b} loop idiom).
			if usesBinaryRead && v.Op == token.AND {
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					events = append(events, allocEvent{pos: v.Pos(), kind: taintEv, names: []string{id.Name}})
				}
			}
		case *ast.AssignStmt:
			events = append(events, assignEvent(p, v))
		case *ast.IfStmt:
			// The guard event anchors at the body, not the `if` keyword,
			// so an init statement (`if need := ...; need > remain`) is
			// replayed before the guard it feeds.
			if exitsOnError(v.Body) {
				events = append(events, allocEvent{pos: v.Body.Pos(), kind: guardEv, names: identNames(v.Cond)})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" && len(v.Args) >= 2 {
				var names []string
				for _, arg := range v.Args[1:] {
					names = append(names, identNames(arg)...)
				}
				events = append(events, allocEvent{pos: v.Pos(), kind: makeEv, names: names})
			} else if decodesInt(p, v) {
				// binary.LittleEndian.Uint32(buf) and friends taint the
				// variable the enclosing assignment binds; handled via
				// assignEvent deps by tainting a synthetic name keyed on
				// the call — simplest is to mark the direct assignment.
				if names := assignTargets(fd, v); len(names) > 0 {
					for _, name := range names {
						events = append(events, allocEvent{pos: v.Pos(), kind: taintEv, names: []string{name}})
					}
				}
			}
		}
		return true
	})
	return events
}

// assignEvent turns an assignment into a propagation event: every LHS
// ident inherits the taint roots of every RHS ident. Compound assignment
// (+=) keeps the LHS as its own dependency implicitly because its roots
// are unioned, never replaced.
func assignEvent(p *Package, as *ast.AssignStmt) allocEvent {
	ev := allocEvent{pos: as.Pos(), kind: assignEv}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			ev.names = append(ev.names, id.Name)
		}
	}
	for _, rhs := range as.Rhs {
		ev.deps = append(ev.deps, identNames(rhs)...)
	}
	return ev
}

// assignTargets finds the idents an expression is directly assigned to
// anywhere in the function (`id := binary.LittleEndian.Uint32(b)`).
func assignTargets(fd *ast.FuncDecl, target ast.Expr) []string {
	var out []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if containsNode(rhs, target) && i < len(as.Lhs) {
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					out = append(out, id.Name)
				}
			}
		}
		return true
	})
	return out
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// decodesInt matches binary.<Endian>.Uint16/32/64 — the manual header
// decode path.
func decodesInt(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Uint")
}

// exitsOnError reports whether a block unconditionally leaves the
// function (return or panic as its last statement) — the shape of a
// validation branch.
func exitsOnError(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func identNames(e ast.Expr) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}
