package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// lockheld: the serving stack's locks (coalescer mu, cache shard mu,
// per-route writeMu, vecstore memtable RWMutex) bound O(µs) critical
// sections. A channel operation, sleep or network call while one is held
// turns a mutex into a convoy — or a deadlock, when the channel's other
// end needs the same lock. The analyzer walks each function linearly:
// between `x.Lock()` (or RLock) and the matching unlock on the same
// expression it flags channel sends/receives, selects without a default
// clause (a select WITH default is a non-blocking poll and is allowed),
// time.Sleep / retry.Sleep / retry-policy Do calls, and net or net/http
// calls. `defer x.Unlock()` holds to function end. Two idioms are
// recognised as safe: function literals are not descended into (a
// goroutine body does not hold the caller's lock), and a select every
// arm of which opens by releasing the lock is treated as the lock's
// release point — the coalescer's close-vs-enqueue handoff, where the
// read lock must be held across the enqueue attempt and is dropped on
// every path out.
var analyzerLockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no channel ops, sleeps or network calls while a mutex is held",
	Run: func(p *Package, report func(pos token.Pos, msg string)) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockBlock(p, fd.Body.List, map[string]bool{}, report)
			}
		}
	},
}

// checkLockBlock scans one statement list with the set of lock
// expressions held on entry. Nested blocks get a copy, so a lock taken
// inside a branch is only considered held within it.
func checkLockBlock(p *Package, stmts []ast.Stmt, held map[string]bool, report func(pos token.Pos, msg string)) {
	held = copySet(held)
	for _, s := range stmts {
		if recv, kind, ok := lockCall(p, s); ok {
			switch kind {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		if def, ok := s.(*ast.DeferStmt); ok {
			// `defer x.Unlock()` keeps x held for the rest of the scan —
			// exactly the region the invariant covers.
			if _, _, ok := lockCallExpr(p, def.Call); ok {
				continue
			}
		}
		if sel, ok := s.(*ast.SelectStmt); ok {
			// The coalescer's close-vs-enqueue handoff: a select every
			// arm of which opens by releasing lock L is L's sanctioned
			// release point — the lock is gone on every path out.
			for _, l := range selectReleases(p, sel, held) {
				delete(held, l)
			}
			if len(held) > 0 && !hasDefaultClause(sel) {
				report(sel.Pos(), "blocking select while "+anyKey(held)+" is held")
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkLockBlock(p, cc.Body, held, report)
				}
			}
			continue
		}
		if len(held) > 0 {
			flagBlockingOps(p, s, held, report)
		}
		// Descend into compound statements so the held set survives into
		// loop and branch bodies.
		switch st := s.(type) {
		case *ast.BlockStmt:
			checkLockBlock(p, st.List, held, report)
		case *ast.IfStmt:
			checkLockBlock(p, st.Body.List, held, report)
			if st.Else != nil {
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					checkLockBlock(p, e.List, held, report)
				case *ast.IfStmt:
					checkLockBlock(p, []ast.Stmt{e}, held, report)
				}
			}
		case *ast.ForStmt:
			checkLockBlock(p, st.Body.List, held, report)
		case *ast.RangeStmt:
			checkLockBlock(p, st.Body.List, held, report)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlock(p, cc.Body, held, report)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlock(p, cc.Body, held, report)
				}
			}
		}
	}
}

// selectReleases returns the held locks that every comm clause of sel
// releases as its first statement.
func selectReleases(p *Package, sel *ast.SelectStmt, held map[string]bool) []string {
	var out []string
	for l := range held {
		releasedByAll := len(sel.Body.List) > 0
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || len(cc.Body) == 0 {
				releasedByAll = false
				break
			}
			recv, kind, ok := lockCall(p, cc.Body[0])
			if !ok || recv != l || (kind != "Unlock" && kind != "RUnlock") {
				releasedByAll = false
				break
			}
		}
		if releasedByAll {
			out = append(out, l)
		}
	}
	return out
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lockCall matches a statement of the form `expr.Lock()` etc. and
// returns the lock expression's source text as identity.
func lockCall(p *Package, s ast.Stmt) (recv, kind string, ok bool) {
	es, isExpr := s.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return lockCallExpr(p, call)
}

func lockCallExpr(p *Package, call *ast.CallExpr) (recv, kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	return exprString(p.Fset, sel.X), sel.Sel.Name, true
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	printer.Fprint(&b, fset, e)
	return b.String()
}

// flagBlockingOps reports channel ops, sleeps and network calls inside
// one statement (not descending into nested statement lists — the block
// scanner owns those — nor into function literals).
func flagBlockingOps(p *Package, s ast.Stmt, held map[string]bool, report func(pos token.Pos, msg string)) {
	lock := anyKey(held)
	ast.Inspect(s, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			// Nested lists are scanned by checkLockBlock with proper
			// lock tracking; only look at this statement's own exprs.
			return false
		case *ast.SelectStmt:
			return false // selects are handled by checkLockBlock
		case *ast.SendStmt:
			report(v.Pos(), "channel send while "+lock+" is held")
			return true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "channel receive while "+lock+" is held")
			}
			return true
		case *ast.CallExpr:
			flagBlockingCall(p, v, lock, report)
			return true
		}
		return true
	})
}

func flagBlockingCall(p *Package, call *ast.CallExpr, lock string, report func(pos token.Pos, msg string)) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		report(call.Pos(), "time.Sleep while "+lock+" is held")
	case strings.HasSuffix(path, "internal/retry") && (name == "Sleep" || name == "Do"):
		report(call.Pos(), "retry."+name+" (backoff sleep) while "+lock+" is held")
	case path == "net/http" || path == "net":
		report(call.Pos(), path+"."+name+" network call while "+lock+" is held")
	}
}

func anyKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
