// Package tokenizer provides word and sentence tokenization, vocabulary
// management, and token-budget accounting.
//
// The paper's pipeline must respect the small context windows of its
// evaluated models (2,048 tokens for OLMo-7B and TinyLlama up to 128K for
// Gemma 3); semantic chunking and RAG prompt assembly both count tokens
// through this package. Tokenization is whitespace/punctuation based with a
// deterministic subword fallback so counts are stable across runs.
package tokenizer

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit with its normalized form.
type Token struct {
	Text string // original surface form
	Norm string // lowercased normalized form used for hashing/matching
}

// Tokenize splits text into word tokens. Punctuation characters form their
// own single-rune tokens; alphanumeric runs (including internal hyphens and
// apostrophes, as in "non-small" or "p53's") stay together.
func Tokenize(text string) []Token {
	est := len(text) / 6
	if est < 8 {
		est = 8
	}
	tokens := make([]Token, 0, est)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			t := b.String()
			tokens = append(tokens, Token{Text: t, Norm: strings.ToLower(t)})
			b.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case (r == '-' || r == '\'' || r == '.') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			// Keep intra-word hyphens, apostrophes, and decimal points:
			// "non-small", "p53's", "1.8".
			b.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			tokens = append(tokens, Token{Text: string(r), Norm: string(r)})
		}
	}
	flush()
	return tokens
}

// Words returns just the normalized word forms (no punctuation tokens).
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if len(t.Norm) > 0 && (unicode.IsLetter(rune(t.Norm[0])) || unicode.IsDigit(rune(t.Norm[0]))) {
			out = append(out, t.Norm)
		}
	}
	return out
}

// CountTokens approximates the LLM token count of text. Real BPE tokenizers
// emit roughly 1.3 tokens per English word; we apply the same expansion so
// context-budget math is comparable to the paper's setting.
func CountTokens(text string) int {
	n := len(Tokenize(text))
	return n + n/3
}

// sentenceEnd reports whether the token at position i in toks terminates a
// sentence. It guards against splitting at common scientific abbreviations
// and initials.
var abbreviations = map[string]bool{
	"fig": true, "figs": true, "eq": true, "eqs": true, "ref": true,
	"refs": true, "et": true, "al": true, "e.g": true, "i.e": true,
	"vs": true, "dr": true, "prof": true, "no": true, "vol": true,
	"approx": true, "ca": true, "cf": true, "resp": true,
}

// SplitSentences segments text into sentences. The segmenter is rule-based:
// it splits on '.', '!', '?' followed by whitespace and an uppercase letter
// or digit, except after known abbreviations or single-letter initials.
func SplitSentences(text string) []string {
	var sentences []string
	runes := []rune(text)
	start := 0
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Must be followed by whitespace then uppercase/digit (or EOF).
		j := i + 1
		for j < len(runes) && runes[j] == r {
			j++ // collapse "..." / "?!"
		}
		if j < len(runes) && !unicode.IsSpace(runes[j]) {
			continue
		}
		k := j
		for k < len(runes) && unicode.IsSpace(runes[k]) {
			k++
		}
		if k < len(runes) && !unicode.IsUpper(runes[k]) && !unicode.IsDigit(runes[k]) {
			continue
		}
		if r == '.' {
			// Check the word preceding the period.
			w := lastWord(runes[start:i])
			if abbreviations[strings.ToLower(w)] || len(w) == 1 {
				continue
			}
		}
		s := strings.TrimSpace(string(runes[start:j]))
		if s != "" {
			sentences = append(sentences, s)
		}
		start = k
		i = k - 1
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		sentences = append(sentences, tail)
	}
	return sentences
}

func lastWord(runes []rune) string {
	end := len(runes)
	for end > 0 && unicode.IsSpace(runes[end-1]) {
		end--
	}
	start := end
	for start > 0 && (unicode.IsLetter(runes[start-1]) || runes[start-1] == '.') {
		start--
	}
	return string(runes[start:end])
}

// NGrams returns the character n-grams of a word padded with boundary
// markers, the feature unit of the hashing embedder in internal/embed.
func NGrams(word string, n int) []string {
	padded := "^" + word + "$"
	runes := []rune(padded)
	if len(runes) < n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// Vocab is a bidirectional string↔id mapping with frequency counts. It is
// not safe for concurrent mutation; build once, then share read-only.
type Vocab struct {
	ids   map[string]int
	words []string
	count []int
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int)}
}

// Add inserts word (or bumps its count) and returns its id.
func (v *Vocab) Add(word string) int {
	if id, ok := v.ids[word]; ok {
		v.count[id]++
		return id
	}
	id := len(v.words)
	v.ids[word] = id
	v.words = append(v.words, word)
	v.count = append(v.count, 1)
	return id
}

// ID returns the id of word and whether it is present.
func (v *Vocab) ID(word string) (int, bool) {
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the surface form for id.
func (v *Vocab) Word(id int) string { return v.words[id] }

// Count returns the observed frequency of id.
func (v *Vocab) Count(id int) int { return v.count[id] }

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.words) }

// Truncate fits text within maxTokens (approximate LLM tokens), cutting at a
// word boundary. It returns text unchanged when it already fits. RAG prompt
// assembly uses this to respect each model's context window.
func Truncate(text string, maxTokens int) string {
	if CountTokens(text) <= maxTokens {
		return text
	}
	// Binary search the longest word-prefix that fits.
	words := strings.Fields(text)
	lo, hi := 0, len(words)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if CountTokens(strings.Join(words[:mid], " ")) <= maxTokens {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return strings.Join(words[:lo], " ")
}
