package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Radiation induces DNA damage.")
	want := []string{"Radiation", "induces", "DNA", "damage", "."}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[0].Norm != "radiation" {
		t.Errorf("norm = %q", toks[0].Norm)
	}
}

func TestTokenizeHyphensAndDecimals(t *testing.T) {
	toks := Tokenize("non-small cell dose of 1.8 Gy in p53's pathway")
	words := map[string]bool{}
	for _, tok := range toks {
		words[tok.Text] = true
	}
	for _, w := range []string{"non-small", "1.8", "p53's"} {
		if !words[w] {
			t.Errorf("expected intact token %q in %v", w, toks)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input gave %v", got)
	}
	if got := Tokenize("   \n\t "); len(got) != 0 {
		t.Fatalf("whitespace input gave %v", got)
	}
}

func TestTokenizePunctuationSeparate(t *testing.T) {
	toks := Tokenize("(p53, ATM)")
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := []string{"(", "p53", ",", "ATM", ")"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", texts, want)
	}
}

func TestWordsExcludePunctuation(t *testing.T) {
	w := Words("Hello, world!")
	if len(w) != 2 || w[0] != "hello" || w[1] != "world" {
		t.Fatalf("Words = %v", w)
	}
}

func TestCountTokensExpansion(t *testing.T) {
	n := CountTokens("one two three four five six")
	// 6 words -> 6 + 2 = 8 approximate LLM tokens.
	if n != 8 {
		t.Fatalf("CountTokens = %d, want 8", n)
	}
	if CountTokens("") != 0 {
		t.Fatal("empty text should count 0 tokens")
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	s := SplitSentences("Radiation damages DNA. Repair pathways respond quickly! Does apoptosis follow? Yes.")
	if len(s) != 4 {
		t.Fatalf("got %d sentences: %v", len(s), s)
	}
	if !strings.HasPrefix(s[0], "Radiation") || !strings.HasSuffix(s[0], ".") {
		t.Errorf("sentence 0 = %q", s[0])
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	s := SplitSentences("See Fig. 3 for details. As shown by Smith et al. The effect is large.")
	// "Fig. 3" must not split; "et al." must not split.
	if len(s) != 2 {
		t.Fatalf("got %d sentences: %v", len(s), s)
	}
}

func TestSplitSentencesInitials(t *testing.T) {
	s := SplitSentences("J. Smith measured the dose. The result was clear.")
	if len(s) != 2 {
		t.Fatalf("initials split wrongly: %v", s)
	}
}

func TestSplitSentencesDecimalsIntact(t *testing.T) {
	s := SplitSentences("The dose was 1.8 Gy per fraction. Treatment lasted weeks.")
	if len(s) != 2 {
		t.Fatalf("decimal split wrongly: %v", s)
	}
	if !strings.Contains(s[0], "1.8") {
		t.Fatalf("decimal mangled: %q", s[0])
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	s := SplitSentences("a fragment without terminal punctuation")
	if len(s) != 1 {
		t.Fatalf("got %v", s)
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if s := SplitSentences(""); len(s) != 0 {
		t.Fatalf("got %v", s)
	}
}

func TestSplitSentencesEllipsis(t *testing.T) {
	s := SplitSentences("It grew... Then it stopped.")
	if len(s) != 2 {
		t.Fatalf("ellipsis handling: %v", s)
	}
}

// Property: concatenated sentences preserve all non-space characters of the
// input (segmentation must not lose text).
func TestQuickSentencesPreserveText(t *testing.T) {
	strip := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == '\t' {
				return -1
			}
			return r
		}, s)
	}
	inputs := []string{
		"Alpha beta. Gamma delta! Epsilon?",
		"One. Two. Three.",
		"No split here",
		"Mixed 1.5 Gy dose. Next sentence.",
	}
	for _, in := range inputs {
		got := strip(strings.Join(SplitSentences(in), ""))
		if got != strip(in) {
			t.Fatalf("text lost: %q -> %q", strip(in), got)
		}
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("dna", 3)
	want := []string{"^dn", "dna", "na$"}
	if len(g) != len(want) {
		t.Fatalf("NGrams = %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("NGrams = %v, want %v", g, want)
		}
	}
}

func TestNGramsShortWord(t *testing.T) {
	g := NGrams("a", 5)
	if len(g) != 1 || g[0] != "^a$" {
		t.Fatalf("NGrams short = %v", g)
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	id1 := v.Add("dose")
	id2 := v.Add("fraction")
	id3 := v.Add("dose")
	if id1 != id3 {
		t.Fatal("re-adding gave new id")
	}
	if id1 == id2 {
		t.Fatal("distinct words share id")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Count(id1) != 2 {
		t.Fatalf("Count = %d", v.Count(id1))
	}
	if v.Word(id2) != "fraction" {
		t.Fatalf("Word = %q", v.Word(id2))
	}
	if _, ok := v.ID("absent"); ok {
		t.Fatal("found absent word")
	}
}

func TestTruncateFits(t *testing.T) {
	text := "short text"
	if got := Truncate(text, 100); got != text {
		t.Fatalf("Truncate modified fitting text: %q", got)
	}
}

func TestTruncateCuts(t *testing.T) {
	words := make([]string, 100)
	for i := range words {
		words[i] = "word"
	}
	text := strings.Join(words, " ")
	got := Truncate(text, 40)
	if CountTokens(got) > 40 {
		t.Fatalf("truncated text still %d tokens", CountTokens(got))
	}
	if len(got) == 0 {
		t.Fatal("truncated to nothing")
	}
	if !strings.HasPrefix(text, got) {
		t.Fatal("truncation is not a prefix")
	}
}

// Property: Truncate never exceeds the budget and always returns a prefix.
func TestQuickTruncate(t *testing.T) {
	f := func(nWords uint8, budget uint8) bool {
		n := int(nWords%80) + 1
		b := int(budget%60) + 1
		text := strings.Repeat("alpha ", n)
		text = strings.TrimSpace(text)
		got := Truncate(text, b)
		return CountTokens(got) <= b && strings.HasPrefix(text, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("Ionizing radiation induces double-strand breaks in tumor DNA. ", 50)
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = Tokenize(text)
	}
}

func BenchmarkSplitSentences(b *testing.B) {
	text := strings.Repeat("Ionizing radiation induces breaks. Repair follows quickly. ", 50)
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = SplitSentences(text)
	}
}
