package corpus

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// DocKind distinguishes full-text papers from abstract-only records, the two
// document classes the paper's Semantic Scholar download produced (14,115
// full texts, 8,433 abstracts).
type DocKind int

const (
	// FullPaper is a multi-section article.
	FullPaper DocKind = iota
	// AbstractOnly is a title + abstract record.
	AbstractOnly
)

// Section is one titled block of paragraphs.
type Section struct {
	Title      string
	Paragraphs []string
}

// Document is a synthetic scientific article with ground-truth fact
// provenance: FactSpans records which facts each section's text realises.
type Document struct {
	ID       string
	Kind     DocKind
	Title    string
	Authors  []string
	Year     int
	Topic    int
	Abstract string
	Sections []Section
	// Facts lists every FactID whose sentence appears in the document, in
	// order of first appearance. This is the ground truth used to score
	// retrieval quality downstream.
	Facts []FactID
}

// Text renders the full plain text of the document in reading order.
func (d *Document) Text() string {
	var b strings.Builder
	b.WriteString(d.Title)
	b.WriteString("\n\n")
	b.WriteString("Abstract. ")
	b.WriteString(d.Abstract)
	b.WriteString("\n\n")
	for _, s := range d.Sections {
		b.WriteString(s.Title)
		b.WriteString("\n")
		for _, p := range s.Paragraphs {
			b.WriteString(p)
			b.WriteString("\n\n")
		}
	}
	return b.String()
}

// Generator samples documents from a knowledge base. Topic popularity is
// Zipf-distributed, mirroring the skew of real keyword-query corpora.
type Generator struct {
	KB   *KB
	zipf *rng.Zipf
	root *rng.Source
}

// NewGenerator returns a deterministic document generator.
func NewGenerator(kb *KB, seed uint64) *Generator {
	return &Generator{
		KB:   kb,
		zipf: rng.NewZipf(len(kb.Topics), 0.9),
		root: rng.New(seed).Split("docs"),
	}
}

var (
	surnames = []string{
		"Chen", "Martinez", "Okafor", "Schmidt", "Tanaka", "Kowalski",
		"Rossi", "Novak", "Petrov", "Kim", "Gupta", "Haddad", "Larsen",
		"Moreau", "Silva", "Yilmaz", "Janssen", "OBrien", "Costa", "Weber",
	}
	titleTemplates = []string{
		"%s in %s: implications for %s",
		"The role of %s in %s",
		"Targeting %s to modulate %s in %s",
		"%s and %s: a mechanistic study",
		"Modulation of %s by %s in preclinical models of %s",
	}
	fillerSentences = []string{
		"These findings were consistent across all replicates examined.",
		"Further validation in independent cohorts remains warranted.",
		"The experimental design followed established institutional protocols.",
		"Statistical significance was assessed with two-sided tests at alpha 0.05.",
		"Prior reports have described broadly concordant observations.",
		"Taken together, the data support a coherent mechanistic model.",
		"Limitations include sample size and single-institution accrual.",
		"The assay conditions were optimized in pilot experiments.",
		"Dose-response relationships were examined across the tested range.",
		"These observations motivate prospective clinical evaluation.",
	}
	sectionTitles = []string{"1 Introduction", "2 Materials and Methods", "3 Results", "4 Discussion", "5 Conclusions"}
)

// GenerateDoc produces the idx-th document of the given kind. The same
// (kb, seed, kind, idx) always yields an identical document.
func (g *Generator) GenerateDoc(kind DocKind, idx int) *Document {
	r := g.root.SplitN(fmt.Sprintf("doc-%d", kind), idx)
	topicIdx := g.zipf.Sample(r)
	topic := g.KB.Topics[topicIdx]

	// Sample this document's facts: mostly from its topic, a few from a
	// random other topic (papers cite across subfields).
	nFacts := 4 + r.Intn(6)
	if kind == AbstractOnly {
		nFacts = 2 + r.Intn(2)
	}
	var facts []*Fact
	seen := map[FactID]bool{}
	for len(facts) < nFacts {
		src := topic
		if r.Bool(0.15) {
			src = g.KB.Topics[r.Intn(len(g.KB.Topics))]
		}
		if len(src.Facts) == 0 {
			continue
		}
		f := src.Facts[r.Intn(len(src.Facts))]
		if !seen[f.ID] {
			seen[f.ID] = true
			facts = append(facts, f)
		}
	}

	doc := &Document{
		ID:    fmt.Sprintf("%s-%06d", kindPrefix(kind), idx),
		Kind:  kind,
		Topic: topicIdx,
		Year:  2015 + r.Intn(10),
	}
	// Title references the first fact's subject/object plus the topic.
	f0 := facts[0]
	tpl := titleTemplates[r.Intn(len(titleTemplates))]
	switch strings.Count(tpl, "%s") {
	case 2:
		doc.Title = fmt.Sprintf(tpl, f0.Subject, topic.Name)
	default:
		doc.Title = fmt.Sprintf(tpl, f0.Subject, topic.Name, f0.Object)
	}
	nAuth := 2 + r.Intn(5)
	for i := 0; i < nAuth; i++ {
		doc.Authors = append(doc.Authors, surnames[r.Intn(len(surnames))])
	}
	for _, f := range facts {
		doc.Facts = append(doc.Facts, f.ID)
	}

	// Abstract: topic framing + the first couple of fact sentences.
	var ab strings.Builder
	fmt.Fprintf(&ab, "We investigated %s in the context of %s. ", f0.Subject, topic.Name)
	for _, f := range facts[:min(2, len(facts))] {
		ab.WriteString(f.Sentence())
		ab.WriteString(" ")
	}
	ab.WriteString(fillerSentences[r.Intn(len(fillerSentences))])
	doc.Abstract = strings.TrimSpace(ab.String())

	if kind == AbstractOnly {
		return doc
	}

	// Full paper: distribute fact sentences across sections, padded with
	// topic-flavoured filler so chunking has realistic material.
	perSection := splitFacts(facts, len(sectionTitles), r)
	for si, title := range sectionTitles {
		sec := Section{Title: title}
		nPara := 1 + r.Intn(3)
		sf := perSection[si]
		for p := 0; p < nPara; p++ {
			var para strings.Builder
			fmt.Fprintf(&para, "In the setting of %s, several observations are salient. ", topic.Name)
			// Fact sentences assigned to this paragraph.
			for fi, f := range sf {
				if fi%nPara == p {
					para.WriteString(f.Sentence())
					para.WriteString(" ")
				}
			}
			nFill := 2 + r.Intn(4)
			for k := 0; k < nFill; k++ {
				para.WriteString(fillerSentences[r.Intn(len(fillerSentences))])
				para.WriteString(" ")
			}
			sec.Paragraphs = append(sec.Paragraphs, strings.TrimSpace(para.String()))
		}
		doc.Sections = append(doc.Sections, sec)
	}
	return doc
}

func splitFacts(facts []*Fact, nSections int, r *rng.Source) [][]*Fact {
	out := make([][]*Fact, nSections)
	for _, f := range facts {
		// Results and Discussion get most facts, as in real papers.
		weights := []float64{1, 0.5, 3, 2, 0.7}
		s := r.Categorical(weights[:nSections])
		out[s] = append(out[s], f)
	}
	return out
}

func kindPrefix(k DocKind) string {
	if k == AbstractOnly {
		return "abs"
	}
	return "paper"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CorpusSpec describes how many documents to generate; the paper's full
// scale is {Papers: 14115, Abstracts: 8433}.
type CorpusSpec struct {
	Papers    int
	Abstracts int
}

// FullScale is the paper's corpus size.
var FullScale = CorpusSpec{Papers: 14115, Abstracts: 8433}

// Scaled returns the spec multiplied by f (minimum one document of each
// kind), used to run the pipeline at reduced cost with identical shape.
func (s CorpusSpec) Scaled(f float64) CorpusSpec {
	p := int(float64(s.Papers) * f)
	a := int(float64(s.Abstracts) * f)
	if p < 1 {
		p = 1
	}
	if a < 1 {
		a = 1
	}
	return CorpusSpec{Papers: p, Abstracts: a}
}

// Total returns the document count.
func (s CorpusSpec) Total() int { return s.Papers + s.Abstracts }

// GenerateAll produces the whole corpus per spec, full papers first then
// abstracts, deterministically.
func (g *Generator) GenerateAll(spec CorpusSpec) []*Document {
	docs := make([]*Document, 0, spec.Total())
	for i := 0; i < spec.Papers; i++ {
		docs = append(docs, g.GenerateDoc(FullPaper, i))
	}
	for i := 0; i < spec.Abstracts; i++ {
		docs = append(docs, g.GenerateDoc(AbstractOnly, i))
	}
	return docs
}
