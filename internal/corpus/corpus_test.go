package corpus

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func testKB(t testing.TB) *KB {
	t.Helper()
	return Build(42, 30)
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(42, 30)
	b := Build(42, 30)
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("fact counts differ: %d vs %d", a.NumFacts(), b.NumFacts())
	}
	fa, fb := a.AllFacts(), b.AllFacts()
	for i := range fa {
		if fa[i].ID != fb[i].ID || fa[i].Sentence() != fb[i].Sentence() {
			t.Fatalf("fact %d differs", i)
		}
	}
}

func TestBuildSeedChangesFacts(t *testing.T) {
	a := Build(1, 30).AllFacts()
	b := Build(2, 30).AllFacts()
	same := 0
	for i := range a {
		if i < len(b) && a[i].Subject == b[i].Subject && a[i].Object == b[i].Object {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical KBs")
	}
}

func TestTopicsPopulated(t *testing.T) {
	kb := testKB(t)
	if len(kb.Topics) != len(topicNames) {
		t.Fatalf("topic count %d", len(kb.Topics))
	}
	for _, topic := range kb.Topics {
		if len(topic.Facts) == 0 {
			t.Fatalf("topic %q has no facts", topic.Name)
		}
		if len(topic.Keywords) == 0 {
			t.Fatalf("topic %q has no keywords", topic.Name)
		}
	}
}

func TestUniqueSubjectRelationPairs(t *testing.T) {
	kb := testKB(t)
	seen := map[string]FactID{}
	for _, f := range kb.AllFacts() {
		key := f.Subject + "|" + string(f.Relation)
		if prev, dup := seen[key]; dup {
			t.Fatalf("duplicate (subject, relation): %q in %s and %s", key, prev, f.ID)
		}
		seen[key] = f.ID
	}
}

func TestFactLookup(t *testing.T) {
	kb := testKB(t)
	f := kb.AllFacts()[0]
	if got := kb.Fact(f.ID); got != f {
		t.Fatal("Fact lookup failed")
	}
	if kb.Fact("fact-nonexistent") != nil {
		t.Fatal("lookup of missing fact returned non-nil")
	}
}

func TestSentenceAndStemNonEmpty(t *testing.T) {
	kb := testKB(t)
	for _, f := range kb.AllFacts() {
		s := f.Sentence()
		if !strings.Contains(s, f.Subject) || !strings.Contains(s, f.Object) {
			t.Fatalf("sentence missing subject/object: %q", s)
		}
		stem := f.QuestionStem()
		if !strings.Contains(stem, f.Subject) {
			t.Fatalf("stem missing subject: %q", stem)
		}
		if strings.Contains(stem, f.Object) {
			t.Fatalf("stem leaks the answer: %q", stem)
		}
		if !strings.HasSuffix(stem, "?") {
			t.Fatalf("stem not a question: %q", stem)
		}
		// Self-containment: no reference to a source text.
		lower := strings.ToLower(stem)
		for _, banned := range []string{"the text", "the passage", "according to the"} {
			if strings.Contains(lower, banned) {
				t.Fatalf("stem references source text: %q", stem)
			}
		}
	}
}

func TestDistractorsValid(t *testing.T) {
	kb := testKB(t)
	r := rng.New(5)
	for _, f := range kb.AllFacts()[:50] {
		d := kb.Distractors(f, 6, r)
		if len(d) == 0 {
			t.Fatalf("no distractors for %s", f.ID)
		}
		seen := map[string]bool{}
		for _, o := range d {
			if o == f.Object {
				t.Fatalf("distractor equals answer for %s", f.ID)
			}
			if seen[o] {
				t.Fatalf("duplicate distractor %q for %s", o, f.ID)
			}
			seen[o] = true
		}
	}
}

func TestDistractorsRespectsN(t *testing.T) {
	kb := testKB(t)
	r := rng.New(6)
	f := kb.AllFacts()[0]
	if d := kb.Distractors(f, 3, r); len(d) > 3 {
		t.Fatalf("asked 3 distractors, got %d", len(d))
	}
}

func TestMathFactsExist(t *testing.T) {
	kb := testKB(t)
	math, nonMath := 0, 0
	for _, f := range kb.AllFacts() {
		if f.Math {
			math++
		} else {
			nonMath++
		}
	}
	if math == 0 || nonMath == 0 {
		t.Fatalf("math split degenerate: %d math, %d non-math", math, nonMath)
	}
}

func TestGenerateDocDeterministic(t *testing.T) {
	kb := testKB(t)
	g1 := NewGenerator(kb, 7)
	g2 := NewGenerator(kb, 7)
	a := g1.GenerateDoc(FullPaper, 3)
	b := g2.GenerateDoc(FullPaper, 3)
	if a.Text() != b.Text() {
		t.Fatal("document generation not deterministic")
	}
	if len(a.Facts) != len(b.Facts) {
		t.Fatal("fact lists differ")
	}
}

func TestGenerateDocDistinct(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	a := g.GenerateDoc(FullPaper, 0)
	b := g.GenerateDoc(FullPaper, 1)
	if a.Text() == b.Text() {
		t.Fatal("consecutive documents identical")
	}
	if a.ID == b.ID {
		t.Fatal("document IDs collide")
	}
}

func TestFullPaperStructure(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	d := g.GenerateDoc(FullPaper, 11)
	if d.Kind != FullPaper {
		t.Fatal("wrong kind")
	}
	if len(d.Sections) != len(sectionTitles) {
		t.Fatalf("sections = %d", len(d.Sections))
	}
	if d.Title == "" || d.Abstract == "" || len(d.Authors) == 0 {
		t.Fatal("missing front matter")
	}
	if d.Year < 2015 || d.Year > 2024 {
		t.Fatalf("year %d out of range", d.Year)
	}
	if len(d.Facts) < 4 {
		t.Fatalf("full paper carries only %d facts", len(d.Facts))
	}
}

func TestAbstractOnlyStructure(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	d := g.GenerateDoc(AbstractOnly, 2)
	if d.Kind != AbstractOnly {
		t.Fatal("wrong kind")
	}
	if len(d.Sections) != 0 {
		t.Fatal("abstract-only doc has sections")
	}
	if len(d.Facts) < 2 {
		t.Fatalf("abstract carries %d facts", len(d.Facts))
	}
	if !strings.HasPrefix(d.ID, "abs-") {
		t.Fatalf("abstract ID %q", d.ID)
	}
}

func TestFactSentencesAppearInText(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	for idx := 0; idx < 20; idx++ {
		d := g.GenerateDoc(FullPaper, idx)
		text := d.Text()
		for _, id := range d.Facts {
			f := kb.Fact(id)
			if f == nil {
				t.Fatalf("doc %s references unknown fact %s", d.ID, id)
			}
			if !strings.Contains(text, f.Sentence()) {
				t.Fatalf("doc %s claims fact %s but sentence absent", d.ID, id)
			}
		}
	}
}

func TestNoDuplicateFactsInDoc(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 9)
	for idx := 0; idx < 30; idx++ {
		d := g.GenerateDoc(FullPaper, idx)
		seen := map[FactID]bool{}
		for _, id := range d.Facts {
			if seen[id] {
				t.Fatalf("doc %s lists fact %s twice", d.ID, id)
			}
			seen[id] = true
		}
	}
}

func TestZipfTopicSkew(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	counts := make([]int, len(kb.Topics))
	for i := 0; i < 2000; i++ {
		counts[g.GenerateDoc(AbstractOnly, i).Topic]++
	}
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 2*min {
		t.Fatalf("topic distribution too flat: max %d min %d", max, min)
	}
}

func TestCorpusSpecScaled(t *testing.T) {
	s := FullScale.Scaled(0.01)
	if s.Papers != 141 || s.Abstracts != 84 {
		t.Fatalf("Scaled(0.01) = %+v", s)
	}
	tiny := FullScale.Scaled(0.000001)
	if tiny.Papers < 1 || tiny.Abstracts < 1 {
		t.Fatalf("Scaled floor violated: %+v", tiny)
	}
	if FullScale.Total() != 22548 {
		t.Fatalf("FullScale total %d, want 22548", FullScale.Total())
	}
}

func TestGenerateAll(t *testing.T) {
	kb := testKB(t)
	g := NewGenerator(kb, 7)
	docs := g.GenerateAll(CorpusSpec{Papers: 5, Abstracts: 3})
	if len(docs) != 8 {
		t.Fatalf("GenerateAll produced %d docs", len(docs))
	}
	full, abs := 0, 0
	ids := map[string]bool{}
	for _, d := range docs {
		if ids[d.ID] {
			t.Fatalf("duplicate doc ID %s", d.ID)
		}
		ids[d.ID] = true
		if d.Kind == FullPaper {
			full++
		} else {
			abs++
		}
	}
	if full != 5 || abs != 3 {
		t.Fatalf("kind counts: %d full, %d abstracts", full, abs)
	}
}

func BenchmarkGenerateDoc(b *testing.B) {
	kb := Build(42, 30)
	g := NewGenerator(kb, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.GenerateDoc(FullPaper, i)
	}
}
