// Package corpus synthesises the scientific corpus the reproduction runs
// on, standing in for the paper's 14,115 full-text papers and 8,433
// abstracts downloaded from Semantic Scholar with radiation and cancer
// biology keywords.
//
// The corpus is built on an explicit domain knowledge base: a set of topics
// in radiation/cancer biology, each holding entities and subject–relation–
// object facts with natural-language realisations. Papers are sampled from
// the knowledge base with Zipf topic popularity, so every sentence that
// carries a fact is traceable to a FactID. That ground truth is what lets
// downstream stages measure — rather than assume — retrieval quality:
// a retrieved chunk either does or does not carry the fact a question was
// generated from.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// FactID uniquely identifies a domain fact.
type FactID string

// Relation is the predicate type of a fact; distractors for a question are
// drawn from sibling facts sharing the relation, which makes them plausible
// (same answer category) but wrong.
type Relation string

// The relation inventory of the knowledge base. Each relation has sentence
// templates in realisations below.
const (
	RelActivates   Relation = "activates"
	RelInhibits    Relation = "inhibits"
	RelCauses      Relation = "causes"
	RelRepairedBy  Relation = "repaired_by"
	RelMarkerOf    Relation = "marker_of"
	RelTreats      Relation = "treats"
	RelSensitizes  Relation = "sensitizes"
	RelProtects    Relation = "protects_against"
	RelMeasuredBy  Relation = "measured_by"
	RelRegulates   Relation = "regulates"
	RelDoseOf      Relation = "typical_dose"
	RelMechanismOf Relation = "mechanism_of"
)

// AllRelations lists every relation in a stable order.
var AllRelations = []Relation{
	RelActivates, RelInhibits, RelCauses, RelRepairedBy, RelMarkerOf,
	RelTreats, RelSensitizes, RelProtects, RelMeasuredBy, RelRegulates,
	RelDoseOf, RelMechanismOf,
}

// Fact is one subject–relation–object triple.
type Fact struct {
	ID       FactID
	Topic    int // index into KB.Topics
	Subject  string
	Relation Relation
	Object   string
	// Requires numeric/mathematical reasoning when asked about (dose
	// calculations, survival-fraction arithmetic). Mirrors the paper's
	// math/no-math split of the Astro exam.
	Math bool
}

// Sentence renders the canonical natural-language realisation of the fact.
func (f *Fact) Sentence() string {
	switch f.Relation {
	case RelActivates:
		return fmt.Sprintf("%s activates %s following radiation exposure.", f.Subject, f.Object)
	case RelInhibits:
		return fmt.Sprintf("%s potently inhibits %s in irradiated tumor cells.", f.Subject, f.Object)
	case RelCauses:
		return fmt.Sprintf("%s is a principal cause of %s.", f.Subject, f.Object)
	case RelRepairedBy:
		return fmt.Sprintf("%s is predominantly repaired by %s.", f.Subject, f.Object)
	case RelMarkerOf:
		return fmt.Sprintf("%s serves as a sensitive marker of %s.", f.Subject, f.Object)
	case RelTreats:
		return fmt.Sprintf("%s is an established treatment for %s.", f.Subject, f.Object)
	case RelSensitizes:
		return fmt.Sprintf("%s sensitizes tumor cells to %s.", f.Subject, f.Object)
	case RelProtects:
		return fmt.Sprintf("%s protects normal tissue against %s.", f.Subject, f.Object)
	case RelMeasuredBy:
		return fmt.Sprintf("%s is most commonly quantified by %s.", f.Subject, f.Object)
	case RelRegulates:
		return fmt.Sprintf("%s tightly regulates %s during the damage response.", f.Subject, f.Object)
	case RelDoseOf:
		return fmt.Sprintf("The typical fractional dose for %s is %s.", f.Subject, f.Object)
	case RelMechanismOf:
		return fmt.Sprintf("The dominant mechanism of %s is %s.", f.Subject, f.Object)
	default:
		return fmt.Sprintf("%s %s %s.", f.Subject, f.Relation, f.Object)
	}
}

// QuestionStem renders the fact as an exam-style question asking for the
// object. Stems never reference "the text", matching the paper's
// self-containment requirement for generated MCQs.
func (f *Fact) QuestionStem() string {
	switch f.Relation {
	case RelActivates:
		return fmt.Sprintf("Which of the following is activated by %s following radiation exposure?", f.Subject)
	case RelInhibits:
		return fmt.Sprintf("Which target is potently inhibited by %s in irradiated tumor cells?", f.Subject)
	case RelCauses:
		return fmt.Sprintf("%s is a principal cause of which of the following?", f.Subject)
	case RelRepairedBy:
		return fmt.Sprintf("By which pathway is %s predominantly repaired?", f.Subject)
	case RelMarkerOf:
		return fmt.Sprintf("%s is a sensitive marker of which process?", f.Subject)
	case RelTreats:
		return fmt.Sprintf("%s is an established treatment for which condition?", f.Subject)
	case RelSensitizes:
		return fmt.Sprintf("%s sensitizes tumor cells to which of the following?", f.Subject)
	case RelProtects:
		return fmt.Sprintf("%s protects normal tissue against which of the following?", f.Subject)
	case RelMeasuredBy:
		return fmt.Sprintf("Which assay is most commonly used to quantify %s?", f.Subject)
	case RelRegulates:
		return fmt.Sprintf("During the damage response, %s tightly regulates which of the following?", f.Subject)
	case RelDoseOf:
		return fmt.Sprintf("What is the typical fractional dose for %s?", f.Subject)
	case RelMechanismOf:
		return fmt.Sprintf("What is the dominant mechanism of %s?", f.Subject)
	default:
		return fmt.Sprintf("What is related to %s via %s?", f.Subject, f.Relation)
	}
}

// Topic groups entities and facts around one research theme.
type Topic struct {
	Name     string
	Keywords []string
	Facts    []*Fact
}

// KB is the domain knowledge base.
type KB struct {
	Topics  []*Topic
	facts   map[FactID]*Fact
	byRel   map[Relation][]*Fact
	objects map[Relation][]string // distinct object strings per relation
}

// Lexical building blocks for the radiation/cancer-biology domain. These
// seed lists are combined combinatorially to yield hundreds of distinct
// entities, so the corpus vocabulary has realistic breadth.
var (
	topicNames = []string{
		"DNA damage response", "radiotherapy fractionation", "tumor hypoxia",
		"cell cycle checkpoints", "apoptosis signaling", "radioprotectors",
		"immunoradiotherapy", "particle therapy", "radiation carcinogenesis",
		"normal tissue toxicity", "DNA repair pathways", "tumor microenvironment",
		"radiosensitizers", "stereotactic radiosurgery", "brachytherapy",
		"radiation dosimetry", "cancer stem cells", "bystander effects",
	}
	geneStems = []string{
		"ATM", "ATR", "CHK1", "CHK2", "TP53", "BRCA1", "BRCA2", "RAD51",
		"KU70", "KU80", "DNA-PKcs", "PARP1", "H2AX", "MDM2", "CDC25",
		"WEE1", "LIG4", "XRCC4", "NBS1", "MRE11", "53BP1", "PTEN", "EGFR",
		"HIF1A", "VEGF", "BAX", "BCL2", "CASP3", "CASP9", "FANCD2",
	}
	processNouns = []string{
		"double-strand break repair", "single-strand annealing",
		"homologous recombination", "non-homologous end joining",
		"nucleotide excision repair", "base excision repair",
		"mismatch repair", "G1/S checkpoint arrest", "G2/M checkpoint arrest",
		"mitotic catastrophe", "replication fork stalling", "senescence induction",
		"autophagy", "ferroptosis", "clonogenic survival", "chromosome aberration formation",
	}
	modalities = []string{
		"conventional fractionated radiotherapy", "hypofractionated radiotherapy",
		"stereotactic body radiotherapy", "proton beam therapy",
		"carbon ion therapy", "intensity-modulated radiotherapy",
		"high-dose-rate brachytherapy", "low-dose-rate brachytherapy",
		"total body irradiation", "FLASH radiotherapy",
	}
	conditions = []string{
		"glioblastoma", "non-small cell lung cancer", "prostate adenocarcinoma",
		"head and neck squamous carcinoma", "cervical carcinoma",
		"hepatocellular carcinoma", "pancreatic ductal adenocarcinoma",
		"early-stage breast cancer", "oropharyngeal cancer", "esophageal cancer",
		"radiation-induced fibrosis", "radiation pneumonitis",
		"acute radiation syndrome", "radiation-induced mucositis",
	}
	assays = []string{
		"the clonogenic survival assay", "gamma-H2AX focus counting",
		"the comet assay", "the micronucleus assay",
		"flow cytometric cell cycle analysis", "western blot quantification",
		"dicentric chromosome scoring", "the TUNEL assay",
		"EPR oximetry", "pimonidazole immunostaining",
	}
	agents = []string{
		"amifostine", "cisplatin", "the PARP inhibitor olaparib",
		"the ATR inhibitor ceralasertib", "the WEE1 inhibitor adavosertib",
		"nimorazole", "misonidazole", "hyperbaric oxygen",
		"the HDAC inhibitor vorinostat", "gemcitabine", "5-fluorouracil",
		"pembrolizumab combined with radiotherapy",
	}
	doses = []string{
		"1.8 Gy", "2.0 Gy", "2.67 Gy", "3.0 Gy", "5.0 Gy",
		"7.25 Gy", "8.0 Gy", "10 Gy", "12 Gy", "18 Gy",
	}
	// Subject modifiers multiply the effective entity space so every topic
	// can mint unique (subject, relation) pairs without ambiguity.
	modifiers = []string{
		"phosphorylated", "nuclear", "overexpressed", "constitutively active",
		"mutant", "wild-type", "stabilized", "hypoxia-induced",
		"radiation-induced", "acetylated", "ubiquitinated", "truncated",
	}
	mechanisms = []string{
		"indirect action via hydroxyl radicals", "direct ionization of DNA",
		"oxygen fixation of free-radical damage", "reoxygenation between fractions",
		"redistribution of cells into sensitive phases", "repopulation of surviving clonogens",
		"sublethal damage repair between fractions", "vascular endothelial apoptosis",
		"immunogenic cell death induction", "abscopal immune activation",
	}
)

// Build constructs the knowledge base deterministically from a seed. The
// number of facts scales with factsPerTopic; Build(seed, 40) yields ~720
// facts across 18 topics, enough to support a full-scale corpus without
// repeating sentences verbatim in every paper.
func Build(seed uint64, factsPerTopic int) *KB {
	if factsPerTopic <= 0 {
		factsPerTopic = 40
	}
	r := rng.New(seed).Split("kb")
	kb := &KB{
		facts:   make(map[FactID]*Fact),
		byRel:   make(map[Relation][]*Fact),
		objects: make(map[Relation][]string),
	}
	// Per-relation (subjects, objects) pools.
	pools := map[Relation][2][]string{
		RelActivates:   {geneStems, geneStems},
		RelInhibits:    {agents, geneStems},
		RelCauses:      {mechanisms, processNouns},
		RelRepairedBy:  {processNouns, processNouns},
		RelMarkerOf:    {geneStems, processNouns},
		RelTreats:      {modalities, conditions},
		RelSensitizes:  {agents, modalities},
		RelProtects:    {agents, conditions},
		RelMeasuredBy:  {processNouns, assays},
		RelRegulates:   {geneStems, processNouns},
		RelDoseOf:      {modalities, doses},
		RelMechanismOf: {processNouns, mechanisms},
	}
	seen := make(map[string]bool)
	for ti, name := range topicNames {
		topic := &Topic{Name: name, Keywords: keywordsFor(name)}
		tr := r.SplitN("topic", ti)
		attempts := 0
		for len(topic.Facts) < factsPerTopic && attempts < factsPerTopic*30 {
			attempts++
			rel := AllRelations[tr.Intn(len(AllRelations))]
			pool := pools[rel]
			subj := pool[0][tr.Intn(len(pool[0]))]
			obj := pool[1][tr.Intn(len(pool[1]))]
			if subj == obj {
				continue
			}
			key := subj + "|" + string(rel)
			// One object per (subject, relation) pair keeps questions
			// uniquely answerable. When a bare subject is taken, qualify it
			// with a modifier to mint a fresh, still-unambiguous entity.
			if seen[key] {
				subj = modifiers[tr.Intn(len(modifiers))] + " " + subj
				key = subj + "|" + string(rel)
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			id := FactID(fmt.Sprintf("fact-%03d-%03d", ti, len(topic.Facts)))
			f := &Fact{
				ID: id, Topic: ti, Subject: subj, Relation: rel, Object: obj,
				// Dose questions are the quantitative class: their stems
				// and Gy-valued options require numeric reasoning, the
				// property the Astro math/no-math split keys on.
				Math: rel == RelDoseOf,
			}
			topic.Facts = append(topic.Facts, f)
			kb.facts[id] = f
			kb.byRel[rel] = append(kb.byRel[rel], f)
		}
		kb.Topics = append(kb.Topics, topic)
	}
	for rel, facts := range kb.byRel {
		distinct := make(map[string]bool)
		for _, f := range facts {
			if !distinct[f.Object] {
				distinct[f.Object] = true
				kb.objects[rel] = append(kb.objects[rel], f.Object)
			}
		}
	}
	return kb
}

func keywordsFor(topic string) []string {
	words := strings.Fields(strings.ToLower(topic))
	return append(words, "radiation", "cancer")
}

// Fact returns the fact with the given id, or nil.
func (kb *KB) Fact(id FactID) *Fact { return kb.facts[id] }

// NumFacts returns the total fact count.
func (kb *KB) NumFacts() int { return len(kb.facts) }

// AllFacts returns every fact in stable topic/index order.
func (kb *KB) AllFacts() []*Fact {
	var out []*Fact
	for _, t := range kb.Topics {
		out = append(out, t.Facts...)
	}
	return out
}

// Distractors returns up to n objects sharing the fact's relation but
// differing from its correct object — the plausible-but-wrong options of an
// MCQ. Selection is deterministic given r.
func (kb *KB) Distractors(f *Fact, n int, r *rng.Source) []string {
	pool := kb.objects[f.Relation]
	cand := make([]string, 0, len(pool))
	for _, o := range pool {
		if o != f.Object {
			cand = append(cand, o)
		}
	}
	if len(cand) <= n {
		out := make([]string, len(cand))
		copy(out, cand)
		return out
	}
	idx := r.SampleK(len(cand), n)
	out := make([]string, n)
	for i, j := range idx {
		out[i] = cand[j]
	}
	return out
}
