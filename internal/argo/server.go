package argo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// HTTP transport: the same gateway semantics over a socket, so a generation
// campaign can talk to a shared proxy process exactly as the paper's Parsl
// workers talk to Argo-Proxy. The wire format is JSON:
//
//	POST /v1/batch   {"requests":[{id,op,payload}...]}
//	200              {"responses":[{id,payload,err,retry}...]}
//	GET  /healthz    200 "ok"

type batchEnvelope struct {
	Requests []Request `json:"requests"`
}

type responseEnvelope struct {
	Responses []Response `json:"responses"`
}

// Server exposes a BatchHandler over HTTP.
type Server struct {
	handler  BatchHandler
	httpSrv  *http.Server
	listener net.Listener
}

// NewServer creates a server on addr ("127.0.0.1:0" for an ephemeral port).
func NewServer(addr string, handler BatchHandler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{handler: handler, listener: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", s.serveBatch)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.httpSrv = &http.Server{Handler: mux, ReadTimeout: 30 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Shutdown drains the server gracefully: the listener stops accepting new
// connections immediately, but requests already being handled run to
// completion (or until ctx expires, whichever is first). This is the
// SIGTERM drain pattern the serve layer's ragserve binary reuses.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// Close shuts the server down, giving in-flight requests a bounded drain
// window rather than dropping them.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var env batchEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		http.Error(w, "bad envelope: "+err.Error(), http.StatusBadRequest)
		return
	}
	responses := s.handler(r.Context(), env.Requests)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(responseEnvelope{Responses: responses}) //nolint:errcheck
}

// HTTPHandler returns a BatchHandler that forwards batches to a remote
// server, letting a Gateway front a network endpoint:
//
//	gw := NewGateway(cfg, HTTPHandler(url, nil))
func HTTPHandler(baseURL string, client *http.Client) BatchHandler {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return func(ctx context.Context, batch []Request) []Response {
		fail := func(msg string, retry bool) []Response {
			out := make([]Response, len(batch))
			for i, req := range batch {
				out[i] = Response{ID: req.ID, Err: msg, Retry: retry}
			}
			return out
		}
		body, err := json.Marshal(batchEnvelope{Requests: batch})
		if err != nil {
			return fail("encode: "+err.Error(), false)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			return fail("request: "+err.Error(), false)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			// Network errors are transient from the campaign's view.
			return fail("transport: "+err.Error(), true)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fail(fmt.Sprintf("status %d", resp.StatusCode), resp.StatusCode >= 500)
		}
		var env responseEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return fail("decode: "+err.Error(), true)
		}
		return env.Responses
	}
}
