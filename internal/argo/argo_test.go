package argo

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler answers every request with its payload.
func echoHandler(_ context.Context, batch []Request) []Response {
	out := make([]Response, len(batch))
	for i, r := range batch {
		out[i] = Response{ID: r.ID, Payload: r.Payload}
	}
	return out
}

func TestCallRoundTrip(t *testing.T) {
	g := NewGateway(Config{}, echoHandler)
	defer g.Close()
	resp, err := g.Call(context.Background(), Request{ID: "r1", Op: "echo", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "hello" {
		t.Fatalf("payload %q", resp.Payload)
	}
}

func TestBatching(t *testing.T) {
	var maxBatch int32
	handler := func(ctx context.Context, batch []Request) []Response {
		for {
			m := atomic.LoadInt32(&maxBatch)
			if int32(len(batch)) <= m || atomic.CompareAndSwapInt32(&maxBatch, m, int32(len(batch))) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return echoHandler(ctx, batch)
	}
	g := NewGateway(Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond}, handler)
	defer g.Close()
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprintf("r%d", i)}
	}
	if _, err := g.CallAll(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&maxBatch) < 2 {
		t.Fatalf("no coalescing observed (max batch %d)", maxBatch)
	}
	if g.Stats().Requests != 64 {
		t.Fatalf("stats requests %d", g.Stats().Requests)
	}
}

func TestCallAllOrder(t *testing.T) {
	g := NewGateway(Config{MaxBatch: 4}, echoHandler)
	defer g.Close()
	reqs := make([]Request, 20)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprintf("r%d", i), Payload: []byte(fmt.Sprint(i))}
	}
	resps, err := g.CallAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if string(r.Payload) != fmt.Sprint(i) {
			t.Fatalf("response %d carries %q", i, r.Payload)
		}
	}
}

func TestTransientRetry(t *testing.T) {
	var calls sync.Map
	handler := func(_ context.Context, batch []Request) []Response {
		out := make([]Response, len(batch))
		for i, r := range batch {
			n, _ := calls.LoadOrStore(r.ID, new(int32))
			c := atomic.AddInt32(n.(*int32), 1)
			if c < 3 {
				out[i] = Response{ID: r.ID, Err: "overloaded", Retry: true}
			} else {
				out[i] = Response{ID: r.ID, Payload: []byte("ok")}
			}
		}
		return out
	}
	g := NewGateway(Config{MaxRetries: 5, BaseBackoff: 100 * time.Microsecond}, handler)
	defer g.Close()
	resp, err := g.Call(context.Background(), Request{ID: "flaky"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "ok" {
		t.Fatalf("payload %q", resp.Payload)
	}
	if g.Stats().Retries < 2 {
		t.Fatalf("retries %d", g.Stats().Retries)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	handler := func(_ context.Context, batch []Request) []Response {
		out := make([]Response, len(batch))
		for i, r := range batch {
			out[i] = Response{ID: r.ID, Err: "always down", Retry: true}
		}
		return out
	}
	g := NewGateway(Config{MaxRetries: 2, BaseBackoff: 50 * time.Microsecond}, handler)
	defer g.Close()
	_, err := g.Call(context.Background(), Request{ID: "doomed"})
	if err == nil || !strings.Contains(err.Error(), "always down") {
		t.Fatalf("err = %v", err)
	}
	if g.Stats().Failures == 0 {
		t.Fatal("failure not counted")
	}
}

func TestPermanentErrorNoRetry(t *testing.T) {
	var calls int32
	handler := func(_ context.Context, batch []Request) []Response {
		atomic.AddInt32(&calls, 1)
		out := make([]Response, len(batch))
		for i, r := range batch {
			out[i] = Response{ID: r.ID, Err: "malformed payload"}
		}
		return out
	}
	g := NewGateway(Config{MaxRetries: 5}, handler)
	defer g.Close()
	if _, err := g.Call(context.Background(), Request{ID: "bad"}); err == nil {
		t.Fatal("permanent error not surfaced")
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
}

func TestMissingResponseBecomesError(t *testing.T) {
	handler := func(_ context.Context, batch []Request) []Response { return nil }
	g := NewGateway(Config{}, handler)
	defer g.Close()
	_, err := g.Call(context.Background(), Request{ID: "lost"})
	if err == nil || !strings.Contains(err.Error(), "no response") {
		t.Fatalf("err = %v", err)
	}
}

func TestClosedGateway(t *testing.T) {
	g := NewGateway(Config{}, echoHandler)
	g.Close()
	if _, err := g.Call(context.Background(), Request{ID: "x"}); err != ErrGatewayClosed {
		t.Fatalf("err = %v", err)
	}
	g.Close() // idempotent
}

func TestRateLimiting(t *testing.T) {
	var stamps []time.Time
	var mu sync.Mutex
	handler := func(ctx context.Context, batch []Request) []Response {
		mu.Lock()
		stamps = append(stamps, time.Now())
		mu.Unlock()
		return echoHandler(ctx, batch)
	}
	// 1 batch per request (MaxBatch 1) at 200 batches/sec → ≥5ms spacing.
	g := NewGateway(Config{MaxBatch: 1, RatePerSec: 200, Burst: 1}, handler)
	defer g.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := g.Call(context.Background(), Request{ID: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 5 dispatches at 200/s with burst 1: at least ~20ms.
	if elapsed < 15*time.Millisecond {
		t.Fatalf("rate limiter ineffective: %v for 5 calls", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stamps) != 5 {
		t.Fatalf("%d batches", len(stamps))
	}
}

func TestContextCancelledCall(t *testing.T) {
	block := make(chan struct{})
	handler := func(ctx context.Context, batch []Request) []Response {
		<-block
		return echoHandler(ctx, batch)
	}
	g := NewGateway(Config{}, handler)
	defer func() {
		close(block)
		g.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := g.Call(ctx, Request{ID: "slow"})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPTransport(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g := NewGateway(Config{MaxBatch: 4}, HTTPHandler("http://"+srv.Addr(), nil))
	defer g.Close()
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprintf("h%d", i), Payload: []byte(fmt.Sprint(i * 2))}
	}
	resps, err := g.CallAll(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if string(r.Payload) != fmt.Sprint(i*2) {
			t.Fatalf("resp %d: %q", i, r.Payload)
		}
	}
}

func TestHTTPTransportServerDown(t *testing.T) {
	g := NewGateway(Config{MaxRetries: 1, BaseBackoff: 100 * time.Microsecond},
		HTTPHandler("http://127.0.0.1:1", nil)) // nothing listens on port 1
	defer g.Close()
	_, err := g.Call(context.Background(), Request{ID: "x"})
	if err == nil {
		t.Fatal("unreachable server succeeded")
	}
}

func BenchmarkGatewayThroughput(b *testing.B) {
	g := NewGateway(Config{MaxBatch: 64, MaxDelay: 100 * time.Microsecond}, echoHandler)
	defer g.Close()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			_, _ = g.Call(context.Background(), Request{ID: fmt.Sprint(i)})
		}
	})
}

func TestServerShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	handler := func(ctx context.Context, batch []Request) []Response {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return echoHandler(ctx, batch)
	}
	srv, err := NewServer("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGateway(Config{MaxRetries: 1}, HTTPHandler("http://"+srv.Addr(), nil))
	defer g.Close()
	done := make(chan error, 1)
	go func() {
		_, err := g.Call(context.Background(), Request{ID: "inflight", Payload: []byte("x")})
		done <- err
	}()
	<-started
	// Shutdown while the request is being handled: it must complete, not
	// be dropped with a connection reset.
	if err := srv.Close(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request dropped across shutdown: %v", err)
	}
}

// TestCloseAbortsBackoffWithinOneTick is the regression test for the two
// historical time.Sleep sites in the retry machinery (the backoff between
// attempts and the rate-limiter wait): a gateway closed mid-backoff must
// stop retrying immediately instead of sleeping out the remaining
// schedule — with a 30s base backoff, anything under a couple of seconds
// proves the sleep was interrupted.
func TestCloseAbortsBackoffWithinOneTick(t *testing.T) {
	attempted := make(chan struct{}, 16)
	handler := func(_ context.Context, batch []Request) []Response {
		out := make([]Response, len(batch))
		for i, req := range batch {
			out[i] = Response{ID: req.ID, Err: "transient", Retry: true}
		}
		select {
		case attempted <- struct{}{}:
		default:
		}
		return out
	}
	g := NewGateway(Config{MaxBatch: 1, MaxRetries: 5, BaseBackoff: 30 * time.Second}, handler)

	done := make(chan error, 1)
	go func() {
		_, err := g.Call(context.Background(), Request{ID: "doomed"})
		done <- err
	}()
	<-attempted // first attempt ran; the gateway is now in its 30s backoff
	start := time.Now()
	g.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close blocked %v on a pending backoff", elapsed)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("retry-aborted call returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still pending after Close")
	}
}

// TestCloseAbortsRateLimiterWait covers the bucket.wait sleep site: a
// gateway rate-limited to one dispatch per minute must still close
// promptly while a batch is queued behind the empty token bucket.
func TestCloseAbortsRateLimiterWait(t *testing.T) {
	g := NewGateway(Config{MaxBatch: 1, RatePerSec: 1.0 / 60, Burst: 1}, echoHandler)
	// First call spends the burst token.
	if _, err := g.Call(context.Background(), Request{ID: "r0"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Call(context.Background(), Request{ID: "r1"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the batch reach the bucket wait
	start := time.Now()
	g.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close blocked %v on the rate-limiter wait", elapsed)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted rate-limited call returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still pending after Close")
	}
}
