// Package argo implements the batched model-API gateway standing in for the
// Argo-Proxy service the paper routes GPT-4.1 calls through ("chunks are fed
// to GPT-4.1 in batches through the Argo-Proxy API").
//
// The gateway provides the orchestration semantics an HPC generation
// campaign needs from a model endpoint:
//
//   - request coalescing: concurrent Call()s are packed into batches of up
//     to MaxBatch, or whatever arrived within MaxDelay — provided by the
//     shared internal/batch coalescer, which the serve retrieval server
//     reuses for the same admission-window batching;
//   - token-bucket rate limiting across batches;
//   - bounded retries with exponential backoff and deterministic jitter for
//     transient failures (the schedule is the shared internal/retry.Policy,
//     which the router's shard fan-out reuses), aborted immediately when
//     the gateway closes;
//   - an optional net/http JSON transport (server.go) so the same handler
//     can sit behind a real socket.
package argo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/retry"
)

// Request is one unit of model work. Payload is opaque to the gateway.
type Request struct {
	ID      string `json:"id"`
	Op      string `json:"op"` // e.g. "generate-mcq", "trace", "judge"
	Payload []byte `json:"payload"`
}

// Response carries the handler's output for one request. Transient
// failures set Retry, telling the gateway the request may be retried.
type Response struct {
	ID      string `json:"id"`
	Payload []byte `json:"payload,omitempty"`
	Err     string `json:"err,omitempty"`
	Retry   bool   `json:"retry,omitempty"`
}

// BatchHandler services one batch. It must return exactly one response per
// request, in any order, keyed by ID.
type BatchHandler func(ctx context.Context, batch []Request) []Response

// Config parameterises a Gateway.
type Config struct {
	MaxBatch    int           // max requests per handler call (default 16)
	MaxDelay    time.Duration // max time a request waits for batchmates (default 2ms)
	MaxRetries  int           // retry budget per request for transient failures (default 3)
	BaseBackoff time.Duration // first retry delay (default 1ms, doubles per attempt)
	// RatePerSec limits handler dispatches per second; 0 disables.
	RatePerSec float64
	// Burst is the token-bucket depth when rate limiting (default 1).
	Burst int
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
}

// Stats is a snapshot of gateway accounting. Batches counts handler
// invocations including retry rounds, so it can exceed the coalescer's
// dispatch count.
type Stats struct {
	Requests   int64
	Batches    int64
	Retries    int64
	Failures   int64
	MaxBatched int
}

// ErrGatewayClosed is returned by Call after Close.
var ErrGatewayClosed = errors.New("argo: gateway closed")

// Gateway batches concurrent requests into handler calls. Coalescing is
// delegated to internal/batch; the gateway layers the model-endpoint
// semantics (rate limiting, retry with backoff, ID-keyed handler contract)
// on top.
type Gateway struct {
	cfg     Config
	policy  retry.Policy
	handler BatchHandler
	co      *batch.Coalescer[Request, Response]
	limiter *bucket

	// ctx gates every wait inside the retry machinery (backoff sleeps,
	// rate-limiter waits): Close cancels it first, so a closing gateway
	// stops retrying within one tick instead of sleeping out the whole
	// backoff schedule before the coalescer can drain.
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	stats Stats
}

// NewGateway starts a gateway around handler.
func NewGateway(cfg Config, handler BatchHandler) *Gateway {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg: cfg,
		// cfg.fill already resolved the retry knobs (including the
		// negative-means-zero rule), so the policy is used as-is, without
		// retry.Policy.Fill re-mapping an explicit 0 back to the default.
		policy:  retry.Policy{MaxRetries: cfg.MaxRetries, BaseBackoff: cfg.BaseBackoff},
		handler: handler,
		limiter: newBucket(cfg.RatePerSec, cfg.Burst),
		ctx:     ctx,
		cancel:  cancel,
	}
	g.co = batch.New(batch.Config{MaxBatch: cfg.MaxBatch, MaxDelay: cfg.MaxDelay}, g.serveBatch)
	return g
}

// Close drains and stops the gateway. Calls after Close fail. Pending
// retry chains abort at their next backoff tick: the current handler
// attempt finishes (the drain guarantee), but no further attempts run and
// their requests fail with a retry-aborted error.
func (g *Gateway) Close() {
	g.cancel()
	g.co.Close()
}

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Call submits one request and blocks for its response. Transient failures
// are retried internally up to the configured budget; exhaustion surfaces
// as an error.
func (g *Gateway) Call(ctx context.Context, req Request) (Response, error) {
	resp, err := g.co.Do(ctx, req)
	if err != nil {
		if errors.Is(err, batch.ErrClosed) {
			return Response{}, ErrGatewayClosed
		}
		return Response{}, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("argo: %s: %s", req.ID, resp.Err)
	}
	return resp, nil
}

// CallAll submits requests concurrently (letting the gateway batch them)
// and returns responses in request order.
func (g *Gateway) CallAll(ctx context.Context, reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = g.Call(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// serveBatch is the coalescer's batch function: one rate-limiter token per
// coalesced batch, then the retry loop.
func (g *Gateway) serveBatch(reqs []Request) []Response {
	if err := g.limiter.wait(g.ctx); err != nil {
		return g.failAll(reqs, err)
	}
	return g.serveAttempt(reqs, 0)
}

// failAll answers every request with the same terminal error — the shape a
// batch takes when the gateway is cancelled mid-wait.
func (g *Gateway) failAll(reqs []Request, err error) []Response {
	out := make([]Response, len(reqs))
	for i, req := range reqs {
		g.countFailure()
		out[i] = Response{ID: req.ID, Err: "argo: aborted: " + err.Error()}
	}
	return out
}

// serveAttempt invokes the handler once, resolves terminal responses, and
// re-serves transient failures with backoff until the retry budget is
// spent. Results are index-aligned with reqs, as the coalescer requires —
// which means batchmates of a retried request wait for the retry chain
// (bounded by sum-of-backoffs, ~a few ms at the default BaseBackoff)
// instead of receiving their already-computed responses early, the one
// semantic trade-off of delegating delivery to the shared coalescer.
func (g *Gateway) serveAttempt(reqs []Request, attempt int) []Response {
	g.mu.Lock()
	g.stats.Batches++
	if attempt == 0 {
		g.stats.Requests += int64(len(reqs))
	}
	if len(reqs) > g.stats.MaxBatched {
		g.stats.MaxBatched = len(reqs)
	}
	g.mu.Unlock()

	responses := g.handler(g.ctx, reqs)
	byID := make(map[string]Response, len(responses))
	for _, resp := range responses {
		byID[resp.ID] = resp
	}

	out := make([]Response, len(reqs))
	var retryReqs []Request
	var retryIdx []int
	for i, req := range reqs {
		resp, ok := byID[req.ID]
		if !ok {
			// Handler contract violations (missing IDs) become failures.
			g.countFailure()
			out[i] = Response{ID: req.ID, Err: "argo: handler returned no response"}
			continue
		}
		if resp.Retry && attempt < g.cfg.MaxRetries {
			retryReqs = append(retryReqs, req)
			retryIdx = append(retryIdx, i)
			continue
		}
		if resp.Err != "" {
			g.countFailure()
		}
		out[i] = resp
	}
	if len(retryReqs) > 0 {
		g.mu.Lock()
		g.stats.Retries += int64(len(retryReqs))
		g.mu.Unlock()
		// Exponential backoff with deterministic jitter from the attempt
		// number (no wall-clock randomness, keeping runs reproducible) —
		// the schedule now lives in the shared retry.Policy. The sleep
		// aborts the moment the gateway's context is cancelled, so Close
		// never waits out the remaining schedule.
		if err := retry.Sleep(g.ctx, g.policy.Backoff(attempt)); err != nil {
			failed := g.failAll(retryReqs, err)
			for j, i := range retryIdx {
				out[i] = failed[j]
			}
			return out
		}
		retried := g.serveAttempt(retryReqs, attempt+1)
		for j, i := range retryIdx {
			out[i] = retried[j]
		}
	}
	return out
}

func (g *Gateway) countFailure() {
	g.mu.Lock()
	g.stats.Failures++
	g.mu.Unlock()
}

// bucket is a token-bucket rate limiter; nil-safe when disabled.
type bucket struct {
	interval time.Duration
	tokens   int
	depth    int
	last     time.Time
	mu       sync.Mutex
}

func newBucket(ratePerSec float64, burst int) *bucket {
	if ratePerSec <= 0 {
		return nil
	}
	return &bucket{
		interval: time.Duration(float64(time.Second) / ratePerSec),
		tokens:   burst,
		depth:    burst,
		last:     time.Now(),
	}
}

// wait blocks until a token is available or ctx is cancelled (the second
// of the two historical time.Sleep sites that used to ride out their full
// delay even while the gateway was closing).
func (b *bucket) wait(ctx context.Context) error {
	if b == nil {
		return nil
	}
	for {
		b.mu.Lock()
		now := time.Now()
		refill := int(now.Sub(b.last) / b.interval)
		if refill > 0 {
			b.tokens += refill
			if b.tokens > b.depth {
				b.tokens = b.depth
			}
			b.last = b.last.Add(time.Duration(refill) * b.interval)
		}
		if b.tokens > 0 {
			b.tokens--
			b.mu.Unlock()
			return nil
		}
		sleep := b.interval - now.Sub(b.last)
		b.mu.Unlock()
		if sleep < time.Microsecond {
			sleep = time.Microsecond
		}
		if err := retry.Sleep(ctx, sleep); err != nil {
			return err
		}
	}
}
