// Package argo implements the batched model-API gateway standing in for the
// Argo-Proxy service the paper routes GPT-4.1 calls through ("chunks are fed
// to GPT-4.1 in batches through the Argo-Proxy API").
//
// The gateway provides the orchestration semantics an HPC generation
// campaign needs from a model endpoint:
//
//   - request coalescing: concurrent Call()s are packed into batches of up
//     to MaxBatch, or whatever arrived within MaxDelay;
//   - token-bucket rate limiting across batches;
//   - bounded retries with exponential backoff and deterministic jitter for
//     transient failures;
//   - an optional net/http JSON transport (server.go) so the same handler
//     can sit behind a real socket.
package argo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Request is one unit of model work. Payload is opaque to the gateway.
type Request struct {
	ID      string `json:"id"`
	Op      string `json:"op"` // e.g. "generate-mcq", "trace", "judge"
	Payload []byte `json:"payload"`
}

// Response carries the handler's output for one request. Transient
// failures set Retry, telling the gateway the request may be retried.
type Response struct {
	ID      string `json:"id"`
	Payload []byte `json:"payload,omitempty"`
	Err     string `json:"err,omitempty"`
	Retry   bool   `json:"retry,omitempty"`
}

// BatchHandler services one batch. It must return exactly one response per
// request, in any order, keyed by ID.
type BatchHandler func(ctx context.Context, batch []Request) []Response

// Config parameterises a Gateway.
type Config struct {
	MaxBatch    int           // max requests per handler call (default 16)
	MaxDelay    time.Duration // max time a request waits for batchmates (default 2ms)
	MaxRetries  int           // retry budget per request for transient failures (default 3)
	BaseBackoff time.Duration // first retry delay (default 1ms, doubles per attempt)
	// RatePerSec limits handler dispatches per second; 0 disables.
	RatePerSec float64
	// Burst is the token-bucket depth when rate limiting (default 1).
	Burst int
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Millisecond
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
}

// Stats is a snapshot of gateway accounting.
type Stats struct {
	Requests   int64
	Batches    int64
	Retries    int64
	Failures   int64
	MaxBatched int
}

// ErrGatewayClosed is returned by Call after Close.
var ErrGatewayClosed = errors.New("argo: gateway closed")

type pending struct {
	req  Request
	done chan Response
}

// Gateway batches concurrent requests into handler calls.
type Gateway struct {
	cfg     Config
	handler BatchHandler
	queue   chan pending
	closed  chan struct{}
	wg      sync.WaitGroup

	// closeMu serialises enqueue against shutdown: Call holds the read
	// side across its enqueue, so Close cannot finish draining while a
	// request is in flight into the queue (a select races its two ready
	// cases randomly, so without this a request could be enqueued after
	// the dispatcher's final drain and never be answered).
	closeMu    sync.RWMutex
	closedFlag bool

	mu    sync.Mutex
	stats Stats
}

// NewGateway starts a gateway around handler.
func NewGateway(cfg Config, handler BatchHandler) *Gateway {
	cfg.fill()
	g := &Gateway{
		cfg:     cfg,
		handler: handler,
		queue:   make(chan pending, cfg.MaxBatch*4),
		closed:  make(chan struct{}),
	}
	g.wg.Add(1)
	go g.dispatchLoop()
	return g
}

// Close drains and stops the gateway. Calls after Close fail.
func (g *Gateway) Close() {
	g.closeMu.Lock()
	if g.closedFlag {
		g.closeMu.Unlock()
		return
	}
	g.closedFlag = true
	g.closeMu.Unlock()
	close(g.closed)
	g.wg.Wait()
	// Catch any request whose enqueue won the race against the
	// dispatcher's own drain.
	g.failRemaining()
}

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Call submits one request and blocks for its response. Transient failures
// are retried internally up to the configured budget; exhaustion surfaces
// as an error.
func (g *Gateway) Call(ctx context.Context, req Request) (Response, error) {
	p := pending{req: req, done: make(chan Response, 1)}
	// Hold the read side across the enqueue: either we observe the closed
	// flag and refuse, or the enqueue completes before Close can run its
	// final drain — so every accepted request is always answered.
	g.closeMu.RLock()
	if g.closedFlag {
		g.closeMu.RUnlock()
		return Response{}, ErrGatewayClosed
	}
	select {
	case g.queue <- p:
		g.closeMu.RUnlock()
	case <-ctx.Done():
		g.closeMu.RUnlock()
		return Response{}, ctx.Err()
	}
	select {
	case resp := <-p.done:
		if resp.Err != "" {
			if resp.Err == ErrGatewayClosed.Error() {
				return resp, ErrGatewayClosed
			}
			return resp, fmt.Errorf("argo: %s: %s", req.ID, resp.Err)
		}
		return resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// CallAll submits requests concurrently (letting the gateway batch them)
// and returns responses in request order.
func (g *Gateway) CallAll(ctx context.Context, reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = g.Call(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// dispatchLoop collects pending requests into batches and services them.
func (g *Gateway) dispatchLoop() {
	defer g.wg.Done()
	limiter := newBucket(g.cfg.RatePerSec, g.cfg.Burst)
	for {
		// Block for the first request (or shutdown).
		var first pending
		select {
		case first = <-g.queue:
		case <-g.closed:
			g.failRemaining()
			return
		}
		batch := []pending{first}
		timer := time.NewTimer(g.cfg.MaxDelay)
	fill:
		for len(batch) < g.cfg.MaxBatch {
			select {
			case p := <-g.queue:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			case <-g.closed:
				break fill
			}
		}
		timer.Stop()
		limiter.wait()
		g.serveBatch(batch, 0)
	}
}

// failRemaining answers queued requests with a closed error.
func (g *Gateway) failRemaining() {
	for {
		select {
		case p := <-g.queue:
			p.done <- Response{ID: p.req.ID, Err: ErrGatewayClosed.Error()}
		default:
			return
		}
	}
}

// serveBatch invokes the handler, delivering terminal responses and
// re-serving transient failures with backoff until the retry budget is
// spent.
func (g *Gateway) serveBatch(batch []pending, attempt int) {
	reqs := make([]Request, len(batch))
	byID := make(map[string]pending, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
		byID[p.req.ID] = p
	}
	g.mu.Lock()
	g.stats.Batches++
	if attempt == 0 {
		g.stats.Requests += int64(len(batch))
	}
	if len(batch) > g.stats.MaxBatched {
		g.stats.MaxBatched = len(batch)
	}
	g.mu.Unlock()

	responses := g.handler(context.Background(), reqs)
	var retry []pending
	answered := make(map[string]bool, len(responses))
	for _, resp := range responses {
		p, ok := byID[resp.ID]
		if !ok {
			continue
		}
		answered[resp.ID] = true
		if resp.Retry && attempt < g.cfg.MaxRetries {
			retry = append(retry, p)
			continue
		}
		if resp.Err != "" {
			g.mu.Lock()
			g.stats.Failures++
			g.mu.Unlock()
		}
		p.done <- resp
	}
	// Handler contract violations (missing IDs) become failures.
	for id, p := range byID {
		if !answered[id] {
			g.mu.Lock()
			g.stats.Failures++
			g.mu.Unlock()
			p.done <- Response{ID: id, Err: "argo: handler returned no response"}
		}
	}
	if len(retry) > 0 {
		g.mu.Lock()
		g.stats.Retries += int64(len(retry))
		g.mu.Unlock()
		// Exponential backoff with deterministic jitter from the attempt
		// number (no wall-clock randomness, keeping runs reproducible).
		delay := g.cfg.BaseBackoff << uint(attempt)
		delay += time.Duration(attempt*7%5) * g.cfg.BaseBackoff / 4
		time.Sleep(delay)
		g.serveBatch(retry, attempt+1)
	}
}

// bucket is a token-bucket rate limiter; nil-safe when disabled.
type bucket struct {
	interval time.Duration
	tokens   int
	depth    int
	last     time.Time
	mu       sync.Mutex
}

func newBucket(ratePerSec float64, burst int) *bucket {
	if ratePerSec <= 0 {
		return nil
	}
	return &bucket{
		interval: time.Duration(float64(time.Second) / ratePerSec),
		tokens:   burst,
		depth:    burst,
		last:     time.Now(),
	}
}

// wait blocks until a token is available.
func (b *bucket) wait() {
	if b == nil {
		return
	}
	for {
		b.mu.Lock()
		now := time.Now()
		refill := int(now.Sub(b.last) / b.interval)
		if refill > 0 {
			b.tokens += refill
			if b.tokens > b.depth {
				b.tokens = b.depth
			}
			b.last = b.last.Add(time.Duration(refill) * b.interval)
		}
		if b.tokens > 0 {
			b.tokens--
			b.mu.Unlock()
			return
		}
		sleep := b.interval - now.Sub(b.last)
		b.mu.Unlock()
		if sleep < time.Microsecond {
			sleep = time.Microsecond
		}
		time.Sleep(sleep)
	}
}
