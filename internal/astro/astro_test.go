package astro

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mcq"
)

func exam(t testing.TB) (*Exam, *corpus.KB) {
	t.Helper()
	kb := corpus.Build(42, 30)
	return Generate(kb, 7), kb
}

func TestExamDimensions(t *testing.T) {
	e, _ := exam(t)
	if len(e.Questions) != EvaluatedQuestions {
		t.Fatalf("%d evaluated questions, want %d", len(e.Questions), EvaluatedQuestions)
	}
	if len(e.Multimodal) != MultimodalExcluded {
		t.Fatalf("%d multimodal, want %d", len(e.Multimodal), MultimodalExcluded)
	}
	if EvaluatedQuestions+MultimodalExcluded != TotalQuestions {
		t.Fatal("dimension constants inconsistent")
	}
	math, noMath := 0, 0
	for _, q := range e.Questions {
		if q.Math {
			math++
		} else {
			noMath++
		}
	}
	if math != MathQuestions || noMath != NoMathQuestions {
		t.Fatalf("split %d math / %d no-math, want %d/%d", math, noMath, MathQuestions, NoMathQuestions)
	}
}

func TestExamQuestionsValid(t *testing.T) {
	e, kb := exam(t)
	for _, q := range e.Questions {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if len(q.Options) != OptionsPerQuestion {
			t.Fatalf("%s: %d options", q.ID, len(q.Options))
		}
		if q.Prov.FactID == "" {
			t.Fatalf("%s: no fact ground truth", q.ID)
		}
		f := kb.Fact(corpus.FactID(q.Prov.FactID))
		if f == nil {
			t.Fatalf("%s: unknown fact", q.ID)
		}
		if q.AnswerText() != f.Object {
			t.Fatalf("%s: keyed answer %q != fact object %q", q.ID, q.AnswerText(), f.Object)
		}
		if q.Prov.ChunkID != "" {
			t.Fatalf("%s: exam question has chunk provenance", q.ID)
		}
	}
}

func TestExamDeterministic(t *testing.T) {
	kb := corpus.Build(42, 30)
	a := Generate(kb, 7)
	b := Generate(kb, 7)
	for i := range a.Questions {
		if a.Questions[i].Question != b.Questions[i].Question ||
			a.Questions[i].Answer != b.Questions[i].Answer {
			t.Fatal("exam not deterministic")
		}
	}
	c := Generate(kb, 8)
	same := 0
	for i := range a.Questions {
		if a.Questions[i].Question == c.Questions[i].Question {
			same++
		}
	}
	if same == len(a.Questions) {
		t.Fatal("different seeds gave identical exams")
	}
}

func TestExamIDsUnique(t *testing.T) {
	e, _ := exam(t)
	seen := map[string]bool{}
	for _, q := range append(append([]*mcq.Question{}, e.Questions...), e.Multimodal...) {
		if seen[q.ID] {
			t.Fatalf("duplicate id %s", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestMultimodalFlagged(t *testing.T) {
	e, _ := exam(t)
	for _, q := range e.Multimodal {
		if !strings.Contains(q.Question, "figure") {
			t.Fatalf("multimodal stem lacks figure reference: %q", q.Question)
		}
		if q.Type != "exam-multimodal" {
			t.Fatalf("type %q", q.Type)
		}
	}
}

func TestMathNotContiguous(t *testing.T) {
	e, _ := exam(t)
	// After shuffling, the first 146 evaluated questions must not all be
	// math items.
	math := 0
	for _, q := range e.Questions[:MathQuestions] {
		if q.Math {
			math++
		}
	}
	if math == MathQuestions {
		t.Fatal("math block not interleaved")
	}
}

func TestClassifierHighAgreement(t *testing.T) {
	e, _ := exam(t)
	c := NewClassifier()
	acc, predMath := c.Agreement(e.Questions)
	if acc < 0.95 {
		t.Fatalf("classifier agreement %.3f too low", acc)
	}
	// Predicted split must be close to the published 146/189.
	if predMath < MathQuestions-10 || predMath > MathQuestions+10 {
		t.Fatalf("predicted %d math items, want ~%d", predMath, MathQuestions)
	}
}

func TestNoMathSubset(t *testing.T) {
	e, _ := exam(t)
	c := NewClassifier()
	subset := e.NoMath(c)
	if len(subset) < NoMathQuestions-10 || len(subset) > NoMathQuestions+10 {
		t.Fatalf("no-math subset %d, want ~%d", len(subset), NoMathQuestions)
	}
	for _, q := range subset {
		if c.RequiresMath(q) {
			t.Fatal("math item in no-math subset")
		}
	}
}

func TestClassifierIgnoresGroundTruth(t *testing.T) {
	// Flipping the Math flag must not change the prediction (it reads text
	// only).
	e, _ := exam(t)
	c := NewClassifier()
	q := *e.Questions[0]
	before := c.RequiresMath(&q)
	q.Math = !q.Math
	if c.RequiresMath(&q) != before {
		t.Fatal("classifier peeked at the ground-truth flag")
	}
}

func BenchmarkGenerateExam(b *testing.B) {
	kb := corpus.Build(42, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Generate(kb, uint64(i))
	}
}
