// Package astro synthesises the expert-written exam of the paper's external
// validity study: the 2023 ASTRO Radiation and Cancer Biology Study Guide,
// 337 questions of which 2 are excluded for requiring multimodal reasoning,
// leaving 335 evaluated (189 non-mathematical, 146 mathematical per the
// paper's GPT-5 classification).
//
// The generated exam draws on the same domain knowledge base as the corpus
// but is NOT derived from corpus chunks: questions carry no chunk
// provenance, use the 4-option format of board-style exams, and cover facts
// regardless of whether the synthetic literature happened to realise them —
// exactly the out-of-distribution role the real exam plays.
package astro

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/mcq"
	"repro/internal/rng"
)

// Paper-fixed exam dimensions.
const (
	TotalQuestions     = 337
	MultimodalExcluded = 2
	EvaluatedQuestions = 335
	NoMathQuestions    = 189
	MathQuestions      = 146
	OptionsPerQuestion = 4
)

// Exam is the generated expert benchmark.
type Exam struct {
	// Questions are the evaluated 335 items (multimodal already excluded).
	Questions []*mcq.Question
	// Multimodal are the two excluded items, kept for reporting.
	Multimodal []*mcq.Question
}

// Generate builds the exam deterministically from the knowledge base.
// The math/no-math mix matches the paper's counts exactly by construction;
// the Classifier (the GPT-5 stand-in) then recovers the split from text.
func Generate(kb *corpus.KB, seed uint64) *Exam {
	r := rng.New(seed).Split("astro-exam")
	var mathFacts, plainFacts []*corpus.Fact
	for _, f := range kb.AllFacts() {
		if f.Math {
			mathFacts = append(mathFacts, f)
		} else {
			plainFacts = append(plainFacts, f)
		}
	}
	if len(mathFacts) == 0 || len(plainFacts) == 0 {
		panic("astro: knowledge base lacks a math/no-math mix")
	}
	exam := &Exam{}
	used := map[corpus.FactID]int{}

	pick := func(pool []*corpus.Fact) *corpus.Fact {
		// Prefer unused facts; the KB may be smaller than the exam, in
		// which case facts are reused with fresh distractor draws (board
		// exams revisit core facts too).
		for attempt := 0; attempt < 64; attempt++ {
			f := pool[r.Intn(len(pool))]
			if used[f.ID] == 0 || attempt > 32 {
				used[f.ID]++
				return f
			}
		}
		f := pool[r.Intn(len(pool))]
		used[f.ID]++
		return f
	}

	build := func(idx int, f *corpus.Fact, multimodal bool) *mcq.Question {
		q := &mcq.Question{
			ID:       fmt.Sprintf("astro-%03d", idx),
			Question: f.QuestionStem(),
			Type:     "exam",
			Math:     f.Math,
			Prov: mcq.Provenance{
				DocID:    "astro-2023-study-guide",
				FilePath: "RadBio_StudyGuide_23.pdf",
				FactID:   string(f.ID),
			},
			Checks: mcq.Checks{Relevant: true, QualityScore: 10, JudgeModel: "expert-annotated"},
		}
		if multimodal {
			q.Question = "Based on the survival curves shown in the figure, " +
				lowerFirst(f.QuestionStem())
			q.Type = "exam-multimodal"
		}
		distractors := kb.Distractors(f, OptionsPerQuestion-1, r)
		options := append([]string{f.Object}, distractors...)
		correct := 0
		r.Shuffle(len(options), func(i, j int) {
			options[i], options[j] = options[j], options[i]
			switch correct {
			case i:
				correct = j
			case j:
				correct = i
			}
		})
		q.Options = options
		q.Answer = correct
		return q
	}

	idx := 0
	for i := 0; i < MathQuestions; i++ {
		exam.Questions = append(exam.Questions, build(idx, pick(mathFacts), false))
		idx++
	}
	for i := 0; i < NoMathQuestions; i++ {
		exam.Questions = append(exam.Questions, build(idx, pick(plainFacts), false))
		idx++
	}
	// Interleave deterministically so math items are not a contiguous block.
	r.Shuffle(len(exam.Questions), func(i, j int) {
		exam.Questions[i], exam.Questions[j] = exam.Questions[j], exam.Questions[i]
	})
	for i := 0; i < MultimodalExcluded; i++ {
		exam.Multimodal = append(exam.Multimodal, build(idx, pick(plainFacts), true))
		idx++
	}
	return exam
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// NoMath returns the non-mathematical subset per the classifier, the
// paper's second Astro evaluation setting.
func (e *Exam) NoMath(c *Classifier) []*mcq.Question {
	var out []*mcq.Question
	for _, q := range e.Questions {
		if !c.RequiresMath(q) {
			out = append(out, q)
		}
	}
	return out
}

// Classifier is the GPT-5 stand-in that partitions exam questions into
// mathematical and non-mathematical, from text features alone (numeric
// tokens, dose units, quantitative stems) — it never reads the ground-truth
// Math flag.
type Classifier struct{}

// NewClassifier returns the math/no-math classifier.
func NewClassifier() *Classifier { return &Classifier{} }

// mathMarkers are lexical features of quantitative radiation-biology exam
// items: dose units, survival-fraction arithmetic, ratios.
var mathMarkers = []string{
	"gy", "dose", "fraction", "bed", "α/β", "alpha/beta",
	"survival fraction", "half-life", "ratio", "percent", "log kill",
}

// RequiresMath classifies one question from its text and options.
func (c *Classifier) RequiresMath(q *mcq.Question) bool {
	blob := strings.ToLower(q.Question + " " + strings.Join(q.Options, " "))
	// Numeric content in the options is the strongest signal (dose values,
	// fractions).
	digits := 0
	for _, r := range blob {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	score := 0
	if digits >= 2 {
		score += 2
	}
	for _, m := range mathMarkers {
		if strings.Contains(blob, m) {
			score++
		}
	}
	// "typical dose" stems and Gy-valued options dominate the math class
	// in our generator, as dose-calculation items do in the real guide.
	return score >= 3
}

// Agreement measures the classifier against ground truth, returning
// (accuracy, predictedMathCount). The reproduction's harness requires high
// agreement so the published 189/146 split is recovered from text.
func (c *Classifier) Agreement(qs []*mcq.Question) (float64, int) {
	if len(qs) == 0 {
		return 0, 0
	}
	correct, predMath := 0, 0
	for _, q := range qs {
		pred := c.RequiresMath(q)
		if pred {
			predMath++
		}
		if pred == q.Math {
			correct++
		}
	}
	return float64(correct) / float64(len(qs)), predMath
}
