package spdf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// ParseResult is the per-file outcome of a parallel parse run.
type ParseResult struct {
	Path   string
	Parsed *Parsed
	Err    error
}

// Report aggregates a parse run, mirroring the per-class failure accounting
// an HPC parsing campaign reports across ranks.
type Report struct {
	Total    int
	OK       int
	Salvaged int // errored but text recovered
	Failed   int // no usable text
	ByClass  map[ErrorClass]int
}

// String renders the report as a compact table.
func (r *Report) String() string {
	s := fmt.Sprintf("parsed %d files: %d ok, %d salvaged, %d failed",
		r.Total, r.OK, r.Salvaged, r.Failed)
	if len(r.ByClass) > 0 {
		classes := make([]string, 0, len(r.ByClass))
		for c := range r.ByClass {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		for _, c := range classes {
			s += fmt.Sprintf("\n  %-20s %d", c, r.ByClass[ErrorClass(c)])
		}
	}
	return s
}

// ParseAll parses raw SPDF payloads in parallel with per-item error
// isolation: one corrupt document never aborts the batch. Results preserve
// input order. workers <= 0 selects GOMAXPROCS.
func ParseAll(payloads [][]byte, names []string, workers int) ([]ParseResult, *Report) {
	if len(names) != len(payloads) {
		panic("spdf: names/payloads length mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]ParseResult, len(payloads))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(payloads) {
					return
				}
				p, err := Parse(payloads[i])
				results[i] = ParseResult{Path: names[i], Parsed: p, Err: err}
			}
		}()
	}
	wg.Wait()

	rep := &Report{Total: len(results), ByClass: map[ErrorClass]int{}}
	for _, res := range results {
		switch {
		case res.Err == nil:
			rep.OK++
		case res.Parsed != nil && res.Parsed.Text != "":
			rep.Salvaged++
		default:
			rep.Failed++
		}
		if pe, ok := res.Err.(*ParseError); ok {
			rep.ByClass[pe.Class]++
		}
	}
	return results, rep
}

// ParseDir reads every *.spdf file under dir (sorted for determinism) and
// parses them in parallel.
func ParseDir(dir string, workers int) ([]ParseResult, *Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.spdf"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	payloads := make([][]byte, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, fmt.Errorf("spdf: reading %s: %w", p, err)
		}
		payloads[i] = data
	}
	results, rep := ParseAll(payloads, paths, workers)
	return results, rep, nil
}

// MetadataJSON serialises parsed metadata to the JSON form the pipeline
// stores alongside extracted text (AdaParse's output contract).
func MetadataJSON(m Metadata) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
