// Package spdf implements the synthetic PDF-like document container and its
// fault-tolerant parser, standing in for AdaParse in the paper's pipeline.
//
// Real PDFs are object graphs with dictionaries and streams; AdaParse's job
// is to turn millions of them into {text, metadata JSON} with per-file error
// isolation at HPC scale. SPDF keeps that contract with a deliberately
// PDF-shaped container:
//
//	%SPDF-1.0
//	obj 1 meta
//	<< /DocID (paper-000001) /Title (…) /Authors (A; B) /Year (2019) /Kind (full) >>
//	endobj
//	obj 2 stream /Len 1234
//	…exactly Len bytes of text…
//	endstream
//	%%EOF fnv:9f3c…
//
// The parser tolerates truncation, corrupt objects, bad lengths, and
// checksum mismatches, always salvaging what it can and reporting the
// failure class — the error taxonomy the parallel driver aggregates, as the
// paper's HPC parsing stage does across worker ranks.
package spdf

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/corpus"
	"repro/internal/rng"
)

// Metadata is the parsed document front matter, serialised to JSON by the
// pipeline (the paper's AdaParse emits text + metadata JSON).
type Metadata struct {
	DocID   string   `json:"doc_id"`
	Title   string   `json:"title"`
	Authors []string `json:"authors"`
	Year    int      `json:"year"`
	Kind    string   `json:"kind"` // "full" or "abstract"
}

const (
	header  = "%SPDF-1.0"
	trailer = "%%EOF"
)

// Encode renders a corpus document into SPDF container bytes.
func Encode(d *corpus.Document) []byte {
	var b strings.Builder
	text := d.Text()
	kind := "full"
	if d.Kind == corpus.AbstractOnly {
		kind = "abstract"
	}
	b.WriteString(header)
	b.WriteString("\n")
	b.WriteString("obj 1 meta\n")
	fmt.Fprintf(&b, "<< /DocID (%s) /Title (%s) /Authors (%s) /Year (%d) /Kind (%s) >>\n",
		escape(d.ID), escape(d.Title), escape(strings.Join(d.Authors, "; ")), d.Year, kind)
	b.WriteString("endobj\n")
	fmt.Fprintf(&b, "obj 2 stream /Len %d\n", len(text))
	b.WriteString(text)
	b.WriteString("\nendstream\n")
	fmt.Fprintf(&b, "%s fnv:%016x\n", trailer, rng.HashString(text))
	return []byte(b.String())
}

// escape protects the dictionary delimiters inside string values.
func escape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "(", "\\(")
	s = strings.ReplaceAll(s, ")", "\\)")
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			b.WriteByte(s[i])
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// ErrorClass categorises parse failures for the driver's aggregate report.
type ErrorClass string

const (
	ErrNone        ErrorClass = ""
	ErrBadHeader   ErrorClass = "bad_header"
	ErrNoMeta      ErrorClass = "missing_metadata"
	ErrBadMeta     ErrorClass = "malformed_metadata"
	ErrNoStream    ErrorClass = "missing_stream"
	ErrTruncated   ErrorClass = "truncated_stream"
	ErrBadChecksum ErrorClass = "checksum_mismatch"
)

// ParseError reports a classified failure; Partial parse output may still be
// usable (the paper's pipeline keeps salvageable text).
type ParseError struct {
	Class  ErrorClass
	Detail string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("spdf: %s: %s", e.Class, e.Detail)
}

// Parsed is the output of Parse: extracted text, metadata, and whether the
// trailer checksum validated.
type Parsed struct {
	Meta        Metadata
	Text        string
	ChecksumOK  bool
	HasChecksum bool
}

// Parse decodes SPDF bytes. On failure it returns a *ParseError whose Class
// identifies the fault; when the text stream is salvageable despite the
// error (e.g. checksum mismatch, truncation) the returned Parsed carries the
// partial content alongside the error.
func Parse(data []byte) (*Parsed, error) {
	s := string(data)
	if !strings.HasPrefix(s, header) {
		return nil, &ParseError{Class: ErrBadHeader, Detail: "missing %SPDF-1.0 header"}
	}
	out := &Parsed{}

	// Metadata object.
	metaStart := strings.Index(s, "obj 1 meta")
	if metaStart < 0 {
		return nil, &ParseError{Class: ErrNoMeta, Detail: "no metadata object"}
	}
	dictStart := strings.Index(s[metaStart:], "<<")
	dictEnd := strings.Index(s[metaStart:], ">>")
	if dictStart < 0 || dictEnd < 0 || dictEnd < dictStart {
		return nil, &ParseError{Class: ErrBadMeta, Detail: "unterminated dictionary"}
	}
	dict := s[metaStart+dictStart+2 : metaStart+dictEnd]
	meta, err := parseDict(dict)
	if err != nil {
		return nil, err
	}
	out.Meta = *meta

	// Stream object.
	streamTag := "obj 2 stream /Len "
	streamStart := strings.Index(s, streamTag)
	if streamStart < 0 {
		return out, &ParseError{Class: ErrNoStream, Detail: "no text stream object"}
	}
	rest := s[streamStart+len(streamTag):]
	nl := strings.IndexByte(rest, '\n')
	if nl < 0 {
		return out, &ParseError{Class: ErrNoStream, Detail: "stream header unterminated"}
	}
	length, convErr := strconv.Atoi(strings.TrimSpace(rest[:nl]))
	body := rest[nl+1:]
	if convErr != nil || length < 0 {
		// Unparseable length: salvage up to endstream if present.
		if end := strings.Index(body, "\nendstream"); end >= 0 {
			out.Text = body[:end]
			return out, &ParseError{Class: ErrTruncated, Detail: "unreadable stream length; salvaged by delimiter"}
		}
		return out, &ParseError{Class: ErrNoStream, Detail: "unreadable stream length"}
	}
	if len(body) < length {
		// Truncated file: salvage what is there.
		out.Text = body
		return out, &ParseError{Class: ErrTruncated,
			Detail: fmt.Sprintf("stream declares %d bytes, only %d present", length, len(body))}
	}
	out.Text = body[:length]

	// Trailer checksum (optional but validated when present).
	if ti := strings.LastIndex(s, trailer); ti >= 0 {
		line := s[ti:]
		if ci := strings.Index(line, "fnv:"); ci >= 0 {
			out.HasChecksum = true
			hexStr := strings.TrimSpace(line[ci+4:])
			if nl := strings.IndexByte(hexStr, '\n'); nl >= 0 {
				hexStr = hexStr[:nl]
			}
			want, hexErr := strconv.ParseUint(hexStr, 16, 64)
			if hexErr == nil && want == rng.HashString(out.Text) {
				out.ChecksumOK = true
			} else {
				return out, &ParseError{Class: ErrBadChecksum, Detail: "trailer checksum does not match stream"}
			}
		}
	}
	return out, nil
}

// parseDict decodes the << /Key (value) … >> metadata dictionary.
func parseDict(dict string) (*Metadata, *ParseError) {
	fields := map[string]string{}
	i := 0
	for i < len(dict) {
		slash := strings.IndexByte(dict[i:], '/')
		if slash < 0 {
			break
		}
		i += slash + 1
		keyEnd := strings.IndexAny(dict[i:], " (")
		if keyEnd < 0 {
			return nil, &ParseError{Class: ErrBadMeta, Detail: "key without value"}
		}
		key := dict[i : i+keyEnd]
		open := strings.IndexByte(dict[i:], '(')
		if open < 0 {
			return nil, &ParseError{Class: ErrBadMeta, Detail: "value not parenthesised"}
		}
		i += open + 1
		// Scan to unescaped ')'.
		var val strings.Builder
		for i < len(dict) {
			c := dict[i]
			if c == '\\' && i+1 < len(dict) {
				val.WriteByte(dict[i+1])
				i += 2
				continue
			}
			if c == ')' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		fields[key] = val.String()
	}
	if fields["DocID"] == "" {
		return nil, &ParseError{Class: ErrBadMeta, Detail: "missing DocID"}
	}
	year := 0
	if y, err := strconv.Atoi(fields["Year"]); err == nil {
		year = y
	}
	var authors []string
	if a := fields["Authors"]; a != "" {
		for _, part := range strings.Split(a, ";") {
			if p := strings.TrimSpace(part); p != "" {
				authors = append(authors, p)
			}
		}
	}
	return &Metadata{
		DocID:   fields["DocID"],
		Title:   fields["Title"],
		Authors: authors,
		Year:    year,
		Kind:    fields["Kind"],
	}, nil
}

// Corrupt damages SPDF bytes in the given class's characteristic way; the
// fault-injection used by tests and the pipeline's failure-handling bench.
func Corrupt(data []byte, class ErrorClass, r *rng.Source) []byte {
	s := string(data)
	switch class {
	case ErrBadHeader:
		return []byte("%PDF-9.9 not spdf\n" + s[len(header):])
	case ErrNoMeta:
		return []byte(strings.Replace(s, "obj 1 meta", "obj 1 noise", 1))
	case ErrBadMeta:
		return []byte(strings.Replace(s, ">>", "", 1))
	case ErrNoStream:
		return []byte(strings.Replace(s, "obj 2 stream", "obj 2 void", 1))
	case ErrTruncated:
		cut := len(s) / 2
		return []byte(s[:cut])
	case ErrBadChecksum:
		return []byte(strings.Replace(s, "fnv:", "fnv:dead", 1))
	default:
		return data
	}
}
