package spdf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/rng"
)

func sampleDocs(t testing.TB, n int) []*corpus.Document {
	t.Helper()
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	docs := make([]*corpus.Document, n)
	for i := range docs {
		kind := corpus.FullPaper
		if i%3 == 2 {
			kind = corpus.AbstractOnly
		}
		docs[i] = g.GenerateDoc(kind, i)
	}
	return docs
}

func TestRoundTrip(t *testing.T) {
	for _, d := range sampleDocs(t, 10) {
		data := Encode(d)
		p, err := Parse(data)
		if err != nil {
			t.Fatalf("doc %s: %v", d.ID, err)
		}
		if p.Text != d.Text() {
			t.Fatalf("doc %s: text mismatch", d.ID)
		}
		if p.Meta.DocID != d.ID {
			t.Fatalf("DocID %q vs %q", p.Meta.DocID, d.ID)
		}
		if p.Meta.Title != d.Title {
			t.Fatalf("Title %q vs %q", p.Meta.Title, d.Title)
		}
		if len(p.Meta.Authors) != len(d.Authors) {
			t.Fatalf("authors %v vs %v", p.Meta.Authors, d.Authors)
		}
		if p.Meta.Year != d.Year {
			t.Fatalf("year %d vs %d", p.Meta.Year, d.Year)
		}
		if !p.HasChecksum || !p.ChecksumOK {
			t.Fatalf("checksum not validated: has=%v ok=%v", p.HasChecksum, p.ChecksumOK)
		}
		wantKind := "full"
		if d.Kind == corpus.AbstractOnly {
			wantKind = "abstract"
		}
		if p.Meta.Kind != wantKind {
			t.Fatalf("kind %q", p.Meta.Kind)
		}
	}
}

func TestEscaping(t *testing.T) {
	d := sampleDocs(t, 1)[0]
	d.Title = `Dose (Gy) effects \ with parens (nested (deep))`
	p, err := Parse(Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.Title != d.Title {
		t.Fatalf("escaped title %q vs %q", p.Meta.Title, d.Title)
	}
}

func TestCorruptionClasses(t *testing.T) {
	d := sampleDocs(t, 1)[0]
	clean := Encode(d)
	r := rng.New(1)
	cases := []struct {
		class    ErrorClass
		wantText bool // salvageable text expected
	}{
		{ErrBadHeader, false},
		{ErrNoMeta, false},
		{ErrBadMeta, false},
		{ErrNoStream, false},
		{ErrTruncated, true},
		{ErrBadChecksum, true},
	}
	for _, tc := range cases {
		data := Corrupt(clean, tc.class, r)
		p, err := Parse(data)
		if err == nil {
			t.Fatalf("class %s: no error", tc.class)
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Fatalf("class %s: error type %T", tc.class, err)
		}
		if pe.Class != tc.class {
			t.Fatalf("injected %s, detected %s", tc.class, pe.Class)
		}
		if tc.wantText {
			if p == nil || p.Text == "" {
				t.Fatalf("class %s: expected salvaged text", tc.class)
			}
		}
	}
}

func TestTruncatedSalvage(t *testing.T) {
	d := sampleDocs(t, 1)[0]
	data := Corrupt(Encode(d), ErrTruncated, rng.New(2))
	p, err := Parse(data)
	if err == nil {
		t.Fatal("truncated parse succeeded")
	}
	if p == nil || len(p.Text) == 0 {
		t.Fatal("no salvage")
	}
	if !strings.HasPrefix(d.Text(), p.Text[:min(len(p.Text), 50)]) {
		t.Fatal("salvaged text is not a prefix of the original")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParseEmptyInput(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Fatal("nil input parsed")
	}
	if _, err := Parse([]byte("random garbage")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestParseAllIsolation(t *testing.T) {
	docs := sampleDocs(t, 20)
	r := rng.New(3)
	payloads := make([][]byte, len(docs))
	names := make([]string, len(docs))
	for i, d := range docs {
		payloads[i] = Encode(d)
		names[i] = d.ID + ".spdf"
	}
	// Corrupt a third of them with rotating classes.
	classes := []ErrorClass{ErrBadHeader, ErrTruncated, ErrBadChecksum, ErrNoStream}
	corrupted := 0
	for i := 0; i < len(payloads); i += 3 {
		payloads[i] = Corrupt(payloads[i], classes[corrupted%len(classes)], r)
		corrupted++
	}
	results, rep := ParseAll(payloads, names, 4)
	if rep.Total != len(docs) {
		t.Fatalf("report total %d", rep.Total)
	}
	if rep.OK != len(docs)-corrupted {
		t.Fatalf("OK %d, want %d", rep.OK, len(docs)-corrupted)
	}
	if rep.OK+rep.Salvaged+rep.Failed != rep.Total {
		t.Fatalf("report does not partition: %+v", rep)
	}
	for i, res := range results {
		if res.Path != names[i] {
			t.Fatal("result order not preserved")
		}
		if i%3 != 0 && res.Err != nil {
			t.Fatalf("clean doc %d errored: %v", i, res.Err)
		}
	}
	if !strings.Contains(rep.String(), "salvaged") {
		t.Fatalf("report string: %s", rep.String())
	}
}

func TestParseAllWorkerCounts(t *testing.T) {
	docs := sampleDocs(t, 9)
	payloads := make([][]byte, len(docs))
	names := make([]string, len(docs))
	for i, d := range docs {
		payloads[i] = Encode(d)
		names[i] = d.ID
	}
	for _, workers := range []int{0, 1, 3, 16} {
		_, rep := ParseAll(payloads, names, workers)
		if rep.OK != len(docs) {
			t.Fatalf("workers=%d: OK=%d", workers, rep.OK)
		}
	}
}

func TestParseDir(t *testing.T) {
	dir := t.TempDir()
	docs := sampleDocs(t, 5)
	for _, d := range docs {
		if err := os.WriteFile(filepath.Join(dir, d.ID+".spdf"), Encode(d), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-spdf file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	results, rep, err := ParseDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 5 || len(results) != 5 {
		t.Fatalf("ParseDir: %+v", rep)
	}
}

func TestParseDirMissing(t *testing.T) {
	results, rep, err := ParseDir(filepath.Join(t.TempDir(), "empty-subdir-missing"), 2)
	if err != nil {
		t.Fatalf("glob of missing dir should yield empty, got err %v", err)
	}
	if len(results) != 0 || rep.Total != 0 {
		t.Fatal("expected empty result set")
	}
}

func TestMetadataJSON(t *testing.T) {
	m := Metadata{DocID: "paper-000001", Title: "T", Authors: []string{"A", "B"}, Year: 2020, Kind: "full"}
	data, err := MetadataJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metadata
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.DocID != m.DocID || len(back.Authors) != 2 || back.Year != 2020 {
		t.Fatalf("round trip: %+v", back)
	}
}

func BenchmarkEncode(b *testing.B) {
	d := sampleDocs(b, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(d)
	}
}

func BenchmarkParse(b *testing.B) {
	data := Encode(sampleDocs(b, 1)[0])
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Parse(data)
	}
}

func BenchmarkParseAllParallel(b *testing.B) {
	docs := sampleDocs(b, 200)
	payloads := make([][]byte, len(docs))
	names := make([]string, len(docs))
	for i, d := range docs {
		payloads[i] = Encode(d)
		names[i] = d.ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ParseAll(payloads, names, 0)
	}
}
