package spdf

import (
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/rng"
)

// Robustness: the parser must never panic and must always return a
// classified error (or success) no matter how the input is damaged — the
// property that lets the parallel driver survive a million-file campaign.

func TestParseNeverPanicsOnMutatedInput(t *testing.T) {
	kb := corpus.Build(42, 15)
	g := corpus.NewGenerator(kb, 7)
	clean := Encode(g.GenerateDoc(corpus.FullPaper, 0))

	f := func(seed uint64, nMutations uint8) bool {
		r := rng.New(seed)
		data := append([]byte(nil), clean...)
		n := int(nMutations%32) + 1
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0: // flip a byte
				data[r.Intn(len(data))] ^= byte(1 << r.Intn(8))
			case 1: // truncate
				if len(data) > 10 {
					data = data[:r.Intn(len(data))]
				}
			case 2: // duplicate a slice
				if len(data) > 20 {
					a := r.Intn(len(data) - 10)
					b := a + r.Intn(10)
					data = append(data[:b], data[a:]...)
				}
			case 3: // zero a region
				if len(data) > 4 {
					start := r.Intn(len(data) - 2)
					for j := start; j < start+2; j++ {
						data[j] = 0
					}
				}
			}
			if len(data) == 0 {
				data = []byte{0}
			}
		}
		p, err := Parse(data)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok || pe.Class == ErrNone {
				return false // unclassified error
			}
		}
		// If parse claims success, the output must be self-consistent.
		if err == nil && p.Meta.DocID == "" {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAllNeverPanicsOnMixedGarbage(t *testing.T) {
	kb := corpus.Build(42, 15)
	g := corpus.NewGenerator(kb, 7)
	r := rng.New(55)
	var payloads [][]byte
	var names []string
	for i := 0; i < 40; i++ {
		d := g.GenerateDoc(corpus.AbstractOnly, i)
		data := Encode(d)
		switch i % 4 {
		case 1:
			data = data[:len(data)/3]
		case 2:
			data = []byte("completely unrelated bytes \x00\x01\x02")
		case 3:
			data = Corrupt(data, ErrBadMeta, r)
		}
		payloads = append(payloads, data)
		names = append(names, d.ID)
	}
	results, rep := ParseAll(payloads, names, 0)
	if len(results) != 40 || rep.Total != 40 {
		t.Fatalf("results %d report %d", len(results), rep.Total)
	}
	if rep.OK == 0 {
		t.Fatal("even clean files failed")
	}
	if rep.OK+rep.Salvaged+rep.Failed != rep.Total {
		t.Fatalf("report does not partition: %+v", rep)
	}
}
