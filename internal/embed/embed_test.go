package embed

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/f16"
)

func TestDeterministic(t *testing.T) {
	e1 := NewDefault()
	e2 := NewDefault()
	a := e1.Encode("ionizing radiation induces DNA double-strand breaks")
	b := e2.Encode("ionizing radiation induces DNA double-strand breaks")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at dim %d", i)
		}
	}
}

func TestUnitNorm(t *testing.T) {
	e := NewDefault()
	v := e.Encode("tumor suppressor p53 activates apoptosis")
	if n := f16.Norm(v); math.Abs(float64(n-1)) > 1e-5 {
		t.Fatalf("norm = %v", n)
	}
}

func TestEmptyTextZeroVector(t *testing.T) {
	e := NewDefault()
	v := e.Encode("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text produced nonzero vector")
		}
	}
}

func TestSimilarTextsCloser(t *testing.T) {
	e := NewDefault()
	base := e.Encode("radiation therapy damages tumor cell DNA causing apoptosis")
	near := e.Encode("radiation treatment damages tumor cell DNA and triggers apoptosis")
	far := e.Encode("the stock market closed higher on strong quarterly earnings")
	simNear := f16.Cosine(base, near)
	simFar := f16.Cosine(base, far)
	if simNear <= simFar {
		t.Fatalf("similar text cosine %v <= dissimilar %v", simNear, simFar)
	}
	if simNear < 0.5 {
		t.Fatalf("paraphrase similarity too low: %v", simNear)
	}
	if simFar > 0.4 {
		t.Fatalf("unrelated similarity too high: %v", simFar)
	}
}

func TestMorphologicalOverlap(t *testing.T) {
	// Character n-grams should make inflected forms resemble each other.
	e := NewDefault()
	a := e.Encode("irradiated cells")
	b := e.Encode("irradiation of cells")
	c := e.Encode("financial quarterly report")
	if f16.Cosine(a, b) <= f16.Cosine(a, c) {
		t.Fatalf("morphological variants not closer: %v vs %v",
			f16.Cosine(a, b), f16.Cosine(a, c))
	}
}

func TestWordOrderMatters(t *testing.T) {
	// Bigram features must distinguish compositions sharing a vocabulary.
	e := NewDefault()
	a := e.Encode("dose escalation before surgery improves control")
	b := e.Encode("surgery before dose escalation improves control")
	if sim := f16.Cosine(a, b); sim >= 0.9999 {
		t.Fatalf("word order ignored entirely: cosine %v", sim)
	}
}

func TestDimensions(t *testing.T) {
	for _, dim := range []int{16, 128, 384} {
		e := New(dim, 1)
		if got := len(e.Encode("test")); got != dim {
			t.Fatalf("dim %d produced %d", dim, got)
		}
		if e.Dim() != dim {
			t.Fatalf("Dim() = %d", e.Dim())
		}
	}
}

func TestSeedChangesEmbedding(t *testing.T) {
	a := New(128, 1).Encode("radiation biology")
	b := New(128, 2).Encode("radiation biology")
	if f16.Cosine(a, b) > 0.9 {
		t.Fatalf("different seeds produce near-identical embeddings: %v", f16.Cosine(a, b))
	}
}

func TestEncodeInto(t *testing.T) {
	e := New(64, 3)
	dst := make([]float32, 64)
	e.EncodeInto(dst, "alpha beta")
	want := e.Encode("alpha beta")
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatal("EncodeInto differs from Encode")
		}
	}
	// Buffer reuse must fully overwrite.
	e.EncodeInto(dst, "gamma delta")
	want2 := e.Encode("gamma delta")
	for i := range dst {
		if dst[i] != want2[i] {
			t.Fatal("EncodeInto buffer reuse leaked state")
		}
	}
}

func TestEncodeIntoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong buffer size")
		}
	}()
	New(64, 0).EncodeInto(make([]float32, 32), "x")
}

func TestTermFrequencyDamping(t *testing.T) {
	e := NewDefault()
	once := e.Encode("apoptosis regulation pathway")
	spam := e.Encode("apoptosis apoptosis apoptosis apoptosis apoptosis regulation pathway")
	if sim := f16.Cosine(once, spam); sim < 0.6 {
		t.Fatalf("repetition dominated embedding: cosine %v", sim)
	}
}

func TestPoolMatchesSequential(t *testing.T) {
	e := NewDefault()
	texts := make([]string, 37)
	for i := range texts {
		texts[i] = fmt.Sprintf("document %d about radiation dose fractionation topic %d", i, i%5)
	}
	seq := e.EncodeBatch(texts)
	par := NewPool(e, 4).EncodeAll(texts)
	for i := range texts {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("pool output differs at text %d dim %d", i, j)
			}
		}
	}
}

func TestPoolEmptyInput(t *testing.T) {
	out := NewPool(NewDefault(), 4).EncodeAll(nil)
	if len(out) != 0 {
		t.Fatal("empty input gave output")
	}
}

func TestPoolF16(t *testing.T) {
	e := NewDefault()
	texts := []string{"alpha", "beta gamma", "delta"}
	halves := NewPool(e, 2).EncodeAllF16(texts)
	for i, h := range halves {
		want := f16.Encode(e.Encode(texts[i]))
		if len(h) != len(want) {
			t.Fatal("length mismatch")
		}
		for j := range h {
			if h[j] != want[j] {
				t.Fatalf("f16 pool mismatch text %d dim %d", i, j)
			}
		}
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(NewDefault(), 0)
	if p.workers <= 0 {
		t.Fatal("default workers not positive")
	}
}

// Property: any text embeds to either zero (no features) or a unit vector.
func TestQuickNormInvariant(t *testing.T) {
	e := New(64, 9)
	f := func(s string) bool {
		v := e.Encode(s)
		n := float64(f16.Norm(v))
		return n == 0 || math.Abs(n-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: cosine self-similarity is 1 for non-empty embeddings.
func TestQuickSelfSimilarity(t *testing.T) {
	e := New(64, 10)
	f := func(a uint32) bool {
		text := fmt.Sprintf("token%d radiation token%d", a%50, a%13)
		v := e.Encode(text)
		return math.Abs(float64(f16.Cosine(v, v))-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	e := NewDefault()
	text := "Ionizing radiation induces double-strand breaks that activate the ATM kinase pathway and p53-mediated apoptosis in tumor cells."
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = e.Encode(text)
	}
}

func BenchmarkPoolEncode1000(b *testing.B) {
	e := NewDefault()
	texts := make([]string, 1000)
	for i := range texts {
		texts[i] = fmt.Sprintf("chunk %d of radiation biology text with dose %d Gy and pathway %d", i, i%30, i%7)
	}
	p := NewPool(e, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.EncodeAll(texts)
	}
}
