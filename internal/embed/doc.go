// Package embed implements the text-embedding substrate that stands in for
// PubMedBERT in the paper's pipeline.
//
// The encoder is a deterministic feature-hashing model: each word
// contributes its surface form plus character n-grams to a sparse
// bag-of-features vector in a 2^18-dimensional hashed space, which is then
// projected to a dense d-dimensional embedding with a seeded sparse random
// projection and L2-normalised. Like a real sentence encoder, texts sharing
// vocabulary and morphology land near each other under cosine similarity;
// unlike one, it is reproducible offline with no model weights.
//
// The package also provides a parallel batch encoder (Pool) mirroring the
// paper's HPC embedding stage, which encoded 173,318 chunks on ALCF nodes,
// and an IDF-weighting hook so common tokens contribute less to the hashed
// features. Encoded vectors are unit-norm float32 slices ready for any
// vecstore index (which stores them as FP16 or quantized codes).
package embed
