package embed

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/f16"
	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// Default hyperparameters of the encoder; chosen so a full-scale corpus
// (173k chunks) fits comfortably in memory as FP16 while retrieval quality
// stays high (see package tests for nearest-neighbour sanity checks).
const (
	DefaultDim  = 384
	hashSpace   = 1 << 18
	ngramSize   = 3
	projPerFeat = 8 // non-zeros per hashed feature in the sparse projection
)

// Encoder converts text to dense unit vectors. It is immutable after
// construction and safe for concurrent use.
type Encoder struct {
	dim  int
	seed uint64
	// Sparse random projection, lazily materialised per hashed feature:
	// feature f maps to projPerFeat (index, sign) pairs derived from a
	// per-feature PRNG, so no O(hashSpace×dim) matrix is stored.

	// idf optionally reweights word features by corpus rarity (see
	// TrainIDF); nil means uniform weights.
	idf *IDF
}

// New returns an encoder producing dim-dimensional embeddings. All encoders
// constructed with the same (dim, seed) are identical functions.
func New(dim int, seed uint64) *Encoder {
	if dim <= 0 {
		panic("embed: non-positive dimension")
	}
	return &Encoder{dim: dim, seed: seed}
}

// NewDefault returns the encoder used throughout the reproduction
// (384 dimensions, fixed seed) — the stand-in for PubMedBERT.
func NewDefault() *Encoder { return New(DefaultDim, 0x9e3779b9) }

// Dim returns the embedding dimensionality.
func (e *Encoder) Dim() int { return e.dim }

// Encode embeds text into a unit-norm float32 vector. Empty or
// feature-free text yields the zero vector.
func (e *Encoder) Encode(text string) []float32 {
	v := make([]float32, e.dim)
	e.EncodeInto(v, text)
	return v
}

// EncodeInto embeds text into dst (len must equal Dim), reusing the buffer.
func (e *Encoder) EncodeInto(dst []float32, text string) {
	if len(dst) != e.dim {
		panic("embed: EncodeInto dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	words := tokenizer.Words(text)
	if len(words) == 0 {
		return
	}
	// Term-frequency damping: repeated words contribute sub-linearly, like
	// the attention pooling of a real encoder.
	counts := make(map[string]int, len(words))
	for _, w := range words {
		counts[w]++
	}
	// Accumulate in sorted word order: float addition is not associative,
	// so map-iteration order would make embeddings run-dependent once
	// weights are not exactly representable (e.g. under IDF).
	distinct := make([]string, 0, len(counts))
	for w := range counts {
		distinct = append(distinct, w)
	}
	sort.Strings(distinct)
	for _, w := range distinct {
		c := counts[w]
		weight := float32(1)
		for k := 1; k < c && k < 4; k++ {
			weight += 1 / float32(k+1)
		}
		if e.idf != nil {
			weight *= e.idf.Weight(w)
		}
		e.addFeature(dst, w, 2*weight)
		for _, g := range tokenizer.NGrams(w, ngramSize) {
			e.addFeature(dst, g, weight*0.5)
		}
	}
	// Bigram features capture local composition ("double-strand" vs
	// "single-strand" contexts).
	for i := 0; i+1 < len(words); i++ {
		e.addFeature(dst, words[i]+"\x1f"+words[i+1], 1)
	}
	f16.Normalize(dst)
}

// addFeature accumulates the sparse projection of one hashed feature.
func (e *Encoder) addFeature(dst []float32, feat string, weight float32) {
	h := rng.HashString(feat) ^ e.seed
	f := h % hashSpace
	// Derive the feature's projection pattern from its own generator so the
	// projection matrix is implicit and immutable.
	g := rng.New(e.seed ^ (f * 0x9E3779B97F4A7C15))
	for k := 0; k < projPerFeat; k++ {
		idx := g.Intn(e.dim)
		sign := float32(1)
		if g.Bool(0.5) {
			sign = -1
		}
		dst[idx] += sign * weight
	}
}

// WithIDF returns a copy of the encoder whose word features are weighted
// by the given IDF model. Encoders derived from the same (dim, seed) but
// different IDFs produce different — and incomparable — vector spaces;
// index and queries must use the same encoder.
func (e *Encoder) WithIDF(idf *IDF) *Encoder {
	out := *e
	out.idf = idf
	return &out
}

// IDF is an inverse-document-frequency model over word features: words
// appearing in most documents (the corpus's boilerplate — "the", "results",
// the filler sentences of method sections) are downweighted, sharpening
// retrieval on content-bearing terms. This mirrors what a contrastively
// trained encoder like PubMedBERT learns implicitly; here it is learned
// explicitly from document statistics, so it is available as a controlled
// ablation of embedder quality (see the retrieval ablation benches).
type IDF struct {
	weights  map[string]float32
	fallback float32
}

// TrainIDF fits IDF weights over the documents. Weight for word w is
// log(1 + N/df(w)), normalised so the corpus-mean weight is 1 (keeping
// magnitudes comparable to the unweighted encoder). Unseen words get the
// maximum (rarest) weight.
func TrainIDF(docs []string) *IDF {
	df := make(map[string]int)
	for _, d := range docs {
		seen := make(map[string]bool)
		for _, w := range tokenizer.Words(d) {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	n := float64(len(docs))
	weights := make(map[string]float32, len(df))
	var sum float64
	var maxW float64
	for w, c := range df {
		v := math.Log(1 + n/float64(c))
		weights[w] = float32(v)
		sum += v
		if v > maxW {
			maxW = v
		}
	}
	if len(weights) > 0 {
		mean := float32(sum / float64(len(weights)))
		for w := range weights {
			weights[w] /= mean
		}
		maxW /= sum / float64(len(weights))
	}
	fb := float32(maxW)
	if fb <= 0 {
		fb = 1
	}
	return &IDF{weights: weights, fallback: fb}
}

// Weight returns the multiplier for a (normalised) word.
func (idf *IDF) Weight(word string) float32 {
	if w, ok := idf.weights[word]; ok {
		return w
	}
	return idf.fallback
}

// Vocab reports the number of distinct words the model covers.
func (idf *IDF) Vocab() int { return len(idf.weights) }

// EncodeBatch embeds each text sequentially. For large batches prefer Pool.
func (e *Encoder) EncodeBatch(texts []string) [][]float32 {
	out := make([][]float32, len(texts))
	for i, t := range texts {
		out[i] = e.Encode(t)
	}
	return out
}

// Pool is a parallel batch encoder. It fans texts out over a fixed worker
// set, preserving input order in the output — the embedding stage of the
// paper's pipeline in miniature.
type Pool struct {
	enc     *Encoder
	workers int
}

// NewPool returns a pool with the given parallelism; workers <= 0 selects
// GOMAXPROCS.
func NewPool(enc *Encoder, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{enc: enc, workers: workers}
}

// EncodeAll embeds texts in parallel, returning vectors in input order.
func (p *Pool) EncodeAll(texts []string) [][]float32 {
	out := make([][]float32, len(texts))
	if len(texts) == 0 {
		return out
	}
	// Never spawn more workers than texts: retrieval micro-batches are
	// often 1-32 queries, and a fan-out of GOMAXPROCS goroutines per call
	// would dominate the cost of embedding a single query.
	workers := p.workers
	if workers > len(texts) {
		workers = len(texts)
	}
	if workers == 1 {
		for i, t := range texts {
			out[i] = p.enc.Encode(t)
		}
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(texts) {
					return
				}
				out[i] = p.enc.Encode(texts[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// EncodeAllF16 embeds texts in parallel directly into half-precision
// storage vectors, the layout used by the vector store (FP16, as in the
// paper's 747 MB FAISS store).
func (p *Pool) EncodeAllF16(texts []string) [][]uint16 {
	vecs := p.EncodeAll(texts)
	out := make([][]uint16, len(vecs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(vecs) {
					return
				}
				out[i] = f16.Encode(vecs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
