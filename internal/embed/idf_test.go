package embed

import (
	"fmt"
	"testing"

	"repro/internal/f16"
)

func idfCorpus() []string {
	docs := make([]string, 40)
	for i := range docs {
		// "radiation" and "the" appear everywhere; one rare content term
		// per document.
		docs[i] = fmt.Sprintf("the radiation study reports finding rareterm%d in the cohort", i)
	}
	return docs
}

func TestTrainIDFWeights(t *testing.T) {
	idf := TrainIDF(idfCorpus())
	common := idf.Weight("radiation")
	rare := idf.Weight("rareterm7")
	if rare <= common {
		t.Fatalf("rare weight %v not above common %v", rare, common)
	}
	if idf.Weight("neverseenword") < rare {
		t.Fatalf("unseen word weight %v below rarest observed %v", idf.Weight("neverseenword"), rare)
	}
	if idf.Vocab() == 0 {
		t.Fatal("empty vocabulary")
	}
}

func TestTrainIDFEmptyCorpus(t *testing.T) {
	idf := TrainIDF(nil)
	if w := idf.Weight("anything"); w <= 0 {
		t.Fatalf("degenerate fallback weight %v", w)
	}
}

func TestIDFMeanWeightNearOne(t *testing.T) {
	idf := TrainIDF(idfCorpus())
	var sum float32
	var n int
	for w := range idf.weights {
		sum += idf.weights[w]
		n++
	}
	mean := sum / float32(n)
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("mean weight %v, want ~1", mean)
	}
}

func TestWithIDFSharpensContentMatch(t *testing.T) {
	// Query shares only boilerplate with doc A but the content term with
	// doc B; IDF weighting must rank B closer than the uniform encoder
	// margin.
	docs := idfCorpus()
	idf := TrainIDF(docs)
	plain := NewDefault()
	weighted := plain.WithIDF(idf)

	query := "rareterm7 effects observed"
	boiler := "the radiation study reports finding in the cohort"
	content := docs[7]

	marginPlain := f16.Cosine(plain.Encode(query), plain.Encode(content)) -
		f16.Cosine(plain.Encode(query), plain.Encode(boiler))
	marginW := f16.Cosine(weighted.Encode(query), weighted.Encode(content)) -
		f16.Cosine(weighted.Encode(query), weighted.Encode(boiler))
	if marginW <= marginPlain {
		t.Fatalf("IDF did not sharpen content match: margin %v vs %v", marginW, marginPlain)
	}
}

func TestWithIDFDoesNotMutateOriginal(t *testing.T) {
	plain := NewDefault()
	before := plain.Encode("radiation dose fractionation")
	_ = plain.WithIDF(TrainIDF(idfCorpus()))
	after := plain.Encode("radiation dose fractionation")
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("WithIDF mutated the base encoder")
		}
	}
}

func TestIDFEncoderDeterministic(t *testing.T) {
	idf := TrainIDF(idfCorpus())
	a := NewDefault().WithIDF(idf).Encode("rareterm3 in the cohort")
	b := NewDefault().WithIDF(idf).Encode("rareterm3 in the cohort")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("IDF-weighted encoding not deterministic")
		}
	}
}
