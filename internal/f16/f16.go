// Package f16 implements IEEE 754 binary16 (half-precision) conversion and
// half-precision vector math.
//
// The paper stores its 173,318 PubMedBERT chunk embeddings as FP16 (747 MB
// total) inside FAISS. This package provides the same storage layout for the
// vector store in internal/vecstore: vectors are held as []uint16 and
// converted on the fly during similarity computation, halving memory
// relative to float32 at a small accuracy cost that is irrelevant for top-k
// retrieval (verified by property tests).
package f16

import "math"

// FromFloat32 converts a float32 to its nearest binary16 representation
// (round-to-nearest-even), with overflow mapping to ±Inf and underflow
// flushing through subnormals to zero.
func FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	man := bits & 0x7FFFFF

	switch {
	case exp >= 0x1F:
		// Overflow, infinity, or NaN.
		if int32(bits>>23&0xFF) == 0xFF {
			if man != 0 {
				return sign | 0x7E00 // NaN (quiet)
			}
			return sign | 0x7C00 // Inf
		}
		return sign | 0x7C00
	case exp <= 0:
		// Subnormal half or zero.
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(man >> shift)
		// Round to nearest even.
		rem := man & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(man>>13)
		rem := man & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// lut16to32 is the exhaustive binary16→float32 conversion table (256 KiB,
// L2-resident). lut16to32[h] == toFloat32Compute(h) bit-for-bit for every h,
// so table decode is exact; it turns the branchy widening conversion on the
// vector-scan hot path into a single load. Built once at package load.
var lut16to32 [1 << 16]float32

func init() {
	for i := range lut16to32 {
		lut16to32[i] = toFloat32Compute(uint16(i))
	}
}

// ToFloat32 converts a binary16 value to float32 exactly (every half value
// is representable in single precision).
func ToFloat32(h uint16) float32 { return lut16to32[h] }

// toFloat32Compute is the definitional bit-manipulation conversion used to
// build the lookup table (and to document the semantics).
func toFloat32Compute(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	man := uint32(h & 0x3FF)

	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1F:
		if man == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// Encode converts a float32 slice into a freshly allocated half slice.
func Encode(v []float32) []uint16 {
	out := make([]uint16, len(v))
	for i, f := range v {
		out[i] = FromFloat32(f)
	}
	return out
}

// AppendEncoded appends the binary16 encoding of v to dst and returns the
// extended slice. It is the allocation-free building block for contiguous
// code storage in internal/vecstore (one []uint16 holding many rows).
func AppendEncoded(dst []uint16, v []float32) []uint16 {
	for _, f := range v {
		dst = append(dst, FromFloat32(f))
	}
	return dst
}

// Decode converts a half slice into a freshly allocated float32 slice.
func Decode(h []uint16) []float32 {
	out := make([]float32, len(h))
	for i, x := range h {
		out[i] = ToFloat32(x)
	}
	return out
}

// DecodeInto converts h into dst, which must have the same length.
func DecodeInto(dst []float32, h []uint16) {
	if len(dst) != len(h) {
		panic("f16: DecodeInto length mismatch")
	}
	for i, x := range h {
		dst[i] = ToFloat32(x)
	}
}

// Dot returns the inner product of a half-precision stored vector with a
// float32 query. This is the hot loop of vector search: the query stays in
// full precision and each stored component is widened once. The loop is
// manually unrolled by four to keep the widening conversions pipelined.
func Dot(h []uint16, q []float32) float32 {
	if len(h) != len(q) {
		panic("f16: Dot length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(h); i += 4 {
		s0 += ToFloat32(h[i]) * q[i]
		s1 += ToFloat32(h[i+1]) * q[i+1]
		s2 += ToFloat32(h[i+2]) * q[i+2]
		s3 += ToFloat32(h[i+3]) * q[i+3]
	}
	for ; i < len(h); i++ {
		s0 += ToFloat32(h[i]) * q[i]
	}
	return s0 + s1 + s2 + s3
}

// DotF32 returns the inner product of two float32 vectors.
func DotF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("f16: DotF32 length mismatch")
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a float32 vector.
func Norm(v []float32) float32 {
	return float32(math.Sqrt(float64(DotF32(v, v))))
}

// Normalize scales v to unit L2 norm in place. Zero vectors are left
// untouched (cosine against them is defined as 0 by callers).
func Normalize(v []float32) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two float32 vectors, 0 if either
// is a zero vector.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return DotF32(a, b) / (na * nb)
}

// L2Squared returns the squared Euclidean distance between a stored half
// vector and a float32 query.
func L2Squared(h []uint16, q []float32) float32 {
	if len(h) != len(q) {
		panic("f16: L2Squared length mismatch")
	}
	var s float32
	for i := range h {
		d := ToFloat32(h[i]) - q[i]
		s += d * d
	}
	return s
}

// BytesPerVector reports the storage footprint of one half-precision vector
// of the given dimension, used for dataset-statistics reporting.
func BytesPerVector(dim int) int { return 2 * dim }
