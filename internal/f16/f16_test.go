package f16

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRoundTripExactValues(t *testing.T) {
	// Values exactly representable in binary16 must round-trip exactly.
	exact := []float32{0, 1, -1, 0.5, 0.25, 2, 1024, -0.125, 65504, -65504, 0.000060975552}
	for _, v := range exact {
		got := ToFloat32(FromFloat32(v))
		if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if ToFloat32(FromFloat32(inf)) != inf {
		t.Error("+Inf did not survive")
	}
	ninf := float32(math.Inf(-1))
	if ToFloat32(FromFloat32(ninf)) != ninf {
		t.Error("-Inf did not survive")
	}
	nan := float32(math.NaN())
	if !math.IsNaN(float64(ToFloat32(FromFloat32(nan)))) {
		t.Error("NaN did not survive")
	}
	// Overflow beyond half range maps to Inf.
	if !math.IsInf(float64(ToFloat32(FromFloat32(1e20))), 1) {
		t.Error("1e20 did not overflow to +Inf")
	}
	if !math.IsInf(float64(ToFloat32(FromFloat32(-1e20))), -1) {
		t.Error("-1e20 did not overflow to -Inf")
	}
}

func TestSignedZero(t *testing.T) {
	pz := FromFloat32(0)
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if pz == nz {
		t.Error("signed zeros not distinguished in half encoding")
	}
	if ToFloat32(pz) != 0 || ToFloat32(nz) != 0 {
		t.Error("zeros decode nonzero")
	}
}

func TestSubnormals(t *testing.T) {
	// Smallest positive subnormal half = 2^-24.
	tiny := float32(math.Pow(2, -24))
	h := FromFloat32(tiny)
	if h == 0 {
		t.Fatal("2^-24 flushed to zero")
	}
	if got := ToFloat32(h); got != tiny {
		t.Errorf("subnormal round trip %v -> %v", tiny, got)
	}
	// Below half of the smallest subnormal flushes to zero.
	if FromFloat32(float32(math.Pow(2, -26)))&0x7FFF != 0 {
		t.Error("2^-26 did not flush to zero")
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// Property: for normal-range values, half conversion keeps relative
	// error under 2^-11 (one ulp of the 10-bit mantissa with rounding).
	f := func(raw uint32) bool {
		v := float32(raw%100000)/100 - 500 // [-500, 500)
		if v == 0 {
			return true
		}
		got := ToFloat32(FromFloat32(v))
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel <= math.Pow(2, -11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Property: conversion preserves order for positive values.
	prev := float32(0)
	for v := float32(0.001); v < 60000; v *= 1.37 {
		got := ToFloat32(FromFloat32(v))
		if got < prev {
			t.Fatalf("monotonicity violated at %v: %v < %v", v, got, prev)
		}
		prev = got
	}
}

func TestEncodeDecode(t *testing.T) {
	in := []float32{0.1, -2.5, 3.75, 100}
	h := Encode(in)
	out := Decode(h)
	if len(out) != len(in) {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if math.Abs(float64(out[i]-in[i])) > 0.01*math.Abs(float64(in[i]))+1e-4 {
			t.Errorf("index %d: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestDecodeInto(t *testing.T) {
	h := Encode([]float32{1, 2, 3})
	dst := make([]float32, 3)
	DecodeInto(dst, h)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("DecodeInto got %v", dst)
	}
}

func TestDecodeIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	DecodeInto(make([]float32, 2), make([]uint16, 3))
}

func TestDotAgainstF32(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(400)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(r.Normal(0, 1))
			b[i] = float32(r.Normal(0, 1))
		}
		exact := DotF32(a, b)
		half := Dot(Encode(a), b)
		if math.Abs(float64(half-exact)) > 0.01*float64(n)+0.05 {
			t.Fatalf("n=%d: half dot %v vs exact %v", n, half, exact)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot(make([]uint16, 2), make([]float32, 3))
}

func TestNormalizeUnitNorm(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if math.Abs(float64(Norm(v)-1)) > 1e-6 {
		t.Fatalf("norm after Normalize = %v", Norm(v))
	}
	if math.Abs(float64(v[0]-0.6)) > 1e-6 || math.Abs(float64(v[1]-0.8)) > 1e-6 {
		t.Fatalf("Normalize direction changed: %v", v)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := []float32{0, 0, 0}
	Normalize(v) // must not NaN
	for _, x := range v {
		if x != 0 {
			t.Fatal("zero vector mutated")
		}
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if c := Cosine(a, b); math.Abs(float64(c)) > 1e-6 {
		t.Fatalf("orthogonal cosine %v", c)
	}
	if c := Cosine(a, a); math.Abs(float64(c-1)) > 1e-6 {
		t.Fatalf("self cosine %v", c)
	}
	if c := Cosine(a, []float32{0, 0}); c != 0 {
		t.Fatalf("zero-vector cosine %v", c)
	}
}

func TestL2Squared(t *testing.T) {
	h := Encode([]float32{1, 2})
	q := []float32{4, 6}
	got := L2Squared(h, q)
	if math.Abs(float64(got-25)) > 0.1 {
		t.Fatalf("L2Squared = %v, want 25", got)
	}
}

func TestBytesPerVector(t *testing.T) {
	if BytesPerVector(384) != 768 {
		t.Fatalf("BytesPerVector(384) = %d", BytesPerVector(384))
	}
}

// Property: top-1 neighbour under half-precision storage matches full
// precision for well-separated random vectors — the invariant retrieval
// relies on.
func TestHalfPrecisionPreservesTopNeighbor(t *testing.T) {
	r := rng.New(7)
	const dim, n = 64, 50
	vecs := make([][]float32, n)
	halves := make([][]uint16, n)
	for i := range vecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(r.Normal(0, 1))
		}
		Normalize(v)
		vecs[i] = v
		halves[i] = Encode(v)
	}
	for trial := 0; trial < 30; trial++ {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(r.Normal(0, 1))
		}
		Normalize(q)
		bestExact, bestExactScore := -1, float32(math.Inf(-1))
		bestHalf, bestHalfScore := -1, float32(math.Inf(-1))
		for i := 0; i < n; i++ {
			if s := DotF32(vecs[i], q); s > bestExactScore {
				bestExact, bestExactScore = i, s
			}
			if s := Dot(halves[i], q); s > bestHalfScore {
				bestHalf, bestHalfScore = i, s
			}
		}
		if bestExact != bestHalf {
			// Allow ties within half-precision resolution.
			if math.Abs(float64(bestExactScore-bestHalfScore)) > 1e-3 {
				t.Fatalf("trial %d: half top-1 %d differs from exact %d (scores %v vs %v)",
					trial, bestHalf, bestExact, bestHalfScore, bestExactScore)
			}
		}
	}
}

func BenchmarkDotHalf384(b *testing.B) {
	r := rng.New(1)
	v := make([]float32, 384)
	q := make([]float32, 384)
	for i := range v {
		v[i] = float32(r.Normal(0, 1))
		q[i] = float32(r.Normal(0, 1))
	}
	h := Encode(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(h, q)
	}
}

func BenchmarkDotF32384(b *testing.B) {
	r := rng.New(1)
	v := make([]float32, 384)
	q := make([]float32, 384)
	for i := range v {
		v[i] = float32(r.Normal(0, 1))
		q[i] = float32(r.Normal(0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DotF32(v, q)
	}
}
