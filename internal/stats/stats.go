// Package stats provides the small statistical toolkit the evaluation
// harness uses: summary moments, Wilson binomial confidence intervals, and
// bootstrap resampling for accuracy deltas.
package stats

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// WilsonCI returns the 95% Wilson score interval for k successes of n
// trials — the standard interval for benchmark accuracies (well-behaved at
// extreme proportions, unlike the normal approximation).
func WilsonCI(k, n int) Interval {
	if n == 0 {
		return Interval{}
	}
	const z = 1.959963984540054
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	return Interval{Lo: clamp01(center - half), Hi: clamp01(center + half)}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// BootstrapMeanCI returns a percentile bootstrap 95% CI for the mean of xs
// using the given number of resamples and a deterministic seed.
func BootstrapMeanCI(xs []float64, resamples int, seed uint64) Interval {
	if len(xs) == 0 || resamples <= 0 {
		return Interval{}
	}
	r := rng.New(seed)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		var s float64
		for i := 0; i < len(xs); i++ {
			s += xs[r.Intn(len(xs))]
		}
		means[b] = s / float64(len(xs))
	}
	sort.Float64s(means)
	lo := means[int(0.025*float64(resamples))]
	hi := means[int(math.Min(0.975*float64(resamples), float64(resamples-1)))]
	return Interval{Lo: lo, Hi: hi}
}

// PairedBootstrapDelta bootstraps the mean difference a-b over paired
// observations (same questions under two conditions), returning the 95% CI
// of the delta. Panics if lengths differ.
func PairedBootstrapDelta(a, b []float64, resamples int, seed uint64) Interval {
	if len(a) != len(b) {
		panic("stats: paired inputs of different length")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	return BootstrapMeanCI(diffs, resamples, seed)
}

// Histogram bins xs into n equal-width buckets over [lo, hi].
func Histogram(xs []float64, lo, hi float64, n int) []int {
	counts := make([]int, n)
	if n == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// RelImprovement returns the relative improvement of b over a in percent
// ((b-a)/a × 100), the quantity plotted in the paper's Figures 4-6.
// A zero base returns 0 to avoid spurious infinities in reports.
func RelImprovement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}
