package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); math.Abs(v-4.571428571428571) > 1e-12 {
		t.Fatalf("variance %v", v)
	}
	if StdDev(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty input not zero")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-element variance")
	}
}

func TestWilsonCI(t *testing.T) {
	ci := WilsonCI(80, 100)
	if ci.Lo >= 0.8 || ci.Hi <= 0.8 {
		t.Fatalf("CI %v does not bracket 0.8", ci)
	}
	if ci.Hi-ci.Lo > 0.2 {
		t.Fatalf("CI %v too wide for n=100", ci)
	}
	// Extremes stay in [0,1].
	if lo := WilsonCI(0, 50); lo.Lo < 0 || lo.Hi > 0.15 {
		t.Fatalf("k=0 CI %v", lo)
	}
	if hi := WilsonCI(50, 50); hi.Hi > 1 || hi.Lo < 0.85 {
		t.Fatalf("k=n CI %v", hi)
	}
	if z := WilsonCI(0, 0); z.Lo != 0 || z.Hi != 0 {
		t.Fatalf("n=0 CI %v", z)
	}
}

func TestWilsonCIShrinksWithN(t *testing.T) {
	small := WilsonCI(8, 10)
	large := WilsonCI(800, 1000)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Fatal("CI did not shrink with sample size")
	}
}

// Property: Wilson CI always brackets the point estimate and stays in [0,1].
func TestQuickWilson(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		ci := WilsonCI(k, n)
		p := float64(k) / float64(n)
		return ci.Lo >= 0 && ci.Hi <= 1 && ci.Lo <= p+1e-12 && ci.Hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		if i%4 == 0 {
			xs[i] = 1
		}
	}
	ci := BootstrapMeanCI(xs, 500, 1)
	if ci.Lo >= 0.25 || ci.Hi <= 0.25 {
		t.Fatalf("bootstrap CI %v does not bracket 0.25", ci)
	}
	if d := BootstrapMeanCI(nil, 100, 1); d.Lo != 0 || d.Hi != 0 {
		t.Fatal("empty bootstrap nonzero")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	a := BootstrapMeanCI(xs, 200, 7)
	b := BootstrapMeanCI(xs, 200, 7)
	if a != b {
		t.Fatal("bootstrap not deterministic for same seed")
	}
}

func TestPairedBootstrapDelta(t *testing.T) {
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		if i%2 == 0 {
			a[i] = 1
		}
		if i%5 == 0 {
			b[i] = 1
		}
	}
	// mean(a)=0.5, mean(b)=0.2 → delta ~0.3.
	ci := PairedBootstrapDelta(a, b, 400, 3)
	if ci.Lo >= 0.3 || ci.Hi <= 0.3 {
		t.Fatalf("delta CI %v does not bracket 0.3", ci)
	}
}

func TestPairedBootstrapPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PairedBootstrapDelta([]float64{1}, []float64{1, 2}, 10, 1)
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.55, 0.9, -5, 99}
	h := Histogram(xs, 0, 1, 4)
	if h[0] != 3 || h[1] != 0 || h[2] != 1 || h[3] != 2 {
		t.Fatalf("histogram %v", h)
	}
	if got := Histogram(xs, 1, 0, 4); len(got) != 4 {
		t.Fatal("degenerate range")
	}
}

func TestRelImprovement(t *testing.T) {
	if got := RelImprovement(0.5, 0.75); math.Abs(got-50) > 1e-12 {
		t.Fatalf("RelImprovement %v", got)
	}
	if got := RelImprovement(0.5, 0.4); math.Abs(got+20) > 1e-12 {
		t.Fatalf("negative improvement %v", got)
	}
	if RelImprovement(0, 1) != 0 {
		t.Fatal("zero base not guarded")
	}
}
