package chunk

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tokenizer"
)

func sampleText(t testing.TB) (string, string) {
	t.Helper()
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	d := g.GenerateDoc(corpus.FullPaper, 0)
	return d.ID, d.Text()
}

func TestSplitBasic(t *testing.T) {
	docID, text := sampleText(t)
	c := New(DefaultConfig(), nil)
	chunks := c.Split(docID, text)
	if len(chunks) < 2 {
		t.Fatalf("full paper produced only %d chunks", len(chunks))
	}
	for i, ch := range chunks {
		if ch.DocID != docID {
			t.Fatalf("chunk %d provenance %q", i, ch.DocID)
		}
		if ch.Index != i {
			t.Fatalf("chunk %d has index %d", i, ch.Index)
		}
		if ch.Text == "" {
			t.Fatalf("chunk %d empty", i)
		}
		if ch.Tokens != tokenizer.CountTokens(ch.Text) {
			t.Fatalf("chunk %d token count stale", i)
		}
		if !strings.HasPrefix(ch.ID, "chunk-") {
			t.Fatalf("chunk id %q", ch.ID)
		}
	}
}

func TestMaxTokensRespected(t *testing.T) {
	docID, text := sampleText(t)
	cfg := DefaultConfig()
	c := New(cfg, nil)
	for _, ch := range c.Split(docID, text) {
		// A single sentence may exceed the cap; multi-sentence chunks must not.
		if ch.Tokens > cfg.MaxTokens && strings.Count(ch.Text, ". ") > 0 {
			t.Fatalf("multi-sentence chunk of %d tokens exceeds cap %d", ch.Tokens, cfg.MaxTokens)
		}
	}
}

func TestTextPreserved(t *testing.T) {
	docID, text := sampleText(t)
	c := New(DefaultConfig(), nil)
	chunks := c.Split(docID, text)
	var rebuilt strings.Builder
	for _, ch := range chunks {
		rebuilt.WriteString(ch.Text)
		rebuilt.WriteString(" ")
	}
	// Compare ignoring whitespace differences.
	norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
	if norm(rebuilt.String()) != norm(text) {
		t.Fatal("chunking lost or reordered text")
	}
}

func TestDeterministicIDs(t *testing.T) {
	docID, text := sampleText(t)
	a := New(DefaultConfig(), nil).Split(docID, text)
	b := New(DefaultConfig(), nil).Split(docID, text)
	if len(a) != len(b) {
		t.Fatal("chunk counts differ across runs")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("chunk ids not deterministic")
		}
	}
}

func TestIDsUniqueAcrossDocs(t *testing.T) {
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	c := New(DefaultConfig(), nil)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		d := g.GenerateDoc(corpus.FullPaper, i)
		for _, ch := range c.Split(d.ID, d.Text()) {
			if seen[ch.ID] {
				t.Fatalf("duplicate chunk id %s", ch.ID)
			}
			seen[ch.ID] = true
		}
	}
}

func TestEmptyAndTinyInput(t *testing.T) {
	c := New(DefaultConfig(), nil)
	if got := c.Split("d", ""); len(got) != 0 {
		t.Fatalf("empty text produced %d chunks", len(got))
	}
	got := c.Split("d", "One short sentence.")
	if len(got) != 1 {
		t.Fatalf("single sentence produced %d chunks", len(got))
	}
	if got[0].Text != "One short sentence." {
		t.Fatalf("chunk text %q", got[0].Text)
	}
}

func TestQuantileKnob(t *testing.T) {
	docID, text := sampleText(t)
	low := New(Config{MinTokens: 20, MaxTokens: 10000, BoundaryQuantile: 0.05}, nil).Split(docID, text)
	high := New(Config{MinTokens: 20, MaxTokens: 10000, BoundaryQuantile: 0.9}, nil).Split(docID, text)
	if len(high) <= len(low) {
		t.Fatalf("higher boundary quantile should cut more: low=%d high=%d", len(low), len(high))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{}, nil)
	if c.cfg.MinTokens <= 0 || c.cfg.MaxTokens <= c.cfg.MinTokens {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if c.cfg.BoundaryQuantile <= 0 || c.cfg.BoundaryQuantile >= 1 {
		t.Fatalf("quantile default: %v", c.cfg.BoundaryQuantile)
	}
}

func TestSplitAllMatchesSequential(t *testing.T) {
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	c := New(DefaultConfig(), nil)
	var docs []Doc
	for i := 0; i < 8; i++ {
		d := g.GenerateDoc(corpus.FullPaper, i)
		docs = append(docs, Doc{ID: d.ID, Text: d.Text()})
	}
	par := c.SplitAll(docs, 4)
	var seq []Chunk
	for _, d := range docs {
		seq = append(seq, c.Split(d.ID, d.Text)...)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d vs sequential %d chunks", len(par), len(seq))
	}
	for i := range seq {
		if par[i].ID != seq[i].ID {
			t.Fatalf("chunk order differs at %d", i)
		}
	}
}

func TestSplitAllEmpty(t *testing.T) {
	c := New(DefaultConfig(), nil)
	if got := c.SplitAll(nil, 4); len(got) != 0 {
		t.Fatal("nil docs produced chunks")
	}
}

func TestFactSentencesSurviveChunking(t *testing.T) {
	// The pipeline's correctness hinges on fact sentences remaining intact
	// inside some chunk, so provenance lookups can find them.
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	c := New(DefaultConfig(), nil)
	for i := 0; i < 5; i++ {
		d := g.GenerateDoc(corpus.FullPaper, i)
		chunks := c.Split(d.ID, d.Text())
		for _, fid := range d.Facts {
			f := kb.Fact(fid)
			found := false
			for _, ch := range chunks {
				if strings.Contains(ch.Text, f.Sentence()) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %s: fact %s sentence split across chunks", d.ID, fid)
			}
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	d := g.GenerateDoc(corpus.FullPaper, 0)
	c := New(DefaultConfig(), nil)
	text := d.Text()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Split(d.ID, text)
	}
}

func BenchmarkSplitAll100(b *testing.B) {
	kb := corpus.Build(42, 20)
	g := corpus.NewGenerator(kb, 7)
	var docs []Doc
	for i := 0; i < 100; i++ {
		d := g.GenerateDoc(corpus.FullPaper, i)
		docs = append(docs, Doc{ID: d.ID, Text: d.Text()})
	}
	c := New(DefaultConfig(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.SplitAll(docs, 0)
	}
}
