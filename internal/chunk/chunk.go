// Package chunk implements semantic chunking of parsed document text, the
// stage the paper performs with PubMedBERT to fit SLM context limits
// (yielding 173,318 chunks from 22,548 documents).
//
// The algorithm mirrors encoder-based semantic chunking: sentences are
// embedded, adjacent-sentence cosine similarity is computed, and chunk
// boundaries are placed at similarity valleys (topic shifts), subject to
// minimum and maximum token budgets. Every chunk carries provenance — the
// source document id, its position, and a stable content-derived chunk id —
// exactly the lineage the paper's question schema preserves.
package chunk

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/embed"
	"repro/internal/f16"
	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// Chunk is one semantically coherent span of a document.
type Chunk struct {
	ID     string `json:"chunk_id"` // stable content hash id
	DocID  string `json:"doc_id"`   // source document
	Index  int    `json:"index"`    // position within the document
	Text   string `json:"text"`
	Tokens int    `json:"tokens"` // approximate LLM tokens
}

// Config parameterises the chunker.
type Config struct {
	// MinTokens is the smallest chunk emitted except for document tails.
	MinTokens int
	// MaxTokens caps chunk size so retrieved context fits SLM windows.
	MaxTokens int
	// BoundaryQuantile in (0,1): adjacent-similarity values below this
	// quantile of the document's similarity distribution become candidate
	// boundaries. Lower → fewer, larger chunks.
	BoundaryQuantile float64
}

// DefaultConfig matches the reproduction's pipeline settings: chunks of
// roughly a paragraph, bounded at 256 tokens so even a 2,048-token context
// model can take several retrieved chunks plus the question.
func DefaultConfig() Config {
	return Config{MinTokens: 48, MaxTokens: 256, BoundaryQuantile: 0.35}
}

// Chunker splits text using an embedding encoder for boundary detection.
type Chunker struct {
	cfg Config
	enc *embed.Encoder
}

// New returns a Chunker. A nil encoder selects the default embedder.
func New(cfg Config, enc *embed.Encoder) *Chunker {
	if enc == nil {
		enc = embed.NewDefault()
	}
	if cfg.MinTokens <= 0 {
		cfg.MinTokens = 48
	}
	if cfg.MaxTokens <= cfg.MinTokens {
		cfg.MaxTokens = cfg.MinTokens * 4
	}
	if cfg.BoundaryQuantile <= 0 || cfg.BoundaryQuantile >= 1 {
		cfg.BoundaryQuantile = 0.35
	}
	return &Chunker{cfg: cfg, enc: enc}
}

// Split chunks one document's text, attaching provenance to docID.
func (c *Chunker) Split(docID, text string) []Chunk {
	sentences := tokenizer.SplitSentences(text)
	if len(sentences) == 0 {
		return nil
	}
	if len(sentences) == 1 {
		return c.emit(docID, sentences)
	}

	// Embed sentences and score adjacent similarity.
	vecs := make([][]float32, len(sentences))
	for i, s := range sentences {
		vecs[i] = c.enc.Encode(s)
	}
	sims := make([]float32, len(sentences)-1)
	for i := range sims {
		sims[i] = f16.Cosine(vecs[i], vecs[i+1])
	}
	threshold := quantile(sims, c.cfg.BoundaryQuantile)

	// Walk sentences, cutting at similarity valleys once MinTokens is
	// reached, and force-cutting at MaxTokens.
	var chunks []Chunk
	var cur []string
	curTokens := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		chunks = append(chunks, c.makeChunk(docID, len(chunks), cur))
		cur = cur[:0]
		curTokens = 0
	}
	for i, s := range sentences {
		st := tokenizer.CountTokens(s)
		if curTokens > 0 && curTokens+st > c.cfg.MaxTokens {
			flush()
		}
		cur = append(cur, s)
		curTokens += st
		atValley := i < len(sims) && sims[i] <= threshold
		if atValley && curTokens >= c.cfg.MinTokens {
			flush()
		}
	}
	flush()
	return chunks
}

// emit wraps remaining sentences into max-token-bounded chunks without
// boundary detection (single-sentence or degenerate inputs).
func (c *Chunker) emit(docID string, sentences []string) []Chunk {
	var chunks []Chunk
	var cur []string
	curTokens := 0
	for _, s := range sentences {
		st := tokenizer.CountTokens(s)
		if curTokens > 0 && curTokens+st > c.cfg.MaxTokens {
			chunks = append(chunks, c.makeChunk(docID, len(chunks), cur))
			cur, curTokens = nil, 0
		}
		cur = append(cur, s)
		curTokens += st
	}
	if len(cur) > 0 {
		chunks = append(chunks, c.makeChunk(docID, len(chunks), cur))
	}
	return chunks
}

func (c *Chunker) makeChunk(docID string, index int, sentences []string) Chunk {
	text := join(sentences)
	return Chunk{
		ID:     fmt.Sprintf("chunk-%016x", rng.HashStrings(docID, fmt.Sprint(index), text)),
		DocID:  docID,
		Index:  index,
		Text:   text,
		Tokens: tokenizer.CountTokens(text),
	}
}

func join(sentences []string) string {
	n := 0
	for _, s := range sentences {
		n += len(s) + 1
	}
	buf := make([]byte, 0, n)
	for i, s := range sentences {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, s...)
	}
	return string(buf)
}

// quantile returns the q-quantile of xs by sorting a copy.
func quantile(xs []float32, q float64) float32 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float32, len(xs))
	copy(sorted, xs)
	// Insertion sort: similarity arrays are short (sentences per doc).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Doc pairs a document id with its text, the input unit of SplitAll.
type Doc struct {
	ID   string
	Text string
}

// SplitAll chunks many documents in parallel, preserving document order in
// the flattened output. workers <= 0 selects GOMAXPROCS.
func (c *Chunker) SplitAll(docs []Doc, workers int) []Chunk {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perDoc := make([][]Chunk, len(docs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(docs) {
					return
				}
				perDoc[i] = c.Split(docs[i].ID, docs[i].Text)
			}
		}()
	}
	wg.Wait()
	var out []Chunk
	for _, cs := range perDoc {
		out = append(out, cs...)
	}
	return out
}
