package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/obs"
)

func spanNames(spans []obs.Span) map[string]bool {
	out := make(map[string]bool, len(spans))
	for _, sp := range spans {
		out[sp.Name] = true
	}
	return out
}

func fetchSlowlog(t *testing.T, addr, route string) obs.SlowLogPage {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/slowlog/" + route)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog status %d", resp.StatusCode)
	}
	var page obs.SlowLogPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestTimingAndSlowlog exercises the tracing surface end to end on one
// server: an opt-in Timing request carries back the propagated trace id
// and the full stage timeline, a cache hit reports only the cache stage,
// and the completed trace is retrievable from /debug/slowlog/<route>.
func TestTimingAndSlowlog(t *testing.T) {
	s, _, chunks := testServer(t, 64, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	// The client propagates a context trace's id via X-Trace-Id, and the
	// handler adopts it instead of minting its own.
	const traceID = "e2e-serve-trace-1"
	ctx := obs.WithTrace(context.Background(), obs.NewTrace(traceID))
	resp, err := c.SearchRouteReqCtx(ctx, RouteChunks, SearchRequest{
		Query: chunks[5].Text, K: 3, Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Timing == nil {
		t.Fatal("timing requested but response.timing is nil")
	}
	if resp.Timing.TraceID != traceID {
		t.Fatalf("trace id not adopted: got %q want %q", resp.Timing.TraceID, traceID)
	}
	names := spanNames(resp.Timing.Spans)
	for _, want := range []string{"queue", "cache", "embed", "scan", "merge"} {
		if !names[want] {
			t.Fatalf("miss-path timeline lacks %q span: %+v", want, resp.Timing.Spans)
		}
	}

	// Same query again: a cache hit books only the cache stage — no queue
	// wait, no kernel stages.
	hit, err := c.SearchRouteReq(RouteChunks, SearchRequest{
		Query: chunks[5].Text, K: 3, Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Timing == nil {
		t.Fatal("timing requested but cache-hit response.timing is nil")
	}
	hitNames := spanNames(hit.Timing.Spans)
	if !hitNames["cache"] || hitNames["scan"] || hitNames["queue"] {
		t.Fatalf("cache-hit timeline should be cache-only: %+v", hit.Timing.Spans)
	}

	// Without the opt-in flag the response carries no timing payload.
	plain, err := c.SearchRoute(RouteChunks, chunks[6].Text, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Timing != nil {
		t.Fatalf("timing not requested but present: %+v", plain.Timing)
	}

	// The completed trace is retrievable from the debug slowlog, spans
	// included.
	page := fetchSlowlog(t, s.Addr(), RouteChunks)
	if page.Route != RouteChunks {
		t.Fatalf("slowlog route %q", page.Route)
	}
	var rec *obs.TraceRecord
	for i := range page.Slowest {
		if page.Slowest[i].TraceID == traceID {
			rec = &page.Slowest[i]
		}
	}
	if rec == nil {
		t.Fatalf("trace %q not in slowlog: %+v", traceID, page.Slowest)
	}
	if rec.Op != "search" || len(rec.Spans) == 0 {
		t.Fatalf("slowlog record %+v", rec)
	}
	if rec.Detail == "" {
		t.Fatal("slowlog record lost the query detail")
	}

	// Unknown route 404s rather than minting an empty page.
	r404, err := http.Get("http://" + s.Addr() + "/debug/slowlog/nope")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown slowlog route: status %d", r404.StatusCode)
	}
}

// TestStageHistogramsRegistered checks the per-stage histograms feed the
// metrics registry under the documented names.
func TestStageHistogramsRegistered(t *testing.T) {
	s, _, chunks := testServer(t, 64, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)
	if _, err := c.SearchRoute(RouteChunks, chunks[9].Text, 2, ""); err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	for _, stage := range []string{"queue", "cache", "embed", "scan", "merge", "encode"} {
		h := snap.Histogram("serve." + RouteChunks + ".stage." + stage)
		if h.Total == 0 {
			t.Fatalf("stage histogram serve.%s.stage.%s has no samples", RouteChunks, stage)
		}
	}
}

// TestPprofGatedByDebug: the pprof surface exists iff Config.Debug is set.
func TestPprofGatedByDebug(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Debug = true
	s, _, _ := testServer(t, 8, cfg)
	resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug on: pprof index status %d", resp.StatusCode)
	}

	s2, _, _ := testServer(t, 8, DefaultConfig())
	resp2, err := http.Get("http://" + s2.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatalf("debug off: pprof index reachable (status %d)", resp2.StatusCode)
	}
}
