package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/metrics"
	"repro/internal/rag"
	"repro/internal/vecstore"
)

// Config parameterises a Server.
type Config struct {
	// MaxBatch caps the coalesced batch handed to RetrieveBatch
	// (default 32).
	MaxBatch int
	// MaxDelay is the admission window: how long the first request of a
	// batch waits for batchmates (default 1ms).
	MaxDelay time.Duration
	// CacheCap is the query-cache capacity in entries; 0 disables the
	// cache (default 4096 via DefaultConfig).
	CacheCap int
	// CacheShards splits the cache to reduce lock contention (default 8).
	CacheShards int
	// DefaultK is the retrieval depth when a request omits k (default 5).
	DefaultK int
	// MaxK bounds the retrieval depth a request may ask for (default 100).
	MaxK int
	// MaxBatchQueries bounds one /v1/search/batch request (default 1024):
	// unlike coalesced singles, an explicit batch bypasses MaxBatch and
	// would otherwise let one request run an unbounded RetrieveBatch.
	MaxBatchQueries int
	// OmitText drops chunk text from responses (ids and scores only),
	// shrinking payloads for recall-style load tests.
	OmitText bool
	// Registry receives the server's metrics; nil creates a private one.
	Registry *metrics.Registry
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{MaxBatch: 32, MaxDelay: time.Millisecond, CacheCap: 4096, CacheShards: 8, DefaultK: 5, MaxK: 100}
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 5
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 1024
	}
}

// Snapshot is one immutable published state of the server: a store
// serving one index generation. Epoch increments on every hot swap.
type Snapshot struct {
	Store  *rag.ChunkStore
	Epoch  uint64
	Source string // where the index came from ("initial" or a VSF path)
}

// Server is the online retrieval server: an HTTP JSON front-end over a
// rag.ChunkStore that coalesces concurrent single-query requests into
// micro-batches for the vecstore batch kernel, fronts the index with a
// sharded LRU + singleflight query cache, and hot-swaps index snapshots
// with zero downtime.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	snap    atomic.Pointer[Snapshot]
	co      *batch.Coalescer[searchJob, searchOut]
	cache   *Cache
	flights flightGroup

	swapMu  sync.Mutex // serialises swaps (readers go through snap)
	httpSrv *http.Server
	ln      net.Listener

	// metric handles resolved once so the hot path skips registry lookups
	mRequests, mHits, mMisses, mShared *metrics.Counter
	mBatches, mBatchedQueries          *metrics.Counter
	mErrors, mSwaps                    *metrics.Counter
	hLatency, hSearch, hBatch          *metrics.Histogram
	gVectors, gEpoch, gCacheLen        *metrics.Gauge
}

type searchJob struct {
	query string
	k     int
}

// searchOut carries one job's results plus the epoch of the snapshot the
// batch actually ran against (which can trail a concurrent swap).
type searchOut struct {
	results []rag.RetrievedChunk
	epoch   uint64
}

// New builds a server around store. Call Start to bind a socket, or mount
// Handler on an existing one.
func New(store *rag.ChunkStore, cfg Config) *Server {
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:             cfg,
		reg:             reg,
		mRequests:       reg.Counter("serve.requests"),
		mHits:           reg.Counter("serve.cache.hits"),
		mMisses:         reg.Counter("serve.cache.misses"),
		mShared:         reg.Counter("serve.flight.shared"),
		mBatches:        reg.Counter("serve.batches"),
		mBatchedQueries: reg.Counter("serve.batch.queries"),
		mErrors:         reg.Counter("serve.errors"),
		mSwaps:          reg.Counter("serve.swaps"),
		hLatency:        reg.Histogram("serve.latency"),
		hSearch:         reg.Histogram("serve.search.latency"),
		hBatch:          reg.SizeHistogram("serve.batch.size"),
		gVectors:        reg.Gauge("serve.index.vectors"),
		gEpoch:          reg.Gauge("serve.index.epoch"),
		gCacheLen:       reg.Gauge("serve.cache.len"),
	}
	if cfg.CacheCap > 0 {
		s.cache = NewCache(cfg.CacheCap, cfg.CacheShards)
	}
	s.snap.Store(&Snapshot{Store: store, Epoch: 0, Source: "initial"})
	s.gVectors.Set(int64(store.Len()))
	s.co = batch.New(batch.Config{MaxBatch: cfg.MaxBatch, MaxDelay: cfg.MaxDelay}, s.runBatch)
	return s
}

// runBatch is the coalescer's batch function: the whole batch is answered
// from one snapshot through the multi-query scan kernel, so a hot swap
// mid-batch cannot tear an individual batch across two indexes.
func (s *Server) runBatch(jobs []searchJob) []searchOut {
	snap := s.snap.Load()
	queries := make([]string, len(jobs))
	maxK := 0
	for i, j := range jobs {
		queries[i] = j.query
		if j.k > maxK {
			maxK = j.k
		}
	}
	res := s.retrieve(snap, queries, maxK)
	// Each request gets the top-k prefix of the shared maxK retrieval —
	// identical to what its own k would have returned.
	out := make([]searchOut, len(jobs))
	for i := range res {
		if len(res[i]) > jobs[i].k {
			res[i] = res[i][:jobs[i].k]
		}
		out[i] = searchOut{results: res[i], epoch: snap.Epoch}
	}
	return out
}

// retrieve runs one timed, metered RetrieveBatch against a snapshot — the
// shared core of the coalesced path and the explicit batch endpoint, so
// both report identical batch accounting.
func (s *Server) retrieve(snap *Snapshot, queries []string, k int) [][]rag.RetrievedChunk {
	start := time.Now()
	res := snap.Store.RetrieveBatch(queries, k)
	s.hSearch.Observe(time.Since(start))
	s.mBatches.Inc()
	s.mBatchedQueries.Add(int64(len(queries)))
	s.hBatch.ObserveN(int64(len(queries)))
	return res
}

// Search answers one query through the cache and coalescer. cached reports
// whether the result came from the query cache; epoch is the generation of
// the snapshot that actually produced the results (it can trail the
// currently published epoch across a concurrent swap).
func (s *Server) Search(ctx context.Context, query string, k int) (results []rag.RetrievedChunk, cached bool, epoch uint64, err error) {
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	s.mRequests.Inc()
	start := time.Now()
	defer func() { s.hLatency.Observe(time.Since(start)) }()

	if s.cache == nil {
		out, err := s.co.Do(ctx, searchJob{query: query, k: k})
		return out.results, false, out.epoch, err
	}
	// The epoch in the key makes entries generation-scoped: after a swap,
	// fresh lookups miss even if a stale fill lands post-Purge (the old
	// generation's key is never read again and ages out of the LRU).
	snap := s.snap.Load()
	key := fmt.Sprintf("%d\x1f%d\x1f%s", snap.Epoch, k, query)
	if val, ok := s.cache.Get(key); ok {
		s.mHits.Inc()
		return val.Results, true, val.Epoch, nil
	}
	s.mMisses.Inc()
	val, shared, err := s.flights.do(ctx, key, func() (CachedResult, error) {
		// Detach the batch dispatch from the leader's request context: a
		// flight computes a result shared by every joiner, so one
		// client's disconnect must not poison the rest (each caller still
		// guards its own wait with its own ctx inside do and co.Do).
		out, err := s.co.Do(context.WithoutCancel(ctx), searchJob{query: query, k: k})
		if err != nil {
			return CachedResult{}, err
		}
		res := CachedResult{Results: out.results, Epoch: out.epoch}
		s.cache.Put(key, res)
		return res, nil
	})
	if shared {
		s.mShared.Inc()
	}
	return val.Results, false, val.Epoch, err
}

// SwapIndex atomically publishes a snapshot serving index. In-flight
// requests finish against the old snapshot; the query cache is purged so
// no pre-swap result is served afterwards.
func (s *Server) SwapIndex(index vecstore.Index, source string) (*Snapshot, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.snap.Load()
	store, err := cur.Store.WithIndex(index)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Store: store, Epoch: cur.Epoch + 1, Source: source}
	s.snap.Store(snap)
	if s.cache != nil {
		s.cache.Purge()
		s.gCacheLen.Set(0)
	}
	s.mSwaps.Inc()
	s.gEpoch.Set(int64(snap.Epoch))
	s.gVectors.Set(int64(index.Len()))
	return snap, nil
}

// SwapFromFile loads a persisted index (any VSF generation) in the
// calling goroutine — the expensive part, off the serving path — then
// publishes it with SwapIndex.
func (s *Server) SwapFromFile(path string) (*Snapshot, error) {
	index, err := vecstore.Load(path)
	if err != nil {
		return nil, fmt.Errorf("serve: swap load: %w", err)
	}
	return s.SwapIndex(index, path)
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP API:
//
//	POST /v1/search        {"query","k"} → {"results":[...],"cached","epoch"}
//	POST /v1/search/batch  {"queries":[...],"k"} → {"results":[[...],...]}
//	POST /admin/swap       {"path"} → {"epoch","vectors","source"}
//	GET  /healthz          {"status","epoch","vectors","source"}
//	GET  /metrics          text exposition of the registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/search/batch", s.handleSearchBatch)
	mux.HandleFunc("/admin/swap", s.handleSwap)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Start binds addr ("127.0.0.1:0" for an ephemeral port) and serves in the
// background until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadTimeout: 30 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Shutdown
	return nil
}

// Addr returns the bound address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains gracefully: the listener stops accepting, in-flight
// requests run to completion (bounded by ctx), and only then does the
// coalescer stop — the argo SIGTERM-drain pattern.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.co.Close()
	return err
}

// Close is Shutdown with a bounded drain window.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Wire types.

// SearchRequest is the /v1/search body.
type SearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

// SearchResult is one retrieval hit on the wire.
type SearchResult struct {
	ChunkID string  `json:"chunk_id"`
	DocID   string  `json:"doc_id"`
	Text    string  `json:"text,omitempty"`
	Score   float32 `json:"score"`
}

// SearchResponse is the /v1/search reply.
type SearchResponse struct {
	Results []SearchResult `json:"results"`
	Cached  bool           `json:"cached,omitempty"`
	Epoch   uint64         `json:"epoch"`
}

// BatchSearchRequest is the /v1/search/batch body.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	K       int      `json:"k,omitempty"`
}

// BatchSearchResponse is the /v1/search/batch reply, per-query results in
// request order.
type BatchSearchResponse struct {
	Results [][]SearchResult `json:"results"`
	Epoch   uint64           `json:"epoch"`
}

// SwapRequest is the /admin/swap body.
type SwapRequest struct {
	Path string `json:"path"`
}

// SwapResponse is the /admin/swap reply.
type SwapResponse struct {
	Epoch   uint64 `json:"epoch"`
	Vectors int    `json:"vectors"`
	Source  string `json:"source"`
}

// Healthz is the /healthz reply.
type Healthz struct {
	Status  string `json:"status"`
	Epoch   uint64 `json:"epoch"`
	Vectors int    `json:"vectors"`
	Source  string `json:"source"`
}

func (s *Server) results(rcs []rag.RetrievedChunk) []SearchResult {
	out := make([]SearchResult, len(rcs))
	for i, rc := range rcs {
		out[i] = SearchResult{ChunkID: rc.Chunk.ID, DocID: rc.Chunk.DocID, Score: rc.Score}
		if !s.cfg.OmitText {
			out[i].Text = rc.Chunk.Text
		}
	}
	return out
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		s.mErrors.Inc()
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	res, cached, epoch, err := s.Search(r.Context(), req.Query, req.K)
	if err != nil {
		s.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, SearchResponse{Results: s.results(res), Cached: cached, Epoch: epoch})
}

// handleSearchBatch serves an already-batched request straight through the
// batch kernel — it is its own micro-batch, so it bypasses the coalescer
// and cache.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.mErrors.Inc()
		http.Error(w, "empty queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		s.mErrors.Inc()
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatchQueries),
			http.StatusRequestEntityTooLarge)
		return
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	s.mRequests.Add(int64(len(req.Queries)))
	snap := s.snap.Load()
	res := s.retrieve(snap, req.Queries, k)
	out := BatchSearchResponse{Results: make([][]SearchResult, len(res)), Epoch: snap.Epoch}
	for i, rcs := range res {
		out.Results[i] = s.results(rcs)
	}
	writeJSON(w, out)
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.mErrors.Inc()
		http.Error(w, "empty path", http.StatusBadRequest)
		return
	}
	snap, err := s.SwapFromFile(req.Path)
	if err != nil {
		s.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, SwapResponse{Epoch: snap.Epoch, Vectors: snap.Store.Len(), Source: snap.Source})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	writeJSON(w, Healthz{Status: "ok", Epoch: snap.Epoch, Vectors: snap.Store.Len(), Source: snap.Source})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The cache-size gauge is refreshed here rather than on every fill:
	// Len locks all shards, which would re-serialize the miss path.
	if s.cache != nil {
		s.gCacheLen.Set(int64(s.cache.Len()))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck // client went away
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		s.mErrors.Inc()
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}
