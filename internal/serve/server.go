package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/chunk"
	"repro/internal/mcq"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rag"
	"repro/internal/vecstore"
)

// Store is the retrieval backend behind one route: the rag serving facade
// (RetrieveBatch over store-agnostic hits, the WithIndex snapshot hook,
// Index/Len). rag.NewChunkFacade and rag.NewTraceFacade adapt the two
// concrete store kinds.
type Store = rag.Facade

// RouteChunks is the name of the default chunk-store route, reachable both
// at /v1/chunks/... and at the legacy single-store paths /v1/search,
// /v1/search/batch and /admin/swap.
const RouteChunks = "chunks"

// TraceRoute returns the route name of one reasoning-trace mode
// ("traces/detailed" etc.).
func TraceRoute(mode mcq.ReasoningMode) string { return "traces/" + string(mode) }

// Config parameterises a Server. Every mounted route gets its own
// coalescer and cache built from the same configuration.
type Config struct {
	// MaxBatch caps the coalesced batch handed to RetrieveBatch
	// (default 32).
	MaxBatch int
	// MaxDelay is the admission window: how long the first request of a
	// batch waits for batchmates (default 1ms).
	MaxDelay time.Duration
	// CacheCap is the per-route query-cache capacity in entries; 0
	// disables the caches (default 4096 via DefaultConfig).
	CacheCap int
	// CacheShards splits each cache to reduce lock contention (default 8).
	CacheShards int
	// DefaultK is the retrieval depth when a request omits k (default 5).
	DefaultK int
	// MaxK bounds the retrieval depth a request may ask for (default 100).
	MaxK int
	// MaxBatchQueries bounds one batch-search request (default 1024):
	// unlike coalesced singles, an explicit batch bypasses MaxBatch and
	// would otherwise let one request run an unbounded RetrieveBatch.
	MaxBatchQueries int
	// OmitText drops result text from responses (ids and scores only),
	// shrinking payloads for recall-style load tests.
	OmitText bool
	// CompactAt triggers background compaction on a live (mutable) route
	// once its memtable reaches this many rows; 0 disables automatic
	// compaction (the /admin/<route>/compact endpoint still works).
	CompactAt int
	// SlowLog is the per-route retention of slowest traces served at
	// GET /debug/slowlog/<route> (0 selects obs.DefaultSlowLogSize).
	SlowLog int
	// Debug mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints on a serving port are opt-in.
	Debug bool
	// Registry receives the server's metrics; nil creates a private one.
	Registry *metrics.Registry
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{MaxBatch: 32, MaxDelay: time.Millisecond, CacheCap: 4096, CacheShards: 8, DefaultK: 5, MaxK: 100}
}

func (c *Config) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 5
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 1024
	}
}

// Snapshot is one immutable published state of a route: a store serving
// one index generation. Epoch increments on every hot swap of that route
// and is independent across routes.
type Snapshot struct {
	Store  Store
	Epoch  uint64
	Source string // where the index came from ("initial" or a VSF path)
}

// Server is the online retrieval server: an HTTP JSON front-end over one
// or more retrieval stores (the chunk store plus the per-mode trace
// stores), each mounted as a route with its own coalescer, query cache,
// epoch counter and metrics namespace — so a hot swap or purge on one
// store cannot evict entries or stall requests on another.
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	routes  map[string]*route
	chunks  *route // the RouteChunks route, target of the legacy API
	started atomic.Bool

	httpSrv *http.Server
	ln      net.Listener
}

// route is the per-store serving state. All fields are built once at
// Mount; the snapshot pointer is the only thing that changes afterwards.
type route struct {
	name    string
	cfg     Config
	snap    atomic.Pointer[Snapshot]
	co      *batch.Coalescer[searchJob, searchOut]
	cache   *Cache
	flights flightGroup
	swapMu  sync.Mutex // serialises swaps (readers go through snap)

	// Write path (live ingestion). writeMu serialises inserts with each
	// other and with a compaction's publish step: writers load the
	// snapshot INSIDE writeMu, so an insert can never land in a memtable
	// that a concurrent compaction has already rotated out — the no-lost-
	// acked-inserts invariant. writeGen counts accepted insert batches and
	// is folded into cache keys (see search), so cached top-k from before
	// an insert cannot mask it. compacting admits one compaction at a time.
	writeMu    sync.Mutex
	writeGen   atomic.Uint64
	compacting atomic.Bool

	// slow retains the route's slowest completed traces for the debug
	// surface (GET /debug/slowlog/<route>).
	slow *obs.SlowLog

	// metric handles resolved once so the hot path skips registry lookups
	mRequests, mHits, mMisses, mShared     *metrics.Counter
	mBatches, mBatchedQueries              *metrics.Counter
	mErrors, mSwaps                        *metrics.Counter
	mInserts, mInsertBatches, mCompactions *metrics.Counter
	hLatency, hSearch, hBatch              *metrics.Histogram
	hStageQueue, hStageCache, hStageEmbed  *metrics.Histogram
	hStageScan, hStageMerge, hStageEncode  *metrics.Histogram
	gVectors, gEpoch, gCacheLen, gMemRows  *metrics.Gauge
}

type searchJob struct {
	query   string
	k       int
	exclude string // trace routes: suppress hits from this question id

	// Tracing: enq is when the job entered the coalescer (the queue span's
	// start) and tr the request's trace, so the batch function can attribute
	// the shared batch stages back to every member request. tr is nil for
	// untraced programmatic callers.
	enq time.Time
	tr  *obs.Trace
}

// searchOut carries one job's results plus the epoch of the snapshot the
// batch actually ran against (which can trail a concurrent swap).
type searchOut struct {
	results []rag.Hit
	epoch   uint64
}

// New builds a server with store mounted as the "chunks" route — the PR 3
// single-store constructor. Mount more stores (MountTraceStores) before
// Start, or use NewMulti to start from an empty route table.
func New(store *rag.ChunkStore, cfg Config) *Server {
	s := NewMulti(cfg)
	if err := s.Mount(RouteChunks, rag.NewChunkFacade(store)); err != nil {
		panic("serve: " + err.Error()) // unreachable: fresh server, fixed name
	}
	return s
}

// NewMulti builds a server with no routes. Mount stores, then Start.
func NewMulti(cfg Config) *Server {
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Server{cfg: cfg, reg: reg, routes: make(map[string]*route)}
}

// Mount registers st under name ("chunks", "traces/detailed", …) before
// the server starts. The route serves POST /v1/<name>/search, its /batch
// variant, and POST /admin/<name>/swap, with metrics under
// serve.<name>.… (path separators become dots).
func (s *Server) Mount(name string, st Store) error {
	if s.started.Load() {
		return fmt.Errorf("serve: Mount(%q) after Start", name)
	}
	if !validRouteName(name) {
		return fmt.Errorf("serve: invalid route name %q", name)
	}
	if st == nil {
		return fmt.Errorf("serve: Mount(%q): nil store", name)
	}
	if _, ok := s.routes[name]; ok {
		return fmt.Errorf("serve: route %q already mounted", name)
	}
	rt := newRoute(name, st, s.cfg, s.reg)
	s.routes[name] = rt
	if name == RouteChunks {
		s.chunks = rt
	}
	return nil
}

// MountTraceStores mounts every non-empty per-mode trace store under its
// TraceRoute name (the paper's three reasoning-trace databases behind the
// same front-end as the chunk store). Empty stores are skipped: they have
// nothing to serve, and every hot swap against them would be rejected by
// the snapshot validation anyway.
func (s *Server) MountTraceStores(stores map[mcq.ReasoningMode]*rag.TraceStore) error {
	for _, mode := range mcq.AllModes {
		ts, ok := stores[mode]
		if !ok || ts.Len() == 0 {
			continue
		}
		if err := s.Mount(TraceRoute(mode), rag.NewTraceFacade(ts)); err != nil {
			return err
		}
	}
	return nil
}

// Routes lists the mounted route names, sorted.
func (s *Server) Routes() []string {
	out := make([]string, 0, len(s.routes))
	for name := range s.routes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// validRouteName accepts lowercase path-style names ("chunks",
// "traces/detailed"): they appear verbatim in URLs and, with "/" mapped
// to ".", in metric names.
func validRouteName(name string) bool {
	if name == "" {
		return false
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" {
			return false
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' && r != '-' {
				return false
			}
		}
	}
	return true
}

// MetricPrefix returns the metrics namespace of a route — "serve.<name>."
// with path separators mapped to dots — the prefix under which every
// per-route counter, gauge and histogram is registered. External readers
// (ragload's per-route accounting) must build names through this instead
// of re-deriving the scheme.
func MetricPrefix(route string) string {
	return "serve." + strings.ReplaceAll(route, "/", ".") + "."
}

func newRoute(name string, st Store, cfg Config, reg *metrics.Registry) *route {
	p := MetricPrefix(name)
	rt := &route{
		name:            name,
		cfg:             cfg,
		mRequests:       reg.Counter(p + "requests"),
		mHits:           reg.Counter(p + "cache.hits"),
		mMisses:         reg.Counter(p + "cache.misses"),
		mShared:         reg.Counter(p + "flight.shared"),
		mBatches:        reg.Counter(p + "batches"),
		mBatchedQueries: reg.Counter(p + "batch.queries"),
		mErrors:         reg.Counter(p + "errors"),
		mSwaps:          reg.Counter(p + "swaps"),
		mInserts:        reg.Counter(p + "inserts"),
		mInsertBatches:  reg.Counter(p + "insert.batches"),
		mCompactions:    reg.Counter(p + "compactions"),
		hLatency:        reg.Histogram(p + "latency"),
		hSearch:         reg.Histogram(p + "search.latency"),
		hBatch:          reg.SizeHistogram(p + "batch.size"),
		hStageQueue:     reg.Histogram(p + "stage.queue"),
		hStageCache:     reg.Histogram(p + "stage.cache"),
		hStageEmbed:     reg.Histogram(p + "stage.embed"),
		hStageScan:      reg.Histogram(p + "stage.scan"),
		hStageMerge:     reg.Histogram(p + "stage.merge"),
		hStageEncode:    reg.Histogram(p + "stage.encode"),
		slow:            obs.NewSlowLog(cfg.SlowLog),
		gVectors:        reg.Gauge(p + "index.vectors"),
		gEpoch:          reg.Gauge(p + "index.epoch"),
		gCacheLen:       reg.Gauge(p + "cache.len"),
		gMemRows:        reg.Gauge(p + "index.memrows"),
	}
	if cfg.CacheCap > 0 {
		rt.cache = NewCache(cfg.CacheCap, cfg.CacheShards)
	}
	rt.snap.Store(&Snapshot{Store: st, Epoch: 0, Source: "initial"})
	rt.gVectors.Set(int64(st.Len()))
	rt.co = batch.New(batch.Config{MaxBatch: cfg.MaxBatch, MaxDelay: cfg.MaxDelay}, rt.runBatch)
	return rt
}

// runBatch is a route's coalescer batch function: the whole batch is
// answered from one snapshot through the multi-query scan kernel, so a
// hot swap mid-batch cannot tear an individual batch across two indexes.
func (rt *route) runBatch(jobs []searchJob) []searchOut {
	snap := rt.snap.Load()
	t0 := time.Now()
	queries := make([]string, len(jobs))
	var excludes []string
	maxK := 0
	for i, j := range jobs {
		queries[i] = j.query
		if j.k > maxK {
			maxK = j.k
		}
		if j.exclude != "" && excludes == nil {
			excludes = make([]string, len(jobs))
		}
		if !j.enq.IsZero() {
			wait := t0.Sub(j.enq)
			rt.hStageQueue.Observe(wait)
			j.tr.AddSpan("queue", j.enq, wait)
		}
	}
	if excludes != nil {
		for i, j := range jobs {
			excludes[i] = j.exclude
		}
	}
	res, st := rt.retrieve(snap, queries, maxK, excludes)
	// The batch's stage decomposition is shared by every member request:
	// embed/scan/merge ran once for the whole batch, so each traced job gets
	// the same three spans, laid end to end from the batch's start.
	for _, j := range jobs {
		attachStages(j.tr, t0, st)
	}
	// Each request gets the top-k prefix of the shared maxK retrieval —
	// identical to what its own k would have returned.
	out := make([]searchOut, len(jobs))
	for i := range res {
		if len(res[i]) > jobs[i].k {
			res[i] = res[i][:jobs[i].k]
		}
		out[i] = searchOut{results: res[i], epoch: snap.Epoch}
	}
	return out
}

// attachStages records a retrieve's embed/scan/merge decomposition as
// consecutive spans starting at t0, the instant the retrieve began.
func attachStages(tr *obs.Trace, t0 time.Time, st rag.StageTimings) {
	if tr == nil {
		return
	}
	tr.AddSpan("embed", t0, st.Embed)
	tr.AddSpan("scan", t0.Add(st.Embed), st.Scan)
	tr.AddSpan("merge", t0.Add(st.Embed+st.Scan), st.Merge)
}

// retrieve runs one timed, metered RetrieveBatch against a snapshot — the
// shared core of the coalesced path and the explicit batch endpoint, so
// both report identical batch accounting. The returned stage timings feed
// the per-stage histograms here and the caller's trace spans; a store
// without RetrieveBatchStaged books the whole call under Scan.
func (rt *route) retrieve(snap *Snapshot, queries []string, k int, exclude []string) ([][]rag.Hit, rag.StageTimings) {
	start := time.Now()
	var res [][]rag.Hit
	var st rag.StageTimings
	if sr, ok := snap.Store.(rag.StagedRetriever); ok {
		res, st = sr.RetrieveBatchStaged(queries, k, exclude)
	} else {
		res = snap.Store.RetrieveBatch(queries, k, exclude)
		st.Scan = time.Since(start)
	}
	rt.hSearch.Observe(time.Since(start))
	rt.hStageEmbed.Observe(st.Embed)
	rt.hStageScan.Observe(st.Scan)
	rt.hStageMerge.Observe(st.Merge)
	rt.mBatches.Inc()
	rt.mBatchedQueries.Add(int64(len(queries)))
	rt.hBatch.ObserveN(int64(len(queries)))
	return res, st
}

// search answers one query through the route's cache and coalescer.
func (rt *route) search(ctx context.Context, query string, k int, exclude string) (results []rag.Hit, cached bool, epoch uint64, err error) {
	if k <= 0 {
		k = rt.cfg.DefaultK
	}
	if k > rt.cfg.MaxK {
		k = rt.cfg.MaxK
	}
	rt.mRequests.Inc()
	tr := obs.FromContext(ctx)
	start := time.Now()
	defer func() { rt.hLatency.Observe(time.Since(start)) }()

	if rt.cache == nil {
		out, err := rt.co.Do(ctx, searchJob{query: query, k: k, exclude: exclude, enq: time.Now(), tr: tr})
		return out.results, false, out.epoch, err
	}
	// The epoch in the key makes entries generation-scoped: after a swap,
	// fresh lookups miss even if a stale fill lands post-Purge. The write
	// generation makes them insert-scoped: a live insert bumps writeGen
	// without an epoch change, so without it a cached top-k from before
	// the insert would keep masking the new row until the next swap.
	// writeGen is read BEFORE the snapshot: any insert counted by keyGen
	// completed its memtable append before bumping the generation, so the
	// fill (which scans after this point) observes at least those rows.
	// exclude is length-prefixed rather than delimited: it and query are
	// both client-controlled free-form strings, so a bare separator
	// between them would let distinct (exclude, query) pairs collide.
	keyGen := rt.writeGen.Load()
	snap := rt.snap.Load()
	keyEpoch := snap.Epoch
	key := fmt.Sprintf("%d\x1f%d\x1f%d\x1f%d\x1f%s%s", keyEpoch, keyGen, k, len(exclude), exclude, query)
	cacheStart := time.Now()
	val, ok := rt.cache.Get(key)
	cacheDur := time.Since(cacheStart)
	rt.hStageCache.Observe(cacheDur)
	tr.AddSpan("cache", cacheStart, cacheDur)
	if ok {
		rt.mHits.Inc()
		return val.Results, true, val.Epoch, nil
	}
	rt.mMisses.Inc()
	val, shared, err := rt.flights.do(ctx, key, func() (CachedResult, error) {
		// Detach the batch dispatch from the leader's request context: a
		// flight computes a result shared by every joiner, so one
		// client's disconnect must not poison the rest (each caller still
		// guards its own wait with its own ctx inside do and co.Do).
		// Only the flight leader's job reaches the batch, so only its trace
		// sees the queue/embed/scan/merge spans; joiners share the result and
		// keep just their cache span — an honest timeline, they did no work.
		out, err := rt.co.Do(context.WithoutCancel(ctx), searchJob{query: query, k: k, exclude: exclude, enq: time.Now(), tr: tr})
		if err != nil {
			return CachedResult{}, err
		}
		res := CachedResult{Results: out.results, Epoch: out.epoch}
		// Insert only fills that still belong to the key's generation, and
		// back the insert out if a swap purged the cache while it landed:
		// either way an entry keyed under a dead epoch is never read again
		// and would only squat LRU capacity until evicted. The post-Put
		// re-check closes the Purge/Put race — if the swap's purge ran
		// first, the published epoch has already moved on and we delete
		// our own orphan; if it runs after, it removes the entry itself.
		if out.epoch == keyEpoch {
			rt.cache.Put(key, res)
			if rt.snap.Load().Epoch != keyEpoch || rt.writeGen.Load() != keyGen {
				rt.cache.Delete(key)
			}
		}
		return res, nil
	})
	if shared {
		rt.mShared.Inc()
	}
	return val.Results, false, val.Epoch, err
}

// swapIndex atomically publishes a snapshot serving index on this route.
// In-flight requests finish against the old snapshot; the route's query
// cache is purged so no pre-swap result is served afterwards. Other
// routes' caches and epochs are untouched.
func (rt *route) swapIndex(index vecstore.Index, source string) (*Snapshot, error) {
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()
	cur := rt.snap.Load()
	st, err := cur.Store.WithIndex(index)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Store: st, Epoch: cur.Epoch + 1, Source: source}
	rt.snap.Store(snap)
	if rt.cache != nil {
		rt.cache.Purge()
		rt.gCacheLen.Set(0)
	}
	rt.mSwaps.Inc()
	rt.gEpoch.Set(int64(snap.Epoch))
	rt.gVectors.Set(int64(index.Len()))
	return snap, nil
}

func (s *Server) route(name string) (*route, error) {
	if rt, ok := s.routes[name]; ok {
		return rt, nil
	}
	return nil, fmt.Errorf("serve: unknown route %q (mounted: %s)", name, strings.Join(s.Routes(), ", "))
}

// Search answers one query on the chunks route. cached reports whether
// the result came from the query cache; epoch is the generation of the
// snapshot that actually produced the results (it can trail the
// currently published epoch across a concurrent swap).
func (s *Server) Search(ctx context.Context, query string, k int) (results []rag.Hit, cached bool, epoch uint64, err error) {
	return s.SearchRoute(ctx, RouteChunks, query, k, "")
}

// SearchRoute answers one query on a named route. exclude is the trace
// routes' question self-exclusion id ("" for none; chunk routes ignore
// it).
func (s *Server) SearchRoute(ctx context.Context, routeName, query string, k int, exclude string) (results []rag.Hit, cached bool, epoch uint64, err error) {
	rt, err := s.route(routeName)
	if err != nil {
		return nil, false, 0, err
	}
	return rt.search(ctx, query, k, exclude)
}

// SwapIndex hot-swaps the chunks route (see SwapRouteIndex).
func (s *Server) SwapIndex(index vecstore.Index, source string) (*Snapshot, error) {
	return s.SwapRouteIndex(RouteChunks, index, source)
}

// SwapRouteIndex atomically publishes a snapshot of one route serving
// index; the other routes keep their epochs and warm caches.
func (s *Server) SwapRouteIndex(routeName string, index vecstore.Index, source string) (*Snapshot, error) {
	rt, err := s.route(routeName)
	if err != nil {
		return nil, err
	}
	return rt.swapIndex(index, source)
}

// SwapFromFile hot-swaps the chunks route from a VSF file (see
// SwapRouteFromFile).
func (s *Server) SwapFromFile(path string) (*Snapshot, error) {
	return s.SwapRouteFromFile(RouteChunks, path)
}

// SwapRouteFromFile loads a persisted index (any VSF generation) in the
// calling goroutine — the expensive part, off the serving path — then
// publishes it on the route with swapIndex.
func (s *Server) SwapRouteFromFile(routeName, path string) (*Snapshot, error) {
	rt, err := s.route(routeName)
	if err != nil {
		return nil, err
	}
	return rt.swapFromFile(path)
}

// swapFromFile is the load-then-publish sequence shared by the
// programmatic and HTTP swap paths.
func (rt *route) swapFromFile(path string) (*Snapshot, error) {
	index, err := vecstore.Load(path)
	if err != nil {
		return nil, fmt.Errorf("serve: swap load: %w", err)
	}
	return rt.swapIndex(index, path)
}

// addChunks inserts a batch on a live route. The snapshot is loaded while
// writeMu is held: a concurrent compaction publishes its rotated snapshot
// under the same lock, so an insert either lands in the memtable before
// rotation copies it forward, or in the fresh memtable after — never in a
// memtable that has already been discarded.
func (rt *route) addChunks(chunks []chunk.Chunk) (AddResponse, error) {
	rt.writeMu.Lock()
	snap := rt.snap.Load()
	ing, ok := snap.Store.(rag.Ingestor)
	if !ok {
		rt.writeMu.Unlock()
		return AddResponse{}, fmt.Errorf("serve: route %q does not accept inserts (not mounted live)", rt.name)
	}
	added, err := ing.AddChunks(chunks)
	if err != nil {
		rt.writeMu.Unlock()
		return AddResponse{}, err
	}
	gen := rt.writeGen.Add(1)
	vectors := snap.Store.Len()
	memRows := 0
	if lv, ok := snap.Store.Index().(*vecstore.Live); ok {
		memRows = lv.MemLen()
	}
	rt.writeMu.Unlock()

	rt.mInserts.Add(int64(added))
	rt.mInsertBatches.Inc()
	rt.gVectors.Set(int64(vectors))
	rt.gMemRows.Set(int64(memRows))
	if rt.cfg.CompactAt > 0 && memRows >= rt.cfg.CompactAt {
		go rt.compact() //nolint:errcheck // surfaced via metrics; next add retries
	}
	return AddResponse{Added: added, Vectors: vectors, MemRows: memRows, Epoch: snap.Epoch, WriteGen: gen, Route: rt.name}, nil
}

// compact drains the route's memtable into its base index and publishes
// the result. The expensive encode (CompactBase) runs outside every lock,
// concurrent with searches and further inserts; only the rotate+publish
// step takes writeMu. If an admin swap replaced the snapshot while the
// encode ran, the compaction is dropped rather than resurrect the old
// corpus. Returns whether a compaction was published.
func (rt *route) compact() (bool, error) {
	if !rt.compacting.CompareAndSwap(false, true) {
		return false, nil // one at a time; the trigger after the next add retries
	}
	defer rt.compacting.Store(false)
	snap := rt.snap.Load()
	lv, ok := snap.Store.Index().(*vecstore.Live)
	if !ok {
		return false, fmt.Errorf("serve: route %q has no live index to compact", rt.name)
	}
	n := lv.MemLen()
	if n == 0 {
		return false, nil
	}
	newBase, err := lv.CompactBase(n)
	if err != nil {
		return false, fmt.Errorf("serve: compact %q: %w", rt.name, err)
	}
	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	if rt.snap.Load() != snap {
		return false, nil // an admin swap won the race; drop this compaction
	}
	next := lv.Rotate(newBase, n)
	if _, err := rt.swapIndex(next, "compaction"); err != nil {
		return false, fmt.Errorf("serve: compact %q publish: %w", rt.name, err)
	}
	rt.mCompactions.Inc()
	rt.gMemRows.Set(int64(next.MemLen()))
	return true, nil
}

// AddChunks inserts chunks on a live-mounted route (programmatic
// counterpart of POST /v1/<route>/add). The target store must implement
// rag.Ingestor — a chunk store with EnableLive called before Mount.
func (s *Server) AddChunks(routeName string, chunks []chunk.Chunk) (AddResponse, error) {
	rt, err := s.route(routeName)
	if err != nil {
		return AddResponse{}, err
	}
	return rt.addChunks(chunks)
}

// CompactRoute synchronously drains a live route's memtable into its base
// index and publishes the compacted snapshot (programmatic counterpart of
// POST /admin/<route>/compact). Returns whether a compaction was
// published — false when the memtable was empty or another compaction was
// already running.
func (s *Server) CompactRoute(routeName string) (bool, error) {
	rt, err := s.route(routeName)
	if err != nil {
		return false, err
	}
	return rt.compact()
}

// Snapshot returns the currently published snapshot of the chunks route,
// or nil when no chunk store is mounted.
func (s *Server) Snapshot() *Snapshot {
	if s.chunks == nil {
		return nil
	}
	return s.chunks.snap.Load()
}

// RouteSnapshot returns the currently published snapshot of one route.
func (s *Server) RouteSnapshot(routeName string) (*Snapshot, bool) {
	rt, ok := s.routes[routeName]
	if !ok {
		return nil, false
	}
	return rt.snap.Load(), true
}

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP API. Per mounted route <name>:
//
//	POST /v1/<name>/search        {"query","k","exclude"} → {"results":[...],"cached","epoch","route"}
//	POST /v1/<name>/search/batch  {"queries":[...],"k","exclude":[...]} → {"results":[[...],...]}
//	POST /v1/<name>/add           {"chunks":[{"chunk_id","doc_id","text"},...]} → {"added","vectors","mem_rows","epoch","write_gen","route"}
//	POST /admin/<name>/swap       {"path"} → {"epoch","vectors","source","route"}
//	POST /admin/<name>/compact    (no body) → {"compacted","epoch","vectors","mem_rows","route"}
//
// The add endpoint works only on routes mounted over a live (mutable)
// store and rejects others with 400; compact is a no-op on them.
//
// plus the PR 3 single-store aliases for the chunks route (/v1/search,
// /v1/search/batch, /admin/swap) and the shared endpoints:
//
//	GET  /healthz   {"status","epoch","vectors","source","routes":{...}}
//	GET  /metrics   text exposition of the registry
//
// and the debug surface:
//
//	GET  /debug/slowlog/<route>   {"route","slowest":[trace records]}
//	GET  /debug/pprof/...         net/http/pprof (only with Config.Debug)
func (s *Server) Handler() http.Handler {
	s.started.Store(true)
	mux := http.NewServeMux()
	for name, rt := range s.routes {
		mux.HandleFunc("POST /v1/"+name+"/search", rt.handleSearch)
		mux.HandleFunc("POST /v1/"+name+"/search/batch", rt.handleSearchBatch)
		mux.HandleFunc("POST /v1/"+name+"/add", rt.handleAdd)
		mux.HandleFunc("POST /admin/"+name+"/swap", rt.handleSwap)
		mux.HandleFunc("POST /admin/"+name+"/compact", rt.handleCompact)
	}
	if rt := s.chunks; rt != nil {
		mux.HandleFunc("POST /v1/search", rt.handleSearch)
		mux.HandleFunc("POST /v1/search/batch", rt.handleSearchBatch)
		mux.HandleFunc("POST /admin/swap", rt.handleSwap)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog/{route...}", s.handleSlowlog)
	if s.cfg.Debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleSlowlog serves a route's retained slowest traces.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	rt, err := s.route(r.PathValue("route"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, obs.SlowLogPage{Route: rt.name, Slowest: rt.slow.Snapshot()})
}

// Start binds addr ("127.0.0.1:0" for an ephemeral port) and serves in the
// background until Shutdown. Mount every store before Start.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadTimeout: 30 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Shutdown
	return nil
}

// Addr returns the bound address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains gracefully: the listener stops accepting, in-flight
// requests run to completion (bounded by ctx), and only then do the
// route coalescers stop — the argo SIGTERM-drain pattern.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	for _, rt := range s.routes {
		rt.co.Close()
	}
	return err
}

// Close is Shutdown with a bounded drain window.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Wire types.

// SearchRequest is the single-query search body. Exclude is honoured by
// trace routes only: it suppresses traces distilled from that question id
// (the cross-question ablation rule).
type SearchRequest struct {
	Query   string `json:"query"`
	K       int    `json:"k,omitempty"`
	Exclude string `json:"exclude,omitempty"`
	// Timing opts the response into the per-stage trace timeline.
	Timing bool `json:"timing,omitempty"`
}

// TimingInfo is the opt-in per-request trace a response carries when the
// request set "timing": the trace id (minted, or adopted from the caller's
// X-Trace-Id header), the total microseconds since the handler adopted the
// trace, and the ordered span timeline. It is snapshotted before response
// encoding, so the encode span itself appears only in the slowlog and the
// stage.encode histogram.
type TimingInfo struct {
	TraceID string     `json:"trace_id"`
	TotalUS int64      `json:"total_us"`
	Spans   []obs.Span `json:"spans"`
}

// SearchResult is one retrieval hit on the wire. ID/Group are chunk
// id/doc id on chunk routes and trace id/source-question id on trace
// routes; Text is the chunk text or the reasoning trace.
type SearchResult struct {
	ID    string  `json:"id"`
	Group string  `json:"group"`
	Text  string  `json:"text,omitempty"`
	Score float32 `json:"score"`
}

// SearchResponse is the single-query search reply.
type SearchResponse struct {
	Results []SearchResult `json:"results"`
	Cached  bool           `json:"cached,omitempty"`
	Epoch   uint64         `json:"epoch"`
	Route   string         `json:"route,omitempty"`
	Timing  *TimingInfo    `json:"timing,omitempty"`
}

// BatchSearchRequest is the batch search body. Exclude is empty or one
// entry per query (trace routes only).
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	K       int      `json:"k,omitempty"`
	Exclude []string `json:"exclude,omitempty"`
	// Timing opts the response into the per-stage trace timeline.
	Timing bool `json:"timing,omitempty"`
}

// BatchSearchResponse is the batch search reply, per-query results in
// request order.
type BatchSearchResponse struct {
	Results [][]SearchResult `json:"results"`
	Epoch   uint64           `json:"epoch"`
	Route   string           `json:"route,omitempty"`
	Timing  *TimingInfo      `json:"timing,omitempty"`
}

// SwapRequest is the swap body.
type SwapRequest struct {
	Path string `json:"path"`
}

// SwapResponse is the swap reply.
type SwapResponse struct {
	Epoch   uint64 `json:"epoch"`
	Vectors int    `json:"vectors"`
	Source  string `json:"source"`
	Route   string `json:"route,omitempty"`
}

// AddChunk is one chunk to insert on a live route.
type AddChunk struct {
	ID    string `json:"chunk_id"`
	DocID string `json:"doc_id,omitempty"`
	Text  string `json:"text"`
}

// AddRequest is the live-insert body.
type AddRequest struct {
	Chunks []AddChunk `json:"chunks"`
}

// AddResponse is the live-insert reply. WriteGen is the route's write
// generation after this insert; MemRows is the memtable size after it
// (before any compaction the insert may have triggered).
type AddResponse struct {
	Added    int    `json:"added"`
	Vectors  int    `json:"vectors"`
	MemRows  int    `json:"mem_rows"`
	Epoch    uint64 `json:"epoch"`
	WriteGen uint64 `json:"write_gen"`
	Route    string `json:"route,omitempty"`
}

// CompactResponse is the admin-compact reply. Compacted is false when the
// memtable was empty or another compaction was in flight.
type CompactResponse struct {
	Compacted bool   `json:"compacted"`
	Epoch     uint64 `json:"epoch"`
	Vectors   int    `json:"vectors"`
	MemRows   int    `json:"mem_rows"`
	Route     string `json:"route,omitempty"`
}

// RouteHealth is one route's health summary.
type RouteHealth struct {
	Epoch   uint64 `json:"epoch"`
	Vectors int    `json:"vectors"`
	Source  string `json:"source"`
}

// Healthz is the /healthz reply. Status is "ok", or "degraded" when any
// mounted route has zero vectors loaded (an empty shard serves nothing,
// and an upstream prober must be able to tell). The top-level
// epoch/vectors/source mirror the chunks route for PR 3 compatibility;
// Routes carries every mounted store.
type Healthz struct {
	Status  string                 `json:"status"`
	Epoch   uint64                 `json:"epoch"`
	Vectors int                    `json:"vectors"`
	Source  string                 `json:"source"`
	Routes  map[string]RouteHealth `json:"routes"`
}

func (rt *route) results(hits []rag.Hit) []SearchResult {
	out := make([]SearchResult, len(hits))
	for i, h := range hits {
		out[i] = SearchResult{ID: h.ID, Group: h.Group, Score: h.Score}
		if !rt.cfg.OmitText {
			out[i].Text = h.Text
		}
	}
	return out
}

func (rt *route) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		rt.mErrors.Inc()
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	// Adopt the caller's trace id (router → shard propagation) or mint one.
	tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
	res, cached, epoch, err := rt.search(obs.WithTrace(r.Context(), tr), req.Query, req.K, req.Exclude)
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := SearchResponse{Results: rt.results(res), Cached: cached, Epoch: epoch, Route: rt.name}
	if req.Timing {
		// Snapshot before encoding: the response timing necessarily excludes
		// its own encode span (it still lands in the slowlog and histogram).
		resp.Timing = &TimingInfo{TraceID: tr.ID(), TotalUS: tr.Since().Microseconds(), Spans: tr.Spans()}
	}
	rt.encodeTraced(w, tr, resp)
	rt.slow.Record(tr, "search", req.Query)
}

// encodeTraced writes the JSON response under an "encode" span and the
// encode-stage histogram — the last hop of a traced request's life.
func (rt *route) encodeTraced(w http.ResponseWriter, tr *obs.Trace, v any) {
	start := time.Now()
	writeJSON(w, v)
	d := time.Since(start)
	rt.hStageEncode.Observe(d)
	tr.AddSpan("encode", start, d)
}

// handleSearchBatch serves an already-batched request straight through the
// batch kernel — it is its own micro-batch, so it bypasses the coalescer
// and cache.
func (rt *route) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		rt.mErrors.Inc()
		http.Error(w, "empty queries", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatchQueries {
		rt.mErrors.Inc()
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), rt.cfg.MaxBatchQueries),
			http.StatusRequestEntityTooLarge)
		return
	}
	if len(req.Exclude) != 0 && len(req.Exclude) != len(req.Queries) {
		rt.mErrors.Inc()
		http.Error(w, fmt.Sprintf("exclude has %d entries for %d queries", len(req.Exclude), len(req.Queries)),
			http.StatusBadRequest)
		return
	}
	k := req.K
	if k <= 0 {
		k = rt.cfg.DefaultK
	}
	if k > rt.cfg.MaxK {
		k = rt.cfg.MaxK
	}
	rt.mRequests.Add(int64(len(req.Queries)))
	tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
	snap := rt.snap.Load()
	t0 := time.Now()
	res, st := rt.retrieve(snap, req.Queries, k, req.Exclude)
	attachStages(tr, t0, st)
	out := BatchSearchResponse{Results: make([][]SearchResult, len(res)), Epoch: snap.Epoch, Route: rt.name}
	for i, hits := range res {
		out.Results[i] = rt.results(hits)
	}
	if req.Timing {
		out.Timing = &TimingInfo{TraceID: tr.ID(), TotalUS: tr.Since().Microseconds(), Spans: tr.Spans()}
	}
	rt.encodeTraced(w, tr, out)
	rt.slow.Record(tr, "search/batch", req.Queries[0])
}

func (rt *route) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if req.Path == "" {
		rt.mErrors.Inc()
		http.Error(w, "empty path", http.StatusBadRequest)
		return
	}
	snap, err := rt.swapFromFile(req.Path)
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, SwapResponse{Epoch: snap.Epoch, Vectors: snap.Store.Len(), Source: snap.Source, Route: rt.name})
}

func (rt *route) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if !rt.decode(w, r, &req) {
		return
	}
	if len(req.Chunks) == 0 {
		rt.mErrors.Inc()
		http.Error(w, "empty chunks", http.StatusBadRequest)
		return
	}
	if len(req.Chunks) > rt.cfg.MaxBatchQueries {
		rt.mErrors.Inc()
		http.Error(w, fmt.Sprintf("insert of %d exceeds limit %d", len(req.Chunks), rt.cfg.MaxBatchQueries),
			http.StatusRequestEntityTooLarge)
		return
	}
	chunks := make([]chunk.Chunk, len(req.Chunks))
	for i, c := range req.Chunks {
		chunks[i] = chunk.Chunk{ID: c.ID, DocID: c.DocID, Text: c.Text}
	}
	resp, err := rt.addChunks(chunks)
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

// handleCompact triggers a synchronous compaction; the body is ignored.
func (rt *route) handleCompact(w http.ResponseWriter, _ *http.Request) {
	compacted, err := rt.compact()
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := rt.snap.Load()
	memRows := 0
	if lv, ok := snap.Store.Index().(*vecstore.Live); ok {
		memRows = lv.MemLen()
	}
	writeJSON(w, CompactResponse{Compacted: compacted, Epoch: snap.Epoch, Vectors: snap.Store.Len(), MemRows: memRows, Route: rt.name})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// A mounted route with zero vectors answers every search with nothing —
	// alive but useless. Report "degraded" instead of "ok" so an upstream
	// health prober (the router's) can tell an empty shard from a healthy
	// one without issuing probe queries.
	hz := Healthz{Status: "ok", Routes: make(map[string]RouteHealth, len(s.routes))}
	for name, rt := range s.routes {
		snap := rt.snap.Load()
		vectors := snap.Store.Len()
		if vectors == 0 {
			hz.Status = "degraded"
		}
		hz.Routes[name] = RouteHealth{Epoch: snap.Epoch, Vectors: vectors, Source: snap.Source}
	}
	if s.chunks != nil {
		snap := s.chunks.snap.Load()
		hz.Epoch, hz.Vectors, hz.Source = snap.Epoch, snap.Store.Len(), snap.Source
	}
	writeJSON(w, hz)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The cache-size gauges are refreshed here rather than on every fill:
	// Len locks all shards, which would re-serialize the miss paths.
	for _, rt := range s.routes {
		if rt.cache != nil {
			rt.gCacheLen.Set(int64(rt.cache.Len()))
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck // client went away
}

func (rt *route) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		rt.mErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		rt.mErrors.Inc()
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}
