package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/rag"
)

// Cache is a sharded LRU over retrieval results. Sharding keeps lock
// contention off the hot path under concurrent clients: the key hashes to
// one shard, and each shard is an independent mutex-protected LRU.
type Cache struct {
	shards []*lruShard
}

// NewCache returns a cache holding up to capacity entries split across
// shards (shards <= 0 selects 8, and is clamped to capacity so every
// shard holds at least one entry). The remainder of capacity/shards is
// distributed one entry each to the first shards, so the per-shard caps
// sum to exactly capacity — rounding every shard up would let the cache
// admit up to shards-1 entries more than asked for.
func NewCache(capacity, shards int) *Cache {
	if shards <= 0 {
		shards = 8
	}
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	per, extra := capacity/shards, capacity%shards
	c := &Cache{shards: make([]*lruShard, shards)}
	for i := range c.shards {
		n := per
		if i < extra {
			n++
		}
		c.shards[i] = &lruShard{
			cap:   n,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

type lruShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// CachedResult is a retrieval result tagged with the epoch of the
// snapshot that produced it, so responses can report the true generation
// of the data they carry even across a concurrent swap.
type CachedResult struct {
	Results []rag.Hit
	Epoch   uint64
}

type cacheEntry struct {
	key string
	val CachedResult
}

func (c *Cache) shard(key string) *lruShard {
	// Inline FNV-1a: the stdlib hasher would cost two allocations (hasher
	// + []byte(key)) per Get/Put on the hot path.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (CachedResult, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return CachedResult{}, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the shard's least recently used
// entry when full.
func (c *Cache) Put(key string, val CachedResult) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// Delete removes key if present (used to back out a fill that raced a
// purge: the entry is keyed under a dead epoch and would otherwise squat
// LRU capacity until evicted).
func (c *Cache) Delete(key string) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
}

// Purge drops every entry (called on hot index swap: results computed
// against the previous snapshot must not be served against the new one).
func (c *Cache) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// flightGroup collapses concurrent duplicate cache fills into one
// execution (singleflight): the first caller for a key becomes the leader
// and runs fn; callers arriving before it finishes wait and share the
// leader's result instead of issuing a redundant search.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  CachedResult
	err  error
}

// do runs fn for key, deduplicating concurrent calls. shared reports
// whether this caller joined another caller's flight. A joiner whose ctx
// expires abandons the wait; the leader's fn keeps running with the
// leader's ctx.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (CachedResult, error)) (val CachedResult, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return CachedResult{}, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}
