// Package serve is the online retrieval layer: an HTTP JSON server that
// puts the repo's offline retrieval substrate (rag.ChunkStore over the
// vecstore scan kernels) behind a socket, with the serving-time machinery
// a production deployment needs.
//
// Four mechanisms make up the subsystem:
//
//   - Request coalescing. Concurrent single-query /v1/search requests are
//     packed into micro-batches (internal/batch, the same admission-window
//     coalescer behind the argo model gateway) and dispatched through
//     rag.ChunkStore.RetrieveBatch — so the vecstore multi-query kernel
//     amortises tile decode, and a PQ index amortises its per-query LUT
//     build, across the whole batch. This is where the batch kernel's
//     offline speedup becomes an online QPS win.
//
//   - Query cache. A sharded LRU keyed by (epoch, k, query) with
//     singleflight de-duplication: repeated queries are answered without
//     touching the index, and concurrent identical misses collapse into
//     one search.
//
//   - Hot index swap. The server publishes immutable Snapshots through an
//     atomic pointer. A replacement index (any VSF generation) is loaded
//     off the serving path, wrapped via rag's WithIndex hook, and swapped
//     in with one pointer store; the cache is purged and the epoch
//     incremented. In-flight batches finish on the old snapshot — zero
//     downtime, no torn reads.
//
//   - Observability and load. /healthz and /metrics (text exposition of an
//     internal/metrics Registry: QPS counters, batch-size distribution,
//     cache hit rate, latency quantiles) plus a closed/open-loop load
//     harness (RunLoad) that cmd/ragload and `make bench-serve` drive to
//     measure the serving stack end to end.
//
// cmd/ragserve wires the server to a corpus and a SIGTERM drain;
// cmd/ragload is the matching load generator.
package serve
