// Package serve is the online retrieval layer: an HTTP JSON server that
// puts the repo's retrieval stores — the chunk database plus the three
// per-mode reasoning-trace databases — behind a socket, with the
// serving-time machinery a production deployment needs.
//
// The server is a front-end over a small store interface (Store, an alias
// of rag.Facade: RetrieveBatch, the WithIndex snapshot hook, Index/Len).
// Each store is mounted as a named route ("chunks", "traces/detailed", …)
// served at /v1/<route>/search (+ /batch) and /admin/<route>/swap, and
// every route gets its own copy of the serving machinery, so a hot swap
// or cache purge on one store can never evict entries, bump epochs, or
// stall requests on another. Per route:
//
//   - Request coalescing. Concurrent single-query requests are packed
//     into micro-batches (internal/batch, the same admission-window
//     coalescer behind the argo model gateway) and dispatched through the
//     store's RetrieveBatch — so the vecstore multi-query kernel
//     amortises tile decode, and a PQ index amortises its per-query LUT
//     build, across the whole batch. Trace-route requests carry the
//     per-query question self-exclusion id through the same batches.
//
//   - Query cache. A sharded LRU keyed by (epoch, k, exclude, query)
//     with singleflight de-duplication: repeated queries are answered
//     without touching the index, and concurrent identical misses
//     collapse into one search. Shard capacities sum to exactly the
//     configured total, and a fill that races a hot swap is dropped
//     rather than left squatting under a dead epoch.
//
//   - Hot index swap. Each route publishes immutable Snapshots through an
//     atomic pointer. A replacement index (any VSF generation) is loaded
//     off the serving path, wrapped via the facade's WithIndex hook, and
//     swapped in with one pointer store; the route's cache is purged and
//     its epoch incremented — other routes keep serving warm. In-flight
//     batches finish on the old snapshot — zero downtime, no torn reads.
//
//   - Observability and load. /healthz reports every route; /metrics is
//     the text exposition of an internal/metrics Registry with one
//     namespace per route (serve.chunks.…, serve.traces.detailed.…:
//     QPS counters, batch-size distribution, cache hit rate, latency
//     quantiles). RunLoad/RunLoadMixed drive closed/open-loop and
//     mixed-route workloads for cmd/ragload and `make bench-serve`,
//     whose BENCH_serve.json report is schema-checked (BenchReport.Check)
//     by the root bench test.
//
// cmd/ragserve wires the stores to a corpus and a SIGTERM drain;
// cmd/ragload is the matching load generator.
package serve
