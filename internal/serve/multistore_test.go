package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mcq"
	"repro/internal/rag"
)

// testTraces builds 3 traces (one per mode) for each of n synthetic
// questions, with distinct retrievable reasoning texts.
func testTraces(n int) ([]*mcq.Trace, map[string]string) {
	topics := []string{"spectral line broadening", "magnetar flare energetics",
		"protoplanetary disk chemistry", "tidal disruption events"}
	qf := make(map[string]string, n)
	var traces []*mcq.Trace
	for i := 0; i < n; i++ {
		qid := fmt.Sprintf("q%03d", i)
		qf[qid] = fmt.Sprintf("f%03d", i)
		for _, mode := range mcq.AllModes {
			traces = append(traces, &mcq.Trace{
				ID:             fmt.Sprintf("t-%s-%03d", mode, i),
				QuestionID:     qid,
				Mode:           mode,
				Model:          "test-teacher",
				Reasoning:      fmt.Sprintf("%s analysis of %s case %d with elimination step %d", mode, topics[i%len(topics)], i, i*5%17),
				AnswerExcluded: true,
			})
		}
	}
	return traces, qf
}

// testMultiServer mounts the chunk store and all three trace stores.
func testMultiServer(t testing.TB, nChunks, nQuestions int, cfg Config) (*Server, *rag.ChunkStore, map[mcq.ReasoningMode]*rag.TraceStore, []*mcq.Trace) {
	t.Helper()
	store := rag.BuildChunkStore(nil, testChunks(nChunks), 0)
	traces, qf := testTraces(nQuestions)
	stores := rag.TraceStores(nil, traces, qf, 0)
	s := New(store, cfg)
	if err := s.MountTraceStores(stores); err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, store, stores, traces
}

func TestMultiStoreRoutes(t *testing.T) {
	s, _, _, traces := testMultiServer(t, 32, 12, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	want := []string{"chunks", "traces/detailed", "traces/efficient", "traces/focused"}
	if got := strings.Join(s.Routes(), " "); got != strings.Join(want, " ") {
		t.Fatalf("routes %q", got)
	}

	// Each trace mode answers on its own route, top hit = the queried
	// trace, with the source-question id carried as the group.
	for _, tr := range []*mcq.Trace{traces[0], traces[1], traces[2]} {
		resp, err := c.SearchTrace(string(tr.Mode), tr.Reasoning, 3, "")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Route != "traces/"+string(tr.Mode) {
			t.Fatalf("route label %q for mode %s", resp.Route, tr.Mode)
		}
		if len(resp.Results) == 0 || resp.Results[0].ID != tr.ID || resp.Results[0].Group != tr.QuestionID {
			t.Fatalf("mode %s results %+v", tr.Mode, resp.Results)
		}
	}

	// The question self-exclusion suppresses the trace's own question.
	tr := traces[0]
	resp, err := c.SearchTrace(string(tr.Mode), tr.Reasoning, 3, tr.QuestionID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		if r.Group == tr.QuestionID {
			t.Fatalf("excluded question %s leaked into results", tr.QuestionID)
		}
	}

	// Batch variant on a trace route, per-query exclusion.
	tr2 := traces[3] // same mode as traces[0] (AllModes cycle per question)
	bresp, err := c.SearchRouteBatch("traces/"+string(tr.Mode),
		[]string{tr.Reasoning, tr2.Reasoning}, 2, []string{"", tr2.QuestionID})
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 2 || bresp.Results[0][0].ID != tr.ID {
		t.Fatalf("batch results %+v", bresp.Results)
	}
	for _, r := range bresp.Results[1] {
		if r.Group == tr2.QuestionID {
			t.Fatal("batch exclusion ignored")
		}
	}

	// Healthz reports every route; metrics are namespaced per route.
	hz, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if len(hz.Routes) != 4 {
		t.Fatalf("healthz routes %+v", hz.Routes)
	}
	mtext, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, wantM := range []string{"counter serve.chunks.requests", "counter serve.traces.detailed.requests",
		"gauge serve.traces.focused.index.epoch", "histogram serve.traces.efficient.batch.size"} {
		if !strings.Contains(mtext, wantM) {
			t.Fatalf("/metrics missing %q", wantM)
		}
	}

	// Unknown routes are errors, not silent chunk fallbacks.
	if _, _, _, err := s.SearchRoute(context.Background(), "nope", "x", 1, ""); err == nil {
		t.Fatal("unknown route accepted")
	}
	if _, err := c.SearchRoute("nope", "x", 1, ""); err == nil {
		t.Fatal("unknown route served over HTTP")
	}
}

func TestCacheKeyCollisionAcrossExcludeAndQuery(t *testing.T) {
	// exclude and query are both client-controlled free-form strings; a
	// bare delimiter between them would make ("a", "b\x1fc") and
	// ("a\x1fb", "c") share one cache key, serving one pair's results for
	// the other. The length-prefixed key must keep them distinct.
	s, _, _, _ := testMultiServer(t, 16, 4, DefaultConfig())
	ctx := context.Background()
	if _, cached, _, err := s.SearchRoute(ctx, "traces/detailed", "b\x1fc", 3, "a"); err != nil || cached {
		t.Fatalf("first pair: cached=%v err=%v", cached, err)
	}
	if _, cached, _, err := s.SearchRoute(ctx, "traces/detailed", "c", 3, "a\x1fb"); err != nil || cached {
		t.Fatalf("colliding pair served from the other pair's cache entry: cached=%v err=%v", cached, err)
	}
	// Sanity: the genuinely identical request does hit.
	if _, cached, _, err := s.SearchRoute(ctx, "traces/detailed", "b\x1fc", 3, "a"); err != nil || !cached {
		t.Fatalf("identical repeat not cached: cached=%v err=%v", cached, err)
	}
}

func TestPerRouteSwapIsolation(t *testing.T) {
	s, store, stores, traces := testMultiServer(t, 48, 10, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)
	dir := t.TempDir()

	chunkVSF := filepath.Join(dir, "chunks.vsf")
	if err := store.SaveIndex(chunkVSF); err != nil {
		t.Fatal(err)
	}
	traceVSF := filepath.Join(dir, "detailed.vsf")
	if err := stores[mcq.ModeDetailed].SaveIndex(traceVSF); err != nil {
		t.Fatal(err)
	}

	// Warm one entry per route.
	var detailed *mcq.Trace
	for _, tr := range traces {
		if tr.Mode == mcq.ModeDetailed {
			detailed = tr
			break
		}
	}
	chunkQ := testChunks(48)[7].Text
	for i := 0; i < 2; i++ {
		if _, err := c.Search(chunkQ, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := c.SearchTrace("detailed", detailed.Reasoning, 3, ""); err != nil {
			t.Fatal(err)
		}
	}

	// Swapping the chunk route must not purge the trace route's cache or
	// touch its epoch.
	swap, err := c.SwapRoute("chunks", chunkVSF)
	if err != nil {
		t.Fatal(err)
	}
	if swap.Route != "chunks" || swap.Epoch != 1 {
		t.Fatalf("swap response %+v", swap)
	}
	tresp, err := c.SearchTrace("detailed", detailed.Reasoning, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if !tresp.Cached || tresp.Epoch != 0 {
		t.Fatalf("trace entry went cold across a chunk swap: cached=%v epoch=%d", tresp.Cached, tresp.Epoch)
	}
	// The chunk route's own cache was purged (fresh lookup misses).
	cresp, err := c.Search(chunkQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cresp.Cached || cresp.Epoch != 1 {
		t.Fatalf("chunk cache survived its own swap: cached=%v epoch=%d", cresp.Cached, cresp.Epoch)
	}

	// And symmetrically: swap the detailed trace route, chunks stay warm.
	if _, err := c.Search(chunkQ, 3); err != nil { // re-warm under epoch 1
		t.Fatal(err)
	}
	tswap, err := c.SwapRoute("traces/detailed", traceVSF)
	if err != nil {
		t.Fatal(err)
	}
	if tswap.Epoch != 1 || tswap.Route != "traces/detailed" {
		t.Fatalf("trace swap %+v", tswap)
	}
	cresp, err = c.Search(chunkQ, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cresp.Cached || cresp.Epoch != 1 {
		t.Fatalf("chunk entry went cold across a trace swap: cached=%v epoch=%d", cresp.Cached, cresp.Epoch)
	}
	// Per-route epochs are independent counters.
	snapC, _ := s.RouteSnapshot("chunks")
	snapD, _ := s.RouteSnapshot("traces/detailed")
	snapF, _ := s.RouteSnapshot("traces/focused")
	if snapC.Epoch != 1 || snapD.Epoch != 1 || snapF.Epoch != 0 {
		t.Fatalf("epochs chunks=%d detailed=%d focused=%d", snapC.Epoch, snapD.Epoch, snapF.Epoch)
	}
}

func TestStaleFillDoesNotSquatAfterSwap(t *testing.T) {
	// A fill that is still in flight when SwapIndex purges the cache must
	// not leave an entry keyed under the dead epoch.
	cfg := DefaultConfig()
	cfg.MaxDelay = 40 * time.Millisecond // park the fill in the coalescer
	cfg.MaxBatch = 64
	s, store, chunks := testServer(t, 24, cfg)
	vsf := filepath.Join(t.TempDir(), "gen2.vsf")
	if err := store.SaveIndex(vsf); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, _, err := s.Search(context.Background(), chunks[4].Text, 2)
		done <- err
	}()
	for { // wait until the fill's flight is registered
		s.chunks.flights.mu.Lock()
		n := len(s.chunks.flights.m)
		s.chunks.flights.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if _, err := s.SwapFromFile(vsf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := s.chunks.cache.Len(); n != 0 {
		t.Fatalf("%d dead-epoch entries squatting the cache after swap", n)
	}
	// A fresh lookup misses, then fills under the live epoch.
	if _, cached, epoch, err := s.Search(context.Background(), chunks[4].Text, 2); err != nil || cached || epoch != 1 {
		t.Fatalf("post-swap lookup cached=%v epoch=%d err=%v", cached, epoch, err)
	}
	if n := s.chunks.cache.Len(); n != 1 {
		t.Fatalf("cache len %d after live-epoch fill", n)
	}
}

// TestSwapSearchRaceConsistency hammers Search across repeated hot swaps
// (run under -race via `make race`) and asserts: (a) every response is
// answered from exactly one snapshot — the top hit is always the queried
// chunk and the epoch label never exceeds the published epoch; (b) the
// cache never exceeds its configured capacity and no entry survives under
// a dead epoch; (c) per-route caches are isolated — the trace routes stay
// warm through every chunk swap.
func TestSwapSearchRaceConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDelay = 300 * time.Microsecond
	cfg.CacheCap = 64 // small enough that eviction happens under load
	s, store, _, traces := testMultiServer(t, 64, 8, cfg)
	chunks := testChunks(64)

	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.vsf"), filepath.Join(dir, "b.vsf")}
	for _, p := range paths {
		if err := store.SaveIndex(p); err != nil {
			t.Fatal(err)
		}
	}

	// Warm one entry per trace route.
	warm := map[string]*mcq.Trace{}
	for _, tr := range traces {
		if _, ok := warm[string(tr.Mode)]; !ok {
			warm[string(tr.Mode)] = tr
			for i := 0; i < 2; i++ {
				if _, _, _, err := s.SearchRoute(context.Background(), TraceRoute(tr.Mode), tr.Reasoning, 3, ""); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	const workers = 8
	const swaps = 12
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := chunks[(w*13+i)%len(chunks)]
				res, _, epoch, err := s.Search(context.Background(), q.Text, 3)
				if err != nil || len(res) == 0 || res[0].ID != q.ID {
					bad.Add(1)
					continue
				}
				if published := s.Snapshot().Epoch; epoch > published {
					// A response can trail a concurrent swap but never lead it.
					bad.Add(1)
				}
				if n := s.chunks.cache.Len(); n > cfg.CacheCap {
					t.Errorf("cache len %d exceeds capacity %d", n, cfg.CacheCap)
					return
				}
			}
		}(w)
	}

	for i := 0; i < swaps; i++ {
		time.Sleep(2 * time.Millisecond)
		if _, err := s.SwapFromFile(paths[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Fatalf("%d inconsistent responses across %d swaps", n, swaps)
	}
	// No entry may survive under a dead epoch: every remaining key was
	// filled for the final generation.
	finalPrefix := fmt.Sprintf("%d\x1f", s.Snapshot().Epoch)
	for _, sh := range s.chunks.cache.shards {
		sh.mu.Lock()
		for key := range sh.items {
			if !strings.HasPrefix(key, finalPrefix) {
				sh.mu.Unlock()
				t.Fatalf("dead-epoch cache key %q (final epoch %d)", key, s.Snapshot().Epoch)
			}
		}
		sh.mu.Unlock()
	}
	// Trace routes rode through every chunk swap with warm caches and
	// untouched epochs.
	for mode, tr := range warm {
		res, cached, epoch, err := s.SearchRoute(context.Background(), "traces/"+mode, tr.Reasoning, 3, "")
		if err != nil || len(res) == 0 {
			t.Fatalf("trace route %s: res=%v err=%v", mode, res, err)
		}
		if !cached || epoch != 0 {
			t.Fatalf("trace route %s went cold across chunk swaps: cached=%v epoch=%d", mode, cached, epoch)
		}
	}
	if snap, _ := s.RouteSnapshot("traces/detailed"); snap.Epoch != 0 {
		t.Fatalf("chunk swaps advanced a trace epoch to %d", snap.Epoch)
	}
}
