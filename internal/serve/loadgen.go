package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
	"repro/internal/rng"
)

// LoadConfig parameterises the load harness.
type LoadConfig struct {
	// Concurrency is the number of closed-loop workers, or the in-flight
	// cap for the open loop (default 16).
	Concurrency int
	// Requests is the total number of requests to issue (default 1000).
	Requests int
	// RatePerSec > 0 switches to an open loop: requests are admitted at a
	// fixed rate regardless of completions (latency under offered load),
	// instead of the default closed loop where each worker waits for its
	// previous request (latency under concurrency).
	RatePerSec float64
	// K is the retrieval depth sent with every request.
	K int
	// Queries are the request pool; which entry a request draws is
	// governed by Dist. Repetition (from a small pool, or a skewed Dist)
	// is what exercises the server's query cache.
	Queries []string
	// Dist selects the query-index distribution over Queries: "" or
	// "uniform" cycles round-robin (every entry equally often, the
	// historical behaviour); "zipf" samples rank r with probability
	// ∝ 1/(r+1)^ZipfS — the heavy-tailed key popularity real retrieval
	// traffic shows, and the workload the cache eviction-policy sweep
	// needs. Earlier Queries entries are the hot head.
	Dist string
	// ZipfS is the zipf exponent when Dist == "zipf" (default 1.1).
	ZipfS float64
	// Seed drives the zipf sampler; the drawn sequence is deterministic
	// per (Seed, Requests, len(Queries), ZipfS).
	Seed uint64
	// Ctx, when non-nil, aborts the run: cancelling it stops further
	// requests from being issued and wakes the open loop's pacing sleep
	// immediately (via retry.Sleep), so an interrupted load run does not
	// ride out its schedule. In-flight requests still complete and the
	// report covers exactly the requests that were issued.
	Ctx context.Context
}

func (c *LoadConfig) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Dist == "" {
		c.Dist = "uniform"
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
}

// queryOrder precomputes the query index drawn by each request, so the
// concurrent issue loop stays deterministic regardless of scheduling.
func (c *LoadConfig) queryOrder() []int {
	idx := make([]int, c.Requests)
	switch c.Dist {
	case "uniform":
		for i := range idx {
			idx[i] = i % len(c.Queries)
		}
	case "zipf":
		z := rng.NewZipf(len(c.Queries), c.ZipfS)
		r := rng.New(c.Seed)
		for i := range idx {
			idx[i] = z.Sample(r)
		}
	default:
		panic(fmt.Sprintf("serve: unknown load distribution %q", c.Dist))
	}
	return idx
}

// LoadReport is the harness's latency/throughput summary. Latencies are
// client-observed (queueing + batching + search + transport).
type LoadReport struct {
	Mode        string  `json:"mode"`           // "closed" or "open"
	Dist        string  `json:"dist,omitempty"` // query-key distribution: "uniform" or "zipf"
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Failures    int64   `json:"failures"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	QPS         float64 `json:"qps"`
	MeanMS      float64 `json:"latency_mean_ms"`
	P50MS       float64 `json:"latency_p50_ms"`
	P95MS       float64 `json:"latency_p95_ms"`
	P99MS       float64 `json:"latency_p99_ms"`
	MaxMS       float64 `json:"latency_max_ms"`
}

// String renders the report as the table ragload prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	dist := ""
	if r.Dist != "" && r.Dist != "uniform" {
		dist = " dist=" + r.Dist
	}
	fmt.Fprintf(&b, "mode=%s%s concurrency=%d requests=%d failures=%d\n",
		r.Mode, dist, r.Concurrency, r.Requests, r.Failures)
	fmt.Fprintf(&b, "elapsed %.1fms   throughput %.0f qps\n", r.ElapsedMS, r.QPS)
	fmt.Fprintf(&b, "latency mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
		r.MeanMS, r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
	return b.String()
}

// MixedReport is the result of a mixed-route load run: the aggregate plus
// one report per route, all measured over the same wall-clock window (so
// per-route QPS values sum to the total).
type MixedReport struct {
	Total    *LoadReport            `json:"total"`
	PerRoute map[string]*LoadReport `json:"per_route"`
}

// RunLoad drives do — one retrieval request; typically Client.Search or an
// in-process Server.Search closure — according to cfg and reports
// client-side latency quantiles and throughput.
func RunLoad(cfg LoadConfig, do func(query string, k int) error) *LoadReport {
	return RunLoadMixed(cfg, nil, func(_, q string, k int) error { return do(q, k) }).Total
}

// RunLoadMixed drives do with requests fanned round-robin across routes
// (request i goes to routes[i%len(routes)]), the multi-store serving
// workload. A nil/empty routes slice degenerates to a single unnamed
// route and an empty PerRoute map.
func RunLoadMixed(cfg LoadConfig, routes []string, do func(route, query string, k int) error) *MixedReport {
	cfg.fill()
	if len(cfg.Queries) == 0 {
		cfg.Queries = []string{"empty query set"}
	}
	perRoute := routes
	if len(routes) == 0 {
		routes = []string{""}
	}
	qidx := cfg.queryOrder()
	lat := make([]time.Duration, cfg.Requests)
	failed := make([]bool, cfg.Requests)
	issue := func(i int) {
		q := cfg.Queries[qidx[i]]
		start := time.Now()
		err := do(routes[i%len(routes)], q, cfg.K)
		lat[i] = time.Since(start)
		failed[i] = err != nil
	}

	mode := "closed"
	issued := cfg.Requests
	start := time.Now()
	if cfg.RatePerSec > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Concurrency)
		next := time.Now()
		for i := 0; i < cfg.Requests; i++ {
			// The pacing sleep goes through retry.Sleep so cancelling
			// cfg.Ctx aborts the schedule immediately instead of riding
			// out the inter-arrival gap (the first real nosleep finding).
			if d := time.Until(next); d > 0 {
				if retry.Sleep(cfg.Ctx, d) != nil {
					issued = i
					break
				}
			} else if cfg.Ctx.Err() != nil {
				issued = i
				break
			}
			next = next.Add(interval)
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				issue(i)
			}(i)
		}
		wg.Wait()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if cfg.Ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= cfg.Requests {
						return
					}
					issue(i)
				}
			}()
		}
		wg.Wait()
		// Workers claim indexes in order and bail before claiming once
		// the ctx is cancelled, so everything below the counter ran.
		if n := int(next.Load()); n < issued {
			issued = n
		}
	}
	elapsed := time.Since(start)

	lat, failed = lat[:issued], failed[:issued]
	all := make([]int, issued)
	for i := range all {
		all[i] = i
	}
	rep := &MixedReport{
		Total:    summarize(mode, cfg.Dist, cfg.Concurrency, all, lat, failed, elapsed),
		PerRoute: make(map[string]*LoadReport, len(perRoute)),
	}
	for ri, route := range perRoute {
		var idx []int
		for i := ri; i < issued; i += len(routes) {
			idx = append(idx, i)
		}
		rep.PerRoute[route] = summarize(mode, cfg.Dist, cfg.Concurrency, idx, lat, failed, elapsed)
	}
	return rep
}

// summarize reduces the latency samples at idx — everything for the total
// report, one route's stripe for a per-route one — against the run's
// shared elapsed window.
func summarize(mode, dist string, concurrency int, idx []int, lat []time.Duration, failed []bool, elapsed time.Duration) *LoadReport {
	sorted := make([]time.Duration, len(idx))
	var failures int64
	var sum time.Duration
	for i, j := range idx {
		sorted[i] = lat[j]
		sum += lat[j]
		if failed[j] {
			failures++
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		return ms(sorted[int(p*float64(len(sorted)-1))])
	}
	rep := &LoadReport{
		Mode:        mode,
		Dist:        dist,
		Concurrency: concurrency,
		Requests:    int64(len(idx)),
		Failures:    failures,
		ElapsedMS:   ms(elapsed),
		MeanMS:      ms(sum / time.Duration(max(1, len(sorted)))),
		P50MS:       q(0.50),
		P95MS:       q(0.95),
		P99MS:       q(0.99),
	}
	if len(sorted) > 0 {
		rep.MaxMS = ms(sorted[len(sorted)-1])
	}
	if elapsed > 0 {
		rep.QPS = float64(len(idx)) / elapsed.Seconds()
	}
	return rep
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
