package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterises the load harness.
type LoadConfig struct {
	// Concurrency is the number of closed-loop workers, or the in-flight
	// cap for the open loop (default 16).
	Concurrency int
	// Requests is the total number of requests to issue (default 1000).
	Requests int
	// RatePerSec > 0 switches to an open loop: requests are admitted at a
	// fixed rate regardless of completions (latency under offered load),
	// instead of the default closed loop where each worker waits for its
	// previous request (latency under concurrency).
	RatePerSec float64
	// K is the retrieval depth sent with every request.
	K int
	// Queries are cycled through in request order; repetition in this
	// slice is what exercises the server's query cache.
	Queries []string
}

func (c *LoadConfig) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.K <= 0 {
		c.K = 5
	}
}

// LoadReport is the harness's latency/throughput summary. Latencies are
// client-observed (queueing + batching + search + transport).
type LoadReport struct {
	Mode        string  `json:"mode"` // "closed" or "open"
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Failures    int64   `json:"failures"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	QPS         float64 `json:"qps"`
	MeanMS      float64 `json:"latency_mean_ms"`
	P50MS       float64 `json:"latency_p50_ms"`
	P95MS       float64 `json:"latency_p95_ms"`
	P99MS       float64 `json:"latency_p99_ms"`
	MaxMS       float64 `json:"latency_max_ms"`
}

// String renders the report as the table ragload prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s concurrency=%d requests=%d failures=%d\n",
		r.Mode, r.Concurrency, r.Requests, r.Failures)
	fmt.Fprintf(&b, "elapsed %.1fms   throughput %.0f qps\n", r.ElapsedMS, r.QPS)
	fmt.Fprintf(&b, "latency mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
		r.MeanMS, r.P50MS, r.P95MS, r.P99MS, r.MaxMS)
	return b.String()
}

// RunLoad drives do — one retrieval request; typically Client.Search or an
// in-process Server.Search closure — according to cfg and reports
// client-side latency quantiles and throughput.
func RunLoad(cfg LoadConfig, do func(query string, k int) error) *LoadReport {
	cfg.fill()
	if len(cfg.Queries) == 0 {
		cfg.Queries = []string{"empty query set"}
	}
	lat := make([]time.Duration, cfg.Requests)
	var failures atomic.Int64
	issue := func(i int) {
		q := cfg.Queries[i%len(cfg.Queries)]
		start := time.Now()
		err := do(q, cfg.K)
		lat[i] = time.Since(start)
		if err != nil {
			failures.Add(1)
		}
	}

	mode := "closed"
	start := time.Now()
	if cfg.RatePerSec > 0 {
		mode = "open"
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Concurrency)
		next := time.Now()
		for i := 0; i < cfg.Requests; i++ {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer func() { <-sem; wg.Done() }()
				issue(i)
			}(i)
		}
		wg.Wait()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.Requests {
						return
					}
					issue(i)
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	q := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		return ms(sorted[int(p*float64(len(sorted)-1))])
	}
	rep := &LoadReport{
		Mode:        mode,
		Concurrency: cfg.Concurrency,
		Requests:    int64(cfg.Requests),
		Failures:    failures.Load(),
		ElapsedMS:   ms(elapsed),
		MeanMS:      ms(sum / time.Duration(max(1, len(sorted)))),
		P50MS:       q(0.50),
		P95MS:       q(0.95),
		P99MS:       q(0.99),
		MaxMS:       ms(sorted[len(sorted)-1]),
	}
	if elapsed > 0 {
		rep.QPS = float64(cfg.Requests) / elapsed.Seconds()
	}
	return rep
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
