package serve

import "fmt"

// BenchReport is the BENCH_serve.json schema emitted by `make bench-serve`
// (cmd/ragload -inprocess). The single-store phases (sequential,
// concurrent, cached, swap_phase) run against the chunks route only, so
// their numbers stay comparable across PRs; the mixed phase fans the same
// closed loop across every mounted route and fills Routes with per-route
// QPS, latency and cache hit rate. Check is the shared validator: ragload
// refuses to emit a malformed report, and the root bench-schema test
// fails `make verify` on one that was emitted anyway.
type BenchReport struct {
	Bench        string                 `json:"bench"`
	Scale        float64                `json:"scale"`
	Chunks       int                    `json:"chunks"`
	Sequential   *LoadReport            `json:"sequential"`
	Concurrent   *LoadReport            `json:"concurrent"`
	Cached       *LoadReport            `json:"cached"`
	SwapPhase    *LoadReport            `json:"swap_phase,omitempty"`
	Speedup      float64                `json:"speedup_qps"`
	MeanBatch    float64                `json:"mean_batch"`
	CacheHitRate float64                `json:"cache_hit_rate"`
	Swaps        int                    `json:"swaps"`
	SwapFailures int64                  `json:"swap_failures"`
	P50MS        float64                `json:"latency_p50_ms"`
	P95MS        float64                `json:"latency_p95_ms"`
	P99MS        float64                `json:"latency_p99_ms"`
	Mixed        *LoadReport            `json:"mixed"`
	Routes       map[string]*RouteBench `json:"routes"`
	// Zipf is the heavy-tailed-distribution phase: the hot-set closed
	// loop re-run with zipf(ZipfS)-distributed query keys (see
	// LoadConfig.Dist), the workload for the cache eviction-policy sweep.
	Zipf        *LoadReport `json:"zipf,omitempty"`
	ZipfS       float64     `json:"zipf_s,omitempty"`
	ZipfHitRate float64     `json:"zipf_hit_rate,omitempty"`
	// Router is the distributed-serving phase: the same corpus partitioned
	// across an in-process shard fleet behind the scatter/gather router,
	// including a fault-injected sub-phase with one shard killed cold.
	Router *RouterBench `json:"router,omitempty"`
	// Ingest is the live-ingestion phase: a mixed read/write closed loop
	// against a live-mounted route, with background compactions mid-run
	// and a post-quiesce visibility audit of every acked insert.
	Ingest *IngestBench `json:"ingest"`
	// HNSW is the graph-index phase: the chunks corpus flattened into an
	// HNSW graph (build timed), served on its own route, with throughput
	// and recall@10 against the exact Flat answers on the same corpus.
	HNSW *HNSWBench `json:"hnsw"`
	// Stages is the per-stage latency breakdown of the chunks route,
	// measured from the span timelines of timing-enabled requests (the
	// stages phase) — where a search's time goes, not just how long it
	// takes. Keys are exactly StageNames.
	Stages map[string]*StageLat `json:"stages"`
}

// StageNames are the serve-tier stages the stages phase samples and the
// only keys Check admits in Stages: queue is coalescer wait, cache the
// lookup, embed query encoding, scan the index kernel, merge the heap
// merge plus collect.
var StageNames = []string{"queue", "cache", "embed", "scan", "merge"}

// StageLat is one stage's latency summary over the sampled spans.
type StageLat struct {
	Samples int64   `json:"samples"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// IngestBench is the live-ingestion phase's record: a closed loop in
// which a fraction of workers insert fresh chunks via /v1/<route>/add
// while the rest search, compactions triggered by memtable fill run in
// the background, and after the loop quiesces every acked insert is
// audited for visibility (its text searched at k=1 — the deterministic
// encoder scores an exact-text match at ~1, so a lost row is a miss).
type IngestBench struct {
	Load *LoadReport `json:"load"`
	// Inserts counts chunks acked by the add endpoint; Lost counts acked
	// inserts not retrievable in the audit. The contract is Lost == 0.
	Inserts int64 `json:"inserts"`
	Lost    int64 `json:"lost"`
	// Compactions is how many memtable drains published during the phase;
	// MemRows is the memtable size left after the final forced drain.
	Compactions int64 `json:"compactions"`
	MemRows     int   `json:"mem_rows"`
	// InsertP99MS is the p99 latency of add requests alone.
	InsertP99MS float64 `json:"insert_p99_ms"`
}

// HNSWBench is the graph-index phase's record: the serving trade-off of
// the modernised HNSW against the exact Flat scan on the same corpus —
// what the graph costs to build, what it serves at, and what recall it
// gives up. RecallAt10 is measured index-side (RecallAgainst vs the Flat
// the graph was built from); its floor here is deliberately loose — the
// strict efSearch-sweep recall gate lives in the vecstore tests, this
// one only catches a graph that came out broken.
type HNSWBench struct {
	Load *LoadReport `json:"load"`
	// BuildMS is the wall time of flattening the chunk corpus into the
	// graph (Flat.ToHNSW), the price paid before the route can serve.
	BuildMS float64 `json:"build_ms"`
	// QPS is the closed-loop throughput of the hnsw route, the number to
	// hold against the chunks (Flat) route's concurrent phase.
	QPS float64 `json:"qps"`
	// RecallAt10 is recall@10 against exact search over the same corpus,
	// at the EfSearch beam width the route served with.
	RecallAt10 float64 `json:"recall_at_10"`
	EfSearch   int     `json:"ef_search"`
}

// RouterBench is the router phase's record. It lives here with plain
// fields — not router types — because serve cannot import internal/router
// (the router is built on serve), yet the phase must ride in the same
// BENCH_serve.json schema the root test gates.
type RouterBench struct {
	Shards     int         `json:"shards"`
	Sequential *LoadReport `json:"sequential"`
	Concurrent *LoadReport `json:"concurrent"`
	// Degraded is the one-shard-killed sub-phase: a closed loop during
	// which one shard drops cold and stays down. Its Failures must be
	// zero — an outage degrades responses, it never 5xxes them.
	Degraded *LoadReport `json:"degraded"`
	// QPS / DegradedQPS are the concurrent fan-out throughput with the
	// fleet healthy and with a shard down, the router's headline numbers.
	QPS         float64 `json:"qps"`
	DegradedQPS float64 `json:"degraded_qps"`
	// DegradedResponses counts replies that carried degraded:true during
	// the fault sub-phase (exact top-k over the surviving shards).
	DegradedResponses int64 `json:"degraded_responses"`
	// BreakerTrips sums circuit-breaker trips across shards over the run.
	BreakerTrips int64 `json:"breaker_trips"`
	// Recovered reports that after the killed shard was revived, the
	// health prober's half-open probe closed its breaker and full-recall
	// (non-degraded) responses resumed before the run ended.
	Recovered bool `json:"recovered"`
}

// RouteBench is one route's record from the mixed-route phase.
type RouteBench struct {
	Load         *LoadReport `json:"load"`
	CacheHitRate float64     `json:"cache_hit_rate"`
	Epoch        uint64      `json:"epoch"`
	Swaps        int64       `json:"swaps"`
}

// Check validates the report's shape and internal consistency. It returns
// the first problem found, or nil for a well-formed report.
func (r *BenchReport) Check() error {
	if r.Bench != "serve" {
		return fmt.Errorf("bench %q, want \"serve\"", r.Bench)
	}
	if r.Scale <= 0 || r.Chunks <= 0 {
		return fmt.Errorf("scale=%v chunks=%d, want both positive", r.Scale, r.Chunks)
	}
	for _, p := range []struct {
		name string
		rep  *LoadReport
	}{{"sequential", r.Sequential}, {"concurrent", r.Concurrent}, {"cached", r.Cached}, {"mixed", r.Mixed}} {
		if err := checkLoad(p.name, p.rep); err != nil {
			return err
		}
	}
	if r.SwapPhase != nil {
		if err := checkLoad("swap_phase", r.SwapPhase); err != nil {
			return err
		}
	}
	if r.Zipf != nil {
		if err := checkLoad("zipf", r.Zipf); err != nil {
			return err
		}
		if r.Zipf.Dist != "zipf" {
			return fmt.Errorf("zipf: dist %q, want \"zipf\"", r.Zipf.Dist)
		}
		if r.ZipfS <= 0 {
			return fmt.Errorf("zipf_s %v, want positive for a zipf phase", r.ZipfS)
		}
		if r.ZipfHitRate < 0 || r.ZipfHitRate > 1 {
			return fmt.Errorf("zipf_hit_rate %v outside [0,1]", r.ZipfHitRate)
		}
	}
	if r.Speedup <= 0 || r.MeanBatch <= 0 {
		return fmt.Errorf("speedup_qps=%v mean_batch=%v, want both positive", r.Speedup, r.MeanBatch)
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("cache_hit_rate %v outside [0,1]", r.CacheHitRate)
	}
	if len(r.Routes) == 0 {
		return fmt.Errorf("no per-route records")
	}
	if _, ok := r.Routes[RouteChunks]; !ok {
		return fmt.Errorf("per-route records missing the %q route", RouteChunks)
	}
	var routed int64
	for name, rb := range r.Routes {
		if rb == nil {
			return fmt.Errorf("route %q: nil record", name)
		}
		if err := checkLoad("routes."+name, rb.Load); err != nil {
			return err
		}
		if rb.CacheHitRate < 0 || rb.CacheHitRate > 1 {
			return fmt.Errorf("route %q: cache_hit_rate %v outside [0,1]", name, rb.CacheHitRate)
		}
		routed += rb.Load.Requests
	}
	if routed != r.Mixed.Requests {
		return fmt.Errorf("per-route requests sum to %d, mixed phase issued %d", routed, r.Mixed.Requests)
	}
	if r.Router != nil {
		if err := r.Router.check(); err != nil {
			return fmt.Errorf("router: %w", err)
		}
	}
	if r.Ingest == nil {
		return fmt.Errorf("missing ingest phase")
	}
	if err := r.Ingest.check(); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if r.HNSW == nil {
		return fmt.Errorf("missing hnsw phase")
	}
	if err := r.HNSW.check(); err != nil {
		return fmt.Errorf("hnsw: %w", err)
	}
	if err := checkStages(r.Stages); err != nil {
		return fmt.Errorf("stages: %w", err)
	}
	return nil
}

// checkStages validates the per-stage breakdown: every known stage
// present, no unknown keys (json.Decoder's DisallowUnknownFields does not
// reach into map keys, so the schema gate lives here), sane quantiles, and
// real scan samples — a report whose scan stage never fired measured
// nothing.
func checkStages(stages map[string]*StageLat) error {
	if len(stages) == 0 {
		return fmt.Errorf("missing per-stage breakdown")
	}
	known := make(map[string]bool, len(StageNames))
	for _, name := range StageNames {
		known[name] = true
	}
	for name := range stages {
		if !known[name] {
			return fmt.Errorf("unknown stage %q", name)
		}
	}
	for _, name := range StageNames {
		sl := stages[name]
		if sl == nil {
			return fmt.Errorf("missing stage %q", name)
		}
		if sl.Samples < 0 {
			return fmt.Errorf("stage %q: samples=%d negative", name, sl.Samples)
		}
		if sl.P50MS < 0 || sl.P99MS < 0 || sl.P50MS > sl.P99MS {
			return fmt.Errorf("stage %q: non-monotone quantiles p50=%v p99=%v", name, sl.P50MS, sl.P99MS)
		}
	}
	if stages["scan"].Samples <= 0 {
		return fmt.Errorf("scan stage has no samples: the breakdown measured nothing")
	}
	return nil
}

// check validates the graph-index phase: shape, a real (positive) build
// time and throughput, a plausible beam width, and a recall floor loose
// enough to tolerate corpus-shape variance but tight enough to catch a
// graph whose links came out wrong.
func (hb *HNSWBench) check() error {
	if err := checkLoad("load", hb.Load); err != nil {
		return err
	}
	if hb.Load.Failures != 0 {
		return fmt.Errorf("closed loop had %d failures", hb.Load.Failures)
	}
	if hb.BuildMS <= 0 {
		return fmt.Errorf("build_ms=%v, want positive: the graph build was never timed", hb.BuildMS)
	}
	if hb.QPS <= 0 {
		return fmt.Errorf("qps=%v, want positive", hb.QPS)
	}
	if hb.EfSearch < 1 {
		return fmt.Errorf("ef_search=%d, want at least 1", hb.EfSearch)
	}
	if hb.RecallAt10 < 0.5 || hb.RecallAt10 > 1 {
		return fmt.Errorf("recall_at_10=%v outside [0.5,1]: the graph lost the corpus", hb.RecallAt10)
	}
	return nil
}

// check validates the ingest phase: shape, the zero-failure mixed loop,
// and the no-lost-acked-inserts contract.
func (ib *IngestBench) check() error {
	if err := checkLoad("load", ib.Load); err != nil {
		return err
	}
	if ib.Load.Failures != 0 {
		return fmt.Errorf("mixed read/write loop had %d failures", ib.Load.Failures)
	}
	if ib.Inserts <= 0 {
		return fmt.Errorf("inserts=%d: the phase inserted nothing", ib.Inserts)
	}
	if ib.Lost != 0 {
		return fmt.Errorf("lost=%d acked inserts not retrievable after quiesce", ib.Lost)
	}
	if ib.Compactions < 1 {
		return fmt.Errorf("compactions=%d: no memtable drain published during the phase", ib.Compactions)
	}
	if ib.MemRows != 0 {
		return fmt.Errorf("mem_rows=%d left after the final drain", ib.MemRows)
	}
	if ib.InsertP99MS < 0 {
		return fmt.Errorf("insert_p99_ms=%v negative", ib.InsertP99MS)
	}
	return nil
}

// check validates the router phase: shape, the zero-5xx degradation
// contract, and the breaker trip/recovery evidence.
func (rb *RouterBench) check() error {
	if rb.Shards < 2 {
		return fmt.Errorf("shards=%d, want a fleet of at least 2", rb.Shards)
	}
	for _, p := range []struct {
		name string
		rep  *LoadReport
	}{{"sequential", rb.Sequential}, {"concurrent", rb.Concurrent}, {"degraded", rb.Degraded}} {
		if err := checkLoad(p.name, p.rep); err != nil {
			return err
		}
	}
	if rb.QPS <= 0 || rb.DegradedQPS <= 0 {
		return fmt.Errorf("qps=%v degraded_qps=%v, want both positive", rb.QPS, rb.DegradedQPS)
	}
	if rb.Degraded.Failures != 0 {
		return fmt.Errorf("degraded sub-phase had %d failures: a shard outage must degrade responses, never error them", rb.Degraded.Failures)
	}
	if rb.DegradedResponses <= 0 {
		return fmt.Errorf("degraded_responses=%d: the fault sub-phase produced no degraded replies", rb.DegradedResponses)
	}
	if rb.BreakerTrips < 1 {
		return fmt.Errorf("breaker_trips=%d: the killed shard never tripped its breaker", rb.BreakerTrips)
	}
	if !rb.Recovered {
		return fmt.Errorf("recovered=false: the revived shard never re-entered service via the half-open probe")
	}
	return nil
}

func checkLoad(name string, rep *LoadReport) error {
	if rep == nil {
		return fmt.Errorf("%s: missing load report", name)
	}
	if rep.Mode != "closed" && rep.Mode != "open" {
		return fmt.Errorf("%s: mode %q", name, rep.Mode)
	}
	if rep.Requests <= 0 || rep.QPS <= 0 {
		return fmt.Errorf("%s: requests=%d qps=%v, want both positive", name, rep.Requests, rep.QPS)
	}
	if rep.Failures < 0 || rep.Failures > rep.Requests {
		return fmt.Errorf("%s: %d failures for %d requests", name, rep.Failures, rep.Requests)
	}
	if rep.P50MS > rep.P95MS || rep.P95MS > rep.P99MS || rep.P99MS > rep.MaxMS {
		return fmt.Errorf("%s: non-monotone latency quantiles p50=%v p95=%v p99=%v max=%v",
			name, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	}
	return nil
}
