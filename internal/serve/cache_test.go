package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rag"
)

func val(id string) CachedResult {
	return CachedResult{Results: []rag.Hit{{ID: id, Score: 1}}, Epoch: 1}
}

func TestCacheGetPut(t *testing.T) {
	c := NewCache(16, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", val("x"))
	got, ok := c.Get("a")
	if !ok || got.Results[0].ID != "x" {
		t.Fatalf("got %v ok=%v", got, ok)
	}
	c.Put("a", val("y")) // overwrite
	if got, _ := c.Get("a"); got.Results[0].ID != "y" {
		t.Fatal("overwrite lost")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4, 1) // single shard → strict global LRU
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprint(i), val(fmt.Sprint(i)))
	}
	c.Get("0") // refresh 0 → 1 is now the LRU entry
	c.Put("4", val("4"))
	if _, ok := c.Get("1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []string{"0", "2", "3", "4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s evicted prematurely", k)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(32, 8)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprint(i), val("v"))
	}
	if c.Len() == 0 {
		t.Fatal("nothing cached")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len %d after purge", c.Len())
	}
	if _, ok := c.Get("3"); ok {
		t.Fatal("entry survived purge")
	}
}

func TestCacheCapacityIsExact(t *testing.T) {
	// The per-shard caps must sum to exactly the requested capacity:
	// rounding every shard up used to admit up to shards-1 extra entries
	// (NewCache(10, 8) held 16).
	for _, tc := range []struct{ capacity, shards int }{
		{10, 8}, {16, 4}, {7, 3}, {1, 8}, {4096, 8}, {13, 13},
	} {
		c := NewCache(tc.capacity, tc.shards)
		total := 0
		for _, s := range c.shards {
			if s.cap < 1 {
				t.Fatalf("NewCache(%d,%d): shard cap %d < 1", tc.capacity, tc.shards, s.cap)
			}
			total += s.cap
		}
		if total != tc.capacity {
			t.Fatalf("NewCache(%d,%d): shard caps sum to %d", tc.capacity, tc.shards, total)
		}
		// Overfill every shard; the cache must never exceed capacity.
		for i := 0; i < 16*tc.capacity; i++ {
			c.Put(fmt.Sprintf("key-%d", i), val("v"))
		}
		if n := c.Len(); n > tc.capacity {
			t.Fatalf("NewCache(%d,%d): holds %d entries after overfill", tc.capacity, tc.shards, n)
		}
	}
}

func TestCacheDelete(t *testing.T) {
	c := NewCache(8, 2)
	c.Put("a", val("a"))
	c.Put("b", val("b"))
	c.Delete("a")
	c.Delete("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted entry still present")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("unrelated entry deleted")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheShardCapacityClamp(t *testing.T) {
	// More shards than capacity must still yield ≥1 entry per shard.
	c := NewCache(2, 8)
	c.Put("a", val("a"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("tiny cache dropped its only entry")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint(i % 50)
				c.Put(k, val(k))
				if got, ok := c.Get(k); ok && got.Results[0].ID != k {
					t.Errorf("key %s returned %s", k, got.Results[0].ID)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	var calls atomic.Int32
	fn := func() (CachedResult, error) {
		calls.Add(1)
		<-release
		return val("shared"), nil
	}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := g.do(context.Background(), "k", fn)
		if shared || err != nil || v.Results[0].ID != "shared" {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
	}()
	// Wait until the leader's flight is registered, so every joiner below
	// is guaranteed to find it.
	for {
		g.mu.Lock()
		registered := g.m != nil && g.m["k"] != nil
		g.mu.Unlock()
		if registered {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	const joiners = 8
	var wg, ready sync.WaitGroup
	sharedCount := make(chan bool, joiners)
	ready.Add(joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			v, shared, err := g.do(context.Background(), "k", fn)
			if err != nil || v.Results[0].ID != "shared" {
				t.Errorf("joiner: %v %v", v, err)
			}
			sharedCount <- shared
		}()
	}
	// All joiners are at (or a few instructions from) their do() call, and
	// the leader cannot complete before release: give them a beat to join
	// its flight, then release it.
	ready.Wait()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	close(sharedCount)
	n := 0
	for s := range sharedCount {
		if s {
			n++
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("function ran %d times", calls.Load())
	}
	if n != joiners {
		t.Fatalf("%d of %d joiners shared", n, joiners)
	}

	// After completion the key is released: the next call runs fresh.
	_, shared, _ := g.do(context.Background(), "k", func() (CachedResult, error) {
		return val("fresh"), nil
	})
	if shared {
		t.Fatal("post-completion call joined a dead flight")
	}
}

func TestFlightGroupJoinerContext(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	go g.do(context.Background(), "k", func() (CachedResult, error) {
		close(started)
		<-release
		return val("v"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.do(ctx, "k", func() (CachedResult, error) { return CachedResult{}, nil })
	if err != context.Canceled {
		t.Fatalf("err %v", err)
	}
	close(release)
}
