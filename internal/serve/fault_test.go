package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rag"
)

// TestHealthzDegradedOnEmptyRoute: a mounted route with zero vectors must
// flip /healthz to "degraded" so an upstream prober can tell an empty
// shard from a healthy one.
func TestHealthzDegradedOnEmptyRoute(t *testing.T) {
	store := rag.BuildChunkStore(nil, nil, 0) // zero chunks: alive but empty
	s := New(store, DefaultConfig())
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	hz, err := NewClient("http://"+s.Addr(), nil).Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" {
		t.Fatalf("status %q for an empty route, want degraded", hz.Status)
	}
	if hz.Routes[RouteChunks].Vectors != 0 {
		t.Fatalf("routes %+v", hz.Routes)
	}
}

func TestFaultGateModes(t *testing.T) {
	chunks := testChunks(16)
	store := rag.BuildChunkStore(nil, chunks, 0)
	s := New(store, DefaultConfig())
	gate, err := s.StartFaulty("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := NewClient("http://"+s.Addr(), nil)

	// Pass-through serves normally.
	if _, err := c.Search(chunks[0].Text, 3); err != nil {
		t.Fatalf("pass-through: %v", err)
	}

	// FaultError: every request becomes a typed 503.
	gate.Set(FaultError)
	_, err = c.Search(chunks[0].Text, 3)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 503 {
		t.Fatalf("error mode: err=%v, want StatusError 503", err)
	}

	// FaultStall: a short caller deadline trips before the stall ends.
	gate.SetStall(600 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.SearchRouteCtx(ctx, RouteChunks, chunks[0].Text, 3, ""); err == nil {
		t.Fatal("stalled request under a 50ms deadline returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline did not propagate: request took %v", elapsed)
	}

	// FaultDown: the connection dies without a status.
	gate.Set(FaultDown)
	if _, err := c.Search(chunks[0].Text, 3); err == nil {
		t.Fatal("downed backend returned nil error")
	} else if errors.As(err, &se) {
		t.Fatalf("downed backend produced an HTTP status (%d), want a transport error", se.Status)
	}

	// Clear revives the backend — the shape a breaker's half-open probe
	// relies on.
	gate.Clear()
	if _, err := c.Search(chunks[0].Text, 3); err != nil {
		t.Fatalf("cleared gate: %v", err)
	}
}

// TestClientCtxPropagation: the ctx handed to the client must cancel the
// in-flight request, not just the local wait.
func TestClientCtxPropagation(t *testing.T) {
	s, _, chunks := testServer(t, 16, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SearchRouteBatchCtx(ctx, RouteChunks, []string{chunks[0].Text}, 3, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// An uncancelled ctx serves normally through the same path.
	resp, err := c.SearchRouteBatchCtx(context.Background(), RouteChunks, []string{chunks[0].Text}, 3, nil)
	if err != nil || len(resp.Results) != 1 || resp.Results[0][0].ID != chunks[0].ID {
		t.Fatalf("err=%v resp=%+v", err, resp)
	}
}
