package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/rag"
	"repro/internal/vecstore"
)

// testChunks builds n synthetic chunks with distinct, retrievable texts
// (the hash-based embedder only needs token overlap, not semantics).
func testChunks(n int) []chunk.Chunk {
	topics := []string{"galaxy rotation curves", "stellar nucleosynthesis yields",
		"exoplanet transit photometry", "cosmic microwave background anisotropy",
		"interstellar dust extinction", "supernova light curve decay"}
	out := make([]chunk.Chunk, n)
	for i := range out {
		out[i] = chunk.Chunk{
			ID:    fmt.Sprintf("c%04d", i),
			DocID: fmt.Sprintf("d%03d", i/8),
			Index: i % 8,
			Text: fmt.Sprintf("%s measurement series %d with calibration run %d and residual %d",
				topics[i%len(topics)], i, i*7%13, i*3%11),
			Tokens: 12,
		}
	}
	return out
}

func testServer(t testing.TB, n int, cfg Config) (*Server, *rag.ChunkStore, []chunk.Chunk) {
	t.Helper()
	chunks := testChunks(n)
	store := rag.BuildChunkStore(nil, chunks, 0)
	s := New(store, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, store, chunks
}

func TestSearchEndToEnd(t *testing.T) {
	s, _, chunks := testServer(t, 64, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	hz, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Vectors != 64 || hz.Epoch != 0 {
		t.Fatalf("healthz %+v", hz)
	}
	if rh, ok := hz.Routes[RouteChunks]; !ok || rh.Vectors != 64 || rh.Epoch != 0 {
		t.Fatalf("healthz routes %+v", hz.Routes)
	}

	// Querying a chunk's own text must return that chunk first, on both
	// the legacy alias and the named route.
	resp, err := c.Search(chunks[17].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Results[0].ID != chunks[17].ID {
		t.Fatalf("results %+v", resp.Results)
	}
	if resp.Results[0].Text != chunks[17].Text {
		t.Fatal("chunk text not carried on the wire")
	}
	if resp.Results[0].Group != chunks[17].DocID {
		t.Fatal("doc id not carried on the wire")
	}
	named, err := c.SearchRoute(RouteChunks, chunks[17].Text, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if named.Route != RouteChunks || named.Results[0].ID != chunks[17].ID {
		t.Fatalf("named route response %+v", named)
	}

	// Batch endpoint answers in query order.
	bresp, err := c.SearchBatch([]string{chunks[3].Text, chunks[40].Text}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 2 ||
		bresp.Results[0][0].ID != chunks[3].ID ||
		bresp.Results[1][0].ID != chunks[40].ID {
		t.Fatalf("batch results %+v", bresp.Results)
	}

	mtext, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter serve.chunks.requests", "histogram serve.chunks.batch.size", "gauge serve.chunks.index.vectors 64"} {
		if !strings.Contains(mtext, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, mtext)
		}
	}
}

func TestCoalescingUnderConcurrentClients(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheCap = 0 // every request must reach the kernel
	cfg.MaxDelay = 3 * time.Millisecond
	s, _, chunks := testServer(t, 128, cfg)
	c := NewClient("http://"+s.Addr(), nil)

	const clients = 48
	queries := make([]string, clients*8)
	for i := range queries {
		queries[i] = chunks[i%len(chunks)].Text + fmt.Sprintf(" variant %d", i)
	}
	rep := RunLoad(LoadConfig{Concurrency: clients, Requests: len(queries), Queries: queries, K: 4},
		func(q string, k int) error {
			_, err := c.Search(q, k)
			return err
		})
	if rep.Failures != 0 {
		t.Fatalf("%d failed requests", rep.Failures)
	}
	snap := s.Registry().Snapshot()
	batches, queued := snap.Counter("serve.chunks.batches"), snap.Counter("serve.chunks.batch.queries")
	if queued != int64(len(queries)) {
		t.Fatalf("batched queries %d, want %d", queued, len(queries))
	}
	mean := float64(queued) / float64(batches)
	if mean <= 1 {
		t.Fatalf("no coalescing under %d concurrent clients: %d batches for %d queries (mean %.2f)",
			clients, batches, queued, mean)
	}
	if snap.Histogram("serve.chunks.batch.size").Total != batches {
		t.Fatal("batch-size histogram out of sync with batch counter")
	}
	t.Logf("mean batch %.2f over %d batches, qps %.0f", mean, batches, rep.QPS)
}

func TestCacheHitMissAccounting(t *testing.T) {
	s, _, chunks := testServer(t, 32, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	first, err := c.Search(chunks[5].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first lookup reported cached")
	}
	second, err := c.Search(chunks[5].Text, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat lookup not served from cache")
	}
	if len(first.Results) != len(second.Results) || first.Results[0].ID != second.Results[0].ID {
		t.Fatal("cached result differs from computed one")
	}
	// Different k is a different cache entry.
	if _, err := c.Search(chunks[5].Text, 5); err != nil {
		t.Fatal(err)
	}
	snap := s.Registry().Snapshot()
	if h, m := snap.Counter("serve.chunks.cache.hits"), snap.Counter("serve.chunks.cache.misses"); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestHotSwapUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDelay = 500 * time.Microsecond
	s, store, chunks := testServer(t, 96, cfg)

	// Two on-disk generations of the same corpus: the initial flat index
	// and a second copy (what a rebuilt/retrained index deploy looks like).
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.vsf")
	pathB := filepath.Join(dir, "b.vsf")
	if err := store.SaveIndex(pathA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveIndex(pathB); err != nil {
		t.Fatal(err)
	}

	c := NewClient("http://"+s.Addr(), nil)
	stop := make(chan struct{})
	var failures, requests, torn atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := chunks[(w*31+i)%len(chunks)]
				resp, err := c.Search(q.Text, 3)
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				// Consistency across swaps: both generations hold the same
				// corpus, so the top hit is always the queried chunk.
				if len(resp.Results) == 0 || resp.Results[0].ID != q.ID {
					torn.Add(1)
				}
			}
		}(w)
	}

	const swaps = 6
	paths := [2]string{pathA, pathB}
	for i := 0; i < swaps; i++ {
		time.Sleep(5 * time.Millisecond)
		snap, err := s.SwapFromFile(paths[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch != uint64(i+1) {
			t.Fatalf("epoch %d after swap %d", snap.Epoch, i+1)
		}
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests across %d during hot swaps", n, requests.Load())
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d inconsistent results across %d during hot swaps", n, requests.Load())
	}
	reg := s.Registry().Snapshot()
	if reg.Counter("serve.chunks.swaps") != swaps || reg.Gauge("serve.chunks.index.epoch") != swaps {
		t.Fatalf("swap accounting: swaps=%d epoch=%d",
			reg.Counter("serve.chunks.swaps"), reg.Gauge("serve.chunks.index.epoch"))
	}
	t.Logf("%d requests, %d swaps, zero failures", requests.Load(), swaps)
}

func TestSwapRejectsBadInput(t *testing.T) {
	s, _, chunks := testServer(t, 16, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)
	if _, err := c.Swap(filepath.Join(t.TempDir(), "missing.vsf")); err == nil {
		t.Fatal("swap from a missing file succeeded")
	}
	if _, err := s.SwapIndex(vecstore.NewFlat(7), "bad-dim"); err == nil {
		t.Fatal("swap to a mismatched index succeeded")
	}
	// Same dimension, different corpus: keys don't resolve in the store's
	// metadata, which would silently serve empty results.
	foreign := vecstore.NewFlat(s.Snapshot().Store.Index().Dim())
	foreign.Add(make([]float32, foreign.Dim()), "alien-0001")
	if _, err := s.SwapIndex(foreign, "foreign"); err == nil {
		t.Fatal("foreign-corpus index accepted")
	}
	if got := s.Snapshot().Epoch; got != 0 {
		t.Fatalf("failed swaps advanced the epoch to %d", got)
	}
	// Still serving.
	if _, err := c.Search(chunks[0].Text, 1); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	// A wide admission window parks the request inside the coalescer, so
	// shutdown provably overlaps an in-flight request.
	cfg.MaxDelay = 50 * time.Millisecond
	cfg.MaxBatch = 64
	s, _, chunks := testServer(t, 16, cfg)
	c := NewClient("http://"+s.Addr(), nil)

	done := make(chan error, 1)
	go func() {
		resp, err := c.Search(chunks[1].Text, 2)
		if err == nil && len(resp.Results) == 0 {
			err = fmt.Errorf("empty results")
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // request is now waiting for batchmates
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request dropped across shutdown: %v", err)
	}
}

func TestSearchDirectAPI(t *testing.T) {
	// The in-process path (no HTTP) that bench-serve's baseline uses.
	chunks := testChunks(32)
	store := rag.BuildChunkStore(nil, chunks, 0)
	s := New(store, DefaultConfig())
	defer s.Close()
	res, cached, epoch, err := s.Search(context.Background(), chunks[9].Text, 2)
	if err != nil || cached || epoch != 0 || len(res) != 2 || res[0].ID != chunks[9].ID {
		t.Fatalf("res=%v cached=%v epoch=%d err=%v", res, cached, epoch, err)
	}
	res2, cached2, epoch2, err := s.Search(context.Background(), chunks[9].Text, 2)
	if err != nil || !cached2 || epoch2 != 0 || res2[0].ID != chunks[9].ID {
		t.Fatalf("repeat: cached=%v epoch=%d err=%v", cached2, epoch2, err)
	}
}

func TestCancelledLeaderDoesNotPoisonJoiners(t *testing.T) {
	cfg := DefaultConfig()
	// A wide admission window keeps the flight open long enough for the
	// leader to be cancelled while a joiner is attached.
	cfg.MaxDelay = 30 * time.Millisecond
	cfg.MaxBatch = 64
	s := New(rag.BuildChunkStore(nil, testChunks(16), 0), cfg)
	defer s.Close()
	chunks := testChunks(16)

	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := s.Search(lctx, chunks[2].Text, 2)
		leaderDone <- err
	}()
	for { // wait until the leader's flight is registered
		s.chunks.flights.mu.Lock()
		n := len(s.chunks.flights.m)
		s.chunks.flights.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	lcancel() // the leader's client disconnects mid-flight

	res, _, _, err := s.Search(context.Background(), chunks[2].Text, 2)
	if err != nil {
		t.Fatalf("healthy joiner poisoned by leader cancellation: %v", err)
	}
	if len(res) == 0 || res[0].ID != chunks[2].ID {
		t.Fatalf("joiner results %v", res)
	}
	// The flight itself ran detached, so even the leader gets the result.
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

func TestBatchEndpointBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatchQueries = 4
	s, _, chunks := testServer(t, 16, cfg)
	c := NewClient("http://"+s.Addr(), nil)
	if _, err := c.SearchBatch([]string{chunks[0].Text, chunks[1].Text}, 2); err != nil {
		t.Fatal(err)
	}
	oversize := make([]string, 5)
	for i := range oversize {
		oversize[i] = chunks[i].Text
	}
	if _, err := c.SearchBatch(oversize, 2); err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized batch not rejected: %v", err)
	}
}
