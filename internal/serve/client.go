package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Client is a minimal JSON client for a ragserve endpoint, shared by the
// ragload generator, the router's shard fan-out and the serving tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets baseURL ("http://host:port"). A nil httpClient gets a
// 30s-timeout default with a connection pool sized for load generation.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		tr := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
		httpClient = &http.Client{Timeout: 30 * time.Second, Transport: tr}
	}
	return &Client{base: baseURL, hc: httpClient}
}

// BaseURL returns the endpoint the client targets.
func (c *Client) BaseURL() string { return c.base }

// HTTPClient returns the underlying *http.Client, so sibling clients (the
// router's) can share the pooled transport defaults.
func (c *Client) HTTPClient() *http.Client { return c.hc }

// StatusError is a non-200 reply, carried as a typed error so callers
// (the router's retry classifier) can tell a 5xx worth retrying from a
// 4xx that is the caller's own fault.
type StatusError struct {
	Path   string
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %s: status %d: %s", e.Path, e.Status, e.Msg)
}

func (c *Client) post(path string, req, resp any) error {
	return c.postCtx(context.Background(), path, req, resp)
}

// postCtx is the transport core: the request carries ctx, so a caller's
// deadline or cancellation propagates into the connection — the router's
// per-shard deadlines reach the backend end to end instead of stopping at
// the client library.
func (c *Client) postCtx(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the caller's trace id so the server adopts it instead of
	// minting one — one id names the request across tiers.
	if tr := obs.FromContext(ctx); tr != nil {
		hreq.Header.Set(obs.TraceHeader, tr.ID())
	}
	r, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 4<<10))
		return &StatusError{Path: path, Status: r.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// Search issues one /v1/search request (the chunks route's legacy alias).
func (c *Client) Search(query string, k int) (SearchResponse, error) {
	var out SearchResponse
	err := c.post("/v1/search", SearchRequest{Query: query, K: k}, &out)
	return out, err
}

// SearchBatch issues one /v1/search/batch request.
func (c *Client) SearchBatch(queries []string, k int) (BatchSearchResponse, error) {
	var out BatchSearchResponse
	err := c.post("/v1/search/batch", BatchSearchRequest{Queries: queries, K: k}, &out)
	return out, err
}

// Swap asks the server to hot-swap the chunks route's index from a VSF
// file (the legacy /admin/swap alias).
func (c *Client) Swap(path string) (SwapResponse, error) {
	var out SwapResponse
	err := c.post("/admin/swap", SwapRequest{Path: path}, &out)
	return out, err
}

// SearchRoute issues one /v1/<route>/search request ("chunks",
// "traces/detailed", …). exclude is the trace routes' question
// self-exclusion id ("" for none).
func (c *Client) SearchRoute(route, query string, k int, exclude string) (SearchResponse, error) {
	var out SearchResponse
	err := c.post("/v1/"+route+"/search", SearchRequest{Query: query, K: k, Exclude: exclude}, &out)
	return out, err
}

// SearchRouteBatch issues one /v1/<route>/search/batch request. exclude
// is nil or one entry per query.
func (c *Client) SearchRouteBatch(route string, queries []string, k int, exclude []string) (BatchSearchResponse, error) {
	var out BatchSearchResponse
	err := c.post("/v1/"+route+"/search/batch", BatchSearchRequest{Queries: queries, K: k, Exclude: exclude}, &out)
	return out, err
}

// SearchTrace issues one query against a reasoning-trace mode route.
func (c *Client) SearchTrace(mode, query string, k int, exclude string) (SearchResponse, error) {
	return c.SearchRoute("traces/"+mode, query, k, exclude)
}

// AddRoute inserts a batch of chunks on a live-mounted route.
func (c *Client) AddRoute(route string, chunks []AddChunk) (AddResponse, error) {
	var out AddResponse
	err := c.post("/v1/"+route+"/add", AddRequest{Chunks: chunks}, &out)
	return out, err
}

// CompactRoute asks the server to synchronously drain a live route's
// memtable into its base index.
func (c *Client) CompactRoute(route string) (CompactResponse, error) {
	var out CompactResponse
	err := c.post("/admin/"+route+"/compact", struct{}{}, &out)
	return out, err
}

// SwapRoute asks the server to hot-swap one route's index from a VSF
// file; the other routes keep their epochs and warm caches.
func (c *Client) SwapRoute(route, path string) (SwapResponse, error) {
	var out SwapResponse
	err := c.post("/admin/"+route+"/swap", SwapRequest{Path: path}, &out)
	return out, err
}

// SearchRouteReq issues one /v1/<route>/search request from a full request
// body — the way to set opt-in fields like Timing that the positional
// helpers don't carry.
func (c *Client) SearchRouteReq(route string, req SearchRequest) (SearchResponse, error) {
	return c.SearchRouteReqCtx(context.Background(), route, req)
}

// SearchRouteReqCtx is SearchRouteReq under a caller context.
func (c *Client) SearchRouteReqCtx(ctx context.Context, route string, req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.postCtx(ctx, "/v1/"+route+"/search", req, &out)
	return out, err
}

// SearchRouteBatchReqCtx issues one /v1/<route>/search/batch request from
// a full request body under a caller context — the router's scatter path,
// which always asks shards for timing so it can graft their spans onto the
// fan-out trace.
func (c *Client) SearchRouteBatchReqCtx(ctx context.Context, route string, req BatchSearchRequest) (BatchSearchResponse, error) {
	var out BatchSearchResponse
	err := c.postCtx(ctx, "/v1/"+route+"/search/batch", req, &out)
	return out, err
}

// SearchRouteCtx is SearchRoute under a caller context: the router's
// per-shard deadline rides the request all the way to the backend.
func (c *Client) SearchRouteCtx(ctx context.Context, route, query string, k int, exclude string) (SearchResponse, error) {
	var out SearchResponse
	err := c.postCtx(ctx, "/v1/"+route+"/search", SearchRequest{Query: query, K: k, Exclude: exclude}, &out)
	return out, err
}

// SearchRouteBatchCtx is SearchRouteBatch under a caller context — the
// router's scatter path, one call per shard per micro-batch.
func (c *Client) SearchRouteBatchCtx(ctx context.Context, route string, queries []string, k int, exclude []string) (BatchSearchResponse, error) {
	var out BatchSearchResponse
	err := c.postCtx(ctx, "/v1/"+route+"/search/batch", BatchSearchRequest{Queries: queries, K: k, Exclude: exclude}, &out)
	return out, err
}

// Healthz fetches the health summary.
func (c *Client) Healthz() (Healthz, error) {
	return c.HealthzCtx(context.Background())
}

// HealthzCtx fetches the health summary under a caller context (the
// router's health prober runs it on a short deadline).
func (c *Client) HealthzCtx(ctx context.Context) (Healthz, error) {
	var out Healthz
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return out, err
	}
	r, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return out, &StatusError{Path: "/healthz", Status: r.StatusCode}
	}
	err = json.NewDecoder(r.Body).Decode(&out)
	return out, err
}

// Metrics fetches the /metrics text exposition.
func (c *Client) Metrics() (string, error) {
	return c.MetricsCtx(context.Background())
}

// MetricsCtx fetches the /metrics text exposition under a caller
// context, so a scrape against a wedged server can be abandoned.
func (c *Client) MetricsCtx(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	r, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	return string(body), err
}
