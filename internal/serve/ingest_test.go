package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/rag"
	"repro/internal/vecstore"
)

// liveTestServer is testServer with the chunk store mounted live (mutable)
// so the add/compact endpoints work.
func liveTestServer(t testing.TB, n int, cfg Config) (*Server, *rag.ChunkStore, []chunk.Chunk) {
	t.Helper()
	chunks := testChunks(n)
	store := rag.BuildChunkStore(nil, chunks, 0)
	store.EnableLive()
	s := New(store, cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, store, chunks
}

// freshChunk makes an insert-able chunk whose text is distinct from the
// build corpus; searching its own text must rank it first (the encoder is
// deterministic, so an exact-text query scores ~1).
func freshChunk(i int) AddChunk {
	return AddChunk{
		ID:    fmt.Sprintf("live%04d", i),
		DocID: "live",
		Text:  fmt.Sprintf("freshly ingested quasar spectroscopy batch %d with drift term %d", i, i*5%17),
	}
}

// TestAddThenSearchSeesInsert is the cache-key regression test: a cached
// top-k computed BEFORE an insert must not mask the inserted chunk. An
// in-place insert bumps no epoch — only the write generation folded into
// the cache key makes the post-insert lookup miss and recompute.
func TestAddThenSearchSeesInsert(t *testing.T) {
	s, _, _ := liveTestServer(t, 32, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	nc := freshChunk(0)
	// Prime the cache with the exact query that should later return the
	// inserted chunk.
	before, err := c.SearchRoute(RouteChunks, nc.Text, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Results) > 0 && before.Results[0].ID == nc.ID {
		t.Fatal("insert visible before inserting")
	}
	// Confirm the priming query is actually served from cache on repeat —
	// otherwise this test wouldn't prove anything about masking.
	primed, err := c.SearchRoute(RouteChunks, nc.Text, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if !primed.Cached {
		t.Fatal("priming query not cached; regression test vehicle broken")
	}

	add, err := c.AddRoute(RouteChunks, []AddChunk{nc})
	if err != nil {
		t.Fatal(err)
	}
	if add.Added != 1 || add.Vectors != 33 || add.MemRows != 1 || add.WriteGen == 0 {
		t.Fatalf("add response %+v", add)
	}

	after, err := c.SearchRoute(RouteChunks, nc.Text, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-insert search served from the pre-insert cache")
	}
	if len(after.Results) == 0 || after.Results[0].ID != nc.ID {
		t.Fatalf("inserted chunk not first for its own text: %+v", after.Results)
	}
	if after.Results[0].Text != nc.Text {
		t.Fatal("inserted chunk text not carried on the wire")
	}
}

// TestAddValidation pins the write endpoint's rejections: non-live routes,
// empty batches, oversized batches, duplicate ids (in-batch, vs the build
// corpus, and vs a previous insert) — all without partial inserts.
func TestAddValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatchQueries = 4
	s, _, chunks := liveTestServer(t, 16, cfg)
	c := NewClient("http://"+s.Addr(), nil)

	wantStatus := func(err error, code int, what string) {
		t.Helper()
		se, ok := err.(*StatusError)
		if !ok {
			t.Fatalf("%s: err %v, want StatusError %d", what, err, code)
		}
		if se.Status != code {
			t.Fatalf("%s: status %d, want %d", what, se.Status, code)
		}
	}
	_, err := c.AddRoute(RouteChunks, nil)
	wantStatus(err, 400, "empty batch")
	_, err = c.AddRoute(RouteChunks, []AddChunk{freshChunk(1), freshChunk(2), freshChunk(3), freshChunk(4), freshChunk(5)})
	wantStatus(err, 413, "oversized batch")
	_, err = c.AddRoute(RouteChunks, []AddChunk{freshChunk(6), freshChunk(6)})
	wantStatus(err, 400, "in-batch duplicate")
	_, err = c.AddRoute(RouteChunks, []AddChunk{{ID: chunks[0].ID, Text: "shadowing the corpus"}})
	wantStatus(err, 400, "corpus-duplicate id")
	_, err = c.AddRoute(RouteChunks, []AddChunk{{ID: "noText"}})
	wantStatus(err, 400, "empty text")
	if _, err := c.AddRoute(RouteChunks, []AddChunk{freshChunk(7)}); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
	_, err = c.AddRoute(RouteChunks, []AddChunk{freshChunk(7)})
	wantStatus(err, 400, "re-inserting an inserted id")

	// A route mounted over a non-live store must refuse writes.
	plain := NewMulti(DefaultConfig())
	if err := plain.Mount(RouteChunks, rag.NewChunkFacade(rag.BuildChunkStore(nil, testChunks(8), 0))); err != nil {
		t.Fatal(err)
	}
	if err := plain.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plain.Close() })
	pc := NewClient("http://"+plain.Addr(), nil)
	_, err = pc.AddRoute(RouteChunks, []AddChunk{freshChunk(8)})
	wantStatus(err, 400, "non-live route")
}

// TestCompactEndpoint drains the memtable over HTTP and checks the swap
// was published (epoch bump, memtable empty, Stats kind still Live) and
// that compacted inserts stay retrievable.
func TestCompactEndpoint(t *testing.T) {
	s, store, _ := liveTestServer(t, 24, DefaultConfig())
	c := NewClient("http://"+s.Addr(), nil)

	var inserted []AddChunk
	for i := 0; i < 5; i++ {
		inserted = append(inserted, freshChunk(i))
	}
	if _, err := c.AddRoute(RouteChunks, inserted); err != nil {
		t.Fatal(err)
	}
	cr, err := c.CompactRoute(RouteChunks)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Compacted || cr.Epoch != 1 || cr.MemRows != 0 || cr.Vectors != 29 {
		t.Fatalf("compact response %+v", cr)
	}
	// Compacting an empty memtable is a clean no-op, not an error.
	cr2, err := c.CompactRoute(RouteChunks)
	if err != nil {
		t.Fatal(err)
	}
	if cr2.Compacted || cr2.Epoch != 1 {
		t.Fatalf("empty compact response %+v", cr2)
	}
	for _, nc := range inserted {
		resp, err := c.SearchRoute(RouteChunks, nc.Text, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || resp.Results[0].ID != nc.ID {
			t.Fatalf("compacted insert %q not retrievable: %+v", nc.ID, resp.Results)
		}
	}
	// The published index is still a Live layer over the grown base.
	snap := s.Snapshot()
	lv, ok := snap.Store.Index().(*vecstore.Live)
	if !ok {
		t.Fatalf("post-compaction index is %T, want *vecstore.Live", snap.Store.Index())
	}
	if lv.Base().Len() != 29 || lv.MemLen() != 0 {
		t.Fatalf("post-compaction base=%d mem=%d", lv.Base().Len(), lv.MemLen())
	}
	_ = store
}

// TestAutoCompaction checks the CompactAt trigger: once the memtable
// reaches the threshold, a background compaction publishes without any
// admin call.
func TestAutoCompaction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CompactAt = 8
	s, _, _ := liveTestServer(t, 16, cfg)
	c := NewClient("http://"+s.Addr(), nil)

	var batch []AddChunk
	for i := 0; i < 10; i++ {
		batch = append(batch, freshChunk(i))
	}
	if _, err := c.AddRoute(RouteChunks, batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Snapshot()
		lv := snap.Store.Index().(*vecstore.Live)
		if snap.Epoch >= 1 && lv.MemLen() == 0 && snap.Source == "compaction" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto compaction never published: epoch=%d mem=%d", snap.Epoch, lv.MemLen())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Inserts stay visible across the background publish.
	for _, nc := range batch {
		resp, err := c.SearchRoute(RouteChunks, nc.Text, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 1 || resp.Results[0].ID != nc.ID {
			t.Fatalf("insert %q lost across auto compaction", nc.ID)
		}
	}
}

// TestIngestConcurrentAddSearchCompact is the serving-layer race hammer:
// programmatic writers, searchers and a compactor loop hit one route
// concurrently; afterwards every acked insert must be retrievable by its
// own text. Runs under `make race` via the serve package.
func TestIngestConcurrentAddSearchCompact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CompactAt = 16 // exercise the add-triggered background path too
	s, _, chunks := liveTestServer(t, 32, cfg)

	const writers, perWriter, searchers = 3, 40, 2
	ackedTexts := make([][]string, writers)
	stop := make(chan struct{})
	var bg sync.WaitGroup

	for g := 0; g < searchers; g++ {
		bg.Add(1)
		go func(g int) {
			defer bg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, _, err := s.SearchRoute(context.Background(), RouteChunks, chunks[(g+i)%len(chunks)].Text, 5, ""); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(g)
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.CompactRoute(RouteChunks); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				nc := chunk.Chunk{
					ID:   fmt.Sprintf("w%d-%03d", w, i),
					Text: fmt.Sprintf("concurrent ingest stream %d item %d payload %d", w, i, (w*perWriter+i)*3%23),
				}
				if _, err := s.AddChunks(RouteChunks, []chunk.Chunk{nc}); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				ackedTexts[w] = append(ackedTexts[w], nc.Text)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		return
	}

	// Final drain, then audit every acked insert.
	if _, err := s.CompactRoute(RouteChunks); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if want := 32 + writers*perWriter; snap.Store.Len() != want {
		t.Fatalf("store has %d vectors after quiesce, want %d", snap.Store.Len(), want)
	}
	for w, texts := range ackedTexts {
		for i, text := range texts {
			res, _, _, err := s.SearchRoute(context.Background(), RouteChunks, text, 1, "")
			if err != nil {
				t.Fatal(err)
			}
			wantID := fmt.Sprintf("w%d-%03d", w, i)
			if len(res) != 1 || res[0].ID != wantID {
				t.Fatalf("acked insert %s not retrievable by its text", wantID)
			}
		}
	}
}
