package serve

import (
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// FaultMode is one injected failure behaviour of a FaultGate.
type FaultMode int32

const (
	// FaultNone passes requests through untouched.
	FaultNone FaultMode = iota
	// FaultError answers every request with 503, the well-behaved-crash
	// shape (the process is up, the service is not).
	FaultError
	// FaultStall sleeps the configured delay before serving, the
	// overloaded/GC-pause shape that trips per-shard deadlines.
	FaultStall
	// FaultDown severs the connection without writing a response, the
	// kill -9 / unplugged-network shape: clients see a transport error,
	// not an HTTP status.
	FaultDown
)

// String names the mode for logs and health output.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultStall:
		return "stall"
	case FaultDown:
		return "down"
	default:
		return "unknown"
	}
}

// FaultGate is the load harness's fault injector: an HTTP middleware that
// can make a healthy backend misbehave on demand — 5xx every request,
// stall past a deadline, or drop connections cold — so the router's
// degraded-recall path is exercised under real load, not just in unit
// tests. Mode changes are atomic and take effect on the next request;
// Clear restores pass-through, which is how a "revived" shard re-enters
// service through the router's half-open breaker probe.
type FaultGate struct {
	mode  atomic.Int32
	stall atomic.Int64 // nanoseconds, for FaultStall
}

// NewFaultGate returns a pass-through gate.
func NewFaultGate() *FaultGate { return &FaultGate{} }

// Set switches the gate's failure mode.
func (g *FaultGate) Set(m FaultMode) { g.mode.Store(int32(m)) }

// SetStall switches to FaultStall with the given added latency.
func (g *FaultGate) SetStall(d time.Duration) {
	g.stall.Store(int64(d))
	g.mode.Store(int32(FaultStall))
}

// Clear restores pass-through.
func (g *FaultGate) Clear() { g.mode.Store(int32(FaultNone)) }

// Mode reports the current failure mode.
func (g *FaultGate) Mode() FaultMode { return FaultMode(g.mode.Load()) }

// Wrap gates next behind the current failure mode.
func (g *FaultGate) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch g.Mode() {
		case FaultError:
			http.Error(w, "fault injection: forced 503", http.StatusServiceUnavailable)
			return
		case FaultStall:
			d := time.Duration(g.stall.Load())
			if d <= 0 {
				d = 100 * time.Millisecond
			}
			// Honour the request's own cancellation so a stalled shard
			// doesn't pin goroutines after the router gave up on it.
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		case FaultDown:
			// Hijack and close without a response: the client observes a
			// connection error, exactly like a killed process.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// Fall back to an empty 503 when the writer can't hijack.
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// StartFaulty is Server.Start behind a FaultGate: the returned gate
// controls every request the listener accepts. The load harness uses it
// to kill/stall/5xx one shard of a router fleet mid-run.
func (s *Server) StartFaulty(addr string) (*FaultGate, error) {
	gate := NewFaultGate()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: gate.Wrap(s.Handler()), ReadTimeout: 30 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve returns on Shutdown
	return gate, nil
}
