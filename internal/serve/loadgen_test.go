package serve

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLoadClosedLoop(t *testing.T) {
	var calls, inFlight, maxInFlight atomic.Int64
	rep := RunLoad(LoadConfig{Concurrency: 4, Requests: 40, Queries: []string{"a", "b", "c"}},
		func(q string, k int) error {
			calls.Add(1)
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				m := maxInFlight.Load()
				if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			if q == "c" {
				return errors.New("boom")
			}
			return nil
		})
	if calls.Load() != 40 || rep.Requests != 40 {
		t.Fatalf("calls=%d requests=%d", calls.Load(), rep.Requests)
	}
	// Queries cycle a/b/c → a third of 40, rounded, fail.
	if rep.Failures != 13 {
		t.Fatalf("failures %d", rep.Failures)
	}
	if m := maxInFlight.Load(); m > 4 {
		t.Fatalf("closed loop exceeded concurrency: %d in flight", m)
	}
	if rep.Mode != "closed" || rep.QPS <= 0 || rep.P95MS <= 0 || rep.MaxMS < rep.P50MS {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(rep.String(), "qps") {
		t.Fatal("String() lost the throughput line")
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	start := time.Now()
	rep := RunLoad(LoadConfig{Concurrency: 8, Requests: 30, RatePerSec: 1000, Queries: []string{"q"}},
		func(q string, k int) error { return nil })
	if rep.Mode != "open" || rep.Requests != 30 || rep.Failures != 0 {
		t.Fatalf("report %+v", rep)
	}
	// 30 admissions at 1000/s cannot complete much faster than 30ms.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("open loop ignored the rate: %v", elapsed)
	}
}

func TestRunLoadMixedPartitionsByRoute(t *testing.T) {
	routes := []string{"chunks", "traces/detailed", "traces/focused"}
	var perRoute [3]atomic.Int64
	rep := RunLoadMixed(LoadConfig{Concurrency: 4, Requests: 31, Queries: []string{"a", "b"}},
		routes, func(route, q string, k int) error {
			for i, r := range routes {
				if r == route {
					perRoute[i].Add(1)
				}
			}
			if route == "traces/focused" {
				return errors.New("boom")
			}
			return nil
		})
	if rep.Total.Requests != 31 {
		t.Fatalf("total %+v", rep.Total)
	}
	// Round-robin fan-out: 31 requests over 3 routes → 11/10/10.
	wantCounts := []int64{11, 10, 10}
	var failSum, qpsSum = int64(0), 0.0
	for i, r := range routes {
		pr := rep.PerRoute[r]
		if pr == nil || pr.Requests != wantCounts[i] || perRoute[i].Load() != wantCounts[i] {
			t.Fatalf("route %s: report %+v, issued %d", r, pr, perRoute[i].Load())
		}
		failSum += pr.Failures
		qpsSum += pr.QPS
	}
	if failSum != 10 || rep.Total.Failures != 10 {
		t.Fatalf("failures per-route=%d total=%d, want 10", failSum, rep.Total.Failures)
	}
	// Per-route QPS is measured over the shared window, so it sums to the
	// total throughput.
	if diff := qpsSum - rep.Total.QPS; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-route qps sums to %v, total %v", qpsSum, rep.Total.QPS)
	}
}

func TestRunLoadDefaults(t *testing.T) {
	rep := RunLoad(LoadConfig{Requests: 5}, func(q string, k int) error {
		if q == "" || k <= 0 {
			return errors.New("defaults not applied")
		}
		return nil
	})
	if rep.Failures != 0 || rep.Concurrency != 16 {
		t.Fatalf("report %+v", rep)
	}
}
