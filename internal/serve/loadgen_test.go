package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLoadClosedLoop(t *testing.T) {
	var calls, inFlight, maxInFlight atomic.Int64
	rep := RunLoad(LoadConfig{Concurrency: 4, Requests: 40, Queries: []string{"a", "b", "c"}},
		func(q string, k int) error {
			calls.Add(1)
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				m := maxInFlight.Load()
				if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			if q == "c" {
				return errors.New("boom")
			}
			return nil
		})
	if calls.Load() != 40 || rep.Requests != 40 {
		t.Fatalf("calls=%d requests=%d", calls.Load(), rep.Requests)
	}
	// Queries cycle a/b/c → a third of 40, rounded, fail.
	if rep.Failures != 13 {
		t.Fatalf("failures %d", rep.Failures)
	}
	if m := maxInFlight.Load(); m > 4 {
		t.Fatalf("closed loop exceeded concurrency: %d in flight", m)
	}
	if rep.Mode != "closed" || rep.QPS <= 0 || rep.P95MS <= 0 || rep.MaxMS < rep.P50MS {
		t.Fatalf("report %+v", rep)
	}
	if !strings.Contains(rep.String(), "qps") {
		t.Fatal("String() lost the throughput line")
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	start := time.Now()
	rep := RunLoad(LoadConfig{Concurrency: 8, Requests: 30, RatePerSec: 1000, Queries: []string{"q"}},
		func(q string, k int) error { return nil })
	if rep.Mode != "open" || rep.Requests != 30 || rep.Failures != 0 {
		t.Fatalf("report %+v", rep)
	}
	// 30 admissions at 1000/s cannot complete much faster than 30ms.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("open loop ignored the rate: %v", elapsed)
	}
}

func TestRunLoadMixedPartitionsByRoute(t *testing.T) {
	routes := []string{"chunks", "traces/detailed", "traces/focused"}
	var perRoute [3]atomic.Int64
	rep := RunLoadMixed(LoadConfig{Concurrency: 4, Requests: 31, Queries: []string{"a", "b"}},
		routes, func(route, q string, k int) error {
			for i, r := range routes {
				if r == route {
					perRoute[i].Add(1)
				}
			}
			if route == "traces/focused" {
				return errors.New("boom")
			}
			return nil
		})
	if rep.Total.Requests != 31 {
		t.Fatalf("total %+v", rep.Total)
	}
	// Round-robin fan-out: 31 requests over 3 routes → 11/10/10.
	wantCounts := []int64{11, 10, 10}
	var failSum, qpsSum = int64(0), 0.0
	for i, r := range routes {
		pr := rep.PerRoute[r]
		if pr == nil || pr.Requests != wantCounts[i] || perRoute[i].Load() != wantCounts[i] {
			t.Fatalf("route %s: report %+v, issued %d", r, pr, perRoute[i].Load())
		}
		failSum += pr.Failures
		qpsSum += pr.QPS
	}
	if failSum != 10 || rep.Total.Failures != 10 {
		t.Fatalf("failures per-route=%d total=%d, want 10", failSum, rep.Total.Failures)
	}
	// Per-route QPS is measured over the shared window, so it sums to the
	// total throughput.
	if diff := qpsSum - rep.Total.QPS; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("per-route qps sums to %v, total %v", qpsSum, rep.Total.QPS)
	}
}

func TestRunLoadDefaults(t *testing.T) {
	rep := RunLoad(LoadConfig{Requests: 5}, func(q string, k int) error {
		if q == "" || k <= 0 {
			return errors.New("defaults not applied")
		}
		return nil
	})
	if rep.Failures != 0 || rep.Concurrency != 16 {
		t.Fatalf("report %+v", rep)
	}
}

// TestRunLoadZipfDistribution checks the heavy-tailed query-key mode: the
// drawn frequencies must be rank-skewed (rank 0 strictly hottest, the
// head dominating the tail), deterministic for a fixed seed, and the
// report must record the distribution.
func TestRunLoadZipfDistribution(t *testing.T) {
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("q%d", i)
	}
	count := func(seed uint64) map[string]int64 {
		counts := make(map[string]int64)
		var mu sync.Mutex
		RunLoad(LoadConfig{Concurrency: 4, Requests: 2000, Queries: queries,
			Dist: "zipf", ZipfS: 1.1, Seed: seed},
			func(q string, k int) error {
				mu.Lock()
				counts[q]++
				mu.Unlock()
				return nil
			})
		return counts
	}
	counts := count(7)
	if counts["q0"] <= counts["q1"] || counts["q1"] <= counts["q5"] {
		t.Fatalf("zipf head not rank-skewed: q0=%d q1=%d q5=%d", counts["q0"], counts["q1"], counts["q5"])
	}
	var head, total int64
	for q, c := range counts {
		total += c
		switch q {
		case "q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7":
			head += c
		}
	}
	if head*2 < total {
		t.Fatalf("zipf head (top 8 of 64 keys) drew %d of %d requests, want a majority", head, total)
	}
	again := count(7)
	for q, c := range counts {
		if again[q] != c {
			t.Fatalf("zipf draw not deterministic for fixed seed: %s %d vs %d", q, c, again[q])
		}
	}
	rep := RunLoad(LoadConfig{Concurrency: 2, Requests: 10, Queries: queries, Dist: "zipf"},
		func(q string, k int) error { return nil })
	if rep.Dist != "zipf" {
		t.Fatalf("report dist %q, want zipf", rep.Dist)
	}
	if !strings.Contains(rep.String(), "dist=zipf") {
		t.Fatal("String() lost the distribution tag")
	}
	uni := RunLoad(LoadConfig{Concurrency: 2, Requests: 10, Queries: queries},
		func(q string, k int) error { return nil })
	if uni.Dist != "uniform" {
		t.Fatalf("default dist %q, want uniform", uni.Dist)
	}
}
