// Package core is the public façade of the reproduction: it wires every
// substrate into the paper's end-to-end workflow (Figure 1) —
//
//	corpus → SPDF containers → parallel parsing → semantic chunking →
//	embedding → MCQ generation + quality filtering (teacher behind the
//	batching gateway) → reasoning-trace distillation → vector stores →
//	evaluation setups for the synthetic benchmark and the Astro exam.
//
// BuildBenchmark runs the generation pipeline; SyntheticSetup / AstroSetup
// produce eval.Setup bundles; Evaluate* regenerate the paper's tables.
package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/argo"
	"repro/internal/astro"
	"repro/internal/chunk"
	"repro/internal/corpus"
	"repro/internal/embed"
	"repro/internal/eval"
	"repro/internal/llmsim"
	"repro/internal/mcq"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/qc"
	"repro/internal/rag"
	"repro/internal/rng"
	"repro/internal/spdf"
	"time"
)

// Config parameterises a benchmark-generation run.
type Config struct {
	// Seed drives every stochastic choice; equal seeds give bit-identical
	// benchmarks.
	Seed uint64
	// Scale multiplies the paper's corpus (14,115 papers + 8,433
	// abstracts). 1.0 is full scale; tests run ~0.002.
	Scale float64
	// FactsPerTopic sizes the knowledge base (default 40).
	FactsPerTopic int
	// QualityThreshold is the judge-score admission gate (paper: 7.0).
	QualityThreshold float64
	// Workers bounds parallelism (<=0 → GOMAXPROCS).
	Workers int
	// Gateway optionally overrides the teacher-call gateway configuration.
	Gateway argo.Config
	// Metrics optionally receives per-stage instrumentation (counters for
	// documents/chunks/questions, latency histograms for parse and
	// generation). Nil disables collection.
	Metrics *metrics.Registry
	// Dedup enables near-duplicate removal over accepted questions (off by
	// default to match the paper's reported counts; see internal/qc).
	Dedup bool
	// DedupThreshold is the cosine threshold for Dedup (default 0.97).
	DedupThreshold float64
}

// DefaultConfig returns the paper's settings at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{Seed: 42, Scale: scale, FactsPerTopic: 40, QualityThreshold: 7.0}
}

// Stats aggregates the dataset statistics the paper reports in §2.
type Stats struct {
	Papers          int
	Abstracts       int
	ParsedOK        int
	ParseSalvaged   int
	ParseFailed     int
	Chunks          int
	Candidates      int
	Accepted        int
	AcceptanceRate  float64
	Deduplicated    int
	Traces          int
	EmbeddingDim    int
	ChunkStoreBytes int64
}

// Artifacts is everything a generation run produces.
type Artifacts struct {
	Config      Config
	KB          *corpus.KB
	Chunks      []chunk.Chunk
	Questions   []*mcq.Question // the filtered benchmark
	Traces      []*mcq.Trace
	ChunkStore  *rag.ChunkStore
	TraceStores map[mcq.ReasoningMode]*rag.TraceStore
	ParseReport *spdf.Report
	Stats       Stats
}

// BuildBenchmark runs the full generation pipeline. Every stage goes
// through the real substrate: documents are rendered to SPDF bytes and
// parsed back (with the fault-tolerant parser), chunks are semantically
// split and embedded, teacher calls are batched through the Argo-style
// gateway, and the quality gate filters candidates exactly as the paper's
// 7/10 threshold does.
func BuildBenchmark(cfg Config) (*Artifacts, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("core: non-positive scale %v", cfg.Scale)
	}
	if cfg.FactsPerTopic <= 0 {
		cfg.FactsPerTopic = 40
	}
	if cfg.QualityThreshold <= 0 {
		cfg.QualityThreshold = 7.0
	}
	root := rng.New(cfg.Seed)
	kb := corpus.Build(cfg.Seed, cfg.FactsPerTopic)
	gen := corpus.NewGenerator(kb, cfg.Seed)
	spec := corpus.FullScale.Scaled(cfg.Scale)

	// Stage 1: corpus → SPDF containers.
	docs := gen.GenerateAll(spec)
	payloads := make([][]byte, len(docs))
	names := make([]string, len(docs))
	factsOf := make(map[string][]corpus.FactID, len(docs))
	for i, d := range docs {
		payloads[i] = spdf.Encode(d)
		names[i] = "corpus/" + d.ID + ".spdf"
		factsOf[d.ID] = d.Facts
	}

	// Stage 2: parallel fault-isolated parsing (AdaParse role).
	var parseStart time.Time
	if cfg.Metrics != nil {
		parseStart = time.Now()
	}
	results, report := spdf.ParseAll(payloads, names, cfg.Workers)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("docs.total").Add(int64(len(payloads)))
		cfg.Metrics.Counter("docs.parsed_ok").Add(int64(report.OK))
		cfg.Metrics.Counter("docs.parse_failed").Add(int64(report.Failed))
		cfg.Metrics.Histogram("stage.parse").Observe(time.Since(parseStart))
	}

	// Stage 3: semantic chunking of parsed text.
	var cdocs []chunk.Doc
	pathOf := make(map[string]string, len(results))
	for _, res := range results {
		if res.Parsed == nil || res.Parsed.Text == "" {
			continue
		}
		cdocs = append(cdocs, chunk.Doc{ID: res.Parsed.Meta.DocID, Text: res.Parsed.Text})
		pathOf[res.Parsed.Meta.DocID] = res.Path
	}
	chunker := chunk.New(chunk.DefaultConfig(), nil)
	var chunkStart time.Time
	if cfg.Metrics != nil {
		chunkStart = time.Now()
	}
	chunks := chunker.SplitAll(cdocs, cfg.Workers)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("chunks.total").Add(int64(len(chunks)))
		cfg.Metrics.Histogram("stage.chunk").Observe(time.Since(chunkStart))
	}

	// Stage 4: MCQ generation + judging, batched through the gateway.
	teacher := llmsim.NewTeacher(kb)
	type generated struct {
		q *mcq.Question
	}
	handler := func(_ context.Context, batch []argo.Request) []argo.Response {
		out := make([]argo.Response, len(batch))
		for i, req := range batch {
			var idx int
			if err := json.Unmarshal(req.Payload, &idx); err != nil {
				out[i] = argo.Response{ID: req.ID, Err: "bad payload: " + err.Error()}
				continue
			}
			ch := chunks[idx]
			r := root.SplitN("mcq", idx)
			q := teacher.GenerateMCQ(ch, factsOf[ch.DocID], pathOf[ch.DocID], r)
			q.Checks = teacher.JudgeQuality(q, r)
			data, err := json.Marshal(q)
			if err != nil {
				out[i] = argo.Response{ID: req.ID, Err: err.Error()}
				continue
			}
			out[i] = argo.Response{ID: req.ID, Payload: data}
		}
		return out
	}
	gw := argo.NewGateway(cfg.Gateway, handler)
	defer gw.Close()

	candidates, err := pipeline.Map(context.Background(), indexes(len(chunks)), cfg.Workers,
		func(ctx context.Context, i int) (*mcq.Question, error) {
			payload, _ := json.Marshal(i)
			var callStart time.Time
			if cfg.Metrics != nil {
				callStart = time.Now()
			}
			resp, err := gw.Call(ctx, argo.Request{
				ID: fmt.Sprintf("gen-%d", i), Op: "generate-mcq", Payload: payload,
			})
			if err != nil {
				return nil, err
			}
			if cfg.Metrics != nil {
				cfg.Metrics.Histogram("teacher.call").Observe(time.Since(callStart))
			}
			var q mcq.Question
			if err := json.Unmarshal(resp.Payload, &q); err != nil {
				return nil, err
			}
			return &q, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: generation: %w", err)
	}
	accepted := mcq.FilterByQuality(candidates, cfg.QualityThreshold)
	deduplicated := 0
	if cfg.Dedup {
		threshold := cfg.DedupThreshold
		if threshold <= 0 || threshold > 1 {
			threshold = 0.97
		}
		res := qc.Dedup(accepted, embed.NewDefault(), threshold)
		deduplicated = len(res.Dropped)
		accepted = res.Kept
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("questions.candidates").Add(int64(len(candidates)))
		cfg.Metrics.Counter("questions.accepted").Add(int64(len(accepted)))
		cfg.Metrics.Counter("questions.deduplicated").Add(int64(deduplicated))
	}

	// Stage 5: reasoning-trace distillation (three modes per question).
	traceLists, err := pipeline.Map(context.Background(), accepted, cfg.Workers,
		func(_ context.Context, q *mcq.Question) ([]*mcq.Trace, error) {
			trs := teacher.GenerateTraces(q)
			for _, tr := range trs {
				if err := tr.Validate(q.AnswerText()); err != nil {
					return nil, err
				}
			}
			return trs, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: trace distillation: %w", err)
	}
	var traces []*mcq.Trace
	for _, ts := range traceLists {
		traces = append(traces, ts...)
	}

	// Stage 6: vector stores (chunk DB + three trace DBs).
	enc := embed.NewDefault()
	chunkStore := rag.BuildChunkStore(enc, chunks, cfg.Workers)
	traceStores := rag.TraceStores(enc, traces, rag.QuestionFactMap(accepted), cfg.Workers)

	a := &Artifacts{
		Config:      cfg,
		KB:          kb,
		Chunks:      chunks,
		Questions:   accepted,
		Traces:      traces,
		ChunkStore:  chunkStore,
		TraceStores: traceStores,
		ParseReport: report,
		Stats: Stats{
			Papers:          spec.Papers,
			Abstracts:       spec.Abstracts,
			ParsedOK:        report.OK,
			ParseSalvaged:   report.Salvaged,
			ParseFailed:     report.Failed,
			Chunks:          len(chunks),
			Candidates:      len(candidates),
			Accepted:        len(accepted),
			Deduplicated:    deduplicated,
			Traces:          len(traces),
			EmbeddingDim:    enc.Dim(),
			ChunkStoreBytes: chunkStore.MemoryBytes(),
		},
	}
	if a.Stats.Candidates > 0 {
		a.Stats.AcceptanceRate = float64(a.Stats.Accepted) / float64(a.Stats.Candidates)
	}
	return a, nil
}

func indexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// SaveChunkIndex persists the artifacts' chunk vector index to path (the
// FP16 Flat layout of internal/vecstore).
func SaveChunkIndex(a *Artifacts, path string) error {
	return a.ChunkStore.SaveIndex(path)
}

// SyntheticSetup bundles the generated benchmark for evaluation.
func (a *Artifacts) SyntheticSetup() *eval.Setup {
	return &eval.Setup{
		KB:        a.KB,
		Questions: a.Questions,
		Chunks:    a.ChunkStore,
		Traces:    a.TraceStores,
		Bench:     llmsim.BenchSynthetic,
		Seed:      a.Config.Seed,
		Workers:   a.Config.Workers,
	}
}

// AstroSetup generates the expert exam and bundles it against the same
// retrieval stores (the paper evaluates Astro with retrieval from the
// corpus-derived chunk DB and the synthetic-question trace DBs).
func (a *Artifacts) AstroSetup() (*eval.Setup, *astro.Exam) {
	exam := astro.Generate(a.KB, a.Config.Seed)
	return &eval.Setup{
		KB:        a.KB,
		Questions: exam.Questions,
		Chunks:    a.ChunkStore,
		Traces:    a.TraceStores,
		Bench:     llmsim.BenchAstro,
		Seed:      a.Config.Seed + 1,
		Workers:   a.Config.Workers,
	}, exam
}

// AstroNoMathSetup restricts an Astro setup to the classifier-selected
// non-mathematical subset (the paper's Table 4 setting).
func AstroNoMathSetup(full *eval.Setup, exam *astro.Exam) *eval.Setup {
	c := astro.NewClassifier()
	sub := *full
	sub.Questions = exam.NoMath(c)
	sub.Seed = full.Seed + 1
	return &sub
}

// EvaluateSynthetic runs the full Table 2 matrix.
func EvaluateSynthetic(a *Artifacts) (*eval.Matrix, error) {
	return eval.Run(a.SyntheticSetup(), llmsim.Profiles(), llmsim.AllConditions)
}

// EvaluateAstro runs Tables 3 and 4 (all questions and the no-math subset)
// including the GPT-4 comparator row.
func EvaluateAstro(a *Artifacts) (all, noMath *eval.Matrix, err error) {
	setup, exam := a.AstroSetup()
	profiles := append(llmsim.Profiles(), llmsim.GPT4Profile())
	all, err = eval.Run(setup, profiles, llmsim.AllConditions)
	if err != nil {
		return nil, nil, err
	}
	noMath, err = eval.Run(AstroNoMathSetup(setup, exam), profiles, llmsim.AllConditions)
	if err != nil {
		return nil, nil, err
	}
	return all, noMath, nil
}
