package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/llmsim"
)

func factID(s string) corpus.FactID { return corpus.FactID(s) }

func TestSaveLoadRoundTrip(t *testing.T) {
	a := build(t)
	dir := t.TempDir()
	if err := a.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "questions.jsonl", "traces.jsonl", "chunks.jsonl", "chunks.vsf"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Questions) != len(a.Questions) || len(back.Traces) != len(a.Traces) || len(back.Chunks) != len(a.Chunks) {
		t.Fatalf("counts differ after reload: %d/%d/%d vs %d/%d/%d",
			len(back.Questions), len(back.Traces), len(back.Chunks),
			len(a.Questions), len(a.Traces), len(a.Chunks))
	}
	// Questions identical, including rubric subscores and topic tags.
	for i := range a.Questions {
		q1, q2 := a.Questions[i], back.Questions[i]
		if q1.ID != q2.ID || q1.Answer != q2.Answer || q1.Topic != q2.Topic {
			t.Fatalf("question %d differs after reload", i)
		}
		if q1.Checks.Rubric != q2.Checks.Rubric {
			t.Fatalf("rubric lost for %s", q1.ID)
		}
	}
	// KB rebuilt from config: provenance still resolves.
	q := back.Questions[0]
	if back.KB.Fact(factID(q.Prov.FactID)) == nil {
		t.Fatal("reloaded KB cannot resolve question fact")
	}
}

func TestLoadedArtifactsEvaluateIdentically(t *testing.T) {
	a := build(t)
	dir := t.TempDir()
	if err := a.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := llmsim.ProfileByName("SmolLM3-3B")
	if err != nil {
		t.Fatal(err)
	}
	conds := []llmsim.Condition{llmsim.CondBaseline, llmsim.CondChunks, llmsim.CondRTFocused}
	m1, err := eval.Run(a.SyntheticSetup(), []*llmsim.Profile{prof}, conds)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := eval.Run(back.SyntheticSetup(), []*llmsim.Profile{prof}, conds)
	if err != nil {
		t.Fatal(err)
	}
	for _, cond := range conds {
		if m1.Rows[0].Cells[cond].Correct != m2.Rows[0].Cells[cond].Correct {
			t.Fatalf("%s: reloaded artifacts evaluate differently", cond)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing dir loaded")
	}
}

func TestLoadRejectsManifestMismatch(t *testing.T) {
	a := build(t)
	dir := t.TempDir()
	if err := a.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Truncate questions.jsonl to break the manifest count.
	path := filepath.Join(dir, "questions.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("mismatched artifacts loaded")
	}
}

func TestTopicTagsPropagate(t *testing.T) {
	a := build(t)
	tagged := 0
	for _, q := range a.Questions {
		if q.Topic != "" {
			tagged++
		}
	}
	if tagged != len(a.Questions) {
		t.Fatalf("%d/%d questions tagged with a sub-domain", tagged, len(a.Questions))
	}
}

func TestTopicBreakdownRenders(t *testing.T) {
	a := build(t)
	prof, err := llmsim.ProfileByName("SmolLM3-3B")
	if err != nil {
		t.Fatal(err)
	}
	conds := []llmsim.Condition{llmsim.CondBaseline, llmsim.CondRTFocused}
	m, err := eval.Run(a.SyntheticSetup(), []*llmsim.Profile{prof}, conds)
	if err != nil {
		t.Fatal(err)
	}
	out := eval.RenderTopicBreakdown(m.Rows[0], conds, 1)
	if out == "" {
		t.Fatal("empty breakdown")
	}
	// Totals per condition must sum to the benchmark size.
	for _, cond := range conds {
		sum := 0
		for _, tc := range m.Rows[0].Cells[cond].ByTopic {
			sum += tc.Total
		}
		if sum != len(a.Questions) {
			t.Fatalf("%s: topic totals %d != %d", cond, sum, len(a.Questions))
		}
	}
}
